// Tests for the machine-slowdown FePIA derivation and the
// violation-probability curve.
#include <gtest/gtest.h>

#include <cmath>

#include "robust/core/validation.hpp"
#include "robust/hiperd/generator.hpp"
#include "robust/hiperd/slowdown.hpp"
#include "robust/util/error.hpp"

namespace robust::hiperd {
namespace {

NodeRef sensor(std::size_t i) { return NodeRef{NodeKind::Sensor, i}; }
NodeRef app(std::size_t i) { return NodeRef{NodeKind::Application, i}; }
NodeRef actuator(std::size_t i) { return NodeRef{NodeKind::Actuator, i}; }

/// Two apps on two machines in one chain; hand-checkable numbers.
///   s0 (bound 100) -> a0 -> a1 -> act0, latency limit 60.
///   Tc(a0) = 20 on m0, Tc(a1) = 10 on m1 (factors 1: one app per machine).
HiperdScenario chainScenario() {
  HiperdScenario scenario;
  SystemGraph& g = scenario.graph;
  g.addSensor("s0", 1.0 / 100.0);
  g.addApplication("a0");
  g.addApplication("a1");
  g.addActuator("act0");
  g.addEdge(sensor(0), app(0));
  g.addEdge(app(0), app(1));
  g.addEdge(app(1), actuator(0));
  g.finalize();

  scenario.machines = 2;
  scenario.lambdaOrig = {10.0};
  scenario.compute = {
      {LoadFunction::linear({2.0}), LoadFunction::linear({99.0})},
      {LoadFunction::linear({99.0}), LoadFunction::linear({1.0})},
  };
  scenario.comm.assign(g.edgeCount(), LoadFunction::zero(1));
  scenario.latencyLimits = {60.0};
  return scenario;
}

TEST(Slowdown, HandComputedRadii) {
  const HiperdScenario scenario = chainScenario();
  const HiperdSystem system(scenario, sched::Mapping({0, 1}, 2));
  const auto analyzer = slowdownAnalyzer(system);
  const auto report = analyzer.analyze();

  // Features: Tc(a0): 20 s0' <= 100 -> weights (20, 0), gap 80, radius 4.
  //           Tc(a1): 10 s1' <= 100 -> weights (0, 10), gap 90, radius 9.
  //           L_0: 20 s0' + 10 s1' <= 60 -> gap 30, ||w|| = sqrt(500),
  //                radius 30/22.36 = 1.3416.
  ASSERT_EQ(report.radii.size(), 3u);
  EXPECT_NEAR(report.metric, 30.0 / std::sqrt(500.0), 1e-12);
  const auto& binding = report.radii[report.bindingFeature];
  EXPECT_EQ(binding.feature, "L_0");
  // Boundary point: s* = (1,1) + w * gap/||w||^2 = (1 + 20*30/500, ...)
  EXPECT_NEAR(binding.boundaryPoint[0], 1.0 + 600.0 / 500.0, 1e-12);
  EXPECT_NEAR(binding.boundaryPoint[1], 1.0 + 300.0 / 500.0, 1e-12);
  EXPECT_FALSE(report.floored);  // slowdowns are continuous
}

TEST(Slowdown, OriginIsUnitSpeeds) {
  const HiperdScenario scenario = chainScenario();
  const HiperdSystem system(scenario, sched::Mapping({0, 1}, 2));
  const auto analyzer = slowdownAnalyzer(system);
  EXPECT_EQ(analyzer.parameter().origin, (num::Vec{1.0, 1.0}));
  EXPECT_FALSE(analyzer.parameter().discrete);
}

TEST(Slowdown, CommunicationContributesConstant) {
  HiperdScenario scenario = chainScenario();
  scenario.comm[1] = LoadFunction::linear({0.5});  // a0->a1: 5 at lambda=10
  const HiperdSystem system(scenario, sched::Mapping({0, 1}, 2));
  const auto analyzer = slowdownAnalyzer(system);
  const auto report = analyzer.analyze();
  // Latency gap shrinks by the constant 5: radius = 25 / sqrt(500).
  EXPECT_NEAR(report.metric, 25.0 / std::sqrt(500.0), 1e-12);
}

TEST(Slowdown, WorksOnGeneratedScenarios) {
  const auto generated = generateScenario(ScenarioOptions{}, 2003);
  Pcg32 rng(1);
  const auto mapping = sched::randomMapping(
      generated.scenario.graph.applicationCount(),
      generated.scenario.machines, rng);
  const HiperdSystem system(generated.scenario, mapping);
  const auto report = slowdownAnalyzer(system).analyze();
  EXPECT_GE(report.metric, 0.0);
  EXPECT_TRUE(std::isfinite(report.metric));

  // Cross-check against the Monte-Carlo oracle.
  core::AnalyzerOptions oracle;
  oracle.solver = core::SolverKind::MonteCarlo;
  oracle.solverOptions.samples = 4096;
  const auto sampled = slowdownAnalyzer(system, oracle).analyze();
  EXPECT_GE(sampled.metric, report.metric - 1e-9);
  EXPECT_LE(sampled.metric, report.metric * 1.5 + 1e-9);
}

TEST(Slowdown, CombinedRobustnessWithSensorLoads) {
  // The multi-parameter extension: the mapping's overall robustness is the
  // weaker of the two normalized metrics.
  const auto generated = generateScenario(ScenarioOptions{}, 7);
  Pcg32 rng(2);
  const auto mapping = sched::randomMapping(
      generated.scenario.graph.applicationCount(),
      generated.scenario.machines, rng);
  const HiperdSystem system(generated.scenario, mapping);
  const auto loadReport = system.analyze();
  const auto speedReport = slowdownAnalyzer(system).analyze();
  const std::vector<core::RobustnessReport> reports = {loadReport,
                                                       speedReport};
  const double combined = core::combinedRobustness(reports);
  EXPECT_DOUBLE_EQ(combined,
                   std::min(loadReport.metric, speedReport.metric));
}

// -------------------------------------------------- violation curve

TEST(ViolationCurve, ZeroBelowMetricRisingBeyond) {
  const HiperdScenario scenario = chainScenario();
  const HiperdSystem system(scenario, sched::Mapping({0, 1}, 2));
  const auto analyzer = slowdownAnalyzer(system);
  const double rho = analyzer.analyze().metric;

  const std::vector<double> radii = {0.5 * rho, 0.99 * rho, 1.5 * rho,
                                     3.0 * rho};
  core::ValidationOptions options;
  options.samples = 3000;
  const auto curve =
      core::violationProbabilityCurve(analyzer, radii, options);
  ASSERT_EQ(curve.size(), 4u);
  EXPECT_EQ(curve[0].probability, 0.0);
  EXPECT_EQ(curve[1].probability, 0.0);
  EXPECT_GT(curve[2].probability, 0.0);
  EXPECT_GT(curve[3].probability, curve[2].probability);
}

TEST(ViolationCurve, Validation) {
  const HiperdScenario scenario = chainScenario();
  const HiperdSystem system(scenario, sched::Mapping({0, 1}, 2));
  const auto analyzer = slowdownAnalyzer(system);
  const std::vector<double> bad = {-1.0};
  EXPECT_THROW((void)core::violationProbabilityCurve(analyzer, bad),
               InvalidArgumentError);
}

}  // namespace
}  // namespace robust::hiperd
