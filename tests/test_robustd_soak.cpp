// In-process soak of the robustd daemon: N concurrent tenants stream
// batches whose answers must be bit-identical to the offline lane while
// saboteur connections inject malformed frames and abrupt disconnects.
// Afterwards the session ledger must balance exactly — zero leaked
// sessions — and no fair tenant may have seen a single wrong bit.
#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "robust/core/compiled.hpp"
#include "robust/net/client.hpp"
#include "robust/net/server.hpp"
#include "robust/net/wire.hpp"
#include "robust/obs/flight.hpp"
#include "robust/obs/json_lite.hpp"
#include "robust/obs/trace.hpp"
#include "robust/util/rng.hpp"

namespace {

using robust::core::AnalysisInstance;
using robust::core::CompiledProblem;
using robust::core::ImpactFunction;
using robust::core::LinearConstraint;
using robust::core::MetricResult;
using robust::core::PerformanceFeature;
using robust::core::ProblemSpec;
using robust::core::ToleranceBounds;
using robust::net::Client;
using robust::net::FrameHeader;
using robust::net::FrameType;
using robust::net::Server;
using robust::net::ServerOptions;
using robust::net::ServerStats;
using robust::net::WireResult;

constexpr std::size_t kDim = 12;
constexpr std::size_t kFeatures = 5;

/// Deterministic spec family shared with a locally compiled oracle. Odd
/// families carry a hard constraint so infeasible-origin classification
/// is part of the soak.
ProblemSpec makeSpec(std::uint64_t family) {
  auto rng = robust::makeStream(2026, 500 + family);
  ProblemSpec spec;
  spec.parameter.name = "pi";
  spec.parameter.origin.resize(kDim);
  for (double& v : spec.parameter.origin) {
    v = rng.uniform(1.0, 3.0);
  }
  for (std::size_t f = 0; f < kFeatures; ++f) {
    robust::num::Vec weights(kDim);
    for (double& w : weights) {
      w = rng.uniform(0.2, 1.5);
    }
    const double constant = rng.uniform(-0.5, 0.5);
    double phi = constant;
    for (std::size_t j = 0; j < kDim; ++j) {
      phi += weights[j] * spec.parameter.origin[j];
    }
    const double slack = rng.uniform(1.0, 4.0);
    spec.features.push_back(PerformanceFeature{
        "phi_" + std::to_string(f),
        ImpactFunction::affine(std::move(weights), constant),
        ToleranceBounds::between(phi - slack, phi + slack)});
  }
  if (family % 2 == 1) {
    LinearConstraint budget;
    budget.name = "budget";
    budget.coeffs.assign(kDim, 1.0);
    double load = 0.0;
    for (double v : spec.parameter.origin) {
      load += v;
    }
    budget.bound = 1.02 * load;
    spec.constraints.push_back(std::move(budget));
  }
  return spec;
}

std::vector<double> makeBatch(const ProblemSpec& spec, std::uint64_t tenant,
                              std::size_t batch, std::size_t instances) {
  auto rng = robust::makeStream(2026, tenant * 1000 + batch);
  std::vector<double> origins(instances * kDim);
  for (std::size_t i = 0; i < instances; ++i) {
    for (std::size_t j = 0; j < kDim; ++j) {
      origins[i * kDim + j] =
          spec.parameter.origin[j] + rng.uniform(-0.4, 0.4);
    }
  }
  return origins;
}

std::vector<WireResult> offline(const CompiledProblem& problem,
                                const std::vector<double>& origins,
                                std::size_t instances) {
  std::vector<AnalysisInstance> batch(instances);
  for (std::size_t i = 0; i < instances; ++i) {
    batch[i].origin =
        std::span<const double>(origins.data() + i * kDim, kDim);
  }
  const std::vector<MetricResult> metrics =
      problem.analyzeBatchMetric(batch, /*threads=*/1);
  std::vector<WireResult> expect(instances);
  const bool constrained = !problem.constraints().empty();
  for (std::size_t i = 0; i < instances; ++i) {
    expect[i].rho = metrics[i].metric;
    expect[i].bindingFeature =
        static_cast<std::uint32_t>(metrics[i].bindingFeature);
    expect[i].floored = metrics[i].floored;
    expect[i].infeasibleOrigin =
        constrained && !problem.originFeasible(batch[i].origin);
  }
  return expect;
}

std::uint64_t bitCompare(const std::vector<WireResult>& got,
                         const std::vector<WireResult>& expect) {
  EXPECT_EQ(got.size(), expect.size());
  std::uint64_t mismatches = 0;
  for (std::size_t i = 0; i < got.size() && i < expect.size(); ++i) {
    const bool same =
        std::memcmp(&got[i].rho, &expect[i].rho, sizeof(double)) == 0 &&
        got[i].bindingFeature == expect[i].bindingFeature &&
        got[i].floored == expect[i].floored &&
        got[i].infeasibleOrigin == expect[i].infeasibleOrigin;
    if (!same) {
      ++mismatches;
    }
  }
  return mismatches;
}

/// One fair tenant: register, stream, verify, BYE.
std::uint64_t runTenant(std::uint16_t port, std::uint64_t tenant,
                        std::size_t batches, std::size_t instances) {
  const std::uint64_t family = tenant % 3;
  const ProblemSpec spec = makeSpec(family);
  const CompiledProblem oracle = CompiledProblem::compile(makeSpec(family));

  Client client;
  client.connectTcp(port);
  client.hello("tenant" + std::to_string(tenant),
               static_cast<std::uint32_t>(instances));
  const robust::net::RegisterReply reg = client.registerProblem(spec);

  std::uint64_t mismatches = 0;
  for (std::size_t b = 0; b < batches; ++b) {
    const std::vector<double> origins =
        makeBatch(spec, tenant, b, instances);
    const std::vector<WireResult> got = client.analyze(
        reg.key, static_cast<std::uint32_t>(instances), origins);
    mismatches += bitCompare(got, offline(oracle, origins, instances));
  }
  client.bye();
  return mismatches;
}

ServerStats waitForBalance(Server& server) {
  // Unclean disconnects are torn down asynchronously by the IO thread;
  // give it a moment before asserting the ledger.
  ServerStats stats = server.stats();
  for (int i = 0; i < 100 && stats.sessionsActive != 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    stats = server.stats();
  }
  return stats;
}

TEST(RobustdSoak, TenantsStayBitIdenticalUnderChaos) {
  ServerOptions options;
  options.tcpPort = 0;
  options.workers = 2;
  options.cacheCapacity = 8;
  Server server(std::move(options));
  server.start();
  const std::uint16_t port = server.port();

  constexpr std::size_t kTenants = 5;
  constexpr std::size_t kBatches = 4;
  constexpr std::size_t kInstances = 32;

  std::atomic<std::uint64_t> mismatches{0};
  std::atomic<int> tenantFailures{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kTenants; ++t) {
    threads.emplace_back([&, t] {
      try {
        mismatches += runTenant(port, t, kBatches, kInstances);
      } catch (const std::exception& e) {
        ADD_FAILURE() << "tenant " << t << ": " << e.what();
        ++tenantFailures;
      }
    });
  }
  // Saboteur 1: garbage bytes. Expect a fatal categorized reject.
  threads.emplace_back([port] {
    Client chaos;
    chaos.connectTcp(port);
    const std::uint8_t garbage[24] = {0xba, 0xad, 0xf0, 0x0d};
    chaos.sendRaw(garbage);
    auto [header, payload] = chaos.readFrame();
    EXPECT_EQ(header.type, FrameType::Reject);
    const robust::util::Diagnostics diag("chaos");
    const robust::net::RejectInfo info =
        robust::net::decodeReject(payload, diag);
    EXPECT_TRUE(info.fatal);
    EXPECT_EQ(info.category, robust::util::RejectCategory::Format);
    chaos.closeNow();
  });
  // Saboteur 2: valid HELLO, then vanish mid-frame.
  threads.emplace_back([port] {
    Client chaos;
    chaos.connectTcp(port);
    chaos.hello("saboteur", 1);
    std::vector<std::uint8_t> partial;
    robust::net::encodeFrameHeader(
        FrameHeader{robust::net::kProtocolVersion, FrameType::Analyze,
                    1u << 16, 99},
        partial);
    partial.resize(partial.size() + 8, 0);
    chaos.sendRaw(partial);
    chaos.closeNow();
  });
  for (std::thread& th : threads) {
    th.join();
  }

  const ServerStats stats = waitForBalance(server);
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(tenantFailures.load(), 0);
  EXPECT_EQ(stats.sessionsActive, 0u) << "leaked sessions";
  EXPECT_EQ(stats.sessionsOpened, stats.sessionsClosed);
  EXPECT_EQ(stats.sessionsOpened, kTenants + 2);
  EXPECT_EQ(stats.batches, kTenants * kBatches);
  EXPECT_EQ(stats.instances, kTenants * kBatches * kInstances);
  // The garbage saboteur drew a Format reject; at least one unclean
  // disconnect was recorded.
  EXPECT_GE(stats.rejects[static_cast<std::size_t>(
                robust::util::RejectCategory::Format)],
            1u);
  EXPECT_GE(stats.disconnects, 1u);
  // 3 spec families across 5 tenants: 3 misses, 2 cross-tenant hits.
  EXPECT_EQ(stats.cacheMisses, 3u);
  EXPECT_EQ(stats.cacheHits, 2u);
  server.stop();
}

TEST(RobustdSoak, PollBackendAnswersTheSameBits) {
  ServerOptions options;
  options.tcpPort = 0;
  options.workers = 1;
  options.forcePoll = true;
  Server server(std::move(options));
  server.start();
  EXPECT_EQ(runTenant(server.port(), 1, 2, 16), 0u);
  const ServerStats stats = waitForBalance(server);
  EXPECT_EQ(stats.sessionsActive, 0u);
  server.stop();
}

TEST(RobustdSoak, EvictedSpecsStayUsableForSessionsThatPinnedThem) {
  ServerOptions options;
  options.tcpPort = 0;
  options.workers = 1;
  options.cacheCapacity = 1;  // every new spec evicts the previous one
  Server server(std::move(options));
  server.start();
  const std::uint16_t port = server.port();

  const ProblemSpec spec0 = makeSpec(0);
  const CompiledProblem oracle0 = CompiledProblem::compile(makeSpec(0));

  Client a;
  a.connectTcp(port);
  a.hello("pinner", 1);
  const robust::net::RegisterReply reg0 = a.registerProblem(spec0);
  EXPECT_FALSE(reg0.fromCache);

  // Another session churns the 1-entry cache past spec0.
  Client b;
  b.connectTcp(port);
  b.hello("churner", 1);
  (void)b.registerProblem(makeSpec(1));
  (void)b.registerProblem(makeSpec(2));

  // Session a's key must still answer — the entry is pinned by the
  // session, eviction only ended cross-tenant sharing.
  const std::vector<double> origins = makeBatch(spec0, 7, 0, 8);
  const std::vector<WireResult> got = a.analyze(reg0.key, 8, origins);
  EXPECT_EQ(bitCompare(got, offline(oracle0, origins, 8)), 0u);

  a.bye();
  b.bye();
  const ServerStats stats = waitForBalance(server);
  EXPECT_EQ(stats.sessionsActive, 0u);
  EXPECT_GE(stats.cacheEvictions, 1u);
  server.stop();
}

TEST(RobustdSoak, BackpressureDefersReadsWithoutCorruptingReplies) {
  ServerOptions options;
  options.tcpPort = 0;
  options.workers = 1;
  options.maxInflightBytes = 2048;  // a couple of batches trip the bound
  Server server(std::move(options));
  server.start();

  const ProblemSpec spec = makeSpec(0);
  const CompiledProblem oracle = CompiledProblem::compile(makeSpec(0));

  Client client;
  client.connectTcp(server.port());
  client.hello("firehose", 4);
  const robust::net::RegisterReply reg = client.registerProblem(spec);

  // Pipeline many ANALYZE frames without reading a single reply; the
  // server must defer reads instead of buffering unboundedly, then answer
  // every request in order with the offline bits.
  constexpr std::size_t kPipelined = 24;
  constexpr std::size_t kInstances = 16;
  std::vector<std::vector<double>> batches;
  for (std::size_t b = 0; b < kPipelined; ++b) {
    batches.push_back(makeBatch(spec, 99, b, kInstances));
    std::vector<std::uint8_t> payload;
    robust::net::encodeAnalyze(reg.key,
                               static_cast<std::uint32_t>(kInstances),
                               batches.back(), payload);
    const std::vector<std::uint8_t> frame = robust::net::buildFrame(
        FrameType::Analyze, static_cast<std::uint32_t>(1000 + b), payload);
    client.sendRaw(frame);
  }
  const robust::util::Diagnostics diag("soak");
  const robust::net::WireLimits limits;
  for (std::size_t b = 0; b < kPipelined; ++b) {
    auto [header, payload] = client.readFrame();
    ASSERT_EQ(header.type, FrameType::Result) << "batch " << b;
    EXPECT_EQ(header.requestId, 1000 + b) << "replies out of order";
    const std::vector<WireResult> got =
        robust::net::decodeResult(payload, limits, diag);
    EXPECT_EQ(bitCompare(got, offline(oracle, batches[b], kInstances)), 0u)
        << "batch " << b;
  }
  client.bye();

  const ServerStats stats = waitForBalance(server);
  EXPECT_EQ(stats.sessionsActive, 0u);
  EXPECT_GE(stats.backpressureStalls, 1u)
      << "the byte bound never deferred a read";
  server.stop();
}

TEST(RobustdSoak, SessionRunReportsAreWrittenOnClose) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "robustd_soak_reports")
          .string();
  std::filesystem::remove_all(dir);

  ServerOptions options;
  options.tcpPort = 0;
  options.workers = 1;
  options.reportDir = dir;
  Server server(std::move(options));
  server.start();
  EXPECT_EQ(runTenant(server.port(), 2, 1, 8), 0u);
  (void)waitForBalance(server);
  server.stop();

  std::size_t reports = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".json") {
      ++reports;
    }
  }
  EXPECT_EQ(reports, 1u);
  std::filesystem::remove_all(dir);
}

TEST(RobustdSoak, MalformedPayloadInsideAWellFramedFrameIsNotFatal) {
  ServerOptions options;
  options.tcpPort = 0;
  options.workers = 1;
  Server server(std::move(options));
  server.start();

  Client client;
  client.connectTcp(server.port());
  client.hello("resilient", 1);

  // ANALYZE against a key that was never registered: non-fatal Structure
  // reject, and the session keeps working afterwards.
  std::vector<double> one(kDim, 1.0);
  try {
    (void)client.analyze(0xdeadULL, 1, one);
    FAIL() << "bogus key analyzed";
  } catch (const robust::net::RejectedError& e) {
    EXPECT_FALSE(e.info().fatal);
    EXPECT_EQ(e.info().category, robust::util::RejectCategory::Structure);
  }

  const ProblemSpec spec = makeSpec(0);
  const CompiledProblem oracle = CompiledProblem::compile(makeSpec(0));
  const robust::net::RegisterReply reg = client.registerProblem(spec);
  const std::vector<double> origins = makeBatch(spec, 3, 0, 8);
  const std::vector<WireResult> got = client.analyze(reg.key, 8, origins);
  EXPECT_EQ(bitCompare(got, offline(oracle, origins, 8)), 0u);
  client.bye();

  const ServerStats stats = waitForBalance(server);
  EXPECT_EQ(stats.sessionsActive, 0u);
  server.stop();
}

// -------------------------------------------------------- introspection

using robust::obs::json::Value;

std::uint64_t statNumber(const Value& doc, const std::string& path) {
  const Value* cur = &doc;
  std::size_t start = 0;
  for (;;) {
    const std::size_t dot = path.find('.', start);
    const std::string key =
        dot == std::string::npos ? path.substr(start)
                                 : path.substr(start, dot - start);
    cur = cur->find(key);
    if (cur == nullptr) {
      ADD_FAILURE() << "stats document is missing '" << path << "'";
      return 0;
    }
    if (dot == std::string::npos) {
      EXPECT_TRUE(cur->isNumber()) << path << " is not a number";
      return static_cast<std::uint64_t>(cur->number);
    }
    start = dot + 1;
  }
}

// The STATS snapshot taken while multi-tenant load is in flight must be
// internally consistent, and the final snapshot must agree exactly with
// the offline ledger: the driving loop knows precisely how many frames,
// batches, instances, and registers every tenant submitted.
TEST(RobustdSoak, StatsSnapshotIsExactUnderConcurrentLoad) {
  ServerOptions options;
  options.tcpPort = 0;
  options.workers = 2;
  Server server(std::move(options));
  server.start();
  const std::uint16_t port = server.port();

  constexpr std::size_t kTenants = 4;
  constexpr std::size_t kBatches = 6;
  constexpr std::size_t kInstances = 24;

  std::atomic<std::uint64_t> mismatches{0};
  std::atomic<bool> loadDone{false};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kTenants; ++t) {
    threads.emplace_back([&, t] {
      try {
        mismatches += runTenant(port, t, kBatches, kInstances);
      } catch (const std::exception& e) {
        ADD_FAILURE() << "tenant " << t << ": " << e.what();
      }
    });
  }
  // A poller hammers STATS mid-load (no HELLO needed). Every snapshot it
  // sees must be internally consistent: instances accrue with batches, so
  // a tenant's instances is always batches * kInstances — a torn snapshot
  // would break that.
  threads.emplace_back([&] {
    Client poller;
    poller.connectTcp(port);
    while (!loadDone.load(std::memory_order_acquire)) {
      const Value doc = robust::obs::json::parse(poller.stats());
      const Value* tenants = doc.find("tenants");
      ASSERT_NE(tenants, nullptr);
      for (const auto& [name, t] : tenants->object) {
        if (name.rfind("tenant", 0) != 0) {
          continue;
        }
        EXPECT_EQ(statNumber(t, "instances"),
                  statNumber(t, "batches") * kInstances)
            << "torn per-tenant snapshot for " << name;
      }
    }
    poller.closeNow();
  });
  for (std::size_t t = 0; t < kTenants; ++t) {
    threads[t].join();
  }
  loadDone.store(true, std::memory_order_release);
  threads.back().join();
  (void)waitForBalance(server);

  Client finalClient;
  finalClient.connectTcp(port);
  const Value doc = robust::obs::json::parse(finalClient.stats());
  EXPECT_EQ(doc.find("schema")->string, "robust.stats");
  for (std::size_t t = 0; t < kTenants; ++t) {
    const std::string prefix = "tenants.tenant" + std::to_string(t) + ".";
    EXPECT_EQ(statNumber(doc, prefix + "sessions"), 1u);
    // HELLO + REGISTER + kBatches ANALYZE + BYE.
    EXPECT_EQ(statNumber(doc, prefix + "frames"), kBatches + 3);
    EXPECT_EQ(statNumber(doc, prefix + "batches"), kBatches);
    EXPECT_EQ(statNumber(doc, prefix + "instances"), kBatches * kInstances);
    EXPECT_EQ(statNumber(doc, prefix + "registers"), 1u);
    EXPECT_EQ(statNumber(doc, prefix + "rejects_total"), 0u);
    // Every completed batch fed the latency digests.
    EXPECT_EQ(statNumber(doc, prefix + "latency.analyze.count"), kBatches);
    EXPECT_EQ(statNumber(doc, prefix + "latency.compile.count"), 1u);
    EXPECT_EQ(statNumber(doc, prefix + "latency.queue.count"), kBatches + 1);
  }
  EXPECT_EQ(statNumber(doc, "server.batches"), kTenants * kBatches);
  EXPECT_EQ(statNumber(doc, "server.instances"),
            kTenants * kBatches * kInstances);
  EXPECT_EQ(statNumber(doc, "server.registers"), kTenants);
  // 3 spec families across 4 tenants: 3 misses, 1 cross-tenant hit.
  EXPECT_EQ(statNumber(doc, "cache.hits") + statNumber(doc, "cache.misses"),
            kTenants);
  EXPECT_EQ(mismatches.load(), 0u);
  finalClient.closeNow();
  (void)waitForBalance(server);
  server.stop();
}

// Hostile STATS / TRACE_DUMP payloads draw categorized NON-fatal rejects
// and the connection keeps answering afterwards.
TEST(RobustdSoak, HostileAdminPayloadsAreContainedNonFatally) {
  ServerOptions options;
  options.tcpPort = 0;
  options.workers = 1;
  Server server(std::move(options));
  server.start();

  Client client;
  client.connectTcp(server.port());
  const robust::util::Diagnostics diag("soak");

  const auto expectReject = [&client](FrameType type,
                                      const std::vector<std::uint8_t>& payload,
                                      robust::util::RejectCategory category,
                                      const std::string& what) {
    client.sendRaw(robust::net::buildFrame(type, 77, payload));
    auto [header, reply] = client.readFrame();
    ASSERT_EQ(header.type, FrameType::Reject) << what;
    EXPECT_EQ(header.requestId, 77u) << what;
    const robust::util::Diagnostics d("soak");
    const robust::net::RejectInfo info = robust::net::decodeReject(reply, d);
    EXPECT_FALSE(info.fatal) << what;
    EXPECT_EQ(info.category, category) << what;
  };

  std::vector<std::uint8_t> good;
  robust::net::encodeAdminRequest(robust::net::kStatsSchemaVersion, good);

  for (const FrameType type : {FrameType::Stats, FrameType::TraceDump}) {
    const std::string label =
        type == FrameType::Stats ? "STATS" : "TRACE_DUMP";
    // Unsupported schema version.
    std::vector<std::uint8_t> badVersion;
    robust::net::encodeAdminRequest(robust::net::kStatsSchemaVersion + 1,
                                    badVersion);
    expectReject(type, badVersion, robust::util::RejectCategory::Structure,
                 label + " bad version");
    // Oversized payload (trailing bytes after a well-formed request).
    std::vector<std::uint8_t> oversized = good;
    oversized.resize(64, 0xee);
    expectReject(type, oversized, robust::util::RejectCategory::Structure,
                 label + " oversized");
    // Every strict prefix of a valid request underruns: Truncated.
    for (std::size_t n = 0; n < good.size(); ++n) {
      const std::vector<std::uint8_t> prefix(
          good.begin(), good.begin() + static_cast<long>(n));
      expectReject(type, prefix, robust::util::RejectCategory::Truncated,
                   label + " prefix of " + std::to_string(n) + " bytes");
    }
  }

  // The same connection still answers both admin requests — the rejects
  // were non-fatal.
  const Value stats = robust::obs::json::parse(client.stats());
  EXPECT_EQ(stats.find("schema")->string, "robust.stats");
  EXPECT_GE(statNumber(stats, "rejects.structure"), 4u);
  EXPECT_GE(statNumber(stats, "rejects.truncated"), 16u);
  const Value trace = robust::obs::json::parse(client.traceDump());
  EXPECT_NE(trace.find("traceEvents"), nullptr);

  client.closeNow();
  (void)waitForBalance(server);
  server.stop();
}

void collectPaths(const Value& v, const std::string& prefix,
                  std::set<std::string>& out) {
  if (!v.isObject()) {
    out.insert(prefix);
    return;
  }
  for (const auto& [key, child] : v.object) {
    collectPaths(child, prefix.empty() ? key : prefix + "." + key, out);
  }
}

// The same serial workload against the epoll and poll backends must
// produce STATS documents with identical key-path structure and identical
// values on every deterministic counter (wall-clock latency digests and
// global flight-ring occupancy may differ).
TEST(RobustdSoak, CrossBackendStatsAreStructurallyIdentical) {
  const auto runBackend = [](bool forcePoll) {
    ServerOptions options;
    options.tcpPort = 0;
    options.workers = 1;
    options.forcePoll = forcePoll;
    Server server(std::move(options));
    server.start();
    EXPECT_EQ(runTenant(server.port(), 1, 3, 16), 0u);
    (void)waitForBalance(server);
    Client client;
    client.connectTcp(server.port());
    const std::string text = client.stats();
    client.closeNow();
    (void)waitForBalance(server);
    server.stop();
    return text;
  };
  const Value epoll = robust::obs::json::parse(runBackend(false));
  const Value poll = robust::obs::json::parse(runBackend(true));

  std::set<std::string> epollPaths;
  std::set<std::string> pollPaths;
  collectPaths(epoll, "", epollPaths);
  collectPaths(poll, "", pollPaths);
  EXPECT_EQ(epollPaths, pollPaths) << "backends disagree on document shape";

  for (const char* path :
       {"server.sessions_opened", "server.sessions_closed", "server.frames",
        "server.batches", "server.instances", "server.registers",
        "server.stats_requests", "cache.hits", "cache.misses",
        "rejects.total", "tenants.tenant1.frames", "tenants.tenant1.batches",
        "tenants.tenant1.instances", "tenants.tenant1.registers",
        "tenants.tenant1.latency.analyze.count"}) {
    EXPECT_EQ(statNumber(epoll, path), statNumber(poll, path))
        << "backends disagree on " << path;
  }
}

// Deterministic test clock for the byte-determinism pin: atomic because
// the IO thread and the pool worker both read it.
std::atomic<std::int64_t> gSoakClock{0};
std::int64_t soakClock() noexcept {
  return 1000000 + gSoakClock.fetch_add(500, std::memory_order_relaxed);
}

// Under the test clock, a serial single-tenant flow reads the clock in a
// deterministic order (one arrival event per frame, one enqueue stamp and
// two work timestamps per dispatched request), so the TRACE_DUMP drain
// must be BYTE-identical between the epoll and poll backends.
TEST(RobustdSoak, TraceDumpIsByteDeterministicAcrossBackends) {
  const auto runBackend = [](bool forcePoll) {
    robust::obs::clearFlight();
    gSoakClock.store(0, std::memory_order_relaxed);
    robust::obs::detail::setClockForTesting(&soakClock);
    ServerOptions options;
    options.tcpPort = 0;
    options.workers = 1;
    options.forcePoll = forcePoll;
    Server server(std::move(options));
    server.start();

    const ProblemSpec spec = makeSpec(0);
    Client client;
    client.connectTcp(server.port());
    client.hello("flight-tenant", 1);
    const robust::net::RegisterReply reg = client.registerProblem(spec);
    for (std::size_t b = 0; b < 2; ++b) {
      const std::vector<double> origins = makeBatch(spec, 1, b, 8);
      (void)client.analyze(reg.key, 8, origins);
    }
    const std::string dump = client.traceDump();
    client.bye();
    (void)waitForBalance(server);
    server.stop();
    robust::obs::detail::setClockForTesting(nullptr);
    robust::obs::clearFlight();
    return dump;
  };
  robust::obs::setFlightCapacity(robust::obs::kDefaultFlightCapacity);
  const std::string epollDump = runBackend(false);
  const std::string pollDump = runBackend(true);
  EXPECT_EQ(epollDump, pollDump)
      << "flight dump bytes differ between epoll and poll";
  // The dump is real: it holds the per-frame arrival events (including the
  // TRACE_DUMP frame itself) and both work spans, requestId-correlated.
  EXPECT_NE(epollDump.find("robustd.frame.hello"), std::string::npos);
  EXPECT_NE(epollDump.find("robustd.frame.trace_dump"), std::string::npos);
  EXPECT_NE(epollDump.find("robustd.work.register"), std::string::npos);
  EXPECT_NE(epollDump.find("robustd.work.analyze"), std::string::npos);
  // Draining left nothing behind inside the dump itself: a second dump on
  // a fresh connection right after would have started empty. (The ring was
  // cleared as part of the drain; the frames after it re-populate it.)
}

}  // namespace
