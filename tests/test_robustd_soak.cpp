// In-process soak of the robustd daemon: N concurrent tenants stream
// batches whose answers must be bit-identical to the offline lane while
// saboteur connections inject malformed frames and abrupt disconnects.
// Afterwards the session ledger must balance exactly — zero leaked
// sessions — and no fair tenant may have seen a single wrong bit.
#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "robust/core/compiled.hpp"
#include "robust/net/client.hpp"
#include "robust/net/server.hpp"
#include "robust/net/wire.hpp"
#include "robust/util/rng.hpp"

namespace {

using robust::core::AnalysisInstance;
using robust::core::CompiledProblem;
using robust::core::ImpactFunction;
using robust::core::LinearConstraint;
using robust::core::MetricResult;
using robust::core::PerformanceFeature;
using robust::core::ProblemSpec;
using robust::core::ToleranceBounds;
using robust::net::Client;
using robust::net::FrameHeader;
using robust::net::FrameType;
using robust::net::Server;
using robust::net::ServerOptions;
using robust::net::ServerStats;
using robust::net::WireResult;

constexpr std::size_t kDim = 12;
constexpr std::size_t kFeatures = 5;

/// Deterministic spec family shared with a locally compiled oracle. Odd
/// families carry a hard constraint so infeasible-origin classification
/// is part of the soak.
ProblemSpec makeSpec(std::uint64_t family) {
  auto rng = robust::makeStream(2026, 500 + family);
  ProblemSpec spec;
  spec.parameter.name = "pi";
  spec.parameter.origin.resize(kDim);
  for (double& v : spec.parameter.origin) {
    v = rng.uniform(1.0, 3.0);
  }
  for (std::size_t f = 0; f < kFeatures; ++f) {
    robust::num::Vec weights(kDim);
    for (double& w : weights) {
      w = rng.uniform(0.2, 1.5);
    }
    const double constant = rng.uniform(-0.5, 0.5);
    double phi = constant;
    for (std::size_t j = 0; j < kDim; ++j) {
      phi += weights[j] * spec.parameter.origin[j];
    }
    const double slack = rng.uniform(1.0, 4.0);
    spec.features.push_back(PerformanceFeature{
        "phi_" + std::to_string(f),
        ImpactFunction::affine(std::move(weights), constant),
        ToleranceBounds::between(phi - slack, phi + slack)});
  }
  if (family % 2 == 1) {
    LinearConstraint budget;
    budget.name = "budget";
    budget.coeffs.assign(kDim, 1.0);
    double load = 0.0;
    for (double v : spec.parameter.origin) {
      load += v;
    }
    budget.bound = 1.02 * load;
    spec.constraints.push_back(std::move(budget));
  }
  return spec;
}

std::vector<double> makeBatch(const ProblemSpec& spec, std::uint64_t tenant,
                              std::size_t batch, std::size_t instances) {
  auto rng = robust::makeStream(2026, tenant * 1000 + batch);
  std::vector<double> origins(instances * kDim);
  for (std::size_t i = 0; i < instances; ++i) {
    for (std::size_t j = 0; j < kDim; ++j) {
      origins[i * kDim + j] =
          spec.parameter.origin[j] + rng.uniform(-0.4, 0.4);
    }
  }
  return origins;
}

std::vector<WireResult> offline(const CompiledProblem& problem,
                                const std::vector<double>& origins,
                                std::size_t instances) {
  std::vector<AnalysisInstance> batch(instances);
  for (std::size_t i = 0; i < instances; ++i) {
    batch[i].origin =
        std::span<const double>(origins.data() + i * kDim, kDim);
  }
  const std::vector<MetricResult> metrics =
      problem.analyzeBatchMetric(batch, /*threads=*/1);
  std::vector<WireResult> expect(instances);
  const bool constrained = !problem.constraints().empty();
  for (std::size_t i = 0; i < instances; ++i) {
    expect[i].rho = metrics[i].metric;
    expect[i].bindingFeature =
        static_cast<std::uint32_t>(metrics[i].bindingFeature);
    expect[i].floored = metrics[i].floored;
    expect[i].infeasibleOrigin =
        constrained && !problem.originFeasible(batch[i].origin);
  }
  return expect;
}

std::uint64_t bitCompare(const std::vector<WireResult>& got,
                         const std::vector<WireResult>& expect) {
  EXPECT_EQ(got.size(), expect.size());
  std::uint64_t mismatches = 0;
  for (std::size_t i = 0; i < got.size() && i < expect.size(); ++i) {
    const bool same =
        std::memcmp(&got[i].rho, &expect[i].rho, sizeof(double)) == 0 &&
        got[i].bindingFeature == expect[i].bindingFeature &&
        got[i].floored == expect[i].floored &&
        got[i].infeasibleOrigin == expect[i].infeasibleOrigin;
    if (!same) {
      ++mismatches;
    }
  }
  return mismatches;
}

/// One fair tenant: register, stream, verify, BYE.
std::uint64_t runTenant(std::uint16_t port, std::uint64_t tenant,
                        std::size_t batches, std::size_t instances) {
  const std::uint64_t family = tenant % 3;
  const ProblemSpec spec = makeSpec(family);
  const CompiledProblem oracle = CompiledProblem::compile(makeSpec(family));

  Client client;
  client.connectTcp(port);
  client.hello("tenant" + std::to_string(tenant),
               static_cast<std::uint32_t>(instances));
  const robust::net::RegisterReply reg = client.registerProblem(spec);

  std::uint64_t mismatches = 0;
  for (std::size_t b = 0; b < batches; ++b) {
    const std::vector<double> origins =
        makeBatch(spec, tenant, b, instances);
    const std::vector<WireResult> got = client.analyze(
        reg.key, static_cast<std::uint32_t>(instances), origins);
    mismatches += bitCompare(got, offline(oracle, origins, instances));
  }
  client.bye();
  return mismatches;
}

ServerStats waitForBalance(Server& server) {
  // Unclean disconnects are torn down asynchronously by the IO thread;
  // give it a moment before asserting the ledger.
  ServerStats stats = server.stats();
  for (int i = 0; i < 100 && stats.sessionsActive != 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    stats = server.stats();
  }
  return stats;
}

TEST(RobustdSoak, TenantsStayBitIdenticalUnderChaos) {
  ServerOptions options;
  options.tcpPort = 0;
  options.workers = 2;
  options.cacheCapacity = 8;
  Server server(std::move(options));
  server.start();
  const std::uint16_t port = server.port();

  constexpr std::size_t kTenants = 5;
  constexpr std::size_t kBatches = 4;
  constexpr std::size_t kInstances = 32;

  std::atomic<std::uint64_t> mismatches{0};
  std::atomic<int> tenantFailures{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kTenants; ++t) {
    threads.emplace_back([&, t] {
      try {
        mismatches += runTenant(port, t, kBatches, kInstances);
      } catch (const std::exception& e) {
        ADD_FAILURE() << "tenant " << t << ": " << e.what();
        ++tenantFailures;
      }
    });
  }
  // Saboteur 1: garbage bytes. Expect a fatal categorized reject.
  threads.emplace_back([port] {
    Client chaos;
    chaos.connectTcp(port);
    const std::uint8_t garbage[24] = {0xba, 0xad, 0xf0, 0x0d};
    chaos.sendRaw(garbage);
    auto [header, payload] = chaos.readFrame();
    EXPECT_EQ(header.type, FrameType::Reject);
    const robust::util::Diagnostics diag("chaos");
    const robust::net::RejectInfo info =
        robust::net::decodeReject(payload, diag);
    EXPECT_TRUE(info.fatal);
    EXPECT_EQ(info.category, robust::util::RejectCategory::Format);
    chaos.closeNow();
  });
  // Saboteur 2: valid HELLO, then vanish mid-frame.
  threads.emplace_back([port] {
    Client chaos;
    chaos.connectTcp(port);
    chaos.hello("saboteur", 1);
    std::vector<std::uint8_t> partial;
    robust::net::encodeFrameHeader(
        FrameHeader{robust::net::kProtocolVersion, FrameType::Analyze,
                    1u << 16, 99},
        partial);
    partial.resize(partial.size() + 8, 0);
    chaos.sendRaw(partial);
    chaos.closeNow();
  });
  for (std::thread& th : threads) {
    th.join();
  }

  const ServerStats stats = waitForBalance(server);
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(tenantFailures.load(), 0);
  EXPECT_EQ(stats.sessionsActive, 0u) << "leaked sessions";
  EXPECT_EQ(stats.sessionsOpened, stats.sessionsClosed);
  EXPECT_EQ(stats.sessionsOpened, kTenants + 2);
  EXPECT_EQ(stats.batches, kTenants * kBatches);
  EXPECT_EQ(stats.instances, kTenants * kBatches * kInstances);
  // The garbage saboteur drew a Format reject; at least one unclean
  // disconnect was recorded.
  EXPECT_GE(stats.rejects[static_cast<std::size_t>(
                robust::util::RejectCategory::Format)],
            1u);
  EXPECT_GE(stats.disconnects, 1u);
  // 3 spec families across 5 tenants: 3 misses, 2 cross-tenant hits.
  EXPECT_EQ(stats.cacheMisses, 3u);
  EXPECT_EQ(stats.cacheHits, 2u);
  server.stop();
}

TEST(RobustdSoak, PollBackendAnswersTheSameBits) {
  ServerOptions options;
  options.tcpPort = 0;
  options.workers = 1;
  options.forcePoll = true;
  Server server(std::move(options));
  server.start();
  EXPECT_EQ(runTenant(server.port(), 1, 2, 16), 0u);
  const ServerStats stats = waitForBalance(server);
  EXPECT_EQ(stats.sessionsActive, 0u);
  server.stop();
}

TEST(RobustdSoak, EvictedSpecsStayUsableForSessionsThatPinnedThem) {
  ServerOptions options;
  options.tcpPort = 0;
  options.workers = 1;
  options.cacheCapacity = 1;  // every new spec evicts the previous one
  Server server(std::move(options));
  server.start();
  const std::uint16_t port = server.port();

  const ProblemSpec spec0 = makeSpec(0);
  const CompiledProblem oracle0 = CompiledProblem::compile(makeSpec(0));

  Client a;
  a.connectTcp(port);
  a.hello("pinner", 1);
  const robust::net::RegisterReply reg0 = a.registerProblem(spec0);
  EXPECT_FALSE(reg0.fromCache);

  // Another session churns the 1-entry cache past spec0.
  Client b;
  b.connectTcp(port);
  b.hello("churner", 1);
  (void)b.registerProblem(makeSpec(1));
  (void)b.registerProblem(makeSpec(2));

  // Session a's key must still answer — the entry is pinned by the
  // session, eviction only ended cross-tenant sharing.
  const std::vector<double> origins = makeBatch(spec0, 7, 0, 8);
  const std::vector<WireResult> got = a.analyze(reg0.key, 8, origins);
  EXPECT_EQ(bitCompare(got, offline(oracle0, origins, 8)), 0u);

  a.bye();
  b.bye();
  const ServerStats stats = waitForBalance(server);
  EXPECT_EQ(stats.sessionsActive, 0u);
  EXPECT_GE(stats.cacheEvictions, 1u);
  server.stop();
}

TEST(RobustdSoak, BackpressureDefersReadsWithoutCorruptingReplies) {
  ServerOptions options;
  options.tcpPort = 0;
  options.workers = 1;
  options.maxInflightBytes = 2048;  // a couple of batches trip the bound
  Server server(std::move(options));
  server.start();

  const ProblemSpec spec = makeSpec(0);
  const CompiledProblem oracle = CompiledProblem::compile(makeSpec(0));

  Client client;
  client.connectTcp(server.port());
  client.hello("firehose", 4);
  const robust::net::RegisterReply reg = client.registerProblem(spec);

  // Pipeline many ANALYZE frames without reading a single reply; the
  // server must defer reads instead of buffering unboundedly, then answer
  // every request in order with the offline bits.
  constexpr std::size_t kPipelined = 24;
  constexpr std::size_t kInstances = 16;
  std::vector<std::vector<double>> batches;
  for (std::size_t b = 0; b < kPipelined; ++b) {
    batches.push_back(makeBatch(spec, 99, b, kInstances));
    std::vector<std::uint8_t> payload;
    robust::net::encodeAnalyze(reg.key,
                               static_cast<std::uint32_t>(kInstances),
                               batches.back(), payload);
    const std::vector<std::uint8_t> frame = robust::net::buildFrame(
        FrameType::Analyze, static_cast<std::uint32_t>(1000 + b), payload);
    client.sendRaw(frame);
  }
  const robust::util::Diagnostics diag("soak");
  const robust::net::WireLimits limits;
  for (std::size_t b = 0; b < kPipelined; ++b) {
    auto [header, payload] = client.readFrame();
    ASSERT_EQ(header.type, FrameType::Result) << "batch " << b;
    EXPECT_EQ(header.requestId, 1000 + b) << "replies out of order";
    const std::vector<WireResult> got =
        robust::net::decodeResult(payload, limits, diag);
    EXPECT_EQ(bitCompare(got, offline(oracle, batches[b], kInstances)), 0u)
        << "batch " << b;
  }
  client.bye();

  const ServerStats stats = waitForBalance(server);
  EXPECT_EQ(stats.sessionsActive, 0u);
  EXPECT_GE(stats.backpressureStalls, 1u)
      << "the byte bound never deferred a read";
  server.stop();
}

TEST(RobustdSoak, SessionRunReportsAreWrittenOnClose) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "robustd_soak_reports")
          .string();
  std::filesystem::remove_all(dir);

  ServerOptions options;
  options.tcpPort = 0;
  options.workers = 1;
  options.reportDir = dir;
  Server server(std::move(options));
  server.start();
  EXPECT_EQ(runTenant(server.port(), 2, 1, 8), 0u);
  (void)waitForBalance(server);
  server.stop();

  std::size_t reports = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".json") {
      ++reports;
    }
  }
  EXPECT_EQ(reports, 1u);
  std::filesystem::remove_all(dir);
}

TEST(RobustdSoak, MalformedPayloadInsideAWellFramedFrameIsNotFatal) {
  ServerOptions options;
  options.tcpPort = 0;
  options.workers = 1;
  Server server(std::move(options));
  server.start();

  Client client;
  client.connectTcp(server.port());
  client.hello("resilient", 1);

  // ANALYZE against a key that was never registered: non-fatal Structure
  // reject, and the session keeps working afterwards.
  std::vector<double> one(kDim, 1.0);
  try {
    (void)client.analyze(0xdeadULL, 1, one);
    FAIL() << "bogus key analyzed";
  } catch (const robust::net::RejectedError& e) {
    EXPECT_FALSE(e.info().fatal);
    EXPECT_EQ(e.info().category, robust::util::RejectCategory::Structure);
  }

  const ProblemSpec spec = makeSpec(0);
  const CompiledProblem oracle = CompiledProblem::compile(makeSpec(0));
  const robust::net::RegisterReply reg = client.registerProblem(spec);
  const std::vector<double> origins = makeBatch(spec, 3, 0, 8);
  const std::vector<WireResult> got = client.analyze(reg.key, 8, origins);
  EXPECT_EQ(bitCompare(got, offline(oracle, origins, 8)), 0u);
  client.bye();

  const ServerStats stats = waitForBalance(server);
  EXPECT_EQ(stats.sessionsActive, 0u);
  server.stop();
}

}  // namespace
