// The streaming engine's contract suite.
//
// The heart is the bit-identity grid: core::analyzeStream over an
// on-disk instance file must return the exact first-minimum fold of the
// serial in-memory analyzeBatchMetric pass — metric BITS, argmin
// instance, binding feature, floored flag — across every shard size,
// thread count, SIMD dispatch target, screening mode, and the
// mmap-vs-read fallback. Around it: the binary format's validation
// boundary (every malformed header/payload rejected with a categorized
// diagnostic), the writer's fail-fast value policy, and the %.17g
// bit-identical CSV round trip backing the etc_pack converter.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "robust/core/compiled.hpp"
#include "robust/core/instance_file.hpp"
#include "robust/core/stream.hpp"
#include "robust/numeric/simd.hpp"
#include "robust/scheduling/etc.hpp"
#include "robust/scheduling/etc_io.hpp"
#include "robust/util/error.hpp"
#include "robust/util/mmap_file.hpp"
#include "robust/util/rng.hpp"

namespace robust::core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

bool bitEq(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

/// A writable temp path, removed when the guard dies.
class TempFile {
 public:
  explicit TempFile(const std::string& tag) {
    static int counter = 0;
    path_ = (std::filesystem::temp_directory_path() /
             ("robust_stream_test_" + tag + "_" +
              std::to_string(::getpid()) + "_" + std::to_string(counter++)))
                .string();
  }
  ~TempFile() {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

void writeBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.is_open());
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

/// The perf-bench problem family, shrunk: affine rows with atMost bounds
/// spread so pruning/screening have real work to do.
CompiledProblem streamProblem(std::size_t rows, std::size_t dims,
                              bool discrete = false,
                              SolverKind solver = SolverKind::Auto) {
  Pcg32 rng(6);
  ProblemSpec spec;
  spec.parameter.name = "pi";
  spec.parameter.discrete = discrete;
  spec.parameter.origin.resize(dims);
  for (double& v : spec.parameter.origin) {
    v = rng.uniform(0.5, 1.5);
  }
  spec.options.solver = solver;
  spec.features.reserve(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    num::Vec weights(dims);
    for (double& w : weights) {
      w = rng.uniform(0.1, 2.0);
    }
    double atOrigin = 0.0;
    for (std::size_t k = 0; k < dims; ++k) {
      atOrigin += weights[k] * spec.parameter.origin[k];
    }
    spec.features.push_back(PerformanceFeature{
        "F_" + std::to_string(r),
        ImpactFunction::affine(std::move(weights)),
        ToleranceBounds::atMost(atOrigin * rng.uniform(1.05, 4.0))});
  }
  return CompiledProblem::compile(std::move(spec));
}

/// Perturbed instance batch around the problem's default origin, with a
/// few duplicates and one near-violation mixed in so ties and zero-radius
/// paths get exercised.
std::vector<double> streamBatch(const CompiledProblem& problem,
                                std::size_t count, std::uint64_t seed) {
  const std::size_t dim = problem.dimension();
  std::vector<double> values(count * dim);
  for (std::size_t i = 0; i < count; ++i) {
    Pcg32 rng(seed, i);
    for (std::size_t k = 0; k < dim; ++k) {
      values[i * dim + k] =
          problem.parameter().origin[k] * rng.uniform(0.97, 1.03);
    }
  }
  // Duplicate instance 3 at position 40 (first-index tie-break) and push
  // instance 7 far out (violated at the operating point, radius 0).
  if (count > 40) {
    for (std::size_t k = 0; k < dim; ++k) {
      values[40 * dim + k] = values[3 * dim + k];
    }
  }
  if (count > 7) {
    for (std::size_t k = 0; k < dim; ++k) {
      values[7 * dim + k] = problem.parameter().origin[k] * 10.0;
    }
  }
  return values;
}

/// The serial reference: analyzeBatchMetric on one thread, folded with
/// the first-strict-minimum rule.
StreamResult serialReference(const CompiledProblem& problem,
                             const std::vector<double>& values) {
  const std::size_t dim = problem.dimension();
  const std::size_t n = values.size() / dim;
  std::vector<AnalysisInstance> instances(n);
  for (std::size_t i = 0; i < n; ++i) {
    instances[i] =
        AnalysisInstance{{values.data() + i * dim, dim}, {}, {}};
  }
  std::vector<MetricResult> out(n);
  problem.analyzeBatchMetric(instances, out, /*threads=*/1);
  StreamResult result;
  result.metric = kInf;
  result.instances = n;
  for (std::size_t i = 0; i < n; ++i) {
    if (out[i].metric < result.metric) {
      result.metric = out[i].metric;
      result.argminInstance = i;
      result.bindingFeature = out[i].bindingFeature;
      result.floored = out[i].floored;
    }
  }
  return result;
}

std::string packToString(const std::vector<double>& values,
                         std::uint64_t dim) {
  std::ostringstream out(std::ios::binary);
  InstanceFileWriter writer(out, dim);
  writer.appendBatch(values);
  writer.finish();
  return out.str();
}

void writeInstanceFile(const std::string& path,
                       const std::vector<double>& values,
                       std::uint64_t dim) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.is_open());
  InstanceFileWriter writer(out, dim);
  writer.appendBatch(values);
  writer.finish();
}

void expectSameResult(const StreamResult& got, const StreamResult& want,
                      const std::string& what) {
  EXPECT_TRUE(bitEq(got.metric, want.metric))
      << what << ": metric " << got.metric << " vs " << want.metric;
  EXPECT_EQ(got.argminInstance, want.argminInstance) << what;
  EXPECT_EQ(got.bindingFeature, want.bindingFeature) << what;
  EXPECT_EQ(got.floored, want.floored) << what;
}

// ---------------------------------------------------------------------------
// Format round trips and validation.
// ---------------------------------------------------------------------------

TEST(InstanceFile, WriteReadRoundTripBitIdentical) {
  const std::vector<double> values = {1.5, -2.25, 0.0,
                                      3.14159, 1e-300, 7.0};
  const std::string bytes = packToString(values, 3);
  EXPECT_EQ(bytes.size(), kInstanceFileHeaderBytes + values.size() * 8);

  const util::Diagnostics diag("roundtrip");
  const InstanceData data = loadInstanceData(bytes, diag);
  EXPECT_EQ(data.header.dim, 3u);
  EXPECT_EQ(data.header.instances, 2u);
  ASSERT_EQ(data.values.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_TRUE(bitEq(data.values[i], values[i])) << i;
  }
}

TEST(InstanceFile, ReaderMatchesWriter) {
  const auto problem = streamProblem(8, 5);
  const auto values = streamBatch(problem, 10, 11);
  TempFile file("reader");
  writeInstanceFile(file.path(), values, 5);

  const InstanceFileReader reader(file.path());
  EXPECT_EQ(reader.dim(), 5u);
  EXPECT_EQ(reader.instances(), 10u);
  util::MmapFile::View view;
  const auto span = reader.read(2, 3, view);
  ASSERT_EQ(span.size(), 15u);
  for (std::size_t i = 0; i < span.size(); ++i) {
    EXPECT_TRUE(bitEq(span[i], values[2 * 5 + i])) << i;
  }
}

TEST(InstanceFile, EveryHeaderCorruptionIsCategorized) {
  const std::string good = packToString({1.0, 2.0, 3.0, 4.0}, 2);
  const util::Diagnostics diag("corrupt");

  auto expectReject = [&](std::string bytes, util::RejectCategory category,
                          const std::string& what) {
    try {
      (void)loadInstanceData(bytes, diag);
      FAIL() << what << ": accepted";
    } catch (const util::ParseError& err) {
      EXPECT_EQ(err.diagnostic().category, category) << what;
    }
  };

  std::string bad = good;
  bad[0] = 'X';
  expectReject(bad, util::RejectCategory::Format, "magic");

  bad = good;
  bad[8] = 9;  // version
  expectReject(bad, util::RejectCategory::Format, "version");

  bad = good;
  bad[12] = 1;  // flags
  expectReject(bad, util::RejectCategory::Format, "flags");

  bad = good;
  bad[40] = 1;  // reserved
  expectReject(bad, util::RejectCategory::Format, "reserved");

  bad = good;
  bad[16] = 0;  // dim -> 0
  expectReject(bad, util::RejectCategory::Domain, "zero dim");

  bad = good;
  bad[22] = 0x7f;  // dim -> astronomically large
  expectReject(bad, util::RejectCategory::Domain, "huge dim");

  bad = good;
  bad.resize(bad.size() - 1);  // mid-payload
  expectReject(bad, util::RejectCategory::Truncated, "truncated payload");

  bad = good;
  bad.resize(20);  // mid-header
  expectReject(bad, util::RejectCategory::Truncated, "truncated header");

  bad = good;
  bad.push_back('\0');  // trailing byte
  expectReject(bad, util::RejectCategory::Structure, "trailing");

  bad = good;
  bad[24] = 1;  // declares 1 instance, payload holds 2
  expectReject(bad, util::RejectCategory::Structure, "undersized count");
}

TEST(InstanceFile, NonFinitePayloadRejectedWithPosition) {
  std::vector<double> values = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  std::string bytes = packToString(values, 3);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::memcpy(bytes.data() + kInstanceFileHeaderBytes + 4 * sizeof(double),
              &nan, sizeof(nan));
  const util::Diagnostics diag("nan-payload");
  try {
    (void)loadInstanceData(bytes, diag);
    FAIL() << "NaN admitted";
  } catch (const util::ParseError& err) {
    EXPECT_EQ(err.diagnostic().category, util::RejectCategory::Domain);
    EXPECT_EQ(err.diagnostic().line, 2u);    // instance 2 (1-based)
    EXPECT_EQ(err.diagnostic().column, 2u);  // component 2 (1-based)
  }
  // The permissive policy admits it (archive inspection).
  const InstanceData data =
      loadInstanceData(bytes, diag, InputPolicy::permissive());
  EXPECT_TRUE(std::isnan(data.values[4]));
}

TEST(InstanceFile, WriterRejectsNonFiniteFailFast) {
  std::ostringstream out(std::ios::binary);
  InstanceFileWriter writer(out, 2, InputPolicy::strict(), "writer-test");
  const double values[2] = {1.0, std::numeric_limits<double>::infinity()};
  try {
    writer.append({values, 2});
    FAIL() << "inf written";
  } catch (const util::ParseError& err) {
    EXPECT_EQ(err.diagnostic().category, util::RejectCategory::Domain);
    EXPECT_EQ(err.diagnostic().line, 1u);
    EXPECT_EQ(err.diagnostic().column, 2u);
  }
}

TEST(InstanceFile, EtcCsvRoundTripIsByteIdentical) {
  // The etc_pack converter's core loop: ETC rows (one app = one
  // instance vector) -> binary -> back -> %.17g CSV must reproduce the
  // original CSV byte for byte.
  sched::EtcOptions options;
  options.apps = 7;
  options.machines = 4;
  Pcg32 rng(2003);
  const sched::EtcMatrix etc = sched::generateEtc(options, rng);
  std::ostringstream csv1;
  sched::saveEtcCsv(etc, csv1);

  std::vector<double> flat(etc.apps() * etc.machines());
  for (std::size_t a = 0; a < etc.apps(); ++a) {
    for (std::size_t m = 0; m < etc.machines(); ++m) {
      flat[a * etc.machines() + m] = etc(a, m);
    }
  }
  const std::string bytes = packToString(flat, etc.machines());

  const util::Diagnostics diag("etc-roundtrip");
  const InstanceData data = loadInstanceData(bytes, diag);
  sched::EtcMatrix back(data.header.instances, data.header.dim);
  for (std::size_t a = 0; a < back.apps(); ++a) {
    for (std::size_t m = 0; m < back.machines(); ++m) {
      back(a, m) = data.values[a * back.machines() + m];
    }
  }
  std::ostringstream csv2;
  sched::saveEtcCsv(back, csv2);
  EXPECT_EQ(csv1.str(), csv2.str());
}

// ---------------------------------------------------------------------------
// The bit-identity grid.
// ---------------------------------------------------------------------------

TEST(AnalyzeStream, BitIdenticalAcrossShardsThreadsTargetsScreens) {
  const auto problem = streamProblem(96, 24);
  const auto values = streamBatch(problem, 500, 12);
  const StreamResult want = serialReference(problem, values);
  ASSERT_TRUE(std::isfinite(want.metric));

  TempFile file("grid");
  writeInstanceFile(file.path(), values, 24);

  std::vector<num::simd::Target> targets = {num::simd::Target::Scalar};
  if (num::simd::avx2Available()) {
    targets.push_back(num::simd::Target::Avx2);
  }
  for (const num::simd::Target target : targets) {
    num::simd::setTarget(target);
    for (const std::size_t shard : {1u, 7u, 64u, 4096u}) {
      for (const std::size_t threads : {1u, 2u, 8u}) {
        for (const bool screen : {true, false}) {
          StreamOptions options;
          options.shardInstances = shard;
          options.threads = threads;
          options.screen = screen;
          const std::string what =
              std::string(num::simd::toString(target)) + "/shard" +
              std::to_string(shard) + "/t" + std::to_string(threads) +
              (screen ? "/screen" : "/noscreen");
          expectSameResult(analyzeStream(problem, file.path(), options),
                           want, "file " + what);
          expectSameResult(analyzeStreamValues(problem, values, options),
                           want, "values " + what);
        }
      }
    }
  }
  num::simd::setTarget(num::simd::avx2Available() ? num::simd::Target::Avx2
                                                  : num::simd::Target::Scalar);
  // The duplicated minimum (if it ever became the min) and the shard
  // reduction both keep the FIRST index; spot-check the counters too.
  StreamOptions options;
  options.shardInstances = 64;
  const StreamResult got = analyzeStream(problem, file.path(), options);
  EXPECT_EQ(got.instances, 500u);
  EXPECT_EQ(got.shards, 8u);
}

TEST(AnalyzeStream, TieBreakKeepsFirstInstance) {
  const auto problem = streamProblem(16, 8);
  // Every instance identical: the argmin must be instance 0 for every
  // sharding.
  const std::size_t dim = problem.dimension();
  std::vector<double> one(dim);
  Pcg32 rng(5, 99);
  for (std::size_t k = 0; k < dim; ++k) {
    one[k] = problem.parameter().origin[k] * rng.uniform(0.98, 1.02);
  }
  std::vector<double> values;
  for (int i = 0; i < 37; ++i) {
    values.insert(values.end(), one.begin(), one.end());
  }
  for (const std::size_t shard : {1u, 4u, 64u}) {
    for (const std::size_t threads : {1u, 8u}) {
      StreamOptions options;
      options.shardInstances = shard;
      options.threads = threads;
      const StreamResult got = analyzeStreamValues(problem, values, options);
      EXPECT_EQ(got.argminInstance, 0u)
          << "shard " << shard << " threads " << threads;
    }
  }
}

TEST(AnalyzeStream, DiscreteFloorMatchesSerial) {
  const auto problem = streamProblem(24, 8, /*discrete=*/true);
  const auto values = streamBatch(problem, 100, 13);
  const StreamResult want = serialReference(problem, values);
  EXPECT_TRUE(want.floored);
  for (const std::size_t shard : {1u, 16u}) {
    StreamOptions options;
    options.shardInstances = shard;
    options.threads = 4;
    expectSameResult(analyzeStreamValues(problem, values, options), want,
                     "discrete shard " + std::to_string(shard));
  }
}

TEST(AnalyzeStream, CallableFeatureFallsBackBitIdentical) {
  Pcg32 rng(21);
  ProblemSpec spec;
  spec.parameter.name = "pi";
  spec.parameter.origin = {1.0, 2.0, 3.0};
  for (int r = 0; r < 4; ++r) {
    num::Vec weights(3);
    for (double& w : weights) {
      w = rng.uniform(0.2, 1.5);
    }
    double atOrigin = 0.0;
    for (std::size_t k = 0; k < 3; ++k) {
      atOrigin += weights[k] * spec.parameter.origin[k];
    }
    spec.features.push_back(PerformanceFeature{
        "A_" + std::to_string(r), ImpactFunction::affine(std::move(weights)),
        ToleranceBounds::atMost(atOrigin * 1.4)});
  }
  spec.features.push_back(PerformanceFeature{
      "quad",
      ImpactFunction::callable(
          [](std::span<const double> x) {
            return x[0] * x[0] + x[1] * x[1] + x[2] * x[2];
          }),
      ToleranceBounds::atMost(200.0)});
  const auto problem = CompiledProblem::compile(std::move(spec));

  const auto values = streamBatch(problem, 60, 14);
  const StreamResult want = serialReference(problem, values);
  StreamOptions options;
  options.shardInstances = 16;
  options.threads = 4;
  expectSameResult(analyzeStreamValues(problem, values, options), want,
                   "callable fallback");
  EXPECT_EQ(analyzeStreamValues(problem, values, options).screenedInstances,
            0u);
}

TEST(AnalyzeStream, NonAnalyticSolverFallsBackBitIdentical) {
  const auto problem = streamProblem(12, 6, false, SolverKind::KktNewton);
  EXPECT_FALSE(problem.metricKernelLane());
  const auto values = streamBatch(problem, 40, 15);
  const StreamResult want = serialReference(problem, values);
  StreamOptions options;
  options.shardInstances = 8;
  options.threads = 2;
  expectSameResult(analyzeStreamValues(problem, values, options), want,
                   "iterative fallback");
}

TEST(AnalyzeStream, MmapFallbackIsBitIdentical) {
  const auto problem = streamProblem(32, 12);
  const auto values = streamBatch(problem, 200, 16);
  TempFile file("fallback");
  writeInstanceFile(file.path(), values, 12);
  StreamOptions options;
  options.shardInstances = 32;
  const StreamResult mapped = analyzeStream(problem, file.path(), options);
  util::MmapFile::setForceFallback(true);
  const StreamResult fallback = analyzeStream(problem, file.path(), options);
  util::MmapFile::setForceFallback(false);
  expectSameResult(fallback, mapped, "mmap fallback");
}

// ---------------------------------------------------------------------------
// Edge and failure behavior.
// ---------------------------------------------------------------------------

TEST(AnalyzeStream, EmptyFileYieldsInfiniteMetric) {
  TempFile file("empty");
  writeInstanceFile(file.path(), {}, 4);
  const auto problem = streamProblem(8, 4);
  const StreamResult got = analyzeStream(problem, file.path());
  EXPECT_TRUE(bitEq(got.metric, kInf));
  EXPECT_EQ(got.argminInstance, kNoInstance);
  EXPECT_EQ(got.instances, 0u);
  EXPECT_EQ(got.shards, 0u);
}

TEST(AnalyzeStream, DimensionMismatchThrows) {
  TempFile file("mismatch");
  writeInstanceFile(file.path(), {1.0, 2.0, 3.0}, 3);
  const auto problem = streamProblem(8, 4);
  EXPECT_THROW((void)analyzeStream(problem, file.path()),
               InvalidArgumentError);
  EXPECT_THROW((void)analyzeStreamValues(problem, {std::vector<double>(7)}),
               InvalidArgumentError);
}

TEST(AnalyzeStream, NonFinitePayloadRejectedThroughReader) {
  const auto problem = streamProblem(8, 4);
  std::vector<double> values = streamBatch(problem, 50, 17);
  values[33 * 4 + 2] = std::numeric_limits<double>::quiet_NaN();
  std::string bytes;
  {
    std::ostringstream out(std::ios::binary);
    InstanceFileWriter writer(out, 4, InputPolicy::permissive());
    writer.appendBatch(values);
    writer.finish();
    bytes = out.str();
  }
  TempFile file("nanstream");
  writeBytes(file.path(), bytes);
  for (const std::size_t threads : {1u, 4u}) {
    StreamOptions options;
    options.shardInstances = 8;
    options.threads = threads;
    try {
      (void)analyzeStream(problem, file.path(), options);
      FAIL() << "NaN admitted through the stream";
    } catch (const util::ParseError& err) {
      EXPECT_EQ(err.diagnostic().category, util::RejectCategory::Domain);
      EXPECT_EQ(err.diagnostic().line, 34u);
      EXPECT_EQ(err.diagnostic().column, 3u);
    }
  }
}

TEST(AnalyzeStream, DegenerateRowThrowsFromEveryLane) {
  // A zero-weight row inside bounds must throw exactly like the serial
  // lane, from whichever shard/thread meets it first (deterministically
  // surfaced as the lowest-index failure).
  ProblemSpec spec;
  spec.parameter.name = "pi";
  spec.parameter.origin = {1.0, 1.0};
  spec.features.push_back(PerformanceFeature{
      "dead", ImpactFunction::affine(num::Vec{0.0, 0.0}),
      ToleranceBounds::atMost(1.0)});
  const auto problem = CompiledProblem::compile(std::move(spec));
  const std::vector<double> values(2 * 20, 1.0);
  for (const std::size_t threads : {1u, 8u}) {
    StreamOptions options;
    options.shardInstances = 4;
    options.threads = threads;
    EXPECT_THROW((void)analyzeStreamValues(problem, values, options),
                 InvalidArgumentError)
        << threads;
  }
}

TEST(AnalyzeStream, ScreeningSkipsWorkOnEasyBatches) {
  // With tolerance levels far from most instances, the screen should
  // discard the bulk of the batch without materializing metrics.
  const auto problem = streamProblem(64, 16);
  const auto values = streamBatch(problem, 2000, 18);
  StreamOptions options;
  options.shardInstances = 256;
  options.threads = 1;
  const StreamResult got = analyzeStreamValues(problem, values, options);
  const StreamResult want = serialReference(problem, values);
  expectSameResult(got, want, "screened easy batch");
  EXPECT_GT(got.screenedInstances, 0u);
  StreamOptions off = options;
  off.screen = false;
  EXPECT_EQ(analyzeStreamValues(problem, values, off).screenedInstances, 0u);
}

}  // namespace
}  // namespace robust::core
