// The degradation-curve engine's contract suite.
//
// The heart is the bit-identity grid: the curve's per-sample critical
// radii must come out bit-for-bit identical across thread counts, shard
// sizes, SIMD dispatch targets, and the pruned vs unpruned row loop —
// each sample is a pure function of its counter-based substream. Around
// it: the closed-form radii differentially pinned against bisection on
// the spec's own violation predicate, the empirical CDF against a brute
// radius grid, the fallback lane for constrained / discrete / callable
// specs, the band math against hand-checked references, the content-key
// cache, and the online drift tracker (incremental rho, obs-pinned
// no-re-analyze streaming, threshold crossings, the Lipschitz bracket).
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "robust/core/compiled.hpp"
#include "robust/core/impact.hpp"
#include "robust/curve/bands.hpp"
#include "robust/curve/curve.hpp"
#include "robust/curve/drift.hpp"
#include "robust/numeric/simd.hpp"
#include "robust/obs/metrics.hpp"
#include "robust/random/distributions.hpp"
#include "robust/util/error.hpp"
#include "robust/util/rng.hpp"

namespace {

using namespace robust;
using namespace robust::core;
using namespace robust::curve;

constexpr double kInf = std::numeric_limits<double>::infinity();

bool bitEq(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

bool radiiBitEqual(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!bitEq(a[i], b[i])) {
      return false;
    }
  }
  return true;
}

/// Affine spec with mixed-sign weights and a mix of one- and two-sided
/// bounds, so both the gapMax (positive slope) and gapMin (negative
/// slope) crossings carry weight.
CompiledProblem curveProblem(std::size_t rows, std::size_t dims,
                             NormKind norm = NormKind::L2) {
  Pcg32 rng(11);
  ProblemSpec spec;
  spec.parameter.name = "pi";
  spec.parameter.origin.resize(dims);
  for (double& v : spec.parameter.origin) {
    v = rng.uniform(0.5, 1.5);
  }
  spec.options.norm = norm;
  if (norm == NormKind::Weighted) {
    spec.options.normWeights.resize(dims);
    for (double& w : spec.options.normWeights) {
      w = rng.uniform(0.25, 4.0);
    }
  }
  for (std::size_t r = 0; r < rows; ++r) {
    num::Vec weights(dims);
    for (double& w : weights) {
      w = rng.uniform(-1.0, 2.0);
    }
    double atOrigin = 0.0;
    for (std::size_t k = 0; k < dims; ++k) {
      atOrigin += weights[k] * spec.parameter.origin[k];
    }
    const double slackLo = rng.uniform(0.5, 6.0);
    const double slackHi = rng.uniform(0.5, 6.0);
    ToleranceBounds bounds =
        r % 3 == 0 ? ToleranceBounds::atMost(atOrigin + slackHi)
                   : ToleranceBounds::between(atOrigin - slackLo,
                                              atOrigin + slackHi);
    spec.features.push_back(PerformanceFeature{
        "F_" + std::to_string(r), ImpactFunction::affine(std::move(weights)),
        bounds});
  }
  return CompiledProblem::compile(std::move(spec));
}

/// Regenerates sample i's unit direction exactly as the engine documents:
/// standard-normal pairs from makeStream(seed, kCurveStreamFamily, i),
/// normalized under the problem's displacement norm.
std::vector<double> sampleDirectionReference(const CompiledProblem& problem,
                                             std::uint64_t seed,
                                             std::size_t sample) {
  std::vector<double> u(problem.dimension());
  Pcg32 rng = makeStream(seed, kCurveStreamFamily, sample);
  std::size_t k = 0;
  while (k + 1 < u.size()) {
    rnd::standardNormalPair(rng, u[k], u[k + 1]);
    k += 2;
  }
  if (k < u.size()) {
    double z0 = 0.0;
    double z1 = 0.0;
    rnd::standardNormalPair(rng, z0, z1);
    u[k] = z0;
  }
  const double norm = displacementNorm(problem, u);
  for (double& v : u) {
    v /= norm;
  }
  return u;
}

/// True when some feature value at `x` violates its tolerance bounds,
/// through the spec's own impact functions (the independent oracle).
bool violatesAt(const CompiledProblem& problem, std::span<const double> x) {
  for (const auto& f : problem.features()) {
    if (!f.bounds.contains(f.impact.evaluate(x))) {
      return true;
    }
  }
  return false;
}

/// Brute-force critical radius along `u`: doubling bracket + deep
/// bisection against the violation oracle. Converges to ~1e-12 relative.
double criticalRadiusReference(const CompiledProblem& problem,
                               std::span<const double> u) {
  const auto& origin = problem.parameter().origin;
  std::vector<double> point(origin.size());
  auto viol = [&](double r) {
    for (std::size_t k = 0; k < origin.size(); ++k) {
      point[k] = origin[k] + r * u[k];
    }
    return violatesAt(problem, point);
  };
  if (viol(0.0)) {
    return 0.0;
  }
  double lo = 0.0;
  double hi = 1e-3;
  bool found = false;
  for (int i = 0; i < 120; ++i) {
    if (viol(hi)) {
      found = true;
      break;
    }
    lo = hi;
    hi *= 2.0;
  }
  if (!found) {
    return kInf;
  }
  for (int i = 0; i < 120; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (viol(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

class ObsGuard {
 public:
  ObsGuard() {
    obs::setEnabled(true);
    obs::resetMetrics();
  }
  ~ObsGuard() {
    obs::resetMetrics();
    obs::setEnabled(false);
  }
};

// ----------------------------------------------------------- determinism

TEST(CurveBits, PinnedAcrossThreadsShardsAndSimd) {
  const CompiledProblem problem = curveProblem(48, 16);
  CurveOptions base;
  base.samples = 4096;
  base.seed = 77;
  base.useCache = false;
  base.threads = 1;
  base.shardSamples = 512;
  const CurveResult reference = computeCurve(problem, base);
  ASSERT_EQ(reference.radii.size(), base.samples);
  EXPECT_TRUE(reference.fastLane);

  for (std::size_t threads : {1u, 2u, 8u}) {
    for (std::size_t shard : {64u, 1000u, 4096u}) {
      CurveOptions o = base;
      o.threads = threads;
      o.shardSamples = shard;
      const CurveResult got = computeCurve(problem, o);
      EXPECT_TRUE(radiiBitEqual(reference.radii, got.radii))
          << "threads=" << threads << " shard=" << shard;
    }
  }

  // Pruning must be a pure skip-of-losers: identical bits with it off.
  CurveOptions unpruned = base;
  unpruned.prune = false;
  EXPECT_TRUE(radiiBitEqual(reference.radii,
                            computeCurve(problem, unpruned).radii));

  // Dispatch targets agree bit for bit (scalar always; AVX2 when present).
  const num::simd::Target saved = num::simd::activeTarget();
  num::simd::setTarget(num::simd::Target::Scalar);
  const CurveResult scalar = computeCurve(problem, base);
  EXPECT_TRUE(radiiBitEqual(reference.radii, scalar.radii));
  if (num::simd::avx2Available()) {
    num::simd::setTarget(num::simd::Target::Avx2);
    const CurveResult avx2 = computeCurve(problem, base);
    EXPECT_TRUE(radiiBitEqual(scalar.radii, avx2.radii));
  }
  num::simd::setTarget(saved);
}

// ------------------------------------------------- closed-form vs oracle

TEST(Curve, ClosedFormRadiusMatchesViolationOracle) {
  const CompiledProblem problem = curveProblem(12, 6);
  CurveOptions o;
  o.samples = 64;
  o.seed = 5;
  o.useCache = false;
  o.threads = 1;
  const CurveResult result = computeCurve(problem, o);

  std::vector<double> reference(o.samples);
  for (std::size_t i = 0; i < o.samples; ++i) {
    const std::vector<double> u =
        sampleDirectionReference(problem, o.seed, i);
    reference[i] = criticalRadiusReference(problem, u);
  }
  std::sort(reference.begin(), reference.end());
  ASSERT_EQ(result.radii.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    if (std::isinf(reference[i])) {
      EXPECT_TRUE(std::isinf(result.radii[i]));
    } else {
      EXPECT_NEAR(result.radii[i], reference[i],
                  1e-12 * std::max(1.0, reference[i]))
          << "sorted index " << i;
    }
  }

  // Every critical radius is floored by rho (Hoelder: no unit direction
  // beats the worst-case distance to the violating region).
  EXPECT_GE(result.radii.front(), result.rho * (1.0 - 1e-12));
  const MetricResult rho = problem.evaluateMetric();
  EXPECT_TRUE(bitEq(result.rho, rho.metric));
}

TEST(Curve, EmpiricalCdfMatchesBruteForceRadiusGrid) {
  const CompiledProblem problem = curveProblem(10, 5);
  CurveOptions o;
  o.samples = 400;
  o.seed = 9;
  o.useCache = false;
  o.threads = 1;
  const CurveResult result = computeCurve(problem, o);
  ASSERT_GT(result.finiteRadii, 0u);

  // Probe at midpoints between consecutive sorted radii — away from any
  // critical radius, the closed-form count and a brute per-radius scan of
  // the violation oracle must agree exactly.
  for (std::size_t q = 1; q < 8; ++q) {
    const std::size_t idx = q * result.finiteRadii / 8;
    if (idx + 1 >= result.finiteRadii) {
      continue;
    }
    const double r = 0.5 * (result.radii[idx] + result.radii[idx + 1]);
    std::size_t violating = 0;
    std::vector<double> point(problem.dimension());
    for (std::size_t i = 0; i < o.samples; ++i) {
      const std::vector<double> u =
          sampleDirectionReference(problem, o.seed, i);
      for (std::size_t k = 0; k < point.size(); ++k) {
        point[k] = problem.parameter().origin[k] + r * u[k];
      }
      if (violatesAt(problem, point)) {
        ++violating;
      }
    }
    EXPECT_DOUBLE_EQ(result.probabilityAt(r),
                     static_cast<double>(violating) /
                         static_cast<double>(o.samples))
        << "probe radius " << r;
  }
}

TEST(Curve, ReportInvariantsHold) {
  const CompiledProblem problem = curveProblem(20, 8, NormKind::Weighted);
  CurveOptions o;
  o.samples = 2000;
  o.gridPoints = 16;
  o.useCache = false;
  const CurveResult result = computeCurve(problem, o);

  EXPECT_TRUE(result.fastLane);
  EXPECT_EQ(result.samples, o.samples);
  EXPECT_TRUE(std::is_sorted(result.radii.begin(), result.radii.end()));
  EXPECT_NEAR(result.dkwEpsilon, dkwEpsilon(o.samples, o.confidence), 0.0);
  ASSERT_FALSE(result.points.empty());
  ASSERT_LE(result.points.size(), o.gridPoints);
  double prevRadius = -kInf;
  double prevProb = -1.0;
  for (const CurvePoint& p : result.points) {
    EXPECT_GT(p.radius, prevRadius);
    EXPECT_GE(p.probability, prevProb);
    EXPECT_LE(p.lower, p.probability);
    EXPECT_GE(p.upper, p.probability);
    prevRadius = p.radius;
    prevProb = p.probability;
    EXPECT_DOUBLE_EQ(p.probability, result.probabilityAt(p.radius));
  }

  // The inverse lookups agree with the forward CDF.
  const double median = result.radiusAtProbability(0.5);
  EXPECT_GE(result.probabilityAt(median), 0.5);
  EXPECT_GE(result.radiusAtProbability(1.0), median);

  // The serialized section parses the shape report_check validates.
  const std::string json = curveSectionJson(result);
  EXPECT_NE(json.find("\"schema\": \"robust.curve\""), std::string::npos);
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"points\": ["), std::string::npos);
}

// ------------------------------------------------------------- fallback

TEST(CurveFallback, ConstrainedSpecUsesFullLaneDeterministically) {
  ProblemSpec spec;
  spec.features.push_back(PerformanceFeature{
      "f", ImpactFunction::affine(num::Vec{1.0, 1.0}, 0.0),
      ToleranceBounds::atMost(2.0)});
  PerturbationSubspace sub;
  sub.name = "pi";
  sub.origin = num::Vec{0.0, 0.0};
  sub.norm = static_cast<int>(NormKind::L2);
  spec.subspaces.push_back(sub);
  spec.constraints.push_back(LinearConstraint{"cap", num::Vec{0.0, 1.0}, 0.5});
  const CompiledProblem problem = CompiledProblem::compile(std::move(spec));

  CurveOptions o;
  o.samples = 256;
  o.useCache = false;
  o.threads = 1;
  const CurveResult serial = computeCurve(problem, o);
  EXPECT_FALSE(serial.fastLane);
  o.threads = 4;
  o.shardSamples = 32;
  EXPECT_TRUE(radiiBitEqual(serial.radii, computeCurve(problem, o).radii));

  // Constrained rho clips upward; every per-direction radius floors on it.
  const double rho = problem.evaluateMetric().metric;
  EXPECT_GE(serial.radii.front(), rho * (1.0 - 1e-9));
}

TEST(CurveFallback, DiscreteSpecFloorsRadii) {
  Pcg32 rng(3);
  ProblemSpec spec;
  spec.parameter.origin = num::Vec{2.0, 3.0, 1.0};
  spec.parameter.discrete = true;
  for (std::size_t r = 0; r < 4; ++r) {
    num::Vec w{rng.uniform(0.2, 1.0), rng.uniform(0.2, 1.0),
               rng.uniform(0.2, 1.0)};
    double atOrigin = 0.0;
    for (std::size_t k = 0; k < 3; ++k) {
      atOrigin += w[k] * spec.parameter.origin[k];
    }
    spec.features.push_back(PerformanceFeature{
        "F_" + std::to_string(r), ImpactFunction::affine(std::move(w)),
        ToleranceBounds::atMost(atOrigin + 2.0 + static_cast<double>(r))});
  }
  const CompiledProblem problem = CompiledProblem::compile(std::move(spec));

  CurveOptions o;
  o.samples = 200;
  o.useCache = false;
  o.threads = 1;
  const CurveResult result = computeCurve(problem, o);
  EXPECT_FALSE(result.fastLane);
  const double rho = problem.evaluateMetric().metric;
  for (std::size_t i = 0; i < result.finiteRadii; ++i) {
    EXPECT_TRUE(bitEq(result.radii[i], std::floor(result.radii[i])))
        << "unfloored discrete radius at " << i;
  }
  EXPECT_GE(result.radii.front(), rho);
  o.threads = 4;
  EXPECT_TRUE(radiiBitEqual(result.radii, computeCurve(problem, o).radii));
}

TEST(CurveFallback, CallableSpecIsPinnedAgainstItsOwnOracle) {
  ProblemSpec spec;
  spec.parameter.origin = num::Vec{1.0, 1.0};
  spec.features.push_back(PerformanceFeature{
      "quad",
      ImpactFunction::callable([](std::span<const double> x) {
        return x[0] * x[0] + x[1];
      }),
      ToleranceBounds::atMost(6.0)});
  const CompiledProblem problem = CompiledProblem::compile(std::move(spec));

  CurveOptions o;
  o.samples = 64;
  o.seed = 21;
  o.useCache = false;
  o.threads = 1;
  const CurveResult result = computeCurve(problem, o);
  EXPECT_FALSE(result.fastLane);

  std::vector<double> reference(o.samples);
  for (std::size_t i = 0; i < o.samples; ++i) {
    const std::vector<double> u =
        sampleDirectionReference(problem, o.seed, i);
    reference[i] = criticalRadiusReference(problem, u);
  }
  std::sort(reference.begin(), reference.end());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    if (std::isinf(reference[i])) {
      EXPECT_TRUE(std::isinf(result.radii[i]));
    } else {
      EXPECT_NEAR(result.radii[i], reference[i],
                  1e-9 * std::max(1.0, reference[i]));
    }
  }
  o.threads = 3;
  EXPECT_TRUE(radiiBitEqual(result.radii, computeCurve(problem, o).radii));
}

// ----------------------------------------------------------------- bands

TEST(Bands, DkwEpsilonReference) {
  // sqrt(ln(2 / 0.01) / (2 * 1e6))
  EXPECT_NEAR(dkwEpsilon(1000000, 0.99), 1.6276236307187291e-3, 1e-12);
  EXPECT_NEAR(dkwEpsilon(100, 0.95), std::sqrt(std::log(40.0) / 200.0),
              1e-15);
  EXPECT_THROW((void)dkwEpsilon(0, 0.99), InvalidArgumentError);
  EXPECT_THROW((void)dkwEpsilon(10, 1.0), InvalidArgumentError);
}

TEST(Bands, RegularizedIncompleteBetaReference) {
  // I_x(2, 3) = 12 * (x^2/2 - 2 x^3/3 + x^4/4); exactly 0.6875 at 0.5.
  EXPECT_NEAR(regularizedIncompleteBeta(2.0, 3.0, 0.5), 0.6875, 1e-13);
  EXPECT_DOUBLE_EQ(regularizedIncompleteBeta(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(regularizedIncompleteBeta(2.0, 3.0, 1.0), 1.0);
  // Symmetry: I_x(a, b) = 1 - I_{1-x}(b, a).
  EXPECT_NEAR(regularizedIncompleteBeta(5.0, 2.0, 0.7) +
                  regularizedIncompleteBeta(2.0, 5.0, 0.3),
              1.0, 1e-13);
  // I_x(1, 1) is the identity.
  EXPECT_NEAR(regularizedIncompleteBeta(1.0, 1.0, 0.42), 0.42, 1e-13);
}

TEST(Bands, ClopperPearsonReference) {
  // k = 5 of n = 10 at 95%: the textbook interval (0.187086, 0.812914).
  const BinomialInterval mid = clopperPearson(5, 10, 0.95);
  EXPECT_NEAR(mid.lower, 0.187086, 5e-6);
  EXPECT_NEAR(mid.upper, 0.812914, 5e-6);

  // k = 0: lower pinned at 0, upper = 1 - (alpha/2)^(1/n).
  const BinomialInterval zero = clopperPearson(0, 20, 0.95);
  EXPECT_DOUBLE_EQ(zero.lower, 0.0);
  EXPECT_NEAR(zero.upper, 1.0 - std::pow(0.025, 1.0 / 20.0), 1e-9);

  // k = n mirrors k = 0.
  const BinomialInterval all = clopperPearson(20, 20, 0.95);
  EXPECT_DOUBLE_EQ(all.upper, 1.0);
  EXPECT_NEAR(all.lower, std::pow(0.025, 1.0 / 20.0), 1e-9);

  EXPECT_THROW((void)clopperPearson(3, 2, 0.95), InvalidArgumentError);
}

// ----------------------------------------------------------------- cache

TEST(CurveCache, HitsByContentKeyAndStaysExact) {
  clearCurveCache();
  ObsGuard obs;
  const CompiledProblem problem = curveProblem(16, 8);
  ASSERT_NE(problemContentKey(problem), 0u);

  CurveOptions o;
  o.samples = 512;
  const CurveResult first = computeCurve(problem, o);
  EXPECT_FALSE(first.cacheHit);
  const CurveResult second = computeCurve(problem, o);
  EXPECT_TRUE(second.cacheHit);
  EXPECT_TRUE(radiiBitEqual(first.radii, second.radii));

  // An equivalent recompile (same content) hits; a different seed misses.
  const CompiledProblem again = curveProblem(16, 8);
  EXPECT_EQ(problemContentKey(problem), problemContentKey(again));
  EXPECT_TRUE(computeCurve(again, o).cacheHit);
  CurveOptions reseeded = o;
  reseeded.seed = 999;
  EXPECT_FALSE(computeCurve(problem, reseeded).cacheHit);

  const obs::MetricsSnapshot snap = obs::snapshotMetrics();
  EXPECT_EQ(snap.counter("curve.cache.hits"), 2u);
  EXPECT_GE(snap.counter("curve.cache.misses"), 2u);
  // curve.samples counts COMPUTED samples only — hits add nothing.
  EXPECT_EQ(snap.counter("curve.samples"), 2u * o.samples);
  clearCurveCache();
}

TEST(CurveCache, UncacheableSpecsComputeDirect) {
  clearCurveCache();
  ProblemSpec spec;
  spec.parameter.origin = num::Vec{1.0};
  spec.features.push_back(PerformanceFeature{
      "c",
      ImpactFunction::callable(
          [](std::span<const double> x) { return x[0]; }),
      ToleranceBounds::atMost(3.0)});
  const CompiledProblem problem = CompiledProblem::compile(std::move(spec));
  EXPECT_EQ(problemContentKey(problem), 0u);
  CurveOptions o;
  o.samples = 32;
  EXPECT_FALSE(computeCurve(problem, o).cacheHit);
  EXPECT_FALSE(computeCurve(problem, o).cacheHit);
}

// ----------------------------------------------------------------- drift

TEST(Drift, IncrementalRhoMatchesMetricLane) {
  const CompiledProblem problem = curveProblem(24, 10);
  DriftTracker tracker(problem, 0.0);
  EXPECT_NEAR(tracker.rho(), problem.evaluateMetric().metric, 1e-12);

  Pcg32 rng(17);
  std::vector<double> origin(problem.parameter().origin.begin(),
                             problem.parameter().origin.end());
  for (int step = 0; step < 500; ++step) {
    const auto k = static_cast<std::size_t>(
        rng.nextBounded(static_cast<std::uint32_t>(origin.size())));
    origin[k] += rng.uniform(-0.01, 0.01);
    const DriftStatus status = tracker.applyUpdate(k, origin[k]);
    EXPECT_EQ(status.updates, static_cast<std::uint64_t>(step + 1));
  }
  AnalysisInstance drifted;
  drifted.origin = origin;
  const MetricResult direct = problem.evaluateMetric(drifted);
  EXPECT_NEAR(tracker.rho(), direct.metric,
              1e-9 * std::max(1.0, direct.metric));
  EXPECT_EQ(tracker.bindingFeature(), direct.bindingFeature);

  // rebase() flushes the incremental rounding to the exact blocked dots.
  tracker.rebase();
  EXPECT_NEAR(tracker.rho(), direct.metric,
              1e-13 * std::max(1.0, direct.metric));

  // The Lipschitz bracket holds around the exactly maintained rho.
  EXPECT_LE(tracker.rhoLowerBound(), tracker.rho() + 1e-12);
  EXPECT_GE(tracker.rhoUpperBound(), tracker.rho() - 1e-12);
  EXPECT_NEAR(tracker.driftDistance(),
              [&] {
                std::vector<double> d(origin.size());
                for (std::size_t k = 0; k < origin.size(); ++k) {
                  d[k] = origin[k] - problem.parameter().origin[k];
                }
                return displacementNorm(problem, d);
              }(),
              1e-15);
}

TEST(Drift, StreamsWithoutFullReanalysis) {
  const CompiledProblem problem = curveProblem(16, 8);
  DriftTracker tracker(problem, 0.0);
  ObsGuard obs;  // reset AFTER construction: only the stream is counted

  Pcg32 rng(29);
  constexpr std::uint64_t kUpdates = 100000;
  for (std::uint64_t i = 0; i < kUpdates; ++i) {
    const auto k = static_cast<std::size_t>(rng.nextBounded(8));
    tracker.applyUpdate(k, 1.0 + rng.uniform(-0.05, 0.05));
  }
  EXPECT_EQ(tracker.updates(), kUpdates);

  const obs::MetricsSnapshot snap = obs::snapshotMetrics();
  EXPECT_EQ(snap.counter("curve.drift.updates"), kUpdates);
  // The incremental lane never re-runs the analysis engine.
  EXPECT_EQ(snap.counter("core.evaluations"), 0u);
  EXPECT_EQ(snap.counter("core.rows_evaluated"), 0u);
}

TEST(Drift, ThresholdCrossingFiresExactlyOnTransition) {
  // Single feature f = x0 with slack 10 under L2: rho = 10 at the anchor.
  ProblemSpec spec;
  spec.parameter.origin = num::Vec{0.0};
  spec.features.push_back(PerformanceFeature{
      "f", ImpactFunction::affine(num::Vec{1.0}, 0.0),
      ToleranceBounds::atMost(10.0)});
  const CompiledProblem problem = CompiledProblem::compile(std::move(spec));
  DriftTracker tracker(problem, 5.0);
  EXPECT_DOUBLE_EQ(tracker.rho(), 10.0);

  int crossings = 0;
  for (int v = 1; v <= 8; ++v) {
    const DriftStatus s = tracker.applyUpdate(0, static_cast<double>(v));
    EXPECT_DOUBLE_EQ(s.rho, 10.0 - v);
    if (s.crossedBelow) {
      ++crossings;
      EXPECT_EQ(v, 6);  // rho drops to 4 < 5 exactly here
    }
  }
  EXPECT_EQ(crossings, 1);

  // Recover above, then drop again: the edge re-arms.
  (void)tracker.applyUpdate(0, 0.0);
  const DriftStatus again = tracker.applyUpdate(0, 7.0);
  EXPECT_TRUE(again.crossedBelow);
}

TEST(Drift, RejectsLanesWithoutClosedForm) {
  ProblemSpec discrete;
  discrete.parameter.origin = num::Vec{1.0};
  discrete.parameter.discrete = true;
  discrete.features.push_back(PerformanceFeature{
      "f", ImpactFunction::affine(num::Vec{1.0}, 0.0),
      ToleranceBounds::atMost(5.0)});
  const CompiledProblem dp = CompiledProblem::compile(std::move(discrete));
  EXPECT_THROW(DriftTracker(dp, 1.0), InvalidArgumentError);

  ProblemSpec callable;
  callable.parameter.origin = num::Vec{1.0};
  callable.features.push_back(PerformanceFeature{
      "c",
      ImpactFunction::callable(
          [](std::span<const double> x) { return x[0]; }),
      ToleranceBounds::atMost(5.0)});
  const CompiledProblem cp = CompiledProblem::compile(std::move(callable));
  EXPECT_THROW(DriftTracker(cp, 1.0), InvalidArgumentError);
}

}  // namespace
