// Unit tests of the Euclidean projection solvers behind the feasibility-
// clipped radius lane: Dykstra (exact nearest point of a halfspace
// intersection) and POCS (any member, used as the bisection oracle).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "robust/numeric/projection.hpp"

namespace {

using namespace robust;
using num::BlockBall;
using num::Halfspace;
using num::ProjectionOptions;
using num::ProjectionResult;
using num::Vec;

Halfspace atMost(Vec normal, double offset) {
  return Halfspace{std::move(normal), offset, /*geq=*/false};
}

Halfspace atLeast(Vec normal, double offset) {
  return Halfspace{std::move(normal), offset, /*geq=*/true};
}

TEST(Projection, HalfspaceViolationIsEuclideanDistance) {
  const Halfspace h = atMost(Vec{3.0, 4.0}, 0.0);  // |n| = 5
  const Vec inside{-1.0, -1.0};
  EXPECT_EQ(num::halfspaceViolation(h, inside), 0.0);
  const Vec outside{3.0, 4.0};  // n.x = 25, distance 25 / 5 = 5
  EXPECT_NEAR(num::halfspaceViolation(h, outside), 5.0, 1e-12);
}

TEST(Projection, SingleHalfspaceProjectsExactly) {
  const std::vector<Halfspace> sets{atMost(Vec{1.0, 0.0}, 1.0)};
  const Vec x0{3.0, 2.0};
  const ProjectionResult res = num::projectOntoIntersection(sets, x0);
  ASSERT_TRUE(res.converged);
  EXPECT_NEAR(res.point[0], 1.0, 1e-9);
  EXPECT_NEAR(res.point[1], 2.0, 1e-9);
}

TEST(Projection, FeasibleStartIsReturnedUnchanged) {
  const std::vector<Halfspace> sets{atMost(Vec{1.0, 1.0}, 10.0),
                                    atLeast(Vec{1.0, 0.0}, -5.0)};
  const Vec x0{0.5, 0.25};
  const ProjectionResult res = num::projectOntoIntersection(sets, x0);
  ASSERT_TRUE(res.converged);
  EXPECT_EQ(res.point[0], x0[0]);
  EXPECT_EQ(res.point[1], x0[1]);
}

TEST(Projection, CornerOfTwoHalfspacesIsExact) {
  // {x <= 0} and {y <= 0}: projecting (1, 2) lands on the corner-adjacent
  // point (0, 0)... actually on (0, 0) only for the nonnegative quadrant
  // complement; here the projection is (0, 0) clamped per coordinate.
  const std::vector<Halfspace> sets{atMost(Vec{1.0, 0.0}, 0.0),
                                    atMost(Vec{0.0, 1.0}, 0.0)};
  const Vec x0{1.0, 2.0};
  const ProjectionResult res = num::projectOntoIntersection(sets, x0);
  ASSERT_TRUE(res.converged);
  EXPECT_NEAR(res.point[0], 0.0, 1e-9);
  EXPECT_NEAR(res.point[1], 0.0, 1e-9);
}

TEST(Projection, DykstraBeatsPlainPocsOnObliqueCorner) {
  // Intersection of {x + y <= 0} and {x - y <= 0}: the projection of
  // (2, 0) is the apex (0, 0). Plain cyclic projection (POCS) would stop at
  // some feasible point; Dykstra must return the true nearest point.
  const std::vector<Halfspace> sets{atMost(Vec{1.0, 1.0}, 0.0),
                                    atMost(Vec{1.0, -1.0}, 0.0)};
  const Vec x0{2.0, 0.0};
  const ProjectionResult res = num::projectOntoIntersection(sets, x0);
  ASSERT_TRUE(res.converged);
  EXPECT_NEAR(res.point[0], 0.0, 1e-7);
  EXPECT_NEAR(res.point[1], 0.0, 1e-7);
}

TEST(Projection, EmptyIntersectionReportsNotConverged) {
  const std::vector<Halfspace> sets{atMost(Vec{1.0, 0.0}, -1.0),
                                    atLeast(Vec{1.0, 0.0}, 1.0)};
  const Vec x0{0.0, 0.0};
  const ProjectionResult res = num::projectOntoIntersection(sets, x0);
  EXPECT_FALSE(res.converged);
  EXPECT_GT(res.residual, 0.1);
}

TEST(Projection, PocsFindsMemberOfBallAndHalfspace) {
  const std::vector<Halfspace> sets{atLeast(Vec{1.0, 0.0}, 0.5)};
  const std::vector<BlockBall> balls{BlockBall{0, Vec{0.0, 0.0}, 1.0}};
  const Vec start{0.0, 0.0};
  const ProjectionResult res = num::feasiblePoint(sets, balls, start);
  ASSERT_TRUE(res.converged);
  EXPECT_GE(res.point[0], 0.5 - 1e-8);
  EXPECT_LE(std::hypot(res.point[0], res.point[1]), 1.0 + 1e-8);
}

TEST(Projection, PocsRejectsBallTooSmallForHalfspace) {
  const std::vector<Halfspace> sets{atLeast(Vec{1.0, 0.0}, 2.0)};
  const std::vector<BlockBall> balls{BlockBall{0, Vec{0.0, 0.0}, 1.0}};
  const Vec start{0.0, 0.0};
  const ProjectionResult res = num::feasiblePoint(sets, balls, start);
  EXPECT_FALSE(res.converged);
}

TEST(Projection, BlockBallsConstrainOnlyTheirBlock) {
  // Ball on block [0, 2) of a 4-dim space; halfspace pushes coordinate 3.
  const std::vector<Halfspace> sets{
      atLeast(Vec{0.0, 0.0, 0.0, 1.0}, 7.0)};
  const std::vector<BlockBall> balls{BlockBall{0, Vec{0.0, 0.0}, 0.5}};
  const Vec start{0.0, 0.0, 0.0, 0.0};
  const ProjectionResult res = num::feasiblePoint(sets, balls, start);
  ASSERT_TRUE(res.converged);
  EXPECT_GE(res.point[3], 7.0 - 1e-8);
  EXPECT_LE(std::hypot(res.point[0], res.point[1]), 0.5 + 1e-8);
}

TEST(Projection, MaxViolationCoversBallsAndHalfspaces) {
  const std::vector<Halfspace> sets{atMost(Vec{1.0, 0.0}, 1.0)};
  const std::vector<BlockBall> balls{BlockBall{0, Vec{0.0, 0.0}, 1.0}};
  const Vec feasible{0.5, 0.0};
  EXPECT_EQ(num::maxViolation(sets, balls, feasible), 0.0);
  const Vec outsideBall{0.0, 3.0};  // ball violation 2, halfspace satisfied
  EXPECT_NEAR(num::maxViolation(sets, balls, outsideBall), 2.0, 1e-12);
}

}  // namespace
