// Tests for the HiPer-D system analysis: load functions, multitasking
// factors, computation/communication/latency evaluation, the slack metric,
// and the Section 3.2 robustness derivation, all against hand computations.
#include <gtest/gtest.h>

#include <cmath>

#include "robust/core/validation.hpp"
#include "robust/hiperd/system.hpp"
#include "robust/util/error.hpp"

namespace robust::hiperd {
namespace {

NodeRef sensor(std::size_t i) { return NodeRef{NodeKind::Sensor, i}; }
NodeRef app(std::size_t i) { return NodeRef{NodeKind::Application, i}; }
NodeRef actuator(std::size_t i) { return NodeRef{NodeKind::Actuator, i}; }

// --------------------------------------------------------- load function

TEST(LoadFunction, LinearEvaluatesAndDescribes) {
  const auto f = LoadFunction::linear({2.0, 0.0, 3.0});
  EXPECT_DOUBLE_EQ(f.evaluate(num::Vec{1.0, 100.0, 2.0}), 8.0);
  EXPECT_TRUE(f.isLinear());
  EXPECT_FALSE(f.isZero());
  EXPECT_EQ(f.describe(), "2*l1 + 3*l3");
}

TEST(LoadFunction, ZeroIsZero) {
  const auto z = LoadFunction::zero(3);
  EXPECT_TRUE(z.isZero());
  EXPECT_DOUBLE_EQ(z.evaluate(num::Vec{5.0, 5.0, 5.0}), 0.0);
  EXPECT_EQ(z.describe(), "0");
}

TEST(LoadFunction, GeneralWrapsCallable) {
  const auto f = LoadFunction::general(
      [](std::span<const double> l) { return l[0] * l[0]; });
  EXPECT_FALSE(f.isLinear());
  EXPECT_FALSE(f.isZero());
  EXPECT_DOUBLE_EQ(f.evaluate(num::Vec{3.0}), 9.0);
  EXPECT_EQ(f.describe(), "<general>");
  EXPECT_THROW((void)f.coeffs(), InvalidArgumentError);
}

TEST(LoadFunction, ImpactAppliesFactor) {
  const auto f = LoadFunction::linear({2.0, 1.0});
  const auto impact = f.impact(2.6);
  EXPECT_TRUE(impact.isAffine());
  EXPECT_DOUBLE_EQ(impact.evaluate(num::Vec{1.0, 1.0}), 7.8);
  const auto g = LoadFunction::general(
      [](std::span<const double> l) { return l[0]; });
  EXPECT_DOUBLE_EQ(g.impact(3.0).evaluate(num::Vec{2.0}), 6.0);
  EXPECT_THROW((void)f.impact(0.0), InvalidArgumentError);
}

TEST(MultitaskFactor, MatchesTableTwoModel) {
  EXPECT_DOUBLE_EQ(multitaskFactor(0), 1.0);
  EXPECT_DOUBLE_EQ(multitaskFactor(1), 1.0);
  EXPECT_DOUBLE_EQ(multitaskFactor(2), 2.6);
  EXPECT_DOUBLE_EQ(multitaskFactor(3), 3.9);
  EXPECT_NEAR(multitaskFactor(4), 5.2, 1e-12);
  EXPECT_DOUBLE_EQ(multitaskFactor(5), 6.5);
  EXPECT_NEAR(multitaskFactor(6), 7.8, 1e-12);
}

// ------------------------------------------------------------- scenario

/// The mini system of test_hiperd_graph with fully hand-computed numbers.
HiperdScenario miniScenario() {
  HiperdScenario scenario;
  SystemGraph& g = scenario.graph;
  g.addSensor("s0", 1.0 / 1000.0);  // throughput bound 1000
  g.addSensor("s1", 1.0 / 2000.0);  // throughput bound 2000
  g.addApplication("a0");
  g.addApplication("a1");
  g.addApplication("a2");
  g.addApplication("a3");
  g.addActuator("act0");
  g.addActuator("act1");
  g.addEdge(sensor(0), app(0));                    // edge 0
  g.addEdge(app(0), app(1), /*trigger=*/true);     // edge 1
  g.addEdge(app(1), actuator(0));                  // edge 2
  g.addEdge(sensor(1), app(2));                    // edge 3
  g.addEdge(app(2), app(1), /*trigger=*/false);    // edge 4 (update)
  g.addEdge(app(2), app(3));                       // edge 5
  g.addEdge(app(3), actuator(1));                  // edge 6
  g.finalize();

  scenario.machines = 2;
  scenario.lambdaOrig = {10.0, 20.0};

  // compute[app][machine]; machine 1 coefficients for apps mapped to m0 (and
  // vice versa) are deliberately "wrong" values that must never be read.
  const num::Vec unused = {999.0, 999.0};
  scenario.compute = {
      {LoadFunction::linear({1.0, 0.0}), LoadFunction::linear(unused)},
      {LoadFunction::linear({2.0, 1.0}), LoadFunction::linear(unused)},
      {LoadFunction::linear(unused), LoadFunction::linear({0.0, 3.0})},
      {LoadFunction::linear(unused), LoadFunction::linear({0.0, 1.0})},
  };
  scenario.comm.assign(g.edgeCount(), LoadFunction::zero(2));
  scenario.comm[4] = LoadFunction::linear({0.0, 0.5});  // a2 -> a1 transfer

  // Latency limits by path content (enumeration order is an implementation
  // detail): {a0,a1} -> 500, {a2,a3} -> 600, update {a2} -> 400.
  const auto& paths = g.paths();
  scenario.latencyLimits.resize(paths.size());
  for (std::size_t k = 0; k < paths.size(); ++k) {
    if (paths[k].kind == PathKind::Update) {
      scenario.latencyLimits[k] = 400.0;
    } else if (paths[k].apps.front() == 0) {
      scenario.latencyLimits[k] = 500.0;
    } else {
      scenario.latencyLimits[k] = 600.0;
    }
  }
  return scenario;
}

sched::Mapping miniMapping() {
  // a0, a1 on m0; a2, a3 on m1: every machine runs 2 apps, factor 2.6.
  return sched::Mapping({0, 0, 1, 1}, 2);
}

std::size_t pathIndexOf(const SystemGraph& g, PathKind kind,
                        std::size_t firstApp) {
  const auto& paths = g.paths();
  for (std::size_t k = 0; k < paths.size(); ++k) {
    if (paths[k].kind == kind && paths[k].apps.front() == firstApp) {
      return k;
    }
  }
  throw std::logic_error("path not found");
}

TEST(ConstraintStatus, FractionAgainstNonPositiveLimit) {
  // A positive value against a zero (or negative) limit is infeasible at any
  // scale: fraction() must report +inf, not 0/0 = NaN or a garbage ratio
  // that would let slack() mask the violation as fully slack.
  ConstraintStatus status;
  status.value = 3.0;
  status.limit = 0.0;
  EXPECT_TRUE(std::isinf(status.fraction()));
  EXPECT_GT(status.fraction(), 0.0);
  status.limit = -1.0;
  EXPECT_TRUE(std::isinf(status.fraction()));

  // A zero value against a zero limit is trivially satisfied.
  status.value = 0.0;
  status.limit = 0.0;
  EXPECT_DOUBLE_EQ(status.fraction(), 0.0);

  // The ordinary ratio is untouched.
  status.value = 1.0;
  status.limit = 4.0;
  EXPECT_DOUBLE_EQ(status.fraction(), 0.25);
}

TEST(HiperdSystem, FactorsAndComputationTimes) {
  const HiperdScenario scenario = miniScenario();
  const HiperdSystem system(scenario, miniMapping());
  const num::Vec& l = scenario.lambdaOrig;
  EXPECT_DOUBLE_EQ(system.factorOf(0), 2.6);
  EXPECT_DOUBLE_EQ(system.computationTime(0, l), 26.0);   // 2.6 * 10
  EXPECT_DOUBLE_EQ(system.computationTime(1, l), 104.0);  // 2.6 * 40
  EXPECT_DOUBLE_EQ(system.computationTime(2, l), 156.0);  // 2.6 * 60
  EXPECT_DOUBLE_EQ(system.computationTime(3, l), 52.0);   // 2.6 * 20
  EXPECT_DOUBLE_EQ(system.communicationTime(4, l), 10.0); // 0.5 * 20
  EXPECT_DOUBLE_EQ(system.communicationTime(0, l), 0.0);
}

TEST(HiperdSystem, UnevenMappingFactors) {
  const HiperdScenario scenario = miniScenario();
  // Three apps on m0, one on m1: factors 3.9 and 1.0. Note a2 on m0 uses
  // the machine-0 coefficients (the "unused" 999s) — so only query a3.
  const HiperdSystem system(scenario, sched::Mapping({0, 0, 0, 1}, 2));
  EXPECT_DOUBLE_EQ(system.factorOf(0), 3.9);
  EXPECT_DOUBLE_EQ(system.factorOf(3), 1.0);
  EXPECT_DOUBLE_EQ(system.computationTime(3, scenario.lambdaOrig), 20.0);
}

TEST(HiperdSystem, ThroughputBounds) {
  const HiperdScenario scenario = miniScenario();
  const HiperdSystem system(scenario, miniMapping());
  EXPECT_DOUBLE_EQ(system.throughputBound(0), 1000.0);
  EXPECT_DOUBLE_EQ(system.throughputBound(1), 1000.0);
  EXPECT_DOUBLE_EQ(system.throughputBound(2), 2000.0);
  EXPECT_DOUBLE_EQ(system.throughputBound(3), 2000.0);
}

TEST(HiperdSystem, LatenciesMatchHandComputation) {
  const HiperdScenario scenario = miniScenario();
  const HiperdSystem system(scenario, miniMapping());
  const num::Vec& l = scenario.lambdaOrig;
  const auto& g = scenario.graph;
  EXPECT_DOUBLE_EQ(
      system.latency(pathIndexOf(g, PathKind::Trigger, 0), l), 130.0);
  EXPECT_DOUBLE_EQ(
      system.latency(pathIndexOf(g, PathKind::Trigger, 2), l), 208.0);
  // Update path: Tc(a2) + Tn(a2->a1) = 156 + 10.
  EXPECT_DOUBLE_EQ(
      system.latency(pathIndexOf(g, PathKind::Update, 2), l), 166.0);
}

TEST(HiperdSystem, SlackMatchesHandComputation) {
  const HiperdScenario scenario = miniScenario();
  const HiperdSystem system(scenario, miniMapping());
  // Max utilization is the update path: 166 / 400 = 0.415.
  EXPECT_NEAR(system.slack(), 1.0 - 0.415, 1e-12);
}

TEST(HiperdSystem, ConstraintListContents) {
  const HiperdScenario scenario = miniScenario();
  const HiperdSystem system(scenario, miniMapping());
  const auto constraints = system.constraints();
  // 4 computation + 1 non-zero communication + 3 latency.
  EXPECT_EQ(constraints.size(), 8u);
  int comp = 0;
  int comm = 0;
  int lat = 0;
  for (const auto& c : constraints) {
    switch (c.kind) {
      case ConstraintKind::Computation: ++comp; break;
      case ConstraintKind::Communication: ++comm; break;
      case ConstraintKind::Latency: ++lat; break;
    }
    EXPECT_GT(c.limit, 0.0);
  }
  EXPECT_EQ(comp, 4);
  EXPECT_EQ(comm, 1);
  EXPECT_EQ(lat, 3);
}

TEST(HiperdSystem, RobustnessMatchesHandComputation) {
  const HiperdScenario scenario = miniScenario();
  const HiperdSystem system(scenario, miniMapping());
  const auto report = system.analyze();

  // Binding constraint: the update path {a2}, weights (0, 8.3),
  // gap 400 - 166 = 234, radius 234 / 8.3 = 28.1928...
  const double expected = 234.0 / 8.3;
  EXPECT_DOUBLE_EQ(report.metric, std::floor(expected));
  EXPECT_TRUE(report.floored);
  const auto& binding = report.radii[report.bindingFeature];
  const std::size_t updateIdx =
      pathIndexOf(scenario.graph, PathKind::Update, 2);
  EXPECT_EQ(binding.feature, "L_" + std::to_string(updateIdx));
  EXPECT_NEAR(binding.radius, expected, 1e-9);
  // lambda* moves only the second sensor's load.
  EXPECT_NEAR(binding.boundaryPoint[0], 10.0, 1e-9);
  EXPECT_NEAR(binding.boundaryPoint[1], 20.0 + expected, 1e-9);

  // Individual radii: spot-check a computation and the communication one.
  for (const auto& r : report.radii) {
    if (r.feature == "Tc(a0)") {
      EXPECT_NEAR(r.radius, (1000.0 - 26.0) / 2.6, 1e-9);
    } else if (r.feature == "Tn(a2->a1)") {
      EXPECT_NEAR(r.radius, (2000.0 - 10.0) / 0.5, 1e-9);
    }
  }
}

TEST(HiperdSystem, GuaranteeValidatedBySampling) {
  const HiperdScenario scenario = miniScenario();
  const HiperdSystem system(scenario, miniMapping());
  const auto analyzer = system.toAnalyzer();
  const auto report = analyzer.analyze();
  const auto validation = core::validateRadius(analyzer, report.metric);
  EXPECT_EQ(validation.violationsInside, 0);
}

TEST(HiperdSystem, GeneralLoadFunctionUsesIterativeSolver) {
  HiperdScenario scenario = miniScenario();
  // Make a3's computation quadratic in l2: Tc = factor * 0.05 * l2^2.
  scenario.compute[3][1] = LoadFunction::general(
      [](std::span<const double> l) { return 0.05 * l[1] * l[1]; },
      [](std::span<const double> l) {
        return num::Vec{0.0, 0.1 * l[1]};
      });
  const HiperdSystem system(scenario, miniMapping());
  const auto report = system.analyze();
  // Tc(a3) = 2.6 * 0.05 * l2^2 = 2000 at l2 = sqrt(2000/0.13) = 124.03...;
  // radius = 124.03 - 20 = 104.03. The binding feature is still the update
  // path (28), but the a3 radius must be solved iteratively and correctly.
  for (const auto& r : report.radii) {
    if (r.feature == "Tc(a3)") {
      EXPECT_NEAR(r.radius, std::sqrt(2000.0 / 0.13) - 20.0, 1e-5);
      EXPECT_NE(r.method.find("kkt"), std::string::npos);
    }
  }
}

TEST(HiperdSystem, MappingMismatchRejected) {
  const HiperdScenario scenario = miniScenario();
  EXPECT_THROW(HiperdSystem(scenario, sched::Mapping({0, 0, 1}, 2)),
               InvalidArgumentError);
  EXPECT_THROW(HiperdSystem(scenario, sched::Mapping({0, 0, 1, 2}, 3)),
               InvalidArgumentError);
}

TEST(ValidateScenario, CatchesInconsistencies) {
  HiperdScenario s = miniScenario();
  s.lambdaOrig = {1.0};
  EXPECT_THROW(validateScenario(s), InvalidArgumentError);

  s = miniScenario();
  s.latencyLimits.pop_back();
  EXPECT_THROW(validateScenario(s), InvalidArgumentError);

  s = miniScenario();
  s.latencyLimits[0] = 0.0;
  EXPECT_THROW(validateScenario(s), InvalidArgumentError);

  s = miniScenario();
  s.compute.pop_back();
  EXPECT_THROW(validateScenario(s), InvalidArgumentError);

  s = miniScenario();
  s.comm.pop_back();
  EXPECT_THROW(validateScenario(s), InvalidArgumentError);

  s = miniScenario();
  s.machines = 0;
  EXPECT_THROW(validateScenario(s), InvalidArgumentError);
}

TEST(HiperdSystem, ZeroLoadDependenceYieldsNoFeature) {
  HiperdScenario scenario = miniScenario();
  // Make a0's computation load-independent (zero): its Tc feature vanishes
  // and the remaining analysis still works.
  scenario.compute[0][0] = LoadFunction::zero(2);
  const HiperdSystem system(scenario, miniMapping());
  const auto analyzer = system.toAnalyzer();
  for (const auto& f : analyzer.features()) {
    EXPECT_NE(f.name, "Tc(a0)");
  }
  EXPECT_TRUE(std::isfinite(system.analyze().metric));
}

}  // namespace
}  // namespace robust::hiperd
