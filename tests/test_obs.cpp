// Unit tests for the observability layer: metric registration and shard
// merging (including retired threads), histogram bucketing, trace export
// against a golden Chrome trace file, snapshot-under-concurrent-writers
// safety (exercised under TSan-less ASan/UBSan CI — the shards are relaxed
// atomics, so the sanitizers see any lifetime bug), the run-report schema,
// and the disabled-mode overhead pin for the hottest search loop.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "robust/core/compiled.hpp"
#include "robust/core/instance_file.hpp"
#include "robust/core/stream.hpp"
#include "robust/hiperd/compiled_scenario.hpp"
#include "robust/hiperd/generator.hpp"
#include "robust/numeric/simd.hpp"
#include "robust/obs/flight.hpp"
#include "robust/obs/json_lite.hpp"
#include "robust/obs/metrics.hpp"
#include "robust/obs/report.hpp"
#include "robust/obs/trace.hpp"
#include "robust/scheduling/experiment.hpp"
#include "robust/scheduling/heuristics.hpp"
#include "robust/util/rng.hpp"
#include "robust/util/timer.hpp"

namespace robust {
namespace {

/// RAII guard: every test runs with a clean slate and leaves recording off.
class ObsFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::setEnabled(true);
    obs::resetMetrics();
    obs::clearTrace();
    obs::clearFlight();
    obs::setFlightCapacity(obs::kDefaultFlightCapacity);
  }
  void TearDown() override {
    obs::setEnabled(false);
    obs::resetMetrics();
    obs::clearTrace();
    obs::clearFlight();
    obs::setFlightCapacity(obs::kDefaultFlightCapacity);
    obs::detail::setClockForTesting(nullptr);
  }
};

using ObsMetrics = ObsFixture;
using ObsTrace = ObsFixture;
using ObsReport = ObsFixture;

// ---------------------------------------------------------------- metrics

TEST_F(ObsMetrics, CounterIdIsIdempotent) {
  const obs::MetricId a = obs::counterId("test.idempotent");
  const obs::MetricId b = obs::counterId("test.idempotent");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, obs::counterId("test.idempotent2"));
}

TEST_F(ObsMetrics, CounterAccumulatesAndResets) {
  const obs::MetricId id = obs::counterId("test.counter");
  obs::addCounter(id);
  obs::addCounter(id, 41);
  EXPECT_EQ(obs::snapshotMetrics().counter("test.counter"), 42u);
  obs::resetMetrics();
  EXPECT_EQ(obs::snapshotMetrics().counter("test.counter"), 0u);
}

TEST_F(ObsMetrics, UnknownNamesReadAsZero) {
  const auto snapshot = obs::snapshotMetrics();
  EXPECT_EQ(snapshot.counter("test.never_registered"), 0u);
  EXPECT_EQ(snapshot.gauge("test.never_registered"), 0);
  EXPECT_EQ(snapshot.histogram("test.never_registered"), nullptr);
}

TEST_F(ObsMetrics, GaugeSetAndHighWater) {
  const obs::MetricId id = obs::gaugeId("test.gauge");
  obs::setGauge(id, 7);
  EXPECT_EQ(obs::snapshotMetrics().gauge("test.gauge"), 7);
  obs::maxGauge(id, 3);  // below the high-water mark: no effect
  EXPECT_EQ(obs::snapshotMetrics().gauge("test.gauge"), 7);
  obs::maxGauge(id, 19);
  EXPECT_EQ(obs::snapshotMetrics().gauge("test.gauge"), 19);
}

TEST_F(ObsMetrics, HistogramBucketsByPowerOfTwo) {
  const obs::MetricId id = obs::histogramId("test.hist");
  obs::recordLatency(id, 0);     // bucket 0
  obs::recordLatency(id, 1);     // bit_width(1) = 1  -> bucket 1
  obs::recordLatency(id, 1000);  // bit_width(1000) = 10 -> bucket 10
  obs::recordLatency(id, -5);    // clamped to 0 -> bucket 0
  const auto snapshot = obs::snapshotMetrics();
  const obs::HistogramValue* hist = snapshot.histogram("test.hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, 4u);
  EXPECT_EQ(hist->sumNanos, 1001u);
  ASSERT_EQ(hist->buckets.size(), obs::kHistogramBuckets);
  EXPECT_EQ(hist->buckets[0], 2u);
  EXPECT_EQ(hist->buckets[1], 1u);
  EXPECT_EQ(hist->buckets[10], 1u);
}

TEST_F(ObsMetrics, HistogramSaturatesAtLastBucket) {
  const obs::MetricId id = obs::histogramId("test.hist_saturate");
  obs::recordLatency(id, INT64_MAX);  // bit_width = 63, far past bucket 27
  const obs::HistogramValue* hist =
      obs::snapshotMetrics().histogram("test.hist_saturate");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->buckets[obs::kHistogramBuckets - 1], 1u);
}

TEST_F(ObsMetrics, DisabledRecordingIsDropped) {
  const obs::MetricId id = obs::counterId("test.disabled");
  obs::setEnabled(false);
  // The call-site convention guards on enabled(); recording anyway must be
  // harmless (the shard write happens, the convention just skips it).
  // What matters here: enabled() is false so instrumented code paths skip.
  EXPECT_FALSE(obs::enabled());
  obs::setEnabled(true);
  EXPECT_EQ(obs::snapshotMetrics().counter("test.disabled"), 0u);
}

// The shard merge must fold in threads that have already exited: each
// worker's thread_local shard retires at thread exit, and its totals move
// to the registry's retired tally. Whatever the interleaving, the merged
// value is exact.
TEST_F(ObsMetrics, MergesRetiredThreadShardsExactly) {
  const obs::MetricId id = obs::counterId("test.retired");
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  {
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([id] {
        for (int i = 0; i < kIncrements; ++i) {
          obs::addCounter(id);
        }
      });
    }
    for (std::thread& w : workers) {
      w.join();
    }
  }
  EXPECT_EQ(obs::snapshotMetrics().counter("test.retired"),
            static_cast<std::uint64_t>(kThreads) * kIncrements);
}

// Snapshots taken while writers are mid-flight must observe consistent
// per-slot values (monotone, never torn, never above the true total) and
// the final snapshot must be exact. Run under ASan/UBSan in CI.
TEST_F(ObsMetrics, SnapshotUnderConcurrentWritersIsSafeAndMonotone) {
  const obs::MetricId id = obs::counterId("test.race");
  constexpr int kThreads = 4;
  constexpr int kIncrements = 50000;
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([id, &go] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (int i = 0; i < kIncrements; ++i) {
        obs::addCounter(id);
      }
    });
  }
  go.store(true, std::memory_order_release);
  constexpr std::uint64_t kTotal =
      static_cast<std::uint64_t>(kThreads) * kIncrements;
  std::uint64_t previous = 0;
  for (int s = 0; s < 200; ++s) {
    const std::uint64_t seen = obs::snapshotMetrics().counter("test.race");
    EXPECT_GE(seen, previous);
    EXPECT_LE(seen, kTotal);
    previous = seen;
  }
  for (std::thread& w : workers) {
    w.join();
  }
  EXPECT_EQ(obs::snapshotMetrics().counter("test.race"), kTotal);
}

// --------------------------------------------------------------- labeled

TEST_F(ObsMetrics, LabeledCountersComposeSeriesNames) {
  const obs::MetricId alice = obs::counterId("test.lbl", "tenant", "alice");
  const obs::MetricId bob = obs::counterId("test.lbl", "tenant", "bob");
  EXPECT_NE(alice, bob);
  EXPECT_EQ(alice, obs::counterId("test.lbl", "tenant", "alice"));
  obs::addCounter(alice, 3);
  obs::addCounter(bob, 4);
  const auto snapshot = obs::snapshotMetrics();
  EXPECT_EQ(snapshot.counter("test.lbl{tenant=alice}"), 3u);
  EXPECT_EQ(snapshot.counter("test.lbl{tenant=bob}"), 4u);
  EXPECT_EQ(snapshot.counter("test.lbl"), 0u);  // the bare name is distinct
}

// The labeled path rides the same shard/retired merge as plain counters:
// per-tenant totals must be exact even when every writer thread has
// already exited by snapshot time.
TEST_F(ObsMetrics, LabeledCountersMergeRetiredThreadsExactly) {
  const obs::MetricId alice = obs::counterId("test.lblret", "tenant", "alice");
  const obs::MetricId bob = obs::counterId("test.lblret", "tenant", "bob");
  constexpr int kThreads = 6;
  constexpr int kIncrements = 5000;
  {
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([alice, bob, t] {
        for (int i = 0; i < kIncrements; ++i) {
          obs::addCounter(t % 2 == 0 ? alice : bob);
        }
      });
    }
    for (std::thread& w : workers) {
      w.join();
    }
  }
  const auto snapshot = obs::snapshotMetrics();
  EXPECT_EQ(snapshot.counter("test.lblret{tenant=alice}"),
            3u * kIncrements);
  EXPECT_EQ(snapshot.counter("test.lblret{tenant=bob}"), 3u * kIncrements);
}

// Hostile label cardinality (a tenant name per connection, say) must not
// crash or throw on the recording path: once the table fills, new label
// values degrade to the shared {tenant=_other_} aggregation bucket that
// was reserved at the first labeled registration.
TEST_F(ObsMetrics, LabeledRegistrationOverflowsToAggregationBucket) {
  const obs::MetricId overflow = obs::counterId("test.ovf", "tenant", "_other_");
  std::uint64_t overflowed = 0;
  for (int i = 0; i < 400; ++i) {
    const obs::MetricId id =
        obs::counterId("test.ovf", "tenant", "t" + std::to_string(i));
    obs::addCounter(id);
    if (id == overflow) {
      ++overflowed;
    }
  }
  ASSERT_GT(overflowed, 0u) << "400 label values never exhausted the table";
  const auto snapshot = obs::snapshotMetrics();
  EXPECT_EQ(snapshot.counter("test.ovf{tenant=_other_}"), overflowed);
  // The series registered before exhaustion stay exact.
  EXPECT_EQ(snapshot.counter("test.ovf{tenant=t0}"), 1u);
}

TEST_F(ObsMetrics, HistogramQuantilesUseBucketUpperBounds) {
  const obs::MetricId id = obs::histogramId("test.lat", "tenant", "alice");
  for (int i = 0; i < 100; ++i) {
    obs::recordLatency(id, 100);  // bit_width(100) = 7 -> [64, 127]
  }
  for (int i = 0; i < 10; ++i) {
    obs::recordLatency(id, 1000000);  // bit_width = 20 -> [524288, 1048575]
  }
  const auto snapshot = obs::snapshotMetrics();
  const obs::HistogramValue* hist =
      snapshot.histogram("test.lat{tenant=alice}");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, 110u);
  EXPECT_EQ(hist->quantileUpperNanos(0.50), 127u);
  EXPECT_EQ(hist->quantileUpperNanos(0.95), 1048575u);
  EXPECT_EQ(hist->quantileUpperNanos(0.99), 1048575u);

  const obs::HistogramValue* empty =
      snapshot.histogram("test.lat{tenant=alice}");
  ASSERT_NE(empty, nullptr);
  std::array<std::uint64_t, obs::kHistogramBuckets> zeros{};
  EXPECT_EQ(obs::latencyQuantileUpperNanos(zeros, 0, 0.5), 0u);
}

// Every digest edge has a specified answer: empty digests and empty bucket
// spans answer 0, a single-bucket digest answers that bucket's bound for
// every quantile, and a degenerate digest (count larger than the bucket
// sum — e.g. a trimmed snapshot) answers the bound of the last OCCUPIED
// bucket, never the bound of a trailing empty slot.
TEST_F(ObsMetrics, QuantileEdgesAreSpecified) {
  // Empty digest in both shapes: zero count, and an empty bucket span.
  std::array<std::uint64_t, obs::kHistogramBuckets> zeros{};
  EXPECT_EQ(obs::latencyQuantileUpperNanos(zeros, 0, 0.0), 0);
  EXPECT_EQ(obs::latencyQuantileUpperNanos(zeros, 0, 1.0), 0);
  EXPECT_EQ(obs::latencyQuantileUpperNanos({}, 0, 0.5), 0);
  EXPECT_EQ(obs::latencyQuantileUpperNanos({}, 5, 0.5), 0);

  // A count with all-zero buckets behaves like an empty digest, not like
  // an observation in the last bucket.
  EXPECT_EQ(obs::latencyQuantileUpperNanos(zeros, 7, 0.5), 0);

  // Single-bucket digests: every quantile answers that bucket's bound.
  const std::array<std::uint64_t, 1> only0{{9}};
  EXPECT_EQ(obs::latencyQuantileUpperNanos(only0, 9, 0.0), 0);
  EXPECT_EQ(obs::latencyQuantileUpperNanos(only0, 9, 1.0), 0);
  const std::array<std::uint64_t, 3> only2{{0, 0, 7}};
  EXPECT_EQ(obs::latencyQuantileUpperNanos(only2, 7, 0.0), 3);
  EXPECT_EQ(obs::latencyQuantileUpperNanos(only2, 7, 0.5), 3);
  EXPECT_EQ(obs::latencyQuantileUpperNanos(only2, 7, 1.0), 3);

  // Degenerate digest: count exceeds the bucket sum (trailing buckets
  // trimmed away). High quantiles land on the last occupied bucket.
  const std::array<std::uint64_t, 6> trimmed{{0, 4, 2, 0, 0, 0}};
  EXPECT_EQ(obs::latencyQuantileUpperNanos(trimmed, 100, 0.99), 3);
  EXPECT_EQ(obs::latencyQuantileUpperNanos(trimmed, 100, 0.01), 1);

  // Quantiles outside [0, 1] clamp instead of indexing out of range.
  const std::array<std::uint64_t, 3> spread{{1, 1, 1}};
  EXPECT_EQ(obs::latencyQuantileUpperNanos(spread, 3, -0.5), 0);
  EXPECT_EQ(obs::latencyQuantileUpperNanos(spread, 3, 1.5), 3);
}

// A STATS snapshot runs concurrently with labeled writers and fetch-max
// gauge updates; every intermediate snapshot must be consistent (monotone
// counters, gauge never above the true maximum) and the final state exact.
TEST_F(ObsMetrics, LabeledWritersAndMaxGaugeSurviveConcurrentSnapshots) {
  const obs::MetricId alice = obs::counterId("test.lblrace", "tenant", "alice");
  const obs::MetricId bob = obs::counterId("test.lblrace", "tenant", "bob");
  const obs::MetricId gauge = obs::gaugeId("test.lblrace.highwater");
  constexpr int kThreads = 4;
  constexpr int kIncrements = 20000;
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([alice, bob, gauge, t, &go] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (int i = 0; i < kIncrements; ++i) {
        obs::addCounter(t % 2 == 0 ? alice : bob);
        obs::maxGauge(gauge, t * kIncrements + i);
      }
    });
  }
  go.store(true, std::memory_order_release);
  constexpr std::uint64_t kPerTenant =
      static_cast<std::uint64_t>(kThreads / 2) * kIncrements;
  constexpr std::int64_t kMaxGauge = (kThreads - 1) * kIncrements +
                                     (kIncrements - 1);
  std::uint64_t prevAlice = 0;
  for (int s = 0; s < 100; ++s) {
    const auto snapshot = obs::snapshotMetrics();
    const std::uint64_t seen = snapshot.counter("test.lblrace{tenant=alice}");
    EXPECT_GE(seen, prevAlice);
    EXPECT_LE(seen, kPerTenant);
    EXPECT_LE(snapshot.gauge("test.lblrace.highwater"), kMaxGauge);
    prevAlice = seen;
  }
  for (std::thread& w : workers) {
    w.join();
  }
  const auto snapshot = obs::snapshotMetrics();
  EXPECT_EQ(snapshot.counter("test.lblrace{tenant=alice}"), kPerTenant);
  EXPECT_EQ(snapshot.counter("test.lblrace{tenant=bob}"), kPerTenant);
  EXPECT_EQ(snapshot.gauge("test.lblrace.highwater"), kMaxGauge);
}

// ---------------------------------------------------------------- trace

// Deterministic test clock: starts at 1 ms, advances 500 ns per reading.
std::int64_t gFakeNow = 0;
std::int64_t fakeClock() noexcept {
  const std::int64_t t = gFakeNow;
  gFakeNow += 500;
  return t;
}

std::string goldenPath() {
  return std::string(ROBUST_TEST_DATA_DIR) + "/obs_trace_golden.json";
}

TEST_F(ObsTrace, ExportMatchesGoldenFileWithNestingAndThreadIds) {
  gFakeNow = 1'000'000;
  obs::detail::setClockForTesting(&fakeClock);
  {
    const obs::Span outer("outer");
    {
      const obs::Span inner("inner");
    }
  }
  std::thread worker([] {
    const obs::Span span("worker");
  });
  worker.join();

  std::ostringstream out;
  obs::writeTrace(out);

  std::ifstream golden(goldenPath());
  ASSERT_TRUE(golden.is_open()) << "missing golden file " << goldenPath();
  std::stringstream expected;
  expected << golden.rdbuf();
  EXPECT_EQ(out.str(), expected.str())
      << "trace export drifted from the golden file; if the change is "
         "intentional, regenerate tests/data/obs_trace_golden.json";

  // The golden file itself must be loadable Chrome trace JSON.
  const auto doc = obs::json::parse(out.str());
  ASSERT_TRUE(doc.isObject());
  const auto* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->array.size(), 3u);
  // Span nesting: "outer" encloses "inner" on the same dense tid 1; the
  // worker thread gets tid 2 (ordered by first span start).
  EXPECT_EQ(events->array[0].find("name")->string, "outer");
  EXPECT_EQ(events->array[1].find("name")->string, "inner");
  EXPECT_EQ(events->array[2].find("name")->string, "worker");
  EXPECT_EQ(events->array[0].find("tid")->number, 1.0);
  EXPECT_EQ(events->array[1].find("tid")->number, 1.0);
  EXPECT_EQ(events->array[2].find("tid")->number, 2.0);
  const double outerTs = events->array[0].find("ts")->number;
  const double outerEnd = outerTs + events->array[0].find("dur")->number;
  const double innerTs = events->array[1].find("ts")->number;
  const double innerEnd = innerTs + events->array[1].find("dur")->number;
  EXPECT_LE(outerTs, innerTs);
  EXPECT_GE(outerEnd, innerEnd);
}

TEST_F(ObsTrace, DisabledSpansRecordNothing) {
  obs::setEnabled(false);
  {
    const obs::Span span("invisible");
  }
  obs::setEnabled(true);
  std::ostringstream out;
  obs::writeTrace(out);
  EXPECT_EQ(out.str().find("invisible"), std::string::npos);
}

TEST_F(ObsTrace, ClearTraceDiscardsRecordedSpans) {
  {
    const obs::Span span("to_be_cleared");
  }
  obs::clearTrace();
  std::ostringstream out;
  obs::writeTrace(out);
  EXPECT_EQ(out.str().find("to_be_cleared"), std::string::npos);
}

// ---------------------------------------------------------------- flight

using ObsFlight = ObsFixture;

std::string flightDumpText() {
  std::ostringstream out;
  obs::writeFlightTrace(out);
  return out.str();
}

// The flight recorder runs independently of obs::enabled(): it is the
// always-on crash-context ring, gated only by its capacity.
TEST_F(ObsFlight, RecordsWithMetricsDisabled) {
  obs::setEnabled(false);
  obs::recordFlight("flight.test", 7, 1000, 250);
  obs::setEnabled(true);
  EXPECT_EQ(obs::flightRecordCount(), 1u);
  const std::string dump = flightDumpText();
  EXPECT_NE(dump.find("\"flight.test\""), std::string::npos);
  EXPECT_NE(dump.find("\"requestId\":7"), std::string::npos);
  EXPECT_NE(dump.find("\"cat\":\"flight\""), std::string::npos);
}

// The ring keeps the NEWEST capacity records; older ones are overwritten
// in place and the dump is chronological.
TEST_F(ObsFlight, RingWrapsKeepingNewestRecords) {
  obs::setFlightCapacity(4);
  for (int i = 0; i < 7; ++i) {
    obs::recordFlight("flight.wrap", static_cast<std::uint64_t>(i),
                      1000 * (i + 1), 10);
  }
  EXPECT_EQ(obs::flightRecordCount(), 4u);
  const std::string dump = flightDumpText();
  EXPECT_EQ(dump.find("\"requestId\":2"), std::string::npos);  // overwritten
  for (int i = 3; i < 7; ++i) {
    EXPECT_NE(dump.find("\"requestId\":" + std::to_string(i)),
              std::string::npos);
  }
  // Chronological within the thread: request 3's event precedes request 6's.
  EXPECT_LT(dump.find("\"requestId\":3"), dump.find("\"requestId\":6"));
}

TEST_F(ObsFlight, ZeroCapacityDisablesRecording) {
  obs::setFlightCapacity(0);
  EXPECT_FALSE(obs::flightEnabled());
  obs::recordFlight("flight.off", 1, 100, 10);
  {
    const obs::FlightSpan span("flight.off_span", 2);
  }
  EXPECT_EQ(obs::flightRecordCount(), 0u);
}

TEST_F(ObsFlight, FlightSpanMeasuresWithTestClock) {
  gFakeNow = 1000000;
  obs::detail::setClockForTesting(&fakeClock);
  {
    const obs::FlightSpan span("flight.span", 42);
  }  // two clock reads, 500 ns apart
  obs::detail::setClockForTesting(nullptr);
  const std::string dump = flightDumpText();
  EXPECT_NE(dump.find("\"name\":\"flight.span\""), std::string::npos);
  EXPECT_NE(dump.find("\"ts\":1000.000"), std::string::npos);
  EXPECT_NE(dump.find("\"dur\":0.500"), std::string::npos);
  EXPECT_NE(dump.find("\"requestId\":42"), std::string::npos);
}

// Two identical recording sequences under the test clock serialize to
// byte-identical documents, and records from exited threads survive into
// the dump (the retired-flight fold).
TEST_F(ObsFlight, DumpIsDeterministicAndIncludesRetiredThreads) {
  const auto run = [] {
    obs::clearFlight();
    gFakeNow = 5000;
    obs::detail::setClockForTesting(&fakeClock);
    std::thread worker([] {
      obs::recordFlight("flight.worker", 11, 2000, 100);
    });
    worker.join();  // the worker's ring retires at thread exit
    {
      const obs::FlightSpan span("flight.main", 12);
    }
    obs::detail::setClockForTesting(nullptr);
    return flightDumpText();
  };
  const std::string first = run();
  const std::string second = run();
  EXPECT_EQ(first, second) << "flight dump is not deterministic";
  EXPECT_NE(first.find("\"flight.worker\""), std::string::npos);
  EXPECT_NE(first.find("\"flight.main\""), std::string::npos);
  // Both threads appear, remapped to dense tids 1 and 2 (the retired
  // worker sorts first: its record starts earliest).
  EXPECT_NE(first.find("\"tid\":1"), std::string::npos);
  EXPECT_NE(first.find("\"tid\":2"), std::string::npos);
}

TEST_F(ObsFlight, ClearFlightDropsEverything) {
  obs::recordFlight("flight.gone", 1, 100, 10);
  obs::clearFlight();
  EXPECT_EQ(obs::flightRecordCount(), 0u);
  EXPECT_EQ(flightDumpText().find("flight.gone"), std::string::npos);
}

// ---------------------------------------------------------------- report

TEST_F(ObsReport, RunReportRoundTripsThroughTheValidatorSchema) {
  obs::addCounter(obs::counterId("test.report_counter"), 5);
  obs::setGauge(obs::gaugeId("test.report_gauge"), -3);
  obs::recordLatency(obs::histogramId("test.report_hist"), 1024);

  obs::RunReport report;
  report.tool = "test_obs";
  report.info.emplace_back("flavor", "unit \"quoted\"");
  report.benchmarks.push_back(obs::BenchResult{"bench/one", 1.5, "ns"});
  std::ostringstream out;
  obs::writeRunReport(out, report);

  const auto doc = obs::json::parse(out.str());
  ASSERT_TRUE(doc.isObject());
  EXPECT_EQ(doc.find("schema")->string, obs::kRunReportSchemaName);
  EXPECT_EQ(doc.find("schema_version")->number,
            static_cast<double>(obs::kRunReportSchemaVersion));
  EXPECT_EQ(doc.find("tool")->string, "test_obs");
  EXPECT_EQ(doc.find("info")->find("flavor")->string, "unit \"quoted\"");
  const auto* benchmarks = doc.find("benchmarks");
  ASSERT_EQ(benchmarks->array.size(), 1u);
  EXPECT_EQ(benchmarks->array[0].find("name")->string, "bench/one");
  EXPECT_EQ(benchmarks->array[0].find("value")->number, 1.5);
  const auto* metrics = doc.find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_EQ(metrics->find("counters")->find("test.report_counter")->number,
            5.0);
  EXPECT_EQ(metrics->find("gauges")->find("test.report_gauge")->number, -3.0);
  const auto* hist = metrics->find("histograms")->find("test.report_hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->find("count")->number, 1.0);
  EXPECT_EQ(hist->find("sum_nanos")->number, 1024.0);
  // 1024 = 2^10: bit_width = 11. Trailing zeros are trimmed, so the last
  // entry is the populated bucket.
  ASSERT_EQ(hist->find("buckets")->array.size(), 12u);
  EXPECT_EQ(hist->find("buckets")->array[11].number, 1.0);
}

TEST_F(ObsReport, MetricsSectionCanBeOmitted) {
  obs::RunReport report;
  report.tool = "test_obs";
  report.includeMetrics = false;
  std::ostringstream out;
  obs::writeRunReport(out, report);
  const auto doc = obs::json::parse(out.str());
  EXPECT_EQ(doc.find("metrics"), nullptr);
}

TEST_F(ObsReport, RawSectionsAppendAsTopLevelKeys) {
  obs::RunReport report;
  report.tool = "test_obs";
  report.includeMetrics = false;
  report.sections.emplace_back(
      "curve", "{\"schema\": \"robust.curve\", \"samples\": 3}");
  report.sections.emplace_back("extra", "[1, 2, 3]");
  std::ostringstream out;
  obs::writeRunReport(out, report);
  const auto doc = obs::json::parse(out.str());
  ASSERT_TRUE(doc.isObject());
  const auto* curve = doc.find("curve");
  ASSERT_NE(curve, nullptr);
  EXPECT_EQ(curve->find("schema")->string, "robust.curve");
  EXPECT_EQ(curve->find("samples")->number, 3.0);
  const auto* extra = doc.find("extra");
  ASSERT_NE(extra, nullptr);
  ASSERT_EQ(extra->array.size(), 3u);
}

TEST_F(ObsReport, RawSectionKeyCollisionsAreLoudErrors) {
  obs::RunReport report;
  report.tool = "test_obs";
  report.includeMetrics = false;
  report.sections.emplace_back("metrics", "{}");
  std::ostringstream out;
  EXPECT_THROW(obs::writeRunReport(out, report), std::invalid_argument);
  report.sections = {{"curve", "{}"}, {"curve", "{}"}};
  std::ostringstream out2;
  EXPECT_THROW(obs::writeRunReport(out2, report), std::invalid_argument);
}

TEST_F(ObsReport, ControlCharactersRoundTripThroughWriterAndReader) {
  // Every byte 0x00..0x1F lands in an info value; the writer escapes the
  // non-shorthand ones as \u00XX, which the reader must decode (a report
  // whose strings contain a tab or CR used to be rejected by our own
  // parser).
  std::string all;
  for (int b = 0x00; b <= 0x1f; ++b) {
    all.push_back(static_cast<char>(b));
  }
  obs::RunReport report;
  report.tool = "test_obs";
  report.includeMetrics = false;
  report.info.emplace_back("controls", all);
  report.info.emplace_back("mixed", std::string("a\tb\rc\x01d"));
  std::ostringstream out;
  obs::writeRunReport(out, report);

  const auto doc = obs::json::parse(out.str());
  ASSERT_TRUE(doc.isObject());
  const auto* controls = doc.find("info")->find("controls");
  ASSERT_NE(controls, nullptr);
  EXPECT_EQ(controls->string, all);
  EXPECT_EQ(doc.find("info")->find("mixed")->string, "a\tb\rc\x01d");
}

TEST_F(ObsReport, JsonLiteDecodesBmpEscapesAndRejectsSurrogates) {
  // BMP escapes decode to UTF-8 across all three encoding widths.
  EXPECT_EQ(obs::json::parse("\"\\u0041\"").string, "A");
  EXPECT_EQ(obs::json::parse("\"\\u00e9\"").string, "\xc3\xa9");      // é
  EXPECT_EQ(obs::json::parse("\"\\u20ac\"").string, "\xe2\x82\xac");  // €
  EXPECT_EQ(obs::json::parse("\"\\uFFFD\"").string, "\xef\xbf\xbd");
  // Surrogate halves and malformed hex are loud errors, not mojibake.
  EXPECT_THROW((void)obs::json::parse("\"\\ud800\""), std::runtime_error);
  EXPECT_THROW((void)obs::json::parse("\"\\udfff\""), std::runtime_error);
  EXPECT_THROW((void)obs::json::parse("\"\\u-12f\""), std::runtime_error);
  EXPECT_THROW((void)obs::json::parse("\"\\u12\""), std::runtime_error);
  EXPECT_THROW((void)obs::json::parse("\"\\u12g4\""), std::runtime_error);
}

// ----------------------------------------------------- metric-lane metrics

/// A compiled problem whose first feature binds tightly and whose remaining
/// rows are far from their bounds, so the metric lane's incumbent prune
/// provably skips every row after the first.
core::CompiledProblem pruneHeavyProblem() {
  constexpr std::size_t kRows = 40;
  constexpr std::size_t kDims = 8;
  core::ProblemSpec spec;
  spec.parameter.name = "pi";
  spec.parameter.origin = num::Vec(kDims, 1.0);
  for (std::size_t r = 0; r < kRows; ++r) {
    num::Vec weights(kDims, 1.0 + static_cast<double>(r % 3));
    double atOrigin = 0.0;
    for (std::size_t k = 0; k < kDims; ++k) {
      atOrigin += weights[k] * spec.parameter.origin[k];
    }
    spec.features.push_back(core::PerformanceFeature{
        "F_" + std::to_string(r),
        core::ImpactFunction::affine(std::move(weights)),
        core::ToleranceBounds::atMost(atOrigin + (r == 0 ? 0.01 : 100.0))});
  }
  return core::CompiledProblem::compile(std::move(spec));
}

TEST_F(ObsMetrics, MetricLaneRecordsDispatchAndPruneMetrics) {
  const auto problem = pruneHeavyProblem();
  const num::Vec origin(8, 1.001);  // non-default: forces the kernel pass
  core::AnalysisInstance instance;
  instance.origin = origin;

  num::simd::setTarget(num::simd::Target::Scalar);
  (void)problem.evaluateMetric(instance);
  auto snapshot = obs::snapshotMetrics();
  EXPECT_EQ(snapshot.counter("core.kernel.dispatch.scalar"), 1u);
  EXPECT_EQ(snapshot.counter("core.kernel.dispatch.avx2"), 0u);
  // Row 0 binds; every later row's gap lower bound exceeds the incumbent.
  EXPECT_EQ(snapshot.counter("core.prune.rows_skipped"), 39u);
  EXPECT_EQ(snapshot.gauge("core.prune.effectiveness"), 39 * 100 / 40);

  if (num::simd::avx2Available()) {
    num::simd::setTarget(num::simd::Target::Avx2);
    (void)problem.evaluateMetric(instance);
    snapshot = obs::snapshotMetrics();
    EXPECT_EQ(snapshot.counter("core.kernel.dispatch.avx2"), 1u);
  }
  num::simd::setTarget(num::simd::avx2Available() ? num::simd::Target::Avx2
                                                  : num::simd::Target::Scalar);
}

TEST_F(ObsMetrics, MetricLaneRecordsNothingWhenDisabled) {
  const auto problem = pruneHeavyProblem();
  const num::Vec origin(8, 1.001);
  core::AnalysisInstance instance;
  instance.origin = origin;
  obs::setEnabled(false);
  (void)problem.evaluateMetric(instance);
  obs::setEnabled(true);
  const auto snapshot = obs::snapshotMetrics();
  EXPECT_EQ(snapshot.counter("core.kernel.dispatch.scalar"), 0u);
  EXPECT_EQ(snapshot.counter("core.kernel.dispatch.avx2"), 0u);
  EXPECT_EQ(snapshot.counter("core.prune.rows_skipped"), 0u);
  EXPECT_EQ(snapshot.gauge("core.prune.effectiveness"), 0);
}

TEST_F(ObsMetrics, HiperdMetricLaneRecordsAnalyzeCounter) {
  const auto generated =
      hiperd::generateScenario(hiperd::ScenarioOptions{}, 2003);
  const hiperd::CompiledScenario compiled = generated.scenario.compile();
  Pcg32 rng(4);
  const auto mapping = sched::randomMapping(
      generated.scenario.graph.applicationCount(),
      generated.scenario.machines, rng);
  (void)compiled.analyzeMetric(mapping);
  const auto snapshot = obs::snapshotMetrics();
  EXPECT_EQ(snapshot.counter("hiperd.analyze_metric"), 1u);
  EXPECT_GE(snapshot.counter("core.kernel.dispatch.scalar") +
                snapshot.counter("core.kernel.dispatch.avx2"),
            1u);
}

// ------------------------------------------------------- streaming lane

/// A 30-instance file of perturbations around pruneHeavyProblem's origin,
/// removed on destruction.
class StreamObsFile {
 public:
  StreamObsFile() {
    path_ = (std::filesystem::temp_directory_path() /
             ("robust_obs_stream_" + std::to_string(::getpid()) + ".rbi"))
                .string();
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    core::InstanceFileWriter writer(out, 8);
    std::vector<double> row(8);
    for (int i = 0; i < 30; ++i) {
      for (std::size_t k = 0; k < 8; ++k) {
        row[k] = 1.0 + 0.001 * static_cast<double>(i + 1);
      }
      writer.append(row);
    }
    writer.finish();
  }
  ~StreamObsFile() {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST_F(ObsMetrics, StreamLaneRecordsShardsInstancesAndMmapBytes) {
  const StreamObsFile file;
  const auto problem = pruneHeavyProblem();
  core::StreamOptions options;
  options.shardInstances = 7;  // 30 instances -> ceil(30/7) = 5 shards
  options.threads = 2;
  const core::StreamResult result =
      core::analyzeStream(problem, file.path(), options);
  EXPECT_EQ(result.instances, 30u);
  EXPECT_EQ(result.shards, 5u);

  const auto snapshot = obs::snapshotMetrics();
  EXPECT_EQ(snapshot.counter("core.stream.shards"), 5u);
  EXPECT_EQ(snapshot.counter("core.stream.instances"), 30u);
  EXPECT_EQ(snapshot.counter("core.stream.instances_screened"),
            result.screenedInstances);
  // The shard-queue high-water mark is the whole queue: every shard is
  // enqueued up front and drained by ticket.
  EXPECT_EQ(snapshot.gauge("core.stream.queue_high_water"), 5);
  const std::int64_t inflight =
      snapshot.gauge("core.stream.inflight_high_water");
  EXPECT_GE(inflight, 1);
  EXPECT_LE(inflight, 2);
  // Every payload byte travels through exactly one window: 64-byte
  // header + 5 shard views, mapped or read depending on the platform.
  const std::uint64_t moved = snapshot.counter("io.mmap.bytes_mapped") +
                              snapshot.counter("io.mmap.bytes_read");
  EXPECT_EQ(moved, 64u + 30u * 8u * 8u);
}

TEST_F(ObsMetrics, StreamLaneRecordsNothingWhenDisabled) {
  const StreamObsFile file;
  const auto problem = pruneHeavyProblem();
  obs::setEnabled(false);
  const core::StreamResult result =
      core::analyzeStream(problem, file.path(), {});
  obs::setEnabled(true);
  EXPECT_EQ(result.instances, 30u);  // the answer itself is unaffected
  const auto snapshot = obs::snapshotMetrics();
  EXPECT_EQ(snapshot.counter("core.stream.shards"), 0u);
  EXPECT_EQ(snapshot.counter("core.stream.instances"), 0u);
  EXPECT_EQ(snapshot.counter("core.stream.instances_screened"), 0u);
  EXPECT_EQ(snapshot.counter("io.mmap.bytes_mapped"), 0u);
  EXPECT_EQ(snapshot.counter("io.mmap.bytes_read"), 0u);
  EXPECT_EQ(snapshot.gauge("core.stream.queue_high_water"), 0);
  EXPECT_EQ(snapshot.gauge("core.stream.inflight_high_water"), 0);
}

// ---------------------------------------------------------------- overhead

// The acceptance pin: with recording off, the instrumentation added to the
// localSearch round must cost < 1% of the round. Measured empirically: the
// per-op cost of the disabled-mode guard pattern (Span + plain counter +
// labeled counter — the labeled series added for per-tenant introspection
// ride the same guard), times a conservative ops-per-round bound (the
// round-level instrumentation is a handful of guarded sites; the per-probe
// loop carries only plain integer stats increments), against the measured
// round time on the BM_LocalSearchRound default instance (20 apps x 5
// machines). The flight recorder is compiled in at its default ring
// capacity during the measurement — it instruments robustd's frame/work
// boundaries, never the search loop, so its cost must not appear here.
TEST(ObsOverhead, DisabledModeCostsUnderOnePercentOfSearchRound) {
  obs::setEnabled(false);
  obs::setFlightCapacity(obs::kDefaultFlightCapacity);
  ASSERT_TRUE(obs::flightEnabled());

  // Per-op cost of the disabled pattern, median of 5 batches.
  constexpr int kOps = 200000;
  std::vector<double> batches;
  for (int b = 0; b < 5; ++b) {
    Stopwatch watch;
    for (int i = 0; i < kOps; ++i) {
      const obs::Span span("overhead.probe");
      if (obs::enabled()) [[unlikely]] {
        static const obs::MetricId kId = obs::counterId("overhead.counter");
        obs::addCounter(kId);
        static const obs::MetricId kLabeled =
            obs::counterId("overhead.labeled", "tenant", "probe");
        obs::addCounter(kLabeled);
      }
    }
    batches.push_back(static_cast<double>(watch.nanos()) / kOps);
  }
  std::sort(batches.begin(), batches.end());
  const double perOpNanos = batches[batches.size() / 2];

  // One localSearch round on the pinned instance, best of 20 (minimum is
  // the standard noise-robust estimator for a lower bound on the work).
  sched::EtcOptions options;
  options.apps = 20;
  options.machines = 5;
  Pcg32 rng(1);
  const auto etc = sched::generateEtc(options, rng);
  const auto start = sched::roundRobinMapping(etc);
  const auto objective = sched::EtcObjective::negatedRobustness(1.2);
  sched::LocalSearchOptions searchOptions;
  searchOptions.maxRounds = 1;
  searchOptions.threads = 1;
  double roundNanos = std::numeric_limits<double>::infinity();
  for (int r = 0; r < 20; ++r) {
    Stopwatch watch;
    (void)sched::localSearch(etc, start, objective, searchOptions);
    roundNanos = std::min(roundNanos, static_cast<double>(watch.nanos()));
  }

  // The instrumentation a single round executes when disabled: the
  // sched.localSearch span, the round-counter guard, publishStats per
  // evaluator, and the handful of guards in the evaluation engine beneath —
  // bounded generously by 8 guarded ops.
  constexpr double kOpsPerRound = 8.0;
  const double overhead = kOpsPerRound * perOpNanos;
  EXPECT_LT(overhead, 0.01 * roundNanos)
      << "disabled-mode instrumentation cost " << overhead << " ns against a "
      << roundNanos << " ns round (per-op " << perOpNanos << " ns)";
}

}  // namespace
}  // namespace robust
