// Tests for the HiPer-D DAG model: construction validation, path
// enumeration semantics (trigger vs update paths), reachability, and the
// Graphviz export.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "robust/hiperd/graph.hpp"
#include "robust/util/error.hpp"

namespace robust::hiperd {
namespace {

NodeRef sensor(std::size_t i) { return NodeRef{NodeKind::Sensor, i}; }
NodeRef app(std::size_t i) { return NodeRef{NodeKind::Application, i}; }
NodeRef actuator(std::size_t i) { return NodeRef{NodeKind::Actuator, i}; }

/// A miniature Fig. 2-style system:
///
///   s0 -> a0 -> a1 -> act0                (trigger path of s0)
///   s1 -> a2 ---^ (update input into a1)  (update path of s1)
///   s1 -> a2 -> a3 -> act1                (trigger path of s1, continuing)
///
/// a1 has two inputs: a0 (trigger) and a2 (update).
SystemGraph miniSystem() {
  SystemGraph g;
  g.addSensor("s0", 1.0);
  g.addSensor("s1", 2.0);
  g.addApplication("a0");
  g.addApplication("a1");
  g.addApplication("a2");
  g.addApplication("a3");
  g.addActuator("act0");
  g.addActuator("act1");
  g.addEdge(sensor(0), app(0));
  g.addEdge(app(0), app(1), /*trigger=*/true);
  g.addEdge(app(1), actuator(0));
  g.addEdge(sensor(1), app(2));
  g.addEdge(app(2), app(1), /*trigger=*/false);  // update input
  g.addEdge(app(2), app(3));
  g.addEdge(app(3), actuator(1));
  g.finalize();
  return g;
}

// ----------------------------------------------------------- structure

TEST(SystemGraph, CountsAndNames) {
  const SystemGraph g = miniSystem();
  EXPECT_EQ(g.sensorCount(), 2u);
  EXPECT_EQ(g.applicationCount(), 4u);
  EXPECT_EQ(g.actuatorCount(), 2u);
  EXPECT_EQ(g.edgeCount(), 7u);
  EXPECT_EQ(g.sensorName(0), "s0");
  EXPECT_EQ(g.applicationName(3), "a3");
  EXPECT_EQ(g.actuatorName(1), "act1");
  EXPECT_DOUBLE_EQ(g.sensorRate(1), 2.0);
}

TEST(SystemGraph, AdjacencyQueries) {
  const SystemGraph g = miniSystem();
  EXPECT_EQ(g.outEdgesOfApp(2).size(), 2u);
  EXPECT_EQ(g.inEdgesOfApp(1).size(), 2u);
  const auto successors = g.appSuccessors(2);
  EXPECT_EQ(successors.size(), 2u);
  EXPECT_TRUE(std::find(successors.begin(), successors.end(), 1u) !=
              successors.end());
  EXPECT_TRUE(std::find(successors.begin(), successors.end(), 3u) !=
              successors.end());
}

TEST(SystemGraph, Reachability) {
  const SystemGraph g = miniSystem();
  EXPECT_TRUE(g.sensorReachesApp(0, 0));
  EXPECT_TRUE(g.sensorReachesApp(0, 1));
  EXPECT_FALSE(g.sensorReachesApp(0, 2));
  EXPECT_FALSE(g.sensorReachesApp(0, 3));
  EXPECT_TRUE(g.sensorReachesApp(1, 1));  // via the update edge
  EXPECT_TRUE(g.sensorReachesApp(1, 2));
  EXPECT_TRUE(g.sensorReachesApp(1, 3));
  EXPECT_FALSE(g.sensorReachesApp(1, 0));
}

// ----------------------------------------------------------- enumeration

TEST(SystemGraph, EnumeratesExpectedPaths) {
  const SystemGraph g = miniSystem();
  const auto& paths = g.paths();
  ASSERT_EQ(paths.size(), 3u);

  // Identify paths by driving sensor + kind.
  int triggerS0 = 0;
  int updateS1 = 0;
  int triggerS1 = 0;
  for (const Path& p : paths) {
    if (p.kind == PathKind::Trigger && p.drivingSensor == 0) {
      ++triggerS0;
      EXPECT_EQ(p.apps, (std::vector<std::size_t>{0, 1}));
      EXPECT_EQ(p.terminal, actuator(0));
      EXPECT_EQ(p.edges.size(), 3u);  // s0->a0, a0->a1, a1->act0
    } else if (p.kind == PathKind::Update) {
      ++updateS1;
      EXPECT_EQ(p.drivingSensor, 1u);
      EXPECT_EQ(p.apps, (std::vector<std::size_t>{2}));
      EXPECT_EQ(p.terminal, app(1));  // ends AT the multi-input app
      EXPECT_EQ(p.edges.size(), 2u);  // s1->a2, a2->a1
    } else {
      ++triggerS1;
      EXPECT_EQ(p.apps, (std::vector<std::size_t>{2, 3}));
      EXPECT_EQ(p.terminal, actuator(1));
    }
  }
  EXPECT_EQ(triggerS0, 1);
  EXPECT_EQ(updateS1, 1);
  EXPECT_EQ(triggerS1, 1);
}

TEST(SystemGraph, BranchingMultipliesPaths) {
  SystemGraph g;
  g.addSensor("s", 1.0);
  g.addApplication("a");
  g.addApplication("b");
  g.addApplication("c");
  g.addActuator("t0");
  g.addActuator("t1");
  g.addEdge(sensor(0), app(0));
  g.addEdge(app(0), app(1));
  g.addEdge(app(0), app(2));
  g.addEdge(app(1), actuator(0));
  g.addEdge(app(2), actuator(1));
  g.finalize();
  EXPECT_EQ(g.paths().size(), 2u);  // a->b->t0 and a->c->t1
}

TEST(SystemGraph, SingleInputTriggerFlagIrrelevant) {
  // A false trigger flag on a single-input application must not end paths.
  SystemGraph g;
  g.addSensor("s", 1.0);
  g.addApplication("a");
  g.addActuator("t");
  g.addEdge(sensor(0), app(0), /*trigger=*/false);
  g.addEdge(app(0), actuator(0));
  g.finalize();
  ASSERT_EQ(g.paths().size(), 1u);
  EXPECT_EQ(g.paths()[0].kind, PathKind::Trigger);
}

// ------------------------------------------------------------ validation

TEST(SystemGraph, RejectsCycle) {
  SystemGraph g;
  g.addSensor("s", 1.0);
  g.addApplication("a");
  g.addApplication("b");
  g.addActuator("t");
  g.addEdge(sensor(0), app(0));
  g.addEdge(app(0), app(1), true);
  g.addEdge(app(1), app(0), false);  // cycle (update edge, still a cycle)
  g.addEdge(app(1), actuator(0));
  EXPECT_THROW(g.finalize(), InvalidArgumentError);
}

TEST(SystemGraph, RejectsInputlessApplication) {
  SystemGraph g;
  g.addSensor("s", 1.0);
  g.addApplication("a");
  g.addApplication("orphan");
  g.addActuator("t");
  g.addEdge(sensor(0), app(0));
  g.addEdge(app(0), actuator(0));
  g.addEdge(app(1), actuator(0));  // orphan has an output but no input
  EXPECT_THROW(g.finalize(), InvalidArgumentError);
}

TEST(SystemGraph, RejectsOutputlessApplication) {
  SystemGraph g;
  g.addSensor("s", 1.0);
  g.addApplication("a");
  g.addActuator("t");
  g.addEdge(sensor(0), app(0));
  EXPECT_THROW(g.finalize(), InvalidArgumentError);
}

TEST(SystemGraph, RejectsMultiInputWithoutExactlyOneTrigger) {
  for (const bool bothTriggers : {true, false}) {
    SystemGraph g;
    g.addSensor("s", 1.0);
    g.addApplication("a");
    g.addApplication("b");
    g.addApplication("merge");
    g.addActuator("t");
    g.addEdge(sensor(0), app(0));
    g.addEdge(sensor(0), app(1));
    g.addEdge(app(0), app(2), bothTriggers);
    g.addEdge(app(1), app(2), bothTriggers);  // 2 triggers or 0 triggers
    g.addEdge(app(2), actuator(0));
    EXPECT_THROW(g.finalize(), InvalidArgumentError);
  }
}

TEST(SystemGraph, RejectsUnreachableApplication) {
  SystemGraph g;
  g.addSensor("s", 1.0);
  g.addApplication("a");
  g.addApplication("b");
  g.addActuator("t");
  g.addEdge(sensor(0), app(0));
  g.addEdge(app(0), actuator(0));
  // b's only input is from b itself? Can't self-loop; give it an input from
  // a but then remove reachability is impossible; instead give b an input
  // edge from an app that makes a cycle-free but sensor-unreachable pair.
  // Simplest violation: b has an input from... nothing reachable. An app
  // with input only from another inputless app is caught by the inputless
  // check first, so unreachability is exercised via a sensorless graph
  // being impossible; the check still guards programmatic edge removal.
  g.addEdge(app(1), actuator(0));
  EXPECT_THROW(g.finalize(), InvalidArgumentError);
}

TEST(SystemGraph, RejectsBadEdgeShapes) {
  SystemGraph g;
  g.addSensor("s", 1.0);
  g.addApplication("a");
  g.addActuator("t");
  EXPECT_THROW(g.addEdge(sensor(0), actuator(0)), InvalidArgumentError);
  EXPECT_THROW(g.addEdge(actuator(0), app(0)), InvalidArgumentError);
  EXPECT_THROW(g.addEdge(app(0), sensor(0)), InvalidArgumentError);
  EXPECT_THROW(g.addEdge(app(0), app(0)), InvalidArgumentError);
  EXPECT_THROW(g.addEdge(app(0), app(5)), InvalidArgumentError);
}

TEST(SystemGraph, RejectsMutationAfterFinalize) {
  SystemGraph g = miniSystem();
  EXPECT_THROW(g.addSensor("late", 1.0), InvalidArgumentError);
  EXPECT_THROW(g.addEdge(sensor(0), app(1)), InvalidArgumentError);
  EXPECT_THROW(g.finalize(), InvalidArgumentError);
}

TEST(SystemGraph, QueriesRequireFinalize) {
  SystemGraph g;
  g.addSensor("s", 1.0);
  g.addApplication("a");
  g.addActuator("t");
  g.addEdge(sensor(0), app(0));
  g.addEdge(app(0), actuator(0));
  EXPECT_THROW((void)g.paths(), StateError);
  EXPECT_THROW((void)g.sensorReachesApp(0, 0), StateError);
}

TEST(SystemGraph, RejectsNonPositiveSensorRate) {
  SystemGraph g;
  EXPECT_THROW(g.addSensor("s", 0.0), InvalidArgumentError);
  EXPECT_THROW(g.addSensor("s", -1.0), InvalidArgumentError);
}

// ------------------------------------------------------------------ dot

TEST(SystemGraph, DotExportContainsAllNodesAndStyles) {
  const SystemGraph g = miniSystem();
  std::ostringstream oss;
  g.writeDot(oss);
  const std::string dot = oss.str();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("shape=diamond"), std::string::npos);   // sensors
  EXPECT_NE(dot.find("shape=circle"), std::string::npos);    // apps
  EXPECT_NE(dot.find("shape=box"), std::string::npos);       // actuators
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);    // update edge
  EXPECT_NE(dot.find("s0 -> a0"), std::string::npos);
  EXPECT_NE(dot.find("a3 -> t1"), std::string::npos);
}

}  // namespace
}  // namespace robust::hiperd
