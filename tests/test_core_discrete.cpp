// Tests for the discrete-lattice robustness bounds (the thesis-[1]
// alternative to the paper's floor rule).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "robust/core/discrete.hpp"
#include "robust/random/distributions.hpp"
#include "robust/util/error.hpp"

namespace robust::core {
namespace {

RobustnessAnalyzer affineDiscrete(num::Vec weights, double level,
                                  num::Vec origin) {
  std::vector<PerformanceFeature> features;
  features.push_back(PerformanceFeature{
      "phi", ImpactFunction::affine(std::move(weights), 0.0),
      ToleranceBounds::atMost(level)});
  PerturbationParameter parameter{"pi", std::move(origin), /*discrete=*/true,
                                  ""};
  return RobustnessAnalyzer(std::move(features), std::move(parameter));
}

TEST(Discrete, OneDimensionalExact) {
  // x <= 10.4 from 0: continuous radius 10.4; nearest violating integer is
  // 11. The floor rule reports 10; the exact lattice bound is 11 (all
  // integer perturbations with |d| < 11 are safe).
  const auto analyzer = affineDiscrete({1.0}, 10.4, {0.0});
  const auto bounds = discreteRadiusBounds(analyzer);
  EXPECT_NEAR(bounds.lower, 10.4, 1e-12);
  EXPECT_TRUE(bounds.exact);
  EXPECT_NEAR(bounds.upper, 11.0, 1e-12);
  EXPECT_EQ(bounds.violatingPoint, (num::Vec{11.0}));
  // The floor rule is strictly more pessimistic here.
  EXPECT_GT(bounds.upper, std::floor(analyzer.analyze().metric) + 0.5);
}

TEST(Discrete, DiagonalBoundaryBeatsFloorRule) {
  // x1 + x2 <= 14.707 from the origin: continuous radius 14.707/sqrt(2)
  // ~ 10.4 (floor 10). Violating integers need x1 + x2 >= 15; the closest
  // such point to the origin is (8, 7) (or (7, 8)) at distance sqrt(113)
  // ~ 10.630 — strictly better than both the floor rule and the continuous
  // radius.
  const double level = 14.707;
  const auto analyzer = affineDiscrete({1.0, 1.0}, level, {0.0, 0.0});
  const auto bounds = discreteRadiusBounds(analyzer);
  EXPECT_NEAR(bounds.lower, level / std::sqrt(2.0), 1e-9);
  EXPECT_TRUE(bounds.exact);
  EXPECT_NEAR(bounds.upper, std::sqrt(113.0), 1e-9);
  EXPECT_NEAR(bounds.violatingPoint[0] + bounds.violatingPoint[1], 15.0,
              1e-12);
  EXPECT_GT(bounds.upper, bounds.lower);
}

TEST(Discrete, BoundsBracketAndCertify) {
  // Multi-feature case: bounds must bracket, the violating point must
  // actually violate, and no enumerated-closer point may violate.
  std::vector<PerformanceFeature> features;
  features.push_back(PerformanceFeature{
      "a", ImpactFunction::affine({2.0, 1.0}, 0.0),
      ToleranceBounds::atMost(13.3)});
  features.push_back(PerformanceFeature{
      "b", ImpactFunction::affine({1.0, 3.0}, 0.0),
      ToleranceBounds::atMost(17.9)});
  PerturbationParameter parameter{"pi", {1.0, 2.0}, true, ""};
  const RobustnessAnalyzer analyzer(features, parameter);
  const auto bounds = discreteRadiusBounds(analyzer);
  ASSERT_TRUE(std::isfinite(bounds.upper));
  EXPECT_LE(bounds.lower, bounds.upper + 1e-12);
  // The certificate violates some bound.
  bool violates = false;
  for (const auto& f : features) {
    violates |= !f.bounds.contains(f.impact.evaluate(bounds.violatingPoint));
  }
  EXPECT_TRUE(violates);
  if (bounds.exact) {
    // Brute-force cross-check over a box.
    double bruteMin = std::numeric_limits<double>::infinity();
    for (int dx = -20; dx <= 20; ++dx) {
      for (int dy = -20; dy <= 20; ++dy) {
        const num::Vec p = {1.0 + dx, 2.0 + dy};
        bool v = false;
        for (const auto& f : features) {
          v |= !f.bounds.contains(f.impact.evaluate(p));
        }
        if (v) {
          bruteMin = std::min(bruteMin, num::distance2(p, parameter.origin));
        }
      }
    }
    EXPECT_NEAR(bounds.upper, bruteMin, 1e-9);
  }
}

TEST(Discrete, NonlinearBoundary) {
  // Circle x1^2 + x2^2 <= 20.5 from the origin: continuous radius
  // sqrt(20.5) ~ 4.528; nearest violating lattice point has |p|^2 >= 21,
  // the minimum integer sum of two squares >= 21 is 25 ((3,4), (0,5), ...)
  // -> distance 5.
  std::vector<PerformanceFeature> features;
  features.push_back(PerformanceFeature{
      "circle",
      ImpactFunction::callable([](std::span<const double> x) {
        return x[0] * x[0] + x[1] * x[1];
      }),
      ToleranceBounds::atMost(20.5)});
  PerturbationParameter parameter{"pi", {0.0, 0.0}, true, ""};
  const RobustnessAnalyzer analyzer(std::move(features),
                                    std::move(parameter));
  const auto bounds = discreteRadiusBounds(analyzer);
  EXPECT_NEAR(bounds.lower, std::sqrt(20.5), 1e-6);
  EXPECT_TRUE(bounds.exact);
  EXPECT_NEAR(bounds.upper, 5.0, 1e-9);
}

TEST(Discrete, LargeRadiusGivesCertificateOnly) {
  // Radius beyond the exhaustive limit: bounds still bracket, exact off.
  const auto analyzer = affineDiscrete({1.0, 1.0}, 100.3, {0.0, 0.0});
  DiscreteOptions options;
  options.exhaustiveLimit = 5.0;
  const auto bounds = discreteRadiusBounds(analyzer, options);
  EXPECT_FALSE(bounds.exact);
  EXPECT_NEAR(bounds.lower, 100.3 / std::sqrt(2.0), 1e-9);
  ASSERT_TRUE(std::isfinite(bounds.upper));
  EXPECT_GE(bounds.upper, bounds.lower - 1e-9);
  // The certificate search near the boundary still finds a violating point
  // within about one lattice step of the continuous boundary.
  EXPECT_LE(bounds.upper, bounds.lower + 2.0);
}

// Property sweep: on random small 2-D affine systems the exact lattice
// bound must equal an independent brute-force enumeration.
class DiscreteBruteForce : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DiscreteBruteForce, ExactBoundMatchesEnumeration) {
  Pcg32 rng(GetParam());
  std::vector<PerformanceFeature> features;
  const num::Vec origin = {
      static_cast<double>(rnd::uniformInt(rng, -3, 3)),
      static_cast<double>(rnd::uniformInt(rng, -3, 3))};
  const std::size_t count = 1 + rng.nextBounded(3);
  for (std::size_t f = 0; f < count; ++f) {
    num::Vec w = {rng.uniform(0.3, 2.0), rng.uniform(0.3, 2.0)};
    const double level = num::dot(w, origin) + rng.uniform(1.0, 9.0);
    features.push_back(PerformanceFeature{
        "phi" + std::to_string(f), ImpactFunction::affine(std::move(w), 0.0),
        ToleranceBounds::atMost(level)});
  }
  PerturbationParameter parameter{"pi", origin, true, ""};
  const RobustnessAnalyzer analyzer(features, parameter);
  const auto bounds = discreteRadiusBounds(analyzer);
  ASSERT_TRUE(bounds.exact) << "seed " << GetParam();

  double bruteMin = std::numeric_limits<double>::infinity();
  for (int dx = -30; dx <= 30; ++dx) {
    for (int dy = -30; dy <= 30; ++dy) {
      if (dx == 0 && dy == 0) {
        continue;
      }
      const num::Vec p = {origin[0] + dx, origin[1] + dy};
      bool violates = false;
      for (const auto& f : features) {
        violates |= !f.bounds.contains(f.impact.evaluate(p));
      }
      if (violates) {
        bruteMin = std::min(bruteMin, num::distance2(p, origin));
      }
    }
  }
  ASSERT_TRUE(std::isfinite(bruteMin));
  EXPECT_NEAR(bounds.upper, bruteMin, 1e-9) << "seed " << GetParam();
  EXPECT_LE(bounds.lower, bounds.upper + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiscreteBruteForce,
                         ::testing::Range<std::uint64_t>(1, 11));

TEST(Discrete, Validation) {
  // Non-discrete parameter rejected.
  std::vector<PerformanceFeature> features;
  features.push_back(PerformanceFeature{
      "phi", ImpactFunction::affine({1.0}, 0.0),
      ToleranceBounds::atMost(5.0)});
  PerturbationParameter continuous{"pi", {0.0}, false, ""};
  const RobustnessAnalyzer a(features, continuous);
  EXPECT_THROW((void)discreteRadiusBounds(a), InvalidArgumentError);

  // Non-integer origin rejected.
  PerturbationParameter fractional{"pi", {0.5}, true, ""};
  const RobustnessAnalyzer b(features, fractional);
  EXPECT_THROW((void)discreteRadiusBounds(b), InvalidArgumentError);

  // Bad options rejected.
  PerturbationParameter ok{"pi", {0.0}, true, ""};
  const RobustnessAnalyzer c(features, ok);
  DiscreteOptions bad;
  bad.neighborhoodRadius = 0;
  EXPECT_THROW((void)discreteRadiusBounds(c, bad), InvalidArgumentError);
}

}  // namespace
}  // namespace robust::core
