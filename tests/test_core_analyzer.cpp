// Tests for the robustness radius / metric computation (Eq. 1 and Eq. 2):
// closed forms under every norm, solver agreement, discreteness, boundary
// diagnostics, and the sampling validator.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "robust/core/analyzer.hpp"
#include "robust/core/validation.hpp"
#include "robust/util/error.hpp"
#include "robust/util/rng.hpp"

namespace robust::core {
namespace {

RobustnessAnalyzer makeAffineAnalyzer(num::Vec weights, double constant,
                                      ToleranceBounds bounds, num::Vec origin,
                                      AnalyzerOptions options = {},
                                      bool discrete = false) {
  std::vector<PerformanceFeature> features;
  features.push_back(PerformanceFeature{
      "phi", ImpactFunction::affine(std::move(weights), constant), bounds});
  PerturbationParameter parameter{"pi", std::move(origin), discrete, ""};
  return RobustnessAnalyzer(std::move(features), std::move(parameter),
                            options);
}

// --------------------------------------------------------- radii, affine

TEST(Analyzer, AffineUpperBoundRadius) {
  // f(x) = x1 + x2 <= 10 from origin (1,1): distance 8/sqrt(2).
  const auto analyzer = makeAffineAnalyzer(
      {1.0, 1.0}, 0.0, ToleranceBounds::atMost(10.0), {1.0, 1.0});
  const auto radius = analyzer.radiusOf(0);
  EXPECT_NEAR(radius.radius, 8.0 / std::sqrt(2.0), 1e-12);
  EXPECT_EQ(radius.method, "analytic-l2");
  EXPECT_NEAR(radius.boundaryPoint[0], 5.0, 1e-12);
  EXPECT_NEAR(radius.boundaryPoint[1], 5.0, 1e-12);
  EXPECT_DOUBLE_EQ(radius.boundaryLevel, 10.0);
}

TEST(Analyzer, TwoSidedBoundTakesNearerBoundary) {
  // 2 <= x1 <= 10 from origin 3: lower boundary at distance 1 is binding.
  const auto analyzer = makeAffineAnalyzer(
      {1.0}, 0.0, ToleranceBounds::between(2.0, 10.0), {3.0});
  const auto radius = analyzer.radiusOf(0);
  EXPECT_NEAR(radius.radius, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(radius.boundaryLevel, 2.0);
}

TEST(Analyzer, ViolatedAtOriginGivesZero) {
  const auto analyzer = makeAffineAnalyzer(
      {1.0}, 0.0, ToleranceBounds::atMost(5.0), {7.0});
  const auto radius = analyzer.radiusOf(0);
  EXPECT_DOUBLE_EQ(radius.radius, 0.0);
  EXPECT_EQ(radius.method, "violated-at-origin");
  const auto report = analyzer.analyze();
  EXPECT_DOUBLE_EQ(report.metric, 0.0);
}

TEST(Analyzer, MetricIsMinimumOfRadii) {
  std::vector<PerformanceFeature> features;
  features.push_back(PerformanceFeature{"near",
                                        ImpactFunction::affine({1.0, 0.0}, 0.0),
                                        ToleranceBounds::atMost(2.0)});
  features.push_back(PerformanceFeature{"far",
                                        ImpactFunction::affine({0.0, 1.0}, 0.0),
                                        ToleranceBounds::atMost(50.0)});
  PerturbationParameter parameter{"pi", {0.0, 0.0}, false, ""};
  const RobustnessAnalyzer analyzer(std::move(features), std::move(parameter));
  const auto report = analyzer.analyze();
  EXPECT_DOUBLE_EQ(report.metric, 2.0);
  EXPECT_EQ(report.bindingFeature, 0u);
  EXPECT_EQ(report.radii.size(), 2u);
  EXPECT_DOUBLE_EQ(report.radii[1].radius, 50.0);
}

TEST(Analyzer, DiscreteParameterFloorsMetric) {
  const auto analyzer = makeAffineAnalyzer(
      {1.0, 1.0}, 0.0, ToleranceBounds::atMost(10.0), {1.0, 1.0}, {},
      /*discrete=*/true);
  const auto report = analyzer.analyze();
  EXPECT_DOUBLE_EQ(report.metric, std::floor(8.0 / std::sqrt(2.0)));
  EXPECT_TRUE(report.floored);
}

TEST(Analyzer, ContinuousParameterNotFloored) {
  const auto analyzer = makeAffineAnalyzer(
      {1.0, 1.0}, 0.0, ToleranceBounds::atMost(10.0), {1.0, 1.0});
  EXPECT_FALSE(analyzer.analyze().floored);
}

TEST(Analyzer, RadiusOfOutOfRangeThrows) {
  const auto analyzer = makeAffineAnalyzer(
      {1.0}, 0.0, ToleranceBounds::atMost(5.0), {0.0});
  EXPECT_THROW((void)analyzer.radiusOf(7), InvalidArgumentError);
}

// --------------------------------------------------------------- norms

TEST(Analyzer, DualNormClosedForms) {
  // f(x) = 3 x1 + 4 x2 <= 20 from the origin. Distances:
  //   l2: 20 / ||(3,4)||_2 = 4
  //   l1: 20 / ||(3,4)||_inf = 5        (move only x2)
  //   linf: 20 / ||(3,4)||_1 = 20/7     (move both)
  for (const auto& [norm, expected] :
       {std::pair{NormKind::L2, 4.0}, std::pair{NormKind::L1, 5.0},
        std::pair{NormKind::LInf, 20.0 / 7.0}}) {
    AnalyzerOptions options;
    options.norm = norm;
    const auto analyzer = makeAffineAnalyzer(
        {3.0, 4.0}, 0.0, ToleranceBounds::atMost(20.0), {0.0, 0.0}, options);
    const auto radius = analyzer.radiusOf(0);
    EXPECT_NEAR(radius.radius, expected, 1e-12) << toString(norm);
    // The boundary point must actually lie on the boundary and achieve the
    // claimed norm distance.
    EXPECT_NEAR(3.0 * radius.boundaryPoint[0] + 4.0 * radius.boundaryPoint[1],
                20.0, 1e-9);
    const num::Vec delta =
        num::sub(radius.boundaryPoint, analyzer.parameter().origin);
    const double measured = norm == NormKind::L2   ? num::norm2(delta)
                            : norm == NormKind::L1 ? num::norm1(delta)
                                                   : num::normInf(delta);
    EXPECT_NEAR(measured, expected, 1e-9) << toString(norm);
  }
}

TEST(Analyzer, WeightedNormClosedForm) {
  // f(x) = x1 + x2 <= 10 from (1, 1), weights (4, 1):
  // d_i = nu * a_i / w_i, nu = gap / sum(a_i^2 / w_i) = 8 / (1/4 + 1) = 6.4;
  // d = (1.6, 6.4); weighted distance = sqrt(4*1.6^2 + 6.4^2) = 7.1554.
  AnalyzerOptions options;
  options.norm = NormKind::Weighted;
  options.normWeights = {4.0, 1.0};
  const auto analyzer = makeAffineAnalyzer(
      {1.0, 1.0}, 0.0, ToleranceBounds::atMost(10.0), {1.0, 1.0}, options);
  const auto radius = analyzer.radiusOf(0);
  EXPECT_NEAR(radius.radius, 8.0 / std::sqrt(1.25), 1e-12);
  EXPECT_NEAR(radius.boundaryPoint[0], 1.0 + 1.6, 1e-12);
  EXPECT_NEAR(radius.boundaryPoint[1], 1.0 + 6.4, 1e-12);
  // The boundary point lies on the boundary.
  EXPECT_NEAR(radius.boundaryPoint[0] + radius.boundaryPoint[1], 10.0,
              1e-12);
  // Unit weights degenerate to the Euclidean closed form.
  AnalyzerOptions unit;
  unit.norm = NormKind::Weighted;
  unit.normWeights = {1.0, 1.0};
  const auto euclid = makeAffineAnalyzer(
      {1.0, 1.0}, 0.0, ToleranceBounds::atMost(10.0), {1.0, 1.0}, unit);
  EXPECT_NEAR(euclid.radiusOf(0).radius, 8.0 / std::sqrt(2.0), 1e-12);
}

TEST(Analyzer, WeightedNormMonteCarloAgrees) {
  AnalyzerOptions exact;
  exact.norm = NormKind::Weighted;
  exact.normWeights = {4.0, 1.0};
  AnalyzerOptions oracle = exact;
  oracle.solver = SolverKind::MonteCarlo;
  oracle.solverOptions.samples = 16384;
  const auto a = makeAffineAnalyzer({1.0, 1.0}, 0.0,
                                    ToleranceBounds::atMost(10.0),
                                    {1.0, 1.0}, exact);
  const auto b = makeAffineAnalyzer({1.0, 1.0}, 0.0,
                                    ToleranceBounds::atMost(10.0),
                                    {1.0, 1.0}, oracle);
  const double exactR = a.analyze().metric;
  const double sampledR = b.analyze().metric;
  EXPECT_GE(sampledR, exactR - 1e-9);
  EXPECT_NEAR(sampledR, exactR, 0.05 * exactR);
}

TEST(Analyzer, WeightedNormValidation) {
  AnalyzerOptions bad;
  bad.norm = NormKind::Weighted;  // missing weights
  EXPECT_THROW((void)makeAffineAnalyzer({1.0, 1.0}, 0.0,
                                        ToleranceBounds::atMost(4.0),
                                        {0.0, 0.0}, bad),
               InvalidArgumentError);
  bad.normWeights = {1.0, -1.0};
  EXPECT_THROW((void)makeAffineAnalyzer({1.0, 1.0}, 0.0,
                                        ToleranceBounds::atMost(4.0),
                                        {0.0, 0.0}, bad),
               InvalidArgumentError);
}

TEST(Validation, WeightedNormGuaranteeHolds) {
  AnalyzerOptions options;
  options.norm = NormKind::Weighted;
  options.normWeights = {4.0, 1.0};
  const auto analyzer = makeAffineAnalyzer(
      {1.0, 1.0}, 0.0, ToleranceBounds::atMost(10.0), {1.0, 1.0}, options);
  const double rho = analyzer.analyze().metric;
  ValidationOptions vopts;
  vopts.norm = NormKind::Weighted;
  vopts.normWeights = {4.0, 1.0};
  const auto result = validateRadius(analyzer, rho, vopts);
  EXPECT_EQ(result.violationsInside, 0);
  EXPECT_GT(result.violationsAtBoundary, 0);
}

TEST(Analyzer, IterativeSolversRejectNonL2Norms) {
  AnalyzerOptions options;
  options.norm = NormKind::L1;
  options.solver = SolverKind::KktNewton;
  const auto analyzer = makeAffineAnalyzer(
      {1.0, 1.0}, 0.0, ToleranceBounds::atMost(4.0), {0.0, 0.0}, options);
  EXPECT_THROW((void)analyzer.radiusOf(0), InvalidArgumentError);
}

// -------------------------------------------------------------- solvers

TEST(Analyzer, SolverAgreementOnAffine) {
  for (const auto solver : {SolverKind::Analytic, SolverKind::KktNewton,
                            SolverKind::RaySearch}) {
    AnalyzerOptions options;
    options.solver = solver;
    const auto analyzer = makeAffineAnalyzer(
        {2.0, 1.0}, 1.0, ToleranceBounds::atMost(11.0), {1.0, 1.0}, options);
    // plane 2x1 + x2 = 10, from (1,1): distance 7/sqrt(5).
    const auto radius = analyzer.radiusOf(0);
    EXPECT_NEAR(radius.radius, 7.0 / std::sqrt(5.0), 1e-6)
        << "solver " << static_cast<int>(solver);
  }
}

TEST(Analyzer, AnalyticRequiresAffine) {
  std::vector<PerformanceFeature> features;
  features.push_back(PerformanceFeature{
      "phi",
      ImpactFunction::callable(
          [](std::span<const double> x) { return x[0] * x[0]; }),
      ToleranceBounds::atMost(4.0)});
  PerturbationParameter parameter{"pi", {0.0}, false, ""};
  AnalyzerOptions options;
  options.solver = SolverKind::Analytic;
  const RobustnessAnalyzer analyzer(std::move(features), std::move(parameter),
                                    options);
  EXPECT_THROW((void)analyzer.radiusOf(0), InvalidArgumentError);
}

TEST(Analyzer, AutoUsesKktForCallable) {
  std::vector<PerformanceFeature> features;
  features.push_back(PerformanceFeature{
      "phi",
      ImpactFunction::callable([](std::span<const double> x) {
        return x[0] * x[0] + x[1] * x[1];
      }),
      ToleranceBounds::atMost(25.0)});
  PerturbationParameter parameter{"pi", {1.0, 1.0}, false, ""};
  const RobustnessAnalyzer analyzer(std::move(features),
                                    std::move(parameter));
  const auto radius = analyzer.radiusOf(0);
  EXPECT_NEAR(radius.radius, 5.0 - std::sqrt(2.0), 1e-6);
}

TEST(Analyzer, UnreachableBoundReportsInfinity) {
  // f(x) = x1^2 >= -1 never fails, and the boundary x1^2 = -1 is empty.
  std::vector<PerformanceFeature> features;
  features.push_back(PerformanceFeature{
      "phi",
      ImpactFunction::callable(
          [](std::span<const double> x) { return x[0] * x[0]; }),
      ToleranceBounds::atLeast(-1.0)});
  PerturbationParameter parameter{"pi", {2.0}, false, ""};
  AnalyzerOptions options;
  options.solver = SolverKind::MonteCarlo;
  options.solverOptions.samples = 64;
  options.solverOptions.searchLimit = 1e4;
  const RobustnessAnalyzer analyzer(std::move(features), std::move(parameter),
                                    options);
  const auto radius = analyzer.radiusOf(0);
  EXPECT_FALSE(radius.boundReachable);
  EXPECT_TRUE(std::isinf(radius.radius));
  const auto report = analyzer.analyze();
  EXPECT_TRUE(std::isinf(report.metric));
}

// ----------------------------------------------------- combined metric

TEST(CombinedRobustness, TakesMinimumAcrossParameters) {
  RobustnessReport a;
  a.metric = 5.0;
  RobustnessReport b;
  b.metric = 2.0;
  const std::vector<RobustnessReport> reports = {a, b};
  EXPECT_DOUBLE_EQ(combinedRobustness(reports), 2.0);
  EXPECT_THROW((void)combinedRobustness({}), InvalidArgumentError);
}

// ------------------------------------------------------------ validator

TEST(Validation, CorrectRadiusHasNoInsideViolations) {
  const auto analyzer = makeAffineAnalyzer(
      {1.0, 1.0}, 0.0, ToleranceBounds::atMost(10.0), {1.0, 1.0});
  const double rho = analyzer.analyze().metric;
  const auto result = validateRadius(analyzer, rho);
  EXPECT_EQ(result.violationsInside, 0);
  EXPECT_GT(result.violationsAtBoundary, 0);  // the radius is tight
}

TEST(Validation, InflatedRadiusIsDetected) {
  const auto analyzer = makeAffineAnalyzer(
      {1.0, 1.0}, 0.0, ToleranceBounds::atMost(10.0), {1.0, 1.0});
  const double rho = analyzer.analyze().metric;
  const auto result = validateRadius(analyzer, 1.5 * rho);
  EXPECT_GT(result.violationsInside, 0);
}

TEST(Validation, OptionsValidated) {
  const auto analyzer = makeAffineAnalyzer(
      {1.0}, 0.0, ToleranceBounds::atMost(5.0), {0.0});
  EXPECT_THROW((void)validateRadius(analyzer, -1.0), InvalidArgumentError);
  ValidationOptions options;
  options.samples = 0;
  EXPECT_THROW((void)validateRadius(analyzer, 1.0, options),
               InvalidArgumentError);
}

// Property sweep: analytic radius vs the Monte-Carlo oracle on random
// multi-feature affine systems, all norms.
struct SweepParam {
  std::uint64_t seed;
  NormKind norm;
};

class AnalyticVsOracle : public ::testing::TestWithParam<SweepParam> {};

TEST_P(AnalyticVsOracle, OracleNeverBeatsAnalytic) {
  const auto [seed, norm] = GetParam();
  Pcg32 rng(seed);
  const std::size_t dim = 2 + rng.nextBounded(4);
  const std::size_t featureCount = 1 + rng.nextBounded(5);

  std::vector<PerformanceFeature> features;
  num::Vec origin(dim);
  for (auto& v : origin) {
    v = rng.uniform(0.0, 5.0);
  }
  for (std::size_t f = 0; f < featureCount; ++f) {
    num::Vec w(dim, 0.0);
    for (auto& v : w) {
      v = rng.uniform(0.0, 2.0);
    }
    w[rng.nextBounded(static_cast<std::uint32_t>(dim))] += 1.0;  // non-zero
    const double slackGap = rng.uniform(1.0, 20.0);
    const double level = num::dot(w, origin) + slackGap;
    features.push_back(PerformanceFeature{
        "phi" + std::to_string(f), ImpactFunction::affine(std::move(w), 0.0),
        ToleranceBounds::atMost(level)});
  }

  AnalyzerOptions analytic;
  analytic.norm = norm;
  AnalyzerOptions oracle;
  oracle.norm = norm;
  oracle.solver = SolverKind::MonteCarlo;
  oracle.solverOptions.samples = 4096;
  oracle.solverOptions.seed = seed + 1;

  PerturbationParameter parameter{"pi", origin, false, ""};
  const RobustnessAnalyzer a(features, parameter, analytic);
  const RobustnessAnalyzer b(features, parameter, oracle);
  const double exact = a.analyze().metric;
  const double sampled = b.analyze().metric;
  EXPECT_GE(sampled, exact - 1e-9);
  EXPECT_LE(sampled, exact * 1.6 + 1e-9);  // loose convergence envelope
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AnalyticVsOracle,
    ::testing::Values(SweepParam{1, NormKind::L2}, SweepParam{2, NormKind::L2},
                      SweepParam{3, NormKind::L2}, SweepParam{4, NormKind::L1},
                      SweepParam{5, NormKind::L1},
                      SweepParam{6, NormKind::LInf},
                      SweepParam{7, NormKind::LInf},
                      SweepParam{8, NormKind::L2}));

}  // namespace
}  // namespace robust::core
