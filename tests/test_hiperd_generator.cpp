// Tests for the Section 4.3 scenario generator: structural invariants,
// published-parameter defaults, calibration, and determinism.
#include <gtest/gtest.h>

#include <cmath>

#include "robust/hiperd/generator.hpp"
#include "robust/util/error.hpp"

namespace robust::hiperd {
namespace {

TEST(Generator, DefaultsMatchThePaper) {
  const ScenarioOptions options;
  EXPECT_EQ(options.applications, 20u);
  EXPECT_EQ(options.machines, 5u);
  EXPECT_EQ(options.actuators, 3u);
  EXPECT_EQ(options.targetPaths, 19u);
  ASSERT_EQ(options.sensorRates.size(), 3u);
  EXPECT_DOUBLE_EQ(options.sensorRates[0], 4e-5);
  EXPECT_DOUBLE_EQ(options.sensorRates[1], 3e-5);
  EXPECT_DOUBLE_EQ(options.sensorRates[2], 8e-6);
  EXPECT_EQ(options.lambdaOrig, (std::vector<double>{962.0, 380.0, 240.0}));
  EXPECT_DOUBLE_EQ(options.coeffMean, 10.0);
  EXPECT_DOUBLE_EQ(options.taskHeterogeneity, 0.7);
  EXPECT_DOUBLE_EQ(options.machineHeterogeneity, 0.7);
}

TEST(Generator, ProducesValidScenarioWithExactPathCount) {
  const ScenarioOptions options;
  const auto generated = generateScenario(options, 2003);
  const auto& scenario = generated.scenario;
  EXPECT_TRUE(generated.exactPathCount);
  EXPECT_EQ(scenario.graph.paths().size(), 19u);
  EXPECT_EQ(scenario.graph.applicationCount(), 20u);
  EXPECT_EQ(scenario.graph.sensorCount(), 3u);
  EXPECT_EQ(scenario.graph.actuatorCount(), 3u);
  EXPECT_EQ(scenario.machines, 5u);
  validateScenario(scenario);  // must not throw
}

TEST(Generator, IsDeterministic) {
  const ScenarioOptions options;
  const auto a = generateScenario(options, 7);
  const auto b = generateScenario(options, 7);
  EXPECT_EQ(a.scenario.graph.edgeCount(), b.scenario.graph.edgeCount());
  EXPECT_EQ(a.scenario.latencyLimits, b.scenario.latencyLimits);
  for (std::size_t i = 0; i < 20; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      EXPECT_EQ(a.scenario.compute[i][j].coeffs(),
                b.scenario.compute[i][j].coeffs());
    }
  }
  EXPECT_DOUBLE_EQ(a.coefficientScale, b.coefficientScale);
}

TEST(Generator, DifferentSeedsDiffer) {
  const ScenarioOptions options;
  const auto a = generateScenario(options, 1);
  const auto b = generateScenario(options, 2);
  bool anyDifferent =
      a.scenario.graph.edgeCount() != b.scenario.graph.edgeCount();
  if (!anyDifferent) {
    for (std::size_t i = 0; i < 20 && !anyDifferent; ++i) {
      anyDifferent = a.scenario.compute[i][0].coeffs() !=
                     b.scenario.compute[i][0].coeffs();
    }
  }
  EXPECT_TRUE(anyDifferent);
}

TEST(Generator, UnreachableSensorsHaveZeroCoefficients) {
  const auto generated = generateScenario(ScenarioOptions{}, 11);
  const auto& scenario = generated.scenario;
  for (std::size_t i = 0; i < scenario.graph.applicationCount(); ++i) {
    for (std::size_t z = 0; z < scenario.graph.sensorCount(); ++z) {
      for (std::size_t j = 0; j < scenario.machines; ++j) {
        const double c = scenario.compute[i][j].coeffs()[z];
        if (scenario.graph.sensorReachesApp(z, i)) {
          EXPECT_GT(c, 0.0) << "app " << i << " sensor " << z;
        } else {
          EXPECT_EQ(c, 0.0) << "app " << i << " sensor " << z;
        }
      }
    }
  }
}

TEST(Generator, CalibrationHitsThroughputTarget) {
  ScenarioOptions options;
  const auto generated = generateScenario(options, 13);
  const auto& scenario = generated.scenario;
  // Under the round-robin reference mapping, the peak computation-time
  // utilization must equal the target (that is what the scale was for).
  std::vector<std::size_t> assignment(scenario.graph.applicationCount());
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    assignment[i] = i % scenario.machines;
  }
  const HiperdSystem system(
      scenario, sched::Mapping(assignment, scenario.machines));
  double peak = 0.0;
  for (const auto& c : system.constraints()) {
    if (c.kind == ConstraintKind::Computation) {
      peak = std::max(peak, c.fraction());
    }
  }
  EXPECT_NEAR(peak, options.targetThroughputUtil, 1e-9);
}

TEST(Generator, CommunicationZeroByDefaultNonZeroOnRequest) {
  const auto plain = generateScenario(ScenarioOptions{}, 17);
  for (const auto& f : plain.scenario.comm) {
    EXPECT_TRUE(f.isZero());
  }
  ScenarioOptions withComm;
  withComm.commCoeffMean = 2.0;
  const auto comm = generateScenario(withComm, 17);
  bool anyNonZero = false;
  for (std::size_t e = 0; e < comm.scenario.comm.size(); ++e) {
    if (!comm.scenario.comm[e].isZero()) {
      anyNonZero = true;
      // Only application-sourced edges carry transfer cost.
      EXPECT_EQ(comm.scenario.graph.edge(e).from.kind,
                NodeKind::Application);
    }
  }
  EXPECT_TRUE(anyNonZero);
}

TEST(Generator, OptionValidation) {
  ScenarioOptions bad;
  bad.sensorRates = {1.0, 2.0};
  EXPECT_THROW((void)generateScenario(bad, 1), InvalidArgumentError);
  bad = {};
  bad.applications = 0;
  EXPECT_THROW((void)generateScenario(bad, 1), InvalidArgumentError);
  bad = {};
  bad.targetThroughputUtil = 1.5;
  EXPECT_THROW((void)generateScenario(bad, 1), InvalidArgumentError);
  bad = {};
  bad.latencySpread = 1.0;
  EXPECT_THROW((void)generateScenario(bad, 1), InvalidArgumentError);
}

TEST(Generator, NonDefaultShapes) {
  ScenarioOptions options;
  options.applications = 10;
  options.machines = 3;
  options.sensorRates = {1e-4, 5e-5};
  options.lambdaOrig = {100.0, 200.0};
  options.actuators = 2;
  options.targetPaths = 8;
  const auto generated = generateScenario(options, 23);
  validateScenario(generated.scenario);
  EXPECT_EQ(generated.scenario.graph.applicationCount(), 10u);
  EXPECT_EQ(generated.scenario.graph.sensorCount(), 2u);
  // Path count should be close to the target even if not exact.
  const auto count = generated.scenario.graph.paths().size();
  EXPECT_GE(count + 4, options.targetPaths);
  EXPECT_LE(count, options.targetPaths + 4);
}

// Property sweep: generated scenarios across seeds always admit analysis —
// finite slack, non-negative floored metric, and the slack/robustness signs
// agree (negative slack at the operating point forces a zero metric).
class GeneratorSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorSweep, ScenariosAreAnalyzable) {
  const auto generated = generateScenario(ScenarioOptions{}, GetParam());
  const auto& scenario = generated.scenario;
  Pcg32 rng(GetParam(), 5);
  for (int trial = 0; trial < 5; ++trial) {
    const auto mapping = sched::randomMapping(
        scenario.graph.applicationCount(), scenario.machines, rng);
    const HiperdSystem system(scenario, mapping);
    const double slack = system.slack();
    const auto report = system.analyze();
    EXPECT_TRUE(std::isfinite(slack));
    EXPECT_GE(report.metric, 0.0);
    EXPECT_EQ(report.metric, std::floor(report.metric));  // floored
    if (slack < 0.0) {
      EXPECT_EQ(report.metric, 0.0);
    } else {
      // All constraints satisfied at lambda_orig: strictly positive slack
      // should produce a positive radius (before flooring).
      EXPECT_GE(report.radii[report.bindingFeature].radius, 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 2003));

}  // namespace
}  // namespace robust::hiperd
