// End-to-end tests of the replicated cloud allocation: memory feasibility
// as hard constraints, the discrete failure radius, and replication-aware
// search — reported through the robust::obs run report.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "robust/obs/metrics.hpp"
#include "robust/obs/report.hpp"
#include "robust/scheduling/cloud_system.hpp"
#include "robust/util/error.hpp"
#include "robust/util/rng.hpp"

namespace {

using namespace robust;
using sched::CloudScenario;
using sched::CloudSystem;
using sched::Mapping;

// 3 tasks x 3 machines, uniform speed, generous memory, R = 2.
CloudSystem uniformCloud(double capacity, std::size_t replication = 2) {
  sched::EtcMatrix etc(3, 3);
  for (std::size_t t = 0; t < 3; ++t) {
    for (std::size_t j = 0; j < 3; ++j) {
      etc(t, j) = 10.0;
    }
  }
  return CloudSystem(CloudScenario{std::move(etc), num::Vec{2.0, 2.0, 2.0},
                                   num::Vec(3, capacity), replication,
                                   /*tau=*/1.5});
}

TEST(Cloud, ValidatesScenarioShape) {
  sched::EtcMatrix etc(2, 2);
  etc(0, 0) = etc(0, 1) = etc(1, 0) = etc(1, 1) = 1.0;
  EXPECT_THROW(CloudSystem(CloudScenario{etc, num::Vec{1.0}, num::Vec{4.0, 4.0},
                                         1, 1.2}),
               InvalidArgumentError);
  EXPECT_THROW(CloudSystem(CloudScenario{etc, num::Vec{1.0, 1.0},
                                         num::Vec{4.0, 4.0}, 0, 1.2}),
               InvalidArgumentError);
  EXPECT_THROW(CloudSystem(CloudScenario{etc, num::Vec{1.0, 1.0},
                                         num::Vec{4.0, 4.0}, 1, 0.9}),
               InvalidArgumentError);
}

TEST(Cloud, GreedyPlacesReplicasOnDistinctMachines) {
  const CloudSystem cloud = uniformCloud(100.0);
  const Mapping greedy = cloud.greedyMapping();
  ASSERT_EQ(greedy.apps(), cloud.slots());
  for (std::size_t t = 0; t < cloud.tasks(); ++t) {
    EXPECT_NE(greedy.machineOf(2 * t), greedy.machineOf(2 * t + 1))
        << "replicas of task " << t << " share a machine";
  }
  EXPECT_EQ(cloud.failureRadius(greedy), 1u);
  EXPECT_TRUE(cloud.isFeasible(greedy));
}

TEST(Cloud, MemoryInfeasibleGreedyIsRejected) {
  // Capacity 3 per machine but two replicas of demand 2 must share some
  // machine (6 slots on 3 machines): greedy overcommits and analyze()
  // reports the origin infeasible instead of a radius.
  const CloudSystem cloud = uniformCloud(3.0);
  const Mapping greedy = cloud.greedyMapping();
  EXPECT_FALSE(cloud.isFeasible(greedy));
  EXPECT_GT(cloud.memoryViolation(greedy), 0.0);

  const core::RobustnessReport report = cloud.analyze(greedy);
  EXPECT_TRUE(report.infeasibleOrigin);
  EXPECT_EQ(report.metric, 0.0);
}

TEST(Cloud, AnalyzeYieldsPositiveConstrainedMetricWhenFeasible) {
  const CloudSystem cloud = uniformCloud(100.0);
  const core::RobustnessReport report = cloud.analyze(cloud.greedyMapping());
  EXPECT_FALSE(report.infeasibleOrigin);
  EXPECT_TRUE(std::isfinite(report.metric));
  EXPECT_GT(report.metric, 0.0);
}

TEST(Cloud, TighterMemoryCannotShrinkTheConstrainedMetric) {
  // Same placement, tighter (but still feasible) memory: the feasibility
  // region shrinks, so perturbations that used to count as violations fall
  // outside it and the nearest feasible violation can only move farther —
  // the constrained metric is monotone non-decreasing in tightening.
  const CloudSystem roomy = uniformCloud(100.0);
  const Mapping mapping = roomy.greedyMapping();
  const double roomyMetric = roomy.analyze(mapping).metric;
  const CloudSystem tight = uniformCloud(4.5);
  ASSERT_TRUE(tight.isFeasible(mapping));
  const double tightMetric = tight.analyze(mapping).metric;
  EXPECT_GE(tightMetric, roomyMetric - 1e-9);
}

TEST(Cloud, FailureModelMirrorsSlotAssignment) {
  const CloudSystem cloud = uniformCloud(100.0);
  const Mapping all0(std::vector<std::size_t>(cloud.slots(), 0), 3);
  EXPECT_EQ(cloud.failureRadius(all0), 0u);
  const core::FailureModel model = cloud.failureModel(all0);
  EXPECT_EQ(model.machines, 3u);
  ASSERT_EQ(model.replicaHosts.size(), 3u);
  EXPECT_EQ(model.replicaHosts[0], (std::vector<std::size_t>{0, 0}));
}

TEST(Cloud, LocalSearchStrictlyRaisesTheFailureRadius) {
  const CloudSystem cloud = uniformCloud(100.0);
  // Worst start: every replica on machine 0 — radius 0, fully co-located.
  const Mapping start(std::vector<std::size_t>(cloud.slots(), 0), 3);
  ASSERT_EQ(cloud.failureRadius(start), 0u);
  const Mapping improved = cloud.improve(start);
  EXPECT_TRUE(cloud.isFeasible(improved));
  EXPECT_GT(cloud.failureRadius(improved), cloud.failureRadius(start));
}

TEST(Cloud, SearchObjectivePenalizesInfeasibilityAboveAnyFeasibleScore) {
  const CloudSystem tight = uniformCloud(4.0);
  const auto objective = tight.searchObjective();
  const Mapping all0(std::vector<std::size_t>(tight.slots(), 0), 3);
  const Mapping spread = tight.greedyMapping();
  ASSERT_FALSE(tight.isFeasible(all0));
  ASSERT_TRUE(tight.isFeasible(spread));
  EXPECT_GT(objective(all0), objective(spread));
  EXPECT_GT(objective(all0), 1e8);
}

TEST(Cloud, EndToEndObsRunReportCarriesTheFailureRadius) {
  obs::setEnabled(true);
  obs::resetMetrics();

  const CloudSystem cloud = uniformCloud(5.0);
  const Mapping start(std::vector<std::size_t>(cloud.slots(), 0), 3);
  const Mapping improved = cloud.improve(start);
  ASSERT_TRUE(cloud.isFeasible(improved));
  const std::size_t radius = cloud.failureRadius(improved);
  EXPECT_GE(radius, 1u);

  const obs::MetricsSnapshot snap = obs::snapshotMetrics();
  EXPECT_EQ(snap.gauge("core.failure.radius"),
            static_cast<std::int64_t>(radius));

  obs::RunReport run;
  run.tool = "test_sched_cloud";
  run.benchmarks.push_back(obs::BenchResult{
      "failure_radius", static_cast<double>(radius), "machines"});
  std::ostringstream out;
  obs::writeRunReport(out, run);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"core.failure.radius\""), std::string::npos);
  EXPECT_NE(json.find("\"failure_radius\""), std::string::npos);
  obs::setEnabled(false);
}

TEST(Cloud, SpecShapesMatchTheScenario) {
  const CloudSystem cloud = uniformCloud(100.0);
  const Mapping greedy = cloud.greedyMapping();
  const core::ProblemSpec spec = cloud.toSpec(greedy);
  ASSERT_EQ(spec.subspaces.size(), 2u);
  EXPECT_EQ(spec.subspaces[0].origin.size(), cloud.tasks());
  EXPECT_EQ(spec.subspaces[1].origin.size(), cloud.machines());
  EXPECT_EQ(spec.features.size(), spec.constraints.size());
  for (const core::LinearConstraint& c : spec.constraints) {
    EXPECT_EQ(c.coeffs.size(), cloud.tasks() + cloud.machines());
  }
}

}  // namespace
