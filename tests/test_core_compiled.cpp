// Compiled-vs-legacy equivalence suite for the two-phase analysis engine.
//
// The reference implementation below is a frozen verbatim copy of the
// pre-compiled RobustnessAnalyzer arithmetic (dual norms, hyperplane
// projection, per-level radius, per-feature radius, metric walk). Pinning
// it in the test keeps the bit-identity guarantee meaningful forever: the
// production RobustnessAnalyzer is now an adapter over CompiledProblem, so
// comparing the two production paths alone would be vacuous.
//
// Every comparison is BIT-identical (no tolerances): the compiled engine
// must replicate the legacy floating-point operation order exactly.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "robust/core/analyzer.hpp"
#include "robust/core/compiled.hpp"
#include "robust/core/fepia.hpp"
#include "robust/numeric/hyperplane.hpp"
#include "robust/util/error.hpp"
#include "robust/util/rng.hpp"

namespace robust::core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

bool bitEq(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

// ---------------------------------------------------------------------------
// Reference implementation (frozen copy of the pre-compiled analyzer).
// ---------------------------------------------------------------------------
namespace ref {

double dualNorm(std::span<const double> a, NormKind norm,
                std::span<const double> weights) {
  switch (norm) {
    case NormKind::L1:
      return num::normInf(a);
    case NormKind::L2:
      return num::norm2(a);
    case NormKind::LInf:
      return num::norm1(a);
    case NormKind::Weighted: {
      double s = 0.0;
      for (std::size_t i = 0; i < a.size(); ++i) {
        s += a[i] * a[i] / weights[i];
      }
      return std::sqrt(s);
    }
  }
  return 0.0;
}

num::Vec nearestOnHyperplane(std::span<const double> a, double c,
                             std::span<const double> x0, NormKind norm,
                             std::span<const double> weights) {
  const double gap = c - num::dot(a, x0);
  num::Vec out(x0.begin(), x0.end());
  switch (norm) {
    case NormKind::L2: {
      const double n2 = num::dot(a, a);
      num::axpy(gap / n2, a, out);
      break;
    }
    case NormKind::L1: {
      std::size_t k = 0;
      for (std::size_t i = 1; i < a.size(); ++i) {
        if (std::fabs(a[i]) > std::fabs(a[k])) {
          k = i;
        }
      }
      out[k] += gap / a[k];
      break;
    }
    case NormKind::LInf: {
      const double t = gap / num::norm1(a);
      for (std::size_t i = 0; i < a.size(); ++i) {
        out[i] += (a[i] > 0.0 ? 1.0 : (a[i] < 0.0 ? -1.0 : 0.0)) * t;
      }
      break;
    }
    case NormKind::Weighted: {
      double denom = 0.0;
      for (std::size_t i = 0; i < a.size(); ++i) {
        denom += a[i] * a[i] / weights[i];
      }
      const double nu = gap / denom;
      for (std::size_t i = 0; i < a.size(); ++i) {
        out[i] += nu * a[i] / weights[i];
      }
      break;
    }
  }
  return out;
}

double vectorNorm(std::span<const double> v, NormKind norm,
                  std::span<const double> weights) {
  switch (norm) {
    case NormKind::L1:
      return num::norm1(v);
    case NormKind::L2:
      return num::norm2(v);
    case NormKind::LInf:
      return num::normInf(v);
    case NormKind::Weighted:
      return num::weightedNorm2(v, weights);
  }
  return 0.0;
}

RadiusReport radiusAgainstLevel(const PerformanceFeature& f, double level,
                                const PerturbationParameter& parameter,
                                const AnalyzerOptions& options) {
  RadiusReport report;
  report.feature = f.name;
  report.boundaryLevel = level;

  SolverKind solver = options.solver;
  if (solver == SolverKind::Auto) {
    solver = f.impact.isAffine() ? SolverKind::Analytic : SolverKind::KktNewton;
  }

  if (solver == SolverKind::Analytic) {
    ROBUST_REQUIRE(f.impact.isAffine(),
                   "analytic radius requires an affine impact function");
    const auto& w = f.impact.weights();
    const double c = level - f.impact.constant();
    const double denom = dualNorm(w, options.norm, options.normWeights);
    ROBUST_REQUIRE(denom > 0.0,
                   "analytic radius: impact does not depend on the parameter");
    report.radius = std::fabs(num::dot(w, parameter.origin) - c) / denom;
    report.boundaryPoint = nearestOnHyperplane(w, c, parameter.origin,
                                               options.norm,
                                               options.normWeights);
    report.method = "analytic-" + toString(options.norm);
    return report;
  }

  if (solver == SolverKind::MonteCarlo) {
    num::NearestPointProblem problem;
    problem.g = f.impact.field();
    problem.gradient = f.impact.gradientField();
    problem.level = level;
    problem.origin = parameter.origin;
    try {
      num::ScalarField measure;
      if (options.norm != NormKind::L2) {
        const NormKind norm = options.norm;
        const num::Vec weights = options.normWeights;
        measure = [norm, weights](std::span<const double> d) {
          return vectorNorm(d, norm, weights);
        };
      }
      auto mc = num::monteCarloRadius(problem, options.solverOptions, measure);
      report.radius = mc.distance;
      report.boundaryPoint = std::move(mc.point);
      report.method = mc.method;
    } catch (const ConvergenceError&) {
      report.radius = kInf;
      report.boundReachable = false;
      report.method = "monte-carlo";
    }
    return report;
  }

  ROBUST_REQUIRE(options.norm == NormKind::L2,
                 "iterative radius solvers support the l2 norm only");
  num::NearestPointProblem problem;
  problem.g = f.impact.field();
  problem.gradient = f.impact.gradientField();
  problem.level = level;
  problem.origin = parameter.origin;
  try {
    num::NearestPointResult solved;
    switch (solver) {
      case SolverKind::KktNewton:
        solved = num::solveNearestPoint(problem, options.solverOptions);
        break;
      case SolverKind::RaySearch:
        solved = num::raySearch(problem, options.solverOptions);
        break;
      default:
        ROBUST_REQUIRE(false, "unexpected solver kind");
    }
    report.radius = solved.distance;
    report.boundaryPoint = std::move(solved.point);
    report.method = std::move(solved.method);
  } catch (const ConvergenceError&) {
    report.radius = kInf;
    report.boundReachable = false;
    report.method = "unreachable";
  }
  return report;
}

RadiusReport radiusOf(const PerformanceFeature& f,
                      const PerturbationParameter& parameter,
                      const AnalyzerOptions& options) {
  const double atOrigin = f.impact.evaluate(parameter.origin);
  if (!f.bounds.contains(atOrigin)) {
    RadiusReport report;
    report.feature = f.name;
    report.radius = 0.0;
    report.boundaryPoint = parameter.origin;
    report.boundaryLevel = atOrigin;
    report.method = "violated-at-origin";
    return report;
  }

  RadiusReport best;
  best.feature = f.name;
  best.radius = kInf;
  best.boundReachable = false;
  for (const auto& level : {f.bounds.min, f.bounds.max}) {
    if (!level) {
      continue;
    }
    RadiusReport candidate = radiusAgainstLevel(f, *level, parameter, options);
    if (candidate.radius < best.radius) {
      best = std::move(candidate);
    }
  }
  return best;
}

RobustnessReport analyze(const std::vector<PerformanceFeature>& features,
                         const PerturbationParameter& parameter,
                         const AnalyzerOptions& options) {
  RobustnessReport report;
  report.radii.reserve(features.size());
  report.metric = kInf;
  for (std::size_t i = 0; i < features.size(); ++i) {
    report.radii.push_back(radiusOf(features[i], parameter, options));
    if (report.radii.back().radius < report.metric) {
      report.metric = report.radii.back().radius;
      report.bindingFeature = i;
    }
  }
  if (parameter.discrete && std::isfinite(report.metric)) {
    report.metric = std::floor(report.metric);
    report.floored = true;
  }
  return report;
}

}  // namespace ref

void expectSameRadius(const RadiusReport& got, const RadiusReport& want) {
  EXPECT_EQ(got.feature, want.feature);
  EXPECT_TRUE(bitEq(got.radius, want.radius))
      << got.feature << ": " << got.radius << " vs " << want.radius;
  EXPECT_TRUE(bitEq(got.boundaryLevel, want.boundaryLevel));
  EXPECT_EQ(got.boundReachable, want.boundReachable);
  EXPECT_EQ(got.method, want.method);
  ASSERT_EQ(got.boundaryPoint.size(), want.boundaryPoint.size());
  for (std::size_t i = 0; i < got.boundaryPoint.size(); ++i) {
    EXPECT_TRUE(bitEq(got.boundaryPoint[i], want.boundaryPoint[i]))
        << got.feature << " boundaryPoint[" << i << "]";
  }
}

void expectSameReport(const RobustnessReport& got,
                      const RobustnessReport& want) {
  EXPECT_TRUE(bitEq(got.metric, want.metric))
      << got.metric << " vs " << want.metric;
  EXPECT_EQ(got.bindingFeature, want.bindingFeature);
  EXPECT_EQ(got.floored, want.floored);
  ASSERT_EQ(got.radii.size(), want.radii.size());
  for (std::size_t i = 0; i < got.radii.size(); ++i) {
    expectSameRadius(got.radii[i], want.radii[i]);
  }
}

// Random affine spec covering every structural variation: mixed bound kinds
// (atMost / atLeast / between), occasional negative weights, occasional
// at-origin violations, discrete parameters, every norm.
ProblemSpec makeAffineSpec(std::uint64_t seed, NormKind norm) {
  Pcg32 rng(seed);
  const std::size_t dim = 2 + rng.nextBounded(5);
  const std::size_t count = 1 + rng.nextBounded(7);

  ProblemSpec spec;
  spec.parameter.name = "pi";
  spec.parameter.discrete = rng.nextBounded(2) == 0;
  spec.parameter.origin.resize(dim);
  for (auto& v : spec.parameter.origin) {
    v = std::floor(rng.uniform(0.0, 20.0));  // lattice for the discrete case
  }
  spec.options.norm = norm;
  if (norm == NormKind::Weighted) {
    spec.options.normWeights.resize(dim);
    for (auto& w : spec.options.normWeights) {
      w = rng.uniform(0.1, 4.0);
    }
  }

  for (std::size_t f = 0; f < count; ++f) {
    num::Vec w(dim);
    for (auto& v : w) {
      v = rng.uniform(-2.0, 3.0);
      if (v == 0.0) {
        v = 0.5;
      }
    }
    const double atOrigin = num::dot(w, spec.parameter.origin);
    ToleranceBounds bounds;
    switch (rng.nextBounded(4)) {
      case 0:
        bounds = ToleranceBounds::atMost(atOrigin + rng.uniform(0.5, 25.0));
        break;
      case 1:
        bounds = ToleranceBounds::atLeast(atOrigin - rng.uniform(0.5, 25.0));
        break;
      case 2:
        bounds = ToleranceBounds::between(atOrigin - rng.uniform(0.5, 20.0),
                                          atOrigin + rng.uniform(0.5, 20.0));
        break;
      default:
        // Violated at the origin: the bound sits strictly below the value.
        bounds = ToleranceBounds::atMost(atOrigin - rng.uniform(0.5, 5.0));
        break;
    }
    spec.features.push_back(PerformanceFeature{
        "phi" + std::to_string(f),
        ImpactFunction::affine(std::move(w), rng.uniform(-1.0, 1.0)), bounds});
  }
  return spec;
}

class CompiledEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CompiledEquivalence, AffineBitIdenticalAcrossAllNorms) {
  for (const NormKind norm :
       {NormKind::L1, NormKind::L2, NormKind::LInf, NormKind::Weighted}) {
    const ProblemSpec spec = makeAffineSpec(GetParam(), norm);
    const RobustnessReport want =
        ref::analyze(spec.features, spec.parameter, spec.options);

    const CompiledProblem compiled = CompiledProblem::compile(spec);
    expectSameReport(compiled.evaluate(), want);

    // Workspace reuse must not change results: run twice through one
    // workspace (the second pass reuses every buffer).
    EvalWorkspace workspace;
    compiled.evaluate(AnalysisInstance{}, workspace);
    expectSameReport(compiled.evaluate(AnalysisInstance{}, workspace), want);

    // The legacy adapter shares the same engine.
    const RobustnessAnalyzer analyzer(spec.features, spec.parameter,
                                      spec.options);
    expectSameReport(analyzer.analyze(), want);
    for (std::size_t i = 0; i < spec.features.size(); ++i) {
      expectSameRadius(compiled.radiusOf(i),
                       ref::radiusOf(spec.features[i], spec.parameter,
                                     spec.options));
    }
  }
}

TEST_P(CompiledEquivalence, CallableFeaturesBitIdentical) {
  // Quadratic impacts go through the KKT-Newton lane; mix in one affine
  // feature so both lanes interleave in the same report.
  Pcg32 rng(GetParam());
  const std::size_t dim = 2 + rng.nextBounded(3);
  ProblemSpec spec;
  spec.parameter.name = "pi";
  spec.parameter.origin.resize(dim);
  for (auto& v : spec.parameter.origin) {
    v = rng.uniform(1.0, 5.0);
  }

  num::Vec center(dim);
  for (auto& v : center) {
    v = rng.uniform(-1.0, 1.0);
  }
  const auto quadratic = [center](std::span<const double> x) {
    double s = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double d = x[i] - center[i];
      s += d * d;
    }
    return s;
  };
  const auto gradient = [center](std::span<const double> x) {
    num::Vec g(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
      g[i] = 2.0 * (x[i] - center[i]);
    }
    return g;
  };
  const double atOrigin = quadratic(spec.parameter.origin);
  spec.features.push_back(PerformanceFeature{
      "quad", ImpactFunction::callable(quadratic, gradient),
      ToleranceBounds::atMost(atOrigin + rng.uniform(2.0, 20.0))});

  num::Vec w(dim, 1.0);
  const double linAtOrigin = num::dot(w, spec.parameter.origin);
  spec.features.push_back(PerformanceFeature{
      "lin", ImpactFunction::affine(std::move(w), 0.0),
      ToleranceBounds::atMost(linAtOrigin + rng.uniform(1.0, 10.0))});

  const RobustnessReport want =
      ref::analyze(spec.features, spec.parameter, spec.options);
  const CompiledProblem compiled = CompiledProblem::compile(spec);
  expectSameReport(compiled.evaluate(), want);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompiledEquivalence,
                         ::testing::Range<std::uint64_t>(1, 33));

TEST(CompiledProblemTest, ViolatedAtOriginYieldsZeroRadius) {
  ProblemSpec spec;
  spec.parameter = PerturbationParameter{"pi", num::Vec{2.0, 3.0}, false, ""};
  spec.features.push_back(PerformanceFeature{
      "violated", ImpactFunction::affine(num::Vec{1.0, 1.0}, 0.0),
      ToleranceBounds::atMost(4.0)});  // value 5 > 4 at the origin
  const CompiledProblem compiled = CompiledProblem::compile(spec);
  const RobustnessReport report = compiled.evaluate();
  EXPECT_EQ(report.radii[0].method, "violated-at-origin");
  EXPECT_TRUE(bitEq(report.radii[0].radius, 0.0));
  EXPECT_TRUE(bitEq(report.radii[0].boundaryLevel, 5.0));
  EXPECT_EQ(report.radii[0].boundaryPoint, spec.parameter.origin);
  expectSameReport(report,
                   ref::analyze(spec.features, spec.parameter, spec.options));
}

TEST(CompiledProblemTest, UnreachableBoundReportsInfiniteRadius) {
  // A bounded callable (value < 1 everywhere) can never reach level 2; the
  // KKT solver exhausts its iterations and the report must mirror the
  // legacy unreachable handling.
  ProblemSpec spec;
  spec.parameter = PerturbationParameter{"pi", num::Vec{0.0, 0.0}, false, ""};
  const auto bounded = [](std::span<const double> x) {
    double s = 0.0;
    for (double xi : x) {
      s += xi * xi;
    }
    return s / (1.0 + s);
  };
  spec.features.push_back(PerformanceFeature{
      "bounded", ImpactFunction::callable(bounded),
      ToleranceBounds::atMost(2.0)});
  spec.options.solverOptions.maxIterations = 8;

  const RobustnessReport want =
      ref::analyze(spec.features, spec.parameter, spec.options);
  const CompiledProblem compiled = CompiledProblem::compile(spec);
  const RobustnessReport got = compiled.evaluate();
  expectSameReport(got, want);
  EXPECT_FALSE(got.radii[0].boundReachable);
  EXPECT_TRUE(std::isinf(got.radii[0].radius));
}

TEST(CompiledProblemTest, DiscreteParameterFloorsTheMetric) {
  ProblemSpec spec;
  spec.parameter = PerturbationParameter{"pi", num::Vec{4.0, 4.0}, true, ""};
  spec.features.push_back(PerformanceFeature{
      "phi", ImpactFunction::affine(num::Vec{1.0, 1.0}, 0.0),
      ToleranceBounds::atMost(8.0 + 3.7)});
  const CompiledProblem compiled = CompiledProblem::compile(spec);
  const RobustnessReport report = compiled.evaluate();
  EXPECT_TRUE(report.floored);
  EXPECT_TRUE(bitEq(report.metric, std::floor(report.radii[0].radius)));
  expectSameReport(report,
                   ref::analyze(spec.features, spec.parameter, spec.options));
}

TEST(CompiledProblemTest, InstanceConstantsAndScalesMatchMaterializedSpec) {
  // Overriding per-feature constants and scales through an AnalysisInstance
  // must equal compiling a spec with those values baked in.
  Pcg32 rng(7);
  const std::size_t dim = 4;
  ProblemSpec base;
  base.parameter.name = "pi";
  base.parameter.origin = {3.0, 1.0, 4.0, 1.5};
  for (std::size_t f = 0; f < 3; ++f) {
    num::Vec w(dim);
    for (auto& v : w) {
      v = rng.uniform(0.2, 2.0);
    }
    // Generous bound: it must also contain the scaled/shifted values at the
    // overridden origin below, so no feature is violated at the origin.
    const ToleranceBounds bounds = ToleranceBounds::atMost(
        3.0 * num::dot(w, base.parameter.origin) + 40.0);
    base.features.push_back(PerformanceFeature{
        "phi" + std::to_string(f), ImpactFunction::affine(std::move(w), 0.5),
        bounds});
  }
  const std::vector<double> constants = {1.25, -0.5, 0.0};
  const std::vector<double> scales = {1.0, 2.5, 0.75};
  num::Vec origin = {2.0, 2.0, 2.0, 2.0};

  ProblemSpec materialized = base;
  for (std::size_t f = 0; f < materialized.features.size(); ++f) {
    num::Vec w(dim);
    const num::Vec& bw = base.features[f].impact.weights();
    for (std::size_t k = 0; k < dim; ++k) {
      w[k] = bw[k] * scales[f];
    }
    materialized.features[f] = PerformanceFeature{
        base.features[f].name,
        ImpactFunction::affine(std::move(w), constants[f]),
        base.features[f].bounds};
  }
  materialized.parameter.origin = origin;

  const CompiledProblem compiled = CompiledProblem::compile(base);
  AnalysisInstance instance;
  instance.origin = origin;
  instance.constants = constants;
  instance.scales = scales;
  const RobustnessReport got = compiled.evaluate(instance);
  const RobustnessReport want =
      ref::analyze(materialized.features, materialized.parameter,
                   materialized.options);
  expectSameReport(got, want);
}

TEST(CompiledProblemTest, WorkspaceReuseAcrossManySpecs) {
  // One workspace survives 50 different problems (different dimensions and
  // feature counts) without contaminating results.
  EvalWorkspace workspace;
  for (std::uint64_t seed = 100; seed < 150; ++seed) {
    const ProblemSpec spec = makeAffineSpec(seed, NormKind::L2);
    const CompiledProblem compiled = CompiledProblem::compile(spec);
    const RobustnessReport& got =
        compiled.evaluate(AnalysisInstance{}, workspace);
    expectSameReport(got,
                     ref::analyze(spec.features, spec.parameter, spec.options));
  }
}

TEST(CompiledProblemTest, AnalyzeBatchDeterministicAcrossThreadCounts) {
  const ProblemSpec spec = makeAffineSpec(42, NormKind::L2);
  const CompiledProblem compiled = CompiledProblem::compile(spec);

  Pcg32 rng(9);
  const std::size_t dim = compiled.dimension();
  std::vector<num::Vec> origins(37);
  for (auto& o : origins) {
    o.resize(dim);
    for (auto& v : o) {
      v = rng.uniform(0.0, 20.0);
    }
  }
  std::vector<AnalysisInstance> instances(origins.size());
  for (std::size_t i = 0; i < origins.size(); ++i) {
    instances[i].origin = origins[i];
  }

  // Serial reference: one workspace, in order.
  std::vector<RobustnessReport> serial(instances.size());
  EvalWorkspace workspace;
  for (std::size_t i = 0; i < instances.size(); ++i) {
    serial[i] = compiled.evaluate(instances[i], workspace);
  }

  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{5}, std::size_t{0}}) {
    const auto batch = compiled.analyzeBatch(instances, threads);
    ASSERT_EQ(batch.size(), serial.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      expectSameReport(batch[i], serial[i]);
    }
  }
}

TEST(CompiledProblemTest, RowDualNormsMatchRecomputation) {
  const ProblemSpec spec = makeAffineSpec(11, NormKind::L2);
  const CompiledProblem compiled = CompiledProblem::compile(spec);
  for (std::size_t i = 0; i < compiled.featureCount(); ++i) {
    const num::Vec& w = compiled.features()[i].impact.weights();
    EXPECT_TRUE(bitEq(compiled.rowDualNorm(i, NormKind::L1), num::normInf(w)));
    EXPECT_TRUE(bitEq(compiled.rowDualNorm(i, NormKind::L2), num::norm2(w)));
    EXPECT_TRUE(bitEq(compiled.rowDualNorm(i, NormKind::LInf), num::norm1(w)));
  }
}

TEST(CompiledProblemTest, CallableRowDualNormIsNaN) {
  ProblemSpec spec;
  spec.parameter = PerturbationParameter{"pi", num::Vec{1.0}, false, ""};
  spec.features.push_back(PerformanceFeature{
      "c",
      ImpactFunction::callable(
          [](std::span<const double> x) { return x[0] * x[0]; }),
      ToleranceBounds::atMost(10.0)});
  const CompiledProblem compiled = CompiledProblem::compile(spec);
  EXPECT_TRUE(std::isnan(compiled.rowDualNorm(0, NormKind::L2)));
}

TEST(CompiledProblemTest, ValidationMatchesLegacyAnalyzer) {
  // Same InvalidArgumentError triggers as the legacy constructor.
  EXPECT_THROW(CompiledProblem::compile(ProblemSpec{}), InvalidArgumentError);

  ProblemSpec noBounds;
  noBounds.parameter = PerturbationParameter{"pi", num::Vec{1.0}, false, ""};
  noBounds.features.push_back(PerformanceFeature{
      "f", ImpactFunction::affine(num::Vec{1.0}, 0.0), ToleranceBounds{}});
  EXPECT_THROW(CompiledProblem::compile(noBounds), InvalidArgumentError);

  ProblemSpec badDim;
  badDim.parameter = PerturbationParameter{"pi", num::Vec{1.0, 2.0}, false, ""};
  badDim.features.push_back(PerformanceFeature{
      "f", ImpactFunction::affine(num::Vec{1.0}, 0.0),
      ToleranceBounds::atMost(5.0)});
  EXPECT_THROW(CompiledProblem::compile(badDim), InvalidArgumentError);

  ProblemSpec badWeights;
  badWeights.parameter = PerturbationParameter{"pi", num::Vec{1.0}, false, ""};
  badWeights.features.push_back(PerformanceFeature{
      "f", ImpactFunction::affine(num::Vec{1.0}, 0.0),
      ToleranceBounds::atMost(5.0)});
  badWeights.options.norm = NormKind::Weighted;  // no weights supplied
  EXPECT_THROW(CompiledProblem::compile(badWeights), InvalidArgumentError);
}

TEST(CompiledProblemTest, InstanceValidation) {
  const ProblemSpec spec = makeAffineSpec(3, NormKind::L2);
  const CompiledProblem compiled = CompiledProblem::compile(spec);
  EvalWorkspace workspace;

  AnalysisInstance shortOrigin;
  const num::Vec wrong(compiled.dimension() + 1, 1.0);
  shortOrigin.origin = wrong;
  EXPECT_THROW(compiled.evaluate(shortOrigin, workspace),
               InvalidArgumentError);

  AnalysisInstance badScale;
  const std::vector<double> scales(compiled.featureCount(), -1.0);
  badScale.scales = scales;
  EXPECT_THROW(compiled.evaluate(badScale, workspace), InvalidArgumentError);
}

TEST(FepiaBuilderCompiled, CompileMatchesBuild) {
  const auto makeBuilder = [] {
    return FepiaBuilder("demo")
        .perturbation("pi", num::Vec{1.0, 2.0})
        .affineFeature("a", num::Vec{1.0, 0.5}, 0.0,
                       ToleranceBounds::atMost(10.0))
        .affineFeature("b", num::Vec{0.25, 2.0}, 1.0,
                       ToleranceBounds::between(0.0, 9.0));
  };
  auto builderA = makeBuilder();
  auto builderB = makeBuilder();
  const RobustnessReport viaBuild = builderA.build().analyze();
  const CompiledProblem compiled = builderB.compile();
  expectSameReport(compiled.evaluate(), viaBuild);

  // compile() is single-shot like build().
  EXPECT_THROW(builderB.build(), InvalidArgumentError);
}

}  // namespace
}  // namespace robust::core
