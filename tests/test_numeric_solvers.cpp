// Tests for root finding, finite differences, and the constrained
// nearest-point solvers that implement Eq. 1 of the paper.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "robust/numeric/differentiation.hpp"
#include "robust/numeric/optimize.hpp"
#include "robust/numeric/root_find.hpp"
#include "robust/util/error.hpp"

namespace robust::num {
namespace {

// ------------------------------------------------------------ root finding

TEST(RootFind, BisectLinear) {
  const auto r = bisect([](double x) { return 2.0 * x - 3.0; }, 0.0, 10.0);
  EXPECT_NEAR(r.x, 1.5, 1e-9);
}

TEST(RootFind, BrentPolynomial) {
  // x^3 - 2x - 5 has a root near 2.0945514815.
  const auto r =
      brent([](double x) { return x * x * x - 2.0 * x - 5.0; }, 1.0, 3.0);
  EXPECT_NEAR(r.x, 2.0945514815423265, 1e-10);
}

TEST(RootFind, BrentTranscendental) {
  const auto r = brent([](double x) { return std::cos(x) - x; }, 0.0, 1.0);
  EXPECT_NEAR(r.x, 0.7390851332151607, 1e-10);
}

TEST(RootFind, BrentFasterThanBisect) {
  auto f = [](double x) { return std::exp(x) - 3.0; };
  const auto rb = brent(f, 0.0, 2.0);
  const auto ri = bisect(f, 0.0, 2.0);
  EXPECT_NEAR(rb.x, std::log(3.0), 1e-10);
  EXPECT_NEAR(ri.x, std::log(3.0), 1e-9);
  EXPECT_LT(rb.iterations, ri.iterations);
}

TEST(RootFind, NonBracketingThrows) {
  auto f = [](double x) { return x * x + 1.0; };
  EXPECT_THROW((void)bisect(f, -1.0, 1.0), InvalidArgumentError);
  EXPECT_THROW((void)brent(f, -1.0, 1.0), InvalidArgumentError);
}

TEST(RootFind, ExpandBracketFindsSignChange) {
  auto f = [](double t) { return t - 100.0; };
  const auto bracket = expandBracket(f, 0.0, 1.0, 1e6);
  ASSERT_TRUE(bracket.has_value());
  EXPECT_LE(bracket->first, 100.0);
  EXPECT_GE(bracket->second, 100.0);
}

TEST(RootFind, ExpandBracketGivesUpAtLimit) {
  auto f = [](double) { return 1.0; };
  EXPECT_FALSE(expandBracket(f, 0.0, 1.0, 1e3).has_value());
}

TEST(RootFind, NonFiniteObjectiveFailsFastEverywhere) {
  // A NaN objective must raise a structured error immediately instead of
  // being folded into sign tests (NaN comparisons are all false, which
  // silently mis-steers bisection and bracket expansion).
  const double nan = std::numeric_limits<double>::quiet_NaN();
  auto nanAlways = [=](double) { return nan; };
  EXPECT_THROW((void)expandBracket(nanAlways, 0.0, 1.0, 1e3),
               InvalidArgumentError);
  EXPECT_THROW((void)bisect(nanAlways, -1.0, 1.0), InvalidArgumentError);
  EXPECT_THROW((void)brent(nanAlways, -1.0, 1.0), InvalidArgumentError);
}

TEST(RootFind, NonFiniteMidEvaluationFailsFast) {
  // Finite and correctly bracketing at the endpoints, NaN in the interior:
  // the guard must fire at the first poisoned interior evaluation.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  auto poisoned = [=](double x) {
    return (x > 0.4 && x < 0.6) ? nan : x - 0.5;
  };
  EXPECT_THROW((void)bisect(poisoned, 0.0, 1.0), InvalidArgumentError);
  EXPECT_THROW((void)brent(poisoned, 0.0, 1.0), InvalidArgumentError);
}

TEST(RootFind, NonFiniteDiagnosticNamesRoutineAndPoint) {
  auto infAt = [](double x) {
    return x >= 1.0 ? std::numeric_limits<double>::infinity() : x - 2.0;
  };
  try {
    (void)bisect(infAt, 0.0, 1.0);
    FAIL() << "expected a throw";
  } catch (const InvalidArgumentError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("bisect"), std::string::npos) << what;
    EXPECT_NE(what.find("non-finite"), std::string::npos) << what;
  }
}

TEST(RootFind, InfiniteObjectiveAlsoRejected) {
  const double inf = std::numeric_limits<double>::infinity();
  auto infAlways = [=](double) { return inf; };
  EXPECT_THROW((void)expandBracket(infAlways, 0.0, 1.0, 1e3),
               InvalidArgumentError);
  EXPECT_THROW((void)brent(infAlways, -1.0, 1.0), InvalidArgumentError);
}

// A property sweep: Brent solves g(x) = x^p - c for assorted p, c.
class BrentPowerTest : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(BrentPowerTest, SolvesPower) {
  const auto [p, c] = GetParam();
  const auto r =
      brent([=](double x) { return std::pow(x, p) - c; }, 1e-6, 1e4);
  EXPECT_NEAR(r.x, std::pow(c, 1.0 / p), 1e-6 * std::pow(c, 1.0 / p));
}

INSTANTIATE_TEST_SUITE_P(
    Powers, BrentPowerTest,
    ::testing::Values(std::pair{1.0, 7.0}, std::pair{2.0, 10.0},
                      std::pair{3.0, 100.0}, std::pair{0.5, 3.0},
                      std::pair{4.0, 5000.0}));

// ------------------------------------------------------- differentiation

TEST(Differentiation, GradientOfQuadratic) {
  // f(x) = x1^2 + 3 x1 x2, grad = (2 x1 + 3 x2, 3 x1).
  auto f = [](std::span<const double> x) {
    return x[0] * x[0] + 3.0 * x[0] * x[1];
  };
  const Vec g = gradientFD(f, Vec{2.0, 5.0});
  EXPECT_NEAR(g[0], 19.0, 1e-5);
  EXPECT_NEAR(g[1], 6.0, 1e-5);
}

TEST(Differentiation, GradientScalesWithMagnitude) {
  // Large-magnitude coordinates (sensor loads ~1000) stay accurate.
  auto f = [](std::span<const double> x) { return x[0] * x[0]; };
  const Vec g = gradientFD(f, Vec{1000.0});
  EXPECT_NEAR(g[0], 2000.0, 1e-3);
}

TEST(Differentiation, HessianOfQuadratic) {
  auto f = [](std::span<const double> x) {
    return 2.0 * x[0] * x[0] + 3.0 * x[0] * x[1] + 0.5 * x[1] * x[1];
  };
  const Matrix h = hessianFD(f, Vec{1.0, 2.0});
  EXPECT_NEAR(h(0, 0), 4.0, 1e-4);
  EXPECT_NEAR(h(0, 1), 3.0, 1e-4);
  EXPECT_NEAR(h(1, 0), 3.0, 1e-4);
  EXPECT_NEAR(h(1, 1), 1.0, 1e-4);
}

TEST(Differentiation, DirectionalDerivative) {
  auto f = [](std::span<const double> x) { return x[0] * x[0] + x[1]; };
  const double d =
      directionalDerivativeFD(f, Vec{1.0, 0.0}, Vec{1.0, 1.0});
  EXPECT_NEAR(d, 3.0, 1e-5);  // grad=(2,1), dir=(1,1): 2+1
}

// ------------------------------------------------------ nearest point

NearestPointProblem sphereProblem(double level, Vec origin) {
  // g(x) = ||x||^2; boundary is the sphere of radius sqrt(level).
  NearestPointProblem p;
  p.g = [](std::span<const double> x) {
    double s = 0.0;
    for (double xi : x) {
      s += xi * xi;
    }
    return s;
  };
  p.gradient = [](std::span<const double> x) {
    return scale(x, 2.0);
  };
  p.level = level;
  p.origin = std::move(origin);
  return p;
}

TEST(CrossingAlongRay, FindsSphereCrossing) {
  const auto p = sphereProblem(25.0, Vec{0.0, 0.0});
  const auto t = crossingAlongRay(p.g, p.level, p.origin, Vec{1.0, 0.0}, 1e6);
  ASSERT_TRUE(t.has_value());
  EXPECT_NEAR(*t, 5.0, 1e-8);
}

TEST(CrossingAlongRay, ScalesWithDirectionNorm) {
  const auto p = sphereProblem(25.0, Vec{0.0, 0.0});
  // Direction of length 2: the returned distance is still Euclidean.
  const auto t = crossingAlongRay(p.g, p.level, p.origin, Vec{2.0, 0.0}, 1e6);
  ASSERT_TRUE(t.has_value());
  EXPECT_NEAR(*t, 5.0, 1e-8);
}

TEST(CrossingAlongRay, NoCrossingReturnsNullopt) {
  const auto p = sphereProblem(25.0, Vec{0.0, 0.0});
  // g decreases along no ray from inside the ball faster than it grows, but
  // a level *below* g(origin) in a growing direction is never crossed.
  const auto t =
      crossingAlongRay(p.g, -1.0, p.origin, Vec{1.0, 0.0}, 1e3);
  EXPECT_FALSE(t.has_value());
}

TEST(KktNewton, AffineConvergesToHyperplaneDistance) {
  NearestPointProblem p;
  p.g = [](std::span<const double> x) { return x[0] + x[1]; };
  p.level = 10.0;
  p.origin = {1.0, 1.0};
  const auto r = kktNewton(p);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.distance, 8.0 / std::sqrt(2.0), 1e-8);
  EXPECT_NEAR(r.point[0], 5.0, 1e-6);
  EXPECT_NEAR(r.point[1], 5.0, 1e-6);
}

TEST(KktNewton, SphereFromInside) {
  const auto p = sphereProblem(25.0, Vec{1.0, 1.0, 1.0});
  const auto r = kktNewton(p);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.distance, 5.0 - std::sqrt(3.0), 1e-7);
}

TEST(KktNewton, SphereFromOutside) {
  // Origin outside the ball: nearest boundary point moves inward
  // (the level is below g(origin)).
  const auto p = sphereProblem(4.0, Vec{5.0, 0.0});
  const auto r = kktNewton(p);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.distance, 3.0, 1e-7);
  EXPECT_NEAR(r.point[0], 2.0, 1e-6);
}

TEST(KktNewton, WorksWithoutAnalyticGradient) {
  auto p = sphereProblem(25.0, Vec{1.0, 1.0, 1.0});
  p.gradient = nullptr;
  const auto r = kktNewton(p);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.distance, 5.0 - std::sqrt(3.0), 1e-5);
}

TEST(RaySearch, MatchesKktOnSphere) {
  const auto p = sphereProblem(25.0, Vec{2.0, 1.0});
  const auto r = raySearch(p);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.distance, 5.0 - std::sqrt(5.0), 1e-6);
}

TEST(RaySearch, EllipseNearestPoint) {
  // g(x) = x1^2/25 + x2^2 ; level 1 (ellipse semi-axes 5 and 1); origin at
  // center: nearest boundary point is (0, 1) at distance 1.
  NearestPointProblem p;
  p.g = [](std::span<const double> x) {
    return x[0] * x[0] / 25.0 + x[1] * x[1];
  };
  p.level = 1.0;
  p.origin = {0.0, 0.0};
  const auto r = raySearch(p);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.distance, 1.0, 1e-6);
  EXPECT_NEAR(std::fabs(r.point[1]), 1.0, 1e-5);
}

TEST(MonteCarlo, UpperBoundsAndConverges) {
  const auto p = sphereProblem(25.0, Vec{2.0, 1.0});
  const double truth = 5.0 - std::sqrt(5.0);
  SolverOptions few;
  few.samples = 64;
  SolverOptions many;
  many.samples = 16384;
  const auto rFew = monteCarloRadius(p, few);
  const auto rMany = monteCarloRadius(p, many);
  EXPECT_GE(rFew.distance, truth - 1e-9);
  EXPECT_GE(rMany.distance, truth - 1e-9);
  EXPECT_LE(rMany.distance, rFew.distance + 1e-12);
  EXPECT_NEAR(rMany.distance, truth, 0.05);
}

TEST(MonteCarlo, ThrowsWhenBoundaryUnreachable) {
  NearestPointProblem p;
  p.g = [](std::span<const double> x) { return x[0] * x[0]; };
  p.level = -1.0;  // g >= 0 everywhere: no boundary
  p.origin = {1.0};
  SolverOptions options;
  options.samples = 32;
  options.searchLimit = 1e3;
  EXPECT_THROW((void)monteCarloRadius(p, options), ConvergenceError);
}

TEST(SolveNearestPoint, FallsBackToRaySearch) {
  // |x| is non-smooth at the KKT solution's fold; Newton may stall but the
  // production entry point must still return the right answer.
  NearestPointProblem p;
  p.g = [](std::span<const double> x) {
    return std::fabs(x[0]) + std::fabs(x[1]);
  };
  p.level = 4.0;
  p.origin = {0.5, 0.0};
  const auto r = solveNearestPoint(p);
  EXPECT_TRUE(r.converged);
  // Nearest point on |x1|+|x2|=4 from (0.5, 0): (4, 0) is distance 3.5;
  // the perpendicular to the diamond edge gives (2.25, 1.75), distance
  // sqrt(2)*1.75 ~ 2.4749.
  EXPECT_NEAR(r.distance, 3.5 / std::sqrt(2.0), 1e-4);
}

// Property sweep: on random affine problems every solver agrees with the
// closed-form hyperplane distance.
class AffineAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(AffineAgreementTest, AllSolversAgree) {
  Pcg32 rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = 2 + rng.nextBounded(6);
  Vec w(n);
  for (auto& v : w) {
    v = rng.uniform(0.5, 3.0);
  }
  Vec origin(n);
  for (auto& v : origin) {
    v = rng.uniform(0.0, 10.0);
  }
  const double level = dot(w, origin) + rng.uniform(1.0, 50.0);

  NearestPointProblem p;
  const Vec wCopy = w;
  p.g = [wCopy](std::span<const double> x) { return dot(wCopy, x); };
  p.level = level;
  p.origin = origin;

  const double expected = (level - dot(w, origin)) / norm2(w);
  const auto kkt = kktNewton(p);
  EXPECT_NEAR(kkt.distance, expected, 1e-6 * expected);
  const auto ray = raySearch(p);
  EXPECT_NEAR(ray.distance, expected, 1e-6 * expected);
  SolverOptions mc;
  mc.samples = 8192;
  const auto upper = monteCarloRadius(p, mc);
  EXPECT_GE(upper.distance, expected - 1e-9);
  EXPECT_NEAR(upper.distance, expected, 0.35 * expected);
}

INSTANTIATE_TEST_SUITE_P(RandomAffine, AffineAgreementTest,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace robust::num
