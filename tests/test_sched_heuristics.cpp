// Tests for the baseline mapping heuristics and the robustness-aware
// iterative optimizers.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "robust/scheduling/heuristics.hpp"
#include "robust/scheduling/independent_system.hpp"
#include "robust/util/error.hpp"

namespace robust::sched {
namespace {

EtcMatrix tinyEtc() {
  // 3 apps x 2 machines; designed so each heuristic's choice is traceable.
  EtcMatrix etc(3, 2);
  etc(0, 0) = 2.0;  etc(0, 1) = 4.0;
  etc(1, 0) = 3.0;  etc(1, 1) = 1.0;
  etc(2, 0) = 6.0;  etc(2, 1) = 5.0;
  return etc;
}

EtcMatrix randomEtc(std::uint64_t seed, std::size_t apps = 20,
                    std::size_t machines = 5) {
  EtcOptions options;
  options.apps = apps;
  options.machines = machines;
  Pcg32 rng(seed);
  return generateEtc(options, rng);
}

// ---------------------------------------------------------- constructive

TEST(Heuristics, RoundRobinCycles) {
  const EtcMatrix etc = tinyEtc();
  const Mapping m = roundRobinMapping(etc);
  EXPECT_EQ(m.assignment(), (std::vector<std::size_t>{0, 1, 0}));
}

TEST(Heuristics, MetPicksFastestMachinePerApp) {
  const EtcMatrix etc = tinyEtc();
  const Mapping m = metMapping(etc);
  EXPECT_EQ(m.assignment(), (std::vector<std::size_t>{0, 1, 1}));
}

TEST(Heuristics, MctTracksAvailability) {
  const EtcMatrix etc = tinyEtc();
  // app0 -> m0 (2 < 4). app1: m0 done at 2+3=5 vs m1 at 1 -> m1.
  // app2: m0 at 2+6=8 vs m1 at 1+5=6 -> m1.
  const Mapping m = mctMapping(etc);
  EXPECT_EQ(m.assignment(), (std::vector<std::size_t>{0, 1, 1}));
}

TEST(Heuristics, OlbIgnoresEtc) {
  const EtcMatrix etc = tinyEtc();
  // app0 -> m0 (both idle, first wins). app1 -> m1 (idle). app2 -> m1
  // (available at 1 vs m0 at 2).
  const Mapping m = olbMapping(etc);
  EXPECT_EQ(m.assignment(), (std::vector<std::size_t>{0, 1, 1}));
}

TEST(Heuristics, MinMinCommitsSmallestCompletionFirst) {
  const EtcMatrix etc = tinyEtc();
  // Round 1: best CTs are {2 (a0,m0), 1 (a1,m1), 5 (a2,m1)} -> a1 on m1.
  // Round 2: a0 best = 2 on m0; a2 best = min(6, 1+5)=6 on either; a0 wins.
  // Round 3: a2: m0 at 2+6=8 vs m1 at 1+5=6 -> m1.
  const Mapping m = minMinMapping(etc);
  EXPECT_EQ(m.assignment(), (std::vector<std::size_t>{0, 1, 1}));
}

TEST(Heuristics, MaxMinCommitsLargestFirst) {
  const EtcMatrix etc = tinyEtc();
  // Round 1: best CTs {2, 1, 5} -> a2 (largest) on m1.
  // Round 2: a0 best 2 on m0, a1 best min(3, 5+1=6)=3 on m0 -> a1 wins (3>2),
  // on m0. Round 3: a0 -> m0 at 3+2=5 vs m1 at 5+4=9 -> m0.
  const Mapping m = maxMinMapping(etc);
  EXPECT_EQ(m.assignment(), (std::vector<std::size_t>{0, 0, 1}));
}

TEST(Heuristics, SufferagePrefersHighRegret) {
  const EtcMatrix etc = tinyEtc();
  // Sufferages: a0: 4-2=2, a1: 3-1=2, a2: 6-5=1 -> a0 (first max) on m0.
  // Then a1: best m1 (1), second 2+3=5, suff 4; a2: best m1 5 vs m0 8 suff 3
  // -> a1 on m1. Then a2: m0 at 8 vs m1 at 6 -> m1.
  const Mapping m = sufferageMapping(etc);
  EXPECT_EQ(m.assignment(), (std::vector<std::size_t>{0, 1, 1}));
}

TEST(Heuristics, AllConstructiveAreValidOnRandomInstances) {
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const EtcMatrix etc = randomEtc(seed);
    for (const auto& entry : constructiveHeuristics()) {
      const Mapping m = entry.build(etc);
      EXPECT_EQ(m.apps(), etc.apps()) << entry.name;
      EXPECT_EQ(m.machines(), etc.machines()) << entry.name;
      for (std::size_t i = 0; i < m.apps(); ++i) {
        EXPECT_LT(m.machineOf(i), etc.machines()) << entry.name;
      }
    }
  }
}

TEST(Heuristics, MinMinBeatsRoundRobinOnHeterogeneousInstances) {
  int wins = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const EtcMatrix etc = randomEtc(seed);
    if (makespan(etc, minMinMapping(etc)) <
        makespan(etc, roundRobinMapping(etc))) {
      ++wins;
    }
  }
  EXPECT_GE(wins, 8);  // min-min is a strong heuristic on CVB instances
}

TEST(Heuristics, RegistryHasAllEight) {
  EXPECT_EQ(constructiveHeuristics().size(), 8u);
}

TEST(Heuristics, DuplexPicksBetterOfMinMinMaxMin) {
  for (std::uint64_t seed : {30ULL, 31ULL, 32ULL}) {
    const EtcMatrix etc = randomEtc(seed);
    const double duplex = makespan(etc, duplexMapping(etc));
    const double mn = makespan(etc, minMinMapping(etc));
    const double mx = makespan(etc, maxMinMapping(etc));
    EXPECT_DOUBLE_EQ(duplex, std::min(mn, mx));
  }
}

TEST(TabuSearch, ImprovesAndRespectsOptions) {
  const EtcMatrix etc = randomEtc(33);
  const auto obj = makespanObjective(etc);
  const Mapping start = roundRobinMapping(etc);
  const Mapping improved = tabuSearch(etc, start, obj);
  EXPECT_LE(obj(improved), obj(start));
  // Deterministic (no RNG inside).
  const Mapping again = tabuSearch(etc, start, obj);
  EXPECT_EQ(improved.assignment(), again.assignment());
  TabuOptions bad;
  bad.iterations = 0;
  EXPECT_THROW((void)tabuSearch(etc, start, obj, bad), InvalidArgumentError);
}

TEST(TabuSearch, EscapesLocalOptima) {
  // Tabu must do at least as well as steepest descent from the same start
  // on most instances (it can continue past the first local optimum).
  int atLeastAsGood = 0;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const EtcMatrix etc = randomEtc(seed + 60);
    const auto obj = makespanObjective(etc);
    const Mapping start = mctMapping(etc);
    const double tabu = obj(tabuSearch(etc, start, obj));
    const double descent = obj(localSearch(etc, start, obj));
    atLeastAsGood += tabu <= descent + 1e-9;
  }
  EXPECT_GE(atLeastAsGood, 7);
}

TEST(GreedyRobust, ValidAndDeterministic) {
  const EtcMatrix etc = randomEtc(21);
  const Mapping a = greedyRobustMapping(etc, 1.2);
  const Mapping b = greedyRobustMapping(etc, 1.2);
  EXPECT_EQ(a.assignment(), b.assignment());
  EXPECT_EQ(a.apps(), etc.apps());
  for (std::size_t i = 0; i < a.apps(); ++i) {
    EXPECT_LT(a.machineOf(i), etc.machines());
  }
  EXPECT_THROW((void)greedyRobustMapping(etc, 0.5), InvalidArgumentError);
}

TEST(GreedyRobust, CompetitiveWithRandomMappings) {
  // The heuristic maximizes the scale-free rho / makespan (raw rho rewards
  // bloated makespans — a random mapping's long schedule tolerates
  // absolutely larger errors); compare on that quantity.
  int wins = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const EtcMatrix etc = randomEtc(seed + 40);
    Pcg32 rng(seed);
    const Mapping randomM = randomMapping(etc.apps(), etc.machines(), rng);
    const auto normalized = [&](const Mapping& m) {
      const auto analysis =
          IndependentTaskSystem(etc, m, 1.2).analyze();
      return analysis.robustness / analysis.predictedMakespan;
    };
    wins += normalized(greedyRobustMapping(etc, 1.2)) > normalized(randomM);
  }
  EXPECT_GE(wins, 8);
}

TEST(GreedyRobust, UsesAllMachinesOnUniformInstances) {
  // With identical ETCs, maximizing the partial robustness spreads the
  // applications (an empty machine has infinite radius; loading one machine
  // drops the minimum).
  EtcMatrix etc(10, 5);
  for (std::size_t i = 0; i < 10; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      etc(i, j) = 4.0;
    }
  }
  const Mapping m = greedyRobustMapping(etc, 1.3);
  const auto counts = m.countPerMachine();
  for (std::size_t j = 0; j < 5; ++j) {
    EXPECT_EQ(counts[j], 2u);
  }
}

// ------------------------------------------------------------ objectives

TEST(Objectives, MakespanObjectiveMatchesMetric) {
  const EtcMatrix etc = tinyEtc();
  const auto obj = makespanObjective(etc);
  const Mapping m({0, 1, 1}, 2);
  EXPECT_DOUBLE_EQ(obj(m), makespan(etc, m));
}

TEST(Objectives, NegatedRobustnessInvertsOrder) {
  const EtcMatrix etc = randomEtc(4);
  const auto obj = negatedRobustnessObjective(etc, 1.2);
  Pcg32 rng(9);
  const Mapping a = randomMapping(etc.apps(), etc.machines(), rng);
  const Mapping b = randomMapping(etc.apps(), etc.machines(), rng);
  const double rhoA = IndependentTaskSystem(etc, a, 1.2).analyze().robustness;
  const double rhoB = IndependentTaskSystem(etc, b, 1.2).analyze().robustness;
  EXPECT_EQ(obj(a) < obj(b), rhoA > rhoB);
}

TEST(Objectives, CappedRobustnessPenalizesInfeasible) {
  const EtcMatrix etc = randomEtc(5);
  const double cap = makespan(etc, minMinMapping(etc)) * 1.1;
  const auto obj = cappedRobustnessObjective(etc, 1.2, cap);
  // A mapping over the cap scores positive; one under it scores negative.
  const Mapping allOnOne(std::vector<std::size_t>(etc.apps(), 0),
                         etc.machines());
  EXPECT_GT(obj(allOnOne), 0.0);
  EXPECT_LT(obj(minMinMapping(etc)), 0.0);
  EXPECT_THROW((void)cappedRobustnessObjective(etc, 1.2, 0.0),
               InvalidArgumentError);
}

// --------------------------------------------------------- improvement

TEST(LocalSearch, NeverWorsensAndReachesLocalOptimum) {
  const EtcMatrix etc = randomEtc(6);
  const auto obj = makespanObjective(etc);
  const Mapping start = roundRobinMapping(etc);
  const Mapping improved = localSearch(etc, start, obj);
  EXPECT_LE(obj(improved), obj(start));
  // Local optimality: no single reassignment improves further.
  Mapping probe = improved;
  for (std::size_t i = 0; i < etc.apps(); ++i) {
    const std::size_t original = probe.machineOf(i);
    for (std::size_t j = 0; j < etc.machines(); ++j) {
      probe.assign(i, j);
      EXPECT_GE(obj(probe), obj(improved) - 1e-12);
    }
    probe.assign(i, original);
  }
}

TEST(SimulatedAnnealing, ImprovesAndIsDeterministic) {
  const EtcMatrix etc = randomEtc(7);
  const auto obj = makespanObjective(etc);
  const Mapping start = roundRobinMapping(etc);
  AnnealingOptions options;
  options.iterations = 5000;
  options.seed = 3;
  const Mapping a = simulatedAnnealing(etc, start, obj, options);
  const Mapping b = simulatedAnnealing(etc, start, obj, options);
  EXPECT_EQ(a.assignment(), b.assignment());
  EXPECT_LE(obj(a), obj(start));
}

TEST(SimulatedAnnealing, OptionValidation) {
  const EtcMatrix etc = tinyEtc();
  AnnealingOptions bad;
  bad.iterations = 0;
  EXPECT_THROW((void)simulatedAnnealing(etc, roundRobinMapping(etc),
                                        makespanObjective(etc), bad),
               InvalidArgumentError);
  bad = {};
  bad.coolingRate = 1.5;
  EXPECT_THROW((void)simulatedAnnealing(etc, roundRobinMapping(etc),
                                        makespanObjective(etc), bad),
               InvalidArgumentError);
}

TEST(GeneticAlgorithm, ImprovesAndIsDeterministic) {
  const EtcMatrix etc = randomEtc(8);
  const auto obj = makespanObjective(etc);
  const Mapping start = roundRobinMapping(etc);
  GeneticOptions options;
  options.generations = 40;
  options.seed = 4;
  const Mapping a = geneticAlgorithm(etc, start, obj, options);
  const Mapping b = geneticAlgorithm(etc, start, obj, options);
  EXPECT_EQ(a.assignment(), b.assignment());
  EXPECT_LE(obj(a), obj(start));
}

TEST(GeneticAlgorithm, OptionValidation) {
  const EtcMatrix etc = tinyEtc();
  GeneticOptions bad;
  bad.populationSize = 1;
  EXPECT_THROW((void)geneticAlgorithm(etc, roundRobinMapping(etc),
                                      makespanObjective(etc), bad),
               InvalidArgumentError);
  bad = {};
  bad.eliteCount = 100;
  EXPECT_THROW((void)geneticAlgorithm(etc, roundRobinMapping(etc),
                                      makespanObjective(etc), bad),
               InvalidArgumentError);
}

TEST(RobustnessAwareSearch, BeatsMakespanOptimizedOnRobustness) {
  // The paper's motivation: among mappings of comparable makespan, the
  // robustness metric finds substantially more robust ones.
  const EtcMatrix etc = randomEtc(9);
  const double tau = 1.2;
  const Mapping fast = minMinMapping(etc);
  const double cap = 1.2 * makespan(etc, fast);
  AnnealingOptions options;
  options.iterations = 8000;
  options.seed = 10;
  const Mapping robustMapping = simulatedAnnealing(
      etc, fast, cappedRobustnessObjective(etc, tau, cap), options);
  const double rhoFast =
      IndependentTaskSystem(etc, fast, tau).analyze().robustness;
  const double rhoRobust =
      IndependentTaskSystem(etc, robustMapping, tau).analyze().robustness;
  EXPECT_LE(makespan(etc, robustMapping), cap + 1e-9);
  EXPECT_GT(rhoRobust, rhoFast);
}

}  // namespace
}  // namespace robust::sched
