// Differential round-trip fuzz harness for the ingestion boundary.
//
// Three properties, all deterministic (seeded Pcg32 streams):
//   1. Round-trip: randomized ETC matrices and HiPer-D scenarios survive
//      save -> load bit-identically (the %.17g pin), and the loaded copy
//      produces bit-identical analyzeBatch reports to the in-memory
//      original — the loader is exactly transparent for valid input.
//   2. Mutation: every byte-damaged artifact either loads (with only
//      finite values — nothing non-finite can reach a CompiledProblem) or
//      raises a structured InvalidArgumentError. No crash, no UB, no other
//      exception type; util::ParseError findings carry the source name.
//   3. Truncation: every prefix of a valid artifact is rejected cleanly
//      (or, for the full artifact, loads identically).
// A fourth artifact kind, the binary instance file of the streaming lane
// (robust/core/instance_file.hpp), runs the same three properties through
// both entry points: the in-memory loader and the mmap-backed
// InstanceFileReader -> analyzeStream path.
#include <gtest/gtest.h>

#include <cmath>
#include <exception>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "robust/core/compiled.hpp"
#include "robust/core/instance_file.hpp"
#include "robust/core/stream.hpp"
#include "robust/hiperd/generator.hpp"
#include "robust/hiperd/scenario_io.hpp"
#include "robust/scheduling/etc_io.hpp"
#include "robust/scheduling/independent_system.hpp"
#include "robust/scheduling/mapping.hpp"
#include "robust/util/diagnostics.hpp"
#include "robust/util/error.hpp"
#include "robust/util/fuzz.hpp"
#include "robust/util/rng.hpp"

namespace robust {
namespace {

constexpr std::uint64_t kMasterSeed = 2003;  // the paper's year

// ------------------------------------------------------------ helpers

void expectReportsBitIdentical(const core::RobustnessReport& a,
                               const core::RobustnessReport& b) {
  ASSERT_EQ(a.radii.size(), b.radii.size());
  EXPECT_EQ(a.metric, b.metric);  // bitwise: operator== on doubles
  EXPECT_EQ(a.bindingFeature, b.bindingFeature);
  EXPECT_EQ(a.floored, b.floored);
  for (std::size_t i = 0; i < a.radii.size(); ++i) {
    EXPECT_EQ(a.radii[i].feature, b.radii[i].feature);
    EXPECT_EQ(a.radii[i].radius, b.radii[i].radius);
    EXPECT_EQ(a.radii[i].boundaryLevel, b.radii[i].boundaryLevel);
    EXPECT_EQ(a.radii[i].boundReachable, b.radii[i].boundReachable);
    EXPECT_EQ(a.radii[i].method, b.radii[i].method);
    ASSERT_EQ(a.radii[i].boundaryPoint.size(), b.radii[i].boundaryPoint.size());
    for (std::size_t k = 0; k < a.radii[i].boundaryPoint.size(); ++k) {
      EXPECT_EQ(a.radii[i].boundaryPoint[k], b.radii[i].boundaryPoint[k]);
    }
  }
}

sched::EtcMatrix randomEtc(std::uint64_t seed) {
  Pcg32 rng = makeStream(kMasterSeed, seed);
  sched::EtcOptions options;
  options.apps = 1 + rng.nextBounded(12);
  options.machines = 1 + rng.nextBounded(8);
  options.meanTaskTime = rng.uniform(0.5, 50.0);
  options.taskHeterogeneity = rng.uniform(0.0, 1.2);
  options.machineHeterogeneity = rng.uniform(0.0, 1.2);
  options.consistency = static_cast<sched::EtcConsistency>(rng.nextBounded(3));
  return sched::generateEtc(options, rng);
}

/// Loads mutated bytes; the only acceptable outcomes are a clean load of
/// all-finite values or an InvalidArgumentError. Returns true on load.
template <typename LoadFn, typename CheckFn>
bool loadOrReject(const std::string& text, LoadFn load, CheckFn check) {
  try {
    std::istringstream is(text);
    check(load(is));
    return true;
  } catch (const util::ParseError& err) {
    EXPECT_FALSE(err.diagnostic().source.empty());
    EXPECT_FALSE(err.diagnostic().message.empty());
    return false;
  } catch (const InvalidArgumentError&) {
    // Structural rejections re-attributed from deeper layers.
    return false;
  } catch (const std::exception& err) {
    ADD_FAILURE() << "unexpected exception type: " << err.what();
    return false;
  }
}

// ------------------------------------------------- ETC round-trip (1/2)

TEST(IoFuzz, EtcRoundTripsBitIdenticallyAcross120Instances) {
  for (std::uint64_t seed = 0; seed < 120; ++seed) {
    const sched::EtcMatrix etc = randomEtc(seed);
    std::stringstream stream;
    sched::saveEtcCsv(etc, stream);
    const sched::EtcMatrix loaded = sched::loadEtcCsv(stream);
    ASSERT_EQ(loaded.apps(), etc.apps()) << "seed " << seed;
    ASSERT_EQ(loaded.machines(), etc.machines()) << "seed " << seed;
    for (std::size_t i = 0; i < etc.apps(); ++i) {
      for (std::size_t j = 0; j < etc.machines(); ++j) {
        ASSERT_EQ(loaded(i, j), etc(i, j)) << "seed " << seed;
      }
    }
  }
}

TEST(IoFuzz, EtcLoadedCopyAnalyzesBatchBitIdentically) {
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    const sched::EtcMatrix etc = randomEtc(seed);
    std::stringstream stream;
    sched::saveEtcCsv(etc, stream);
    const sched::EtcMatrix loaded = sched::loadEtcCsv(stream);

    Pcg32 rng = makeStream(kMasterSeed ^ 0xabcd, seed);
    const auto mapping = sched::randomMapping(etc.apps(), etc.machines(), rng);
    const sched::IndependentTaskSystem original(etc, mapping, 1.2);
    const sched::IndependentTaskSystem reloaded(loaded, mapping, 1.2);

    const core::CompiledProblem a = original.compile();
    const core::CompiledProblem b = reloaded.compile();
    const std::vector<core::AnalysisInstance> instances(3);
    const auto ra = a.analyzeBatch(instances);
    const auto rb = b.analyzeBatch(instances);
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t k = 0; k < ra.size(); ++k) {
      expectReportsBitIdentical(ra[k], rb[k]);
    }
  }
}

// --------------------------------------------- scenario round-trip (1/2)

TEST(IoFuzz, ScenarioRoundTripsBitIdenticallyAcross30Instances) {
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    const auto generated =
        hiperd::generateScenario(hiperd::ScenarioOptions{}, seed);
    const hiperd::HiperdScenario& original = generated.scenario;
    std::stringstream stream;
    hiperd::saveScenario(original, stream);
    const hiperd::HiperdScenario loaded = hiperd::loadScenario(stream);

    // Second round trip pins byte-identity of the serialized form itself.
    std::stringstream again;
    hiperd::saveScenario(loaded, again);
    ASSERT_EQ(again.str(), stream.str()) << "seed " << seed;

    // Differential: identical robustness analysis for identical mappings.
    Pcg32 rng = makeStream(kMasterSeed ^ 0x5ce9, seed);
    const auto mapping = sched::randomMapping(
        original.graph.applicationCount(), original.machines, rng);
    const hiperd::HiperdSystem a(original, mapping);
    const hiperd::HiperdSystem b(loaded, mapping);
    expectReportsBitIdentical(a.analyze(), b.analyze());
  }
}

// ------------------------------------------------------- mutation (2)

TEST(IoFuzz, MutatedEtcNeverCrashesAndNeverAdmitsNonFinite) {
  const sched::EtcMatrix etc = randomEtc(7);
  std::stringstream stream;
  sched::saveEtcCsv(etc, stream);
  const std::string valid = stream.str();

  Pcg32 rng = makeStream(kMasterSeed, 0xe7c);
  int loadedCount = 0;
  for (int i = 0; i < 600; ++i) {
    const std::string mutated = util::mutateBytes(valid, rng);
    loadedCount += loadOrReject(
        mutated,
        [](std::istream& is) { return sched::loadEtcCsv(is, "fuzz.csv"); },
        [](const sched::EtcMatrix& m) {
          for (std::size_t r = 0; r < m.apps(); ++r) {
            for (std::size_t c = 0; c < m.machines(); ++c) {
              ASSERT_TRUE(std::isfinite(m(r, c)) && m(r, c) > 0.0)
                  << "loader admitted non-finite/non-positive cell";
            }
          }
        });
  }
  // Sanity on the corpus itself: some mutations must survive (e.g. a digit
  // flip) and most must be rejected — otherwise the mutator is broken.
  EXPECT_GT(loadedCount, 0);
  EXPECT_LT(loadedCount, 600);
}

TEST(IoFuzz, MutatedScenarioNeverCrashesAndNeverAdmitsNonFinite) {
  const auto generated =
      hiperd::generateScenario(hiperd::ScenarioOptions{}, 2003);
  std::stringstream stream;
  hiperd::saveScenario(generated.scenario, stream);
  const std::string valid = stream.str();

  Pcg32 rng = makeStream(kMasterSeed, 0x5ce);
  int loadedCount = 0;
  for (int i = 0; i < 400; ++i) {
    const std::string mutated = util::mutateBytes(valid, rng);
    loadedCount += loadOrReject(
        mutated,
        [](std::istream& is) {
          return hiperd::loadScenario(is, "fuzz.scenario");
        },
        [](const hiperd::HiperdScenario& s) {
          for (double v : s.lambdaOrig) {
            ASSERT_TRUE(std::isfinite(v));
          }
          for (double v : s.latencyLimits) {
            ASSERT_TRUE(std::isfinite(v) && v > 0.0);
          }
          for (const auto& row : s.compute) {
            for (const auto& fn : row) {
              for (double c : fn.coeffs()) {
                ASSERT_TRUE(std::isfinite(c));
              }
            }
          }
          for (const auto& fn : s.comm) {
            for (double c : fn.coeffs()) {
              ASSERT_TRUE(std::isfinite(c));
            }
          }
          // A successfully loaded scenario must be analyzable without any
          // NaN escaping into the compiled report.
          Pcg32 mapRng(1);
          const auto mapping = sched::randomMapping(
              s.graph.applicationCount(), s.machines, mapRng);
          const auto report = hiperd::HiperdSystem(s, mapping).analyze();
          ASSERT_FALSE(std::isnan(report.metric));
        });
  }
  EXPECT_LT(loadedCount, 400);
}

// ------------------------------------------------------ truncation (3)

TEST(IoFuzz, EveryEtcPrefixRejectsCleanly) {
  const sched::EtcMatrix etc = randomEtc(11);
  std::stringstream stream;
  sched::saveEtcCsv(etc, stream);
  const std::string valid = stream.str();
  for (std::size_t cut = 0; cut < valid.size(); ++cut) {
    (void)loadOrReject(
        valid.substr(0, cut),
        [](std::istream& is) { return sched::loadEtcCsv(is); },
        [](const sched::EtcMatrix&) {});
  }
}

TEST(IoFuzz, EveryScenarioPrefixRejectsCleanly) {
  hiperd::ScenarioOptions small;
  small.applications = 8;
  small.machines = 3;
  small.targetPaths = 6;
  const auto generated = hiperd::generateScenario(small, 17);
  std::stringstream stream;
  hiperd::saveScenario(generated.scenario, stream);
  const std::string valid = stream.str();
  // Any cut before the final line removes whole required tokens, so the
  // loader MUST throw. Cuts inside the final line may still parse (EOF can
  // complete the last numeric token), so there only "no crash" is asserted.
  const std::size_t lastLineStart = valid.rfind('\n', valid.size() - 2) + 1;
  // Stride 3 keeps the sweep fast while still cutting inside every field
  // kind; the full-resolution sweep runs in the bench driver.
  for (std::size_t cut = 0; cut < valid.size(); cut += 3) {
    const std::string prefix = valid.substr(0, cut);
    if (cut < lastLineStart) {
      std::istringstream is(prefix);
      EXPECT_THROW((void)hiperd::loadScenario(is), InvalidArgumentError)
          << "prefix of length " << cut << " unexpectedly loaded";
    } else {
      (void)loadOrReject(
          prefix,
          [](std::istream& is) { return hiperd::loadScenario(is); },
          [](const hiperd::HiperdScenario&) {});
    }
  }
}

// ------------------------------------- binary instance files (1, 2, 3)

/// A valid instance-file image: a tiny problem's worth of perturbations
/// packed through the streaming writer.
std::string validInstanceImage(std::uint64_t dim, std::uint64_t count) {
  Pcg32 rng = makeStream(kMasterSeed, 0xb1);
  std::ostringstream out(std::ios::binary);
  core::InstanceFileWriter writer(out, dim);
  std::vector<double> row(dim);
  for (std::uint64_t i = 0; i < count; ++i) {
    for (double& v : row) {
      v = rng.uniform(0.5, 1.5);
    }
    writer.append(row);
  }
  writer.finish();
  return out.str();
}

/// A matching problem for driving mutated images through analyzeStream.
core::CompiledProblem tinyStreamProblem(std::size_t dim) {
  Pcg32 rng = makeStream(kMasterSeed, 0xb2);
  core::ProblemSpec spec;
  spec.parameter.name = "pi";
  spec.parameter.origin.assign(dim, 1.0);
  for (std::size_t r = 0; r < 4; ++r) {
    num::Vec weights(dim);
    for (double& w : weights) {
      w = rng.uniform(0.1, 2.0);
    }
    spec.features.push_back(core::PerformanceFeature{
        "F_" + std::to_string(r),
        core::ImpactFunction::affine(std::move(weights)),
        core::ToleranceBounds::atMost(rng.uniform(2.0, 8.0) *
                                      static_cast<double>(dim))});
  }
  return core::CompiledProblem::compile(std::move(spec));
}

/// Loads a byte image through the in-memory loader; clean loads must hold
/// only finite values. Returns true on load, false on structured reject.
bool loadImageOrReject(const std::string& image) {
  try {
    const util::Diagnostics diag("fuzz.rbi");
    const core::InstanceData data = core::loadInstanceData(image, diag);
    for (double v : data.values) {
      EXPECT_TRUE(std::isfinite(v))
          << "binary loader admitted a non-finite value";
    }
    return true;
  } catch (const util::ParseError& err) {
    EXPECT_FALSE(err.diagnostic().source.empty());
    EXPECT_FALSE(err.diagnostic().message.empty());
    return false;
  } catch (const InvalidArgumentError&) {
    return false;
  } catch (const std::exception& err) {
    ADD_FAILURE() << "unexpected exception type: " << err.what();
    return false;
  }
}

TEST(IoFuzz, MutatedInstanceFileNeverCrashesAndNeverAdmitsNonFinite) {
  const std::string valid = validInstanceImage(6, 20);
  Pcg32 rng = makeStream(kMasterSeed, 0xb17);
  int loadedCount = 0;
  for (int i = 0; i < 600; ++i) {
    loadedCount += loadImageOrReject(util::mutateBytes(valid, rng)) ? 1 : 0;
  }
  // The format is mostly payload, so many single-byte flips only move a
  // finite double; the header and shape damage must all be caught.
  EXPECT_GT(loadedCount, 0);
  EXPECT_LT(loadedCount, 600);
}

TEST(IoFuzz, MutatedInstanceFileThroughMmapReaderNeverCrashes) {
  const std::string valid = validInstanceImage(6, 20);
  const core::CompiledProblem problem = tinyStreamProblem(6);
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("robust_io_fuzz_" + std::to_string(::getpid()) + ".rbi"))
          .string();

  Pcg32 rng = makeStream(kMasterSeed, 0xb18);
  for (int i = 0; i < 200; ++i) {
    const std::string mutated = util::mutateBytes(valid, rng);
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      ASSERT_TRUE(out.is_open());
      out.write(mutated.data(),
                static_cast<std::streamsize>(mutated.size()));
    }
    bool streamed = false;
    try {
      core::StreamOptions options;
      options.shardInstances = 7;
      const core::StreamResult result =
          core::analyzeStream(problem, path, options);
      EXPECT_FALSE(std::isnan(result.metric))
          << "streaming lane emitted NaN from a mutated file";
      streamed = true;
    } catch (const InvalidArgumentError&) {
      // ParseError (malformed file / non-finite payload), dimension
      // mismatch, degenerate rows — all structured rejections.
    } catch (const std::exception& err) {
      ADD_FAILURE() << "unexpected exception type: " << err.what();
    }
    // The two entry points share one validation boundary: a file the
    // streaming lane accepted must also pass the in-memory loader (modulo
    // problem-dependent degenerate-row rejects, which only go the other
    // way).
    if (streamed) {
      EXPECT_TRUE(loadImageOrReject(mutated));
    }
  }
  std::error_code ec;
  std::filesystem::remove(path, ec);
}

TEST(IoFuzz, TrailingGarbageAfterThePayloadRejectsWithStructureCategory) {
  const std::string valid = validInstanceImage(5, 9);
  Pcg32 rng = makeStream(kMasterSeed, 0xb19);
  // Any nonzero number of appended bytes — a single NUL, a partial
  // instance, whole garbage instances — must be rejected as a Structure
  // violation naming the trailing byte count, through both entry points.
  // (A file that gained exactly k*dim*8 bytes of garbage would instead be
  // a header/payload mismatch caught the same way: the declared instance
  // count no longer matches the file size.)
  for (const std::size_t extra : {std::size_t{1}, std::size_t{7},
                                  std::size_t{8}, std::size_t{39},
                                  std::size_t{41}, std::size_t{256}}) {
    std::string grown = valid;
    for (std::size_t i = 0; i < extra; ++i) {
      grown.push_back(static_cast<char>(rng.nextBounded(256)));
    }
    const util::Diagnostics diag("trailing.rbi");
    try {
      (void)core::loadInstanceData(grown, diag);
      ADD_FAILURE() << extra << " trailing bytes unexpectedly loaded";
    } catch (const util::ParseError& err) {
      EXPECT_EQ(err.diagnostic().category, util::RejectCategory::Structure)
          << "extra " << extra;
      EXPECT_NE(err.diagnostic().message.find("trailing bytes"),
                std::string::npos)
          << "extra " << extra << ": " << err.diagnostic().message;
    }
  }
}

TEST(IoFuzz, EveryInstanceFilePrefixRejectsCleanly) {
  const std::string valid = validInstanceImage(5, 9);
  // The header declares the exact payload size, so EVERY strict prefix is
  // rejectable — stronger than the text formats' EOF ambiguity.
  for (std::size_t cut = 0; cut < valid.size(); ++cut) {
    const util::Diagnostics diag("prefix.rbi");
    EXPECT_THROW((void)core::loadInstanceData(valid.substr(0, cut), diag),
                 InvalidArgumentError)
        << "prefix of length " << cut << " unexpectedly loaded";
  }
  EXPECT_TRUE(loadImageOrReject(valid));
}

}  // namespace
}  // namespace robust
