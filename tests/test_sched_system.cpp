// Tests for mappings, their metrics, and the Section 3.1 robustness
// derivation: Eq. 6 closed form, Eq. 7 metric, the critical point C*
// (observations 1-2), and agreement with the generic FePIA analyzer.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "robust/core/validation.hpp"
#include "robust/scheduling/independent_system.hpp"
#include "robust/util/error.hpp"

namespace robust::sched {
namespace {

EtcMatrix quickEtc() {
  // 4 apps x 2 machines with easy numbers.
  EtcMatrix etc(4, 2);
  etc(0, 0) = 4.0;  etc(0, 1) = 8.0;
  etc(1, 0) = 3.0;  etc(1, 1) = 5.0;
  etc(2, 0) = 6.0;  etc(2, 1) = 2.0;
  etc(3, 0) = 5.0;  etc(3, 1) = 4.0;
  return etc;
}

// -------------------------------------------------------------- mapping

TEST(Mapping, BasicAccessors) {
  const Mapping m({0, 1, 0}, 2);
  EXPECT_EQ(m.apps(), 3u);
  EXPECT_EQ(m.machines(), 2u);
  EXPECT_EQ(m.machineOf(1), 1u);
  const auto counts = m.countPerMachine();
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  const auto apps = m.appsPerMachine();
  EXPECT_EQ(apps[0], (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(apps[1], (std::vector<std::size_t>{1}));
}

TEST(Mapping, Validation) {
  EXPECT_THROW(Mapping({0, 2}, 2), InvalidArgumentError);  // machine 2 of 2
  EXPECT_THROW(Mapping({}, 2), InvalidArgumentError);
  EXPECT_THROW(Mapping({0}, 0), InvalidArgumentError);
  Mapping m({0}, 2);
  EXPECT_THROW(m.assign(5, 0), InvalidArgumentError);
  EXPECT_THROW(m.assign(0, 9), InvalidArgumentError);
  m.assign(0, 1);
  EXPECT_EQ(m.machineOf(0), 1u);
}

TEST(Mapping, RandomMappingIsValidAndDeterministic) {
  Pcg32 a(5);
  Pcg32 b(5);
  const Mapping m1 = randomMapping(20, 5, a);
  const Mapping m2 = randomMapping(20, 5, b);
  EXPECT_EQ(m1.assignment(), m2.assignment());
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_LT(m1.machineOf(i), 5u);
  }
}

TEST(Metrics, FinishingTimesMakespanAndLbi) {
  const EtcMatrix etc = quickEtc();
  const Mapping m({0, 0, 1, 1}, 2);
  const auto finish = finishingTimes(etc, m);
  EXPECT_DOUBLE_EQ(finish[0], 7.0);
  EXPECT_DOUBLE_EQ(finish[1], 6.0);
  EXPECT_DOUBLE_EQ(makespan(etc, m), 7.0);
  EXPECT_NEAR(loadBalanceIndex(etc, m), 6.0 / 7.0, 1e-12);
}

TEST(Metrics, EmptyMachineZeroesLbi) {
  const EtcMatrix etc = quickEtc();
  const Mapping m({0, 0, 0, 0}, 2);
  EXPECT_DOUBLE_EQ(loadBalanceIndex(etc, m), 0.0);
}

TEST(Metrics, DimensionMismatchThrows) {
  const EtcMatrix etc = quickEtc();
  const Mapping m({0, 0}, 2);  // wrong app count
  EXPECT_THROW((void)finishingTimes(etc, m), InvalidArgumentError);
}

// ------------------------------------------------------------- Eq. 6 / 7

TEST(IndependentSystem, RadiiMatchHandComputation) {
  const EtcMatrix etc = quickEtc();
  const Mapping m({0, 0, 1, 1}, 2);
  const IndependentTaskSystem system(etc, m, 1.2);
  // M_orig = 7, tau M = 8.4.
  // r(F_0) = (8.4 - 7) / sqrt(2), r(F_1) = (8.4 - 6) / sqrt(2).
  EXPECT_NEAR(system.robustnessRadius(0), 1.4 / std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(system.robustnessRadius(1), 2.4 / std::sqrt(2.0), 1e-12);
  const auto analysis = system.analyze();
  EXPECT_NEAR(analysis.robustness, 1.4 / std::sqrt(2.0), 1e-12);
  EXPECT_EQ(analysis.bindingMachine, 0u);
  EXPECT_DOUBLE_EQ(analysis.predictedMakespan, 7.0);
}

TEST(IndependentSystem, EmptyMachineHasInfiniteRadius) {
  const EtcMatrix etc = quickEtc();
  const Mapping m({0, 0, 0, 0}, 2);
  const IndependentTaskSystem system(etc, m, 1.5);
  EXPECT_TRUE(std::isinf(system.robustnessRadius(1)));
  const auto analysis = system.analyze();
  EXPECT_EQ(analysis.bindingMachine, 0u);
  EXPECT_TRUE(std::isfinite(analysis.robustness));
}

TEST(IndependentSystem, TauOneMeansZeroRobustnessForBindingMachine) {
  const EtcMatrix etc = quickEtc();
  const Mapping m({0, 0, 1, 1}, 2);
  const IndependentTaskSystem system(etc, m, 1.0);
  EXPECT_NEAR(system.analyze().robustness, 0.0, 1e-12);
}

TEST(IndependentSystem, TauBelowOneRejected) {
  const EtcMatrix etc = quickEtc();
  EXPECT_THROW(IndependentTaskSystem(etc, Mapping({0, 0, 1, 1}, 2), 0.9),
               InvalidArgumentError);
}

TEST(IndependentSystem, RobustnessScalesAffinelyInTau) {
  // From Eq. 6: r_j(tau) = (tau M - F_j)/sqrt(n_j) is affine in tau, and on
  // the binding machine r = ((tau - 1) M + (M - F_j*)) / sqrt(n_j*).
  const EtcMatrix etc = quickEtc();
  const Mapping m({0, 1, 0, 1}, 2);
  const double r12 = IndependentTaskSystem(etc, m, 1.2).analyze().robustness;
  const double r14 = IndependentTaskSystem(etc, m, 1.4).analyze().robustness;
  const double r16 = IndependentTaskSystem(etc, m, 1.6).analyze().robustness;
  EXPECT_NEAR(r14 - r12, r16 - r14, 1e-9);  // equal increments
  EXPECT_GT(r14, r12);
}

TEST(IndependentSystem, EstimatedTimesPickMappedMachines) {
  const EtcMatrix etc = quickEtc();
  const Mapping m({1, 0, 1, 0}, 2);
  const IndependentTaskSystem system(etc, m, 1.2);
  const auto c = system.estimatedTimes();
  EXPECT_DOUBLE_EQ(c[0], 8.0);
  EXPECT_DOUBLE_EQ(c[1], 3.0);
  EXPECT_DOUBLE_EQ(c[2], 2.0);
  EXPECT_DOUBLE_EQ(c[3], 5.0);
}

// ------------------------------------------------------- critical point

TEST(IndependentSystem, CriticalPointObservations) {
  const EtcMatrix etc = quickEtc();
  const Mapping m({0, 0, 1, 1}, 2);
  const IndependentTaskSystem system(etc, m, 1.2);
  const auto analysis = system.analyze();
  const auto cOrig = system.estimatedTimes();
  const auto cStar = system.criticalPoint();

  // Observation 1: only applications on the binding machine change.
  for (std::size_t i = 0; i < 4; ++i) {
    if (m.machineOf(i) == analysis.bindingMachine) {
      EXPECT_GT(cStar[i], cOrig[i]);
    } else {
      EXPECT_DOUBLE_EQ(cStar[i], cOrig[i]);
    }
  }
  // Observation 2: those applications share the same error.
  double sharedError = std::numeric_limits<double>::quiet_NaN();
  for (std::size_t i = 0; i < 4; ++i) {
    if (m.machineOf(i) == analysis.bindingMachine) {
      const double err = cStar[i] - cOrig[i];
      if (std::isnan(sharedError)) {
        sharedError = err;
      } else {
        EXPECT_NEAR(err, sharedError, 1e-12);
      }
    }
  }
  // The distance to C* is exactly the metric, and F_j* hits tau * M there.
  EXPECT_NEAR(num::distance2(cStar, cOrig), analysis.robustness, 1e-12);
  double fBinding = 0.0;
  for (std::size_t i = 0; i < 4; ++i) {
    if (m.machineOf(i) == analysis.bindingMachine) {
      fBinding += cStar[i];
    }
  }
  EXPECT_NEAR(fBinding, 1.2 * analysis.predictedMakespan, 1e-12);
}

// ------------------------------------------- agreement with the core

class Eq6VsGenericAnalyzer : public ::testing::TestWithParam<int> {};

TEST_P(Eq6VsGenericAnalyzer, ClosedFormMatchesFePiaAnalyzer) {
  Pcg32 rng(static_cast<std::uint64_t>(GetParam()));
  EtcOptions options;
  options.apps = 6 + rng.nextBounded(20);
  options.machines = 2 + rng.nextBounded(6);
  const EtcMatrix etc = generateEtc(options, rng);
  const Mapping mapping = randomMapping(options.apps, options.machines, rng);
  const double tau = 1.05 + 0.5 * rng.nextDouble();

  const IndependentTaskSystem system(etc, mapping, tau);
  const auto direct = system.analyze();
  const auto generic = system.toAnalyzer().analyze();
  EXPECT_NEAR(direct.robustness, generic.metric,
              1e-9 * std::max(1.0, direct.robustness));

  // And the per-machine radii agree feature by feature.
  std::size_t featureIndex = 0;
  const auto counts = mapping.countPerMachine();
  for (std::size_t j = 0; j < options.machines; ++j) {
    if (counts[j] == 0) {
      continue;
    }
    EXPECT_NEAR(system.robustnessRadius(j),
                generic.radii[featureIndex].radius, 1e-9)
        << "machine " << j;
    ++featureIndex;
  }
  EXPECT_EQ(featureIndex, generic.radii.size());
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, Eq6VsGenericAnalyzer,
                         ::testing::Range(0, 10));

// The metric's guarantee holds empirically (sampling oracle).
TEST(IndependentSystem, GuaranteeValidatedBySampling) {
  Pcg32 rng(31);
  EtcOptions options;
  const EtcMatrix etc = generateEtc(options, rng);
  const Mapping mapping = randomMapping(options.apps, options.machines, rng);
  const IndependentTaskSystem system(etc, mapping, 1.2);
  const auto analyzer = system.toAnalyzer();
  const double rho = system.analyze().robustness;
  const auto validation = core::validateRadius(analyzer, rho);
  EXPECT_EQ(validation.violationsInside, 0);
}

}  // namespace
}  // namespace robust::sched
