// Wire-protocol codec tests: round trips, the canonical-encoding content
// key, and hostile-byte rejection with the right categories. The decode
// side faces untrusted sockets, so every malformed shape must surface as a
// categorized util::ParseError — never a crash, never an allocation
// proportional to a lying count field.
#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "robust/core/compiled.hpp"
#include "robust/net/wire.hpp"
#include "robust/util/diagnostics.hpp"

namespace {

using robust::core::AnalysisInstance;
using robust::core::CompiledProblem;
using robust::core::ImpactFunction;
using robust::core::LinearConstraint;
using robust::core::MetricResult;
using robust::core::NormKind;
using robust::core::PerformanceFeature;
using robust::core::ProblemSpec;
using robust::core::ToleranceBounds;
using robust::net::FrameHeader;
using robust::net::FrameType;
using robust::net::WireLimits;
using robust::net::WireResult;
using robust::util::Diagnostics;
using robust::util::ParseError;
using robust::util::RejectCategory;

ProblemSpec sampleSpec() {
  ProblemSpec spec;
  spec.parameter.name = "pi";
  spec.parameter.origin = {1.0, 2.0, 3.0};
  spec.options.norm = NormKind::Weighted;
  spec.options.normWeights = {1.0, 0.5, 2.0};
  spec.features.push_back(PerformanceFeature{
      "phi_0", ImpactFunction::affine({1.0, 1.0, 1.0}, 0.5),
      ToleranceBounds::between(2.0, 12.0)});
  spec.features.push_back(PerformanceFeature{
      "phi_1", ImpactFunction::affine({2.0, 0.0, -1.0}, 0.0),
      ToleranceBounds::atMost(4.0)});
  LinearConstraint budget;
  budget.name = "budget";
  budget.coeffs = {1.0, 1.0, 1.0};
  budget.bound = 10.0;
  spec.constraints.push_back(budget);
  return spec;
}

RejectCategory decodeCategory(const std::vector<std::uint8_t>& payload) {
  const Diagnostics diag("test");
  const WireLimits limits;
  try {
    (void)robust::net::decodeProblemSpec(payload, limits, diag);
  } catch (const ParseError& e) {
    return e.diagnostic().category;
  }
  ADD_FAILURE() << "payload of " << payload.size()
                << " bytes decoded successfully";
  return RejectCategory::Other;
}

TEST(NetWire, FrameHeaderRoundTrip) {
  FrameHeader header;
  header.type = FrameType::Analyze;
  header.payloadBytes = 12345;
  header.requestId = 77;
  std::vector<std::uint8_t> bytes;
  robust::net::encodeFrameHeader(header, bytes);
  ASSERT_EQ(bytes.size(), robust::net::kHeaderBytes);

  const Diagnostics diag("test");
  const WireLimits limits;
  const FrameHeader back =
      robust::net::decodeFrameHeader(bytes, limits, diag);
  EXPECT_EQ(back.version, robust::net::kProtocolVersion);
  EXPECT_EQ(back.type, FrameType::Analyze);
  EXPECT_EQ(back.payloadBytes, 12345u);
  EXPECT_EQ(back.requestId, 77u);
}

TEST(NetWire, FrameHeaderRejectsHostileBytes) {
  const Diagnostics diag("test");
  const WireLimits limits;
  FrameHeader header;
  header.type = FrameType::Hello;

  std::vector<std::uint8_t> bytes;
  robust::net::encodeFrameHeader(header, bytes);
  bytes[0] ^= 0xff;  // magic
  EXPECT_THROW((void)robust::net::decodeFrameHeader(bytes, limits, diag),
               ParseError);
  try {
    (void)robust::net::decodeFrameHeader(bytes, limits, diag);
  } catch (const ParseError& e) {
    EXPECT_EQ(e.diagnostic().category, RejectCategory::Format);
  }

  bytes.clear();
  robust::net::encodeFrameHeader(header, bytes);
  bytes[4] = 99;  // version
  try {
    (void)robust::net::decodeFrameHeader(bytes, limits, diag);
    FAIL() << "bad version decoded";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.diagnostic().category, RejectCategory::Structure);
  }

  bytes.clear();
  robust::net::encodeFrameHeader(header, bytes);
  bytes[6] = 1;  // reserved
  try {
    (void)robust::net::decodeFrameHeader(bytes, limits, diag);
    FAIL() << "nonzero reserved decoded";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.diagnostic().category, RejectCategory::Structure);
  }

  bytes.clear();
  header.payloadBytes = limits.maxFrameBytes + 1;
  robust::net::encodeFrameHeader(header, bytes);
  try {
    (void)robust::net::decodeFrameHeader(bytes, limits, diag);
    FAIL() << "oversized payload decoded";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.diagnostic().category, RejectCategory::Domain);
  }
}

TEST(NetWire, HelloRoundTripAndRejects) {
  const Diagnostics diag("test");
  const WireLimits limits;
  std::vector<std::uint8_t> bytes;
  robust::net::encodeHello(7, "tenant-a", bytes);
  const robust::net::HelloRequest hello =
      robust::net::decodeHello(bytes, limits, diag);
  EXPECT_EQ(hello.declaredDemand, 7u);
  EXPECT_EQ(hello.tenant, "tenant-a");

  bytes.clear();
  robust::net::encodeHello(0, "t", bytes);
  try {
    (void)robust::net::decodeHello(bytes, limits, diag);
    FAIL() << "zero demand decoded";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.diagnostic().category, RejectCategory::Domain);
  }

  bytes.clear();
  robust::net::encodeHello(1, std::string("a\x01b", 3), bytes);
  try {
    (void)robust::net::decodeHello(bytes, limits, diag);
    FAIL() << "control character in tenant name decoded";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.diagnostic().category, RejectCategory::Domain);
  }

  bytes.clear();
  robust::net::encodeHello(1, "t", bytes);
  bytes.push_back(0);  // trailing byte
  try {
    (void)robust::net::decodeHello(bytes, limits, diag);
    FAIL() << "trailing bytes decoded";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.diagnostic().category, RejectCategory::Structure);
  }
}

TEST(NetWire, ProblemSpecRoundTripEvaluatesBitIdentically) {
  const ProblemSpec spec = sampleSpec();
  const std::vector<std::uint8_t> bytes =
      robust::net::encodeProblemSpec(spec);

  const Diagnostics diag("test");
  const WireLimits limits;
  const ProblemSpec back =
      robust::net::decodeProblemSpec(bytes, limits, diag);
  ASSERT_EQ(back.features.size(), spec.features.size());
  ASSERT_EQ(back.constraints.size(), spec.constraints.size());
  EXPECT_EQ(back.options.norm, NormKind::Weighted);

  const CompiledProblem original = CompiledProblem::compile(sampleSpec());
  const CompiledProblem decoded = CompiledProblem::compile(
      robust::net::decodeProblemSpec(bytes, limits, diag));

  // A batch of perturbed origins must answer with the same BITS through
  // either compilation — that is the daemon's core guarantee.
  std::vector<double> origins;
  for (int i = 0; i < 16; ++i) {
    origins.push_back(1.0 + 0.1 * i);
    origins.push_back(2.0 - 0.05 * i);
    origins.push_back(3.0 + 0.01 * i * i);
  }
  std::vector<AnalysisInstance> instances(16);
  for (int i = 0; i < 16; ++i) {
    instances[i].origin = std::span<const double>(origins.data() + i * 3, 3);
  }
  const std::vector<MetricResult> a = original.analyzeBatchMetric(instances);
  const std::vector<MetricResult> b = decoded.analyzeBatchMetric(instances);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(std::memcmp(&a[i].metric, &b[i].metric, sizeof(double)), 0)
        << "instance " << i;
    EXPECT_EQ(a[i].bindingFeature, b[i].bindingFeature);
    EXPECT_EQ(a[i].floored, b[i].floored);
    EXPECT_EQ(original.originFeasible(instances[i].origin),
              decoded.originFeasible(instances[i].origin));
  }
}

TEST(NetWire, CanonicalEncodingIsAStableContentKey) {
  // Same spec encoded twice -> identical bytes -> identical key; any
  // field change moves the key. This is what makes cross-tenant cache
  // sharing sound.
  const std::vector<std::uint8_t> a =
      robust::net::encodeProblemSpec(sampleSpec());
  const std::vector<std::uint8_t> b =
      robust::net::encodeProblemSpec(sampleSpec());
  EXPECT_EQ(a, b);
  EXPECT_EQ(robust::net::fnv1a(a), robust::net::fnv1a(b));

  ProblemSpec tweaked = sampleSpec();
  tweaked.parameter.origin[1] += 1e-9;
  const std::vector<std::uint8_t> c =
      robust::net::encodeProblemSpec(tweaked);
  EXPECT_NE(robust::net::fnv1a(a), robust::net::fnv1a(c));
}

TEST(NetWire, Fnv1aMatchesTheReferenceVectors) {
  // Published FNV-1a 64-bit test vectors; the key must be stable across
  // platforms and releases or every client-side cache key breaks.
  const std::vector<std::uint8_t> empty;
  EXPECT_EQ(robust::net::fnv1a(empty), 0xcbf29ce484222325ULL);
  const std::string abc = "abc";
  const std::vector<std::uint8_t> abcBytes(abc.begin(), abc.end());
  EXPECT_EQ(robust::net::fnv1a(abcBytes), 0xe71fa2190541574bULL);
}

TEST(NetWire, EveryStrictPrefixOfASpecIsRejected) {
  const std::vector<std::uint8_t> bytes =
      robust::net::encodeProblemSpec(sampleSpec());
  const Diagnostics diag("test");
  const WireLimits limits;
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const std::vector<std::uint8_t> prefix(bytes.begin(),
                                           bytes.begin() + cut);
    try {
      (void)robust::net::decodeProblemSpec(prefix, limits, diag);
      ADD_FAILURE() << "prefix of " << cut << " bytes decoded successfully";
    } catch (const ParseError& e) {
      // Short prefixes die on the shape cross-check (Structure) or on a
      // field under-run (Truncated); nothing else is acceptable.
      EXPECT_TRUE(e.diagnostic().category == RejectCategory::Truncated ||
                  e.diagnostic().category == RejectCategory::Structure)
          << "prefix " << cut << ": "
          << robust::util::rejectCategoryName(e.diagnostic().category);
    }
  }
}

TEST(NetWire, HostileSpecFieldsDrawTheRightCategories) {
  const std::vector<std::uint8_t> good =
      robust::net::encodeProblemSpec(sampleSpec());

  {
    std::vector<std::uint8_t> bad = good;
    bad[0] = bad[1] = bad[2] = bad[3] = 0;  // dim = 0
    EXPECT_EQ(decodeCategory(bad), RejectCategory::Domain);
  }
  {
    std::vector<std::uint8_t> bad = good;
    std::uint32_t lie = 1u << 30;  // features the payload cannot hold
    std::memcpy(bad.data() + 4, &lie, 4);
    EXPECT_EQ(decodeCategory(bad), RejectCategory::Domain);
  }
  {
    std::vector<std::uint8_t> bad = good;
    std::uint32_t lie = 60000;  // under the cap but over the byte budget
    std::memcpy(bad.data() + 4, &lie, 4);
    EXPECT_EQ(decodeCategory(bad), RejectCategory::Structure);
  }
  {
    std::vector<std::uint8_t> bad = good;
    bad[12] = 9;  // norm kind
    EXPECT_EQ(decodeCategory(bad), RejectCategory::Domain);
  }
  {
    std::vector<std::uint8_t> bad = good;
    bad[14] = 1;  // reserved
    EXPECT_EQ(decodeCategory(bad), RejectCategory::Structure);
  }
  {
    std::vector<std::uint8_t> bad = good;
    const double nan = std::nan("");
    std::memcpy(bad.data() + 16, &nan, 8);  // first origin component
    EXPECT_EQ(decodeCategory(bad), RejectCategory::Domain);
  }
  {
    std::vector<std::uint8_t> bad = good;
    bad.push_back(0);  // trailing byte
    EXPECT_EQ(decodeCategory(bad), RejectCategory::Structure);
  }
}

TEST(NetWire, AnalyzeHeadAndResultRoundTrip) {
  const Diagnostics diag("test");
  const WireLimits limits;
  const std::vector<double> origins = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  std::vector<std::uint8_t> bytes;
  robust::net::encodeAnalyze(0xfeedfaceULL, 2, origins, bytes);
  ASSERT_EQ(bytes.size(), robust::net::kAnalyzeHeadBytes + 6 * 8);
  const robust::net::AnalyzeHead head =
      robust::net::decodeAnalyzeHead(bytes, limits, diag);
  EXPECT_EQ(head.key, 0xfeedfaceULL);
  EXPECT_EQ(head.instanceCount, 2u);

  std::vector<WireResult> results(2);
  results[0].rho = 1.25;
  results[0].bindingFeature = 3;
  results[0].floored = true;
  results[1].rho = std::numeric_limits<double>::infinity();
  results[1].infeasibleOrigin = true;
  std::vector<std::uint8_t> encoded;
  robust::net::encodeResult(results, encoded);
  const std::vector<WireResult> back =
      robust::net::decodeResult(encoded, limits, diag);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].rho, 1.25);
  EXPECT_EQ(back[0].bindingFeature, 3u);
  EXPECT_TRUE(back[0].floored);
  EXPECT_FALSE(back[0].infeasibleOrigin);
  EXPECT_TRUE(std::isinf(back[1].rho));
  EXPECT_TRUE(back[1].infeasibleOrigin);
  EXPECT_FALSE(back[1].floored);

  // A result count that exceeds what the payload holds must refuse before
  // allocating.
  std::vector<std::uint8_t> lying = encoded;
  std::uint32_t lie = 1000000;
  std::memcpy(lying.data(), &lie, 4);
  try {
    (void)robust::net::decodeResult(lying, limits, diag);
    FAIL() << "lying result count decoded";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.diagnostic().category, RejectCategory::Truncated);
  }
}

TEST(NetWire, RejectPayloadRoundTrip) {
  const Diagnostics diag("test");
  robust::net::RejectInfo info;
  info.category = RejectCategory::Structure;
  info.fatal = true;
  info.message = "spec:1:5: feature count 0 outside [1, 65536]";
  std::vector<std::uint8_t> bytes;
  robust::net::encodeReject(info, bytes);
  const robust::net::RejectInfo back =
      robust::net::decodeReject(bytes, diag);
  EXPECT_EQ(back.category, RejectCategory::Structure);
  EXPECT_TRUE(back.fatal);
  EXPECT_EQ(back.message, info.message);
}

TEST(NetWire, AdminRequestRoundTrip) {
  const Diagnostics diag("test");
  std::vector<std::uint8_t> bytes;
  robust::net::encodeAdminRequest(robust::net::kStatsSchemaVersion, bytes);
  EXPECT_EQ(bytes.size(), 8u);  // u32 version + u32 reserved
  EXPECT_EQ(robust::net::decodeAdminRequest(bytes, diag),
            robust::net::kStatsSchemaVersion);
}

TEST(NetWire, AdminRequestRejectsHostileBytes) {
  const Diagnostics diag("test");
  const auto category = [&diag](const std::vector<std::uint8_t>& payload) {
    try {
      (void)robust::net::decodeAdminRequest(payload, diag);
    } catch (const ParseError& e) {
      return e.diagnostic().category;
    }
    ADD_FAILURE() << "admin payload of " << payload.size()
                  << " bytes decoded successfully";
    return RejectCategory::Other;
  };

  std::vector<std::uint8_t> good;
  robust::net::encodeAdminRequest(robust::net::kStatsSchemaVersion, good);

  // A schema version the server does not speak: Structure, and the message
  // names both versions so the operator knows which side to upgrade.
  std::vector<std::uint8_t> badVersion;
  robust::net::encodeAdminRequest(robust::net::kStatsSchemaVersion + 9,
                                  badVersion);
  EXPECT_EQ(category(badVersion), RejectCategory::Structure);
  try {
    (void)robust::net::decodeAdminRequest(badVersion, diag);
  } catch (const ParseError& e) {
    EXPECT_NE(e.diagnostic().message.find("schema version"),
              std::string::npos);
  }

  // Nonzero reserved bits: Structure.
  std::vector<std::uint8_t> reserved = good;
  reserved[5] = 1;
  EXPECT_EQ(category(reserved), RejectCategory::Structure);

  // Trailing garbage after a well-formed request: Structure.
  std::vector<std::uint8_t> trailing = good;
  trailing.push_back(0xab);
  EXPECT_EQ(category(trailing), RejectCategory::Structure);

  // Every strict prefix is an underrun: Truncated, never a crash.
  for (std::size_t n = 0; n < good.size(); ++n) {
    const std::vector<std::uint8_t> prefix(good.begin(),
                                           good.begin() + static_cast<long>(n));
    EXPECT_EQ(category(prefix), RejectCategory::Truncated)
        << "prefix of " << n << " bytes";
  }
}

TEST(NetWire, AdminFrameTypesAreClientFrames) {
  EXPECT_TRUE(robust::net::isClientFrameType(
      static_cast<std::uint8_t>(FrameType::Stats)));
  EXPECT_TRUE(robust::net::isClientFrameType(
      static_cast<std::uint8_t>(FrameType::TraceDump)));
  EXPECT_FALSE(robust::net::isClientFrameType(
      static_cast<std::uint8_t>(FrameType::StatsOk)));
  EXPECT_FALSE(robust::net::isClientFrameType(
      static_cast<std::uint8_t>(FrameType::TraceDumpOk)));
}

TEST(NetWire, EncodeRefusesSpecsThatCannotCrossTheWire) {
  ProblemSpec callable = sampleSpec();
  callable.features[0].impact = ImpactFunction::callable(
      [](std::span<const double> x) { return x[0]; });
  EXPECT_THROW((void)robust::net::encodeProblemSpec(callable),
               robust::InvalidArgumentError);

  ProblemSpec unbounded = sampleSpec();
  unbounded.features[0].bounds = ToleranceBounds{};
  EXPECT_THROW((void)robust::net::encodeProblemSpec(unbounded),
               robust::InvalidArgumentError);
}

}  // namespace
