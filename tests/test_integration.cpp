// Integration tests: the full Fig. 3 and Fig. 4 experiment pipelines,
// cross-module agreement, determinism across thread counts, and the
// paper's qualitative findings as assertions.
#include <gtest/gtest.h>

#include <cmath>

#include "robust/core/validation.hpp"
#include "robust/hiperd/experiment.hpp"
#include "robust/scheduling/experiment.hpp"
#include "robust/util/stats.hpp"

namespace robust {
namespace {

// ------------------------------------------------------------- Fig. 3

class Fig3Pipeline : public ::testing::Test {
 protected:
  static const std::vector<sched::Fig3Row>& rows() {
    static const std::vector<sched::Fig3Row> cached = [] {
      sched::Fig3Options options;
      options.mappings = 300;
      options.seed = 77;
      return sched::runFig3(options);
    }();
    return cached;
  }
};

TEST_F(Fig3Pipeline, ProducesRequestedRows) {
  EXPECT_EQ(rows().size(), 300u);
  for (const auto& row : rows()) {
    EXPECT_GT(row.makespan, 0.0);
    EXPECT_GE(row.robustness, 0.0);
    EXPECT_GE(row.loadBalance, 0.0);
    EXPECT_LE(row.loadBalance, 1.0);
    EXPECT_GE(row.maxMachineCount, row.makespanMachineCount);
  }
}

TEST_F(Fig3Pipeline, RobustnessCorrelatesWithMakespan) {
  std::vector<double> ms;
  std::vector<double> rho;
  for (const auto& row : rows()) {
    ms.push_back(row.makespan);
    rho.push_back(row.robustness);
  }
  EXPECT_GT(pearson(ms, rho), 0.5);  // "generally correlated"
}

TEST_F(Fig3Pipeline, S1ClustersLieExactlyOnTheirLines) {
  // Section 4.2: for mappings in S1(x), rho = (tau-1) * M / sqrt(x).
  const double tau = 1.2;
  for (const auto& row : rows()) {
    const double line =
        (tau - 1.0) * row.makespan /
        std::sqrt(static_cast<double>(row.maxMachineCount));
    if (row.inS1) {
      EXPECT_NEAR(row.robustness, line, 1e-9 * row.makespan);
    } else {
      // Outliers lie strictly below the line for their own n(m(C)).
      const double ownLine =
          (tau - 1.0) * row.makespan /
          std::sqrt(static_cast<double>(row.makespanMachineCount));
      EXPECT_LE(row.robustness, ownLine + 1e-9);
    }
  }
}

TEST_F(Fig3Pipeline, SimilarMakespansDifferInRobustness) {
  // The paper's headline: the metric separates mappings that makespan
  // cannot. Find at least one pair within 2% makespan whose robustness
  // differs by >= 40%.
  const auto& r = rows();
  bool found = false;
  for (std::size_t i = 0; i < r.size() && !found; ++i) {
    for (std::size_t j = i + 1; j < r.size() && !found; ++j) {
      const double msRatio = r[i].makespan / r[j].makespan;
      if (msRatio < 0.98 || msRatio > 1.02) {
        continue;
      }
      const double lo = std::min(r[i].robustness, r[j].robustness);
      const double hi = std::max(r[i].robustness, r[j].robustness);
      found = lo > 0.0 && hi / lo > 1.4;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Fig3Determinism, IndependentOfThreadCount) {
  sched::Fig3Options options;
  options.mappings = 60;
  options.seed = 99;
  options.threads = 1;
  const auto serial = sched::runFig3(options);
  options.threads = 4;
  const auto parallel = sched::runFig3(options);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial[i].makespan, parallel[i].makespan);
    EXPECT_DOUBLE_EQ(serial[i].robustness, parallel[i].robustness);
  }
}

// ------------------------------------------------------------- Fig. 4

class Fig4Pipeline : public ::testing::Test {
 protected:
  static const hiperd::Fig4Result& result() {
    static const hiperd::Fig4Result cached = [] {
      hiperd::Fig4Options options;
      options.mappings = 150;
      options.seed = 2003;
      return hiperd::runFig4(options);
    }();
    return cached;
  }
};

TEST_F(Fig4Pipeline, ProducesAlignedRowsAndMappings) {
  EXPECT_EQ(result().rows.size(), 150u);
  EXPECT_EQ(result().mappings.size(), 150u);
  EXPECT_EQ(result().generated.scenario.graph.paths().size(), 19u);
}

TEST_F(Fig4Pipeline, SlackAndRobustnessSignsAgree) {
  for (const auto& row : result().rows) {
    if (row.slack < 0.0) {
      EXPECT_EQ(row.robustness, 0.0);
    }
    EXPECT_EQ(row.robustness, std::floor(row.robustness));  // floored metric
  }
}

TEST_F(Fig4Pipeline, RobustnessCorrelatesWithSlack) {
  std::vector<double> slack;
  std::vector<double> rho;
  for (const auto& row : result().rows) {
    slack.push_back(row.slack);
    rho.push_back(row.robustness);
  }
  EXPECT_GT(pearson(slack, rho), 0.5);
}

TEST_F(Fig4Pipeline, MostMappingsFeasibleAtOperatingPoint) {
  std::size_t feasible = 0;
  for (const auto& row : result().rows) {
    feasible += row.slack >= 0.0;
  }
  // Calibration targets put the random-mapping population mostly inside
  // the feasible region (the paper's scatter has no infeasible points).
  EXPECT_GT(feasible * 10, result().rows.size() * 8);  // > 80%
}

TEST_F(Fig4Pipeline, Table2PairExists) {
  const auto [lo, hi] = hiperd::findTable2Pair(result().rows, 0.01, 5.0);
  const auto& a = result().rows[lo];
  const auto& b = result().rows[hi];
  EXPECT_LE(std::fabs(a.slack - b.slack), 0.01);
  EXPECT_GE(b.robustness / a.robustness, 1.5);
}

TEST_F(Fig4Pipeline, LambdaStarMatchesRadius) {
  // For every feasible mapping the reported critical loads lambda* must lie
  // at Euclidean distance >= metric (the metric is the floored minimum).
  const auto& scenario = result().generated.scenario;
  for (std::size_t m = 0; m < result().rows.size(); ++m) {
    const auto& row = result().rows[m];
    if (row.slack < 0.0 || row.lambdaStar.empty()) {
      continue;
    }
    const double dist = num::distance2(row.lambdaStar, scenario.lambdaOrig);
    EXPECT_GE(dist + 1e-9, row.robustness);
    EXPECT_LE(dist, row.robustness + 1.0 + 1e-9);  // within the floor gap
  }
}

TEST(Fig4Determinism, IndependentOfThreadCount) {
  hiperd::Fig4Options options;
  options.mappings = 40;
  options.seed = 5;
  options.threads = 1;
  const auto serial = hiperd::runFig4(options);
  options.threads = 4;
  const auto parallel = hiperd::runFig4(options);
  ASSERT_EQ(serial.rows.size(), parallel.rows.size());
  for (std::size_t i = 0; i < serial.rows.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial.rows[i].slack, parallel.rows[i].slack);
    EXPECT_DOUBLE_EQ(serial.rows[i].robustness, parallel.rows[i].robustness);
  }
}

// ------------------------------------------- cross-module consistency

TEST(CrossModule, HiperdAnalyticRadiiMatchMonteCarloOracle) {
  hiperd::Fig4Options options;
  options.mappings = 1;
  options.seed = 31;
  const auto result = hiperd::runFig4(options);
  const hiperd::HiperdSystem system(result.generated.scenario,
                                    result.mappings[0]);

  core::AnalyzerOptions analytic;
  core::AnalyzerOptions oracle;
  oracle.solver = core::SolverKind::MonteCarlo;
  oracle.solverOptions.samples = 8192;
  const auto exact = system.toAnalyzer(analytic).analyze();
  const auto sampled = system.toAnalyzer(oracle).analyze();
  // Unfloored radii: the oracle's unfloored metric must upper-bound the
  // exact unfloored minimum and be close to it.
  const double exactMin = exact.radii[exact.bindingFeature].radius;
  const double sampledMin = sampled.radii[sampled.bindingFeature].radius;
  EXPECT_GE(sampledMin, exactMin - 1e-9);
  EXPECT_LE(sampledMin, exactMin * 1.25);
}

TEST(CrossModule, ValidationConfirmsHiperdMetric) {
  hiperd::Fig4Options options;
  options.mappings = 3;
  options.seed = 57;
  const auto result = hiperd::runFig4(options);
  for (std::size_t m = 0; m < result.mappings.size(); ++m) {
    if (result.rows[m].slack < 0.0) {
      continue;
    }
    const hiperd::HiperdSystem system(result.generated.scenario,
                                      result.mappings[m]);
    const auto analyzer = system.toAnalyzer();
    core::ValidationOptions vopts;
    vopts.samples = 500;
    const auto validation = core::validateRadius(
        analyzer, result.rows[m].robustness, vopts);
    EXPECT_EQ(validation.violationsInside, 0) << "mapping " << m;
  }
}

}  // namespace
}  // namespace robust
