// CompiledScenario equivalence suite: the compiled per-mapping analysis must
// be bit-identical to the legacy derivation
// (HiperdSystem(scenario, mapping).toAnalyzer(options).analyze()), which
// builds its feature list independently at every call.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "robust/hiperd/compiled_scenario.hpp"
#include "robust/hiperd/generator.hpp"
#include "robust/hiperd/system.hpp"
#include "robust/util/error.hpp"
#include "robust/util/rng.hpp"

namespace robust::hiperd {
namespace {

bool bitEq(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

void expectSameReport(const core::RobustnessReport& got,
                      const core::RobustnessReport& want) {
  EXPECT_TRUE(bitEq(got.metric, want.metric))
      << got.metric << " vs " << want.metric;
  EXPECT_EQ(got.bindingFeature, want.bindingFeature);
  EXPECT_EQ(got.floored, want.floored);
  ASSERT_EQ(got.radii.size(), want.radii.size());
  for (std::size_t i = 0; i < got.radii.size(); ++i) {
    const core::RadiusReport& g = got.radii[i];
    const core::RadiusReport& w = want.radii[i];
    EXPECT_EQ(g.feature, w.feature);
    EXPECT_TRUE(bitEq(g.radius, w.radius)) << g.feature;
    EXPECT_TRUE(bitEq(g.boundaryLevel, w.boundaryLevel)) << g.feature;
    EXPECT_EQ(g.boundReachable, w.boundReachable) << g.feature;
    EXPECT_EQ(g.method, w.method) << g.feature;
    ASSERT_EQ(g.boundaryPoint.size(), w.boundaryPoint.size()) << g.feature;
    for (std::size_t k = 0; k < g.boundaryPoint.size(); ++k) {
      EXPECT_TRUE(bitEq(g.boundaryPoint[k], w.boundaryPoint[k]))
          << g.feature << " boundaryPoint[" << k << "]";
    }
  }
}

NodeRef sensor(std::size_t i) { return NodeRef{NodeKind::Sensor, i}; }
NodeRef app(std::size_t i) { return NodeRef{NodeKind::Application, i}; }
NodeRef actuator(std::size_t i) { return NodeRef{NodeKind::Actuator, i}; }

/// The hand-computable mini system of test_hiperd_system, with every machine
/// slot populated with real coefficients so arbitrary mappings are valid.
HiperdScenario miniScenario() {
  HiperdScenario scenario;
  SystemGraph& g = scenario.graph;
  g.addSensor("s0", 1.0 / 1000.0);
  g.addSensor("s1", 1.0 / 2000.0);
  g.addApplication("a0");
  g.addApplication("a1");
  g.addApplication("a2");
  g.addApplication("a3");
  g.addActuator("act0");
  g.addActuator("act1");
  g.addEdge(sensor(0), app(0));
  g.addEdge(app(0), app(1), /*trigger=*/true);
  g.addEdge(app(1), actuator(0));
  g.addEdge(sensor(1), app(2));
  g.addEdge(app(2), app(1), /*trigger=*/false);
  g.addEdge(app(2), app(3));
  g.addEdge(app(3), actuator(1));
  g.finalize();

  scenario.machines = 2;
  scenario.lambdaOrig = {10.0, 20.0};
  scenario.compute = {
      {LoadFunction::linear({1.0, 0.0}), LoadFunction::linear({1.5, 0.0})},
      {LoadFunction::linear({2.0, 1.0}), LoadFunction::linear({2.5, 0.5})},
      {LoadFunction::linear({0.5, 2.5}), LoadFunction::linear({0.0, 3.0})},
      {LoadFunction::linear({0.0, 1.5}), LoadFunction::linear({0.0, 1.0})},
  };
  scenario.comm.assign(g.edgeCount(), LoadFunction::zero(2));
  scenario.comm[4] = LoadFunction::linear({0.0, 0.5});
  scenario.latencyLimits.assign(g.paths().size(), 500.0);
  return scenario;
}

TEST(CompiledScenario, MatchesLegacyOnMiniScenario) {
  const HiperdScenario scenario = miniScenario();
  const CompiledScenario compiled = scenario.compile();
  EXPECT_TRUE(compiled.fastPath());
  const sched::Mapping mapping({0, 0, 1, 1}, 2);
  expectSameReport(compiled.analyze(mapping),
                   HiperdSystem(scenario, mapping).toAnalyzer().analyze());
}

TEST(CompiledScenario, MatchesLegacyAcrossRandomMappingsWithReusedWorkspace) {
  const auto generated = generateScenario(ScenarioOptions{}, 2003);
  const HiperdScenario& scenario = generated.scenario;
  const CompiledScenario compiled = scenario.compile();
  EXPECT_TRUE(compiled.fastPath());

  Pcg32 rng(17);
  ScenarioWorkspace workspace;
  for (int trial = 0; trial < 40; ++trial) {
    const sched::Mapping mapping = sched::randomMapping(
        scenario.graph.applicationCount(), scenario.machines, rng);
    const core::RobustnessReport& got = compiled.analyze(mapping, workspace);
    const core::RobustnessReport want =
        HiperdSystem(scenario, mapping).toAnalyzer().analyze();
    expectSameReport(got, want);
  }
}

TEST(CompiledScenario, MatchesLegacyUnderEveryNorm) {
  const HiperdScenario scenario = miniScenario();
  Pcg32 rng(5);
  for (const core::NormKind norm :
       {core::NormKind::L1, core::NormKind::L2, core::NormKind::LInf,
        core::NormKind::Weighted}) {
    core::AnalyzerOptions options;
    options.norm = norm;
    if (norm == core::NormKind::Weighted) {
      options.normWeights = {1.5, 0.25};
    }
    const CompiledScenario compiled = scenario.compile(options);
    for (int trial = 0; trial < 10; ++trial) {
      const sched::Mapping mapping = sched::randomMapping(
          scenario.graph.applicationCount(), scenario.machines, rng);
      expectSameReport(
          compiled.analyze(mapping),
          HiperdSystem(scenario, mapping).toAnalyzer(options).analyze());
    }
  }
}

TEST(CompiledScenario, NonLinearScenarioFallsBackIdentically) {
  HiperdScenario scenario = miniScenario();
  scenario.compute[3][1] = LoadFunction::general(
      [](std::span<const double> l) { return 0.05 * l[1] * l[1]; },
      [](std::span<const double> l) {
        return num::Vec{0.0, 0.1 * l[1]};
      });
  const CompiledScenario compiled = scenario.compile();
  EXPECT_FALSE(compiled.fastPath());

  Pcg32 rng(3);
  ScenarioWorkspace workspace;
  for (int trial = 0; trial < 5; ++trial) {
    const sched::Mapping mapping = sched::randomMapping(
        scenario.graph.applicationCount(), scenario.machines, rng);
    expectSameReport(compiled.analyze(mapping, workspace),
                     HiperdSystem(scenario, mapping).toAnalyzer().analyze());
  }
}

TEST(CompiledScenario, IterativeSolverRequestFallsBackIdentically) {
  const HiperdScenario scenario = miniScenario();
  core::AnalyzerOptions options;
  options.solver = core::SolverKind::KktNewton;
  const CompiledScenario compiled = scenario.compile(options);
  EXPECT_FALSE(compiled.fastPath());
  const sched::Mapping mapping({0, 1, 0, 1}, 2);
  expectSameReport(
      compiled.analyze(mapping),
      HiperdSystem(scenario, mapping).toAnalyzer(options).analyze());
}

TEST(CompiledScenario, AnalyzeMappingsDeterministicAcrossThreadCounts) {
  const auto generated = generateScenario(ScenarioOptions{}, 7);
  const HiperdScenario& scenario = generated.scenario;
  const CompiledScenario compiled = scenario.compile();

  Pcg32 rng(29);
  std::vector<sched::Mapping> mappings;
  for (int i = 0; i < 23; ++i) {
    mappings.push_back(sched::randomMapping(
        scenario.graph.applicationCount(), scenario.machines, rng));
  }

  ScenarioWorkspace workspace;
  std::vector<core::RobustnessReport> serial;
  for (const auto& mapping : mappings) {
    serial.push_back(compiled.analyze(mapping, workspace));
  }
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{5}, std::size_t{0}}) {
    const auto batch = compiled.analyzeMappings(mappings, threads);
    ASSERT_EQ(batch.size(), serial.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      expectSameReport(batch[i], serial[i]);
    }
  }
}

TEST(CompiledScenario, ThroughputBoundsMatchSystem) {
  const HiperdScenario scenario = miniScenario();
  const CompiledScenario compiled = scenario.compile();
  const HiperdSystem system(scenario, sched::Mapping({0, 0, 1, 1}, 2));
  for (std::size_t i = 0; i < scenario.graph.applicationCount(); ++i) {
    EXPECT_TRUE(bitEq(compiled.throughputBound(i), system.throughputBound(i)));
  }
  EXPECT_THROW((void)compiled.throughputBound(99), InvalidArgumentError);
}

TEST(CompiledScenario, RejectsBadInputs) {
  const HiperdScenario scenario = miniScenario();
  core::AnalyzerOptions badWeights;
  badWeights.norm = core::NormKind::Weighted;  // weights missing
  EXPECT_THROW((void)scenario.compile(badWeights), InvalidArgumentError);

  const CompiledScenario compiled = scenario.compile();
  EXPECT_THROW((void)compiled.analyze(sched::Mapping({0, 0, 1}, 2)),
               InvalidArgumentError);
  EXPECT_THROW((void)compiled.analyze(sched::Mapping({0, 0, 1, 2}, 3)),
               InvalidArgumentError);
}

}  // namespace
}  // namespace robust::hiperd
