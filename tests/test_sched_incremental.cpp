// Tests for the incremental mapping-evaluation engine: exactness against
// IndependentTaskSystem::analyze() under randomized move/swap/commit/revert
// sequences, agreement of the dense and sorted-structure paths, and
// bit-identical equivalence of the incremental + parallel optimizer
// overloads with their generic (from-scratch objective) counterparts.
#include <gtest/gtest.h>

#include <vector>

#include "robust/scheduling/heuristics.hpp"
#include "robust/scheduling/incremental.hpp"
#include "robust/scheduling/independent_system.hpp"
#include "robust/util/error.hpp"

namespace robust::sched {
namespace {

EtcMatrix randomEtc(std::uint64_t seed, std::size_t apps,
                    std::size_t machines) {
  EtcOptions options;
  options.apps = apps;
  options.machines = machines;
  Pcg32 rng(seed);
  return generateEtc(options, rng);
}

MakespanRobustness analyzeMapping(const EtcMatrix& etc, const Mapping& mapping,
                                  double tau) {
  return IndependentTaskSystem(etc, mapping, tau).analyze();
}

void expectExactMatch(const EvalResult& result,
                      const MakespanRobustness& reference,
                      const char* context) {
  ASSERT_EQ(result.makespan, reference.predictedMakespan) << context;
  ASSERT_EQ(result.robustness, reference.robustness) << context;
  ASSERT_EQ(result.bindingMachine, reference.bindingMachine) << context;
}

/// Drives `sequences` random op sequences of `steps` tryMove/trySwap
/// followed by commit or revert, asserting after EVERY step that both the
/// tried result and the committed state exactly match a from-scratch
/// analyze() (same makespan, same Eq. 6/7 metric, same binding machine).
void runPropertySequences(const EtcMatrix& etc, double tau,
                          const IncrementalOptions& options,
                          std::uint64_t seed, int sequences, int steps) {
  Pcg32 rng(seed, /*stream=*/17);
  for (int s = 0; s < sequences; ++s) {
    Mapping shadow = randomMapping(etc.apps(), etc.machines(), rng);
    IncrementalEvaluator evaluator(etc, shadow, tau, options);
    expectExactMatch(evaluator.current(), analyzeMapping(etc, shadow, tau),
                     "initial state");
    for (int step = 0; step < steps; ++step) {
      const bool isSwap = rng.nextDouble() < 0.4;
      Mapping candidate = shadow;
      EvalResult tried;
      if (isSwap) {
        const auto a = static_cast<std::size_t>(
            rng.nextBounded(static_cast<std::uint32_t>(etc.apps())));
        const auto b = static_cast<std::size_t>(
            rng.nextBounded(static_cast<std::uint32_t>(etc.apps())));
        const std::size_t ma = candidate.machineOf(a);
        candidate.assign(a, candidate.machineOf(b));
        candidate.assign(b, ma);
        tried = evaluator.trySwap(a, b);
      } else {
        const auto app = static_cast<std::size_t>(
            rng.nextBounded(static_cast<std::uint32_t>(etc.apps())));
        const auto machine = static_cast<std::size_t>(
            rng.nextBounded(static_cast<std::uint32_t>(etc.machines())));
        candidate.assign(app, machine);
        tried = evaluator.tryMove(app, machine);
      }
      expectExactMatch(tried, analyzeMapping(etc, candidate, tau),
                       "tried candidate");
      if (rng.nextDouble() < 0.5) {
        evaluator.commit();
        shadow = candidate;
      } else {
        evaluator.revert();
      }
      ASSERT_EQ(evaluator.mapping().assignment(), shadow.assignment());
      expectExactMatch(evaluator.current(), analyzeMapping(etc, shadow, tau),
                       "committed state");
    }
  }
}

// ------------------------------------------------------ exactness property

TEST(IncrementalEvaluator, MatchesAnalyzeOnRandomSequencesDensePath) {
  // 6 instances x 100 sequences x 25 steps (dense small-machine path).
  int config = 0;
  for (const auto [apps, machines] :
       {std::pair<std::size_t, std::size_t>{20, 5},
        {8, 3},
        {40, 8},
        {12, 12},
        {30, 2},
        {25, 7}}) {
    runPropertySequences(randomEtc(100 + config, apps, machines), 1.2, {},
                         /*seed=*/200 + config, /*sequences=*/100,
                         /*steps=*/25);
    ++config;
  }
}

TEST(IncrementalEvaluator, MatchesAnalyzeOnRandomSequencesSortedPath) {
  // Force the sorted-structure path (threshold 0) on the same small
  // instances, plus a genuinely large fleet; 5 x 100 sequences x 25 steps.
  IncrementalOptions sorted;
  sorted.denseMachineThreshold = 0;
  int config = 0;
  for (const auto [apps, machines] :
       {std::pair<std::size_t, std::size_t>{20, 5},
        {8, 3},
        {40, 8},
        {15, 15},
        {120, 48}}) {
    runPropertySequences(randomEtc(300 + config, apps, machines), 1.3, sorted,
                         /*seed=*/400 + config, /*sequences=*/100,
                         /*steps=*/25);
    ++config;
  }
}

TEST(IncrementalEvaluator, TauOneAndUniformTiesStayExact) {
  // tau = 1 makes every radius hit zero at the binding machine, and a
  // uniform ETC creates systematic load/radius ties — the tie-breaking
  // (lowest machine index, as analyze() scans) must survive both paths.
  EtcMatrix etc(12, 6);
  for (std::size_t i = 0; i < 12; ++i) {
    for (std::size_t j = 0; j < 6; ++j) {
      etc(i, j) = 4.0;
    }
  }
  runPropertySequences(etc, 1.0, {}, /*seed=*/7, /*sequences=*/50,
                       /*steps=*/20);
  IncrementalOptions sorted;
  sorted.denseMachineThreshold = 0;
  runPropertySequences(etc, 1.0, sorted, /*seed=*/8, /*sequences=*/50,
                       /*steps=*/20);
}

TEST(ScratchEvaluator, MatchesAnalyzeOnRandomAssignments) {
  const EtcMatrix etc = randomEtc(9, 30, 6);
  ScratchEvaluator scratch(etc, 1.2);
  Pcg32 rng(10);
  for (int draw = 0; draw < 200; ++draw) {
    const Mapping mapping = randomMapping(etc.apps(), etc.machines(), rng);
    const EvalResult result = scratch.evaluate(mapping.assignment());
    expectExactMatch(result, analyzeMapping(etc, mapping, 1.2), "scratch");
  }
  EXPECT_THROW((void)ScratchEvaluator(etc, 0.5), InvalidArgumentError);
}

// -------------------------------------------------------------- protocol

TEST(IncrementalEvaluator, ProtocolEdgeCases) {
  const EtcMatrix etc = randomEtc(11, 10, 4);
  Pcg32 rng(12);
  const Mapping start = randomMapping(etc.apps(), etc.machines(), rng);
  IncrementalEvaluator evaluator(etc, start, 1.2);

  // Nothing staged: commit is a no-op.
  EXPECT_FALSE(evaluator.commit());

  // A no-op move (target == current machine) returns current and stages
  // nothing; same for a swap within one machine.
  const EvalResult before = evaluator.current();
  EvalResult result = evaluator.tryMove(0, start.machineOf(0));
  EXPECT_EQ(result.makespan, before.makespan);
  EXPECT_FALSE(evaluator.commit());
  result = evaluator.trySwap(3, 3);
  EXPECT_EQ(result.robustness, before.robustness);
  EXPECT_FALSE(evaluator.commit());

  // A later try overwrites an earlier staged candidate.
  const std::size_t target0 = (start.machineOf(0) + 1) % etc.machines();
  const std::size_t target1 = (start.machineOf(1) + 1) % etc.machines();
  (void)evaluator.tryMove(0, target0);
  (void)evaluator.tryMove(1, target1);
  EXPECT_TRUE(evaluator.commit());
  EXPECT_EQ(evaluator.mapping().machineOf(0), start.machineOf(0));
  EXPECT_EQ(evaluator.mapping().machineOf(1), target1);

  // reset replaces the incumbent wholesale.
  evaluator.reset(start);
  EXPECT_EQ(evaluator.mapping().assignment(), start.assignment());
  expectExactMatch(evaluator.current(), analyzeMapping(etc, start, 1.2),
                   "after reset");

  EXPECT_THROW((void)evaluator.tryMove(99, 0), InvalidArgumentError);
  EXPECT_THROW((void)evaluator.tryMove(0, 99), InvalidArgumentError);
  EXPECT_THROW((void)evaluator.trySwap(99, 0), InvalidArgumentError);
  EXPECT_THROW((void)IncrementalEvaluator(etc, start, 0.9),
               InvalidArgumentError);
}

// ----------------------------------------------- optimizer equivalences

TEST(EtcObjective, ScoresMatchGenericClosures) {
  const EtcMatrix etc = randomEtc(13, 20, 5);
  Pcg32 rng(14);
  const double cap = makespan(etc, minMinMapping(etc)) * 1.15;
  const std::vector<EtcObjective> objectives = {
      EtcObjective::makespan(), EtcObjective::negatedRobustness(1.2),
      EtcObjective::cappedRobustness(1.2, cap)};
  for (const auto& objective : objectives) {
    const MappingObjective generic = objective.generic(etc);
    for (int draw = 0; draw < 50; ++draw) {
      const Mapping mapping = randomMapping(etc.apps(), etc.machines(), rng);
      const auto analysis = analyzeMapping(etc, mapping, objective.tau);
      EXPECT_EQ(objective.score(analysis.predictedMakespan,
                                analysis.robustness),
                generic(mapping));
    }
  }
}

TEST(EtcObjective, Validation) {
  const EtcMatrix etc = randomEtc(15, 10, 3);
  const Mapping start = roundRobinMapping(etc);
  EXPECT_THROW((void)localSearch(etc, start,
                                 EtcObjective::negatedRobustness(0.5)),
               InvalidArgumentError);
  EXPECT_THROW((void)localSearch(etc, start,
                                 EtcObjective::cappedRobustness(1.2, 0.0)),
               InvalidArgumentError);
}

TEST(LocalSearch, IncrementalMatchesGenericExactly) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const EtcMatrix etc = randomEtc(20 + seed, 24, 6);
    const Mapping start = roundRobinMapping(etc);
    const double cap = makespan(etc, minMinMapping(etc)) * 1.2;
    for (const auto& objective :
         {EtcObjective::makespan(), EtcObjective::negatedRobustness(1.2),
          EtcObjective::cappedRobustness(1.2, cap)}) {
      const Mapping incremental = localSearch(etc, start, objective);
      const Mapping generic =
          localSearch(etc, start, objective.generic(etc));
      EXPECT_EQ(incremental.assignment(), generic.assignment());
    }
  }
}

TEST(LocalSearch, ParallelMatchesSerialExactly) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const EtcMatrix etc = randomEtc(30 + seed, 32, 7);
    Pcg32 rng(seed + 1);
    const Mapping start = randomMapping(etc.apps(), etc.machines(), rng);
    const EtcObjective objective = EtcObjective::negatedRobustness(1.2);
    LocalSearchOptions serial;
    serial.threads = 1;
    const Mapping reference = localSearch(etc, start, objective, serial);
    for (const std::size_t threads : {2u, 3u, 5u, 64u}) {
      LocalSearchOptions parallel;
      parallel.threads = threads;
      const Mapping result = localSearch(etc, start, objective, parallel);
      EXPECT_EQ(result.assignment(), reference.assignment())
          << "threads=" << threads;
    }
  }
}

TEST(SimulatedAnnealing, IncrementalMatchesGenericExactly) {
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const EtcMatrix etc = randomEtc(40 + seed, 20, 5);
    const Mapping start = roundRobinMapping(etc);
    AnnealingOptions options;
    options.iterations = 4000;
    options.seed = seed + 1;
    const double cap = makespan(etc, minMinMapping(etc)) * 1.2;
    for (const auto& objective :
         {EtcObjective::makespan(),
          EtcObjective::cappedRobustness(1.2, cap)}) {
      const Mapping incremental =
          simulatedAnnealing(etc, start, objective, options);
      const Mapping generic =
          simulatedAnnealing(etc, start, objective.generic(etc), options);
      EXPECT_EQ(incremental.assignment(), generic.assignment());
    }
  }
}

TEST(GeneticAlgorithm, IncrementalMatchesGenericExactly) {
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const EtcMatrix etc = randomEtc(50 + seed, 20, 5);
    const Mapping start = roundRobinMapping(etc);
    GeneticOptions options;
    options.generations = 25;
    options.seed = seed + 1;
    const EtcObjective objective = EtcObjective::negatedRobustness(1.2);
    const Mapping incremental =
        geneticAlgorithm(etc, start, objective, options);
    const Mapping generic =
        geneticAlgorithm(etc, start, objective.generic(etc), options);
    EXPECT_EQ(incremental.assignment(), generic.assignment());
  }
}

TEST(LocalSearch, IncrementalReachesLocalOptimum) {
  const EtcMatrix etc = randomEtc(60, 20, 5);
  const EtcObjective objective = EtcObjective::makespan();
  const Mapping improved =
      localSearch(etc, roundRobinMapping(etc), objective);
  const MappingObjective generic = objective.generic(etc);
  Mapping probe = improved;
  for (std::size_t i = 0; i < etc.apps(); ++i) {
    const std::size_t original = probe.machineOf(i);
    for (std::size_t j = 0; j < etc.machines(); ++j) {
      probe.assign(i, j);
      EXPECT_GE(generic(probe), generic(improved) - 1e-12);
    }
    probe.assign(i, original);
  }
}

}  // namespace
}  // namespace robust::sched
