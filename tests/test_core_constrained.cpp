// Constrained and multi-subspace radii: hand-computable geometry, grid
// brute-force references, first-class infeasible origins, and the
// feasibility observability counters (on and off).
//
// Brute-force tolerance: the references scan a uniform grid of step h over
// a box known to contain the constrained nearest violation. A grid point is
// a true candidate (so gridMin >= radius - slack from the engine's own
// 1e-9 bisection), and some grid point lies within one cell diagonal of the
// optimum, so gridMin <= radius + h * sqrt(dim). The asserts below use
// 2 * h * sqrt(dim) as the documented tolerance.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <limits>
#include <vector>

#include "robust/core/compiled.hpp"
#include "robust/core/impact.hpp"
#include "robust/obs/metrics.hpp"

namespace {

using namespace robust;
using namespace robust::core;

PerturbationSubspace l2Subspace(std::string name, num::Vec origin) {
  PerturbationSubspace s;
  s.name = std::move(name);
  s.origin = std::move(origin);
  s.norm = static_cast<int>(NormKind::L2);
  return s;
}

TEST(Constrained, SingleSubspaceClipMatchesHandGeometry) {
  // f = x0 + x1 <= 2 from origin (0, 0): unconstrained nearest violation is
  // (1, 1) at radius sqrt(2). The hard constraint x1 <= 0.5 cuts it off; the
  // constrained nearest point solves min |x|^2 s.t. x0 + x1 = 2, x1 = 0.5,
  // i.e. (1.5, 0.5) at radius sqrt(2.5).
  ProblemSpec spec;
  spec.features.push_back(PerformanceFeature{
      "f", ImpactFunction::affine(num::Vec{1.0, 1.0}, 0.0),
      ToleranceBounds::atMost(2.0)});
  spec.subspaces.push_back(l2Subspace("pi", num::Vec{0.0, 0.0}));
  spec.constraints.push_back(
      LinearConstraint{"cap", num::Vec{0.0, 1.0}, 0.5});
  const CompiledProblem p = CompiledProblem::compile(std::move(spec));

  const RadiusReport r = p.radiusOf(0);
  EXPECT_EQ(r.method, "dykstra-clip");
  EXPECT_NEAR(r.radius, std::sqrt(2.5), 1e-7);
  ASSERT_EQ(r.boundaryPoint.size(), 2u);
  EXPECT_NEAR(r.boundaryPoint[0], 1.5, 1e-6);
  EXPECT_NEAR(r.boundaryPoint[1], 0.5, 1e-6);
}

TEST(Constrained, FeasibleUnconstrainedPointIsNotClipped) {
  // The same feature with a slack constraint: the unconstrained nearest
  // violation (1, 1) already satisfies x1 <= 5, so the analytic radius and
  // method must come through untouched.
  ProblemSpec spec;
  spec.features.push_back(PerformanceFeature{
      "f", ImpactFunction::affine(num::Vec{1.0, 1.0}, 0.0),
      ToleranceBounds::atMost(2.0)});
  spec.subspaces.push_back(l2Subspace("pi", num::Vec{0.0, 0.0}));
  spec.constraints.push_back(
      LinearConstraint{"cap", num::Vec{0.0, 1.0}, 5.0});
  const CompiledProblem p = CompiledProblem::compile(std::move(spec));
  const RadiusReport r = p.radiusOf(0);
  EXPECT_EQ(r.method, "analytic-l2");
  EXPECT_NEAR(r.radius, std::sqrt(2.0), 1e-12);
}

TEST(Constrained, SingleSubspaceRadiusMatchesGridBruteForce) {
  // Feature 2 x0 + x1 >= -3 (atLeast) and 3 x0 - x1 <= 4 from origin
  // (0.5, -0.25), with two capacity constraints. Reference: scan a grid.
  const num::Vec origin{0.5, -0.25};
  ProblemSpec spec;
  spec.features.push_back(PerformanceFeature{
      "g", ImpactFunction::affine(num::Vec{2.0, 1.0}, 0.0),
      ToleranceBounds::atLeast(-3.0)});
  spec.features.push_back(PerformanceFeature{
      "h", ImpactFunction::affine(num::Vec{3.0, -1.0}, 0.5),
      ToleranceBounds::atMost(4.0)});
  spec.subspaces.push_back(l2Subspace("pi", origin));
  spec.constraints.push_back(
      LinearConstraint{"c0", num::Vec{1.0, 0.0}, 1.0});   // x0 <= 1
  spec.constraints.push_back(
      LinearConstraint{"c1", num::Vec{-1.0, -1.0}, 2.5});  // x0 + x1 >= -2.5
  const CompiledProblem p = CompiledProblem::compile(std::move(spec));

  const double h = 0.005;
  const double tol = 2.0 * h * std::sqrt(2.0);
  for (std::size_t index = 0; index < 2; ++index) {
    SCOPED_TRACE(index);
    const RadiusReport r = p.radiusOf(index);
    double gridMin = std::numeric_limits<double>::infinity();
    for (double x0 = -4.0; x0 <= 4.0; x0 += h) {
      for (double x1 = -4.0; x1 <= 4.0; x1 += h) {
        if (x0 > 1.0 || -(x0 + x1) > 2.5) {
          continue;  // infeasible: the radius search must ignore it
        }
        const bool violates =
            index == 0 ? (2.0 * x0 + x1 < -3.0)
                       : (3.0 * x0 - x1 + 0.5 > 4.0);
        if (!violates) {
          continue;
        }
        const double dist = std::hypot(x0 - origin[0], x1 - origin[1]);
        gridMin = std::min(gridMin, dist);
      }
    }
    ASSERT_TRUE(std::isfinite(gridMin));
    EXPECT_NEAR(r.radius, gridMin, tol);
    // The engine's boundary point must itself be feasible.
    ASSERT_EQ(r.boundaryPoint.size(), 2u);
    EXPECT_LE(r.boundaryPoint[0], 1.0 + 1e-6);
    EXPECT_GE(r.boundaryPoint[0] + r.boundaryPoint[1], -2.5 - 1e-6);
  }
}

TEST(Constrained, MultiSubspaceUnconstrainedUsesSummedDuals) {
  // Two one-dimensional blocks: the combined displacement ball is the
  // product of per-block balls, so f = 3 s + 1 d <= 4 from (0, 0) first
  // violates at r = gap / (3 + 1) = 1 with both blocks at distance 1.
  ProblemSpec spec;
  spec.features.push_back(PerformanceFeature{
      "f", ImpactFunction::affine(num::Vec{3.0, 1.0}, 0.0),
      ToleranceBounds::atMost(4.0)});
  spec.subspaces.push_back(l2Subspace("s", num::Vec{0.0}));
  spec.subspaces.push_back(l2Subspace("d", num::Vec{0.0}));
  const CompiledProblem p = CompiledProblem::compile(std::move(spec));
  const RadiusReport r = p.radiusOf(0);
  EXPECT_EQ(r.method, "analytic-multi");
  EXPECT_NEAR(r.radius, 1.0, 1e-12);
  ASSERT_EQ(r.boundaryPoint.size(), 2u);
  EXPECT_NEAR(r.boundaryPoint[0], 1.0, 1e-9);
  EXPECT_NEAR(r.boundaryPoint[1], 1.0, 1e-9);
}

TEST(Constrained, MultiSubspaceRadiusMatchesGridBruteForce) {
  // Blocks: s = (x0, x1) with L2 norm, d = (x2) with L2 norm. Feature
  // f = x0 + 2 x1 + x2 <= 3 from origin (1, 0, 0); hard constraint
  // x0 + x1 <= 1.8 on the s block. Reference: grid over the 3 coordinates,
  // displacement size max(||(dx0, dx1)||_2, |dx2|).
  const num::Vec sOrigin{1.0, 0.0};
  ProblemSpec spec;
  spec.features.push_back(PerformanceFeature{
      "f", ImpactFunction::affine(num::Vec{1.0, 2.0, 1.0}, 0.0),
      ToleranceBounds::atMost(3.0)});
  spec.subspaces.push_back(l2Subspace("s", sOrigin));
  spec.subspaces.push_back(l2Subspace("d", num::Vec{0.0}));
  spec.constraints.push_back(
      LinearConstraint{"cap", num::Vec{1.0, 1.0, 0.0}, 1.8});
  const CompiledProblem p = CompiledProblem::compile(std::move(spec));

  const RadiusReport r = p.radiusOf(0);
  EXPECT_EQ(r.method, "pocs-bisect");

  const double h = 0.02;
  const double tol = 2.0 * h * std::sqrt(3.0);
  double gridMin = std::numeric_limits<double>::infinity();
  for (double x0 = -2.0; x0 <= 4.0; x0 += h) {
    for (double x1 = -3.0; x1 <= 3.0; x1 += h) {
      if (x0 + x1 > 1.8) {
        continue;
      }
      for (double x2 = -3.0; x2 <= 3.0; x2 += h) {
        if (x0 + 2.0 * x1 + x2 <= 3.0) {
          continue;  // not a violation
        }
        const double sDist =
            std::hypot(x0 - sOrigin[0], x1 - sOrigin[1]);
        const double size = std::max(sDist, std::fabs(x2));
        gridMin = std::min(gridMin, size);
      }
    }
  }
  ASSERT_TRUE(std::isfinite(gridMin));
  EXPECT_NEAR(r.radius, gridMin, tol);
}

TEST(Constrained, InfeasibleOriginIsFirstClass) {
  obs::setEnabled(true);
  obs::resetMetrics();
  ProblemSpec spec;
  spec.features.push_back(PerformanceFeature{
      "f", ImpactFunction::affine(num::Vec{1.0}, 0.0),
      ToleranceBounds::atMost(10.0)});
  spec.subspaces.push_back(l2Subspace("pi", num::Vec{2.0}));
  spec.constraints.push_back(
      LinearConstraint{"cap", num::Vec{1.0}, 1.0});  // origin 2 > 1
  const CompiledProblem p = CompiledProblem::compile(std::move(spec));

  const RobustnessReport report = p.evaluate();
  EXPECT_TRUE(report.infeasibleOrigin);
  EXPECT_EQ(report.metric, 0.0);
  ASSERT_EQ(report.radii.size(), 1u);
  EXPECT_EQ(report.radii[0].radius, 0.0);
  EXPECT_EQ(report.radii[0].method, "infeasible-origin");
  EXPECT_EQ(p.radiusOf(0).method, "infeasible-origin");

  const obs::MetricsSnapshot snap = obs::snapshotMetrics();
  EXPECT_GE(snap.counter("core.feasibility.infeasible_origin"), 2u);
  obs::setEnabled(false);
}

TEST(Constrained, FeasibleOriginReportClearsTheFlag) {
  ProblemSpec spec;
  spec.features.push_back(PerformanceFeature{
      "f", ImpactFunction::affine(num::Vec{1.0}, 0.0),
      ToleranceBounds::atMost(10.0)});
  spec.subspaces.push_back(l2Subspace("pi", num::Vec{0.5}));
  spec.constraints.push_back(LinearConstraint{"cap", num::Vec{1.0}, 1.0});
  const RobustnessReport report =
      CompiledProblem::compile(std::move(spec)).evaluate();
  EXPECT_FALSE(report.infeasibleOrigin);
  EXPECT_GT(report.metric, 0.0);
}

TEST(Constrained, ClippedCounterOnAndSilentWhenOff) {
  auto makeClippedSpec = [] {
    ProblemSpec spec;
    spec.features.push_back(PerformanceFeature{
        "f", ImpactFunction::affine(num::Vec{1.0, 1.0}, 0.0),
        ToleranceBounds::atMost(2.0)});
    spec.subspaces.push_back(l2Subspace("pi", num::Vec{0.0, 0.0}));
    spec.constraints.push_back(
        LinearConstraint{"cap", num::Vec{0.0, 1.0}, 0.5});
    return spec;
  };

  obs::setEnabled(false);
  obs::resetMetrics();
  (void)CompiledProblem::compile(makeClippedSpec()).evaluate();
  EXPECT_EQ(obs::snapshotMetrics().counter("core.feasibility.clipped"), 0u);

  obs::setEnabled(true);
  obs::resetMetrics();
  (void)CompiledProblem::compile(makeClippedSpec()).evaluate();
  EXPECT_GE(obs::snapshotMetrics().counter("core.feasibility.clipped"), 1u);
  obs::setEnabled(false);
}

TEST(Constrained, BatchMetricFallsBackToFullLaneOnConstrainedSpecs) {
  // Constrained problems leave the kernel metric lane; the batch API must
  // still agree exactly with per-instance evaluate().
  ProblemSpec spec;
  spec.features.push_back(PerformanceFeature{
      "f", ImpactFunction::affine(num::Vec{1.0, 1.0}, 0.0),
      ToleranceBounds::atMost(2.0)});
  spec.features.push_back(PerformanceFeature{
      "g", ImpactFunction::affine(num::Vec{1.0, -1.0}, 0.0),
      ToleranceBounds::atLeast(-2.0)});
  spec.subspaces.push_back(l2Subspace("pi", num::Vec{0.0, 0.0}));
  spec.constraints.push_back(
      LinearConstraint{"cap", num::Vec{0.0, 1.0}, 0.5});
  const CompiledProblem p = CompiledProblem::compile(std::move(spec));

  const std::vector<double> origins{0.0, 0.0, 0.3, -0.2, -0.5, 0.4};
  std::vector<AnalysisInstance> instances(3);
  for (std::size_t i = 0; i < 3; ++i) {
    instances[i].origin =
        std::span<const double>(origins).subspan(i * 2, 2);
  }
  const auto metrics = p.analyzeBatchMetric(instances, 2);
  ASSERT_EQ(metrics.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    const RobustnessReport full = p.evaluate(instances[i]);
    EXPECT_EQ(metrics[i].metric, full.metric) << i;
    EXPECT_EQ(metrics[i].bindingFeature, full.bindingFeature) << i;
  }
}

}  // namespace
