// Differential pin of the multi-subspace/constraint refactor: reference
// values below were captured from the pre-refactor engine (single
// PerturbationParameter, no subspaces, no constraints) on deterministic
// problem families, printed in hexfloat. The refactored engine must
// reproduce every metric, radius, boundary level, argmin, and binding index
// BIT-FOR-BIT on these single-subspace unconstrained specs — the refactor's
// contract is that existing derivations are untouched.
//
// The expected block is parsed (strtod hexfloat round-trips exactly), so the
// comparison is on double bits, not on printf formatting.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "robust/core/compiled.hpp"
#include "robust/core/impact.hpp"
#include "robust/core/stream.hpp"
#include "robust/util/rng.hpp"

namespace {

using namespace robust;
using namespace robust::core;

// Frozen pre-refactor output (tools capture, 2026-08): one line per checked
// quantity, hexfloat-exact. Do NOT regenerate from current code — the value
// of this block is that it predates the refactor.
constexpr const char* kFrozenReference = R"(l2 evaluate metric=0x1.3cc393aea828fp+1 binding=6 floored=0
l2 radius[0]=0x1.0514a3d6cb304p+2 level=0x1.c5f28c70b3334p+4 method=analytic-l2
l2 radius[1]=0x1.b312dcd56270ap+2 level=-0x1.693bc92e8p+4 method=analytic-l2
l2 radius[2]=0x1.31211ab18c4fap+2 level=0x1.5ac5669cp+5 method=analytic-l2
l2 radius[3]=0x1.568cf337244b3p+2 level=0x1.08fc2ddep+5 method=analytic-l2
l2 radius[4]=0x1.1f0168280fd99p+3 level=-0x1.cf41b30ba6667p+4 method=analytic-l2
l2 radius[5]=0x1.91e1e850251bfp+2 level=0x1.760e064b33334p+5 method=analytic-l2
l2 radius[6]=0x1.3cc393aea828fp+1 level=0x1.955b9ac6b3334p+4 method=analytic-l2
l2 radius[7]=0x1.f6ffc290cca1bp+2 level=-0x1.9dede19a26667p+4 method=analytic-l2
l2 radius[8]=0x1.f696823321a4ep+1 level=0x1.2068059933334p+5 method=analytic-l2
l2 batchMetric[0]=0x1.71ecdac4f16c9p+1 binding=6
l2 batchMetric[1]=0x1.75317fc13b426p+1 binding=6
l2 batchMetric[2]=0x1.30f561f81477fp+1 binding=6
l2 batchMetric[3]=0x1.06a762bd42abap+2 binding=6
l2 batchMetric[4]=0x1.671dc101bb2fep+1 binding=6
l2 batchMetric[5]=0x1.7377f51a0f379p+1 binding=6
l2 batchMetric[6]=0x1.052734ceb1069p+2 binding=6
l2 batchMetric[7]=0x1.960bb81a8d3adp+1 binding=6
l2 batchMetric[8]=0x1.6fe1be03246a1p+1 binding=6
l2 batchMetric[9]=0x1.785156a5689edp+1 binding=6
l2 batchMetric[10]=0x1.530fada4b4b7ep+1 binding=6
l2 batchMetric[11]=0x1.63681f64ad9d2p+1 binding=6
l2 batchMetric[12]=0x1.56dd9e73ad366p+1 binding=6
l2 batchMetric[13]=0x1.67689c8f95f04p+1 binding=6
l2 batchMetric[14]=0x1.b1aa640dbb6e3p+1 binding=6
l2 batchMetric[15]=0x1.8052346a90f88p+1 binding=6
l2 batchMetric[16]=0x1.0978a561dbe62p+2 binding=6
l2 stream metric=0x1.30f561f81477fp+1 argmin=2 binding=6 floored=0
l1 evaluate metric=0x1.b8ba51f649538p+0 binding=3 floored=0
l1 radius[0]=0x1.4d83c75ca7f43p+2 level=0x1.52763dcdb3333p+4 method=analytic-l1
l1 radius[1]=0x1.c05f43634a28ap+3 level=-0x1.4b621c239999ap+4 method=analytic-l1
l1 radius[2]=0x1.b327b750b6a7ap+3 level=-0x1.6ab4aa2666666p+4 method=analytic-l1
l1 radius[3]=0x1.b8ba51f649538p+0 level=0x1.e2624fe766667p+3 method=analytic-l1
l1 radius[4]=0x1.351d0550cdbfep+4 level=-0x1.9906b0dep+4 method=analytic-l1
l1 radius[5]=0x1.7a286113a5affp+3 level=0x1.d5691cbd9999ap+4 method=analytic-l1
l1 radius[6]=0x1.4e7eb5d3404f6p+3 level=0x1.c29b65878p+4 method=analytic-l1
l1 batchMetric[0]=0x1.8bd6c309b5478p+1 binding=3
l1 batchMetric[1]=0x1.27c714fd4187cp+0 binding=3
l1 batchMetric[2]=0x1.8626dfd6de604p+1 binding=3
l1 batchMetric[3]=0x1.7631b5726cf5dp+0 binding=3
l1 batchMetric[4]=0x1.6c4f08c9355afp+1 binding=3
l1 batchMetric[5]=0x1.09e3a88e9406dp+2 binding=3
l1 batchMetric[6]=0x1.2af3b4f599afap+2 binding=3
l1 batchMetric[7]=0x1.e7762cd48bf7cp+1 binding=3
l1 batchMetric[8]=0x1.4aab7f4b94674p+0 binding=3
l1 batchMetric[9]=0x1.85a2e8b4b60cp+0 binding=3
l1 batchMetric[10]=0x1.13c997e4b560fp-2 binding=3
l1 batchMetric[11]=0x1.fe20ea75ba775p+1 binding=3
l1 batchMetric[12]=0x1.a4997dacc25e1p+1 binding=3
l1 batchMetric[13]=0x1.1265e6f6b1966p+2 binding=3
l1 batchMetric[14]=0x1.59f21e5766b98p-1 binding=3
l1 batchMetric[15]=0x1.d0b04ae66bb07p-8 binding=3
l1 batchMetric[16]=0x1.17f32badfe5c7p+1 binding=3
l1 stream metric=0x1.d0b04ae66bb07p-8 argmin=15 binding=3 floored=0
linf evaluate metric=0x1.fe1139ad56004p-3 binding=3 floored=0
linf radius[0]=0x1.6a7454292b17cp-1 level=0x1.52763dcdb3333p+4 method=analytic-linf
linf radius[1]=0x1.0a32bfd83c97ap+1 level=-0x1.4b621c239999ap+4 method=analytic-linf
linf radius[2]=0x1.0b23bcbba6f5fp+1 level=-0x1.6ab4aa2666666p+4 method=analytic-linf
linf radius[3]=0x1.fe1139ad56004p-3 level=0x1.e2624fe766667p+3 method=analytic-linf
linf radius[4]=0x1.3590cc98b119cp+1 level=-0x1.9906b0dep+4 method=analytic-linf
linf radius[5]=0x1.718f077895e12p+0 level=0x1.d5691cbd9999ap+4 method=analytic-linf
linf radius[6]=0x1.80e380cbb5da3p+0 level=0x1.c29b65878p+4 method=analytic-linf
linf batchMetric[0]=0x1.ca1db4cb6d1f4p-2 binding=3
linf batchMetric[1]=0x1.564feccde17fcp-3 binding=3
linf batchMetric[2]=0x1.c388c3c523cc6p-2 binding=3
linf batchMetric[3]=0x1.b110e1d77db7ap-3 binding=3
linf batchMetric[4]=0x1.a5a00edd747f8p-2 binding=3
linf batchMetric[5]=0x1.33b8b5008efc6p-1 binding=3
linf batchMetric[6]=0x1.59fc66557977bp-1 binding=3
linf batchMetric[7]=0x1.1a13ac717469ap-1 binding=3
linf batchMetric[8]=0x1.7eb1ac2471dcp-3 binding=3
linf batchMetric[9]=0x1.c2f0098dde92dp-3 binding=3
linf batchMetric[10]=0x1.3f2d4df92ede3p-5 binding=3
linf batchMetric[11]=0x1.273183d99424bp-1 binding=3
linf batchMetric[12]=0x1.e6c5b443dda36p-2 binding=3
linf batchMetric[13]=0x1.3d91a71aeaa3ap-1 binding=3
linf batchMetric[14]=0x1.905f8cb7a341fp-4 binding=3
linf batchMetric[15]=0x1.0ce6204cc9244p-10 binding=3
linf batchMetric[16]=0x1.43fe875143935p-2 binding=3
linf stream metric=0x1.0ce6204cc9244p-10 argmin=15 binding=3 floored=0
wgt evaluate metric=0x1.ca183bcf08302p+0 binding=0 floored=0
wgt radius[0]=0x1.ca183bcf08302p+0 level=0x1.34fec25fap+4 method=analytic-weighted
wgt radius[1]=0x1.0ea88120ae0f9p+3 level=-0x1.95fa898acp+4 method=analytic-weighted
wgt radius[2]=0x1.68af79400f0b4p+2 level=0x1.26eda84dp+5 method=analytic-weighted
wgt radius[3]=0x1.85206378b191dp+1 level=0x1.2f860b4ap+4 method=analytic-weighted
wgt radius[4]=0x1.0d2382ee6942ep+3 level=-0x1.f4b3f4bf8p+4 method=analytic-weighted
wgt radius[5]=0x1.6c56476c61646p+1 level=0x1.e1f088bep+4 method=analytic-weighted
wgt radius[6]=0x1.3cdf113f42b16p+2 level=0x1.13670e5e6p+5 method=analytic-weighted
wgt radius[7]=0x1.b770de6f6c57cp+2 level=-0x1.4ab9db166p+4 method=analytic-weighted
wgt batchMetric[0]=0x1.2becf4618d3cap+1 binding=3
wgt batchMetric[1]=0x1.015702db6a722p+1 binding=0
wgt batchMetric[2]=0x1.13e4299942766p+1 binding=3
wgt batchMetric[3]=0x1.44118b5e79e37p+1 binding=0
wgt batchMetric[4]=0x1.21358afc3578dp+1 binding=0
wgt batchMetric[5]=0x1.2026f43d8f049p+1 binding=3
wgt batchMetric[6]=0x1.0382e840dfb52p+1 binding=3
wgt batchMetric[7]=0x1.173ce0aba2e2p+1 binding=0
wgt batchMetric[8]=0x1.2b40313a9c4b8p+0 binding=0
wgt batchMetric[9]=0x1.a4d616cae3e23p+0 binding=0
wgt batchMetric[10]=0x1.5ff552635fedp+1 binding=0
wgt batchMetric[11]=0x1.a75361c74a6e2p+0 binding=0
wgt batchMetric[12]=0x1.9378816b1ea96p-1 binding=0
wgt batchMetric[13]=0x1.0a2c68416ecf9p+1 binding=3
wgt batchMetric[14]=0x1.4164d8539408cp+0 binding=0
wgt batchMetric[15]=0x1.29df66f3a5d2p+0 binding=0
wgt batchMetric[16]=0x1.f268900ef0526p+0 binding=3
wgt stream metric=0x1.9378816b1ea96p-1 argmin=12 binding=0 floored=0
disc evaluate metric=0x0p+0 binding=0 floored=1
disc radius[0]=0x0p+0 level=0x1.9e0d896c1p+4 method=violated-at-origin
disc radius[1]=0x1.d1ea22ec1d472p+2 level=-0x1.828cbace26667p+3 method=analytic-l2
disc radius[2]=0x1.596d676005b37p+1 level=0x1.55236b4299999p+4 method=analytic-l2
disc radius[3]=0x1.50fd85dc5a328p+1 level=0x1.567ee5bdep+4 method=analytic-l2
disc radius[4]=0x1.53ce18af39bc1p+3 level=-0x1.493293192cccdp+4 method=analytic-l2
disc radius[5]=0x1.2cb45ed39bbe7p+1 level=0x1.39836f5f66666p+4 method=analytic-l2
disc batchMetric[0]=0x1p+0 binding=0
disc batchMetric[1]=0x0p+0 binding=0
disc batchMetric[2]=0x1p+0 binding=0
disc batchMetric[3]=0x0p+0 binding=0
disc batchMetric[4]=0x0p+0 binding=0
disc batchMetric[5]=0x0p+0 binding=0
disc batchMetric[6]=0x1p+0 binding=0
disc batchMetric[7]=0x1p+0 binding=0
disc batchMetric[8]=0x1p+0 binding=0
disc batchMetric[9]=0x0p+0 binding=0
disc batchMetric[10]=0x0p+0 binding=0
disc batchMetric[11]=0x1p+0 binding=0
disc batchMetric[12]=0x1p+0 binding=0
disc batchMetric[13]=0x0p+0 binding=0
disc batchMetric[14]=0x0p+0 binding=0
disc batchMetric[15]=0x0p+0 binding=0
disc batchMetric[16]=0x0p+0 binding=0
disc stream metric=0x0p+0 argmin=1 binding=0 floored=1)";

// The exact problem family the capture tool used: `rows` affine features
// over `dim` components, mixed one- and two-sided bounds, all RNG streams
// pinned.
ProblemSpec makeSpec(std::size_t dim, std::size_t rows, NormKind norm,
                     bool discrete) {
  Pcg32 rng(7, 11);
  std::vector<PerformanceFeature> features;
  for (std::size_t r = 0; r < rows; ++r) {
    num::Vec w(dim);
    for (double& v : w) {
      v = rng.uniform(-1.0, 2.0);
    }
    const double c = rng.uniform(-0.5, 0.5);
    ToleranceBounds b;
    if (r % 3 == 0) {
      b = ToleranceBounds::atMost(rng.uniform(0.9, 1.8) *
                                  static_cast<double>(dim));
    } else if (r % 3 == 1) {
      b = ToleranceBounds::atLeast(rng.uniform(-1.8, -0.9) *
                                   static_cast<double>(dim));
    } else {
      b = ToleranceBounds::between(
          rng.uniform(-2.0, -1.2) * static_cast<double>(dim),
          rng.uniform(1.2, 2.0) * static_cast<double>(dim));
    }
    features.push_back(PerformanceFeature{
        "f" + std::to_string(r), ImpactFunction::affine(std::move(w), c), b});
  }
  num::Vec origin(dim);
  Pcg32 org(7, 23);
  for (double& v : origin) {
    v = discrete ? static_cast<double>(org.nextBounded(5))
                 : org.uniform(0.25, 1.75);
  }
  PerturbationParameter parameter{"pi", std::move(origin), discrete, "units"};
  AnalyzerOptions options;
  options.norm = norm;
  if (norm == NormKind::Weighted) {
    options.normWeights.resize(dim);
    Pcg32 wrng(7, 31);
    for (double& v : options.normWeights) {
      v = wrng.uniform(0.5, 2.0);
    }
  }
  ProblemSpec spec;
  spec.features = std::move(features);
  spec.parameter = std::move(parameter);
  spec.options = std::move(options);
  return spec;
}

std::vector<double> makeBatch(std::size_t dim, std::size_t count) {
  std::vector<double> values(dim * count);
  Pcg32 rng(99, 5);
  for (double& v : values) {
    v = rng.uniform(0.0, 2.0);
  }
  return values;
}

struct FrozenLines {
  std::vector<std::string> lines;
  std::size_t next = 0;

  std::string take() {
    EXPECT_LT(next, lines.size()) << "frozen reference exhausted";
    return next < lines.size() ? lines[next++] : std::string();
  }
};

FrozenLines loadFrozen() {
  FrozenLines frozen;
  std::istringstream in(kFrozenReference);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) {
      frozen.lines.push_back(line);
    }
  }
  return frozen;
}

// Runs one configuration through evaluate / analyzeBatchMetric /
// analyzeStreamValues and asserts every quantity equals the frozen bits.
void checkConfig(FrozenLines& frozen, const char* tag, std::size_t dim,
                 std::size_t rows, NormKind norm, bool discrete) {
  SCOPED_TRACE(tag);
  const CompiledProblem p =
      CompiledProblem::compile(makeSpec(dim, rows, norm, discrete));

  const RobustnessReport rep = p.evaluate();
  {
    char expTag[32];
    double metric = 0.0;
    std::size_t binding = 0;
    int floored = 0;
    const std::string line = frozen.take();
    ASSERT_EQ(std::sscanf(line.c_str(), "%31s evaluate metric=%la binding=%zu floored=%d",
                          expTag, &metric, &binding, &floored),
              4)
        << line;
    ASSERT_STREQ(expTag, tag);
    EXPECT_EQ(rep.metric, metric);
    EXPECT_EQ(rep.bindingFeature, binding);
    EXPECT_EQ(rep.floored, floored == 1);
  }
  ASSERT_EQ(rep.radii.size(), rows);
  for (std::size_t i = 0; i < rows; ++i) {
    char expTag[32];
    char method[32];
    std::size_t index = 0;
    double radius = 0.0;
    double level = 0.0;
    const std::string line = frozen.take();
    ASSERT_EQ(std::sscanf(line.c_str(), "%31s radius[%zu]=%la level=%la method=%31s",
                          expTag, &index, &radius, &level, method),
              5)
        << line;
    ASSERT_EQ(index, i);
    EXPECT_EQ(rep.radii[i].radius, radius) << "radius " << i;
    EXPECT_EQ(rep.radii[i].boundaryLevel, level) << "level " << i;
    EXPECT_EQ(rep.radii[i].method, method) << "method " << i;
  }

  const std::vector<double> batch = makeBatch(dim, 17);
  std::vector<AnalysisInstance> instances(17);
  for (std::size_t i = 0; i < 17; ++i) {
    instances[i].origin =
        std::span<const double>(batch).subspan(i * dim, dim);
  }
  const auto metrics = p.analyzeBatchMetric(instances, 3);
  ASSERT_EQ(metrics.size(), 17u);
  for (std::size_t i = 0; i < 17; ++i) {
    char expTag[32];
    std::size_t index = 0;
    double metric = 0.0;
    std::size_t binding = 0;
    const std::string line = frozen.take();
    ASSERT_EQ(std::sscanf(line.c_str(), "%31s batchMetric[%zu]=%la binding=%zu",
                          expTag, &index, &metric, &binding),
              4)
        << line;
    ASSERT_EQ(index, i);
    EXPECT_EQ(metrics[i].metric, metric) << "batch metric " << i;
    EXPECT_EQ(metrics[i].bindingFeature, binding) << "batch binding " << i;
  }

  const StreamResult s = analyzeStreamValues(p, batch, StreamOptions{5, 2});
  {
    char expTag[32];
    double metric = 0.0;
    std::size_t argmin = 0;
    std::size_t binding = 0;
    int floored = 0;
    const std::string line = frozen.take();
    ASSERT_EQ(std::sscanf(line.c_str(),
                          "%31s stream metric=%la argmin=%zu binding=%zu floored=%d",
                          expTag, &metric, &argmin, &binding, &floored),
              5)
        << line;
    EXPECT_EQ(s.metric, metric);
    EXPECT_EQ(s.argminInstance, argmin);
    EXPECT_EQ(s.bindingFeature, binding);
    EXPECT_EQ(s.floored, floored == 1);
  }
}

TEST(RefactorDifferential, SingleSubspaceUnconstrainedBitIdentical) {
  FrozenLines frozen = loadFrozen();
  checkConfig(frozen, "l2", 24, 9, NormKind::L2, false);
  checkConfig(frozen, "l1", 16, 7, NormKind::L1, false);
  checkConfig(frozen, "linf", 16, 7, NormKind::LInf, false);
  checkConfig(frozen, "wgt", 20, 8, NormKind::Weighted, false);
  checkConfig(frozen, "disc", 12, 6, NormKind::L2, true);
  EXPECT_EQ(frozen.next, frozen.lines.size())
      << "frozen reference has unchecked lines";
}

// The same family expressed as an explicit single subspace must also match
// the frozen values: explicit-subspace compilation routes through the same
// arithmetic as the legacy parameter form.
TEST(RefactorDifferential, ExplicitSingleSubspaceMatchesLegacyForm) {
  for (const NormKind norm :
       {NormKind::L2, NormKind::L1, NormKind::LInf, NormKind::Weighted}) {
    ProblemSpec legacy = makeSpec(14, 6, norm, false);
    ProblemSpec viaSubspace = legacy;

    PerturbationSubspace sub;
    sub.name = viaSubspace.parameter.name;
    sub.origin = viaSubspace.parameter.origin;
    sub.norm = static_cast<int>(norm);
    sub.normWeights = viaSubspace.parameter.discrete
                          ? num::Vec{}
                          : viaSubspace.options.normWeights;
    sub.discrete = viaSubspace.parameter.discrete;
    sub.units = viaSubspace.parameter.units;
    viaSubspace.parameter = PerturbationParameter{};
    viaSubspace.subspaces.push_back(std::move(sub));

    const RobustnessReport a =
        CompiledProblem::compile(std::move(legacy)).evaluate();
    const RobustnessReport b =
        CompiledProblem::compile(std::move(viaSubspace)).evaluate();
    ASSERT_EQ(a.radii.size(), b.radii.size());
    EXPECT_EQ(a.metric, b.metric);
    EXPECT_EQ(a.bindingFeature, b.bindingFeature);
    for (std::size_t i = 0; i < a.radii.size(); ++i) {
      EXPECT_EQ(a.radii[i].radius, b.radii[i].radius) << i;
      EXPECT_EQ(a.radii[i].method, b.radii[i].method) << i;
    }
  }
}

}  // namespace
