// Tests for the FePIA core: impact functions, tolerance bounds, the builder,
// and input validation of the analyzer.
#include <gtest/gtest.h>

#include <cmath>

#include <sstream>

#include "robust/core/fepia.hpp"
#include "robust/core/report_io.hpp"
#include "robust/util/error.hpp"

namespace robust::core {
namespace {

// ------------------------------------------------------------- impacts

TEST(ImpactFunction, AffineEvaluates) {
  const auto f = ImpactFunction::affine({2.0, -1.0}, 3.0);
  EXPECT_TRUE(f.isAffine());
  EXPECT_DOUBLE_EQ(f.evaluate(num::Vec{1.0, 1.0}), 4.0);
  EXPECT_EQ(f.weights(), (num::Vec{2.0, -1.0}));
  EXPECT_DOUBLE_EQ(f.constant(), 3.0);
  ASSERT_TRUE(f.dimension().has_value());
  EXPECT_EQ(*f.dimension(), 2u);
}

TEST(ImpactFunction, AffineAsFieldSelfContained) {
  num::ScalarField field;
  {
    const auto f = ImpactFunction::affine({1.0, 1.0}, 0.0);
    field = f.field();
  }  // impact destroyed; the field must have captured by value
  EXPECT_DOUBLE_EQ(field(num::Vec{2.0, 3.0}), 5.0);
}

TEST(ImpactFunction, AffineGradientIsConstant) {
  const auto f = ImpactFunction::affine({4.0, 5.0}, 1.0);
  const auto grad = f.gradientField();
  ASSERT_TRUE(static_cast<bool>(grad));
  EXPECT_EQ(grad(num::Vec{100.0, -3.0}), (num::Vec{4.0, 5.0}));
}

TEST(ImpactFunction, CallableEvaluates) {
  const auto f = ImpactFunction::callable(
      [](std::span<const double> x) { return x[0] * x[0]; });
  EXPECT_FALSE(f.isAffine());
  EXPECT_DOUBLE_EQ(f.evaluate(num::Vec{3.0}), 9.0);
  EXPECT_FALSE(f.dimension().has_value());
  EXPECT_THROW((void)f.weights(), InvalidArgumentError);
  EXPECT_THROW((void)f.constant(), InvalidArgumentError);
}

TEST(ImpactFunction, Validation) {
  EXPECT_THROW((void)ImpactFunction::affine({}, 0.0), InvalidArgumentError);
  EXPECT_THROW((void)ImpactFunction::callable(nullptr), InvalidArgumentError);
}

// -------------------------------------------------------------- bounds

TEST(ToleranceBounds, ContainsRespectsEachSide) {
  const auto upper = ToleranceBounds::atMost(10.0);
  EXPECT_TRUE(upper.contains(10.0));
  EXPECT_TRUE(upper.contains(-100.0));
  EXPECT_FALSE(upper.contains(10.5));

  const auto lower = ToleranceBounds::atLeast(2.0);
  EXPECT_TRUE(lower.contains(2.0));
  EXPECT_FALSE(lower.contains(1.0));

  const auto both = ToleranceBounds::between(1.0, 3.0);
  EXPECT_TRUE(both.contains(2.0));
  EXPECT_FALSE(both.contains(0.5));
  EXPECT_FALSE(both.contains(3.5));
}

TEST(ToleranceBounds, BetweenValidatesOrder) {
  EXPECT_THROW((void)ToleranceBounds::between(3.0, 1.0),
               InvalidArgumentError);
}

// -------------------------------------------------------------- builder

TEST(FepiaBuilder, BuildsWorkingAnalyzer) {
  auto analyzer =
      FepiaBuilder("toy requirement")
          .perturbation("pi", {0.0, 0.0})
          .affineFeature("phi", {1.0, 1.0}, 0.0, ToleranceBounds::atMost(4.0))
          .build();
  EXPECT_EQ(analyzer.featureCount(), 1u);
  const auto report = analyzer.analyze();
  EXPECT_NEAR(report.metric, 4.0 / std::sqrt(2.0), 1e-12);
}

TEST(FepiaBuilder, RequiresAllSteps) {
  FepiaBuilder noParam("r");
  noParam.affineFeature("phi", {1.0}, 0.0, ToleranceBounds::atMost(1.0));
  EXPECT_THROW((void)noParam.build(), InvalidArgumentError);

  FepiaBuilder noFeatures("r");
  noFeatures.perturbation("pi", {0.0});
  EXPECT_THROW((void)noFeatures.build(), InvalidArgumentError);
}

TEST(FepiaBuilder, SingleShot) {
  FepiaBuilder b("r");
  b.perturbation("pi", {0.0});
  b.affineFeature("phi", {1.0}, 0.0, ToleranceBounds::atMost(1.0));
  (void)b.build();
  EXPECT_THROW((void)b.build(), InvalidArgumentError);
}

TEST(FepiaBuilder, RejectsSecondParameter) {
  FepiaBuilder b("r");
  b.perturbation("pi1", {0.0});
  EXPECT_THROW(b.perturbation("pi2", {0.0}), InvalidArgumentError);
}

TEST(FepiaBuilder, KeepsRequirementText) {
  FepiaBuilder b("makespan within 120%");
  EXPECT_EQ(b.requirement(), "makespan within 120%");
}

// ------------------------------------------------- analyzer validation

TEST(RobustnessAnalyzer, RejectsDimensionMismatch) {
  std::vector<PerformanceFeature> features;
  features.push_back(PerformanceFeature{
      "phi", ImpactFunction::affine({1.0, 2.0, 3.0}, 0.0),
      ToleranceBounds::atMost(1.0)});
  PerturbationParameter parameter{"pi", {0.0, 0.0}, false, ""};
  EXPECT_THROW(RobustnessAnalyzer(std::move(features), std::move(parameter)),
               InvalidArgumentError);
}

TEST(RobustnessAnalyzer, RejectsUnboundedFeature) {
  std::vector<PerformanceFeature> features;
  features.push_back(PerformanceFeature{
      "phi", ImpactFunction::affine({1.0}, 0.0), ToleranceBounds{}});
  PerturbationParameter parameter{"pi", {0.0}, false, ""};
  EXPECT_THROW(RobustnessAnalyzer(std::move(features), std::move(parameter)),
               InvalidArgumentError);
}

TEST(RobustnessAnalyzer, RejectsEmptyInputs) {
  PerturbationParameter parameter{"pi", {0.0}, false, ""};
  EXPECT_THROW(RobustnessAnalyzer({}, parameter), InvalidArgumentError);

  std::vector<PerformanceFeature> features;
  features.push_back(PerformanceFeature{"phi",
                                        ImpactFunction::affine({1.0}, 0.0),
                                        ToleranceBounds::atMost(1.0)});
  PerturbationParameter empty{"pi", {}, false, ""};
  EXPECT_THROW(RobustnessAnalyzer(std::move(features), std::move(empty)),
               InvalidArgumentError);
}

TEST(ReportIo, PrintsMetricBindingAndElision) {
  std::vector<PerformanceFeature> features;
  for (int f = 0; f < 6; ++f) {
    features.push_back(PerformanceFeature{
        "phi" + std::to_string(f),
        ImpactFunction::affine({1.0, static_cast<double>(f + 1)}, 0.0),
        ToleranceBounds::atMost(100.0 - 10.0 * f)});
  }
  PerturbationParameter parameter{"pi", {1.0, 1.0}, false, "widgets"};
  const RobustnessAnalyzer analyzer(std::move(features), parameter);
  const auto report = analyzer.analyze();

  std::ostringstream oss;
  ReportPrintOptions options;
  options.maxRadii = 3;
  options.showBoundaryPoints = true;
  printReport(oss, report, parameter, options);
  const std::string out = oss.str();
  EXPECT_NE(out.find("robustness metric rho ="), std::string::npos);
  EXPECT_NE(out.find("widgets"), std::string::npos);
  EXPECT_NE(out.find(" *"), std::string::npos);  // binding marker
  EXPECT_NE(out.find("elided"), std::string::npos);
  EXPECT_NE(out.find("pi*"), std::string::npos);
  EXPECT_NE(out.find("binding feature: "), std::string::npos);
}

TEST(ReportIo, ShowsAllRowsWhenUnderLimit) {
  std::vector<PerformanceFeature> features;
  features.push_back(PerformanceFeature{"only",
                                        ImpactFunction::affine({1.0}, 0.0),
                                        ToleranceBounds::atMost(2.0)});
  PerturbationParameter parameter{"pi", {0.0}, false, ""};
  const RobustnessAnalyzer analyzer(std::move(features), parameter);
  std::ostringstream oss;
  printReport(oss, analyzer.analyze(), parameter);
  EXPECT_EQ(oss.str().find("elided"), std::string::npos);
}

TEST(NormKind, ToStringNames) {
  EXPECT_EQ(toString(NormKind::L1), "l1");
  EXPECT_EQ(toString(NormKind::L2), "l2");
  EXPECT_EQ(toString(NormKind::LInf), "linf");
}

}  // namespace
}  // namespace robust::core
