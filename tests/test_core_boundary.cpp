// Tests for the 2-D boundary tracer (the Fig. 1 data generator).
#include <gtest/gtest.h>

#include <cmath>

#include "robust/core/boundary_trace.hpp"
#include "robust/util/error.hpp"

namespace robust::core {
namespace {

TEST(BoundaryTrace, AffineBoundaryPointsLieOnTheLine) {
  std::vector<PerformanceFeature> features;
  features.push_back(PerformanceFeature{
      "F", ImpactFunction::affine({1.0, 1.0}, 0.0),
      ToleranceBounds::atMost(9.1)});
  PerturbationParameter parameter{"C", {4.0, 3.0}, false, ""};
  const RobustnessAnalyzer analyzer(std::move(features), parameter);

  const auto samples = traceBoundary2D(analyzer, 0);
  EXPECT_GT(samples.size(), 30u);      // roughly the facing half-plane
  EXPECT_LT(samples.size(), 128u);     // rays pointing away never cross
  double minDistance = 1e300;
  for (const auto& s : samples) {
    EXPECT_NEAR(s.point[0] + s.point[1], 9.1, 1e-8);
    EXPECT_NEAR(num::distance2(s.point, parameter.origin), s.distance,
                1e-10);
    minDistance = std::min(minDistance, s.distance);
  }
  // The closest traced sample approaches the analytic radius from above.
  const double radius = analyzer.radiusOf(0).radius;
  EXPECT_GE(minDistance, radius - 1e-9);
  EXPECT_LE(minDistance, radius * 1.01);
}

TEST(BoundaryTrace, CurvedBoundaryIsClosed) {
  // g(pi) = ||pi||^2 = 25: the full circle is reachable from inside, so
  // every ray crosses.
  std::vector<PerformanceFeature> features;
  features.push_back(PerformanceFeature{
      "circle",
      ImpactFunction::callable([](std::span<const double> x) {
        return x[0] * x[0] + x[1] * x[1];
      }),
      ToleranceBounds::atMost(25.0)});
  PerturbationParameter parameter{"pi", {1.0, 0.0}, false, ""};
  const RobustnessAnalyzer analyzer(std::move(features), parameter);

  BoundaryTraceOptions options;
  options.rays = 64;
  const auto samples = traceBoundary2D(analyzer, 0, options);
  EXPECT_EQ(samples.size(), 64u);  // closed curve: every ray crosses
  for (const auto& s : samples) {
    EXPECT_NEAR(num::norm2(s.point), 5.0, 1e-7);
  }
  // Nearest sample ~ analytic radius 4 (at angle 0), farthest ~ 6 (pi).
  double lo = 1e300;
  double hi = 0.0;
  for (const auto& s : samples) {
    lo = std::min(lo, s.distance);
    hi = std::max(hi, s.distance);
  }
  EXPECT_NEAR(lo, 4.0, 0.02);
  EXPECT_NEAR(hi, 6.0, 0.02);
}

TEST(BoundaryTrace, Validation) {
  std::vector<PerformanceFeature> features;
  features.push_back(PerformanceFeature{
      "F", ImpactFunction::affine({1.0, 1.0, 1.0}, 0.0),
      ToleranceBounds::atMost(9.0)});
  PerturbationParameter parameter{"pi", {0.0, 0.0, 0.0}, false, ""};
  const RobustnessAnalyzer threeD(std::move(features), parameter);
  EXPECT_THROW((void)traceBoundary2D(threeD, 0), InvalidArgumentError);
  EXPECT_THROW((void)traceBoundary2D(threeD, 9), InvalidArgumentError);

  std::vector<PerformanceFeature> flat;
  flat.push_back(PerformanceFeature{"F",
                                    ImpactFunction::affine({1.0, 1.0}, 0.0),
                                    ToleranceBounds::atMost(9.0)});
  PerturbationParameter twoD{"pi", {0.0, 0.0}, false, ""};
  const RobustnessAnalyzer ok(std::move(flat), twoD);
  BoundaryTraceOptions bad;
  bad.rays = 2;
  EXPECT_THROW((void)traceBoundary2D(ok, 0, bad), InvalidArgumentError);
}

}  // namespace
}  // namespace robust::core
