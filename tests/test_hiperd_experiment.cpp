// Unit tests for the Fig. 4 experiment driver helpers (pair selection) and
// the Fig. 3 driver's row invariants under non-default options.
#include <gtest/gtest.h>

#include <cmath>

#include "robust/hiperd/experiment.hpp"
#include "robust/scheduling/experiment.hpp"
#include "robust/util/error.hpp"

namespace robust {
namespace {

hiperd::Fig4Row row(double slack, double robustness) {
  hiperd::Fig4Row r;
  r.slack = slack;
  r.robustness = robustness;
  return r;
}

TEST(FindTable2Pair, PicksLargestRatioWithinTolerance) {
  const std::vector<hiperd::Fig4Row> rows = {
      row(0.50, 100.0),  // pairs with the next one: ratio 4
      row(0.502, 400.0),
      row(0.30, 100.0),  // pairs with the next one: ratio 2 (farther slack)
      row(0.304, 200.0),
      row(0.80, 50.0),   // alone in its slack window
  };
  const auto [lo, hi] = hiperd::findTable2Pair(rows, 0.005, 1.0);
  EXPECT_EQ(lo, 0u);
  EXPECT_EQ(hi, 1u);
}

TEST(FindTable2Pair, OrdersSmallerRobustnessFirst) {
  const std::vector<hiperd::Fig4Row> rows = {
      row(0.40, 300.0),
      row(0.401, 100.0),
  };
  const auto [lo, hi] = hiperd::findTable2Pair(rows, 0.01, 1.0);
  EXPECT_EQ(lo, 1u);
  EXPECT_EQ(hi, 0u);
}

TEST(FindTable2Pair, RespectsMinRobustness) {
  const std::vector<hiperd::Fig4Row> rows = {
      row(0.10, 1.0),  row(0.101, 10.0),   // ratio 10 but below threshold
      row(0.50, 100.0), row(0.501, 150.0), // ratio 1.5, eligible
  };
  const auto [lo, hi] = hiperd::findTable2Pair(rows, 0.01, 50.0);
  EXPECT_EQ(lo, 2u);
  EXPECT_EQ(hi, 3u);
}

TEST(FindTable2Pair, ThrowsWhenNoEligiblePair) {
  const std::vector<hiperd::Fig4Row> none = {
      row(0.1, 100.0), row(0.5, 200.0),  // slack gap too wide
  };
  EXPECT_THROW((void)hiperd::findTable2Pair(none, 0.01, 1.0),
               InvalidArgumentError);
  const std::vector<hiperd::Fig4Row> single = {row(0.1, 100.0)};
  EXPECT_THROW((void)hiperd::findTable2Pair(single, 0.01, 1.0),
               InvalidArgumentError);
}

TEST(Fig3Driver, NonDefaultInstanceShapes) {
  sched::Fig3Options options;
  options.mappings = 50;
  options.etc.apps = 8;
  options.etc.machines = 3;
  options.tau = 1.4;
  options.seed = 5;
  const auto rows = sched::runFig3(options);
  ASSERT_EQ(rows.size(), 50u);
  for (const auto& r : rows) {
    // Counts must partition 8 applications over 3 machines.
    EXPECT_LE(r.makespanMachineCount, 8u);
    EXPECT_LE(r.maxMachineCount, 8u);
    EXPECT_GE(r.maxMachineCount, (8u + 2u) / 3u);  // ceil(8/3) pigeonhole
    // S1 membership implies the exact line (tau = 1.4 here).
    if (r.inS1) {
      EXPECT_NEAR(r.robustness,
                  0.4 * r.makespan /
                      std::sqrt(static_cast<double>(r.maxMachineCount)),
                  1e-9 * r.makespan);
    }
  }
  EXPECT_THROW((void)sched::runFig3(sched::Fig3Options{.mappings = 0}),
               InvalidArgumentError);
}

TEST(Fig4Driver, ValidatesOptions) {
  hiperd::Fig4Options bad;
  bad.mappings = 0;
  EXPECT_THROW((void)hiperd::runFig4(bad), InvalidArgumentError);
}

}  // namespace
}  // namespace robust
