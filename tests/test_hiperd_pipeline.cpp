// Tests for the pipeline simulation: stable latencies must match Eq. 8,
// throughput violations must diverge at the predicted rate, and crossing
// the robustness boundary must be observable in the simulated system.
#include <gtest/gtest.h>

#include <cmath>

#include "robust/hiperd/generator.hpp"
#include "robust/hiperd/pipeline_sim.hpp"
#include "robust/util/error.hpp"

namespace robust::hiperd {
namespace {

NodeRef sensor(std::size_t i) { return NodeRef{NodeKind::Sensor, i}; }
NodeRef app(std::size_t i) { return NodeRef{NodeKind::Application, i}; }
NodeRef actuator(std::size_t i) { return NodeRef{NodeKind::Actuator, i}; }

/// One chain: s0 (period 50) -> a0 -> a1 -> act0, limit 120.
/// Tc(a0) = 2 * l1, Tc(a1) = 1 * l1 (factors 1: one app per machine).
HiperdScenario chain() {
  HiperdScenario scenario;
  SystemGraph& g = scenario.graph;
  g.addSensor("s0", 1.0 / 50.0);
  g.addApplication("a0");
  g.addApplication("a1");
  g.addActuator("act0");
  g.addEdge(sensor(0), app(0));
  g.addEdge(app(0), app(1));
  g.addEdge(app(1), actuator(0));
  g.finalize();
  scenario.machines = 2;
  scenario.lambdaOrig = {10.0};
  scenario.compute = {
      {LoadFunction::linear({2.0}), LoadFunction::linear({0.0})},
      {LoadFunction::linear({0.0}), LoadFunction::linear({1.0})},
  };
  scenario.comm.assign(g.edgeCount(), LoadFunction::zero(1));
  scenario.latencyLimits = {120.0};
  return scenario;
}

TEST(PipelineSim, StableLatencyEqualsEquationEight) {
  const HiperdScenario scenario = chain();
  const HiperdSystem system(scenario, sched::Mapping({0, 1}, 2));
  // lambda = 10: services 20 and 10, both below the period 50 -> stable,
  // steady latency = 30 = analytic L_0.
  const auto results = simulatePaths(system, scenario.lambdaOrig);
  ASSERT_EQ(results.size(), 1u);
  const auto& r = results[0];
  EXPECT_TRUE(r.stable);
  EXPECT_FALSE(r.throughputViolated);
  EXPECT_FALSE(r.latencyViolated);
  EXPECT_DOUBLE_EQ(r.growthRate, 0.0);
  EXPECT_DOUBLE_EQ(r.steadyLatency, 30.0);
  EXPECT_DOUBLE_EQ(r.steadyLatency,
                   system.latency(0, scenario.lambdaOrig));
  // Every data set sees the same latency (deterministic, underloaded).
  for (double latency : r.latencies) {
    EXPECT_DOUBLE_EQ(latency, 30.0);
  }
}

TEST(PipelineSim, ThroughputViolationDivergesAtPredictedRate) {
  const HiperdScenario scenario = chain();
  const HiperdSystem system(scenario, sched::Mapping({0, 1}, 2));
  // lambda = 30: a0's service 60 exceeds the period 50 -> queue builds at
  // rate 10 per data set; a1 (service 30) keeps up.
  const num::Vec lambda = {30.0};
  PipelineSimOptions options;
  options.dataSets = 300;
  const auto results = simulatePaths(system, lambda, options);
  const auto& r = results[0];
  EXPECT_TRUE(r.throughputViolated);
  EXPECT_FALSE(r.stable);
  EXPECT_NEAR(r.growthRate, 10.0, 1e-9);
  // Latency of data set n ~ L + n * (60 - 50).
  EXPECT_GT(r.steadyLatency, 1000.0);
}

TEST(PipelineSim, LatencyViolationWithoutThroughputViolation) {
  HiperdScenario scenario = chain();
  scenario.latencyLimits = {25.0};  // analytic latency is 30 > 25
  const HiperdSystem system(scenario, sched::Mapping({0, 1}, 2));
  const auto results = simulatePaths(system, scenario.lambdaOrig);
  EXPECT_TRUE(results[0].stable);
  EXPECT_TRUE(results[0].latencyViolated);
  EXPECT_FALSE(results[0].throughputViolated);
}

TEST(PipelineSim, RobustnessBoundaryIsObservable) {
  // Push lambda just inside and just beyond the robustness radius: the
  // simulated system must stay clean inside and violate beyond.
  const HiperdScenario scenario = chain();
  const HiperdSystem system(scenario, sched::Mapping({0, 1}, 2));
  const auto report = system.analyze();
  const auto& binding = report.radii[report.bindingFeature];
  const double unflooredRadius = binding.radius;

  auto violatedAt = [&](double scale) {
    num::Vec lambda = scenario.lambdaOrig;
    // Move along the binding direction scaled around the boundary point.
    for (std::size_t z = 0; z < lambda.size(); ++z) {
      lambda[z] += scale * (binding.boundaryPoint[z] - scenario.lambdaOrig[z]);
    }
    const auto results = simulatePaths(system, lambda);
    bool violated = false;
    for (const auto& r : results) {
      violated |= r.latencyViolated || r.throughputViolated;
    }
    return violated;
  };
  EXPECT_FALSE(violatedAt(0.99));
  EXPECT_TRUE(violatedAt(1.01));
  EXPECT_GT(unflooredRadius, 0.0);
}

TEST(PipelineSim, SimulatesEveryPathOfGeneratedScenarios) {
  const auto generated = generateScenario(ScenarioOptions{}, 2003);
  Pcg32 rng(3);
  const auto mapping = sched::randomMapping(
      generated.scenario.graph.applicationCount(),
      generated.scenario.machines, rng);
  const HiperdSystem system(generated.scenario, mapping);
  PipelineSimOptions options;
  options.dataSets = 50;
  const auto results =
      simulatePaths(system, generated.scenario.lambdaOrig, options);
  EXPECT_EQ(results.size(), generated.scenario.graph.paths().size());
  // Consistency with the analytic model: every stable path's steady latency
  // equals Eq. 8, and stability equals the throughput-constraint check.
  for (const auto& r : results) {
    if (r.stable) {
      EXPECT_NEAR(r.steadyLatency,
                  system.latency(r.path, generated.scenario.lambdaOrig),
                  1e-9);
    }
  }
}

TEST(PipelineSim, Validation) {
  const HiperdScenario scenario = chain();
  const HiperdSystem system(scenario, sched::Mapping({0, 1}, 2));
  PipelineSimOptions bad;
  bad.dataSets = 1;
  EXPECT_THROW((void)simulatePaths(system, scenario.lambdaOrig, bad),
               InvalidArgumentError);
  const num::Vec wrongDim = {1.0, 2.0};
  EXPECT_THROW((void)simulatePaths(system, wrongDim), InvalidArgumentError);
}

}  // namespace
}  // namespace robust::hiperd
