// Tests for the ETC matrix model and the CVB instance generator (Ali et al.
// 2000 heterogeneity parameterization) plus the gamma sampler underneath.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "robust/core/input_policy.hpp"
#include "robust/random/distributions.hpp"
#include "robust/scheduling/etc.hpp"
#include "robust/scheduling/etc_io.hpp"
#include "robust/util/diagnostics.hpp"
#include "robust/util/error.hpp"
#include "robust/util/stats.hpp"

namespace robust {
namespace {

// ------------------------------------------------------- distributions

TEST(Distributions, StandardNormalMoments) {
  Pcg32 rng(1);
  std::vector<double> xs(50000);
  for (auto& x : xs) {
    x = rnd::standardNormal(rng);
  }
  const Summary s = summarize(xs);
  EXPECT_NEAR(s.mean, 0.0, 0.02);
  EXPECT_NEAR(s.stddev, 1.0, 0.02);
}

TEST(Distributions, GammaMomentsShapeAboveOne) {
  Pcg32 rng(2);
  const double shape = 4.0;
  const double scale = 2.5;
  std::vector<double> xs(50000);
  for (auto& x : xs) {
    x = rnd::gamma(rng, shape, scale);
  }
  const Summary s = summarize(xs);
  EXPECT_NEAR(s.mean, shape * scale, 0.15);
  EXPECT_NEAR(s.stddev, std::sqrt(shape) * scale, 0.15);
}

TEST(Distributions, GammaMomentsShapeBelowOne) {
  Pcg32 rng(3);
  const double shape = 0.5;
  const double scale = 3.0;
  std::vector<double> xs(50000);
  for (auto& x : xs) {
    x = rnd::gamma(rng, shape, scale);
    EXPECT_GT(x, 0.0);
  }
  const Summary s = summarize(xs);
  EXPECT_NEAR(s.mean, shape * scale, 0.1);
  EXPECT_NEAR(s.stddev, std::sqrt(shape) * scale, 0.15);
}

TEST(Distributions, GammaMeanCvMatchesPaperParameterization) {
  // The paper's "heterogeneity" is the coefficient of variation.
  Pcg32 rng(4);
  const double mean = 10.0;
  const double cv = 0.7;
  std::vector<double> xs(60000);
  for (auto& x : xs) {
    x = rnd::gammaMeanCv(rng, mean, cv);
  }
  const Summary s = summarize(xs);
  EXPECT_NEAR(s.mean, mean, 0.1);
  EXPECT_NEAR(s.heterogeneity(), cv, 0.02);
}

TEST(Distributions, GammaMeanCvZeroCvDegenerates) {
  Pcg32 rng(5);
  EXPECT_DOUBLE_EQ(rnd::gammaMeanCv(rng, 7.0, 0.0), 7.0);
}

TEST(Distributions, ExponentialMoments) {
  Pcg32 rng(6);
  std::vector<double> xs(50000);
  for (auto& x : xs) {
    x = rnd::exponential(rng, 2.0);
  }
  const Summary s = summarize(xs);
  EXPECT_NEAR(s.mean, 0.5, 0.01);
}

TEST(Distributions, UniformIntCoversRange) {
  Pcg32 rng(7);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 5000; ++i) {
    const int v = rnd::uniformInt(rng, 3, 7);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 7);
    ++counts[static_cast<std::size_t>(v - 3)];
  }
  for (int c : counts) {
    EXPECT_GT(c, 800);
  }
}

TEST(Distributions, Validation) {
  Pcg32 rng(8);
  EXPECT_THROW((void)rnd::gamma(rng, 0.0, 1.0), InvalidArgumentError);
  EXPECT_THROW((void)rnd::gamma(rng, 1.0, 0.0), InvalidArgumentError);
  EXPECT_THROW((void)rnd::gammaMeanCv(rng, -1.0, 0.5), InvalidArgumentError);
  EXPECT_THROW((void)rnd::gammaMeanCv(rng, 1.0, -0.5), InvalidArgumentError);
  EXPECT_THROW((void)rnd::exponential(rng, 0.0), InvalidArgumentError);
  EXPECT_THROW((void)rnd::uniformInt(rng, 5, 4), InvalidArgumentError);
}

// --------------------------------------------------------------- matrix

TEST(EtcMatrix, StoresValues) {
  sched::EtcMatrix etc(3, 2);
  etc(2, 1) = 7.5;
  EXPECT_DOUBLE_EQ(etc(2, 1), 7.5);
  EXPECT_DOUBLE_EQ(etc(0, 0), 0.0);
  EXPECT_EQ(etc.apps(), 3u);
  EXPECT_EQ(etc.machines(), 2u);
}

TEST(EtcMatrix, RejectsEmpty) {
  EXPECT_THROW(sched::EtcMatrix(0, 2), InvalidArgumentError);
  EXPECT_THROW(sched::EtcMatrix(2, 0), InvalidArgumentError);
}

// ------------------------------------------------------------ generator

TEST(EtcGenerator, Deterministic) {
  sched::EtcOptions options;
  Pcg32 a(11);
  Pcg32 b(11);
  const auto etc1 = sched::generateEtc(options, a);
  const auto etc2 = sched::generateEtc(options, b);
  for (std::size_t i = 0; i < options.apps; ++i) {
    for (std::size_t j = 0; j < options.machines; ++j) {
      EXPECT_DOUBLE_EQ(etc1(i, j), etc2(i, j));
    }
  }
}

TEST(EtcGenerator, AllPositive) {
  sched::EtcOptions options;
  Pcg32 rng(12);
  const auto etc = sched::generateEtc(options, rng);
  for (std::size_t i = 0; i < options.apps; ++i) {
    for (std::size_t j = 0; j < options.machines; ++j) {
      EXPECT_GT(etc(i, j), 0.0);
    }
  }
}

TEST(EtcGenerator, ConsistentRowsAreSorted) {
  sched::EtcOptions options;
  options.consistency = sched::EtcConsistency::Consistent;
  Pcg32 rng(13);
  const auto etc = sched::generateEtc(options, rng);
  for (std::size_t i = 0; i < options.apps; ++i) {
    for (std::size_t j = 0; j + 1 < options.machines; ++j) {
      EXPECT_LE(etc(i, j), etc(i, j + 1));
    }
  }
}

TEST(EtcGenerator, SemiConsistentEvenColumnsSorted) {
  sched::EtcOptions options;
  options.machines = 6;
  options.consistency = sched::EtcConsistency::SemiConsistent;
  Pcg32 rng(14);
  const auto etc = sched::generateEtc(options, rng);
  for (std::size_t i = 0; i < options.apps; ++i) {
    EXPECT_LE(etc(i, 0), etc(i, 2));
    EXPECT_LE(etc(i, 2), etc(i, 4));
  }
}

TEST(EtcGenerator, ZeroHeterogeneityIsConstant) {
  sched::EtcOptions options;
  options.taskHeterogeneity = 0.0;
  options.machineHeterogeneity = 0.0;
  Pcg32 rng(15);
  const auto etc = sched::generateEtc(options, rng);
  for (std::size_t i = 0; i < options.apps; ++i) {
    for (std::size_t j = 0; j < options.machines; ++j) {
      EXPECT_DOUBLE_EQ(etc(i, j), options.meanTaskTime);
    }
  }
}

TEST(EtcGenerator, Validation) {
  Pcg32 rng(16);
  sched::EtcOptions bad;
  bad.meanTaskTime = 0.0;
  EXPECT_THROW((void)sched::generateEtc(bad, rng), InvalidArgumentError);
  bad = {};
  bad.taskHeterogeneity = -0.1;
  EXPECT_THROW((void)sched::generateEtc(bad, rng), InvalidArgumentError);
}

// ----------------------------------------------------------------- io

TEST(EtcIo, RoundTripsExactly) {
  sched::EtcOptions options;
  options.apps = 7;
  options.machines = 3;
  Pcg32 rng(44);
  const auto etc = sched::generateEtc(options, rng);
  std::stringstream stream;
  sched::saveEtcCsv(etc, stream);
  const auto loaded = sched::loadEtcCsv(stream);
  ASSERT_EQ(loaded.apps(), etc.apps());
  ASSERT_EQ(loaded.machines(), etc.machines());
  for (std::size_t i = 0; i < etc.apps(); ++i) {
    for (std::size_t j = 0; j < etc.machines(); ++j) {
      EXPECT_EQ(loaded(i, j), etc(i, j));  // bit-exact via %.17g
    }
  }
}

TEST(EtcIo, HeaderShape) {
  sched::EtcMatrix etc(1, 2);
  etc(0, 0) = 1.5;
  etc(0, 1) = 2.5;
  std::stringstream stream;
  sched::saveEtcCsv(etc, stream);
  std::string header;
  std::getline(stream, header);
  EXPECT_EQ(header, "app,m0,m1");
}

TEST(EtcIo, RejectsMalformedInput) {
  {
    std::stringstream s("");
    EXPECT_THROW((void)sched::loadEtcCsv(s), InvalidArgumentError);
  }
  {
    std::stringstream s("bogus,m0\na0,1.0\n");
    EXPECT_THROW((void)sched::loadEtcCsv(s), InvalidArgumentError);
  }
  {
    std::stringstream s("app,m0,m1\na0,1.0\n");  // ragged
    EXPECT_THROW((void)sched::loadEtcCsv(s), InvalidArgumentError);
  }
  {
    std::stringstream s("app,m0\na0,abc\n");  // non-numeric
    EXPECT_THROW((void)sched::loadEtcCsv(s), InvalidArgumentError);
  }
  {
    std::stringstream s("app,m0\n");  // no rows
    EXPECT_THROW((void)sched::loadEtcCsv(s), InvalidArgumentError);
  }
}

// The loader's errors must carry source:line:column provenance so a bad
// cell in a 400x40 CSV is findable without bisecting the file by hand.
TEST(EtcIo, DiagnosticCarriesLineAndColumnProvenance) {
  std::stringstream s("app,m0,m1\na0,1.5,nan\n");
  try {
    (void)sched::loadEtcCsv(s);
    FAIL() << "expected a throw";
  } catch (const util::ParseError& e) {
    // Data row 1 is line 2; the label is field 1, so the second data cell
    // is field 3.
    EXPECT_EQ(e.diagnostic().format(),
              "etc.csv:2:3: cell 'nan' is not a finite positive time");
    EXPECT_EQ(e.diagnostic().source, "etc.csv");
    EXPECT_EQ(e.diagnostic().line, 2u);
    EXPECT_EQ(e.diagnostic().column, 3u);
  }
}

// Rejections are categorized (util::RejectCategory) so operators can watch
// *why* inputs bounce without parsing message strings.
TEST(EtcIo, RejectionsCarryTheRightCategory) {
  const auto categoryOf = [](const char* text) {
    std::stringstream s(text);
    try {
      (void)sched::loadEtcCsv(s);
    } catch (const util::ParseError& e) {
      return e.diagnostic().category;
    }
    ADD_FAILURE() << "input was accepted: " << text;
    return util::RejectCategory::Other;
  };
  EXPECT_EQ(categoryOf("app,m0\na0,abc\n"), util::RejectCategory::Format);
  EXPECT_EQ(categoryOf("app,m0\na0,nan\n"), util::RejectCategory::Domain);
  EXPECT_EQ(categoryOf("app,m0\na0,-4\n"), util::RejectCategory::Domain);
  EXPECT_EQ(categoryOf("app,m0\na0,1.5,2.5\n"),
            util::RejectCategory::Structure);
  EXPECT_EQ(categoryOf("nope,m0\na0,1.5\n"), util::RejectCategory::Structure);
  EXPECT_EQ(categoryOf(""), util::RejectCategory::Truncated);
  EXPECT_EQ(categoryOf("app,m0\n"), util::RejectCategory::Truncated);
}

TEST(EtcIo, DiagnosticUsesCallerProvidedSourceName) {
  std::stringstream s("app,m0\na0,-4\n");
  try {
    (void)sched::loadEtcCsv(s, "runs/trial7.csv");
    FAIL() << "expected a throw";
  } catch (const util::ParseError& e) {
    EXPECT_EQ(e.diagnostic().format(),
              "runs/trial7.csv:2:2: cell '-4' is not a positive time (ETC "
              "entries are execution times)");
  }
}

TEST(EtcIo, RaggedRowDiagnosticNamesTheLine) {
  std::stringstream s("app,m0,m1\na0,1.0,2.0\na1,3.0\n");
  try {
    (void)sched::loadEtcCsv(s);
    FAIL() << "expected a throw";
  } catch (const util::ParseError& e) {
    EXPECT_EQ(e.diagnostic().format(),
              "etc.csv:3: ragged row: expected 3 cells, got 2");
  }
}

TEST(EtcIo, PermissivePolicyAdmitsNonFiniteCells) {
  // The permissive policy exists for forensic re-loading of damaged
  // artifacts; it relaxes value checks but never structural ones.
  std::stringstream s("app,m0,m1\na0,inf,2.0\n");
  const auto etc = sched::loadEtcCsv(s, "etc.csv", core::InputPolicy::permissive());
  EXPECT_TRUE(std::isinf(etc(0, 0)));
  EXPECT_DOUBLE_EQ(etc(0, 1), 2.0);
  std::stringstream ragged("app,m0,m1\na0,1.0\n");
  EXPECT_THROW(
      (void)sched::loadEtcCsv(ragged, "etc.csv", core::InputPolicy::permissive()),
      InvalidArgumentError);
}

TEST(EtcIo, PolicyCapRejectsHostileHeader) {
  core::InputPolicy tight;
  tight.maxDeclaredCount = 4;
  std::stringstream s("app,m0,m1,m2,m3,m4,m5\na0,1,1,1,1,1,1\n");
  EXPECT_THROW((void)sched::loadEtcCsv(s, "etc.csv", tight),
               InvalidArgumentError);
}

TEST(EtcIo, SkipsBlankLinesAndCarriageReturns) {
  std::stringstream s("app,m0,m1\r\na0,1.5,2.5\r\n\na1,3.5,4.5\n");
  const auto etc = sched::loadEtcCsv(s);
  EXPECT_EQ(etc.apps(), 2u);
  EXPECT_DOUBLE_EQ(etc(0, 1), 2.5);
  EXPECT_DOUBLE_EQ(etc(1, 0), 3.5);
}

// Property: measured heterogeneities track the requested ones across a sweep
// (the CVB construction's defining property).
class EtcHeterogeneity
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(EtcHeterogeneity, MeasuredTracksRequested) {
  const auto [taskHet, machineHet] = GetParam();
  sched::EtcOptions options;
  options.apps = 400;       // large instance for stable statistics
  options.machines = 40;
  options.taskHeterogeneity = taskHet;
  options.machineHeterogeneity = machineHet;
  Pcg32 rng(17);
  const auto etc = sched::generateEtc(options, rng);

  // Machine heterogeneity: CV across machines within a row, averaged.
  std::vector<double> rowCvs;
  std::vector<double> rowMeans;
  for (std::size_t i = 0; i < options.apps; ++i) {
    std::vector<double> row(options.machines);
    for (std::size_t j = 0; j < options.machines; ++j) {
      row[j] = etc(i, j);
    }
    const Summary s = summarize(row);
    rowCvs.push_back(s.heterogeneity());
    rowMeans.push_back(s.mean);
  }
  const double measuredMachineHet = summarize(rowCvs).mean;
  EXPECT_NEAR(measuredMachineHet, machineHet, 0.05 + 0.1 * machineHet);

  // Task heterogeneity: CV of the per-task central values.
  const double measuredTaskHet = summarize(rowMeans).heterogeneity();
  // The row mean also carries machine-level noise (variance shrinks with
  // 1/machines); the tolerance accounts for it.
  EXPECT_NEAR(measuredTaskHet, taskHet, 0.06 + 0.15 * taskHet);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EtcHeterogeneity,
    ::testing::Values(std::pair{0.1, 0.1}, std::pair{0.3, 0.3},
                      std::pair{0.7, 0.7}, std::pair{0.3, 0.9},
                      std::pair{0.9, 0.3}, std::pair{1.2, 0.5}));

}  // namespace
}  // namespace robust
