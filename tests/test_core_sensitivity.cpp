// Tests for the sensitivity (critical direction) analysis.
#include <gtest/gtest.h>

#include <cmath>

#include "robust/core/sensitivity.hpp"
#include "robust/util/error.hpp"

namespace robust::core {
namespace {

RobustnessAnalyzer twoFeatureAnalyzer() {
  std::vector<PerformanceFeature> features;
  // Feature A depends mostly on component 1; feature B only on component 0.
  features.push_back(PerformanceFeature{
      "A", ImpactFunction::affine({1.0, 3.0}, 0.0),
      ToleranceBounds::atMost(20.0)});
  features.push_back(PerformanceFeature{
      "B", ImpactFunction::affine({2.0, 0.0}, 0.0),
      ToleranceBounds::atMost(50.0)});
  PerturbationParameter parameter{"pi", {1.0, 1.0}, false, ""};
  return RobustnessAnalyzer(std::move(features), std::move(parameter));
}

TEST(Sensitivity, DirectionIsUnitAndPointsAtBoundary) {
  const auto analyzer = twoFeatureAnalyzer();
  const auto radius = analyzer.radiusOf(0);
  const auto s = sensitivityOf(radius, analyzer.parameter());
  EXPECT_EQ(s.feature, "A");
  EXPECT_NEAR(num::norm2(s.direction), 1.0, 1e-12);
  // For an affine feature the critical direction is the normalized weight
  // vector: (1, 3)/sqrt(10).
  EXPECT_NEAR(s.direction[0], 1.0 / std::sqrt(10.0), 1e-12);
  EXPECT_NEAR(s.direction[1], 3.0 / std::sqrt(10.0), 1e-12);
}

TEST(Sensitivity, RankingOrdersByMagnitude) {
  const auto analyzer = twoFeatureAnalyzer();
  const auto s = sensitivityOf(analyzer.radiusOf(0), analyzer.parameter());
  ASSERT_EQ(s.ranking.size(), 2u);
  EXPECT_EQ(s.ranking[0], 1u);  // component 1 has weight 3
  EXPECT_EQ(s.ranking[1], 0u);
}

TEST(Sensitivity, BindingSensitivityUsesTheMinimumRadiusFeature) {
  const auto analyzer = twoFeatureAnalyzer();
  const auto report = analyzer.analyze();
  // Radii: A = (20-4)/sqrt(10) = 5.06, B = (50-2)/2 = 24 -> A binds.
  EXPECT_EQ(report.radii[report.bindingFeature].feature, "A");
  const auto s = bindingSensitivity(report, analyzer.parameter());
  EXPECT_EQ(s.feature, "A");
}

TEST(Sensitivity, ZeroRadiusYieldsZeroDirection) {
  std::vector<PerformanceFeature> features;
  features.push_back(PerformanceFeature{
      "violated", ImpactFunction::affine({1.0}, 0.0),
      ToleranceBounds::atMost(0.5)});
  PerturbationParameter parameter{"pi", {1.0}, false, ""};
  const RobustnessAnalyzer analyzer(std::move(features),
                                    std::move(parameter));
  const auto s =
      sensitivityOf(analyzer.radiusOf(0), analyzer.parameter());
  EXPECT_DOUBLE_EQ(s.direction[0], 0.0);
  EXPECT_EQ(s.ranking[0], 0u);
}

TEST(Sensitivity, RejectsInfiniteRadius) {
  RadiusReport unreachable;
  unreachable.radius = std::numeric_limits<double>::infinity();
  PerturbationParameter parameter{"pi", {1.0}, false, ""};
  EXPECT_THROW((void)sensitivityOf(unreachable, parameter),
               InvalidArgumentError);
}

}  // namespace
}  // namespace robust::core
