// The SIMD kernel lane and the metric-only evaluation lane.
//
// Three layers of guarantees are pinned here:
//   1. Kernel correctness and determinism: dotBlocked / dotRowsBlocked /
//      norm*Blocked agree with naive references, are bit-identical between
//      the scalar fallback and the AVX2 target (the scalar lanes replay the
//      vector schedule, including the masked tail), and handle degenerate
//      shapes (0 elements, 1 element, every remainder tail, signed zeros).
//   2. Metric-lane equivalence: CompiledProblem::evaluateMetric matches
//      evaluate() within 1e-12 relative with the same argmin across all
//      four norms, origin/constant/scale overrides, discrete flooring, and
//      the callable fallback; incumbent pruning changes no result bits;
//      batch results are bit-identical for every thread count.
//   3. The HiPer-D lane and search wiring: CompiledScenario::analyzeMetric
//      vs the full analyze(), pruning bit-equality, and the shape-generic
//      localSearch / annealMapping / geneticAlgorithm overloads driven by
//      hiperd::robustnessObjective.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <limits>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "robust/core/compiled.hpp"
#include "robust/hiperd/compiled_scenario.hpp"
#include "robust/hiperd/generator.hpp"
#include "robust/numeric/simd.hpp"
#include "robust/numeric/vector_ops.hpp"
#include "robust/scheduling/heuristics.hpp"
#include "robust/scheduling/mapping.hpp"
#include "robust/util/error.hpp"
#include "robust/util/rng.hpp"

namespace robust {
namespace {

using num::simd::Target;

/// RAII guard: restores the auto-resolved dispatch target after each test
/// so a forced-scalar test cannot leak into the rest of the binary.
class SimdKernels : public ::testing::Test {
 protected:
  void TearDown() override {
    num::simd::setTarget(num::simd::avx2Available() ? Target::Avx2
                                                    : Target::Scalar);
  }
};

using MetricLane = SimdKernels;
using HiperdMetricLane = SimdKernels;
using SearchWiring = SimdKernels;

std::vector<double> randomVec(std::size_t n, Pcg32& rng, double lo = -2.0,
                              double hi = 2.0) {
  std::vector<double> v(n);
  for (double& x : v) {
    x = rng.uniform(lo, hi);
  }
  return v;
}

// ------------------------------------------------------------- kernels

TEST_F(SimdKernels, DotMatchesReferenceAcrossSizes) {
  Pcg32 rng(1);
  for (std::size_t n = 0; n <= 33; ++n) {
    const auto a = randomVec(n, rng);
    const auto x = randomVec(n, rng);
    double reference = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      reference += a[i] * x[i];
    }
    const double blocked = num::simd::dotBlocked(a, x);
    // The blocked order differs from the element order, so the comparison
    // is relative, not bitwise.
    const double scale = std::max(1.0, std::fabs(reference));
    EXPECT_NEAR(blocked, reference, 1e-12 * scale) << "n = " << n;
  }
}

TEST_F(SimdKernels, NormsMatchReferencesAcrossSizes) {
  Pcg32 rng(2);
  for (std::size_t n = 0; n <= 33; ++n) {
    const auto a = randomVec(n, rng);
    EXPECT_NEAR(num::simd::norm1Blocked(a), num::norm1(a),
                1e-12 * std::max(1.0, num::norm1(a)))
        << "n = " << n;
    EXPECT_NEAR(num::simd::norm2Blocked(a), num::norm2(a),
                1e-12 * std::max(1.0, num::norm2(a)))
        << "n = " << n;
    // max is order-independent: the l-inf kernel is bit-equal to the
    // legacy loop for every input without NaNs.
    EXPECT_EQ(num::simd::normInfBlocked(a), num::normInf(a)) << "n = " << n;
  }
}

TEST_F(SimdKernels, ScalarAndAvx2AreBitIdentical) {
  if (!num::simd::avx2Available()) {
    GTEST_SKIP() << "no AVX2 on this host/build";
  }
  Pcg32 rng(3);
  for (const std::size_t n :
       {std::size_t{0}, std::size_t{1}, std::size_t{2}, std::size_t{3},
        std::size_t{4}, std::size_t{5}, std::size_t{7}, std::size_t{8},
        std::size_t{13}, std::size_t{16}, std::size_t{17}, std::size_t{100},
        std::size_t{1003}}) {
    const auto a = randomVec(n, rng);
    const auto x = randomVec(n, rng);

    num::simd::setTarget(Target::Scalar);
    ASSERT_EQ(num::simd::activeTarget(), Target::Scalar);
    const double dotS = num::simd::dotBlocked(a, x);
    const double n1S = num::simd::norm1Blocked(a);
    const double n2S = num::simd::norm2Blocked(a);
    const double niS = num::simd::normInfBlocked(a);

    num::simd::setTarget(Target::Avx2);
    ASSERT_EQ(num::simd::activeTarget(), Target::Avx2);
    EXPECT_EQ(num::simd::dotBlocked(a, x), dotS) << "n = " << n;
    EXPECT_EQ(num::simd::norm1Blocked(a), n1S) << "n = " << n;
    EXPECT_EQ(num::simd::norm2Blocked(a), n2S) << "n = " << n;
    EXPECT_EQ(num::simd::normInfBlocked(a), niS) << "n = " << n;
  }
}

TEST_F(SimdKernels, DotRowsMatchesPerRowDotBitwise) {
  Pcg32 rng(4);
  const std::vector<Target> targets =
      num::simd::avx2Available()
          ? std::vector<Target>{Target::Scalar, Target::Avx2}
          : std::vector<Target>{Target::Scalar};
  for (std::size_t rows = 0; rows <= 9; ++rows) {
    for (const std::size_t dims : {std::size_t{1}, std::size_t{3},
                                   std::size_t{8}, std::size_t{13}}) {
      const auto matrix = randomVec(rows * dims, rng);
      const auto x = randomVec(dims, rng);
      for (const Target target : targets) {
        num::simd::setTarget(target);
        std::vector<double> out(rows, std::numeric_limits<double>::quiet_NaN());
        num::simd::dotRowsBlocked(matrix.data(), rows, x, out.data());
        for (std::size_t r = 0; r < rows; ++r) {
          const std::span<const double> row{matrix.data() + r * dims, dims};
          EXPECT_EQ(out[r], num::simd::dotBlocked(row, x))
              << "rows = " << rows << " dims = " << dims << " r = " << r
              << " target = " << num::simd::toString(target);
        }
      }
    }
  }
}

TEST_F(SimdKernels, DegenerateShapes) {
  const std::vector<double> empty;
  EXPECT_EQ(num::simd::dotBlocked(empty, empty), 0.0);
  EXPECT_EQ(num::simd::norm1Blocked(empty), 0.0);
  EXPECT_EQ(num::simd::norm2Blocked(empty), 0.0);
  EXPECT_EQ(num::simd::normInfBlocked(empty), 0.0);

  const std::vector<double> one{-3.0};
  const std::vector<double> oneX{2.0};
  EXPECT_EQ(num::simd::dotBlocked(one, oneX), -6.0);
  EXPECT_EQ(num::simd::norm1Blocked(one), 3.0);
  EXPECT_EQ(num::simd::norm2Blocked(one), 3.0);
  EXPECT_EQ(num::simd::normInfBlocked(one), 3.0);

  // Signed zeros: the masked tail contributes +0.0 products, and the abs
  // reductions must strip the sign (-0.0 weights are valid inputs).
  const std::vector<double> zeros{-0.0, 0.0, -0.0};
  EXPECT_EQ(num::simd::norm1Blocked(zeros), 0.0);
  EXPECT_FALSE(std::signbit(num::simd::norm1Blocked(zeros)));
  EXPECT_EQ(num::simd::normInfBlocked(zeros), 0.0);
  EXPECT_FALSE(std::signbit(num::simd::normInfBlocked(zeros)));
  const std::vector<double> zerosX{1.0, -1.0, 5.0};
  EXPECT_EQ(num::simd::dotBlocked(zeros, zerosX), 0.0);

  // dotRowsBlocked with zero rows must not touch out.
  num::simd::dotRowsBlocked(nullptr, 0, empty, nullptr);
}

TEST_F(SimdKernels, DotBlockedRejectsMismatchedSizes) {
  const std::vector<double> a{1.0, 2.0};
  const std::vector<double> x{1.0};
  EXPECT_THROW((void)num::simd::dotBlocked(a, x), InvalidArgumentError);
}

TEST_F(SimdKernels, EnvOverrideNamesRoundTrip) {
  EXPECT_STREQ(num::simd::toString(Target::Scalar), "scalar");
  EXPECT_STREQ(num::simd::toString(Target::Avx2), "avx2");
  // Forcing Avx2 on a host without it must fall back, never crash.
  num::simd::setTarget(Target::Avx2);
  if (!num::simd::avx2Available()) {
    EXPECT_EQ(num::simd::activeTarget(), Target::Scalar);
  } else {
    EXPECT_EQ(num::simd::activeTarget(), Target::Avx2);
  }
}

// --------------------------------------------------------- metric lane

/// A random all-affine problem: `rows` features of dimension `dims` with
/// one- and two-sided bounds placed so some rows bind tightly and most lose
/// early (exercising the pruning branch).
core::CompiledProblem randomProblem(std::size_t rows, std::size_t dims,
                                    core::NormKind norm, Pcg32& rng,
                                    bool discrete = false) {
  core::ProblemSpec spec;
  spec.parameter.name = "pi";
  spec.parameter.discrete = discrete;
  spec.parameter.origin.resize(dims);
  for (double& v : spec.parameter.origin) {
    v = rng.uniform(0.5, 1.5);
  }
  spec.options.norm = norm;
  if (norm == core::NormKind::Weighted) {
    spec.options.normWeights.resize(dims);
    for (double& w : spec.options.normWeights) {
      w = rng.uniform(0.25, 4.0);
    }
  }
  for (std::size_t r = 0; r < rows; ++r) {
    num::Vec weights(dims);
    for (double& w : weights) {
      w = rng.uniform(0.1, 2.0);
    }
    double atOrigin = 0.0;
    for (std::size_t k = 0; k < dims; ++k) {
      atOrigin += weights[k] * spec.parameter.origin[k];
    }
    const double margin = atOrigin * rng.uniform(0.05, 3.0);
    const core::ToleranceBounds bounds =
        rng.nextDouble() < 0.5
            ? core::ToleranceBounds::atMost(atOrigin + margin)
            : core::ToleranceBounds::between(atOrigin - margin,
                                             atOrigin + margin);
    spec.features.push_back(core::PerformanceFeature{
        "F_" + std::to_string(r),
        core::ImpactFunction::affine(std::move(weights)), bounds});
  }
  return core::CompiledProblem::compile(std::move(spec));
}

void expectMetricMatchesEvaluate(const core::CompiledProblem& problem,
                                 const core::AnalysisInstance& instance,
                                 const std::string& label) {
  const core::RobustnessReport full = problem.evaluate(instance);
  const core::MetricResult lane = problem.evaluateMetric(instance);
  const double scale = std::max(1.0, std::fabs(full.metric));
  EXPECT_NEAR(lane.metric, full.metric, 1e-12 * scale) << label;
  EXPECT_EQ(lane.bindingFeature, full.bindingFeature) << label;
  EXPECT_EQ(lane.floored, full.floored) << label;
}

TEST_F(MetricLane, MatchesEvaluateAcrossNormsAndShapes) {
  Pcg32 rng(10);
  const core::NormKind norms[] = {core::NormKind::L1, core::NormKind::L2,
                                  core::NormKind::LInf,
                                  core::NormKind::Weighted};
  for (const core::NormKind norm : norms) {
    for (const auto [rows, dims] :
         {std::pair<std::size_t, std::size_t>{1, 1},
          std::pair<std::size_t, std::size_t>{3, 5},
          std::pair<std::size_t, std::size_t>{17, 13},
          std::pair<std::size_t, std::size_t>{40, 8}}) {
      const auto problem = randomProblem(rows, dims, norm, rng);
      const std::string label = "norm " + core::toString(norm) + " rows " +
                                std::to_string(rows) + " dims " +
                                std::to_string(dims);
      // Compiled defaults (cached origin dots)...
      expectMetricMatchesEvaluate(problem, core::AnalysisInstance{}, label);
      // ...and an overridden origin (live kernel dot pass).
      const auto origin = randomVec(dims, rng, 0.6, 1.4);
      core::AnalysisInstance instance;
      instance.origin = origin;
      expectMetricMatchesEvaluate(problem, instance, label + " origin");
    }
  }
}

TEST_F(MetricLane, MatchesEvaluateWithConstantAndScaleOverrides) {
  Pcg32 rng(11);
  const auto problem = randomProblem(9, 7, core::NormKind::L2, rng);
  const auto origin = randomVec(7, rng, 0.6, 1.4);
  std::vector<double> constants(9);
  std::vector<double> scales(9);
  for (std::size_t i = 0; i < 9; ++i) {
    constants[i] = rng.uniform(-0.5, 0.5);
    scales[i] = rng.uniform(0.5, 2.0);
  }
  core::AnalysisInstance instance;
  instance.origin = origin;
  instance.constants = constants;
  expectMetricMatchesEvaluate(problem, instance, "constants");
  instance.scales = scales;
  expectMetricMatchesEvaluate(problem, instance, "constants + scales");
}

TEST_F(MetricLane, PruningChangesNoBits) {
  Pcg32 rng(12);
  for (const core::NormKind norm :
       {core::NormKind::L1, core::NormKind::L2, core::NormKind::LInf,
        core::NormKind::Weighted}) {
    const auto problem = randomProblem(60, 16, norm, rng);
    const auto origin = randomVec(16, rng, 0.6, 1.4);
    core::AnalysisInstance instance;
    instance.origin = origin;
    core::MetricWorkspace workspace;
    const core::MetricResult pruned =
        problem.evaluateMetric(instance, workspace, /*prune=*/true);
    const core::MetricResult unpruned =
        problem.evaluateMetric(instance, workspace, /*prune=*/false);
    EXPECT_EQ(pruned.metric, unpruned.metric);
    EXPECT_EQ(pruned.bindingFeature, unpruned.bindingFeature);
    EXPECT_EQ(pruned.floored, unpruned.floored);
  }
}

TEST_F(MetricLane, DeterministicAcrossRunsAndDispatchTargets) {
  Pcg32 rng(13);
  const auto problem = randomProblem(33, 19, core::NormKind::L2, rng);
  const auto origin = randomVec(19, rng, 0.6, 1.4);
  core::AnalysisInstance instance;
  instance.origin = origin;

  const core::MetricResult first = problem.evaluateMetric(instance);
  const core::MetricResult second = problem.evaluateMetric(instance);
  EXPECT_EQ(first.metric, second.metric);
  EXPECT_EQ(first.bindingFeature, second.bindingFeature);

  if (num::simd::avx2Available()) {
    num::simd::setTarget(Target::Scalar);
    const core::MetricResult scalar = problem.evaluateMetric(instance);
    num::simd::setTarget(Target::Avx2);
    const core::MetricResult avx2 = problem.evaluateMetric(instance);
    EXPECT_EQ(scalar.metric, avx2.metric);
    EXPECT_EQ(scalar.bindingFeature, avx2.bindingFeature);
    EXPECT_EQ(scalar.metric, first.metric);
  }
}

TEST_F(MetricLane, BatchIsBitIdenticalAcrossThreadCounts) {
  Pcg32 rng(14);
  const auto problem = randomProblem(25, 11, core::NormKind::L2, rng);
  constexpr std::size_t kInstances = 23;  // not a multiple of the tile width
  std::vector<num::Vec> origins;
  origins.reserve(kInstances);
  std::vector<core::AnalysisInstance> instances(kInstances);
  for (std::size_t i = 0; i < kInstances; ++i) {
    origins.emplace_back(randomVec(11, rng, 0.6, 1.4));
    if (i % 5 != 0) {  // every 5th instance keeps the compiled default
      instances[i].origin = origins.back();
    }
  }
  const auto serial = problem.analyzeBatchMetric(instances, /*threads=*/1);
  const auto parallel = problem.analyzeBatchMetric(instances, /*threads=*/4);
  ASSERT_EQ(serial.size(), kInstances);
  ASSERT_EQ(parallel.size(), kInstances);
  core::MetricWorkspace workspace;
  for (std::size_t i = 0; i < kInstances; ++i) {
    EXPECT_EQ(serial[i].metric, parallel[i].metric) << "i = " << i;
    EXPECT_EQ(serial[i].bindingFeature, parallel[i].bindingFeature)
        << "i = " << i;
    // The batch lane and the single-instance lane share metricFromDots.
    const auto single = problem.evaluateMetric(instances[i], workspace);
    EXPECT_EQ(serial[i].metric, single.metric) << "i = " << i;
    EXPECT_EQ(serial[i].bindingFeature, single.bindingFeature) << "i = " << i;
  }
}

TEST_F(MetricLane, DiscreteParameterFloorsTheMetric) {
  Pcg32 rng(15);
  const auto problem =
      randomProblem(6, 4, core::NormKind::L2, rng, /*discrete=*/true);
  const core::MetricResult lane = problem.evaluateMetric();
  const core::RobustnessReport full = problem.evaluate();
  EXPECT_EQ(lane.floored, full.floored);
  EXPECT_EQ(lane.metric, full.metric);  // floor() of near-equal radii
  EXPECT_EQ(lane.metric, std::floor(lane.metric));
}

TEST_F(MetricLane, CallableFeaturesFallBackToTheFullArithmetic) {
  Pcg32 rng(16);
  core::ProblemSpec spec;
  spec.parameter.name = "pi";
  spec.parameter.origin = {1.0, 2.0};
  // One affine row plus one callable feature: the callable goes through
  // the same per-feature fallback the full path runs, so the lane stays
  // exact.
  spec.features.push_back(core::PerformanceFeature{
      "affine", core::ImpactFunction::affine(num::Vec{1.0, 1.0}),
      core::ToleranceBounds::atMost(10.0)});
  spec.features.push_back(core::PerformanceFeature{
      "quadratic",
      core::ImpactFunction::callable([](std::span<const double> x) {
        double s = 0.0;
        for (double v : x) {
          s += v * v;
        }
        return s;
      }),
      core::ToleranceBounds::atMost(30.0)});
  const auto problem = core::CompiledProblem::compile(std::move(spec));

  const core::RobustnessReport full = problem.evaluate();
  const core::MetricResult lane = problem.evaluateMetric();
  const double scale = std::max(1.0, std::fabs(full.metric));
  EXPECT_NEAR(lane.metric, full.metric, 1e-12 * scale);
  EXPECT_EQ(lane.bindingFeature, full.bindingFeature);
}

// -------------------------------------------------- weighted-norm hoist

TEST_F(MetricLane, WeightedRadiusPinnedToTheClosedForm) {
  // weights (3, 4), norm weights (1, 4), bound dot + 5: the weighted dual
  // norm is sqrt(9/1 + 16/4) = sqrt(13), so the radius is 5 / sqrt(13).
  core::ProblemSpec spec;
  spec.parameter.name = "pi";
  spec.parameter.origin = {1.0, 1.0};
  spec.options.norm = core::NormKind::Weighted;
  spec.options.normWeights = {1.0, 4.0};
  spec.features.push_back(core::PerformanceFeature{
      "pinned", core::ImpactFunction::affine(num::Vec{3.0, 4.0}),
      core::ToleranceBounds::atMost(7.0 + 5.0)});
  const auto problem = core::CompiledProblem::compile(std::move(spec));

  const core::RobustnessReport full = problem.evaluate();
  ASSERT_EQ(full.radii.size(), 1u);
  EXPECT_DOUBLE_EQ(full.radii[0].radius, 5.0 / std::sqrt(13.0));
  const core::MetricResult lane = problem.evaluateMetric();
  EXPECT_NEAR(lane.metric, full.metric, 1e-12 * full.metric);
}

TEST_F(MetricLane, WeightedDenomHintIsBitIdenticalToTheRecompute) {
  Pcg32 rng(17);
  const auto weights = randomVec(9, rng, 0.1, 2.0);
  const auto origin = randomVec(9, rng, 0.5, 1.5);
  const auto normWeights = randomVec(9, rng, 0.25, 4.0);
  core::AnalyzerOptions options;
  options.norm = core::NormKind::Weighted;
  options.normWeights.assign(normWeights.begin(), normWeights.end());

  core::AffineFeatureView view;
  view.weights = weights;
  double atOrigin = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    atOrigin += weights[i] * origin[i];
  }
  view.boundMax = atOrigin + 1.0;

  // The hint must be the exact element-order sum the recompute performs.
  double denom = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    denom += weights[i] * weights[i] / normWeights[i];
  }

  core::RadiusReport withHint;
  core::RadiusReport withoutHint;
  core::evaluateAffineRadius(view, origin, options, "w", withoutHint, 0.0,
                             0.0);
  core::evaluateAffineRadius(view, origin, options, "w", withHint, 0.0,
                             denom);
  EXPECT_EQ(withHint.radius, withoutHint.radius);
  EXPECT_EQ(withHint.boundaryLevel, withoutHint.boundaryLevel);
  ASSERT_EQ(withHint.boundaryPoint.size(), withoutHint.boundaryPoint.size());
  for (std::size_t i = 0; i < withHint.boundaryPoint.size(); ++i) {
    EXPECT_EQ(withHint.boundaryPoint[i], withoutHint.boundaryPoint[i])
        << "i = " << i;
  }
}

// --------------------------------------------------- HiPer-D metric lane

TEST_F(HiperdMetricLane, MatchesAnalyzeOnGeneratedScenarios) {
  for (const std::uint64_t seed : {2003u, 7u, 11u}) {
    const auto generated =
        hiperd::generateScenario(hiperd::ScenarioOptions{}, seed);
    const hiperd::CompiledScenario compiled = generated.scenario.compile();
    ASSERT_TRUE(compiled.fastPath());
    Pcg32 rng(seed);
    hiperd::ScenarioWorkspace workspace;
    for (int i = 0; i < 20; ++i) {
      const auto mapping = sched::randomMapping(
          generated.scenario.graph.applicationCount(),
          generated.scenario.machines, rng);
      const core::RobustnessReport full = compiled.analyze(mapping);
      const core::MetricResult lane =
          compiled.analyzeMetric(mapping, workspace);
      const double scale = std::max(1.0, std::fabs(full.metric));
      EXPECT_NEAR(lane.metric, full.metric, 1e-12 * scale)
          << "seed " << seed << " mapping " << i;
      EXPECT_EQ(lane.bindingFeature, full.bindingFeature)
          << "seed " << seed << " mapping " << i;
      EXPECT_EQ(lane.floored, full.floored);
    }
  }
}

TEST_F(HiperdMetricLane, PruningChangesNoBits) {
  const auto generated =
      hiperd::generateScenario(hiperd::ScenarioOptions{}, 2003);
  const hiperd::CompiledScenario compiled = generated.scenario.compile();
  Pcg32 rng(5);
  hiperd::ScenarioWorkspace workspace;
  for (int i = 0; i < 20; ++i) {
    const auto mapping = sched::randomMapping(
        generated.scenario.graph.applicationCount(),
        generated.scenario.machines, rng);
    const core::MetricResult pruned =
        compiled.analyzeMetric(mapping, workspace, /*prune=*/true);
    const core::MetricResult unpruned =
        compiled.analyzeMetric(mapping, workspace, /*prune=*/false);
    EXPECT_EQ(pruned.metric, unpruned.metric) << "mapping " << i;
    EXPECT_EQ(pruned.bindingFeature, unpruned.bindingFeature)
        << "mapping " << i;
  }
}

TEST_F(HiperdMetricLane, DeterministicAcrossDispatchTargets) {
  if (!num::simd::avx2Available()) {
    GTEST_SKIP() << "no AVX2 on this host/build";
  }
  const auto generated =
      hiperd::generateScenario(hiperd::ScenarioOptions{}, 2003);
  const hiperd::CompiledScenario compiled = generated.scenario.compile();
  Pcg32 rng(6);
  const auto mapping = sched::randomMapping(
      generated.scenario.graph.applicationCount(),
      generated.scenario.machines, rng);
  num::simd::setTarget(Target::Scalar);
  const core::MetricResult scalar = compiled.analyzeMetric(mapping);
  num::simd::setTarget(Target::Avx2);
  const core::MetricResult avx2 = compiled.analyzeMetric(mapping);
  EXPECT_EQ(scalar.metric, avx2.metric);
  EXPECT_EQ(scalar.bindingFeature, avx2.bindingFeature);
}

// --------------------------------------------------------- search wiring

TEST_F(SearchWiring, RobustnessObjectiveDrivesTheGenericOptimizers) {
  hiperd::ScenarioOptions options;
  options.applications = 8;
  options.machines = 3;
  options.targetPaths = 6;
  const auto generated = hiperd::generateScenario(options, 2003);
  const hiperd::CompiledScenario compiled = generated.scenario.compile();
  const std::size_t apps = generated.scenario.graph.applicationCount();
  const std::size_t machines = generated.scenario.machines;
  const sched::MappingObjective objective =
      hiperd::robustnessObjective(compiled);

  Pcg32 rng(8);
  const auto start = sched::randomMapping(apps, machines, rng);
  const double startScore = objective(start);

  const auto local = sched::localSearch(apps, machines, start, objective, 5);
  EXPECT_EQ(local.apps(), apps);
  EXPECT_EQ(local.machines(), machines);
  EXPECT_LE(objective(local), startScore);

  sched::AnnealingOptions annealing;
  annealing.iterations = 300;
  const auto annealed =
      sched::annealMapping(apps, machines, start, objective, annealing);
  EXPECT_EQ(annealed.apps(), apps);
  EXPECT_LE(objective(annealed), startScore);

  sched::GeneticOptions genetic;
  genetic.populationSize = 10;
  genetic.generations = 5;
  const auto evolved =
      sched::geneticAlgorithm(apps, machines, start, objective, genetic);
  EXPECT_EQ(evolved.apps(), apps);
  EXPECT_LE(objective(evolved), startScore);  // elitism keeps the seed

  // The objective is the negated metric: cross-check one value.
  EXPECT_EQ(objective(start), -compiled.analyzeMetric(start).metric);
}

TEST_F(SearchWiring, ShapeGenericOverloadsMatchTheEtcOverloads) {
  sched::EtcOptions options;
  options.apps = 10;
  options.machines = 4;
  Pcg32 rng(9);
  const auto etc = sched::generateEtc(options, rng);
  const auto objective = sched::makespanObjective(etc);
  const auto start = sched::roundRobinMapping(etc);

  const auto viaEtc = sched::localSearch(etc, start, objective, 10);
  const auto viaShape =
      sched::localSearch(etc.apps(), etc.machines(), start, objective, 10);
  EXPECT_EQ(viaEtc.assignment(), viaShape.assignment());

  sched::GeneticOptions genetic;
  genetic.populationSize = 8;
  genetic.generations = 4;
  const auto gaEtc = sched::geneticAlgorithm(etc, start, objective, genetic);
  const auto gaShape = sched::geneticAlgorithm(etc.apps(), etc.machines(),
                                               start, objective, genetic);
  EXPECT_EQ(gaEtc.assignment(), gaShape.assignment());
}

TEST_F(SearchWiring, ShapeMismatchesAreRejected) {
  const sched::MappingObjective objective = [](const sched::Mapping&) {
    return 0.0;
  };
  Pcg32 rng(10);
  const auto wrong = sched::randomMapping(3, 2, rng);
  EXPECT_THROW((void)sched::localSearch(4, 2, wrong, objective),
               InvalidArgumentError);
  EXPECT_THROW((void)sched::geneticAlgorithm(3, 3, wrong, objective),
               InvalidArgumentError);
}

}  // namespace
}  // namespace robust
