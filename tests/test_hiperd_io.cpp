// Tests for HiPer-D scenario persistence: exact round trips and rejection
// of malformed or inconsistent input.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "robust/core/input_policy.hpp"
#include "robust/hiperd/generator.hpp"
#include "robust/hiperd/scenario_io.hpp"
#include "robust/util/diagnostics.hpp"
#include "robust/util/error.hpp"

namespace robust::hiperd {
namespace {

TEST(ScenarioIo, RoundTripsGeneratedScenarioExactly) {
  const auto generated = generateScenario(ScenarioOptions{}, 2003);
  const HiperdScenario& original = generated.scenario;

  std::stringstream stream;
  saveScenario(original, stream);
  const HiperdScenario loaded = loadScenario(stream);

  // Structure.
  EXPECT_EQ(loaded.graph.sensorCount(), original.graph.sensorCount());
  EXPECT_EQ(loaded.graph.applicationCount(),
            original.graph.applicationCount());
  EXPECT_EQ(loaded.graph.actuatorCount(), original.graph.actuatorCount());
  EXPECT_EQ(loaded.graph.edgeCount(), original.graph.edgeCount());
  EXPECT_EQ(loaded.graph.paths().size(), original.graph.paths().size());
  EXPECT_EQ(loaded.machines, original.machines);
  // Exact values (%.17g round-trips doubles).
  EXPECT_EQ(loaded.lambdaOrig, original.lambdaOrig);
  EXPECT_EQ(loaded.latencyLimits, original.latencyLimits);
  for (std::size_t a = 0; a < original.compute.size(); ++a) {
    for (std::size_t m = 0; m < original.compute[a].size(); ++m) {
      EXPECT_EQ(loaded.compute[a][m].coeffs(),
                original.compute[a][m].coeffs());
    }
  }
  for (std::size_t e = 0; e < original.comm.size(); ++e) {
    EXPECT_EQ(loaded.comm[e].coeffs(), original.comm[e].coeffs());
  }
}

TEST(ScenarioIo, RoundTrippedScenarioAnalyzesIdentically) {
  const auto generated = generateScenario(ScenarioOptions{}, 11);
  std::stringstream stream;
  saveScenario(generated.scenario, stream);
  const HiperdScenario loaded = loadScenario(stream);

  Pcg32 rng(5);
  const auto mapping = sched::randomMapping(
      loaded.graph.applicationCount(), loaded.machines, rng);
  const HiperdSystem a(generated.scenario, mapping);
  const HiperdSystem b(loaded, mapping);
  EXPECT_DOUBLE_EQ(a.slack(), b.slack());
  EXPECT_DOUBLE_EQ(a.analyze().metric, b.analyze().metric);
}

TEST(ScenarioIo, RejectsNonLinearFunctions) {
  auto generated = generateScenario(ScenarioOptions{}, 3);
  generated.scenario.compute[0][0] = LoadFunction::general(
      [](std::span<const double> l) { return l[0] * l[0]; });
  std::stringstream stream;
  EXPECT_THROW(saveScenario(generated.scenario, stream),
               InvalidArgumentError);
}

TEST(ScenarioIo, RejectsMalformedInput) {
  {
    std::stringstream s("not-a-scenario");
    EXPECT_THROW((void)loadScenario(s), InvalidArgumentError);
  }
  {
    std::stringstream s("hiperd-scenario v2");
    EXPECT_THROW((void)loadScenario(s), InvalidArgumentError);
  }
  {
    std::stringstream s("hiperd-scenario v1\nsensors abc\n");
    EXPECT_THROW((void)loadScenario(s), InvalidArgumentError);
  }
  {
    // Truncated mid-file.
    const auto generated = generateScenario(ScenarioOptions{}, 4);
    std::stringstream full;
    saveScenario(generated.scenario, full);
    const std::string text = full.str();
    std::stringstream truncated(text.substr(0, text.size() / 2));
    EXPECT_THROW((void)loadScenario(truncated), InvalidArgumentError);
  }
}

// The reader tracks the 1-based line and column of every token, so each
// rejection names the exact offending place in the input.
TEST(ScenarioIo, DiagnosticCarriesTokenProvenance) {
  std::stringstream s("hiperd-scenario v9\n");
  try {
    (void)loadScenario(s);
    FAIL() << "expected a throw";
  } catch (const util::ParseError& e) {
    EXPECT_EQ(e.diagnostic().format(),
              "scenario:1:17: expected 'v1', got 'v9'");
  }
}

TEST(ScenarioIo, NonFiniteRateDiagnosticNamesLineAndColumn) {
  std::stringstream s("hiperd-scenario v1\nsensors 1\nn0 nan\n");
  try {
    (void)loadScenario(s, "fleet.scenario");
    FAIL() << "expected a throw";
  } catch (const util::ParseError& e) {
    EXPECT_EQ(e.diagnostic().format(),
              "fleet.scenario:3:4: sensor rate 'nan' is not finite");
    EXPECT_EQ(e.diagnostic().line, 3u);
    EXPECT_EQ(e.diagnostic().column, 4u);
  }
}

TEST(ScenarioIo, NegativeRateDiagnosticShowsValue) {
  std::stringstream s("hiperd-scenario v1\nsensors 1\nn0 -2.5\n");
  try {
    (void)loadScenario(s);
    FAIL() << "expected a throw";
  } catch (const util::ParseError& e) {
    EXPECT_EQ(
        e.diagnostic().format(),
        "scenario:3:4: sensor rate '-2.5' is not a finite positive value");
  }
}

TEST(ScenarioIo, TruncationDiagnosticNamesMissingField) {
  std::stringstream s("hiperd-scenario v1\nsensors 2\nn0 1.0\n");
  try {
    (void)loadScenario(s);
    FAIL() << "expected a throw";
  } catch (const util::ParseError& e) {
    EXPECT_EQ(
        e.diagnostic().format(),
        "scenario:4:1: unexpected end of input while reading sensor name");
  }
}

TEST(ScenarioIo, HostileCountIsCappedNotAllocated) {
  // A corrupt header claiming 10^12 sensors must produce a diagnostic, not
  // a giant allocation or a near-endless token loop.
  std::stringstream s("hiperd-scenario v1\nsensors 999999999999\n");
  try {
    (void)loadScenario(s);
    FAIL() << "expected a throw";
  } catch (const util::ParseError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("above the policy cap"), std::string::npos) << what;
  }
}

TEST(ScenarioIo, PermissivePolicyStillEnforcesStructure) {
  // Value checks can be relaxed for forensic loads, but a structurally
  // broken file (here: truncated) is rejected under any policy.
  std::stringstream s("hiperd-scenario v1\nsensors 1\nn0 nan\n");
  EXPECT_THROW((void)loadScenario(s, "x", core::InputPolicy::permissive()),
               InvalidArgumentError);
}

TEST(ScenarioIo, RejectsTamperedLimitCount) {
  const auto generated = generateScenario(ScenarioOptions{}, 6);
  std::stringstream stream;
  saveScenario(generated.scenario, stream);
  std::string text = stream.str();
  // Corrupt the latency-limit count: the loader must notice it disagrees
  // with the re-enumerated path count.
  const auto pos = text.find("latency_limits ");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, std::string("latency_limits 19").size(),
               "latency_limits 18");
  std::stringstream bad(text);
  EXPECT_THROW((void)loadScenario(bad), InvalidArgumentError);
}

}  // namespace
}  // namespace robust::hiperd
