// Unit tests for the dense linear-algebra substrate: vector kernels, norms,
// LU / Cholesky factorizations, and hyperplane geometry.
#include <gtest/gtest.h>

#include <cmath>

#include "robust/numeric/hyperplane.hpp"
#include "robust/numeric/matrix.hpp"
#include "robust/numeric/vector_ops.hpp"
#include "robust/util/error.hpp"
#include "robust/util/rng.hpp"

namespace robust::num {
namespace {

// ---------------------------------------------------------------- vectors

TEST(VectorOps, DotAndNorms) {
  const Vec a = {3.0, 4.0};
  const Vec b = {1.0, -2.0};
  EXPECT_DOUBLE_EQ(dot(a, b), -5.0);
  EXPECT_DOUBLE_EQ(norm2(a), 5.0);
  EXPECT_DOUBLE_EQ(norm1(a), 7.0);
  EXPECT_DOUBLE_EQ(normInf(b), 2.0);
}

TEST(VectorOps, Norm2AvoidsOverflow) {
  const Vec huge = {1e200, 1e200};
  EXPECT_NEAR(norm2(huge) / 1e200, std::sqrt(2.0), 1e-12);
  const Vec tiny = {1e-200, 1e-200};
  EXPECT_NEAR(norm2(tiny) / 1e-200, std::sqrt(2.0), 1e-12);
}

TEST(VectorOps, WeightedNorm) {
  const Vec a = {1.0, 2.0};
  const Vec w = {4.0, 1.0};
  EXPECT_DOUBLE_EQ(weightedNorm2(a, w), std::sqrt(8.0));
  const Vec bad = {-1.0, 1.0};
  EXPECT_THROW((void)weightedNorm2(a, bad), InvalidArgumentError);
}

TEST(VectorOps, AddSubScaleAxpy) {
  const Vec a = {1.0, 2.0};
  const Vec b = {3.0, 5.0};
  EXPECT_EQ(add(a, b), (Vec{4.0, 7.0}));
  EXPECT_EQ(sub(b, a), (Vec{2.0, 3.0}));
  EXPECT_EQ(scale(a, 3.0), (Vec{3.0, 6.0}));
  Vec y = {1.0, 1.0};
  axpy(2.0, a, y);
  EXPECT_EQ(y, (Vec{3.0, 5.0}));
}

TEST(VectorOps, DistanceAndNormalized) {
  const Vec a = {0.0, 0.0};
  const Vec b = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(distance2(a, b), 5.0);
  const Vec n = normalized(b);
  EXPECT_NEAR(norm2(n), 1.0, 1e-15);
  EXPECT_THROW((void)normalized(Vec{0.0, 0.0}), InvalidArgumentError);
}

TEST(VectorOps, DimensionMismatchThrows) {
  const Vec a = {1.0};
  const Vec b = {1.0, 2.0};
  EXPECT_THROW((void)dot(a, b), InvalidArgumentError);
  EXPECT_THROW((void)add(a, b), InvalidArgumentError);
  EXPECT_THROW((void)distance2(a, b), InvalidArgumentError);
}

TEST(VectorOps, ApproxEqual) {
  EXPECT_TRUE(approxEqual(Vec{1.0, 2.0}, Vec{1.0 + 1e-10, 2.0}, 1e-9));
  EXPECT_FALSE(approxEqual(Vec{1.0, 2.0}, Vec{1.1, 2.0}, 1e-9));
  EXPECT_FALSE(approxEqual(Vec{1.0}, Vec{1.0, 2.0}, 1.0));
}

// ---------------------------------------------------------------- matrix

TEST(Matrix, IdentityAndMultiply) {
  const Matrix eye = Matrix::identity(3);
  const Vec x = {1.0, 2.0, 3.0};
  EXPECT_EQ(eye.multiply(x), x);
}

TEST(Matrix, TransposedSwapsIndices) {
  Matrix m(2, 3);
  m(0, 1) = 5.0;
  m(1, 2) = 7.0;
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(1, 0), 5.0);
  EXPECT_DOUBLE_EQ(t(2, 1), 7.0);
}

TEST(Lu, SolvesKnownSystem) {
  Matrix a(2, 2);
  a(0, 0) = 2.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 3.0;
  const LuDecomposition lu(a);
  const Vec x = lu.solve(Vec{5.0, 10.0});  // solution (1, 3)
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
  EXPECT_NEAR(lu.determinant(), 5.0, 1e-12);
}

TEST(Lu, RequiresPivoting) {
  // Zero on the initial pivot position forces a row swap.
  Matrix a(2, 2);
  a(0, 0) = 0.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 0.0;
  const LuDecomposition lu(a);
  const Vec x = lu.solve(Vec{2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
  EXPECT_NEAR(lu.determinant(), -1.0, 1e-12);
}

TEST(Lu, SingularThrows) {
  Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 4.0;
  EXPECT_THROW(LuDecomposition{a}, ConvergenceError);
}

TEST(Lu, RandomRoundTrip) {
  Pcg32 rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + rng.nextBounded(8);
    Matrix a(n, n);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) {
        a(r, c) = rng.uniform(-1.0, 1.0);
      }
      a(r, r) += 2.0;  // diagonal dominance keeps it well-conditioned
    }
    Vec xTrue(n);
    for (auto& v : xTrue) {
      v = rng.uniform(-5.0, 5.0);
    }
    const Vec b = a.multiply(xTrue);
    const Vec x = LuDecomposition(a).solve(b);
    EXPECT_TRUE(approxEqual(x, xTrue, 1e-9)) << "trial " << trial;
  }
}

TEST(Cholesky, SolvesSpdSystem) {
  Matrix a(2, 2);
  a(0, 0) = 4.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 3.0;
  const CholeskyDecomposition chol(a);
  const Vec x = chol.solve(Vec{8.0, 7.0});
  // Verify A x = b.
  const Vec back = a.multiply(x);
  EXPECT_NEAR(back[0], 8.0, 1e-12);
  EXPECT_NEAR(back[1], 7.0, 1e-12);
}

TEST(Cholesky, RejectsIndefinite) {
  Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 1.0;  // eigenvalues 3, -1
  EXPECT_THROW(CholeskyDecomposition{a}, ConvergenceError);
}

TEST(Cholesky, RandomSpdRoundTrip) {
  Pcg32 rng(78);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 1 + rng.nextBounded(6);
    // A = B B^T + I is SPD.
    Matrix b(n, n);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) {
        b(r, c) = rng.uniform(-1.0, 1.0);
      }
    }
    Matrix a(n, n);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) {
        double s = r == c ? 1.0 : 0.0;
        for (std::size_t k = 0; k < n; ++k) {
          s += b(r, k) * b(c, k);
        }
        a(r, c) = s;
      }
    }
    Vec xTrue(n);
    for (auto& v : xTrue) {
      v = rng.uniform(-2.0, 2.0);
    }
    const Vec rhs = a.multiply(xTrue);
    const Vec x = CholeskyDecomposition(a).solve(rhs);
    EXPECT_TRUE(approxEqual(x, xTrue, 1e-8)) << "trial " << trial;
  }
}

// ------------------------------------------------------------- hyperplane

TEST(Hyperplane, DistanceMatchesFormula) {
  // Plane x + y = 2; distance from origin is 2 / sqrt(2) = sqrt(2).
  const Hyperplane h{{1.0, 1.0}, 2.0};
  const Vec origin = {0.0, 0.0};
  EXPECT_NEAR(h.distance(origin), std::sqrt(2.0), 1e-12);
  EXPECT_LT(h.signedDistance(origin), 0.0);
}

TEST(Hyperplane, ProjectionLandsOnPlaneAtMinimalDistance) {
  Pcg32 rng(80);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 2 + rng.nextBounded(5);
    Vec normal(n);
    for (auto& v : normal) {
      v = rng.uniform(-2.0, 2.0);
    }
    if (norm2(normal) < 1e-6) {
      continue;
    }
    const double offset = rng.uniform(-5.0, 5.0);
    const Hyperplane h{normal, offset};
    Vec point(n);
    for (auto& v : point) {
      v = rng.uniform(-5.0, 5.0);
    }
    const Vec proj = h.project(point);
    EXPECT_NEAR(dot(normal, proj), offset, 1e-9);
    EXPECT_NEAR(distance2(proj, point), h.distance(point), 1e-9);
    // Brute force: no random point on the plane is closer.
    for (int probe = 0; probe < 20; ++probe) {
      Vec other(n);
      for (auto& v : other) {
        v = rng.uniform(-10.0, 10.0);
      }
      // Project the probe onto the plane to make it feasible.
      const Vec onPlane = h.project(other);
      EXPECT_GE(distance2(onPlane, point) + 1e-9, h.distance(point));
    }
  }
}

TEST(Hyperplane, BoundaryOfAffine) {
  // f(x) = 2x1 + 3x2 + 1, level 10 -> plane 2x1 + 3x2 = 9.
  const Hyperplane h = boundaryOfAffine(Vec{2.0, 3.0}, 1.0, 10.0);
  EXPECT_DOUBLE_EQ(h.offset, 9.0);
  const Vec onPlane = {0.0, 3.0};
  EXPECT_NEAR(h.evaluate(onPlane), 0.0, 1e-12);
  EXPECT_THROW((void)boundaryOfAffine(Vec{0.0, 0.0}, 1.0, 10.0),
               InvalidArgumentError);
}

}  // namespace
}  // namespace robust::num
