// Randomized property tests for the analyzer: structural invariants that
// must hold for every instance (monotonicity, scaling covariance,
// translation invariance, norm ordering).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "robust/core/analyzer.hpp"
#include "robust/util/rng.hpp"

namespace robust::core {
namespace {

struct RandomAffineSystem {
  std::vector<PerformanceFeature> features;
  PerturbationParameter parameter;
};

RandomAffineSystem makeSystem(std::uint64_t seed) {
  Pcg32 rng(seed);
  const std::size_t dim = 2 + rng.nextBounded(5);
  const std::size_t count = 1 + rng.nextBounded(6);
  RandomAffineSystem system;
  system.parameter.name = "pi";
  system.parameter.origin.resize(dim);
  for (auto& v : system.parameter.origin) {
    v = rng.uniform(0.0, 10.0);
  }
  for (std::size_t f = 0; f < count; ++f) {
    num::Vec w(dim);
    for (auto& v : w) {
      v = rng.uniform(0.1, 3.0);
    }
    const double level =
        num::dot(w, system.parameter.origin) + rng.uniform(0.5, 30.0);
    system.features.push_back(PerformanceFeature{
        "phi" + std::to_string(f), ImpactFunction::affine(std::move(w), 0.0),
        ToleranceBounds::atMost(level)});
  }
  return system;
}

class AnalyzerProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AnalyzerProperties, LooseningBoundsNeverShrinksTheMetric) {
  RandomAffineSystem system = makeSystem(GetParam());
  const RobustnessAnalyzer tight(system.features, system.parameter);
  auto loosened = system.features;
  for (auto& f : loosened) {
    f.bounds.max = *f.bounds.max + 5.0;
  }
  const RobustnessAnalyzer loose(loosened, system.parameter);
  EXPECT_GE(loose.analyze().metric, tight.analyze().metric - 1e-12);
}

TEST_P(AnalyzerProperties, ScalingImpactAndLevelLeavesRadiusUnchanged) {
  // f -> c f, beta -> c beta defines the same boundary set.
  RandomAffineSystem system = makeSystem(GetParam());
  const RobustnessAnalyzer original(system.features, system.parameter);
  const double c = 3.7;
  auto scaled = system.features;
  for (auto& f : scaled) {
    f = PerformanceFeature{
        f.name,
        ImpactFunction::affine(num::scale(f.impact.weights(), c),
                               c * f.impact.constant()),
        ToleranceBounds::atMost(c * *f.bounds.max)};
  }
  const RobustnessAnalyzer rescaled(scaled, system.parameter);
  EXPECT_NEAR(rescaled.analyze().metric, original.analyze().metric,
              1e-9 * std::max(1.0, original.analyze().metric));
}

TEST_P(AnalyzerProperties, TranslationCovariance) {
  // Shifting the origin by t and the levels by f(t)'s linear part leaves
  // every radius unchanged (the geometry translates rigidly).
  RandomAffineSystem system = makeSystem(GetParam());
  const RobustnessAnalyzer original(system.features, system.parameter);

  Pcg32 rng(GetParam() + 1);
  num::Vec shift(system.parameter.origin.size());
  for (auto& v : shift) {
    v = rng.uniform(-2.0, 2.0);
  }
  auto shifted = system.features;
  for (auto& f : shifted) {
    const double delta = num::dot(f.impact.weights(), shift);
    f.bounds.max = *f.bounds.max + delta;
  }
  PerturbationParameter movedParam = system.parameter;
  movedParam.origin = num::add(movedParam.origin, shift);
  const RobustnessAnalyzer moved(shifted, movedParam);
  EXPECT_NEAR(moved.analyze().metric, original.analyze().metric, 1e-9);
}

TEST_P(AnalyzerProperties, NormOrderingHolds) {
  // For any displacement, ||d||_inf <= ||d||_2 <= ||d||_1, so the radii
  // order the opposite way: rho_l1 >= rho_l2 >= rho_linf.
  RandomAffineSystem system = makeSystem(GetParam());
  auto metricUnder = [&](NormKind norm) {
    AnalyzerOptions options;
    options.norm = norm;
    return RobustnessAnalyzer(system.features, system.parameter, options)
        .analyze()
        .metric;
  };
  const double l1 = metricUnder(NormKind::L1);
  const double l2 = metricUnder(NormKind::L2);
  const double linf = metricUnder(NormKind::LInf);
  EXPECT_GE(l1, l2 - 1e-12);
  EXPECT_GE(l2, linf - 1e-12);
}

TEST_P(AnalyzerProperties, MetricIsMinOfPerFeatureRadii) {
  RandomAffineSystem system = makeSystem(GetParam());
  const RobustnessAnalyzer analyzer(system.features, system.parameter);
  const auto report = analyzer.analyze();
  double expected = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < analyzer.featureCount(); ++i) {
    expected = std::min(expected, analyzer.radiusOf(i).radius);
  }
  EXPECT_DOUBLE_EQ(report.metric, expected);
  EXPECT_DOUBLE_EQ(report.radii[report.bindingFeature].radius, expected);
}

TEST_P(AnalyzerProperties, BoundaryPointsLieOnTheirBoundaries) {
  RandomAffineSystem system = makeSystem(GetParam());
  const RobustnessAnalyzer analyzer(system.features, system.parameter);
  for (std::size_t i = 0; i < analyzer.featureCount(); ++i) {
    const auto radius = analyzer.radiusOf(i);
    const double value =
        system.features[i].impact.evaluate(radius.boundaryPoint);
    EXPECT_NEAR(value, radius.boundaryLevel,
                1e-9 * std::max(1.0, std::fabs(radius.boundaryLevel)));
    EXPECT_NEAR(
        num::distance2(radius.boundaryPoint, system.parameter.origin),
        radius.radius, 1e-9 * std::max(1.0, radius.radius));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnalyzerProperties,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace robust::core
