// Unit tests for robust_util: RNG determinism and stream independence,
// statistics, table/CSV output, argument parsing, and the thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <set>
#include <sstream>
#include <vector>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include <unistd.h>

#include "robust/util/args.hpp"
#include "robust/util/diagnostics.hpp"
#include "robust/util/error.hpp"
#include "robust/util/mmap_file.hpp"
#include "robust/util/rng.hpp"
#include "robust/util/stats.hpp"
#include "robust/util/table.hpp"
#include "robust/util/timer.hpp"
#include "robust/util/thread_pool.hpp"

namespace robust {
namespace {

// ---------------------------------------------------------------- RNG

TEST(Rng, SplitMix64IsDeterministic) {
  SplitMix64 a(123);
  SplitMix64 b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, SplitMix64KnownVector) {
  // Reference values from the canonical splitmix64 implementation (seed 0).
  SplitMix64 g(0);
  EXPECT_EQ(g.next(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(g.next(), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(g.next(), 0x06c45d188009454fULL);
}

TEST(Rng, Pcg32IsDeterministic) {
  Pcg32 a(42, 54);
  Pcg32 b(42, 54);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, Pcg32ReferenceSequence) {
  // First outputs of PCG32 with the reference demo seeding
  // (seed 42, stream 54), from the pcg-random.org sample output.
  Pcg32 g(42, 54);
  EXPECT_EQ(g.next(), 0xa15c02b7u);
  EXPECT_EQ(g.next(), 0x7b47f409u);
  EXPECT_EQ(g.next(), 0xba1d3330u);
}

TEST(Rng, StreamsDiffer) {
  Pcg32 a(7, 1);
  Pcg32 b(7, 2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    equal += a.next() == b.next();
  }
  EXPECT_LT(equal, 5);  // occasional collisions only
}

TEST(Rng, NextDoubleInUnitInterval) {
  Pcg32 g(3);
  for (int i = 0; i < 10000; ++i) {
    const double x = g.nextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextDoubleOpenNeverZero) {
  Pcg32 g(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GT(g.nextDoubleOpen(), 0.0);
  }
}

TEST(Rng, BoundedStaysInRange) {
  Pcg32 g(9);
  for (std::uint32_t bound : {1u, 2u, 3u, 7u, 100u}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(g.nextBounded(bound), bound);
    }
  }
}

TEST(Rng, BoundedCoversAllValues) {
  Pcg32 g(10);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(g.nextBounded(5));
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, MakeStreamIndependence) {
  Pcg32 a = makeStream(1234, 0);
  Pcg32 b = makeStream(1234, 1);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    equal += a.next() == b.next();
  }
  EXPECT_LT(equal, 5);
  // Same (seed, id) reproduces the same stream.
  Pcg32 c = makeStream(1234, 0);
  Pcg32 d = makeStream(1234, 0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(c.next(), d.next());
  }
}

TEST(Rng, AdvanceEqualsSequentialSteps) {
  // advance(k) must land on exactly the state k next() calls reach, for
  // k = 0 (no-op), 1, and assorted larger strides.
  for (const std::uint64_t k : {0ULL, 1ULL, 2ULL, 63ULL, 1024ULL, 99999ULL}) {
    Pcg32 jumped(42, 54);
    Pcg32 stepped(42, 54);
    jumped.advance(k);
    for (std::uint64_t i = 0; i < k; ++i) {
      (void)stepped.next();
    }
    for (int i = 0; i < 16; ++i) {
      EXPECT_EQ(jumped.next(), stepped.next()) << "stride " << k;
    }
  }
}

TEST(Rng, AdvanceComposes) {
  // advance(a) then advance(b) == advance(a + b).
  Pcg32 split(7, 3);
  Pcg32 whole(7, 3);
  split.advance(1000);
  split.advance(234);
  whole.advance(1234);
  EXPECT_EQ(split.next(), whole.next());
}

TEST(Rng, AdvanceReferenceVectors) {
  // Pinned outputs so the jump-ahead polynomial can never silently drift.
  Pcg32 a(42, 54);
  a.advance(10000);
  EXPECT_EQ(a.next(), 0x4190678bu);
  Pcg32 b(2003, 7);
  b.advance(1);
  EXPECT_EQ(b.next(), 0x5e402056u);
  Pcg32 c(2003, 7);
  c.advance(0);
  EXPECT_EQ(c.next(), 0x0303604au);
}

TEST(Rng, FamilySeedReferenceVectors) {
  // The family -> seed derivation is part of the substream contract:
  // committed curve bits depend on it, so the hop values are pinned.
  EXPECT_EQ(familySeed(1234, 0), 0x780fd7d374bb1b2bULL);
  EXPECT_EQ(familySeed(1234, 1), 0x3be8f3d932e0c145ULL);
  Pcg32 s = makeStream(1234, 5, 17);
  EXPECT_EQ(s.next(), 0x43c08d75u);
  EXPECT_EQ(s.next(), 0x57212d01u);
  EXPECT_EQ(s.next(), 0xe23b0cbfu);
}

TEST(Rng, FamilyStreamsAreIndependentAndSchedulingFree) {
  // Same (seed, family, id) always reproduces the same stream — the
  // derivation is a pure function, never a draw from shared state — and
  // different families give unrelated id-indexed tables.
  Pcg32 a = makeStream(99, 2, 41);
  Pcg32 b = makeStream(99, 2, 41);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
  EXPECT_EQ(makeStream(99, 2, 41).next(),
            makeStream(familySeed(99, 2), 41).next());
  Pcg32 c = makeStream(99, 2, 7);
  Pcg32 d = makeStream(99, 3, 7);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    equal += c.next() == d.next();
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformRange) {
  Pcg32 g(11);
  for (int i = 0; i < 1000; ++i) {
    const double x = g.uniform(5.0, 9.0);
    EXPECT_GE(x, 5.0);
    EXPECT_LT(x, 9.0);
  }
}

// ---------------------------------------------------------------- stats

TEST(Stats, SummaryBasics) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 5.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
  EXPECT_NEAR(s.heterogeneity(), std::sqrt(2.5) / 3.0, 1e-12);
}

TEST(Stats, SummaryEvenCountMedian) {
  const std::vector<double> xs = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(summarize(xs).median, 2.5);
}

TEST(Stats, SummaryEmpty) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> xs = {1, 2, 3, 4};
  const std::vector<double> ys = {2, 4, 6, 8};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  const std::vector<double> zs = {8, 6, 4, 2};
  EXPECT_NEAR(pearson(xs, zs), -1.0, 1e-12);
}

TEST(Stats, PearsonDegenerate) {
  const std::vector<double> xs = {1, 1, 1};
  const std::vector<double> ys = {2, 3, 4};
  EXPECT_TRUE(std::isnan(pearson(xs, ys)));
}

TEST(Stats, PearsonSizeMismatchThrows) {
  const std::vector<double> xs = {1, 2};
  const std::vector<double> ys = {1};
  EXPECT_THROW((void)pearson(xs, ys), InvalidArgumentError);
}

TEST(Stats, FitLineExact) {
  const std::vector<double> xs = {0, 1, 2, 3};
  const std::vector<double> ys = {1, 3, 5, 7};  // y = 2x + 1
  const LinearFit fit = fitLine(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(Stats, FitLineNoisy) {
  Pcg32 rng(5);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(0.0, 10.0);
    xs.push_back(x);
    ys.push_back(3.0 * x - 2.0 + 0.01 * (rng.nextDouble() - 0.5));
  }
  const LinearFit fit = fitLine(xs, ys);
  EXPECT_NEAR(fit.slope, 3.0, 0.01);
  EXPECT_NEAR(fit.intercept, -2.0, 0.05);
  EXPECT_GT(fit.r2, 0.999);
}

TEST(Stats, HistogramCountsEverything) {
  const std::vector<double> xs = {0.0, 0.1, 0.5, 0.9, 1.0};
  const Histogram h = makeHistogram(xs, 4);
  std::size_t total = 0;
  for (auto c : h.counts) {
    total += c;
  }
  EXPECT_EQ(total, xs.size());
  EXPECT_DOUBLE_EQ(h.lo, 0.0);
  EXPECT_DOUBLE_EQ(h.hi, 1.0);
}

TEST(Stats, HistogramDegenerateRange) {
  const std::vector<double> xs = {2.0, 2.0, 2.0};
  const Histogram h = makeHistogram(xs, 3);
  EXPECT_EQ(h.counts[0], 3u);
}

TEST(Stats, QuantileEndpointsAndMedian) {
  const std::vector<double> xs = {3.0, 1.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
}

TEST(Stats, QuantileValidation) {
  EXPECT_THROW((void)quantile({}, 0.5), InvalidArgumentError);
  const std::vector<double> xs = {1.0};
  EXPECT_THROW((void)quantile(xs, 1.5), InvalidArgumentError);
}

TEST(Stats, HeterogeneityZeroMeanIsNaN) {
  // A zero-mean sample has no meaningful coefficient of variation; the old
  // behavior silently returned 0.0, masking the degenerate case.
  const std::vector<double> xs = {-1.0, 1.0};
  EXPECT_TRUE(std::isnan(summarize(xs).heterogeneity()));
  const std::vector<double> zeros = {0.0, 0.0, 0.0};
  EXPECT_TRUE(std::isnan(summarize(zeros).heterogeneity()));
  EXPECT_TRUE(std::isnan(Summary{}.heterogeneity()));
}

TEST(Stats, HistogramThrowsOnNonFiniteByDefault) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const std::vector<double> withNan = {1.0, nan, 3.0};
  const std::vector<double> withInf = {1.0, inf, 3.0};
  const std::vector<double> withNegInf = {-inf, 1.0};
  EXPECT_THROW((void)makeHistogram(withNan, 4), InvalidArgumentError);
  EXPECT_THROW((void)makeHistogram(withInf, 4), InvalidArgumentError);
  EXPECT_THROW((void)makeHistogram(withNegInf, 4), InvalidArgumentError);
  try {
    (void)makeHistogram(withNan, 4);
    FAIL() << "expected a throw";
  } catch (const InvalidArgumentError& e) {
    EXPECT_NE(std::string(e.what()).find("sample 1"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("nan"), std::string::npos);
  }
}

TEST(Stats, HistogramSkipPolicyDropsNonFinite) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const std::vector<double> xs = {0.0, nan, 0.5, inf, 1.0, -inf};
  const Histogram h = makeHistogram(xs, 2, NonFinitePolicy::Skip);
  EXPECT_EQ(h.counts[0] + h.counts[1], 3u);
  EXPECT_DOUBLE_EQ(h.lo, 0.0);
  EXPECT_DOUBLE_EQ(h.hi, 1.0);
  // All-non-finite input degrades to an empty, zeroed histogram.
  const std::vector<double> allBad = {nan, inf, -inf};
  const Histogram empty = makeHistogram(allBad, 3, NonFinitePolicy::Skip);
  for (auto c : empty.counts) {
    EXPECT_EQ(c, 0u);
  }
}

TEST(Stats, QuantileThrowsOnNonFiniteByDefault) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const std::vector<double> withNan = {2.0, nan, 1.0};
  const std::vector<double> withInf = {2.0, -inf, 1.0};
  EXPECT_THROW((void)quantile(withNan, 0.5), InvalidArgumentError);
  EXPECT_THROW((void)quantile(withInf, 0.5), InvalidArgumentError);
}

TEST(Stats, QuantileSkipPolicyUsesFiniteSubset) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const std::vector<double> xs = {3.0, nan, 1.0, inf, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0, NonFinitePolicy::Skip), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0, NonFinitePolicy::Skip), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5, NonFinitePolicy::Skip), 2.5);
  // Skipping everything leaves no sample to interpolate: structured throw.
  const std::vector<double> allBad = {nan, nan};
  EXPECT_THROW((void)quantile(allBad, 0.5, NonFinitePolicy::Skip),
               InvalidArgumentError);
}

// ---------------------------------------------------------------- table

TEST(Table, PrintsAlignedColumns) {
  TablePrinter t({"name", "value"});
  t.addRow({"alpha", "1"});
  t.addRow({"b", "22"});
  std::ostringstream oss;
  t.print(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.addRow({"only-one"}), InvalidArgumentError);
}

TEST(Csv, QuotesSpecialCells) {
  std::ostringstream oss;
  CsvWriter csv(oss);
  csv.writeRow({"plain", "with,comma", "with\"quote"});
  EXPECT_EQ(oss.str(), "plain,\"with,comma\",\"with\"\"quote\"\n");
}

TEST(FormatDouble, Reasonable) {
  EXPECT_EQ(formatDouble(1.0), "1");
  EXPECT_EQ(formatDouble(0.5), "0.5");
  EXPECT_EQ(formatDouble(123456.0, 3), "1.23e+05");
}

// ---------------------------------------------------------------- args

TEST(Args, ParsesValuesAndFlags) {
  const char* argv[] = {"prog", "--seed", "7", "--csv", "--name", "x"};
  const ArgParser args(6, argv);
  EXPECT_EQ(args.getInt("seed", 0), 7);
  EXPECT_TRUE(args.has("csv"));
  EXPECT_EQ(args.getString("name", ""), "x");
  EXPECT_FALSE(args.has("missing"));
  EXPECT_EQ(args.getInt("missing", 9), 9);
  EXPECT_DOUBLE_EQ(args.getDouble("missing", 1.5), 1.5);
}

TEST(Args, RejectsMalformed) {
  const char* argv1[] = {"prog", "positional"};
  EXPECT_THROW(ArgParser(2, argv1), InvalidArgumentError);
  const char* argv2[] = {"prog", "--num", "abc"};
  const ArgParser args(3, argv2);
  EXPECT_THROW((void)args.getDouble("num", 0.0), InvalidArgumentError);
  EXPECT_THROW((void)args.getInt("num", 0), InvalidArgumentError);
}

TEST(Args, LaterDuplicateWins) {
  const char* argv[] = {"prog", "--k", "1", "--k", "2"};
  const ArgParser args(5, argv);
  EXPECT_EQ(args.getInt("k", 0), 2);
}

TEST(Args, NegativeNumbersAreValuesNotOptions) {
  // A single leading '-' marks a value, not an option: this is documented
  // behavior, not an accident of the "--" prefix test.
  const char* argv[] = {"prog", "--offset", "-5", "--rate", "-1.5e-3"};
  const ArgParser args(5, argv);
  EXPECT_EQ(args.getInt("offset", 0), -5);
  EXPECT_DOUBLE_EQ(args.getDouble("rate", 0.0), -1.5e-3);
}

TEST(Args, DoubleDashNumberIsALoudError) {
  // "--5" would silently become a flag named "5"; it must throw with a
  // diagnostic pointing at the negative-value spelling instead.
  const char* argv[] = {"prog", "--offset", "--5"};
  try {
    const ArgParser args(3, argv);
    FAIL() << "expected InvalidArgumentError";
  } catch (const InvalidArgumentError& e) {
    EXPECT_NE(std::string(e.what()).find("--5"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("negative values"),
              std::string::npos);
  }
}

TEST(Args, BareFlagNumericLookupNamesTheMissingValue) {
  const char* argv[] = {"prog", "--count"};
  const ArgParser args(2, argv);
  EXPECT_TRUE(args.has("count"));
  EXPECT_EQ(args.getString("count", "fallback"), "");
  for (const auto& fetch : {std::function<void()>(
                                [&] { (void)args.getInt("count", 0); }),
                            std::function<void()>(
                                [&] { (void)args.getDouble("count", 0.0); })}) {
    try {
      fetch();
      FAIL() << "expected InvalidArgumentError";
    } catch (const InvalidArgumentError& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("--count"), std::string::npos);
      EXPECT_NE(what.find("bare flag"), std::string::npos);
    }
  }
}

TEST(Args, NotANumberDiagnosticEchoesTheValue) {
  const char* argv[] = {"prog", "--num", "abc"};
  const ArgParser args(3, argv);
  try {
    (void)args.getInt("num", 0);
    FAIL() << "expected InvalidArgumentError";
  } catch (const InvalidArgumentError& e) {
    EXPECT_NE(std::string(e.what()).find("'abc'"), std::string::npos);
  }
}

// ---------------------------------------------------------------- pool

TEST(ThreadPool, RunsEveryTask) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
    pool.wait();
    EXPECT_EQ(counter.load(), 100);
  }
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
  }  // destructor joins
  EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelFor, CoversRangeExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallelFor(0, 1000, [&](std::size_t i) { hits[i].fetch_add(1); }, 4);
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelFor, EmptyAndSingle) {
  int calls = 0;
  parallelFor(5, 5, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallelFor(3, 4, [&](std::size_t i) { EXPECT_EQ(i, 3u); ++calls; }, 1);
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, SurvivesAThrowingTask) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.submit([] { throw std::runtime_error("poisoned task"); });
  try {
    pool.wait();
    FAIL() << "wait() must rethrow the task's exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "poisoned task");
  }
  // The pool is still alive: later submissions run and wait() is clean.
  for (int i = 0; i < 20; ++i) {
    pool.submit([&ran] { ran.fetch_add(1); });
  }
  pool.wait();
  EXPECT_EQ(ran.load(), 20);
}

TEST(ThreadPool, FirstExceptionWinsAndInFlightStaysConsistent) {
  ThreadPool pool(1);  // single worker => deterministic task order
  std::atomic<int> ran{0};
  pool.submit([] { throw std::runtime_error("first"); });
  pool.submit([] { throw std::logic_error("second"); });
  pool.submit([&ran] { ran.fetch_add(1); });
  try {
    pool.wait();
    FAIL() << "expected the first exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first");
  }
  // inFlight_ reached zero despite two throwing tasks (no deadlock above),
  // the non-throwing task still ran, and the second exception was dropped,
  // so a follow-up wait() returns normally.
  EXPECT_EQ(ran.load(), 1);
  pool.wait();
}

TEST(ThreadPool, DestructionDiscardsAnUncollectedException) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("never collected"); });
    pool.submit([&ran] { ran.fetch_add(1); });
  }  // destructor must neither terminate nor throw
  EXPECT_EQ(ran.load(), 1);
}

TEST(ParallelFor, RethrowsTheBodyExceptionAfterCompletion) {
  std::atomic<int> visited{0};
  try {
    parallelFor(
        0, 64,
        [&](std::size_t i) {
          visited.fetch_add(1);
          if (i == 13) {
            throw std::runtime_error("body failed at 13");
          }
        },
        4);
    FAIL() << "expected the body's exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "body failed at 13");
  }
  // The throw abandons the rest of its own chunk ([0,16) loses i=14,15)
  // while every other chunk still runs to completion before the rethrow.
  EXPECT_EQ(visited.load(), 62);
}

TEST(ThreadPool, ShutdownDrainsUnstartedTasks) {
  // One worker pinned on a slow first task guarantees the remaining tasks
  // are still queued when the destructor runs: they must all execute.
  std::atomic<int> ran{0};
  std::atomic<bool> release{false};
  {
    ThreadPool pool(1);
    pool.submit([&release] {
      while (!release.load()) {
      }
    });
    for (int i = 0; i < 30; ++i) {
      pool.submit([&ran] { ran.fetch_add(1); });
    }
    release.store(true);
  }  // destructor joins after draining the queue
  EXPECT_EQ(ran.load(), 30);
}

TEST(ThreadPool, ParseThreadCountRejectsHostileValues) {
  EXPECT_EQ(parseThreadCount("4"), 4u);
  EXPECT_EQ(parseThreadCount("1"), 1u);
  EXPECT_EQ(parseThreadCount("1024"), 1024u);
  // Hostile or malformed: all ignored (0), never oversubscribed.
  EXPECT_EQ(parseThreadCount(nullptr), 0u);
  EXPECT_EQ(parseThreadCount(""), 0u);
  EXPECT_EQ(parseThreadCount("0"), 0u);
  EXPECT_EQ(parseThreadCount("-3"), 0u);
  EXPECT_EQ(parseThreadCount("1025"), 0u);
  EXPECT_EQ(parseThreadCount("99999999999999999999"), 0u);
  EXPECT_EQ(parseThreadCount("1e9"), 0u);
  EXPECT_EQ(parseThreadCount("8 "), 0u);
  EXPECT_EQ(parseThreadCount(" 8"), 0u);
  EXPECT_EQ(parseThreadCount("abc"), 0u);
  EXPECT_EQ(parseThreadCount("12abc"), 0u);
  EXPECT_EQ(parseThreadCount("+4"), 0u);
}

TEST(ThreadPool, DefaultThreadCountIsPositiveAndCached) {
  const std::size_t first = defaultThreadCount();
  EXPECT_GE(first, 1u);
  EXPECT_LE(first, 1024u);
  EXPECT_EQ(defaultThreadCount(), first);
}

// ---------------------------------------------------------------- timer

TEST(Stopwatch, MonotoneAndResettable) {
  Stopwatch watch;
  const double t0 = watch.seconds();
  EXPECT_GE(t0, 0.0);
  // Burn a little CPU so time visibly advances.
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) {
    sink = sink + static_cast<double>(i);
  }
  const double t1 = watch.seconds();
  EXPECT_GE(t1, t0);
  EXPECT_NEAR(watch.micros(), watch.seconds() * 1e6,
              watch.seconds() * 1e6 * 0.5 + 10.0);
  watch.reset();
  EXPECT_LE(watch.seconds(), t1);
}

TEST(Stopwatch, NanosIsMonotoneNonNegativeAndConsistent) {
  Stopwatch watch;
  // Successive integer readings never go backwards (steady clock, integer
  // ticks — no floating-point rounding in between).
  std::int64_t previous = watch.nanos();
  EXPECT_GE(previous, 0);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t now = watch.nanos();
    EXPECT_GE(now, previous);
    previous = now;
  }
  // nanos() and seconds() describe the same elapsed interval.
  const std::int64_t ns = watch.nanos();
  const double s = watch.seconds();
  EXPECT_LE(static_cast<double>(ns) * 1e-9, s + 1e-6);
  watch.reset();
  EXPECT_LE(watch.nanos(), ns);
}

// ---------------------------------------------------------------- errors

TEST(Errors, RequireMacroThrowsWithLocation) {
  try {
    ROBUST_REQUIRE(false, "something bad");
    FAIL() << "should have thrown";
  } catch (const InvalidArgumentError& e) {
    EXPECT_NE(std::string(e.what()).find("something bad"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("test_util.cpp"), std::string::npos);
  }
}

TEST(Errors, ConvergenceErrorCarriesResidual) {
  const ConvergenceError e("stalled", 0.25);
  EXPECT_DOUBLE_EQ(e.residual(), 0.25);
  EXPECT_STREQ(e.what(), "stalled");
}

// ---------------------------------------------------------------- diagnostics

TEST(Diagnostics, FailTalliesTheCategoryBeforeThrowing) {
  util::Diagnostics diag("input.txt");
  EXPECT_EQ(diag.counts().total(), 0u);
  try {
    diag.fail(util::RejectCategory::Domain, 3, 7, "value out of range");
    FAIL() << "expected a throw";
  } catch (const util::ParseError& e) {
    EXPECT_EQ(e.diagnostic().category, util::RejectCategory::Domain);
    EXPECT_EQ(e.diagnostic().line, 3u);
    EXPECT_EQ(e.diagnostic().column, 7u);
  }
  EXPECT_EQ(diag.counts()[util::RejectCategory::Domain], 1u);
  EXPECT_EQ(diag.counts()[util::RejectCategory::Format], 0u);
  EXPECT_EQ(diag.counts().total(), 1u);
}

TEST(Diagnostics, LegacyOverloadsCountAsOther) {
  util::Diagnostics diag("input.txt");
  EXPECT_THROW(diag.failInput("truncated"), util::ParseError);
  EXPECT_THROW(diag.failLine(4, "bad line"), util::ParseError);
  EXPECT_EQ(diag.counts()[util::RejectCategory::Other], 2u);
  EXPECT_EQ(diag.counts().total(), 2u);
}

TEST(Diagnostics, CountsAccumulateAcrossCategories) {
  util::Diagnostics diag("input.txt");
  for (const auto category :
       {util::RejectCategory::Format, util::RejectCategory::Format,
        util::RejectCategory::Structure, util::RejectCategory::Truncated}) {
    EXPECT_THROW(diag.fail(category, 1, 1, "x"), util::ParseError);
  }
  EXPECT_EQ(diag.counts()[util::RejectCategory::Format], 2u);
  EXPECT_EQ(diag.counts()[util::RejectCategory::Structure], 1u);
  EXPECT_EQ(diag.counts()[util::RejectCategory::Truncated], 1u);
  EXPECT_EQ(diag.counts().total(), 4u);
}

// ---------------------------------------------------------------- MmapFile

/// A writable temp path, removed when the guard dies.
class MmapTempFile {
 public:
  explicit MmapTempFile(const std::string& tag, const std::string& bytes) {
    static int counter = 0;
    path_ = (std::filesystem::temp_directory_path() /
             ("robust_util_mmap_" + tag + "_" + std::to_string(::getpid()) +
              "_" + std::to_string(counter++)))
                .string();
    std::ofstream out(path_, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  ~MmapTempFile() {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Runs `body` once on the mmap lane and once on the pread fallback lane;
/// both must hand back identical bytes.
template <typename Body>
void onBothLanes(const Body& body) {
  util::MmapFile::setForceFallback(false);
  body("mmap");
  util::MmapFile::setForceFallback(true);
  body("pread");
  util::MmapFile::setForceFallback(false);
}

TEST(MmapFile, ZeroLengthFile) {
  MmapTempFile file("empty", "");
  onBothLanes([&](const char* lane) {
    SCOPED_TRACE(lane);
    util::MmapFile f(file.path());
    EXPECT_TRUE(f.isOpen());
    EXPECT_EQ(f.size(), 0u);
    util::MmapFile::View view;
    f.view(0, 0, view);  // empty window of an empty file is legal
    EXPECT_EQ(view.size(), 0u);
    EXPECT_THROW(f.view(0, 1, view), InvalidArgumentError);
  });
}

TEST(MmapFile, PageBoundaryWindows) {
  const long pageLong = ::sysconf(_SC_PAGESIZE);
  ASSERT_GT(pageLong, 0);
  const std::size_t page = static_cast<std::size_t>(pageLong);
  // Two pages plus a ragged tail so windows can straddle every boundary.
  std::string bytes(2 * page + 37, '\0');
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    bytes[i] = static_cast<char>((i * 131 + 17) & 0xff);
  }
  MmapTempFile file("pages", bytes);
  onBothLanes([&](const char* lane) {
    SCOPED_TRACE(lane);
    util::MmapFile f(file.path());
    ASSERT_EQ(f.size(), bytes.size());
    util::MmapFile::View view;
    const struct {
      std::size_t offset;
      std::size_t length;
    } windows[] = {
        {0, page},                // exactly the first page
        {page, page},             // page-aligned interior page
        {page - 1, 2},            // straddles the first boundary
        {2 * page, 37},           // the ragged tail
        {page / 2, page},         // unaligned straddle
        {bytes.size() - 1, 1},    // last byte
        {0, bytes.size()},        // whole file
    };
    for (const auto& w : windows) {
      f.view(w.offset, w.length, view);
      ASSERT_EQ(view.size(), w.length);
      EXPECT_EQ(std::memcmp(view.data(), bytes.data() + w.offset, w.length),
                0)
          << "window at " << w.offset << "+" << w.length;
    }
    // One past the end must be rejected, exactly at the end is fine.
    EXPECT_THROW(f.view(bytes.size(), 1, view), InvalidArgumentError);
    f.view(bytes.size(), 0, view);
    EXPECT_EQ(view.size(), 0u);
  });
}

TEST(MmapFile, ViewReuseAcrossLanesKeepsBytesIdentical) {
  std::string bytes(4096 * 3, '\0');
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    bytes[i] = static_cast<char>((i * 7 + 3) & 0xff);
  }
  MmapTempFile file("reuse", bytes);
  util::MmapFile f(file.path());
  util::MmapFile::View view;  // reused across lane switches and windows
  for (const bool fallback : {false, true, false}) {
    util::MmapFile::setForceFallback(fallback);
    for (std::size_t offset = 0; offset + 512 <= bytes.size();
         offset += 1536) {
      f.view(offset, 512, view);
      ASSERT_EQ(view.size(), 512u);
      EXPECT_EQ(std::memcmp(view.data(), bytes.data() + offset, 512), 0)
          << (fallback ? "pread" : "mmap") << " at " << offset;
    }
  }
  util::MmapFile::setForceFallback(false);
}

TEST(MmapFile, MissingFileThrows) {
  EXPECT_THROW(
      util::MmapFile("/nonexistent/robust_util_mmap_missing"),
      std::runtime_error);
}

TEST(Diagnostics, CategoryNamesAreStableCounterKeys) {
  EXPECT_STREQ(util::rejectCategoryName(util::RejectCategory::Format),
               "format");
  EXPECT_STREQ(util::rejectCategoryName(util::RejectCategory::Domain),
               "domain");
  EXPECT_STREQ(util::rejectCategoryName(util::RejectCategory::Structure),
               "structure");
  EXPECT_STREQ(util::rejectCategoryName(util::RejectCategory::Truncated),
               "truncated");
  EXPECT_STREQ(util::rejectCategoryName(util::RejectCategory::Other),
               "other");
}

}  // namespace
}  // namespace robust
