// The discrete machine-failure model: combinatorial radius, property tests,
// and its subsumption under the general Section 3.2 floor rule (the floored
// metric of failureSpec() equals failureRadius()).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <vector>

#include "robust/core/compiled.hpp"
#include "robust/core/failure.hpp"
#include "robust/obs/metrics.hpp"
#include "robust/util/error.hpp"
#include "robust/util/rng.hpp"

namespace {

using namespace robust;
using core::FailureModel;

FailureModel model(std::size_t machines,
                   std::vector<std::vector<std::size_t>> hosts) {
  FailureModel m;
  m.machines = machines;
  m.replicaHosts = std::move(hosts);
  return m;
}

// Exhaustive oracle: the largest k such that EVERY k-subset of machines can
// fail without killing a task (checked by bitmask enumeration).
std::size_t bruteForceRadius(const FailureModel& m) {
  const std::size_t M = m.machines;
  std::size_t radius = M;
  for (std::uint64_t mask = 1; mask < (1ull << M); ++mask) {
    std::vector<std::size_t> failed;
    for (std::size_t j = 0; j < M; ++j) {
      if (mask & (1ull << j)) {
        failed.push_back(j);
      }
    }
    if (!core::survivesFailures(m, failed)) {
      radius = std::min(radius, failed.size() - 1);
    }
  }
  return radius;
}

TEST(Failure, DistinctHostCountIgnoresDuplicates) {
  const std::vector<std::size_t> hosts{2, 0, 2, 2, 0};
  EXPECT_EQ(core::distinctHostCount(hosts), 2u);
}

TEST(Failure, SurvivesWhenEveryTaskKeepsALiveReplica) {
  const FailureModel m = model(4, {{0, 1}, {2, 3}});
  EXPECT_TRUE(core::survivesFailures(m, std::vector<std::size_t>{0, 2}));
  EXPECT_FALSE(core::survivesFailures(m, std::vector<std::size_t>{0, 1}));
}

TEST(Failure, RadiusIsMinDistinctHostsMinusOne) {
  // Task 0 on 3 distinct machines, task 1 on 2, task 2 on 2-but-duplicated.
  const FailureModel m = model(5, {{0, 1, 2}, {3, 4}, {0, 0, 3}});
  EXPECT_EQ(core::failureRadius(m), 1u);
}

TEST(Failure, NoTasksSurvivesEverything) {
  EXPECT_EQ(core::failureRadius(model(3, {})), 3u);
}

TEST(Failure, RadiusMatchesExhaustiveOracleOnRandomModels) {
  Pcg32 rng(11, 3);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t M = 2 + rng.nextBounded(5);       // 2..6 machines
    const std::size_t T = 1 + rng.nextBounded(4);       // 1..4 tasks
    std::vector<std::vector<std::size_t>> hosts(T);
    for (auto& h : hosts) {
      const std::size_t replicas = 1 + rng.nextBounded(3);
      for (std::size_t r = 0; r < replicas; ++r) {
        h.push_back(rng.nextBounded(static_cast<std::uint32_t>(M)));
      }
    }
    const FailureModel m = model(M, std::move(hosts));
    EXPECT_EQ(core::failureRadius(m), bruteForceRadius(m)) << "trial " << trial;
  }
}

TEST(Failure, RadiusIsMonotoneNonIncreasingInAddedTasks) {
  // Adding a task can only shrink (or keep) the guaranteed radius.
  FailureModel m = model(6, {{0, 1, 2, 3}});
  std::size_t prev = core::failureRadius(m);
  const std::vector<std::vector<std::size_t>> extra{
      {0, 1, 2}, {3, 4, 5}, {1, 4}, {2}};
  for (const auto& hosts : extra) {
    m.replicaHosts.push_back(hosts);
    const std::size_t now = core::failureRadius(m);
    EXPECT_LE(now, prev);
    prev = now;
  }
  EXPECT_EQ(prev, 0u);  // the single-host task pins the radius at 0
}

TEST(Failure, ReplicationOntoDistinctMachinesRaisesTheRadius) {
  // One replica each: any single failure kills a task.
  const FailureModel single = model(4, {{0}, {1}, {2}});
  EXPECT_EQ(core::failureRadius(single), 0u);
  // A second replica on a distinct machine: every task survives one failure.
  const FailureModel replicated = model(4, {{0, 3}, {1, 0}, {2, 1}});
  EXPECT_GT(core::failureRadius(replicated), core::failureRadius(single));
  // A second replica on the SAME machine buys nothing.
  const FailureModel colocated = model(4, {{0, 0}, {1, 1}, {2, 2}});
  EXPECT_EQ(core::failureRadius(colocated), 0u);
}

TEST(Failure, RejectsHostlessTasksAndBadIndices) {
  EXPECT_THROW((void)core::failureRadius(model(2, {{}})),
               InvalidArgumentError);
  EXPECT_THROW((void)core::failureRadius(model(2, {{5}})),
               InvalidArgumentError);
  EXPECT_THROW((void)core::failureRadius(model(0, {})),
               InvalidArgumentError);
}

// Section 3.2 subsumption: the general engine, given failureSpec(), floors
// the continuous L1 metric to exactly the combinatorial radius.
TEST(Failure, FlooredMetricOfFailureSpecEqualsFailureRadius) {
  Pcg32 rng(23, 9);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t M = 2 + rng.nextBounded(5);
    const std::size_t T = 1 + rng.nextBounded(4);
    std::vector<std::vector<std::size_t>> hosts(T);
    for (auto& h : hosts) {
      const std::size_t replicas = 1 + rng.nextBounded(3);
      for (std::size_t r = 0; r < replicas; ++r) {
        h.push_back(rng.nextBounded(static_cast<std::uint32_t>(M)));
      }
    }
    const FailureModel m = model(M, std::move(hosts));
    const core::RobustnessReport report =
        core::CompiledProblem::compile(core::failureSpec(m)).evaluate();
    EXPECT_EQ(report.metric,
              static_cast<double>(core::failureRadius(m)))
        << "trial " << trial;
  }
}

// The paper's Section 3.2 fixture shape: a mapping whose continuous radius
// is fractional must floor down, and the failure model's integral radius is
// that floor by construction.
TEST(Failure, FloorRuleFixture) {
  const FailureModel m = model(4, {{0, 1, 2}, {1, 2, 3}});
  // Each task has 3 distinct hosts: radius 2. The continuous L1 radius of
  // the binding "live replicas >= 1" feature is (3 - 1) / 1 = 2 exactly;
  // flooring is the identity here but the report must still be marked
  // floored (discrete subspace).
  const core::RobustnessReport report =
      core::CompiledProblem::compile(core::failureSpec(m)).evaluate();
  EXPECT_TRUE(report.floored);
  EXPECT_EQ(report.metric, 2.0);
  EXPECT_EQ(core::failureRadius(m), 2u);
}

TEST(Failure, RadiusGaugeRecordedWhenObsOn) {
  obs::setEnabled(true);
  obs::resetMetrics();
  const FailureModel m = model(4, {{0, 1}, {2, 3}});
  EXPECT_EQ(core::failureRadius(m), 1u);
  const obs::MetricsSnapshot snap = obs::snapshotMetrics();
  EXPECT_EQ(snap.gauge("core.failure.radius"), 1);
  obs::setEnabled(false);
}

TEST(Failure, NoGaugeRecordedWhenObsOff) {
  obs::setEnabled(false);
  obs::resetMetrics();
  const FailureModel m = model(5, {{0, 1, 2}});
  EXPECT_EQ(core::failureRadius(m), 2u);
  const obs::MetricsSnapshot snap = obs::snapshotMetrics();
  EXPECT_EQ(snap.gauge("core.failure.radius"), 0);
}

}  // namespace
