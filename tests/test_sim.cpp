// Tests for the execution simulator substrate: the deterministic executor,
// the perturbation models, the adversarial worst case, and the Monte-Carlo
// robustness study — including the metric's guarantee checked operationally.
#include <gtest/gtest.h>

#include <cmath>

#include "robust/scheduling/heuristics.hpp"
#include "robust/sim/study.hpp"
#include "robust/util/error.hpp"

namespace robust::sim {
namespace {

sched::EtcMatrix quickEtc() {
  sched::EtcMatrix etc(4, 2);
  etc(0, 0) = 4.0;  etc(0, 1) = 8.0;
  etc(1, 0) = 3.0;  etc(1, 1) = 5.0;
  etc(2, 0) = 6.0;  etc(2, 1) = 2.0;
  etc(3, 0) = 5.0;  etc(3, 1) = 4.0;
  return etc;
}

// --------------------------------------------------------------- executor

TEST(Executor, MatchesEquationFourWithDefaults) {
  const sched::Mapping mapping({0, 0, 1, 1}, 2);
  ExecutionInput input;
  input.actualTimes = {4.0, 3.0, 2.0, 4.0};
  const ExecutionResult result = execute(mapping, input);
  EXPECT_DOUBLE_EQ(result.finishTimes[0], 7.0);
  EXPECT_DOUBLE_EQ(result.finishTimes[1], 6.0);
  EXPECT_DOUBLE_EQ(result.makespan, 7.0);
  // Sequential execution in assignment order on each machine.
  EXPECT_DOUBLE_EQ(result.tasks[0].start, 0.0);
  EXPECT_DOUBLE_EQ(result.tasks[0].finish, 4.0);
  EXPECT_DOUBLE_EQ(result.tasks[1].start, 4.0);
  EXPECT_DOUBLE_EQ(result.tasks[1].finish, 7.0);
  EXPECT_EQ(result.tasks[2].machine, 1u);
}

TEST(Executor, HonorsReleaseTimes) {
  const sched::Mapping mapping({0, 0}, 1);
  ExecutionInput input;
  input.actualTimes = {2.0, 2.0};
  input.releaseTimes = {0.0, 5.0};  // second app arrives late
  const ExecutionResult result = execute(mapping, input);
  EXPECT_DOUBLE_EQ(result.tasks[1].start, 5.0);
  EXPECT_DOUBLE_EQ(result.makespan, 7.0);
}

TEST(Executor, HonorsMachineReadyTimes) {
  const sched::Mapping mapping({0, 1}, 2);
  ExecutionInput input;
  input.actualTimes = {2.0, 2.0};
  input.machineReady = {10.0, 0.0};
  const ExecutionResult result = execute(mapping, input);
  EXPECT_DOUBLE_EQ(result.tasks[0].start, 10.0);
  EXPECT_DOUBLE_EQ(result.finishTimes[0], 12.0);
  EXPECT_DOUBLE_EQ(result.finishTimes[1], 2.0);
}

TEST(Executor, EmptyMachineKeepsReadyTime) {
  const sched::Mapping mapping({0, 0}, 2);
  ExecutionInput input;
  input.actualTimes = {1.0, 1.0};
  input.machineReady = {0.0, 3.0};
  const ExecutionResult result = execute(mapping, input);
  EXPECT_DOUBLE_EQ(result.finishTimes[1], 3.0);
}

TEST(Executor, Validation) {
  const sched::Mapping mapping({0, 0}, 1);
  ExecutionInput bad;
  bad.actualTimes = {1.0};  // wrong size
  EXPECT_THROW((void)execute(mapping, bad), InvalidArgumentError);
  bad.actualTimes = {1.0, -1.0};
  EXPECT_THROW((void)execute(mapping, bad), InvalidArgumentError);
  bad.actualTimes = {1.0, 1.0};
  bad.releaseTimes = {0.0};
  EXPECT_THROW((void)execute(mapping, bad), InvalidArgumentError);
}

// ----------------------------------------------------------- perturbation

TEST(Perturbation, ModelsPreserveScaleStatistically) {
  const std::vector<double> estimates(200, 10.0);
  for (const auto model :
       {ErrorModel::GaussianRelative, ErrorModel::GammaMultiplicative,
        ErrorModel::UniformRelative}) {
    Pcg32 rng(3);
    const PerturbationModel p{model, 0.1};
    double sum = 0.0;
    for (int t = 0; t < 50; ++t) {
      const auto actual = p.sample(estimates, rng);
      for (double a : actual) {
        EXPECT_GE(a, 0.0);
        sum += a;
      }
    }
    const double mean = sum / (50.0 * 200.0);
    EXPECT_NEAR(mean, 10.0, 0.2) << toString(model);
  }
}

TEST(Perturbation, ZeroMagnitudeIsIdentity) {
  const std::vector<double> estimates = {1.0, 2.0, 3.0};
  Pcg32 rng(4);
  for (const auto model :
       {ErrorModel::GaussianRelative, ErrorModel::GammaMultiplicative,
        ErrorModel::UniformRelative}) {
    const PerturbationModel p{model, 0.0};
    EXPECT_EQ(p.sample(estimates, rng), estimates) << toString(model);
  }
}

TEST(Perturbation, ModelNames) {
  EXPECT_EQ(toString(ErrorModel::GaussianRelative), "gaussian-relative");
  EXPECT_EQ(toString(ErrorModel::GammaMultiplicative),
            "gamma-multiplicative");
  EXPECT_EQ(toString(ErrorModel::UniformRelative), "uniform-relative");
}

TEST(WorstCase, ExactlyReachesBoundAtRho) {
  const sched::EtcMatrix etc = quickEtc();
  const sched::IndependentTaskSystem system(
      etc, sched::Mapping({0, 0, 1, 1}, 2), 1.2);
  const auto analysis = system.analyze();

  // At radius rho the realized makespan hits tau * M_orig exactly.
  ExecutionInput input;
  input.actualTimes = worstCasePerturbation(system, analysis.robustness);
  const ExecutionResult atRho = execute(system.mapping(), input);
  EXPECT_NEAR(atRho.makespan, 1.2 * analysis.predictedMakespan, 1e-12);

  // Just inside: no violation. Just beyond: violation.
  input.actualTimes =
      worstCasePerturbation(system, 0.999 * analysis.robustness);
  EXPECT_LT(execute(system.mapping(), input).makespan,
            1.2 * analysis.predictedMakespan);
  input.actualTimes =
      worstCasePerturbation(system, 1.001 * analysis.robustness);
  EXPECT_GT(execute(system.mapping(), input).makespan,
            1.2 * analysis.predictedMakespan);
}

TEST(WorstCase, PerturbationNormEqualsRadius) {
  const sched::EtcMatrix etc = quickEtc();
  const sched::IndependentTaskSystem system(
      etc, sched::Mapping({0, 1, 0, 1}, 2), 1.3);
  const auto estimates = system.estimatedTimes();
  const auto actual = worstCasePerturbation(system, 2.5);
  EXPECT_NEAR(num::distance2(actual, estimates), 2.5, 1e-12);
}

// ----------------------------------------------------------------- study

TEST(Study, GuaranteeNeverViolatedWithinRho) {
  Pcg32 rng(11);
  sched::EtcOptions etcOptions;
  const auto etc = sched::generateEtc(etcOptions, rng);
  const auto mapping =
      sched::randomMapping(etc.apps(), etc.machines(), rng);
  const sched::IndependentTaskSystem system(etc, mapping, 1.2);

  StudyOptions options;
  options.trials = 500;
  options.magnitudes = {0.01, 0.05, 0.15, 0.3};
  for (const auto model :
       {ErrorModel::GaussianRelative, ErrorModel::GammaMultiplicative,
        ErrorModel::UniformRelative}) {
    options.model = model;
    const auto points = runMakespanStudy(system, options);
    ASSERT_EQ(points.size(), 4u);
    for (const auto& point : points) {
      // The operational form of the paper's guarantee.
      EXPECT_EQ(point.coveredViolations, 0) << toString(model);
      EXPECT_GE(point.p95MakespanRatio, point.meanMakespanRatio * 0.99);
    }
  }
}

TEST(Study, ViolationRateGrowsWithMagnitude) {
  Pcg32 rng(12);
  sched::EtcOptions etcOptions;
  const auto etc = sched::generateEtc(etcOptions, rng);
  const sched::IndependentTaskSystem system(
      etc, sched::randomMapping(etc.apps(), etc.machines(), rng), 1.1);
  StudyOptions options;
  options.trials = 800;
  options.magnitudes = {0.01, 0.1, 0.5};
  const auto points = runMakespanStudy(system, options);
  EXPECT_LE(points[0].violationRate, points[2].violationRate);
  EXPECT_LT(points[0].meanMakespanRatio, points[2].meanMakespanRatio);
}

TEST(Study, DeterministicInSeed) {
  Pcg32 rng(13);
  sched::EtcOptions etcOptions;
  const auto etc = sched::generateEtc(etcOptions, rng);
  const sched::IndependentTaskSystem system(
      etc, sched::roundRobinMapping(etc), 1.2);
  StudyOptions options;
  options.trials = 100;
  options.magnitudes = {0.1};
  const auto a = runMakespanStudy(system, options);
  const auto b = runMakespanStudy(system, options);
  EXPECT_DOUBLE_EQ(a[0].violationRate, b[0].violationRate);
  EXPECT_DOUBLE_EQ(a[0].meanMakespanRatio, b[0].meanMakespanRatio);
}

TEST(Study, ParallelTrialsMatchSerialExactly) {
  Pcg32 rng(21);
  sched::EtcOptions etcOptions;
  const auto etc = sched::generateEtc(etcOptions, rng);
  const sched::IndependentTaskSystem system(
      etc, sched::roundRobinMapping(etc), 1.2);
  StudyOptions serial;
  serial.trials = 300;
  serial.magnitudes = {0.02, 0.1, 0.4};
  serial.threads = 1;
  const auto reference = runMakespanStudy(system, serial);
  for (const std::size_t threads : {2u, 5u, 32u}) {
    StudyOptions parallel = serial;
    parallel.threads = threads;
    const auto points = runMakespanStudy(system, parallel);
    ASSERT_EQ(points.size(), reference.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
      // Bit-identical, not merely close: per-trial substreams plus a serial
      // reduction make the worker count invisible to the output.
      EXPECT_EQ(points[i].meanErrorNorm, reference[i].meanErrorNorm);
      EXPECT_EQ(points[i].violationRate, reference[i].violationRate);
      EXPECT_EQ(points[i].meanMakespanRatio, reference[i].meanMakespanRatio);
      EXPECT_EQ(points[i].p95MakespanRatio, reference[i].p95MakespanRatio);
      EXPECT_EQ(points[i].coveredTrials, reference[i].coveredTrials);
      EXPECT_EQ(points[i].coveredViolations, reference[i].coveredViolations);
    }
  }
}

TEST(Study, Validation) {
  Pcg32 rng(14);
  sched::EtcOptions etcOptions;
  const auto etc = sched::generateEtc(etcOptions, rng);
  const sched::IndependentTaskSystem system(
      etc, sched::roundRobinMapping(etc), 1.2);
  StudyOptions bad;
  bad.trials = 0;
  EXPECT_THROW((void)runMakespanStudy(system, bad), InvalidArgumentError);
  bad = {};
  bad.magnitudes.clear();
  EXPECT_THROW((void)runMakespanStudy(system, bad), InvalidArgumentError);
}

}  // namespace
}  // namespace robust::sim
