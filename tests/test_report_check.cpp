// Subprocess tests for the bench/report_check CLI: the exit-code contract
// CI branches on. Missing baseline artifacts (exit 3) and corrupt baseline
// artifacts (exit 4) are different operational failures — one means re-run
// the baseline job, the other means the stored artifact must be
// regenerated — so each gets its own code and message, pinned here.
#include <sys/wait.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace {

namespace fs = std::filesystem;

constexpr const char* kValidReport = R"({
  "schema": "robust.run_report",
  "schema_version": 1,
  "tool": "test",
  "info": {},
  "benchmarks": [{"name": "bench_a", "value": 100.0, "unit": "ns"}],
  "metrics": {"counters": {}, "gauges": {}, "histograms": {}}
})";

/// Scratch directory removed on destruction; files are written into it.
class TempDir {
 public:
  explicit TempDir(const std::string& tag)
      : path_(fs::temp_directory_path() /
              ("robust_report_check_" + tag + "_" +
               std::to_string(::getpid()))) {
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] std::string file(const std::string& name,
                                 const std::string& contents) const {
    const fs::path p = path_ / name;
    std::ofstream(p, std::ios::binary) << contents;
    return p.string();
  }
  [[nodiscard]] std::string missing(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  fs::path path_;
};

struct RunResult {
  int exitCode = -1;
  std::string output;  ///< stdout + stderr, interleaved
};

/// Runs the report_check binary with `args`, capturing exit code and output.
RunResult runTool(const TempDir& dir, const std::string& args) {
  const std::string capture = dir.missing("capture.txt");
  const std::string cmd = std::string(ROBUST_REPORT_CHECK_BIN) + " " + args +
                          " > " + capture + " 2>&1";
  const int status = std::system(cmd.c_str());
  RunResult result;
  result.exitCode = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  std::ifstream in(capture, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  result.output = buffer.str();
  return result;
}

TEST(ReportCheck, ValidReportAgainstItselfPasses) {
  TempDir dir("ok");
  const std::string report = dir.file("report.json", kValidReport);
  const std::string baseline = dir.file("baseline.json", kValidReport);
  const RunResult r =
      runTool(dir, report + " --baseline " + baseline);
  EXPECT_EQ(r.exitCode, 0) << r.output;
  EXPECT_NE(r.output.find("OK"), std::string::npos) << r.output;
}

TEST(ReportCheck, MissingBaselineExitsThreeWithItsOwnMessage) {
  TempDir dir("missing");
  const std::string report = dir.file("report.json", kValidReport);
  const RunResult r = runTool(
      dir, report + " --baseline " + dir.missing("never_written.json"));
  EXPECT_EQ(r.exitCode, 3) << r.output;
  EXPECT_NE(r.output.find("does not exist"), std::string::npos) << r.output;
  // The missing-artifact diagnostic must not be phrased as a corruption.
  EXPECT_EQ(r.output.find("malformed"), std::string::npos) << r.output;
}

TEST(ReportCheck, MalformedBaselineJsonExitsFour) {
  TempDir dir("badjson");
  const std::string report = dir.file("report.json", kValidReport);
  const std::string baseline =
      dir.file("baseline.json", "{ this is not json");
  const RunResult r = runTool(dir, report + " --baseline " + baseline);
  EXPECT_EQ(r.exitCode, 4) << r.output;
  EXPECT_NE(r.output.find("not valid JSON"), std::string::npos) << r.output;
}

TEST(ReportCheck, BaselineWithoutBenchmarkRowsExitsFour) {
  TempDir dir("hollow");
  const std::string report = dir.file("report.json", kValidReport);
  // Valid JSON, but nothing a regression gate could compare against.
  const std::string baseline =
      dir.file("baseline.json", R"({"benchmarks": []})");
  const RunResult r = runTool(dir, report + " --baseline " + baseline);
  EXPECT_EQ(r.exitCode, 4) << r.output;
  EXPECT_NE(r.output.find("no well-formed benchmark rows"),
            std::string::npos)
      << r.output;
}

TEST(ReportCheck, GenuineRegressionStillExitsOne) {
  TempDir dir("regress");
  const std::string report = dir.file("report.json", kValidReport);
  const std::string baseline = dir.file(
      "baseline.json",
      R"({"benchmarks": [{"name": "bench_a", "value": 10.0, "unit": "ns"}]})");
  const RunResult r = runTool(dir, report + " --baseline " + baseline);
  EXPECT_EQ(r.exitCode, 1) << r.output;
  EXPECT_NE(r.output.find("regressed"), std::string::npos) << r.output;
}

// A minimal but complete robust.stats snapshot (the STATS admin reply, as
// saved by robustd_stat --json).
constexpr const char* kValidStats = R"({
  "schema": "robust.stats",
  "schema_version": 1,
  "tool": "robustd",
  "server": {"sessions_opened": 2, "sessions_closed": 2,
             "sessions_active": 0, "frames": 9, "batches": 4,
             "instances": 128, "registers": 1, "disconnects": 0,
             "stats_requests": 1, "trace_dumps": 0, "pool_workers": 2,
             "pool_busy": 0, "virtual_time_floor": 4.5},
  "cache": {"hits": 1, "misses": 1, "evictions": 0, "entries": 1,
            "capacity": 64},
  "backpressure": {"stalls": 0, "max_inflight_bytes": 4194304,
                   "backlog_high_water_bytes": 512, "paused_sessions": 0},
  "rejects": {"format": 1, "domain": 0, "structure": 2, "truncated": 0,
              "other": 0, "total": 3},
  "tenants": {"alice": {"sessions": 1, "frames": 7, "batches": 4,
                        "instances": 128, "registers": 1, "cache_hits": 0,
                        "cache_misses": 1, "rejects_total": 0,
                        "virtual_time": 4.5, "charged_cost": 128.0,
                        "latency": {
    "analyze": {"count": 4, "sum_nanos": 4000, "p50_nanos": 1023,
                "p95_nanos": 2047, "p99_nanos": 2047},
    "compile": {"count": 1, "sum_nanos": 900, "p50_nanos": 1023,
                "p95_nanos": 1023, "p99_nanos": 1023},
    "queue": {"count": 5, "sum_nanos": 100, "p50_nanos": 31,
              "p95_nanos": 63, "p99_nanos": 63}}}},
  "flight": {"records": 12, "capacity": 512, "dumps": 0}
})";

TEST(ReportCheck, ValidStatsSnapshotPassesWithDottedRequires) {
  TempDir dir("stats_ok");
  const std::string stats = dir.file("stats.json", kValidStats);
  const RunResult r = runTool(
      dir, stats +
               " --require server.frames --require tenants.alice.batches"
               " --require flight.capacity");
  EXPECT_EQ(r.exitCode, 0) << r.output;
}

TEST(ReportCheck, StatsMissingRequiredKeyExitsOne) {
  TempDir dir("stats_req");
  const std::string stats = dir.file("stats.json", kValidStats);
  const RunResult r = runTool(dir, stats + " --require tenants.bob");
  EXPECT_EQ(r.exitCode, 1) << r.output;
  EXPECT_NE(r.output.find("required stats key 'tenants.bob' is missing"),
            std::string::npos)
      << r.output;
}

TEST(ReportCheck, StatsSchemaViolationsAreCaught) {
  TempDir dir("stats_bad");
  // rejects.total disagrees with the category sum: a half-updated or
  // hand-edited document must not validate.
  std::string lying = kValidStats;
  const std::string needle = "\"total\": 3";
  lying.replace(lying.find(needle), needle.size(), "\"total\": 7");
  const std::string stats = dir.file("stats.json", lying);
  const RunResult r = runTool(dir, stats);
  EXPECT_EQ(r.exitCode, 1) << r.output;
  EXPECT_NE(r.output.find("rejects.total"), std::string::npos) << r.output;

  // A tenant whose latency section lost a digest fails too.
  std::string chopped = kValidStats;
  const std::string digest = "\"compile\"";
  chopped.replace(chopped.find(digest), digest.size(), "\"renamed\"");
  const std::string stats2 = dir.file("stats2.json", chopped);
  const RunResult r2 = runTool(dir, stats2);
  EXPECT_EQ(r2.exitCode, 1) << r2.output;
  EXPECT_NE(r2.output.find("latency.compile"), std::string::npos)
      << r2.output;
}

TEST(ReportCheck, StatsWithWrongSchemaVersionExitsOne) {
  TempDir dir("stats_ver");
  std::string wrong = kValidStats;
  const std::string needle = "\"schema_version\": 1";
  wrong.replace(wrong.find(needle), needle.size(), "\"schema_version\": 99");
  const std::string stats = dir.file("stats.json", wrong);
  const RunResult r = runTool(dir, stats);
  EXPECT_EQ(r.exitCode, 1) << r.output;
  EXPECT_NE(r.output.find("schema_version"), std::string::npos) << r.output;
}

// A run report carrying a valid "robust.curve" section whose sample count
// matches the embedded curve.samples counter.
constexpr const char* kCurveReport = R"({
  "schema": "robust.run_report",
  "schema_version": 1,
  "tool": "degradation_curve",
  "info": {},
  "benchmarks": [{"name": "bench_a", "value": 100.0, "unit": "ns"}],
  "metrics": {"counters": {"curve.samples": 1000}, "gauges": {},
              "histograms": {}},
  "curve": {
    "schema": "robust.curve", "schema_version": 1,
    "samples": 1000, "finite": 900, "seed": 1, "confidence": 0.99,
    "dkw_epsilon": 0.05, "rho": 0.5, "fast_lane": true, "cache_hit": false,
    "points": [
      {"radius": 0.5, "probability": 0.001, "lower": 0.0, "upper": 0.006},
      {"radius": 1.5, "probability": 0.4, "lower": 0.37, "upper": 0.43},
      {"radius": 3.0, "probability": 0.9, "lower": 0.88, "upper": 0.92}
    ]
  }
})";

TEST(ReportCheck, CurveSectionValidatesAndSatisfiesRequire) {
  TempDir dir("curve_ok");
  const std::string report = dir.file("report.json", kCurveReport);
  const RunResult r = runTool(dir, report + " --require robust.curve");
  EXPECT_EQ(r.exitCode, 0) << r.output;
}

TEST(ReportCheck, ReportWithoutCurveSectionFailsTheRequire) {
  TempDir dir("curve_missing");
  const std::string report = dir.file("report.json", kValidReport);
  const RunResult r = runTool(dir, report + " --require robust.curve");
  EXPECT_EQ(r.exitCode, 1) << r.output;
  EXPECT_NE(r.output.find("robust.curve"), std::string::npos) << r.output;
}

TEST(ReportCheck, CurveCdfInvariantsAreEnforced) {
  TempDir dir("curve_bad");
  // A decreasing probability is not a CDF.
  std::string decreasing = kCurveReport;
  const std::string needle = "\"probability\": 0.9";
  decreasing.replace(decreasing.find(needle), needle.size(),
                     "\"probability\": 0.3");
  const RunResult r =
      runTool(dir, dir.file("decreasing.json", decreasing));
  EXPECT_EQ(r.exitCode, 1) << r.output;
  EXPECT_NE(r.output.find("decreases"), std::string::npos) << r.output;

  // A band that does not bracket its estimate.
  std::string band = kCurveReport;
  const std::string lower = "\"lower\": 0.37";
  band.replace(band.find(lower), lower.size(), "\"lower\": 0.41");
  const RunResult r2 = runTool(dir, dir.file("band.json", band));
  EXPECT_EQ(r2.exitCode, 1) << r2.output;
  EXPECT_NE(r2.output.find("bracket"), std::string::npos) << r2.output;

  // The section's sample count must agree with the metrics counter.
  std::string counted = kCurveReport;
  const std::string counter = "\"curve.samples\": 1000";
  counted.replace(counted.find(counter), counter.size(),
                  "\"curve.samples\": 999");
  const RunResult r3 = runTool(dir, dir.file("counted.json", counted));
  EXPECT_EQ(r3.exitCode, 1) << r3.output;
  EXPECT_NE(r3.output.find("disagrees"), std::string::npos) << r3.output;
}

}  // namespace
