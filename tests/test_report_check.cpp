// Subprocess tests for the bench/report_check CLI: the exit-code contract
// CI branches on. Missing baseline artifacts (exit 3) and corrupt baseline
// artifacts (exit 4) are different operational failures — one means re-run
// the baseline job, the other means the stored artifact must be
// regenerated — so each gets its own code and message, pinned here.
#include <sys/wait.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace {

namespace fs = std::filesystem;

constexpr const char* kValidReport = R"({
  "schema": "robust.run_report",
  "schema_version": 1,
  "tool": "test",
  "info": {},
  "benchmarks": [{"name": "bench_a", "value": 100.0, "unit": "ns"}],
  "metrics": {"counters": {}, "gauges": {}, "histograms": {}}
})";

/// Scratch directory removed on destruction; files are written into it.
class TempDir {
 public:
  explicit TempDir(const std::string& tag)
      : path_(fs::temp_directory_path() /
              ("robust_report_check_" + tag + "_" +
               std::to_string(::getpid()))) {
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] std::string file(const std::string& name,
                                 const std::string& contents) const {
    const fs::path p = path_ / name;
    std::ofstream(p, std::ios::binary) << contents;
    return p.string();
  }
  [[nodiscard]] std::string missing(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  fs::path path_;
};

struct RunResult {
  int exitCode = -1;
  std::string output;  ///< stdout + stderr, interleaved
};

/// Runs the report_check binary with `args`, capturing exit code and output.
RunResult runTool(const TempDir& dir, const std::string& args) {
  const std::string capture = dir.missing("capture.txt");
  const std::string cmd = std::string(ROBUST_REPORT_CHECK_BIN) + " " + args +
                          " > " + capture + " 2>&1";
  const int status = std::system(cmd.c_str());
  RunResult result;
  result.exitCode = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  std::ifstream in(capture, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  result.output = buffer.str();
  return result;
}

TEST(ReportCheck, ValidReportAgainstItselfPasses) {
  TempDir dir("ok");
  const std::string report = dir.file("report.json", kValidReport);
  const std::string baseline = dir.file("baseline.json", kValidReport);
  const RunResult r =
      runTool(dir, report + " --baseline " + baseline);
  EXPECT_EQ(r.exitCode, 0) << r.output;
  EXPECT_NE(r.output.find("OK"), std::string::npos) << r.output;
}

TEST(ReportCheck, MissingBaselineExitsThreeWithItsOwnMessage) {
  TempDir dir("missing");
  const std::string report = dir.file("report.json", kValidReport);
  const RunResult r = runTool(
      dir, report + " --baseline " + dir.missing("never_written.json"));
  EXPECT_EQ(r.exitCode, 3) << r.output;
  EXPECT_NE(r.output.find("does not exist"), std::string::npos) << r.output;
  // The missing-artifact diagnostic must not be phrased as a corruption.
  EXPECT_EQ(r.output.find("malformed"), std::string::npos) << r.output;
}

TEST(ReportCheck, MalformedBaselineJsonExitsFour) {
  TempDir dir("badjson");
  const std::string report = dir.file("report.json", kValidReport);
  const std::string baseline =
      dir.file("baseline.json", "{ this is not json");
  const RunResult r = runTool(dir, report + " --baseline " + baseline);
  EXPECT_EQ(r.exitCode, 4) << r.output;
  EXPECT_NE(r.output.find("not valid JSON"), std::string::npos) << r.output;
}

TEST(ReportCheck, BaselineWithoutBenchmarkRowsExitsFour) {
  TempDir dir("hollow");
  const std::string report = dir.file("report.json", kValidReport);
  // Valid JSON, but nothing a regression gate could compare against.
  const std::string baseline =
      dir.file("baseline.json", R"({"benchmarks": []})");
  const RunResult r = runTool(dir, report + " --baseline " + baseline);
  EXPECT_EQ(r.exitCode, 4) << r.output;
  EXPECT_NE(r.output.find("no well-formed benchmark rows"),
            std::string::npos)
      << r.output;
}

TEST(ReportCheck, GenuineRegressionStillExitsOne) {
  TempDir dir("regress");
  const std::string report = dir.file("report.json", kValidReport);
  const std::string baseline = dir.file(
      "baseline.json",
      R"({"benchmarks": [{"name": "bench_a", "value": 10.0, "unit": "ns"}]})");
  const RunResult r = runTool(dir, report + " --baseline " + baseline);
  EXPECT_EQ(r.exitCode, 1) << r.output;
  EXPECT_NE(r.output.find("regressed"), std::string::npos) << r.output;
}

}  // namespace
