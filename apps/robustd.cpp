// robustd: the long-lived multi-tenant robustness-analysis daemon.
//
// Serves the wire protocol of robust/net/wire.hpp on a Unix socket or a
// loopback TCP port, sharing one compiled-problem cache and one compute
// pool across every connected tenant (DESIGN.md section 4.13).
//
//   robustd --unix /tmp/robustd.sock --workers 4 --report-dir reports/
//   robustd --port 0 --cache 32          # ephemeral port, printed on start
//
// SIGINT/SIGTERM trigger a graceful stop: in-flight batches finish, every
// session's run report is written, and the process exits 0 only when the
// session ledger balances (opened == closed, none active) — a leaked
// session is an exit-code-visible bug, which is what the CI soak leg
// checks after driving the daemon with robustd_load.
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>

#include "robust/net/server.hpp"
#include "robust/obs/flight.hpp"
#include "robust/obs/metrics.hpp"
#include "robust/obs/report.hpp"
#include "robust/util/args.hpp"
#include "robust/util/diagnostics.hpp"

namespace {

volatile std::sig_atomic_t gStopRequested = 0;

void onSignal(int) { gStopRequested = 1; }

void printUsage() {
  std::puts(
      "robustd -- multi-tenant FePIA robustness analysis daemon\n"
      "\n"
      "  --unix PATH       listen on a Unix-domain socket (unlinked on exit)\n"
      "  --port N          listen on 127.0.0.1:N (0 = ephemeral; default)\n"
      "  --workers N       compute threads (0 = ROBUST_THREADS/hardware)\n"
      "  --cache N         shared CompiledProblem LRU capacity (default 64)\n"
      "  --max-inflight B  per-connection backpressure bound in bytes\n"
      "  --report-dir DIR  write per-session run reports here\n"
      "  --report PATH     write the daemon's own run report on exit\n"
      "  --flight-dir DIR  dump the flight recorder here on fatal rejects\n"
      "                    and on a session-ledger imbalance at exit\n"
      "  --flight N        flight-recorder ring capacity per thread\n"
      "                    (default 512; 0 disables; ROBUST_FLIGHT env too)\n"
      "  --poll            force the poll(2) backend (no epoll)\n"
      "  --help            this text");
}

}  // namespace

int main(int argc, char** argv) {
  const robust::ArgParser args(argc, argv);
  if (args.has("help")) {
    printUsage();
    return 0;
  }

  robust::net::ServerOptions options;
  options.unixPath = args.getString("unix", "");
  options.tcpPort = static_cast<std::uint16_t>(args.getInt("port", 0));
  options.workers = static_cast<std::size_t>(args.getInt("workers", 0));
  options.cacheCapacity = static_cast<std::size_t>(args.getInt("cache", 64));
  options.maxInflightBytes =
      static_cast<std::size_t>(args.getInt("max-inflight", 4 << 20));
  options.reportDir = args.getString("report-dir", "");
  options.flightDir = args.getString("flight-dir", "");
  options.forcePoll = args.has("poll");
  const std::string reportPath = args.getString("report", "");
  const std::int64_t flightCap = args.getInt(
      "flight", static_cast<std::int64_t>(robust::obs::flightCapacity()));
  if (flightCap < 0) {
    std::fprintf(stderr, "robustd: --flight must be >= 0\n");
    return 2;
  }
  robust::obs::setFlightCapacity(static_cast<std::size_t>(flightCap));

  robust::net::Server server(std::move(options));
  try {
    server.start();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "robustd: %s\n", e.what());
    return 2;
  }

  if (!server.unixPath().empty()) {
    std::printf("robustd: listening on unix:%s\n", server.unixPath().c_str());
  } else {
    std::printf("robustd: listening on 127.0.0.1:%u\n",
                static_cast<unsigned>(server.port()));
  }
  std::fflush(stdout);

  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
  std::signal(SIGPIPE, SIG_IGN);  // peer disconnects surface as EPIPE

  while (gStopRequested == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  server.stop();

  const robust::net::ServerStats stats = server.stats();
  std::printf(
      "robustd: sessions %llu opened / %llu closed, %llu frames, %llu "
      "batches (%llu instances), %llu registers (%llu cache hits), %llu "
      "rejects, %llu disconnects, %llu backpressure stalls\n",
      static_cast<unsigned long long>(stats.sessionsOpened),
      static_cast<unsigned long long>(stats.sessionsClosed),
      static_cast<unsigned long long>(stats.framesHandled),
      static_cast<unsigned long long>(stats.batches),
      static_cast<unsigned long long>(stats.instances),
      static_cast<unsigned long long>(stats.registers),
      static_cast<unsigned long long>(stats.cacheHits),
      static_cast<unsigned long long>(stats.rejectsTotal()),
      static_cast<unsigned long long>(stats.disconnects),
      static_cast<unsigned long long>(stats.backpressureStalls));

  if (!reportPath.empty()) {
    robust::obs::RunReport report;
    report.tool = "robustd";
    report.includeMetrics = true;
    const auto count = [&report](const char* name, std::uint64_t v) {
      report.benchmarks.push_back(
          robust::obs::BenchResult{name, static_cast<double>(v), "count"});
    };
    count("sessions_opened", stats.sessionsOpened);
    count("sessions_closed", stats.sessionsClosed);
    count("sessions_active", stats.sessionsActive);
    count("frames", stats.framesHandled);
    count("batches", stats.batches);
    count("instances", stats.instances);
    count("registers", stats.registers);
    count("cache_hits", stats.cacheHits);
    count("cache_misses", stats.cacheMisses);
    count("cache_evictions", stats.cacheEvictions);
    count("backpressure_stalls", stats.backpressureStalls);
    count("disconnects", stats.disconnects);
    for (std::size_t c = 0; c < robust::util::kRejectCategoryCount; ++c) {
      count((std::string("rejects_") +
             robust::util::rejectCategoryName(
                 static_cast<robust::util::RejectCategory>(c)))
                .c_str(),
            stats.rejects[c]);
    }
    try {
      robust::obs::writeRunReport(reportPath, report);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "robustd: cannot write report: %s\n", e.what());
      return 2;
    }
  }

  if (stats.sessionsActive != 0 ||
      stats.sessionsOpened != stats.sessionsClosed) {
    std::fprintf(stderr,
                 "robustd: session leak: %llu active, %llu opened vs %llu "
                 "closed\n",
                 static_cast<unsigned long long>(stats.sessionsActive),
                 static_cast<unsigned long long>(stats.sessionsOpened),
                 static_cast<unsigned long long>(stats.sessionsClosed));
    const std::string flightDir = args.getString("flight-dir", "");
    if (!flightDir.empty()) {
      const std::string path = flightDir + "/robustd_flight_ledger.json";
      try {
        std::filesystem::create_directories(flightDir);
        robust::obs::writeFlightTrace(path);
        std::fprintf(stderr, "robustd: flight recorder dumped to %s\n",
                     path.c_str());
      } catch (const std::exception& e) {
        std::fprintf(stderr, "robustd: cannot dump flight recorder: %s\n",
                     e.what());
      }
    }
    return 3;
  }
  return 0;
}
