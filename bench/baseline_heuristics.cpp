// Baseline study in the style of the paper's reference [7] (Braun et al.
// 2001): the constructive heuristics across ETC consistency classes, each
// scored by makespan AND by the robustness metric — showing that heuristic
// rankings under the two criteria differ (the reason a dedicated robustness
// metric matters when choosing a mapper).
//
// Run: ./baseline_heuristics [--seeds N] [--tau X]
#include <iostream>
#include <map>

#include "robust/scheduling/heuristics.hpp"
#include "robust/scheduling/independent_system.hpp"
#include "robust/util/args.hpp"
#include "robust/util/stats.hpp"
#include "robust/util/table.hpp"

int main(int argc, char** argv) {
  using namespace robust;
  const ArgParser args(argc, argv);
  const int seeds = static_cast<int>(args.getInt("seeds", 20));
  const double tau = args.getDouble("tau", 1.2);

  const std::pair<sched::EtcConsistency, const char*> classes[] = {
      {sched::EtcConsistency::Inconsistent, "inconsistent"},
      {sched::EtcConsistency::SemiConsistent, "semi-consistent"},
      {sched::EtcConsistency::Consistent, "consistent"},
  };

  std::cout << "# Baseline heuristics across ETC consistency classes ("
            << seeds << " instances each, tau = " << tau << ")\n";

  for (const auto& [consistency, className] : classes) {
    std::map<std::string, std::vector<double>> makespans;
    std::map<std::string, std::vector<double>> robustness;
    for (int seed = 0; seed < seeds; ++seed) {
      sched::EtcOptions options;
      options.consistency = consistency;
      Pcg32 rng(static_cast<std::uint64_t>(seed) + 1000);
      const auto etc = sched::generateEtc(options, rng);
      for (const auto& entry : sched::constructiveHeuristics()) {
        const auto mapping = entry.build(etc);
        makespans[entry.name].push_back(sched::makespan(etc, mapping));
        robustness[entry.name].push_back(
            sched::IndependentTaskSystem(etc, mapping, tau)
                .analyze()
                .robustness);
      }
    }
    std::cout << "\n## " << className << "\n";
    TablePrinter table({"heuristic", "mean makespan", "mean rho",
                        "mean rho/makespan"});
    for (const auto& entry : sched::constructiveHeuristics()) {
      const double ms = summarize(makespans[entry.name]).mean;
      const double rho = summarize(robustness[entry.name]).mean;
      table.addRow({entry.name, formatDouble(ms), formatDouble(rho),
                    formatDouble(rho / ms, 4)});
    }
    table.print(std::cout);
  }
  std::cout << "\nreading: makespan winners (min-min, sufferage) are not the "
               "rho/makespan winners\n(balance-oriented heuristics spread "
               "load across more machines, which shrinks\nper-machine radii "
               "by 1/sqrt(n_j) but also shrinks the binding gap less) — the\n"
               "two criteria genuinely rank mappers differently.\n";
  return 0;
}
