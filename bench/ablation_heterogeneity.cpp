// Ablation: how instance heterogeneity shapes the Fig. 3 structure. Low
// heterogeneity collapses the scatter onto the cluster lines (every mapping
// with the same max-count is nearly identical); high heterogeneity spreads
// makespans and robustness apart and increases the outlier fraction.
//
// Run: ./ablation_heterogeneity [--mappings N] [--seed S]
#include <iostream>

#include "robust/scheduling/experiment.hpp"
#include "robust/util/args.hpp"
#include "robust/util/stats.hpp"
#include "robust/util/table.hpp"

int main(int argc, char** argv) {
  using namespace robust;
  const ArgParser args(argc, argv);

  sched::Fig3Options options;
  options.mappings = static_cast<std::size_t>(args.getInt("mappings", 400));
  options.seed = static_cast<std::uint64_t>(args.getInt("seed", 2003));

  std::cout << "# Ablation: Fig. 3 structure vs task/machine heterogeneity ("
            << options.mappings << " mappings per point)\n\n";

  TablePrinter table({"heterogeneity", "makespan CV", "rho CV",
                      "pearson(M, rho)", "outlier fraction"});
  for (double het : {0.1, 0.3, 0.5, 0.7, 0.9, 1.1}) {
    options.etc.taskHeterogeneity = het;
    options.etc.machineHeterogeneity = het;
    const auto rows = sched::runFig3(options);
    std::vector<double> makespans;
    std::vector<double> rhos;
    std::size_t outliers = 0;
    for (const auto& row : rows) {
      makespans.push_back(row.makespan);
      rhos.push_back(row.robustness);
      outliers += !row.inS1;
    }
    table.addRow(
        {formatDouble(het), formatDouble(summarize(makespans).heterogeneity()),
         formatDouble(summarize(rhos).heterogeneity()),
         formatDouble(pearson(makespans, rhos)),
         formatDouble(static_cast<double>(outliers) /
                      static_cast<double>(rows.size()))});
  }
  table.print(std::cout);
  std::cout << "\nhigher heterogeneity -> wider spread and more mappings "
               "whose binding machine\nis not the makespan machine "
               "(outliers below the S1 lines).\n";
  return 0;
}
