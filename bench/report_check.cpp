// Schema validator for the observability artifacts CI uploads:
//
//   report_check REPORT.json [REPORT2.json ...] [--trace TRACE.json]
//                [--require BENCH_NAME ...]
//                [--baseline BASE.json ...] [--max-slowdown F]
//
// Each positional argument must be a robust.run_report document (schema
// version 1, see include/robust/obs/report.hpp); --trace additionally
// validates a Chrome trace-event export (the ROBUST_TRACE output). Each
// --require NAME asserts that every report contains at least one benchmark
// entry named NAME or NAME/<args> — so CI fails when a committed benchmark
// report silently loses a benchmark (renamed, filtered out, or crashed)
// instead of archiving a hollow artifact.
//
// --baseline turns on regression mode: every benchmark name a report
// shares with BASE.json is compared value-against-value, and the check
// fails when the report is worse than --max-slowdown (default 1.25) times
// the baseline. "Worse" is unit-aware: for time-like units (ns, us, ...)
// worse means larger; for rate units (anything ending in "/s") worse means
// smaller, compared against base / max-slowdown. Units must match, and a
// report sharing no benchmark name with the baseline fails outright — a
// renamed benchmark must not silently drop out of the regression gate.
//
// Exit codes (a workflow step can branch on them instead of grepping):
//   0  every file validates
//   1  schema violations / regressions, one message per violation
//   2  usage error (bad flags, missing operands)
//   3  a --baseline file does not exist or cannot be opened — usually a
//      missing CI artifact; re-run the baseline job or fix the path
//   4  a --baseline file opened but is not a usable run report (invalid
//      JSON, wrong top-level type, or no well-formed benchmark rows) — the
//      baseline itself is corrupt and must be regenerated, not the report
#include <cstdint>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "robust/net/wire.hpp"
#include "robust/obs/json_lite.hpp"
#include "robust/obs/metrics.hpp"
#include "robust/obs/report.hpp"
#include "robust/util/diagnostics.hpp"

namespace {

using robust::obs::json::Value;
using Kind = Value::Kind;

/// Collects violations for one file; prints them prefixed with the path.
class Checker {
 public:
  explicit Checker(std::string path) : path_(std::move(path)) {}

  void fail(const std::string& message) {
    std::cerr << path_ << ": " << message << '\n';
    ++failures_;
  }

  [[nodiscard]] int failures() const { return failures_; }

  /// Asserts `v` has kind `kind`; names `what` on mismatch.
  bool expect(const Value* v, Kind kind, const std::string& what) {
    if (v == nullptr) {
      fail("missing " + what);
      return false;
    }
    if (v->kind != kind) {
      fail(what + " has the wrong JSON type");
      return false;
    }
    return true;
  }

 private:
  std::string path_;
  int failures_ = 0;
};

void checkMetricsSection(Checker& check, const Value& metrics) {
  for (const char* section : {"counters", "gauges"}) {
    const Value* obj = metrics.find(section);
    if (!check.expect(obj, Kind::Object, std::string("metrics.") + section)) {
      continue;
    }
    for (const auto& [name, value] : obj->object) {
      if (value.kind != Kind::Number) {
        check.fail("metrics." + std::string(section) + "." + name +
                   " is not a number");
      }
    }
  }
  const Value* histograms = metrics.find("histograms");
  if (!check.expect(histograms, Kind::Object, "metrics.histograms")) {
    return;
  }
  for (const auto& [name, h] : histograms->object) {
    const std::string prefix = "metrics.histograms." + name;
    if (h.kind != Kind::Object) {
      check.fail(prefix + " is not an object");
      continue;
    }
    check.expect(h.find("count"), Kind::Number, prefix + ".count");
    check.expect(h.find("sum_nanos"), Kind::Number, prefix + ".sum_nanos");
    const Value* buckets = h.find("buckets");
    if (!check.expect(buckets, Kind::Array, prefix + ".buckets")) {
      continue;
    }
    if (buckets->array.size() > robust::obs::kHistogramBuckets) {
      check.fail(prefix + ".buckets has more than " +
                 std::to_string(robust::obs::kHistogramBuckets) + " entries");
    }
    for (const Value& b : buckets->array) {
      if (b.kind != Kind::Number) {
        check.fail(prefix + ".buckets holds a non-number");
        break;
      }
    }
  }
}

/// Walks a dotted key path ("server.frames", "tenants.alice.latency")
/// through nested objects. Returns nullptr when any segment is missing.
const Value* resolvePath(const Value& doc, const std::string& path) {
  const Value* cur = &doc;
  std::size_t start = 0;
  for (;;) {
    const std::size_t dot = path.find('.', start);
    const std::string key =
        dot == std::string::npos ? path.substr(start)
                                 : path.substr(start, dot - start);
    cur = cur->find(key);
    if (cur == nullptr || dot == std::string::npos) {
      return cur;
    }
    start = dot + 1;
  }
}

void expectNumbers(Checker& check, const Value& obj, const std::string& prefix,
                   std::initializer_list<const char*> keys) {
  for (const char* key : keys) {
    check.expect(obj.find(key), Kind::Number, prefix + "." + key);
  }
}

/// Validates a "robust.curve" degradation-curve section (written by
/// robust::curve::appendCurveSection): schema header, count consistency,
/// and the structural invariants of an empirical CDF — radii increasing,
/// probabilities monotone non-decreasing in [0, 1], and every pointwise
/// Clopper-Pearson band bracketing its estimate. When the report embeds a
/// curve.samples counter, it must equal the section's sample count — a
/// mismatch means the section and the metrics window describe different
/// runs.
void checkCurveSection(Checker& check, const Value& curve,
                       const Value* metrics) {
  const Value* schema = curve.find("schema");
  if (check.expect(schema, Kind::String, "curve.schema") &&
      schema->string != "robust.curve") {
    check.fail("curve.schema is '" + schema->string +
               "', expected 'robust.curve'");
  }
  const Value* version = curve.find("schema_version");
  if (check.expect(version, Kind::Number, "curve.schema_version") &&
      version->number != 1) {
    check.fail("curve.schema_version is not 1");
  }
  expectNumbers(check, curve, "curve",
                {"samples", "finite", "seed", "confidence", "dkw_epsilon",
                 "rho"});
  for (const char* flag : {"fast_lane", "cache_hit"}) {
    const Value* v = curve.find(flag);
    if (v == nullptr || v->kind != Kind::Bool) {
      check.fail(std::string("curve.") + flag + " is not a boolean");
    }
  }
  const Value* samples = curve.find("samples");
  const Value* finite = curve.find("finite");
  if (samples != nullptr && samples->kind == Kind::Number &&
      finite != nullptr && finite->kind == Kind::Number &&
      finite->number > samples->number) {
    check.fail("curve.finite exceeds curve.samples");
  }
  const Value* points = curve.find("points");
  if (!check.expect(points, Kind::Array, "curve.points")) {
    return;
  }
  double prevRadius = -std::numeric_limits<double>::infinity();
  double prevProbability = -1.0;
  for (std::size_t i = 0; i < points->array.size(); ++i) {
    const Value& p = points->array[i];
    const std::string prefix = "curve.points[" + std::to_string(i) + "]";
    if (p.kind != Kind::Object) {
      check.fail(prefix + " is not an object");
      continue;
    }
    expectNumbers(check, p, prefix,
                  {"radius", "probability", "lower", "upper"});
    const Value* radius = p.find("radius");
    const Value* probability = p.find("probability");
    const Value* lower = p.find("lower");
    const Value* upper = p.find("upper");
    if (radius == nullptr || radius->kind != Kind::Number ||
        probability == nullptr || probability->kind != Kind::Number ||
        lower == nullptr || lower->kind != Kind::Number ||
        upper == nullptr || upper->kind != Kind::Number) {
      continue;
    }
    if (radius->number <= prevRadius) {
      check.fail(prefix + ".radius is not increasing");
    }
    if (probability->number < prevProbability) {
      check.fail(prefix + ".probability decreases (a CDF cannot)");
    }
    if (probability->number < 0.0 || probability->number > 1.0) {
      check.fail(prefix + ".probability is outside [0, 1]");
    }
    if (lower->number > probability->number ||
        probability->number > upper->number) {
      check.fail(prefix + " band does not bracket its estimate");
    }
    prevRadius = radius->number;
    prevProbability = probability->number;
  }
  if (metrics == nullptr || metrics->kind != Kind::Object ||
      samples == nullptr || samples->kind != Kind::Number) {
    return;
  }
  const Value* counters = metrics->find("counters");
  if (counters == nullptr || counters->kind != Kind::Object) {
    return;
  }
  const Value* counted = counters->find("curve.samples");
  if (counted != nullptr && counted->kind == Kind::Number &&
      counted->number != samples->number) {
    check.fail("curve.samples (" + std::to_string(samples->number) +
               ") disagrees with the metrics counter curve.samples (" +
               std::to_string(counted->number) + ")");
  }
}

void checkLatencyDigest(Checker& check, const Value* digest,
                        const std::string& prefix) {
  if (!check.expect(digest, Kind::Object, prefix)) {
    return;
  }
  expectNumbers(check, *digest, prefix,
                {"count", "sum_nanos", "p50_nanos", "p95_nanos", "p99_nanos"});
}

/// Validates a robust.stats snapshot (the STATS admin reply, saved by
/// robustd_stat --json). --require names are dotted key paths into the
/// document here ("server.frames", "tenants.alice"), not benchmark names.
void checkStatsDocument(Checker& check, const Value& doc,
                        const std::vector<std::string>& required) {
  const Value* version = doc.find("schema_version");
  if (check.expect(version, Kind::Number, "schema_version") &&
      version->number != robust::net::kStatsSchemaVersion) {
    check.fail("schema_version is not " +
               std::to_string(robust::net::kStatsSchemaVersion));
  }
  const Value* tool = doc.find("tool");
  if (check.expect(tool, Kind::String, "tool") && tool->string.empty()) {
    check.fail("tool is empty");
  }

  const Value* server = doc.find("server");
  if (check.expect(server, Kind::Object, "server")) {
    expectNumbers(check, *server, "server",
                  {"sessions_opened", "sessions_closed", "sessions_active",
                   "frames", "batches", "instances", "registers",
                   "disconnects", "stats_requests", "trace_dumps",
                   "pool_workers", "pool_busy", "virtual_time_floor"});
  }
  const Value* cache = doc.find("cache");
  if (check.expect(cache, Kind::Object, "cache")) {
    expectNumbers(check, *cache, "cache",
                  {"hits", "misses", "evictions", "entries", "capacity"});
  }
  const Value* back = doc.find("backpressure");
  if (check.expect(back, Kind::Object, "backpressure")) {
    expectNumbers(check, *back, "backpressure",
                  {"stalls", "max_inflight_bytes", "backlog_high_water_bytes",
                   "paused_sessions"});
  }
  const Value* rejects = doc.find("rejects");
  if (check.expect(rejects, Kind::Object, "rejects")) {
    double sum = 0.0;
    for (std::size_t c = 0; c < robust::util::kRejectCategoryCount; ++c) {
      const char* name = robust::util::rejectCategoryName(
          static_cast<robust::util::RejectCategory>(c));
      const Value* v = rejects->find(name);
      if (check.expect(v, Kind::Number, std::string("rejects.") + name)) {
        sum += v->number;
      }
    }
    const Value* total = rejects->find("total");
    if (check.expect(total, Kind::Number, "rejects.total") &&
        total->number != sum) {
      check.fail("rejects.total does not equal the sum of its categories");
    }
  }
  const Value* tenants = doc.find("tenants");
  if (check.expect(tenants, Kind::Object, "tenants")) {
    for (const auto& [name, t] : tenants->object) {
      const std::string prefix = "tenants." + name;
      if (t.kind != Kind::Object) {
        check.fail(prefix + " is not an object");
        continue;
      }
      expectNumbers(check, t, prefix,
                    {"sessions", "frames", "batches", "instances", "registers",
                     "cache_hits", "cache_misses", "rejects_total",
                     "virtual_time", "charged_cost"});
      const Value* latency = t.find("latency");
      if (check.expect(latency, Kind::Object, prefix + ".latency")) {
        for (const char* digest : {"analyze", "compile", "queue"}) {
          checkLatencyDigest(check, latency->find(digest),
                             prefix + ".latency." + digest);
        }
      }
    }
  }
  const Value* flight = doc.find("flight");
  if (check.expect(flight, Kind::Object, "flight")) {
    expectNumbers(check, *flight, "flight", {"records", "capacity", "dumps"});
  }

  for (const std::string& want : required) {
    if (resolvePath(doc, want) == nullptr) {
      check.fail("required stats key '" + want + "' is missing");
    }
  }
}

int checkRunReport(const std::string& path,
                   const std::vector<std::string>& required) {
  Checker check(path);
  Value doc;
  try {
    doc = robust::obs::json::parseFile(path);
  } catch (const std::exception& err) {
    check.fail(err.what());
    return check.failures();
  }
  if (doc.kind != Kind::Object) {
    check.fail("top level is not an object");
    return check.failures();
  }

  const Value* schema = doc.find("schema");
  if (check.expect(schema, Kind::String, "schema") &&
      schema->string == robust::net::kStatsSchemaName) {
    // STATS snapshots ride the same positional slot; --require keys become
    // dotted paths into the document instead of benchmark names.
    checkStatsDocument(check, doc, required);
    return check.failures();
  }
  if (schema != nullptr && schema->kind == Kind::String &&
      schema->string != robust::obs::kRunReportSchemaName) {
    check.fail("schema is '" + schema->string + "', expected '" +
               std::string(robust::obs::kRunReportSchemaName) + "' or '" +
               std::string(robust::net::kStatsSchemaName) + "'");
  }
  const Value* version = doc.find("schema_version");
  if (check.expect(version, Kind::Number, "schema_version") &&
      version->number != robust::obs::kRunReportSchemaVersion) {
    check.fail("schema_version is not " +
               std::to_string(robust::obs::kRunReportSchemaVersion));
  }
  const Value* tool = doc.find("tool");
  if (check.expect(tool, Kind::String, "tool") && tool->string.empty()) {
    check.fail("tool is empty");
  }

  const Value* info = doc.find("info");
  if (check.expect(info, Kind::Object, "info")) {
    for (const auto& [key, value] : info->object) {
      if (value.kind != Kind::String) {
        check.fail("info." + key + " is not a string");
      }
    }
  }

  const Value* benchmarks = doc.find("benchmarks");
  if (check.expect(benchmarks, Kind::Array, "benchmarks")) {
    for (std::size_t i = 0; i < benchmarks->array.size(); ++i) {
      const Value& row = benchmarks->array[i];
      const std::string prefix = "benchmarks[" + std::to_string(i) + "]";
      if (row.kind != Kind::Object) {
        check.fail(prefix + " is not an object");
        continue;
      }
      const Value* name = row.find("name");
      if (check.expect(name, Kind::String, prefix + ".name") &&
          name->string.empty()) {
        check.fail(prefix + ".name is empty");
      }
      check.expect(row.find("value"), Kind::Number, prefix + ".value");
      check.expect(row.find("unit"), Kind::String, prefix + ".unit");
    }
    // A benchmark entry satisfies --require NAME when it is named exactly
    // NAME or NAME/<args> (google-benchmark appends /arg0/arg1... for
    // parameterized runs). A NAME that matches the "schema" string of an
    // extra top-level section (e.g. "robust.curve") is satisfied by that
    // section instead, so CI can require a report to carry a curve digest.
    for (const std::string& want : required) {
      bool found = false;
      for (const auto& [key, section] : doc.object) {
        if (section.kind != Kind::Object) {
          continue;
        }
        const Value* sectionSchema = section.find("schema");
        if (sectionSchema != nullptr &&
            sectionSchema->kind == Kind::String &&
            sectionSchema->string == want) {
          found = true;
          break;
        }
      }
      for (const Value& row : benchmarks->array) {
        if (found) {
          break;
        }
        if (row.kind != Kind::Object) {
          continue;
        }
        const Value* name = row.find("name");
        if (name == nullptr || name->kind != Kind::String) {
          continue;
        }
        if (name->string == want ||
            (name->string.size() > want.size() + 1 &&
             name->string.compare(0, want.size(), want) == 0 &&
             name->string[want.size()] == '/')) {
          found = true;
          break;
        }
      }
      if (!found) {
        check.fail("required benchmark '" + want + "' is missing");
      }
    }
  }

  const Value* metrics = doc.find("metrics");
  if (check.expect(metrics, Kind::Object, "metrics")) {
    checkMetricsSection(check, *metrics);
  }
  if (const Value* curveSection = doc.find("curve");
      curveSection != nullptr) {
    if (curveSection->kind != Kind::Object) {
      check.fail("curve section is not an object");
    } else {
      checkCurveSection(check, *curveSection, metrics);
    }
  }
  return check.failures();
}

/// name -> (value, unit) for every well-formed benchmark row of a report.
/// Schema violations are checkRunReport's job; this only skips rows it
/// cannot read.
std::map<std::string, std::pair<double, std::string>> benchmarkMap(
    const Value& doc) {
  std::map<std::string, std::pair<double, std::string>> out;
  const Value* benchmarks =
      doc.kind == Kind::Object ? doc.find("benchmarks") : nullptr;
  if (benchmarks == nullptr || benchmarks->kind != Kind::Array) {
    return out;
  }
  for (const Value& row : benchmarks->array) {
    if (row.kind != Kind::Object) {
      continue;
    }
    const Value* name = row.find("name");
    const Value* value = row.find("value");
    const Value* unit = row.find("unit");
    if (name == nullptr || name->kind != Kind::String ||
        value == nullptr || value->kind != Kind::Number ||
        unit == nullptr || unit->kind != Kind::String) {
      continue;
    }
    out[name->string] = {value->number, unit->string};
  }
  return out;
}

/// Rate units ("instances/s", "ops/s") improve upward; everything else
/// (ns, us, bytes) improves downward.
bool isRateUnit(const std::string& unit) {
  return unit.size() >= 2 && unit.compare(unit.size() - 2, 2, "/s") == 0;
}

int checkRegression(const std::string& reportPath, const Value& baseline,
                    const std::string& baselinePath, double maxSlowdown) {
  Checker check(reportPath);
  Value report;
  try {
    report = robust::obs::json::parseFile(reportPath);
  } catch (const std::exception& err) {
    check.fail(err.what());
    return check.failures();
  }
  const auto current = benchmarkMap(report);
  const auto base = benchmarkMap(baseline);
  std::size_t shared = 0;
  for (const auto& [name, baseEntry] : base) {
    const auto it = current.find(name);
    if (it == current.end()) {
      continue;
    }
    ++shared;
    const auto& [baseValue, baseUnit] = baseEntry;
    const auto& [value, unit] = it->second;
    if (unit != baseUnit) {
      check.fail("benchmark '" + name + "' unit changed: '" + unit +
                 "' vs baseline '" + baseUnit + "' (" + baselinePath + ")");
      continue;
    }
    if (isRateUnit(unit) ? value < baseValue / maxSlowdown
                         : value > baseValue * maxSlowdown) {
      check.fail("benchmark '" + name + "' regressed: " +
                 std::to_string(value) + " " + unit + " vs baseline " +
                 std::to_string(baseValue) + " " + unit + " (" +
                 baselinePath + ", max slowdown " +
                 std::to_string(maxSlowdown) + "x)");
    }
  }
  if (shared == 0) {
    check.fail("shares no benchmark name with baseline " + baselinePath);
  }
  return check.failures();
}

constexpr int kExitUsage = 2;
constexpr int kExitBaselineMissing = 3;
constexpr int kExitBaselineMalformed = 4;

/// Loads and vets one --baseline file. Returns 0 and fills `out` on
/// success; otherwise prints one categorized diagnostic and returns the
/// exit code (3 missing, 4 malformed) so CI can tell "the baseline
/// artifact never arrived" apart from "the baseline artifact is corrupt".
int loadBaseline(const std::string& path, Value& out) {
  if (std::ifstream probe(path, std::ios::binary); !probe) {
    std::cerr << "report_check: baseline '" << path
              << "' does not exist or cannot be opened — missing artifact; "
                 "re-run the baseline job or fix the path\n";
    return kExitBaselineMissing;
  }
  try {
    out = robust::obs::json::parseFile(path);
  } catch (const std::exception& err) {
    std::cerr << "report_check: baseline '" << path
              << "' is malformed (not valid JSON): " << err.what()
              << " — regenerate the baseline artifact\n";
    return kExitBaselineMalformed;
  }
  if (out.kind != Kind::Object) {
    std::cerr << "report_check: baseline '" << path
              << "' is malformed: top level is not an object — regenerate "
                 "the baseline artifact\n";
    return kExitBaselineMalformed;
  }
  if (benchmarkMap(out).empty()) {
    std::cerr << "report_check: baseline '" << path
              << "' is malformed: no well-formed benchmark rows, so it can "
                 "gate nothing — regenerate the baseline artifact\n";
    return kExitBaselineMalformed;
  }
  return 0;
}

int checkTrace(const std::string& path) {
  Checker check(path);
  Value doc;
  try {
    doc = robust::obs::json::parseFile(path);
  } catch (const std::exception& err) {
    check.fail(err.what());
    return check.failures();
  }
  if (doc.kind != Kind::Object) {
    check.fail("top level is not an object");
    return check.failures();
  }
  const Value* events = doc.find("traceEvents");
  if (!check.expect(events, Kind::Array, "traceEvents")) {
    return check.failures();
  }
  for (std::size_t i = 0; i < events->array.size(); ++i) {
    const Value& e = events->array[i];
    const std::string prefix = "traceEvents[" + std::to_string(i) + "]";
    if (e.kind != Kind::Object) {
      check.fail(prefix + " is not an object");
      continue;
    }
    const Value* name = e.find("name");
    if (check.expect(name, Kind::String, prefix + ".name") &&
        name->string.empty()) {
      check.fail(prefix + ".name is empty");
    }
    const Value* ph = e.find("ph");
    if (check.expect(ph, Kind::String, prefix + ".ph") &&
        ph->string != "X") {
      check.fail(prefix + ".ph is '" + ph->string +
                 "' (the exporter only emits complete events)");
    }
    check.expect(e.find("pid"), Kind::Number, prefix + ".pid");
    check.expect(e.find("tid"), Kind::Number, prefix + ".tid");
    const Value* ts = e.find("ts");
    const Value* dur = e.find("dur");
    if (check.expect(ts, Kind::Number, prefix + ".ts") && ts->number < 0) {
      check.fail(prefix + ".ts is negative");
    }
    if (check.expect(dur, Kind::Number, prefix + ".dur") && dur->number < 0) {
      check.fail(prefix + ".dur is negative");
    }
  }
  return check.failures();
}

}  // namespace

int main(int argc, char** argv) {
  constexpr const char* kUsage =
      "usage: report_check REPORT.json ... [--trace TRACE.json] "
      "[--require BENCH_NAME] [--baseline BASE.json] [--max-slowdown F]\n";
  std::vector<std::string> reports;
  std::vector<std::string> traces;
  std::vector<std::string> required;
  std::vector<std::string> baselines;
  double maxSlowdown = 1.25;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace") {
      if (i + 1 == argc) {
        std::cerr << "report_check: --trace needs a path\n";
        return kExitUsage;
      }
      traces.emplace_back(argv[++i]);
    } else if (arg == "--require") {
      if (i + 1 == argc) {
        std::cerr << "report_check: --require needs a benchmark name\n";
        return kExitUsage;
      }
      required.emplace_back(argv[++i]);
    } else if (arg == "--baseline") {
      if (i + 1 == argc) {
        std::cerr << "report_check: --baseline needs a path\n";
        return kExitUsage;
      }
      baselines.emplace_back(argv[++i]);
    } else if (arg == "--max-slowdown") {
      if (i + 1 == argc) {
        std::cerr << "report_check: --max-slowdown needs a factor\n";
        return kExitUsage;
      }
      try {
        maxSlowdown = std::stod(argv[++i]);
      } catch (const std::exception&) {
        maxSlowdown = 0.0;
      }
      if (!(maxSlowdown >= 1.0)) {
        std::cerr << "report_check: --max-slowdown must be a factor >= 1\n";
        return kExitUsage;
      }
    } else if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return 0;
    } else {
      reports.push_back(arg);
    }
  }
  if (reports.empty() && traces.empty()) {
    std::cerr << kUsage;
    return kExitUsage;
  }
  if (!required.empty() && reports.empty()) {
    std::cerr << "report_check: --require needs at least one report\n";
    return kExitUsage;
  }
  if (!baselines.empty() && reports.empty()) {
    std::cerr << "report_check: --baseline needs at least one report\n";
    return kExitUsage;
  }

  // Vet every baseline up front: a missing or corrupt baseline is a CI
  // plumbing failure, not a property of any report, and gets its own exit
  // code before any report is judged against it.
  std::vector<std::pair<std::string, Value>> baselineDocs;
  baselineDocs.reserve(baselines.size());
  for (const std::string& path : baselines) {
    Value doc;
    if (const int code = loadBaseline(path, doc); code != 0) {
      return code;
    }
    baselineDocs.emplace_back(path, std::move(doc));
  }

  int failures = 0;
  for (const std::string& path : reports) {
    failures += checkRunReport(path, required);
    for (const auto& [baselinePath, baseline] : baselineDocs) {
      failures += checkRegression(path, baseline, baselinePath, maxSlowdown);
    }
  }
  for (const std::string& path : traces) {
    failures += checkTrace(path);
  }
  if (failures > 0) {
    std::cerr << failures << " schema violation(s)\n";
    return 1;
  }
  std::cout << "validated " << reports.size() << " report(s), "
            << traces.size() << " trace(s): OK\n";
  return 0;
}
