// Ablation: the metric's worst-case guarantee vs stochastic reality.
// Executes a mapping thousands of times under three stochastic error models
// and increasing error magnitudes, reporting realized makespan statistics,
// violation rates, and the operational check of the paper's guarantee: no
// trial whose error norm is within rho may violate.
//
// Run: ./ablation_error_models [--trials N] [--seed S] [--tau X]
#include <iostream>

#include "robust/scheduling/heuristics.hpp"
#include "robust/sim/study.hpp"
#include "robust/util/args.hpp"
#include "robust/util/table.hpp"

int main(int argc, char** argv) {
  using namespace robust;
  const ArgParser args(argc, argv);
  const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 2003));
  const double tau = args.getDouble("tau", 1.2);

  sched::EtcOptions etcOptions;
  Pcg32 rng(seed);
  const auto etc = sched::generateEtc(etcOptions, rng);
  const auto mapping = sched::minMinMapping(etc);
  const sched::IndependentTaskSystem system(etc, mapping, tau);
  const auto analysis = system.analyze();

  std::cout << "# Ablation: stochastic error models vs the worst-case "
               "guarantee (min-min mapping)\n";
  std::cout << "predicted makespan " << formatDouble(analysis.predictedMakespan)
            << ", tau = " << tau << ", rho = "
            << formatDouble(analysis.robustness) << " seconds\n\n";

  sim::StudyOptions options;
  options.trials = static_cast<int>(args.getInt("trials", 2000));
  options.seed = seed;
  for (const auto model :
       {sim::ErrorModel::GaussianRelative,
        sim::ErrorModel::GammaMultiplicative,
        sim::ErrorModel::UniformRelative}) {
    options.model = model;
    const auto points = sim::runMakespanStudy(system, options);
    std::cout << "error model: " << sim::toString(model) << "\n";
    TablePrinter table({"magnitude", "mean ||err|| / rho", "violation rate",
                        "mean M/M_orig", "p95 M/M_orig",
                        "covered trials", "covered violations"});
    for (const auto& p : points) {
      table.addRow({formatDouble(p.magnitude),
                    formatDouble(p.meanErrorNorm, 3),
                    formatDouble(p.violationRate, 3),
                    formatDouble(p.meanMakespanRatio, 4),
                    formatDouble(p.p95MakespanRatio, 4),
                    std::to_string(p.coveredTrials),
                    std::to_string(p.coveredViolations)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "reading: 'covered violations' must be 0 (the guarantee); the "
               "violation rate at\nlarger magnitudes shows how conservative "
               "the worst-case radius is against\ntypical (non-adversarial) "
               "errors — most perturbations beyond rho still succeed.\n";
  return 0;
}
