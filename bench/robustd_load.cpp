// robustd_load: multi-tenant load generator and correctness oracle for the
// robustd daemon.
//
// Connects N concurrent tenants to a running daemon (start one with
// `robustd --unix /tmp/robustd.sock`), each registering a deterministic
// spec family seeded from --seed and streaming --batches perturbation
// batches of --instances instances. Every reply is compared BIT-FOR-BIT
// against the offline lane (CompiledProblem::analyzeBatchMetric +
// originFeasible on a locally compiled copy of the same spec): any
// mismatch is a protocol or determinism bug and exits nonzero.
//
// The tenant mix exercises the fairness and containment story:
//   * fair tenants declare their true per-batch demand;
//   * --greedy adds a tenant that misdeclares the maximum demand weight
//     while submitting the same work — the daemon must stay correct for
//     everyone (the fairness charge is by ACTUAL instances, so the lie
//     only dilutes the liar's own priority);
//   * --chaos adds saboteur connections that send garbage magic (expect a
//     fatal categorized reject), analyze against a bogus key (expect a
//     non-fatal Structure reject), and disconnect mid-frame — none of
//     which may disturb any fair tenant's bits.
//
//   robustd_load --unix /tmp/robustd.sock --tenants 4 --batches 8 \
//                --instances 64 --chaos --greedy
#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "robust/core/compiled.hpp"
#include "robust/net/client.hpp"
#include "robust/net/wire.hpp"
#include "robust/util/args.hpp"
#include "robust/util/rng.hpp"

namespace {

using robust::core::AnalysisInstance;
using robust::core::CompiledProblem;
using robust::core::ImpactFunction;
using robust::core::LinearConstraint;
using robust::core::MetricResult;
using robust::core::PerformanceFeature;
using robust::core::ProblemSpec;
using robust::core::ToleranceBounds;

struct Config {
  std::string unixPath;
  std::uint16_t port = 0;
  std::size_t tenants = 4;
  std::size_t batches = 8;
  std::size_t instances = 64;
  std::size_t dim = 24;
  std::size_t features = 8;
  std::uint64_t seed = 42;
  bool chaos = false;
  bool greedy = false;
};

/// Deterministic spec family: tenant t gets spec (t % kSpecFamilies), so
/// several tenants share byte-identical specs and exercise the shared
/// cache; every odd family carries a hard constraint so the
/// infeasible-origin flag is exercised too.
constexpr std::size_t kSpecFamilies = 3;

ProblemSpec makeSpec(const Config& cfg, std::size_t family) {
  auto rng = robust::makeStream(cfg.seed, 1000 + family);
  ProblemSpec spec;
  spec.parameter.name = "pi (load family " + std::to_string(family) + ")";
  spec.parameter.origin.resize(cfg.dim);
  for (double& v : spec.parameter.origin) {
    v = rng.uniform(1.0, 4.0);
  }
  for (std::size_t f = 0; f < cfg.features; ++f) {
    robust::num::Vec weights(cfg.dim);
    for (double& w : weights) {
      w = rng.uniform(0.1, 2.0);
    }
    const double constant = rng.uniform(-1.0, 1.0);
    double phiOrig = constant;
    for (std::size_t j = 0; j < cfg.dim; ++j) {
      phiOrig += weights[j] * spec.parameter.origin[j];
    }
    const double slack = rng.uniform(2.0, 6.0);
    spec.features.push_back(PerformanceFeature{
        "phi_" + std::to_string(f),
        ImpactFunction::affine(std::move(weights), constant),
        ToleranceBounds::between(phiOrig - slack, phiOrig + slack)});
  }
  if (family % 2 == 1) {
    // A feasible-at-origin budget constraint; perturbed origins near the
    // operating point straddle it, so both flag values appear.
    LinearConstraint budget;
    budget.name = "budget";
    budget.coeffs.assign(cfg.dim, 1.0);
    double load = 0.0;
    for (double v : spec.parameter.origin) {
      load += v;
    }
    budget.bound = load + 0.05 * load;
    spec.constraints.push_back(std::move(budget));
  }
  return spec;
}

std::vector<double> makeBatch(const Config& cfg, std::uint64_t tenant,
                              std::size_t batch, const ProblemSpec& spec) {
  auto rng = robust::makeStream(cfg.seed, tenant * 10000 + batch);
  std::vector<double> origins(cfg.instances * cfg.dim);
  for (std::size_t i = 0; i < cfg.instances; ++i) {
    for (std::size_t j = 0; j < cfg.dim; ++j) {
      origins[i * cfg.dim + j] =
          spec.parameter.origin[j] + rng.uniform(-0.5, 0.5);
    }
  }
  return origins;
}

/// The offline oracle for one batch: exactly the calls the daemon makes.
std::vector<robust::net::WireResult> offlineAnswers(
    const CompiledProblem& problem, const std::vector<double>& origins,
    std::size_t instances, std::size_t dim) {
  std::vector<AnalysisInstance> batch(instances);
  for (std::size_t i = 0; i < instances; ++i) {
    batch[i].origin = std::span<const double>(origins.data() + i * dim, dim);
  }
  const std::vector<MetricResult> metrics =
      problem.analyzeBatchMetric(batch, /*threads=*/1);
  std::vector<robust::net::WireResult> expect(instances);
  const bool constrained = !problem.constraints().empty();
  for (std::size_t i = 0; i < instances; ++i) {
    expect[i].rho = metrics[i].metric;
    expect[i].bindingFeature =
        static_cast<std::uint32_t>(metrics[i].bindingFeature);
    expect[i].floored = metrics[i].floored;
    expect[i].infeasibleOrigin =
        constrained && !problem.originFeasible(batch[i].origin);
  }
  return expect;
}

robust::net::Client connect(const Config& cfg) {
  robust::net::Client client;
  if (!cfg.unixPath.empty()) {
    client.connectUnix(cfg.unixPath);
  } else {
    client.connectTcp(cfg.port);
  }
  return client;
}

/// One tenant's full session. Returns the number of bit-exact mismatches.
std::uint64_t runTenant(const Config& cfg, std::size_t tenant, bool greedy,
                        std::atomic<std::uint64_t>& instancesDone) {
  const std::size_t family = tenant % kSpecFamilies;
  const ProblemSpec spec = makeSpec(cfg, family);
  const CompiledProblem problem =
      CompiledProblem::compile(makeSpec(cfg, family));

  robust::net::Client client = connect(cfg);
  const std::uint32_t honest =
      static_cast<std::uint32_t>(std::max<std::size_t>(1, cfg.instances));
  client.hello(greedy ? "greedy" : "tenant" + std::to_string(tenant),
               greedy ? 65536 : honest);
  const robust::net::RegisterReply reg = client.registerProblem(spec);

  std::uint64_t mismatches = 0;
  for (std::size_t b = 0; b < cfg.batches; ++b) {
    const std::vector<double> origins = makeBatch(cfg, tenant, b, spec);
    const std::vector<robust::net::WireResult> got = client.analyze(
        reg.key, static_cast<std::uint32_t>(cfg.instances), origins);
    const std::vector<robust::net::WireResult> expect =
        offlineAnswers(problem, origins, cfg.instances, cfg.dim);
    for (std::size_t i = 0; i < cfg.instances; ++i) {
      const bool same =
          std::memcmp(&got[i].rho, &expect[i].rho, sizeof(double)) == 0 &&
          got[i].bindingFeature == expect[i].bindingFeature &&
          got[i].floored == expect[i].floored &&
          got[i].infeasibleOrigin == expect[i].infeasibleOrigin;
      if (!same) {
        ++mismatches;
        std::fprintf(stderr,
                     "MISMATCH tenant %zu batch %zu instance %zu: daemon "
                     "rho=%.17g feature=%u vs offline rho=%.17g feature=%u\n",
                     tenant, b, i, got[i].rho, got[i].bindingFeature,
                     expect[i].rho, expect[i].bindingFeature);
      }
    }
    instancesDone += cfg.instances;
  }
  client.bye();
  return mismatches;
}

/// Saboteur 1: garbage magic. The daemon must answer one FATAL categorized
/// reject and close; anything else counts as a failure.
bool chaosBadMagic(const Config& cfg) {
  robust::net::Client client = connect(cfg);
  const std::uint8_t garbage[32] = {0xde, 0xad, 0xbe, 0xef};
  client.sendRaw(garbage);
  try {
    auto [header, payload] = client.readFrame();
    if (header.type != robust::net::FrameType::Reject) {
      std::fprintf(stderr, "chaos: bad magic got frame 0x%02x, not REJECT\n",
                   static_cast<unsigned>(header.type));
      return false;
    }
    const robust::util::Diagnostics diag("chaos");
    const robust::net::RejectInfo info =
        robust::net::decodeReject(payload, diag);
    if (!info.fatal) {
      std::fprintf(stderr, "chaos: bad-magic reject was not fatal\n");
      return false;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "chaos: bad magic: %s\n", e.what());
    return false;
  }
  client.closeNow();
  return true;
}

/// Saboteur 2: well-formed session, bogus ANALYZE key (expect a non-fatal
/// Structure reject, session still usable), then a mid-frame disconnect.
bool chaosBogusKeyThenVanish(const Config& cfg) {
  robust::net::Client client = connect(cfg);
  try {
    client.hello("saboteur", 1);
    std::vector<double> one(cfg.dim, 1.0);
    bool rejected = false;
    try {
      (void)client.analyze(0xabcdef, static_cast<std::uint32_t>(1), one);
    } catch (const robust::net::RejectedError& e) {
      rejected = !e.info().fatal &&
                 e.info().category == robust::util::RejectCategory::Structure;
    }
    if (!rejected) {
      std::fprintf(stderr,
                   "chaos: bogus key did not draw a non-fatal Structure "
                   "reject\n");
      return false;
    }
    // Announce a 1 MiB frame, send 16 bytes of it, vanish.
    std::vector<std::uint8_t> partial;
    robust::net::encodeFrameHeader(
        robust::net::FrameHeader{robust::net::kProtocolVersion,
                                 robust::net::FrameType::Analyze, 1u << 20,
                                 777},
        partial);
    partial.resize(partial.size() + 16, 0);
    client.sendRaw(partial);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "chaos: %s\n", e.what());
    return false;
  }
  client.closeNow();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const robust::ArgParser args(argc, argv);
  Config cfg;
  cfg.unixPath = args.getString("unix", "");
  cfg.port = static_cast<std::uint16_t>(args.getInt("port", 0));
  cfg.tenants = static_cast<std::size_t>(args.getInt("tenants", 4));
  cfg.batches = static_cast<std::size_t>(args.getInt("batches", 8));
  cfg.instances = static_cast<std::size_t>(args.getInt("instances", 64));
  cfg.dim = static_cast<std::size_t>(args.getInt("dim", 24));
  cfg.features = static_cast<std::size_t>(args.getInt("features", 8));
  cfg.seed = static_cast<std::uint64_t>(args.getInt("seed", 42));
  cfg.chaos = args.has("chaos");
  cfg.greedy = args.has("greedy");
  if (cfg.unixPath.empty() && cfg.port == 0) {
    std::fprintf(stderr,
                 "robustd_load: need --unix PATH or --port N of a running "
                 "robustd\n");
    return 2;
  }

  std::atomic<std::uint64_t> instancesDone{0};
  std::atomic<std::uint64_t> mismatches{0};
  std::atomic<int> failures{0};

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < cfg.tenants; ++t) {
    threads.emplace_back([&, t] {
      try {
        mismatches += runTenant(cfg, t, /*greedy=*/false, instancesDone);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "tenant %zu: %s\n", t, e.what());
        ++failures;
      }
    });
  }
  if (cfg.greedy) {
    threads.emplace_back([&] {
      try {
        mismatches +=
            runTenant(cfg, cfg.tenants, /*greedy=*/true, instancesDone);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "greedy tenant: %s\n", e.what());
        ++failures;
      }
    });
  }
  if (cfg.chaos) {
    threads.emplace_back([&] {
      if (!chaosBadMagic(cfg)) {
        ++failures;
      }
      if (!chaosBogusKeyThenVanish(cfg)) {
        ++failures;
      }
    });
  }
  for (std::thread& th : threads) {
    th.join();
  }

  std::printf(
      "robustd_load: %llu instances verified bit-identical, %llu "
      "mismatches, %d tenant failures%s%s\n",
      static_cast<unsigned long long>(instancesDone.load()),
      static_cast<unsigned long long>(mismatches.load()), failures.load(),
      cfg.greedy ? ", greedy tenant ran" : "",
      cfg.chaos ? ", chaos injected" : "");
  return (mismatches.load() == 0 && failures.load() == 0) ? 0 : 1;
}
