// Throughput harness for the out-of-core streaming engine (DESIGN.md
// section 4.11) — the producer of the committed BENCH_pr6.json.
//
//   stream_throughput --file BATCH.rbi [--rows 4096] [--reps 3]
//                     [--warmup 1] [--threads 0] [--shard 4096]
//                     [--sample 256] [--obs_report PATH]
//
// The instance file comes from `etc_pack gen` (its dimension fixes the
// problem's); the problem is perf_kernels' metricBenchProblem family
// (seed 6), so the serial bridge benchmark below is the same quantity
// BENCH_pr5.json pinned. Before timing, the first --sample instances are
// checked bit-identical between analyzeStreamValues and the serial
// analyzeBatchMetric fold — a throughput number for a wrong answer is
// worse than no number.
//
// Emitted benchmarks:
//   BM_StreamMetricThroughput/<rows>/<dim>  instances/s  (best of --reps
//       full-file sharded sweeps, screening on)
//   BM_MetricOnlyPruned/<rows>/<dim>        ns           (serial
//       single-instance metric, the BENCH_pr5 bridge)
//
// Exit code 0 on success, 1 on a differential mismatch or I/O error.
#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdint>
#include <exception>
#include <iostream>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "robust/core/compiled.hpp"
#include "robust/core/instance_file.hpp"
#include "robust/core/stream.hpp"
#include "robust/numeric/simd.hpp"
#include "robust/obs/report.hpp"
#include "robust/util/args.hpp"
#include "robust/util/mmap_file.hpp"
#include "robust/util/rng.hpp"

namespace {

using namespace robust;
using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// perf_kernels' metricBenchProblem, replicated draw-for-draw (seed 6):
/// affine rows, atMost tolerances spread over [1.05, 4.0] x the origin
/// value so pruning and screening have realistic work.
core::CompiledProblem metricBenchProblem(std::size_t rows,
                                         std::size_t dims) {
  Pcg32 rng(6);
  core::ProblemSpec spec;
  spec.parameter.name = "pi";
  spec.parameter.origin.resize(dims);
  for (double& v : spec.parameter.origin) {
    v = rng.uniform(0.5, 1.5);
  }
  spec.features.reserve(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    num::Vec weights(dims);
    for (double& w : weights) {
      w = rng.uniform(0.1, 2.0);
    }
    double atOrigin = 0.0;
    for (std::size_t k = 0; k < dims; ++k) {
      atOrigin += weights[k] * spec.parameter.origin[k];
    }
    spec.features.push_back(core::PerformanceFeature{
        "F_" + std::to_string(r),
        core::ImpactFunction::affine(std::move(weights)),
        core::ToleranceBounds::atMost(atOrigin * rng.uniform(1.05, 4.0))});
  }
  return core::CompiledProblem::compile(std::move(spec));
}

bool bitEq(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

/// The serial reference fold over a materialized batch.
core::StreamResult serialFold(const core::CompiledProblem& problem,
                              std::span<const double> values) {
  const std::size_t dim = problem.dimension();
  const std::size_t n = values.size() / dim;
  std::vector<core::AnalysisInstance> instances(n);
  for (std::size_t i = 0; i < n; ++i) {
    instances[i] =
        core::AnalysisInstance{{values.data() + i * dim, dim}, {}, {}};
  }
  std::vector<core::MetricResult> out(n);
  problem.analyzeBatchMetric(instances, out, /*threads=*/1);
  core::StreamResult result;
  result.metric = std::numeric_limits<double>::infinity();
  result.instances = n;
  for (std::size_t i = 0; i < n; ++i) {
    if (out[i].metric < result.metric) {
      result.metric = out[i].metric;
      result.argminInstance = i;
      result.bindingFeature = out[i].bindingFeature;
      result.floored = out[i].floored;
    }
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  const std::string filePath = args.getString("file", "");
  if (filePath.empty()) {
    std::cerr << "usage: stream_throughput --file BATCH.rbi [--rows 4096] "
                 "[--reps 3] [--warmup 1] [--threads 0] [--shard 4096] "
                 "[--sample 256] [--obs_report PATH]\n";
    return 1;
  }
  const auto rows = static_cast<std::size_t>(args.getInt("rows", 4096));
  const int reps = static_cast<int>(args.getInt("reps", 3));
  const int warmup = static_cast<int>(args.getInt("warmup", 1));
  const std::string reportPath = args.getString("obs_report", "");

  core::StreamOptions options;
  options.threads = static_cast<std::size_t>(args.getInt("threads", 0));
  options.shardInstances =
      static_cast<std::size_t>(args.getInt("shard", 4096));

  try {
    const core::InstanceFileReader reader(filePath);
    const auto dim = static_cast<std::size_t>(reader.dim());
    const std::uint64_t instances = reader.instances();
    std::cout << "file " << filePath << ": " << instances << " x " << dim
              << ", problem " << rows << " x " << dim << ", simd "
              << num::simd::toString(num::simd::activeTarget()) << '\n';

    const core::CompiledProblem problem = metricBenchProblem(rows, dim);

    // ---- differential sanity on the head of the file ------------------
    const auto sample = static_cast<std::uint64_t>(args.getInt(
        "sample", static_cast<std::int64_t>(std::min<std::uint64_t>(
                      256, instances))));
    if (sample > 0 && sample <= instances) {
      util::MmapFile::View view;
      const std::span<const double> head =
          reader.read(0, sample, view);
      const core::StreamResult serial = serialFold(problem, head);
      const core::StreamResult streamed =
          core::analyzeStreamValues(problem, head, options);
      if (!bitEq(serial.metric, streamed.metric) ||
          serial.argminInstance != streamed.argminInstance ||
          serial.bindingFeature != streamed.bindingFeature) {
        std::cerr << "FAIL: streamed head diverges from serial fold "
                     "(metric "
                  << streamed.metric << " vs " << serial.metric << ")\n";
        return 1;
      }
      std::cout << "differential: first " << sample
                << " instances bit-identical to the serial fold\n";
    }

    // ---- timed sweeps -------------------------------------------------
    core::StreamResult result;
    double bestSeconds = std::numeric_limits<double>::infinity();
    for (int rep = -warmup; rep < reps; ++rep) {
      const auto start = Clock::now();
      result = core::analyzeStream(problem, filePath, options);
      const double elapsed = secondsSince(start);
      if (rep >= 0 && elapsed < bestSeconds) {
        bestSeconds = elapsed;
      }
    }
    const double instPerSec =
        static_cast<double>(result.instances) / bestSeconds;
    const double screenedFraction =
        result.instances == 0
            ? 0.0
            : static_cast<double>(result.screenedInstances) /
                  static_cast<double>(result.instances);
    std::cout << "BM_StreamMetricThroughput/" << rows << "/" << dim << "  "
              << instPerSec << " instances/s  (best of " << reps
              << ", rho " << result.metric << " at instance "
              << result.argminInstance << ", screened "
              << 100.0 * screenedFraction << "%)\n";

    // ---- the BENCH_pr5 bridge: serial single-instance metric ----------
    Pcg32 perturb(7);
    num::Vec origin(problem.parameter().origin);
    for (double& v : origin) {
      v *= perturb.uniform(0.99, 1.01);
    }
    core::AnalysisInstance instance;
    instance.origin = origin;
    core::MetricWorkspace workspace;
    double sink = 0.0;
    std::uint64_t iters = 0;
    const auto serialStart = Clock::now();
    double serialElapsed = 0.0;
    while (serialElapsed < 0.2 || iters < 8) {
      sink += problem.evaluateMetric(instance, workspace).metric;
      ++iters;
      serialElapsed = secondsSince(serialStart);
    }
    const double serialNs =
        serialElapsed * 1e9 / static_cast<double>(iters);
    std::cout << "BM_MetricOnlyPruned/" << rows << "/" << dim << "  "
              << serialNs << " ns  (" << iters << " iters, sink " << sink
              << ")\n";

    if (!reportPath.empty()) {
      obs::RunReport report;
      report.tool = "stream_throughput";
      report.info = {
          {"file", filePath},
          {"instances", std::to_string(instances)},
          {"dim", std::to_string(dim)},
          {"rows", std::to_string(rows)},
          {"shard", std::to_string(options.shardInstances)},
          {"threads", std::to_string(options.threads)},
          {"simd", std::string(
                       num::simd::toString(num::simd::activeTarget()))},
          {"screened_fraction", std::to_string(screenedFraction)},
          {"issue_target",
           "1e7 instances/s at 4096x512; the committed value is the "
           "measured best on the build host (single-core container) — "
           "the gap is documented in DESIGN.md section 4.11"},
      };
      report.benchmarks = {
          {"BM_StreamMetricThroughput/" + std::to_string(rows) + "/" +
               std::to_string(dim),
           instPerSec, "instances/s"},
          {"BM_MetricOnlyPruned/" + std::to_string(rows) + "/" +
               std::to_string(dim),
           serialNs, "ns"},
      };
      obs::writeRunReport(reportPath, report);
      std::cout << "report -> " << reportPath << '\n';
    }
  } catch (const std::exception& err) {
    std::cerr << "stream_throughput: " << err.what() << '\n';
    return 1;
  }
  return 0;
}
