// Ablation: how the makespan-robustness metric scales with the tolerance
// tau. Eq. 6 predicts every radius is affine in tau — the binding machine's
// radius is ((tau - 1) M + (M - F_j)) / sqrt(n_j) — so the population mean
// robustness should grow linearly in tau, and rankings should be stable for
// mappings within one S1 cluster.
//
// Run: ./ablation_tau [--mappings N] [--seed S]
#include <iostream>

#include "robust/scheduling/experiment.hpp"
#include "robust/util/args.hpp"
#include "robust/util/stats.hpp"
#include "robust/util/table.hpp"

int main(int argc, char** argv) {
  using namespace robust;
  const ArgParser args(argc, argv);

  sched::Fig3Options options;
  options.mappings = static_cast<std::size_t>(args.getInt("mappings", 400));
  options.seed = static_cast<std::uint64_t>(args.getInt("seed", 2003));

  std::cout << "# Ablation: robustness vs tolerance tau (" << options.mappings
            << " mappings per point)\n\n";

  TablePrinter table({"tau", "mean rho", "min rho", "max rho",
                      "mean rho / (tau-1)"});
  std::vector<double> taus = {1.05, 1.1, 1.2, 1.3, 1.4, 1.5};
  std::vector<double> means;
  for (double tau : taus) {
    options.tau = tau;
    const auto rows = sched::runFig3(options);
    std::vector<double> rhos;
    rhos.reserve(rows.size());
    for (const auto& row : rows) {
      rhos.push_back(row.robustness);
    }
    const Summary s = summarize(rhos);
    means.push_back(s.mean);
    table.addRow({formatDouble(tau), formatDouble(s.mean),
                  formatDouble(s.min), formatDouble(s.max),
                  formatDouble(s.mean / (tau - 1.0))});
  }
  table.print(std::cout);

  const LinearFit fit = fitLine(taus, means);
  std::cout << "\nlinear fit of mean robustness vs tau: slope "
            << formatDouble(fit.slope) << ", r^2 = " << formatDouble(fit.r2, 6)
            << " (Eq. 6 predicts r^2 = 1)\n";
  return 0;
}
