// Regenerates Figure 3 of the paper: robustness vs makespan for 1000
// randomly generated mappings of 20 applications on 5 machines (ETC ~
// Gamma, mean 10, task/machine heterogeneity 0.7, tau = 1.2), plus the
// cluster analysis of Section 4.2 (the straight lines S_1(x) and the
// outliers S_2(x) \ S_1(x)).
//
// Run: ./fig3_makespan [--mappings N] [--seed S] [--tau X] [--csv]
#include <cmath>
#include <iostream>
#include <map>

#include "robust/scheduling/experiment.hpp"
#include "robust/util/args.hpp"
#include "robust/util/stats.hpp"
#include "robust/util/table.hpp"

int main(int argc, char** argv) {
  using namespace robust;
  const ArgParser args(argc, argv);

  sched::Fig3Options options;
  options.mappings = static_cast<std::size_t>(args.getInt("mappings", 1000));
  options.seed = static_cast<std::uint64_t>(args.getInt("seed", 2003));
  options.tau = args.getDouble("tau", 1.2);

  const auto rows = sched::runFig3(options);

  std::cout << "# Figure 3: robustness vs makespan, " << options.mappings
            << " random mappings, " << options.etc.apps << " applications, "
            << options.etc.machines << " machines, tau = " << options.tau
            << "\n";

  if (args.has("csv")) {
    CsvWriter csv(std::cout);
    csv.writeRow({"makespan", "robustness", "load_balance",
                  "n_makespan_machine", "max_count", "in_s1"});
    for (const auto& row : rows) {
      csv.writeRow({formatDouble(row.makespan, 8),
                    formatDouble(row.robustness, 8),
                    formatDouble(row.loadBalance, 8),
                    std::to_string(row.makespanMachineCount),
                    std::to_string(row.maxMachineCount),
                    row.inS1 ? "1" : "0"});
    }
  }

  // ---- Series summary (the scatter's shape).
  std::vector<double> makespans;
  std::vector<double> robustness;
  std::vector<double> lbis;
  for (const auto& row : rows) {
    makespans.push_back(row.makespan);
    robustness.push_back(row.robustness);
    lbis.push_back(row.loadBalance);
  }
  const Summary ms = summarize(makespans);
  const Summary rs = summarize(robustness);
  std::cout << "\nmakespan  : mean " << formatDouble(ms.mean) << ", range ["
            << formatDouble(ms.min) << ", " << formatDouble(ms.max) << "]\n";
  std::cout << "robustness: mean " << formatDouble(rs.mean) << ", range ["
            << formatDouble(rs.min) << ", " << formatDouble(rs.max) << "]\n";
  std::cout << "pearson(makespan, robustness)    = "
            << formatDouble(pearson(makespans, robustness)) << "\n";
  std::cout << "pearson(load balance, robustness) = "
            << formatDouble(pearson(lbis, robustness)) << "\n";

  // ---- Paper finding 1: mappings with nearly equal makespan can differ
  // sharply in robustness. Report the largest robustness ratio within a
  // 1%-makespan window.
  {
    std::vector<std::size_t> order(rows.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
      order[i] = i;
    }
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return rows[a].makespan < rows[b].makespan;
    });
    double bestRatio = 1.0;
    std::size_t bestA = 0;
    std::size_t bestB = 0;
    for (std::size_t i = 0; i < order.size(); ++i) {
      for (std::size_t j = i + 1; j < order.size(); ++j) {
        const auto& a = rows[order[i]];
        const auto& b = rows[order[j]];
        if (b.makespan > 1.01 * a.makespan) {
          break;
        }
        const double lo = std::min(a.robustness, b.robustness);
        const double hi = std::max(a.robustness, b.robustness);
        if (lo > 0.0 && hi / lo > bestRatio) {
          bestRatio = hi / lo;
          bestA = order[i];
          bestB = order[j];
        }
      }
    }
    std::cout << "\nsimilar-makespan discrimination: mappings with makespans "
              << formatDouble(rows[bestA].makespan) << " vs "
              << formatDouble(rows[bestB].makespan)
              << " (within 1%) have robustness "
              << formatDouble(rows[bestA].robustness) << " vs "
              << formatDouble(rows[bestB].robustness) << " -> ratio "
              << formatDouble(bestRatio) << "x\n";
  }

  // ---- Paper finding 2: the S_1(x) clusters are straight lines
  // rho = (tau - 1) * makespan / sqrt(x).
  std::map<std::size_t, std::pair<std::vector<double>, std::vector<double>>>
      clusters;
  std::size_t outliers = 0;
  for (const auto& row : rows) {
    if (row.inS1) {
      clusters[row.maxMachineCount].first.push_back(row.makespan);
      clusters[row.maxMachineCount].second.push_back(row.robustness);
    } else {
      ++outliers;
    }
  }
  std::cout << "\nS1 cluster lines (robustness = (tau-1)/sqrt(x) * makespan):"
            << "\n";
  TablePrinter table({"x = n(m(C))", "mappings", "fitted slope",
                      "expected slope", "fit r^2"});
  for (const auto& [x, series] : clusters) {
    if (series.first.size() < 2) {
      continue;
    }
    const LinearFit fit = fitLine(series.first, series.second);
    table.addRow({std::to_string(x), std::to_string(series.first.size()),
                  formatDouble(fit.slope, 6),
                  formatDouble((options.tau - 1.0) / std::sqrt(
                                   static_cast<double>(x)), 6),
                  formatDouble(fit.r2, 6)});
  }
  table.print(std::cout);
  std::cout << "outliers (S2 \\ S1, below their cluster line): " << outliers
            << " of " << rows.size() << "\n";

  // Verify the paper's outlier claim: every outlier lies BELOW the S1 line
  // for its own n(m(C)).
  std::size_t below = 0;
  for (const auto& row : rows) {
    if (!row.inS1) {
      const double line = (options.tau - 1.0) /
                          std::sqrt(static_cast<double>(
                              row.makespanMachineCount)) *
                          row.makespan;
      below += row.robustness <= line + 1e-9;
    }
  }
  std::cout << "outliers on or below their S1(x) line: " << below << "/"
            << outliers << " (paper: all)\n";
  return 0;
}
