// Ablation: robustness-aware mapping search on the HiPer-D system.
// How much robustness does optimization buy over the random mappings the
// paper's experiments evaluate? Compares: the best of N random mappings
// (the Fig. 4 population), and simulated annealing maximizing rho directly
// (with the slack metric reported alongside, showing the two objectives are
// not interchangeable).
//
// A second section runs the same study on the independent-task ETC model,
// where the standard objectives go through the incremental evaluation
// engine (IncrementalEvaluator) instead of a from-scratch analyze() per
// probe — the HiPer-D objective stays generic because its feasibility
// analysis is not expressible as machine-load deltas.
//
// Run: ./ablation_mapping_search [--seed S] [--random N] [--iters N]
//                                 [--report PATH]
//
// --report writes the result rows (plus the obs metrics snapshot when
// ROBUST_OBS is on) as a robust.run_report JSON document.
#include <algorithm>
#include <iostream>
#include <string>

#include "robust/hiperd/experiment.hpp"
#include "robust/obs/report.hpp"
#include "robust/scheduling/heuristics.hpp"
#include "robust/scheduling/independent_system.hpp"
#include "robust/util/args.hpp"
#include "robust/util/table.hpp"

int main(int argc, char** argv) {
  using namespace robust;
  const ArgParser args(argc, argv);
  const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 2003));
  const auto randomCount =
      static_cast<std::size_t>(args.getInt("random", 300));
  const std::string reportPath = args.getString("report", "");

  obs::RunReport runReport;
  runReport.tool = "ablation_mapping_search";
  runReport.info.emplace_back("seed", std::to_string(seed));
  runReport.info.emplace_back("random_mappings", std::to_string(randomCount));
  const auto record = [&runReport](std::string name, double value,
                                   const char* unit) {
    runReport.benchmarks.push_back(
        obs::BenchResult{std::move(name), value, unit});
  };

  hiperd::Fig4Options options;
  options.mappings = randomCount;
  options.seed = seed;
  const auto population = hiperd::runFig4(options);
  const auto& scenario = population.generated.scenario;

  // Best-of-random baseline.
  std::size_t bestRandom = 0;
  for (std::size_t m = 1; m < population.rows.size(); ++m) {
    if (population.rows[m].robustness >
        population.rows[bestRandom].robustness) {
      bestRandom = m;
    }
  }

  // Simulated annealing directly on the (floored) metric.
  const auto objective = [&](const sched::Mapping& mapping) {
    const hiperd::HiperdSystem system(scenario, mapping);
    const auto report = system.analyze();
    return -report.metric;  // minimize the negated metric
  };
  sched::AnnealingOptions annealing;
  annealing.iterations = static_cast<int>(args.getInt("iters", 3000));
  annealing.seed = seed;
  const sched::Mapping annealed = sched::annealMapping(
      scenario.graph.applicationCount(), scenario.machines,
      population.mappings[bestRandom], objective, annealing);

  auto describe = [&](const sched::Mapping& mapping) {
    const hiperd::HiperdSystem system(scenario, mapping);
    return std::pair{system.slack(), system.analyze().metric};
  };

  std::cout << "# Ablation: robustness-aware HiPer-D mapping search ("
            << randomCount << " random mappings vs annealing, "
            << annealing.iterations << " iterations)\n\n";
  TablePrinter table({"mapping", "slack", "robustness rho"});
  {
    const auto [slack, rho] = describe(population.mappings[0]);
    table.addRow({"first random", formatDouble(slack, 4),
                  formatDouble(rho, 6)});
    record("hiperd/first_random/slack", slack, "seconds");
    record("hiperd/first_random/rho", rho, "objects");
  }
  {
    const auto [slack, rho] = describe(population.mappings[bestRandom]);
    table.addRow({"best of " + std::to_string(randomCount) + " random",
                  formatDouble(slack, 4), formatDouble(rho, 6)});
    record("hiperd/best_random/slack", slack, "seconds");
    record("hiperd/best_random/rho", rho, "objects");
  }
  {
    const auto [slack, rho] = describe(annealed);
    table.addRow({"annealed (max rho)", formatDouble(slack, 4),
                  formatDouble(rho, 6)});
    record("hiperd/annealed/slack", slack, "seconds");
    record("hiperd/annealed/rho", rho, "objects");
  }
  table.print(std::cout);
  std::cout << "\nannealing on the metric finds mappings beyond the random "
               "population's reach —\nthe optimization use case the metric "
               "enables (compare the slack column: the\nmost robust mapping "
               "is not the slackest one).\n";

  // --- Independent-task ETC section: incremental evaluation engine ---
  const double tau = 1.2;
  sched::EtcOptions etcOptions;
  etcOptions.apps = 64;
  etcOptions.machines = 8;
  Pcg32 etcRng(seed);
  const auto etc = sched::generateEtc(etcOptions, etcRng);
  const auto rho = [&](const sched::Mapping& mapping) {
    return sched::IndependentTaskSystem(etc, mapping, tau)
        .analyze()
        .robustness;
  };

  Pcg32 popRng(seed, /*stream=*/3);
  sched::Mapping bestEtc =
      sched::randomMapping(etc.apps(), etc.machines(), popRng);
  for (std::size_t m = 1; m < randomCount; ++m) {
    sched::Mapping candidate =
        sched::randomMapping(etc.apps(), etc.machines(), popRng);
    if (rho(candidate) > rho(bestEtc)) {
      bestEtc = std::move(candidate);
    }
  }

  const auto etcObjective = sched::EtcObjective::negatedRobustness(tau);
  sched::AnnealingOptions etcAnnealing = annealing;
  const sched::Mapping etcAnnealed =
      sched::simulatedAnnealing(etc, bestEtc, etcObjective, etcAnnealing);
  const sched::Mapping etcPolished =
      sched::localSearch(etc, etcAnnealed, etcObjective);

  std::cout << "\n# Independent-task ETC search (" << etcOptions.apps << " x "
            << etcOptions.machines
            << ", incremental evaluation engine, tau = " << tau << ")\n\n";
  TablePrinter etcTable({"mapping", "robustness rho"});
  etcTable.addRow({"best of " + std::to_string(randomCount) + " random",
                   formatDouble(rho(bestEtc), 6)});
  etcTable.addRow({"annealed (max rho)", formatDouble(rho(etcAnnealed), 6)});
  etcTable.addRow(
      {"annealed + local search", formatDouble(rho(etcPolished), 6)});
  record("etc/best_random/rho", rho(bestEtc), "time units");
  record("etc/annealed/rho", rho(etcAnnealed), "time units");
  record("etc/annealed_local/rho", rho(etcPolished), "time units");
  etcTable.print(std::cout);
  std::cout << "\nthe standard objectives run through IncrementalEvaluator: "
               "each probe costs a\ntwo-machine re-sum instead of a full "
               "analyze(), so the same budget explores\nfar more of the "
               "neighborhood.\n";
  if (!reportPath.empty()) {
    obs::writeRunReport(reportPath, runReport);
    std::cout << "\nwrote run report to " << reportPath << "\n";
  }
  return 0;
}
