// Ablation: robustness-aware mapping search on the HiPer-D system.
// How much robustness does optimization buy over the random mappings the
// paper's experiments evaluate? Compares: the best of N random mappings
// (the Fig. 4 population), and simulated annealing maximizing rho directly
// (with the slack metric reported alongside, showing the two objectives are
// not interchangeable).
//
// Run: ./ablation_mapping_search [--seed S] [--random N] [--iters N]
#include <algorithm>
#include <iostream>

#include "robust/hiperd/experiment.hpp"
#include "robust/scheduling/heuristics.hpp"
#include "robust/util/args.hpp"
#include "robust/util/table.hpp"

int main(int argc, char** argv) {
  using namespace robust;
  const ArgParser args(argc, argv);
  const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 2003));
  const auto randomCount =
      static_cast<std::size_t>(args.getInt("random", 300));

  hiperd::Fig4Options options;
  options.mappings = randomCount;
  options.seed = seed;
  const auto population = hiperd::runFig4(options);
  const auto& scenario = population.generated.scenario;

  // Best-of-random baseline.
  std::size_t bestRandom = 0;
  for (std::size_t m = 1; m < population.rows.size(); ++m) {
    if (population.rows[m].robustness >
        population.rows[bestRandom].robustness) {
      bestRandom = m;
    }
  }

  // Simulated annealing directly on the (floored) metric.
  const auto objective = [&](const sched::Mapping& mapping) {
    const hiperd::HiperdSystem system(scenario, mapping);
    const auto report = system.analyze();
    return -report.metric;  // minimize the negated metric
  };
  sched::AnnealingOptions annealing;
  annealing.iterations = static_cast<int>(args.getInt("iters", 3000));
  annealing.seed = seed;
  const sched::Mapping annealed = sched::annealMapping(
      scenario.graph.applicationCount(), scenario.machines,
      population.mappings[bestRandom], objective, annealing);

  auto describe = [&](const sched::Mapping& mapping) {
    const hiperd::HiperdSystem system(scenario, mapping);
    return std::pair{system.slack(), system.analyze().metric};
  };

  std::cout << "# Ablation: robustness-aware HiPer-D mapping search ("
            << randomCount << " random mappings vs annealing, "
            << annealing.iterations << " iterations)\n\n";
  TablePrinter table({"mapping", "slack", "robustness rho"});
  {
    const auto [slack, rho] = describe(population.mappings[0]);
    table.addRow({"first random", formatDouble(slack, 4),
                  formatDouble(rho, 6)});
  }
  {
    const auto [slack, rho] = describe(population.mappings[bestRandom]);
    table.addRow({"best of " + std::to_string(randomCount) + " random",
                  formatDouble(slack, 4), formatDouble(rho, 6)});
  }
  {
    const auto [slack, rho] = describe(annealed);
    table.addRow({"annealed (max rho)", formatDouble(slack, 4),
                  formatDouble(rho, 6)});
  }
  table.print(std::cout);
  std::cout << "\nannealing on the metric finds mappings beyond the random "
               "population's reach —\nthe optimization use case the metric "
               "enables (compare the slack column: the\nmost robust mapping "
               "is not the slackest one).\n";
  return 0;
}
