// Ablation: radius solver accuracy and cost. Runs the four solvers
// (analytic hyperplane, KKT-Newton, ray search, Monte-Carlo) on the same
// feature sets — the affine HiPer-D features, plus quadratic variants that
// exercise the convex-programming path of Section 3.2 — and reports each
// solver's maximum relative error against the exact answer and its cost.
//
// Run: ./ablation_solvers [--seed S] [--features N]
#include <cmath>
#include <iostream>

#include "robust/core/analyzer.hpp"
#include "robust/util/args.hpp"
#include "robust/util/rng.hpp"
#include "robust/util/table.hpp"
#include "robust/util/timer.hpp"

int main(int argc, char** argv) {
  using namespace robust;
  const ArgParser args(argc, argv);
  const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 2003));
  const auto featureCount =
      static_cast<std::size_t>(args.getInt("features", 50));

  // Random affine features over a 3-sensor load vector (the HiPer-D shape).
  Pcg32 rng(seed);
  const num::Vec origin = {962.0, 380.0, 240.0};
  std::vector<core::PerformanceFeature> affine;
  std::vector<double> exact;
  for (std::size_t f = 0; f < featureCount; ++f) {
    num::Vec w(3);
    for (auto& v : w) {
      v = rng.uniform(0.1, 5.0);
    }
    const double level = num::dot(w, origin) * rng.uniform(1.5, 4.0);
    exact.push_back((level - num::dot(w, origin)) / num::norm2(w));
    affine.push_back(core::PerformanceFeature{
        "phi" + std::to_string(f), core::ImpactFunction::affine(w, 0.0),
        core::ToleranceBounds::atMost(level)});
  }
  const core::PerturbationParameter parameter{"lambda", origin, false, ""};

  std::cout << "# Ablation: solver accuracy and cost on " << featureCount
            << " affine features (exact answers known)\n\n";
  TablePrinter table(
      {"solver", "max rel error", "mean rel error", "us per radius"});
  for (const auto& [solver, name] :
       {std::pair{core::SolverKind::Analytic, "analytic"},
        std::pair{core::SolverKind::KktNewton, "kkt-newton"},
        std::pair{core::SolverKind::RaySearch, "ray-search"},
        std::pair{core::SolverKind::MonteCarlo, "monte-carlo(4096)"}}) {
    core::AnalyzerOptions options;
    options.solver = solver;
    const core::RobustnessAnalyzer analyzer(affine, parameter, options);
    Stopwatch watch;
    double maxErr = 0.0;
    double sumErr = 0.0;
    for (std::size_t f = 0; f < featureCount; ++f) {
      const auto radius = analyzer.radiusOf(f);
      const double err = std::fabs(radius.radius - exact[f]) / exact[f];
      maxErr = std::max(maxErr, err);
      sumErr += err;
    }
    // nanos(): integer clock ticks, so the analytic path's sub-microsecond
    // per-radius cost survives the division instead of rounding to 0.
    const double usPer = static_cast<double>(watch.nanos()) * 1e-3 /
                         static_cast<double>(featureCount);
    table.addRow({name, formatDouble(maxErr, 3),
                  formatDouble(sumErr / static_cast<double>(featureCount), 3),
                  formatDouble(usPer, 4)});
  }
  table.print(std::cout);

  // Quadratic (convex, non-affine) features: exact answer via the sphere
  // geometry of g(x) = ||x - c||^2.
  std::cout << "\nquadratic features g = ||lambda - c||^2 (exact answers via "
               "sphere geometry):\n";
  std::vector<core::PerformanceFeature> quad;
  std::vector<double> quadExact;
  for (std::size_t f = 0; f < 10; ++f) {
    num::Vec center(3);
    for (auto& v : center) {
      v = rng.uniform(0.0, 500.0);
    }
    const double distToCenter = num::distance2(origin, center);
    const double r = distToCenter * rng.uniform(1.5, 3.0);  // origin inside
    quadExact.push_back(r - distToCenter);
    const num::Vec c = center;
    quad.push_back(core::PerformanceFeature{
        "q" + std::to_string(f),
        core::ImpactFunction::callable(
            [c](std::span<const double> x) {
              double s = 0.0;
              for (std::size_t i = 0; i < x.size(); ++i) {
                s += (x[i] - c[i]) * (x[i] - c[i]);
              }
              return s;
            },
            [c](std::span<const double> x) {
              num::Vec g(x.size());
              for (std::size_t i = 0; i < x.size(); ++i) {
                g[i] = 2.0 * (x[i] - c[i]);
              }
              return g;
            }),
        core::ToleranceBounds::atMost(r * r)});
  }
  TablePrinter qtable(
      {"solver", "max rel error", "mean rel error", "us per radius"});
  for (const auto& [solver, name] :
       {std::pair{core::SolverKind::KktNewton, "kkt-newton"},
        std::pair{core::SolverKind::RaySearch, "ray-search"},
        std::pair{core::SolverKind::MonteCarlo, "monte-carlo(4096)"}}) {
    core::AnalyzerOptions options;
    options.solver = solver;
    const core::RobustnessAnalyzer analyzer(quad, parameter, options);
    Stopwatch watch;
    double maxErr = 0.0;
    double sumErr = 0.0;
    for (std::size_t f = 0; f < quad.size(); ++f) {
      const auto radius = analyzer.radiusOf(f);
      const double err =
          std::fabs(radius.radius - quadExact[f]) / quadExact[f];
      maxErr = std::max(maxErr, err);
      sumErr += err;
    }
    const double usPer = static_cast<double>(watch.nanos()) * 1e-3 /
                         static_cast<double>(quad.size());
    qtable.addRow({name, formatDouble(maxErr, 3),
                   formatDouble(sumErr / static_cast<double>(quad.size()), 3),
                   formatDouble(usPer, 4)});
  }
  qtable.print(std::cout);
  std::cout << "\nexpected shape: analytic is exact and cheapest; KKT-Newton "
               "is exact to\ntolerance; ray search matches on convex "
               "problems; Monte-Carlo is a biased-high\nestimator whose cost "
               "buys an assumption-free oracle.\n";
  return 0;
}
