// Regenerates Figure 2 of the paper: the HiPer-D DAG model — sensors
// (diamonds), applications (circles), actuators (rectangles), and the paths
// (trigger and update) formed by the applications. Prints the path
// inventory and emits Graphviz dot for rendering.
//
// Run: ./fig2_dag [--seed S] [--dot]
#include <iostream>

#include "robust/hiperd/generator.hpp"
#include "robust/util/args.hpp"
#include "robust/util/table.hpp"

int main(int argc, char** argv) {
  using namespace robust;
  const ArgParser args(argc, argv);
  const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 2003));

  const auto generated =
      hiperd::generateScenario(hiperd::ScenarioOptions{}, seed);
  const auto& graph = generated.scenario.graph;

  std::cout << "# Figure 2: HiPer-D DAG model (" << graph.sensorCount()
            << " sensors, " << graph.applicationCount() << " applications, "
            << graph.actuatorCount() << " actuators, " << graph.edgeCount()
            << " edges, " << graph.paths().size() << " paths)\n\n";

  TablePrinter table({"path", "driving sensor", "kind", "applications",
                      "terminal"});
  const auto& paths = graph.paths();
  for (std::size_t k = 0; k < paths.size(); ++k) {
    const auto& p = paths[k];
    std::string apps;
    for (std::size_t a : p.apps) {
      if (!apps.empty()) {
        apps += " -> ";
      }
      apps += graph.applicationName(a);
    }
    const std::string terminal =
        p.terminal.kind == hiperd::NodeKind::Actuator
            ? graph.actuatorName(p.terminal.index)
            : graph.applicationName(p.terminal.index) + " (multi-input)";
    table.addRow({"P_" + std::to_string(k), graph.sensorName(p.drivingSensor),
                  p.kind == hiperd::PathKind::Trigger ? "trigger" : "update",
                  apps.empty() ? "-" : apps, terminal});
  }
  table.print(std::cout);

  if (args.has("dot")) {
    std::cout << "\n";
    graph.writeDot(std::cout);
  } else {
    std::cout << "\n(pass --dot to emit Graphviz source)\n";
  }
  return 0;
}
