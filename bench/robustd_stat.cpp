// robustd_stat: live introspection CLI for a running robustd daemon.
//
// Sends STATS admin frames (no HELLO handshake needed) and renders the
// schema-versioned robust.stats document as an operator-readable table:
// server totals, cache effectiveness, backpressure high-water, categorized
// rejects, and one row per tenant with p50/p95/p99 analyze latency.
//
//   robustd_stat --unix /tmp/robustd.sock             # one snapshot
//   robustd_stat --port 7411 --watch 2                # poll every 2 s,
//                                                     # print rate diffs
//   robustd_stat --unix S --json stats.json           # save raw document
//   robustd_stat --unix S --trace-dump trace.json     # drain the flight
//                                                     # recorder instead
//
// --watch mode diffs consecutive snapshots and prints frames/s,
// instances/s, and cache hit-rate over each interval, which is what the CI
// soak leg tails while robustd_load hammers the daemon. Exit status: 0 on
// success, 2 on usage/transport errors, 3 when the reply does not parse as
// the expected schema.
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "robust/net/client.hpp"
#include "robust/net/wire.hpp"
#include "robust/obs/json_lite.hpp"
#include "robust/util/args.hpp"

namespace {

using robust::obs::json::Value;

std::uint64_t numField(const Value& obj, const char* key) {
  const Value* v = obj.find(key);
  return (v != nullptr && v->isNumber()) ? static_cast<std::uint64_t>(v->number)
                                         : 0;
}

double doubleField(const Value& obj, const char* key) {
  const Value* v = obj.find(key);
  return (v != nullptr && v->isNumber()) ? v->number : 0.0;
}

void printUsage() {
  std::puts(
      "robustd_stat -- poll a running robustd for live statistics\n"
      "\n"
      "  --unix PATH        connect to a Unix-domain robustd socket\n"
      "  --port N           connect to 127.0.0.1:N\n"
      "  --watch SEC        poll every SEC seconds, printing rate diffs\n"
      "  --count N          stop after N polls (watch mode; default: forever)\n"
      "  --json PATH        also write the latest raw robust.stats JSON here\n"
      "  --trace-dump PATH  send TRACE_DUMP instead: drain the daemon's\n"
      "                     flight recorder into a Chrome trace file\n"
      "  --help             this text");
}

/// One rendered snapshot. Numbers we diff in watch mode are pulled out.
struct Snapshot {
  std::uint64_t frames = 0;
  std::uint64_t instances = 0;
  std::uint64_t cacheHits = 0;
  std::uint64_t cacheMisses = 0;
  std::chrono::steady_clock::time_point when;
};

void printLatency(const Value& tenant) {
  const Value* latency = tenant.find("latency");
  const Value* analyze = latency != nullptr ? latency->find("analyze") : nullptr;
  if (analyze == nullptr || numField(*analyze, "count") == 0) {
    std::printf("        -         -         -");
    return;
  }
  std::printf("  %7.2fms %7.2fms %7.2fms",
              static_cast<double>(numField(*analyze, "p50_nanos")) / 1e6,
              static_cast<double>(numField(*analyze, "p95_nanos")) / 1e6,
              static_cast<double>(numField(*analyze, "p99_nanos")) / 1e6);
}

Snapshot render(const Value& doc, const Snapshot* prev) {
  Snapshot snap;
  snap.when = std::chrono::steady_clock::now();

  const Value* server = doc.find("server");
  const Value* cache = doc.find("cache");
  const Value* back = doc.find("backpressure");
  const Value* rejects = doc.find("rejects");
  const Value* tenants = doc.find("tenants");
  const Value* flight = doc.find("flight");
  if (server == nullptr || cache == nullptr || back == nullptr ||
      rejects == nullptr || tenants == nullptr || flight == nullptr) {
    throw std::runtime_error("robust.stats document is missing sections");
  }

  snap.frames = numField(*server, "frames");
  snap.instances = numField(*server, "instances");
  snap.cacheHits = numField(*cache, "hits");
  snap.cacheMisses = numField(*cache, "misses");

  std::printf(
      "sessions %" PRIu64 " active / %" PRIu64 " opened   frames %" PRIu64
      "   batches %" PRIu64 "   instances %" PRIu64 "   registers %" PRIu64
      "\n",
      numField(*server, "sessions_active"), numField(*server, "sessions_opened"),
      snap.frames, numField(*server, "batches"), snap.instances,
      numField(*server, "registers"));
  std::printf(
      "pool %" PRIu64 "/%" PRIu64 " busy   vt floor %.3f   cache %" PRIu64
      "/%" PRIu64 " entries, %" PRIu64 " hit / %" PRIu64 " miss / %" PRIu64
      " evicted\n",
      numField(*server, "pool_busy"), numField(*server, "pool_workers"),
      doubleField(*server, "virtual_time_floor"), numField(*cache, "entries"),
      numField(*cache, "capacity"), snap.cacheHits, snap.cacheMisses,
      numField(*cache, "evictions"));
  std::printf(
      "backpressure %" PRIu64 " stalls, high water %" PRIu64 "/%" PRIu64
      " bytes, %" PRIu64 " paused   rejects %" PRIu64 "   flight %" PRIu64
      "/%" PRIu64 " records, %" PRIu64 " dumps\n",
      numField(*back, "stalls"), numField(*back, "backlog_high_water_bytes"),
      numField(*back, "max_inflight_bytes"), numField(*back, "paused_sessions"),
      numField(*rejects, "total"), numField(*flight, "records"),
      numField(*flight, "capacity"), numField(*flight, "dumps"));

  if (!tenants->object.empty()) {
    std::printf("%-20s %8s %8s %10s %9s %9s %9s %9s %9s\n", "tenant", "frames",
                "batches", "instances", "vt", "chg.cost", "p50", "p95", "p99");
    for (const auto& [name, t] : tenants->object) {
      std::printf("%-20s %8" PRIu64 " %8" PRIu64 " %10" PRIu64 " %9.2f %9.0f",
                  name.c_str(), numField(t, "frames"), numField(t, "batches"),
                  numField(t, "instances"), doubleField(t, "virtual_time"),
                  doubleField(t, "charged_cost"));
      printLatency(t);
      std::printf("\n");
    }
  }

  if (prev != nullptr) {
    const double dt =
        std::chrono::duration<double>(snap.when - prev->when).count();
    if (dt > 0) {
      const std::uint64_t dHits = snap.cacheHits - prev->cacheHits;
      const std::uint64_t dMisses = snap.cacheMisses - prev->cacheMisses;
      const std::uint64_t dLookups = dHits + dMisses;
      std::printf(
          "rates: %.1f frames/s, %.1f instances/s, cache hit %.0f%% over "
          "%.1fs\n",
          static_cast<double>(snap.frames - prev->frames) / dt,
          static_cast<double>(snap.instances - prev->instances) / dt,
          dLookups == 0
              ? 0.0
              : 100.0 * static_cast<double>(dHits) / static_cast<double>(dLookups),
          dt);
    }
  }
  return snap;
}

void writeFile(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("cannot open '" + path + "' for writing");
  }
  out << text;
  if (!out.flush()) {
    throw std::runtime_error("cannot write '" + path + "'");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const robust::ArgParser args(argc, argv);
  if (args.has("help")) {
    printUsage();
    return 0;
  }
  const std::string unixPath = args.getString("unix", "");
  const std::uint16_t port = static_cast<std::uint16_t>(args.getInt("port", 0));
  const double watchSeconds = args.getDouble("watch", 0.0);
  const std::int64_t count = args.getInt("count", 0);
  const std::string jsonPath = args.getString("json", "");
  const std::string tracePath = args.getString("trace-dump", "");

  if (unixPath.empty() && port == 0) {
    std::fprintf(stderr, "robustd_stat: need --unix PATH or --port N\n");
    printUsage();
    return 2;
  }

  try {
    robust::net::Client client;
    if (!unixPath.empty()) {
      client.connectUnix(unixPath);
    } else {
      client.connectTcp(port);
    }

    if (!tracePath.empty()) {
      const std::string trace = client.traceDump();
      // Sanity-parse before writing: a daemon answering with garbage should
      // exit 3, not silently produce an unloadable trace file.
      (void)robust::obs::json::parse(trace);
      writeFile(tracePath, trace);
      std::printf("robustd_stat: flight recorder drained to %s (%zu bytes)\n",
                  tracePath.c_str(), trace.size());
      return 0;
    }

    Snapshot prev;
    bool havePrev = false;
    std::int64_t polls = 0;
    for (;;) {
      const std::string text = client.stats();
      const Value doc = robust::obs::json::parse(text);
      const Value* schema = doc.find("schema");
      const Value* version = doc.find("schema_version");
      if (schema == nullptr || !schema->isString() ||
          schema->string != robust::net::kStatsSchemaName ||
          version == nullptr ||
          static_cast<std::uint32_t>(version->number) !=
              robust::net::kStatsSchemaVersion) {
        std::fprintf(stderr,
                     "robustd_stat: reply is not a robust.stats v%u document\n",
                     robust::net::kStatsSchemaVersion);
        return 3;
      }
      if (!jsonPath.empty()) {
        writeFile(jsonPath, text);
      }
      prev = render(doc, havePrev ? &prev : nullptr);
      havePrev = true;
      ++polls;
      if (watchSeconds <= 0 || (count > 0 && polls >= count)) {
        break;
      }
      std::printf("\n");
      std::fflush(stdout);
      std::this_thread::sleep_for(std::chrono::duration<double>(watchSeconds));
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "robustd_stat: %s\n", e.what());
    return 2;
  }
}
