// Regenerates Figure 1 of the paper: the geometry of the robustness radius
// for a single feature and a 2-element perturbation vector. For a
// two-application machine with F(C) = C_1 + C_2 and the requirement
// F <= tau * M_orig, the boundary {f = beta_max} is a line; the harness
// prints the boundary points, the operating point C_orig, the nearest
// boundary point pi*, and the radius — the ingredients of the figure.
//
// Run: ./fig1_geometry [--c1 X] [--c2 Y] [--tau T] [--points N]
#include <algorithm>
#include <iostream>

#include "robust/core/boundary_trace.hpp"
#include "robust/core/fepia.hpp"
#include "robust/util/args.hpp"
#include "robust/util/table.hpp"

int main(int argc, char** argv) {
  using namespace robust;
  const ArgParser args(argc, argv);
  const double c1 = args.getDouble("c1", 4.0);
  const double c2 = args.getDouble("c2", 3.0);
  const double tau = args.getDouble("tau", 1.3);
  const auto points = static_cast<int>(args.getInt("points", 11));

  // The machine's finishing time F(C) = C1 + C2; M_orig = F(C_orig).
  const double mOrig = c1 + c2;
  const double betaMax = tau * mOrig;

  auto analyzer =
      core::FepiaBuilder("finish time within " +
                         formatDouble(100.0 * tau) + "% of predicted")
          .perturbation("C (actual execution times)", {c1, c2}, false,
                        "seconds")
          .affineFeature("F (finish time)", {1.0, 1.0}, 0.0,
                         core::ToleranceBounds::atMost(betaMax))
          .build();
  const auto report = analyzer.analyze();
  const auto& radius = report.radii[0];

  std::cout << "# Figure 1 geometry: boundary {f_ij(pi) = beta_max} for "
               "F(C) = C1 + C2 <= "
            << formatDouble(betaMax) << "\n";
  std::cout << "C_orig = (" << formatDouble(c1) << ", " << formatDouble(c2)
            << "), predicted finish " << formatDouble(mOrig) << "\n\n";

  std::cout << "boundary points (the line C1 + C2 = " << formatDouble(betaMax)
            << "):\n";
  TablePrinter table({"pi_1", "pi_2"});
  for (int i = 0; i < points; ++i) {
    const double x =
        betaMax * static_cast<double>(i) / static_cast<double>(points - 1);
    table.addRow({formatDouble(x, 6), formatDouble(betaMax - x, 6)});
  }
  table.print(std::cout);

  // The paper's Fig. 1 draws a CURVED boundary; regenerate that flavor too
  // with a convex quadratic impact g(pi) = pi_1^2/beta + pi_2 traced around
  // the operating point.
  {
    auto curved =
        core::FepiaBuilder("curved-boundary illustration")
            .perturbation("pi", {c1, c2})
            .feature("g",
                     core::ImpactFunction::callable(
                         [betaMax](std::span<const double> pi) {
                           return pi[0] * pi[0] / betaMax + pi[1];
                         }),
                     core::ToleranceBounds::atMost(betaMax))
            .build();
    core::BoundaryTraceOptions traceOptions;
    traceOptions.rays = static_cast<int>(args.getInt("rays", 32));
    const auto curve = core::traceBoundary2D(curved, 0, traceOptions);
    const auto curvedReport = curved.analyze();
    std::cout << "\ncurved boundary {pi_1^2/" << formatDouble(betaMax)
              << " + pi_2 = " << formatDouble(betaMax) << "} traced with "
              << curve.size() << " rays (radius "
              << formatDouble(curvedReport.metric, 6) << "):\n";
    TablePrinter curveTable({"angle", "pi_1", "pi_2", "distance"});
    for (std::size_t i = 0; i < curve.size(); i += 4) {
      curveTable.addRow({formatDouble(curve[i].angle, 4),
                         formatDouble(curve[i].point[0], 5),
                         formatDouble(curve[i].point[1], 5),
                         formatDouble(curve[i].distance, 5)});
    }
    curveTable.print(std::cout);
  }

  std::cout << "\npi_star (nearest boundary point) = ("
            << formatDouble(radius.boundaryPoint[0], 6) << ", "
            << formatDouble(radius.boundaryPoint[1], 6) << ")\n";
  std::cout << "robustness radius r = ||pi_star - pi_orig||_2 = "
            << formatDouble(radius.radius, 6) << "\n";
  std::cout << "\nthe beta_min boundary of the paper's example is the pair "
               "of axes (C_i = 0);\ndistance to it: "
            << formatDouble(std::min(c1, c2), 6)
            << " (not binding for tau > 1 + min(C)/M).\n";
  return 0;
}
