// Regenerates Table 2 of the paper: two mappings of the HiPer-D system with
// nearly identical slack but sharply different robustness, printed with the
// same rows the paper reports — robustness, slack, the critical sensor
// loads lambda*, the per-machine application assignments, and the
// computation time functions T_ij^c(lambda) in the paper's
// "factor(inner complexity)" notation.
//
// Run: ./table2_pair [--mappings N] [--seed S] [--slack-tol X]
#include <iostream>
#include <string>

#include "robust/hiperd/experiment.hpp"
#include "robust/util/args.hpp"
#include "robust/util/table.hpp"

namespace {

std::string assignmentsOf(const robust::sched::Mapping& mapping,
                          std::size_t machine,
                          const robust::hiperd::SystemGraph& graph) {
  std::string out;
  for (std::size_t i = 0; i < mapping.apps(); ++i) {
    if (mapping.machineOf(i) == machine) {
      if (!out.empty()) {
        out += ", ";
      }
      out += graph.applicationName(i);
    }
  }
  return out.empty() ? "-" : out;
}

std::string lambdaString(const robust::num::Vec& lambda) {
  std::string out;
  for (std::size_t z = 0; z < lambda.size(); ++z) {
    if (z > 0) {
      out += ", ";
    }
    out += robust::formatDouble(lambda[z], 6);
  }
  return out;
}

std::string computeFunctionOf(const robust::hiperd::HiperdScenario& scenario,
                              const robust::sched::Mapping& mapping,
                              std::size_t app) {
  using robust::hiperd::multitaskFactor;
  const std::size_t machine = mapping.machineOf(app);
  const double factor =
      multitaskFactor(mapping.countPerMachine()[machine]);
  return robust::formatDouble(factor, 3) + "(" +
         scenario.compute[app][machine].describe(3) + ")";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace robust;
  const ArgParser args(argc, argv);

  hiperd::Fig4Options options;
  options.mappings = static_cast<std::size_t>(args.getInt("mappings", 1000));
  options.seed = static_cast<std::uint64_t>(args.getInt("seed", 2003));
  const double slackTol = args.getDouble("slack-tol", 0.005);
  const double minRho = args.getDouble("min-robustness", 50.0);

  const auto result = hiperd::runFig4(options);
  const auto& scenario = result.generated.scenario;
  const auto [idxA, idxB] = hiperd::findTable2Pair(result.rows, slackTol, minRho);

  std::cout << "# Table 2 analog: two mappings, similar slack, dissimilar "
               "robustness\n";
  std::cout << "# initial sensor loads: lambda_orig = ("
            << lambdaString(scenario.lambdaOrig) << ")\n\n";

  const auto& rowA = result.rows[idxA];
  const auto& rowB = result.rows[idxB];
  TablePrinter head({"", "mapping A", "mapping B"});
  head.addRow({"robustness (objects/data set)",
               formatDouble(rowA.robustness, 6),
               formatDouble(rowB.robustness, 6)});
  head.addRow({"slack", formatDouble(rowA.slack, 4),
               formatDouble(rowB.slack, 4)});
  head.addRow({"robustness ratio B/A",
               formatDouble(rowB.robustness / rowA.robustness, 4), ""});
  head.addRow({"lambda_1*, lambda_2*, lambda_3*",
               lambdaString(rowA.lambdaStar), lambdaString(rowB.lambdaStar)});
  head.addRow({"binding constraint", rowA.bindingFeature,
               rowB.bindingFeature});
  head.print(std::cout);

  std::cout << "\napplication assignments:\n";
  TablePrinter assign({"machine", "mapping A", "mapping B"});
  for (std::size_t j = 0; j < scenario.machines; ++j) {
    assign.addRow({"m" + std::to_string(j + 1),
                   assignmentsOf(result.mappings[idxA], j, scenario.graph),
                   assignmentsOf(result.mappings[idxB], j, scenario.graph)});
  }
  assign.print(std::cout);

  std::cout << "\ncomputation time functions T_ij^c(lambda) "
               "(multitasking factor outside the parentheses):\n";
  TablePrinter fns({"app", "mapping A", "mapping B"});
  for (std::size_t i = 0; i < scenario.graph.applicationCount(); ++i) {
    fns.addRow({scenario.graph.applicationName(i),
                computeFunctionOf(scenario, result.mappings[idxA], i),
                computeFunctionOf(scenario, result.mappings[idxB], i)});
  }
  fns.print(std::cout);

  std::cout << "\npaper's pair for reference: robustness 353 vs 1166 "
               "(ratio 3.3x) at slack 0.5961 vs 0.5914.\n";
  return 0;
}
