// Ablation: handling the discrete sensor-load parameter. Section 3.2 floors
// the continuous metric; the thesis (ref [1]) brackets the boundary with
// the closest lattice values. This harness compares, on Section 4.3
// scenarios, the floor rule against certified lattice bounds
// (discreteRadiusBounds): how often and by how much the floor rule is
// pessimistic.
//
// Run: ./ablation_discrete [--mappings N] [--seed S]
#include <cmath>
#include <iostream>

#include "robust/core/discrete.hpp"
#include "robust/hiperd/experiment.hpp"
#include "robust/util/args.hpp"
#include "robust/util/stats.hpp"
#include "robust/util/table.hpp"

int main(int argc, char** argv) {
  using namespace robust;
  const ArgParser args(argc, argv);

  hiperd::Fig4Options options;
  options.mappings = static_cast<std::size_t>(args.getInt("mappings", 40));
  options.seed = static_cast<std::uint64_t>(args.getInt("seed", 2003));

  const auto result = hiperd::runFig4(options);
  const auto& scenario = result.generated.scenario;

  std::cout << "# Ablation: floor rule vs certified lattice bounds, "
            << options.mappings << " mappings\n\n";

  TablePrinter table({"mapping", "continuous rho", "floor rule",
                      "lattice upper bound", "certificate gap"});
  std::vector<double> gaps;
  int shown = 0;
  for (std::size_t m = 0; m < result.mappings.size(); ++m) {
    if (result.rows[m].slack < 0.0) {
      continue;  // violated at the origin: both rules give 0
    }
    const hiperd::HiperdSystem system(scenario, result.mappings[m]);
    const auto analyzer = system.toAnalyzer();
    core::DiscreteOptions dopts;
    dopts.exhaustiveLimit = 0.0;  // radii are in the hundreds: certificate
                                  // search only (exhaustive would be huge)
    const auto bounds = core::discreteRadiusBounds(analyzer.compiled(), dopts);
    const double floorRule = std::floor(bounds.lower);
    const double gap = bounds.upper - floorRule;
    gaps.push_back(gap);
    if (shown++ < 12) {
      table.addRow({std::to_string(m), formatDouble(bounds.lower, 6),
                    formatDouble(floorRule, 6),
                    formatDouble(bounds.upper, 6), formatDouble(gap, 4)});
    }
  }
  table.print(std::cout);

  const Summary s = summarize(gaps);
  std::cout << "\ncertificate gap (violating-lattice-distance - floor rule) "
               "over "
            << gaps.size() << " feasible mappings:\n  mean "
            << formatDouble(s.mean) << ", min " << formatDouble(s.min)
            << ", max " << formatDouble(s.max) << "\n";
  std::cout << "\nreading: the floor rule under-reports the certified safe "
               "range by up to the gap\nshown; with 3 integer sensor loads "
               "the nearest violating lattice point sits\nwithin about one "
               "step of the continuous boundary, so the floor rule loses at "
               "most\n~2 objects per data set here — cheap insurance, as the "
               "paper chose.\n";
  return 0;
}
