// Regenerates Figure 4 of the paper: robustness vs slack for 1000 randomly
// generated mappings of the HiPer-D system (20 applications, 5 machines,
// 3 sensors, 19 paths), plus the Section 4.3 findings: the general
// correlation, the sharp robustness differences at similar slack, and the
// plateau of mappings with different slack but identical robustness.
//
// Run: ./fig4_slack [--mappings N] [--seed S] [--csv]
#include <algorithm>
#include <cmath>
#include <iostream>
#include <map>

#include "robust/hiperd/experiment.hpp"
#include "robust/util/args.hpp"
#include "robust/util/stats.hpp"
#include "robust/util/table.hpp"

int main(int argc, char** argv) {
  using namespace robust;
  const ArgParser args(argc, argv);

  hiperd::Fig4Options options;
  options.mappings = static_cast<std::size_t>(args.getInt("mappings", 1000));
  options.seed = static_cast<std::uint64_t>(args.getInt("seed", 2003));

  const auto result = hiperd::runFig4(options);
  const auto& rows = result.rows;

  std::cout << "# Figure 4: robustness vs slack, " << options.mappings
            << " random mappings; scenario: "
            << result.generated.scenario.graph.applicationCount()
            << " applications, " << result.generated.scenario.machines
            << " machines, " << result.generated.scenario.graph.paths().size()
            << " paths ("
            << (result.generated.exactPathCount ? "exact" : "closest")
            << " path-count match)\n";

  if (args.has("csv")) {
    CsvWriter csv(std::cout);
    csv.writeRow({"slack", "robustness", "binding"});
    for (const auto& row : rows) {
      csv.writeRow({formatDouble(row.slack, 8),
                    formatDouble(row.robustness, 8), row.bindingFeature});
    }
  }

  std::vector<double> slacks;
  std::vector<double> robustness;
  std::size_t feasible = 0;
  for (const auto& row : rows) {
    slacks.push_back(row.slack);
    robustness.push_back(row.robustness);
    feasible += row.slack >= 0.0;
  }
  const Summary ss = summarize(slacks);
  const Summary rs = summarize(robustness);
  std::cout << "\nslack     : mean " << formatDouble(ss.mean) << ", range ["
            << formatDouble(ss.min) << ", " << formatDouble(ss.max) << "]\n";
  std::cout << "robustness: mean " << formatDouble(rs.mean) << ", range ["
            << formatDouble(rs.min) << ", " << formatDouble(rs.max)
            << "] objects/data set\n";
  std::cout << "feasible at lambda_orig: " << feasible << "/" << rows.size()
            << "\n";
  std::cout << "pearson(slack, robustness) = "
            << formatDouble(pearson(slacks, robustness))
            << "  (paper: \"generally correlated\")\n";

  // ---- Finding 1: similar slack, sharply different robustness.
  try {
    const auto [lo, hi] = hiperd::findTable2Pair(rows, 0.005);
    std::cout << "\nsimilar-slack discrimination: slack "
              << formatDouble(rows[lo].slack) << " vs "
              << formatDouble(rows[hi].slack) << " but robustness "
              << formatDouble(rows[lo].robustness) << " vs "
              << formatDouble(rows[hi].robustness) << " -> ratio "
              << formatDouble(rows[hi].robustness / rows[lo].robustness)
              << "x (paper's Table 2 pair: 3.3x)\n";
  } catch (const std::exception& e) {
    std::cout << "\nsimilar-slack discrimination: " << e.what() << "\n";
  }

  // ---- Finding 2: the plateau — mappings spanning a wide slack range with
  // IDENTICAL robustness (the paper reports slack 0.2..0.5 all at rho ~250).
  std::map<double, std::pair<double, double>> plateau;  // rho -> slack range
  std::map<double, std::size_t> plateauCount;
  for (const auto& row : rows) {
    if (row.robustness <= 0.0) {
      continue;
    }
    auto it = plateau.find(row.robustness);
    if (it == plateau.end()) {
      plateau[row.robustness] = {row.slack, row.slack};
    } else {
      it->second.first = std::min(it->second.first, row.slack);
      it->second.second = std::max(it->second.second, row.slack);
    }
    ++plateauCount[row.robustness];
  }
  double bestWidth = 0.0;
  double bestRho = 0.0;
  for (const auto& [rho, range] : plateau) {
    const double width = range.second - range.first;
    if (plateauCount[rho] >= 5 && width > bestWidth) {
      bestWidth = width;
      bestRho = rho;
    }
  }
  if (bestRho > 0.0) {
    std::cout << "plateau: " << plateauCount[bestRho]
              << " mappings with slack spanning ["
              << formatDouble(plateau[bestRho].first) << ", "
              << formatDouble(plateau[bestRho].second)
              << "] all share robustness = " << formatDouble(bestRho)
              << " (slack cannot tell them apart)\n";
  }

  // ---- Binding-constraint census: which QoS constraint limits robustness?
  std::size_t latencyBound = 0;
  std::size_t computeBound = 0;
  std::size_t commBound = 0;
  for (const auto& row : rows) {
    if (row.bindingFeature.rfind("L_", 0) == 0) {
      ++latencyBound;
    } else if (row.bindingFeature.rfind("Tc", 0) == 0) {
      ++computeBound;
    } else if (row.bindingFeature.rfind("Tn", 0) == 0) {
      ++commBound;
    }
  }
  std::cout << "binding constraint census: latency " << latencyBound
            << ", computation " << computeBound << ", communication "
            << commBound << "\n";
  return 0;
}
