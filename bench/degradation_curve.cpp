// Degradation-curve throughput harness (DESIGN.md section 4.15) — the
// producer of the committed BENCH_pr10.json.
//
//   degradation_curve [--rows 256] [--dims 64] [--samples 1000000]
//                     [--grid 64] [--naive_samples 1024] [--reps 3]
//                     [--warmup 1] [--threads 0] [--obs_report PATH]
//
// The problem is perf_kernels' metricBenchProblem family (seed 6), so the
// spec is the same one BENCH_pr5/pr6 pinned. Before timing, two
// self-checks must pass or the harness exits 1 — a throughput number for
// a wrong answer is worse than no number:
//
//   1. bit-identity: a 4096-sample curve is recomputed across thread
//      counts {1, 8}, shard sizes {512, 8192}, and dispatch targets
//      (scalar vs AVX2 when available); every critical radius must be
//      bit-identical.
//   2. differential: at nine midpoint radii the naive per-radius grid
//      estimator (re-evaluate every affine row at origin + r*u) must
//      count exactly the violations the curve's empirical CDF predicts,
//      on the same substream-generated directions.
//
// Emitted benchmarks (the speedup ratio goes in info, not benchmarks —
// report_check's unit-aware baseline gate would read a ratio backwards):
//   BM_CurveSamplesPerSec/<rows>/<dims>    samples/s  (best of --reps,
//       --threads workers)
//   BM_CurveNsPerSample/<rows>/<dims>      ns  (serial, best of --reps)
//   BM_NaiveGridNsPerSample/<rows>/<dims>  ns  (serial; cost for the
//       naive estimator to place ONE sample on the full --grid radius
//       grid, i.e. per-evaluation cost x grid points)
//
// Exit code 0 on success, 1 on a self-check failure.
#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <exception>
#include <iostream>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "robust/core/compiled.hpp"
#include "robust/curve/curve.hpp"
#include "robust/numeric/simd.hpp"
#include "robust/obs/metrics.hpp"
#include "robust/obs/report.hpp"
#include "robust/random/distributions.hpp"
#include "robust/util/args.hpp"
#include "robust/util/rng.hpp"

namespace {

using namespace robust;
using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// The bench spec, plus the raw rows the naive estimator replays. Keeping
/// the packed matrix here (instead of peeking at compiled internals) keeps
/// the naive lane an honest external implementation.
struct BenchSpec {
  core::CompiledProblem problem;
  std::vector<double> rowMajor;  ///< rows x dims affine weights
  std::vector<double> bound;     ///< per row atMost tolerance
};

/// perf_kernels' metricBenchProblem, replicated draw-for-draw (seed 6).
BenchSpec benchSpec(std::size_t rows, std::size_t dims) {
  Pcg32 rng(6);
  core::ProblemSpec spec;
  spec.parameter.name = "pi";
  spec.parameter.origin.resize(dims);
  for (double& v : spec.parameter.origin) {
    v = rng.uniform(0.5, 1.5);
  }
  std::vector<double> rowMajor;
  std::vector<double> bounds;
  rowMajor.reserve(rows * dims);
  bounds.reserve(rows);
  spec.features.reserve(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    num::Vec weights(dims);
    for (double& w : weights) {
      w = rng.uniform(0.1, 2.0);
    }
    double atOrigin = 0.0;
    for (std::size_t k = 0; k < dims; ++k) {
      atOrigin += weights[k] * spec.parameter.origin[k];
    }
    const double bound = atOrigin * rng.uniform(1.05, 4.0);
    rowMajor.insert(rowMajor.end(), weights.begin(), weights.end());
    bounds.push_back(bound);
    spec.features.push_back(core::PerformanceFeature{
        "F_" + std::to_string(r),
        core::ImpactFunction::affine(std::move(weights)),
        core::ToleranceBounds::atMost(bound)});
  }
  return BenchSpec{core::CompiledProblem::compile(std::move(spec)),
                   std::move(rowMajor), std::move(bounds)};
}

bool bitEq(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

bool radiiBitEqual(const curve::CurveResult& a, const curve::CurveResult& b) {
  if (a.radii.size() != b.radii.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.radii.size(); ++i) {
    if (!bitEq(a.radii[i], b.radii[i])) {
      return false;
    }
  }
  return true;
}

/// Sample i's unit direction, regenerated from the documented contract
/// (makeStream(seed, kCurveStreamFamily, i), Box-Muller pairs, normalized
/// under the problem's displacement norm).
num::Vec sampleDirection(const core::CompiledProblem& problem,
                         std::uint64_t seed, std::uint64_t index) {
  const std::size_t dim = problem.dimension();
  num::Vec g(dim);
  Pcg32 rng = makeStream(seed, curve::kCurveStreamFamily, index);
  std::size_t k = 0;
  while (k + 1 < dim) {
    rnd::standardNormalPair(rng, g[k], g[k + 1]);
    k += 2;
  }
  if (k < dim) {
    double z0 = 0.0;
    double z1 = 0.0;
    rnd::standardNormalPair(rng, z0, z1);
    g[k] = z0;
  }
  const double norm = curve::displacementNorm(problem, {g.data(), g.size()});
  if (norm > 0.0) {
    for (double& v : g) {
      v /= norm;
    }
  } else {
    std::fill(g.begin(), g.end(), 0.0);
    g[0] = 1.0;
  }
  return g;
}

/// The naive estimator's inner test: does origin + r*u break any row's
/// tolerance? One full pass over the packed rows (blocked dots, no
/// pruning) — exactly what a per-radius grid must pay per (radius,
/// sample) pair.
bool naiveViolates(const BenchSpec& spec, std::span<const double> origin,
                   std::span<const double> direction, double radius,
                   num::Vec& point, num::Vec& dots) {
  const std::size_t dim = origin.size();
  for (std::size_t k = 0; k < dim; ++k) {
    point[k] = origin[k] + radius * direction[k];
  }
  num::simd::dotRowsBlocked(spec.rowMajor.data(), spec.bound.size(),
                            {point.data(), point.size()}, dots.data());
  for (std::size_t r = 0; r < spec.bound.size(); ++r) {
    if (dots[r] > spec.bound[r]) {
      return true;
    }
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  const auto rows = static_cast<std::size_t>(args.getInt("rows", 256));
  const auto dims = static_cast<std::size_t>(args.getInt("dims", 64));
  const auto samples =
      static_cast<std::size_t>(args.getInt("samples", 1000000));
  const auto grid = static_cast<std::size_t>(args.getInt("grid", 64));
  const auto naiveSamples =
      static_cast<std::size_t>(args.getInt("naive_samples", 1024));
  const int reps = static_cast<int>(args.getInt("reps", 3));
  const int warmup = static_cast<int>(args.getInt("warmup", 1));
  const auto threads = static_cast<std::size_t>(args.getInt("threads", 0));
  const std::string reportPath = args.getString("obs_report", "");

  try {
    const BenchSpec spec = benchSpec(rows, dims);
    const core::CompiledProblem& problem = spec.problem;
    std::cout << "problem " << rows << " x " << dims << ", samples "
              << samples << ", grid " << grid << ", simd "
              << num::simd::toString(num::simd::activeTarget()) << '\n';

    // ---- self-check 1: bit-identity across threads/shards/targets ------
    curve::CurveOptions pinOptions;
    pinOptions.samples = 4096;
    pinOptions.seed = 77;
    pinOptions.useCache = false;
    pinOptions.threads = 1;
    pinOptions.shardSamples = 512;
    const curve::CurveResult pinned = curve::computeCurve(problem, pinOptions);
    for (const std::size_t t : {std::size_t{8}}) {
      for (const std::size_t shard : {std::size_t{512}, std::size_t{8192}}) {
        curve::CurveOptions o = pinOptions;
        o.threads = t;
        o.shardSamples = shard;
        if (!radiiBitEqual(pinned, curve::computeCurve(problem, o))) {
          std::cerr << "FAIL: curve bits differ at threads=" << t
                    << " shard=" << shard << '\n';
          return 1;
        }
      }
    }
    const num::simd::Target savedTarget = num::simd::activeTarget();
    bool simdPinned = false;
    if (num::simd::avx2Available()) {
      num::simd::setTarget(num::simd::Target::Scalar);
      const curve::CurveResult scalar =
          curve::computeCurve(problem, pinOptions);
      num::simd::setTarget(num::simd::Target::Avx2);
      const curve::CurveResult avx2 = curve::computeCurve(problem, pinOptions);
      num::simd::setTarget(savedTarget);
      if (!radiiBitEqual(scalar, avx2)) {
        std::cerr << "FAIL: curve bits differ between scalar and avx2\n";
        return 1;
      }
      simdPinned = true;
    }
    std::cout << "bit-identity: threads {1,8} x shards {512,8192}"
              << (simdPinned ? " x {scalar,avx2}" : "")
              << " all bit-identical\n";

    // ---- self-check 2: naive grid counts match the empirical CDF -------
    curve::CurveOptions diffOptions;
    diffOptions.samples = naiveSamples;
    diffOptions.seed = 1;
    diffOptions.useCache = false;
    diffOptions.threads = threads;
    const curve::CurveResult small = curve::computeCurve(problem, diffOptions);
    std::vector<num::Vec> directions(naiveSamples);
    for (std::size_t i = 0; i < naiveSamples; ++i) {
      directions[i] = sampleDirection(problem, diffOptions.seed, i);
    }
    num::Vec point(dims);
    num::Vec dots(rows);
    const num::Vec origin(problem.parameter().origin);
    for (int decile = 1; decile <= 9; ++decile) {
      const std::size_t idx = static_cast<std::size_t>(decile) *
                              naiveSamples / 10;
      // Probe the midpoint between adjacent DISTINCT radii so closed-form
      // and re-evaluated boundary roundings cannot disagree.
      const double lo = small.radii[idx];
      const auto next = std::upper_bound(small.radii.begin(),
                                         small.radii.end(), lo);
      if (next == small.radii.end() || !std::isfinite(*next)) {
        continue;
      }
      const double r = lo + 0.5 * (*next - lo);
      std::size_t naiveCount = 0;
      for (std::size_t i = 0; i < naiveSamples; ++i) {
        naiveCount += naiveViolates(spec, {origin.data(), origin.size()},
                                    {directions[i].data(), dims}, r, point,
                                    dots) ? 1u : 0u;
      }
      const double expect = small.probabilityAt(r) *
                            static_cast<double>(naiveSamples);
      if (static_cast<double>(naiveCount) != expect) {
        std::cerr << "FAIL: naive grid counts " << naiveCount << " at r="
                  << r << ", curve CDF predicts " << expect << '\n';
        return 1;
      }
    }
    std::cout << "differential: naive grid counts match the empirical CDF "
                 "at 9 midpoint radii (" << naiveSamples << " samples)\n";

    // ---- timed: full curve, pooled then serial -------------------------
    curve::CurveOptions curveOptions;
    curveOptions.samples = samples;
    curveOptions.seed = 1;
    curveOptions.gridPoints = grid;
    curveOptions.useCache = false;
    curveOptions.threads = threads;
    curve::CurveResult result;
    double pooledBest = std::numeric_limits<double>::infinity();
    for (int rep = -warmup; rep < reps; ++rep) {
      const auto start = Clock::now();
      result = curve::computeCurve(problem, curveOptions);
      const double elapsed = secondsSince(start);
      if (rep >= 0 && elapsed < pooledBest) {
        pooledBest = elapsed;
      }
    }
    const double samplesPerSec = static_cast<double>(samples) / pooledBest;

    curve::CurveOptions serialOptions = curveOptions;
    serialOptions.threads = 1;
    double serialBest = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < reps; ++rep) {
      const auto start = Clock::now();
      const curve::CurveResult serial =
          curve::computeCurve(problem, serialOptions);
      const double elapsed = secondsSince(start);
      if (elapsed < serialBest) {
        serialBest = elapsed;
      }
      if (!radiiBitEqual(result, serial)) {
        std::cerr << "FAIL: serial full-size curve diverges from pooled\n";
        return 1;
      }
    }
    const double curveNsPerSample =
        serialBest * 1e9 / static_cast<double>(samples);

    // ---- timed: naive per-radius grid (serial) -------------------------
    // The naive estimator pays one full row pass per (radius, sample); its
    // per-sample cost for the whole curve is that times the grid size.
    // Measured on naive_samples directions over a real radius grid spanning
    // the curve's support, then reported per sample-on-the-grid.
    std::vector<double> gridRadii(grid);
    const double rLo = result.rho;
    const double rHi = std::isfinite(result.radii[samples / 2])
                           ? result.radii[samples / 2] * 2.0
                           : rLo * 4.0;
    for (std::size_t g = 0; g < grid; ++g) {
      gridRadii[g] = rLo + (rHi - rLo) * static_cast<double>(g + 1) /
                              static_cast<double>(grid);
    }
    double naiveSink = 0.0;
    const auto naiveStart = Clock::now();
    for (const double r : gridRadii) {
      for (std::size_t i = 0; i < naiveSamples; ++i) {
        naiveSink += naiveViolates(spec, {origin.data(), origin.size()},
                                   {directions[i].data(), dims}, r, point,
                                   dots) ? 1.0 : 0.0;
      }
    }
    const double naiveSeconds = secondsSince(naiveStart);
    const double naiveNsPerEval =
        naiveSeconds * 1e9 /
        static_cast<double>(grid * naiveSamples);
    const double naiveNsPerSample =
        naiveNsPerEval * static_cast<double>(grid);
    const double speedup = naiveNsPerSample / curveNsPerSample;

    std::cout << "BM_CurveSamplesPerSec/" << rows << "/" << dims << "  "
              << samplesPerSec << " samples/s  (best of " << reps
              << ", threads " << threads << ")\n";
    std::cout << "BM_CurveNsPerSample/" << rows << "/" << dims << "  "
              << curveNsPerSample << " ns  (serial)\n";
    std::cout << "BM_NaiveGridNsPerSample/" << rows << "/" << dims << "  "
              << naiveNsPerSample << " ns  (serial, " << grid
              << "-point grid, sink " << naiveSink << ")\n";
    std::cout << "speedup vs naive grid: " << speedup << "x  (rho "
              << result.rho << ", finite "
              << static_cast<double>(result.finiteRadii) /
                     static_cast<double>(samples)
              << ")\n";

    if (!reportPath.empty()) {
      // Reset the metrics window, then one final cache-off compute so the
      // embedded curve.samples counter equals --samples exactly
      // (report_check cross-checks the section against it).
      obs::resetMetrics();
      result = curve::computeCurve(problem, curveOptions);
      obs::RunReport report;
      report.tool = "degradation_curve";
      report.info = {
          {"rows", std::to_string(rows)},
          {"dims", std::to_string(dims)},
          {"samples", std::to_string(samples)},
          {"grid", std::to_string(grid)},
          {"naive_samples", std::to_string(naiveSamples)},
          {"threads", std::to_string(threads)},
          {"simd", std::string(
                       num::simd::toString(num::simd::activeTarget()))},
          {"rho", std::to_string(result.rho)},
          {"finite_fraction",
           std::to_string(static_cast<double>(result.finiteRadii) /
                          static_cast<double>(samples))},
          {"speedup_vs_naive_grid_x", std::to_string(speedup)},
          {"issue_target",
           ">=10x vs the naive per-radius grid at 256x64, N=1e6; both "
           "sides serial, naive cost extrapolated from naive_samples "
           "directions over the full grid"},
      };
      const std::string dim = "/" + std::to_string(rows) + "/" +
                              std::to_string(dims);
      report.benchmarks = {
          {"BM_CurveSamplesPerSec" + dim, samplesPerSec, "samples/s"},
          {"BM_CurveNsPerSample" + dim, curveNsPerSample, "ns"},
          {"BM_NaiveGridNsPerSample" + dim, naiveNsPerSample, "ns"},
      };
      curve::appendCurveSection(report, result);
      obs::writeRunReport(reportPath, report);
      std::cout << "report -> " << reportPath << '\n';
    }
  } catch (const std::exception& err) {
    std::cerr << "degradation_curve: " << err.what() << '\n';
    return 1;
  }
  return 0;
}
