// Ablation: the choice of norm in Eq. 1. The paper fixes the Euclidean
// norm; this harness recomputes the Section 3.1 metric under l1, l2 and
// l-infinity for the same mappings and reports how strongly the resulting
// rankings agree. For the affine makespan system the radii have closed
// forms under every norm (dual-norm distances), so the comparison is exact.
//
// Run: ./ablation_norms [--mappings N] [--seed S]
#include <algorithm>
#include <iostream>

#include "robust/scheduling/independent_system.hpp"
#include "robust/util/args.hpp"
#include "robust/util/stats.hpp"
#include "robust/util/table.hpp"

namespace {

/// Spearman rank correlation via Pearson on ranks.
double spearman(const std::vector<double>& xs, const std::vector<double>& ys) {
  auto ranks = [](const std::vector<double>& v) {
    std::vector<std::size_t> order(v.size());
    for (std::size_t i = 0; i < v.size(); ++i) {
      order[i] = i;
    }
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return v[a] < v[b]; });
    std::vector<double> rank(v.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
      rank[order[i]] = static_cast<double>(i);
    }
    return rank;
  };
  const auto rx = ranks(xs);
  const auto ry = ranks(ys);
  return robust::pearson(rx, ry);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace robust;
  const ArgParser args(argc, argv);
  const auto mappings = static_cast<std::size_t>(args.getInt("mappings", 400));
  const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 2003));
  const double tau = args.getDouble("tau", 1.2);

  sched::EtcOptions etcOptions;
  Pcg32 etcRng = makeStream(seed, 0);
  const sched::EtcMatrix etc = sched::generateEtc(etcOptions, etcRng);

  std::vector<std::vector<double>> rhos(3);
  for (std::size_t m = 0; m < mappings; ++m) {
    Pcg32 rng = makeStream(seed, 1 + m);
    const auto mapping =
        sched::randomMapping(etc.apps(), etc.machines(), rng);
    const sched::IndependentTaskSystem system(etc, mapping, tau);
    int n = 0;
    for (const auto norm :
         {core::NormKind::L1, core::NormKind::L2, core::NormKind::LInf}) {
      core::AnalyzerOptions options;
      options.norm = norm;
      rhos[static_cast<std::size_t>(n++)].push_back(
          system.compile(options).evaluate().metric);
    }
  }

  std::cout << "# Ablation: Eq. 1 norm choice, " << mappings
            << " mappings of the Section 3.1 system, tau = " << tau << "\n\n";
  const char* names[3] = {"l1", "l2", "linf"};
  TablePrinter table({"norm", "mean rho", "min rho", "max rho"});
  for (int n = 0; n < 3; ++n) {
    const Summary s = summarize(rhos[static_cast<std::size_t>(n)]);
    table.addRow({names[n], formatDouble(s.mean), formatDouble(s.min),
                  formatDouble(s.max)});
  }
  table.print(std::cout);

  std::cout << "\nranking agreement (Spearman):\n";
  TablePrinter corr({"pair", "spearman", "pearson"});
  const std::pair<int, int> pairs[3] = {{0, 1}, {1, 2}, {0, 2}};
  for (const auto& [a, b] : pairs) {
    corr.addRow({std::string(names[a]) + " vs " + names[b],
                 formatDouble(spearman(rhos[static_cast<std::size_t>(a)],
                                       rhos[static_cast<std::size_t>(b)])),
                 formatDouble(pearson(rhos[static_cast<std::size_t>(a)],
                                      rhos[static_cast<std::size_t>(b)]))});
  }
  corr.print(std::cout);

  std::cout << "\nfor the Section 3.1 system each machine's radius scales by "
               "1/sqrt(n_j) (l2),\n1 (l1) or 1/n_j (linf); rankings mostly "
               "agree but can flip when machines\nwith different application "
               "counts compete for the minimum.\n";
  return 0;
}
