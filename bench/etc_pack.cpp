// Converter between the textual artifacts (CSV ETC matrices) and the
// binary instance format the streaming engine consumes, plus a generator
// for large perturbation batches that would be wasteful to ship as text.
//
//   etc_pack pack   --csv IN.csv --out OUT.rbi
//       Each application row of the ETC matrix becomes one instance
//       (dim = machine count). The round trip back through `unpack` is
//       %.17g bit-identical.
//   etc_pack unpack --in IN.rbi --csv OUT.csv
//       Inverse of pack: instances become application rows.
//   etc_pack gen    --dim D --instances N --out OUT.rbi
//                   [--seed 2003] [--base-seed 6] [--spread 0.01]
//       Streams N perturbations of the perf-bench origin (base origin
//       uniform(0.5, 1.5) from Pcg32(base-seed), per-instance
//       multiplicative jitter uniform(1-spread, 1+spread) from
//       Pcg32(seed, i)) without ever holding the batch in memory.
//   etc_pack info   --in IN.rbi
//       Prints the validated header shape and payload size plus the raw
//       framing fields (version, flags in hex, reserved bytes). A file
//       with trailing bytes after the declared payload is rejected with
//       the categorized trailing-bytes diagnostic, not described.
//
// Exit code 0 on success; 1 on usage or conversion errors (printed).
#include <cstdint>
#include <cstring>
#include <exception>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "robust/core/instance_file.hpp"
#include "robust/scheduling/etc.hpp"
#include "robust/scheduling/etc_io.hpp"
#include "robust/util/args.hpp"
#include "robust/util/diagnostics.hpp"
#include "robust/util/mmap_file.hpp"
#include "robust/util/rng.hpp"

namespace {

using namespace robust;

int usage() {
  std::cerr
      << "usage:\n"
         "  etc_pack pack   --csv IN.csv --out OUT.rbi\n"
         "  etc_pack unpack --in IN.rbi --csv OUT.csv\n"
         "  etc_pack gen    --dim D --instances N --out OUT.rbi\n"
         "                  [--seed 2003] [--base-seed 6] [--spread 0.01]\n"
         "  etc_pack info   --in IN.rbi\n";
  return 1;
}

std::ofstream openBinaryOut(const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    throw std::runtime_error("etc_pack: cannot open '" + path +
                             "' for writing");
  }
  return out;
}

int runPack(const ArgParser& args) {
  const std::string csvPath = args.getString("csv", "");
  const std::string outPath = args.getString("out", "");
  if (csvPath.empty() || outPath.empty()) return usage();

  std::ifstream in(csvPath);
  if (!in.is_open()) {
    throw std::runtime_error("etc_pack: cannot open '" + csvPath + "'");
  }
  const sched::EtcMatrix etc = sched::loadEtcCsv(in, csvPath);

  std::ofstream out = openBinaryOut(outPath);
  core::InstanceFileWriter writer(out, etc.machines(), {}, csvPath);
  std::vector<double> row(etc.machines());
  for (std::size_t i = 0; i < etc.apps(); ++i) {
    for (std::size_t j = 0; j < etc.machines(); ++j) {
      row[j] = etc(i, j);
    }
    writer.append(row);
  }
  writer.finish();
  std::cout << "packed " << etc.apps() << " x " << etc.machines() << " -> "
            << outPath << '\n';
  return 0;
}

int runUnpack(const ArgParser& args) {
  const std::string inPath = args.getString("in", "");
  const std::string csvPath = args.getString("csv", "");
  if (inPath.empty() || csvPath.empty()) return usage();

  // Materialize through the validated loader (payload finiteness included)
  // rather than the raw reader: unpack output feeds text pipelines that
  // assume clean values.
  const util::MmapFile file(inPath);
  util::MmapFile::View view;
  file.view(0, static_cast<std::size_t>(file.size()), view);
  const util::Diagnostics diag(inPath);
  const core::InstanceData data = core::loadInstanceData(
      {reinterpret_cast<const std::byte*>(view.data()), view.size()}, diag);

  sched::EtcMatrix etc(static_cast<std::size_t>(data.header.instances),
                       static_cast<std::size_t>(data.header.dim));
  for (std::size_t i = 0; i < etc.apps(); ++i) {
    for (std::size_t j = 0; j < etc.machines(); ++j) {
      etc(i, j) = data.values[i * etc.machines() + j];
    }
  }
  std::ofstream out(csvPath, std::ios::trunc);
  if (!out.is_open()) {
    throw std::runtime_error("etc_pack: cannot open '" + csvPath +
                             "' for writing");
  }
  sched::saveEtcCsv(etc, out);
  std::cout << "unpacked " << etc.apps() << " x " << etc.machines() << " -> "
            << csvPath << '\n';
  return 0;
}

int runGen(const ArgParser& args) {
  const auto dim = static_cast<std::uint64_t>(args.getInt("dim", 0));
  const auto instances =
      static_cast<std::uint64_t>(args.getInt("instances", 0));
  const std::string outPath = args.getString("out", "");
  if (dim == 0 || instances == 0 || outPath.empty()) return usage();
  const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 2003));
  const auto baseSeed =
      static_cast<std::uint64_t>(args.getInt("base-seed", 6));
  const double spread = args.getDouble("spread", 0.01);

  // The perf-bench origin: the same uniform(0.5, 1.5) draw stream
  // stream_throughput's problem generator uses, so generated files probe
  // the problem family the committed baseline measures.
  std::vector<double> origin(dim);
  Pcg32 base(baseSeed);
  for (double& v : origin) {
    v = base.uniform(0.5, 1.5);
  }

  std::ofstream out = openBinaryOut(outPath);
  core::InstanceFileWriter writer(out, dim, {}, outPath);
  std::vector<double> row(dim);
  for (std::uint64_t i = 0; i < instances; ++i) {
    Pcg32 rng(seed, i);
    for (std::uint64_t k = 0; k < dim; ++k) {
      row[k] = origin[k] * rng.uniform(1.0 - spread, 1.0 + spread);
    }
    writer.append(row);
  }
  writer.finish();
  std::cout << "generated " << instances << " x " << dim << " (" << seed
            << '/' << baseSeed << ", spread " << spread << ") -> " << outPath
            << '\n';
  return 0;
}

int runInfo(const ArgParser& args) {
  const std::string inPath = args.getString("in", "");
  if (inPath.empty()) return usage();
  // Opening the reader runs full header validation: bad magic, unknown
  // flags, nonzero reserved bytes, shape/size mismatches, and trailing
  // bytes after the declared payload all produce a categorized
  // util::ParseError (printed by main's handler) instead of a dump.
  const core::InstanceFileReader reader(inPath);

  // Re-read the raw header to show the fields validation normalizes away
  // (version, flags, reserved): when a foreign writer misbehaves, `info`
  // on a file that DOES validate is how its raw framing gets inspected.
  std::ifstream raw(inPath, std::ios::binary);
  unsigned char header[core::kInstanceFileHeaderBytes] = {};
  raw.read(reinterpret_cast<char*>(header), sizeof(header));
  if (!raw) {
    throw std::runtime_error("etc_pack: cannot re-read the header of '" +
                             inPath + "'");
  }
  std::uint32_t version = 0;
  std::uint32_t flags = 0;
  std::memcpy(&version, header + 8, sizeof(version));
  std::memcpy(&flags, header + 12, sizeof(flags));

  std::cout << inPath << ": dim " << reader.dim() << ", instances "
            << reader.instances() << ", payload "
            << reader.instances() * reader.dim() * 8 << " bytes\n";
  std::cout << "  version " << version << ", flags 0x" << std::hex
            << std::setfill('0') << std::setw(8) << flags << std::dec
            << std::setfill(' ') << ", reserved[32]";
  bool reservedZero = true;
  for (std::size_t i = 32; i < core::kInstanceFileHeaderBytes; ++i) {
    reservedZero = reservedZero && header[i] == 0;
  }
  if (reservedZero) {
    std::cout << " all zero\n";
  } else {
    // Unreachable after validation today, but printed verbatim so a future
    // version that relaxes the reserved-bytes rule stays inspectable.
    std::cout << std::hex << std::setfill('0');
    for (std::size_t i = 32; i < core::kInstanceFileHeaderBytes; ++i) {
      std::cout << ' ' << std::setw(2)
                << static_cast<unsigned>(header[i]);
    }
    std::cout << std::dec << std::setfill(' ') << '\n';
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const ArgParser args(argc - 1, argv + 1);
  try {
    if (command == "pack") return runPack(args);
    if (command == "unpack") return runUnpack(args);
    if (command == "gen") return runGen(args);
    if (command == "info") return runInfo(args);
  } catch (const std::exception& err) {
    std::cerr << "etc_pack: " << err.what() << '\n';
    return 1;
  }
  return usage();
}
