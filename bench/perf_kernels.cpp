// google-benchmark microbenchmarks of the library's kernels: the Eq. 6
// closed form, full-system analyses, the iterative solvers, and the
// instance generators. These stand in for the authors' testbed timings
// (absolute numbers are machine-specific; relative costs are the signal).
#include <benchmark/benchmark.h>

#include "robust/core/analyzer.hpp"
#include "robust/hiperd/experiment.hpp"
#include "robust/numeric/optimize.hpp"
#include "robust/scheduling/experiment.hpp"
#include "robust/scheduling/heuristics.hpp"

namespace {

using namespace robust;

sched::EtcMatrix benchEtc() {
  sched::EtcOptions options;
  Pcg32 rng(1);
  return sched::generateEtc(options, rng);
}

void BM_Eq6Analysis(benchmark::State& state) {
  const auto etc = benchEtc();
  Pcg32 rng(2);
  const auto mapping = sched::randomMapping(etc.apps(), etc.machines(), rng);
  const sched::IndependentTaskSystem system(etc, mapping, 1.2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(system.analyze());
  }
}
BENCHMARK(BM_Eq6Analysis);

void BM_GenericAffineAnalysis(benchmark::State& state) {
  const auto etc = benchEtc();
  Pcg32 rng(2);
  const auto mapping = sched::randomMapping(etc.apps(), etc.machines(), rng);
  const sched::IndependentTaskSystem system(etc, mapping, 1.2);
  const auto analyzer = system.toAnalyzer();
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.analyze());
  }
}
BENCHMARK(BM_GenericAffineAnalysis);

void BM_KktNewtonQuadratic(benchmark::State& state) {
  num::NearestPointProblem problem;
  problem.g = [](std::span<const double> x) {
    double s = 0.0;
    for (double xi : x) {
      s += xi * xi;
    }
    return s;
  };
  problem.gradient = [](std::span<const double> x) {
    return num::scale(x, 2.0);
  };
  problem.level = 1e6;
  problem.origin = num::Vec(static_cast<std::size_t>(state.range(0)), 10.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(num::kktNewton(problem));
  }
}
BENCHMARK(BM_KktNewtonQuadratic)->Arg(3)->Arg(10)->Arg(30);

void BM_MonteCarloRadius(benchmark::State& state) {
  num::NearestPointProblem problem;
  problem.g = [](std::span<const double> x) {
    double s = 0.0;
    for (double xi : x) {
      s += xi * xi;
    }
    return s;
  };
  problem.level = 1e6;
  problem.origin = num::Vec(3, 10.0);
  num::SolverOptions options;
  options.samples = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(num::monteCarloRadius(problem, options));
  }
}
BENCHMARK(BM_MonteCarloRadius)->Arg(256)->Arg(1024)->Arg(4096);

void BM_EtcGeneration(benchmark::State& state) {
  sched::EtcOptions options;
  options.apps = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Pcg32 rng(3);
    benchmark::DoNotOptimize(sched::generateEtc(options, rng));
  }
}
BENCHMARK(BM_EtcGeneration)->Arg(20)->Arg(200);

void BM_MinMinHeuristic(benchmark::State& state) {
  const auto etc = benchEtc();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::minMinMapping(etc));
  }
}
BENCHMARK(BM_MinMinHeuristic);

void BM_HiperdScenarioGeneration(benchmark::State& state) {
  const hiperd::ScenarioOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hiperd::generateScenario(options, 2003));
  }
}
BENCHMARK(BM_HiperdScenarioGeneration);

void BM_HiperdAnalysis(benchmark::State& state) {
  const auto generated =
      hiperd::generateScenario(hiperd::ScenarioOptions{}, 2003);
  Pcg32 rng(4);
  const auto mapping = sched::randomMapping(
      generated.scenario.graph.applicationCount(),
      generated.scenario.machines, rng);
  const hiperd::HiperdSystem system(generated.scenario, mapping);
  for (auto _ : state) {
    benchmark::DoNotOptimize(system.analyze());
  }
}
BENCHMARK(BM_HiperdAnalysis);

void BM_HiperdSlack(benchmark::State& state) {
  const auto generated =
      hiperd::generateScenario(hiperd::ScenarioOptions{}, 2003);
  Pcg32 rng(4);
  const auto mapping = sched::randomMapping(
      generated.scenario.graph.applicationCount(),
      generated.scenario.machines, rng);
  const hiperd::HiperdSystem system(generated.scenario, mapping);
  for (auto _ : state) {
    benchmark::DoNotOptimize(system.slack());
  }
}
BENCHMARK(BM_HiperdSlack);

}  // namespace

BENCHMARK_MAIN();
