// google-benchmark microbenchmarks of the library's kernels: the Eq. 6
// closed form, full-system analyses, the iterative solvers, and the
// instance generators. These stand in for the authors' testbed timings
// (absolute numbers are machine-specific; relative costs are the signal).
//
// `--obs_report=PATH` (handled by the main() below, before google-benchmark
// sees the argument list) additionally writes the results as a
// robust.run_report JSON document — the same schema the ablation harnesses
// emit — so CI can diff timings and obs counters across commits instead of
// scraping console tables.
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "robust/obs/metrics.hpp"
#include "robust/obs/report.hpp"

#include "robust/core/analyzer.hpp"
#include "robust/core/compiled.hpp"
#include "robust/hiperd/compiled_scenario.hpp"
#include "robust/hiperd/experiment.hpp"
#include "robust/numeric/optimize.hpp"
#include "robust/numeric/simd.hpp"
#include "robust/scheduling/experiment.hpp"
#include "robust/scheduling/heuristics.hpp"
#include "robust/scheduling/incremental.hpp"

namespace {

using namespace robust;

sched::EtcMatrix benchEtc() {
  sched::EtcOptions options;
  Pcg32 rng(1);
  return sched::generateEtc(options, rng);
}

sched::EtcMatrix benchEtcSized(std::size_t apps, std::size_t machines) {
  sched::EtcOptions options;
  options.apps = apps;
  options.machines = machines;
  Pcg32 rng(1);
  return sched::generateEtc(options, rng);
}

void BM_Eq6Analysis(benchmark::State& state) {
  const auto etc = benchEtc();
  Pcg32 rng(2);
  const auto mapping = sched::randomMapping(etc.apps(), etc.machines(), rng);
  const sched::IndependentTaskSystem system(etc, mapping, 1.2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(system.analyze());
  }
}
BENCHMARK(BM_Eq6Analysis);

void BM_GenericAffineAnalysis(benchmark::State& state) {
  const auto etc = benchEtc();
  Pcg32 rng(2);
  const auto mapping = sched::randomMapping(etc.apps(), etc.machines(), rng);
  const sched::IndependentTaskSystem system(etc, mapping, 1.2);
  const auto analyzer = system.toAnalyzer();
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.analyze());
  }
}
BENCHMARK(BM_GenericAffineAnalysis);

void BM_KktNewtonQuadratic(benchmark::State& state) {
  num::NearestPointProblem problem;
  problem.g = [](std::span<const double> x) {
    double s = 0.0;
    for (double xi : x) {
      s += xi * xi;
    }
    return s;
  };
  problem.gradient = [](std::span<const double> x) {
    return num::scale(x, 2.0);
  };
  problem.level = 1e6;
  problem.origin = num::Vec(static_cast<std::size_t>(state.range(0)), 10.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(num::kktNewton(problem));
  }
}
BENCHMARK(BM_KktNewtonQuadratic)->Arg(3)->Arg(10)->Arg(30);

void BM_MonteCarloRadius(benchmark::State& state) {
  num::NearestPointProblem problem;
  problem.g = [](std::span<const double> x) {
    double s = 0.0;
    for (double xi : x) {
      s += xi * xi;
    }
    return s;
  };
  problem.level = 1e6;
  problem.origin = num::Vec(3, 10.0);
  num::SolverOptions options;
  options.samples = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(num::monteCarloRadius(problem, options));
  }
}
BENCHMARK(BM_MonteCarloRadius)->Arg(256)->Arg(1024)->Arg(4096);

void BM_EtcGeneration(benchmark::State& state) {
  sched::EtcOptions options;
  options.apps = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Pcg32 rng(3);
    benchmark::DoNotOptimize(sched::generateEtc(options, rng));
  }
}
BENCHMARK(BM_EtcGeneration)->Arg(20)->Arg(200);

void BM_MinMinHeuristic(benchmark::State& state) {
  const auto etc = benchEtc();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::minMinMapping(etc));
  }
}
BENCHMARK(BM_MinMinHeuristic);

// --- mapping-evaluation engine: from-scratch rebuild vs incremental move ---
//
// BM_FullReanalyze is what every neighborhood probe cost before the
// incremental engine: construct an IndependentTaskSystem and analyze().
// BM_IncrementalMove is the same probe through IncrementalEvaluator.
void BM_FullReanalyze(benchmark::State& state) {
  const auto etc = benchEtcSized(static_cast<std::size_t>(state.range(0)),
                                 static_cast<std::size_t>(state.range(1)));
  Pcg32 rng(2);
  auto mapping = sched::randomMapping(etc.apps(), etc.machines(), rng);
  std::size_t app = 0;
  for (auto _ : state) {
    const std::size_t machine =
        (mapping.machineOf(app) + 1) % etc.machines();
    mapping.assign(app, machine);
    benchmark::DoNotOptimize(
        sched::IndependentTaskSystem(etc, mapping, 1.2).analyze());
    app = (app + 1) % etc.apps();
  }
}
BENCHMARK(BM_FullReanalyze)->Args({20, 5})->Args({200, 16})->Args({1000, 64});

void BM_IncrementalMove(benchmark::State& state) {
  const auto etc = benchEtcSized(static_cast<std::size_t>(state.range(0)),
                                 static_cast<std::size_t>(state.range(1)));
  Pcg32 rng(2);
  const auto mapping = sched::randomMapping(etc.apps(), etc.machines(), rng);
  sched::IncrementalEvaluator evaluator(etc, mapping, 1.2);
  std::size_t app = 0;
  for (auto _ : state) {
    const std::size_t machine =
        (evaluator.mapping().machineOf(app) + 1) % etc.machines();
    benchmark::DoNotOptimize(evaluator.tryMove(app, machine));
    evaluator.commit();
    app = (app + 1) % etc.apps();
  }
}
BENCHMARK(BM_IncrementalMove)
    ->Args({20, 5})
    ->Args({200, 16})
    ->Args({1000, 64});

// One full best-improvement localSearch round (apps x machines probes) via
// the generic from-scratch objective vs the incremental engine. The >= 10x
// target of the incremental engine is measured here at the default bench
// instance size ({20, 5}).
void BM_LocalSearchRoundGeneric(benchmark::State& state) {
  const auto etc = benchEtcSized(static_cast<std::size_t>(state.range(0)),
                                 static_cast<std::size_t>(state.range(1)));
  const auto start = sched::roundRobinMapping(etc);
  const auto objective =
      sched::EtcObjective::negatedRobustness(1.2).generic(etc);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::localSearch(etc, start, objective, 1));
  }
}
BENCHMARK(BM_LocalSearchRoundGeneric)
    ->Args({20, 5})
    ->Args({200, 16})
    ->Args({1000, 64});

void BM_LocalSearchRoundIncremental(benchmark::State& state) {
  const auto etc = benchEtcSized(static_cast<std::size_t>(state.range(0)),
                                 static_cast<std::size_t>(state.range(1)));
  const auto start = sched::roundRobinMapping(etc);
  const auto objective = sched::EtcObjective::negatedRobustness(1.2);
  sched::LocalSearchOptions options;
  options.maxRounds = 1;
  options.threads = static_cast<std::size_t>(state.range(2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sched::localSearch(etc, start, objective, options));
  }
}
BENCHMARK(BM_LocalSearchRoundIncremental)
    ->Args({20, 5, 1})
    ->Args({200, 16, 1})
    ->Args({200, 16, 0})  // threads = 0: ROBUST_THREADS / hardware width
    ->Args({1000, 64, 1});

void BM_HiperdScenarioGeneration(benchmark::State& state) {
  const hiperd::ScenarioOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hiperd::generateScenario(options, 2003));
  }
}
BENCHMARK(BM_HiperdScenarioGeneration);

void BM_HiperdAnalysis(benchmark::State& state) {
  const auto generated =
      hiperd::generateScenario(hiperd::ScenarioOptions{}, 2003);
  Pcg32 rng(4);
  const auto mapping = sched::randomMapping(
      generated.scenario.graph.applicationCount(),
      generated.scenario.machines, rng);
  const hiperd::HiperdSystem system(generated.scenario, mapping);
  for (auto _ : state) {
    benchmark::DoNotOptimize(system.analyze());
  }
}
BENCHMARK(BM_HiperdAnalysis);

// --- compile-once analysis engine: legacy per-call derivation vs the
// compiled path. "Legacy" is what per-mapping re-analysis cost before the
// compiled engine: rebuild the feature list (or the whole analyzer) and
// analyze. "CompiledReanalyze" amortizes every mapping-independent step and
// reuses a caller-owned workspace. The >= 5x HiPer-D target of the compiled
// engine is measured by BM_LegacyAnalyzeHiperd / BM_CompiledReanalyzeHiperd.
void BM_LegacyAnalyzeEtc(benchmark::State& state) {
  const auto etc = benchEtc();
  Pcg32 rng(2);
  const auto mapping = sched::randomMapping(etc.apps(), etc.machines(), rng);
  const sched::IndependentTaskSystem system(etc, mapping, 1.2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(system.toAnalyzer().analyze());
  }
}
BENCHMARK(BM_LegacyAnalyzeEtc);

void BM_CompiledReanalyzeEtc(benchmark::State& state) {
  const auto etc = benchEtc();
  Pcg32 rng(2);
  const auto mapping = sched::randomMapping(etc.apps(), etc.machines(), rng);
  const sched::IndependentTaskSystem system(etc, mapping, 1.2);
  const auto compiled = system.compile();
  core::EvalWorkspace workspace;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        compiled.evaluate(core::AnalysisInstance{}, workspace));
  }
}
BENCHMARK(BM_CompiledReanalyzeEtc);

std::vector<sched::Mapping> benchHiperdMappings(
    const hiperd::HiperdScenario& scenario, std::size_t count) {
  Pcg32 rng(4);
  std::vector<sched::Mapping> mappings;
  mappings.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    mappings.push_back(sched::randomMapping(
        scenario.graph.applicationCount(), scenario.machines, rng));
  }
  return mappings;
}

void BM_LegacyAnalyzeHiperd(benchmark::State& state) {
  const auto generated =
      hiperd::generateScenario(hiperd::ScenarioOptions{}, 2003);
  const auto mappings = benchHiperdMappings(generated.scenario, 64);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hiperd::HiperdSystem(generated.scenario, mappings[i])
            .toAnalyzer()
            .analyze());
    i = (i + 1) % mappings.size();
  }
}
BENCHMARK(BM_LegacyAnalyzeHiperd);

void BM_CompiledReanalyzeHiperd(benchmark::State& state) {
  const auto generated =
      hiperd::generateScenario(hiperd::ScenarioOptions{}, 2003);
  const auto mappings = benchHiperdMappings(generated.scenario, 64);
  const hiperd::CompiledScenario compiled = generated.scenario.compile();
  hiperd::ScenarioWorkspace workspace;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(compiled.analyze(mappings[i], workspace));
    i = (i + 1) % mappings.size();
  }
}
BENCHMARK(BM_CompiledReanalyzeHiperd);

void BM_HiperdSlack(benchmark::State& state) {
  const auto generated =
      hiperd::generateScenario(hiperd::ScenarioOptions{}, 2003);
  Pcg32 rng(4);
  const auto mapping = sched::randomMapping(
      generated.scenario.graph.applicationCount(),
      generated.scenario.machines, rng);
  const hiperd::HiperdSystem system(generated.scenario, mapping);
  for (auto _ : state) {
    benchmark::DoNotOptimize(system.slack());
  }
}
BENCHMARK(BM_HiperdSlack);

// --- radius micro-kernels and the metric-only lane (PR 5) ---
//
// BM_RadiusKernelScalar / BM_RadiusKernelSimd time the multi-row dot kernel
// (the inner loop of the metric lane's dot pass) with the dispatch target
// pinned to the portable scalar fallback vs AVX2. Both produce bit-identical
// dots (the scalar lanes replay the vector schedule); the ratio is the pure
// vectorization win. On hosts without AVX2 the Simd benchmark silently runs
// the scalar kernel (setTarget falls back), so the two report equal times.
struct KernelBenchData {
  std::vector<double> weights;  ///< row-major rows x dims
  num::Vec x;
  std::vector<double> dots;
};

KernelBenchData kernelBenchData(std::size_t rows, std::size_t dims) {
  Pcg32 rng(5);
  KernelBenchData data;
  data.weights.resize(rows * dims);
  for (double& w : data.weights) {
    w = rng.uniform(0.1, 2.0);
  }
  data.x.resize(dims);
  for (double& v : data.x) {
    v = rng.uniform(0.5, 1.5);
  }
  data.dots.resize(rows);
  return data;
}

void radiusKernelBody(benchmark::State& state, num::simd::Target target) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  const auto dims = static_cast<std::size_t>(state.range(1));
  auto data = kernelBenchData(rows, dims);
  num::simd::setTarget(target);
  for (auto _ : state) {
    num::simd::dotRowsBlocked(data.weights.data(), rows, data.x,
                              data.dots.data());
    benchmark::DoNotOptimize(data.dots.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(rows * dims));
  num::simd::setTarget(num::simd::avx2Available() ? num::simd::Target::Avx2
                                                  : num::simd::Target::Scalar);
}

void BM_RadiusKernelScalar(benchmark::State& state) {
  radiusKernelBody(state, num::simd::Target::Scalar);
}
BENCHMARK(BM_RadiusKernelScalar)
    ->Args({16, 8})
    ->Args({256, 64})
    ->Args({4096, 512});

void BM_RadiusKernelSimd(benchmark::State& state) {
  radiusKernelBody(state, num::simd::Target::Avx2);
}
BENCHMARK(BM_RadiusKernelSimd)
    ->Args({16, 8})
    ->Args({256, 64})
    ->Args({4096, 512});

// BM_FullEvaluate / BM_MetricOnlyPruned compare the full evaluate() (report
// strings, boundary points, per-row radii) against the metric-only lane on
// the same synthetic rows x dims problem at a non-default origin (so the
// metric lane pays its kernel dot pass instead of the compiled-default
// cache). The tolerance levels are spread so most rows lose to the incumbent
// early and the pruning branch does real work.
core::CompiledProblem metricBenchProblem(std::size_t rows, std::size_t dims) {
  Pcg32 rng(6);
  core::ProblemSpec spec;
  spec.parameter.name = "pi";
  spec.parameter.origin.resize(dims);
  for (double& v : spec.parameter.origin) {
    v = rng.uniform(0.5, 1.5);
  }
  spec.features.reserve(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    num::Vec weights(dims);
    for (double& w : weights) {
      w = rng.uniform(0.1, 2.0);
    }
    double atOrigin = 0.0;
    for (std::size_t k = 0; k < dims; ++k) {
      atOrigin += weights[k] * spec.parameter.origin[k];
    }
    spec.features.push_back(core::PerformanceFeature{
        "F_" + std::to_string(r),
        core::ImpactFunction::affine(std::move(weights)),
        core::ToleranceBounds::atMost(atOrigin * rng.uniform(1.05, 4.0))});
  }
  return core::CompiledProblem::compile(std::move(spec));
}

num::Vec perturbedOrigin(const core::CompiledProblem& problem) {
  Pcg32 rng(7);
  num::Vec origin(problem.parameter().origin);
  for (double& v : origin) {
    v *= rng.uniform(0.99, 1.01);
  }
  return origin;
}

void BM_FullEvaluate(benchmark::State& state) {
  const auto problem =
      metricBenchProblem(static_cast<std::size_t>(state.range(0)),
                         static_cast<std::size_t>(state.range(1)));
  const num::Vec origin = perturbedOrigin(problem);
  core::AnalysisInstance instance;
  instance.origin = origin;
  core::EvalWorkspace workspace;
  for (auto _ : state) {
    benchmark::DoNotOptimize(problem.evaluate(instance, workspace).metric);
  }
}
BENCHMARK(BM_FullEvaluate)->Args({16, 8})->Args({256, 64})->Args({4096, 512});

void BM_MetricOnlyPruned(benchmark::State& state) {
  const auto problem =
      metricBenchProblem(static_cast<std::size_t>(state.range(0)),
                         static_cast<std::size_t>(state.range(1)));
  const num::Vec origin = perturbedOrigin(problem);
  core::AnalysisInstance instance;
  instance.origin = origin;
  core::MetricWorkspace workspace;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        problem.evaluateMetric(instance, workspace).metric);
  }
}
BENCHMARK(BM_MetricOnlyPruned)
    ->Args({16, 8})
    ->Args({256, 64})
    ->Args({4096, 512});

// The HiPer-D metric lane against the full compiled analyze() (same mapping
// rotation as BM_CompiledReanalyzeHiperd): the per-mapping cost a search
// objective pays.
void BM_HiperdMetricOnly(benchmark::State& state) {
  const auto generated =
      hiperd::generateScenario(hiperd::ScenarioOptions{}, 2003);
  const auto mappings = benchHiperdMappings(generated.scenario, 64);
  const hiperd::CompiledScenario compiled = generated.scenario.compile();
  hiperd::ScenarioWorkspace workspace;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        compiled.analyzeMetric(mappings[i], workspace).metric);
    i = (i + 1) % mappings.size();
  }
}
BENCHMARK(BM_HiperdMetricOnly);

// Console reporter that also records every per-iteration run (aggregates
// like mean/stddev are skipped) so main() can emit them as a run report.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) {
        continue;
      }
      results_.push_back(obs::BenchResult{
          run.benchmark_name(), run.GetAdjustedRealTime(),
          benchmark::GetTimeUnitString(run.time_unit)});
    }
    ConsoleReporter::ReportRuns(reports);
  }

  [[nodiscard]] const std::vector<obs::BenchResult>& results() const {
    return results_;
  }

 private:
  std::vector<obs::BenchResult> results_;
};

}  // namespace

int main(int argc, char** argv) {
  // Strip --obs_report=PATH before google-benchmark validates the flags.
  std::string reportPath;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    constexpr const char* kFlag = "--obs_report=";
    if (std::strncmp(argv[i], kFlag, std::strlen(kFlag)) == 0) {
      reportPath = argv[i] + std::strlen(kFlag);
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  if (!reportPath.empty()) {
    obs::RunReport report;
    report.tool = "perf_kernels";
    report.benchmarks = reporter.results();
    // Metrics ride along only when ROBUST_OBS is on; the report is still
    // valid (empty metrics object) when it is off.
    obs::writeRunReport(reportPath, report);
  }
  return 0;
}
