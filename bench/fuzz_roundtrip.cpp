// Differential round-trip fuzz driver for the ingestion boundary — the
// CLI twin of tests/test_io_fuzz.cpp, sized for CI's sanitized job (ASan +
// UBSan catch what a release binary survives silently).
//
//   fuzz_roundtrip [--etc N] [--scenarios N] [--mutations N] [--seed S]
//
// Three phases, all deterministic in --seed:
//   1. N randomized ETC matrices + N scenarios round-trip save -> load
//      bit-identically, with bit-identical robustness reports.
//   2. M byte-level mutations of each artifact kind must either load
//      (admitting only finite values) or raise InvalidArgumentError.
//   3. Every truncation prefix of one artifact of each kind is probed.
//
// Exit code 0 = every property held; 1 = at least one violation (printed).
#include <cmath>
#include <cstddef>
#include <exception>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "robust/core/instance_file.hpp"
#include "robust/hiperd/generator.hpp"
#include "robust/hiperd/scenario_io.hpp"
#include "robust/scheduling/etc_io.hpp"
#include "robust/scheduling/independent_system.hpp"
#include "robust/scheduling/mapping.hpp"
#include "robust/util/args.hpp"
#include "robust/util/diagnostics.hpp"
#include "robust/util/error.hpp"
#include "robust/util/fuzz.hpp"
#include "robust/util/rng.hpp"
#include "robust/util/table.hpp"

namespace {

using namespace robust;

int failures = 0;

void report(bool ok, const std::string& what) {
  if (!ok) {
    ++failures;
    std::cerr << "FAIL: " << what << '\n';
  }
}

sched::EtcMatrix randomEtc(std::uint64_t master, std::uint64_t seed) {
  Pcg32 rng = makeStream(master, seed);
  sched::EtcOptions options;
  options.apps = 1 + rng.nextBounded(12);
  options.machines = 1 + rng.nextBounded(8);
  options.meanTaskTime = rng.uniform(0.5, 50.0);
  options.taskHeterogeneity = rng.uniform(0.0, 1.2);
  options.machineHeterogeneity = rng.uniform(0.0, 1.2);
  options.consistency = static_cast<sched::EtcConsistency>(rng.nextBounded(3));
  return sched::generateEtc(options, rng);
}

bool etcEqual(const sched::EtcMatrix& a, const sched::EtcMatrix& b) {
  if (a.apps() != b.apps() || a.machines() != b.machines()) {
    return false;
  }
  for (std::size_t i = 0; i < a.apps(); ++i) {
    for (std::size_t j = 0; j < a.machines(); ++j) {
      if (a(i, j) != b(i, j)) {  // bitwise (no NaN can be present)
        return false;
      }
    }
  }
  return true;
}

bool reportsIdentical(const core::RobustnessReport& a,
                      const core::RobustnessReport& b) {
  if (a.metric != b.metric || a.bindingFeature != b.bindingFeature ||
      a.radii.size() != b.radii.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.radii.size(); ++i) {
    if (a.radii[i].radius != b.radii[i].radius ||
        a.radii[i].feature != b.radii[i].feature) {
      return false;
    }
  }
  return true;
}

/// Phase 2/3 outcome counters for one artifact kind.
struct FuzzCounts {
  int loaded = 0;
  int rejected = 0;
  int wrongException = 0;
};

template <typename LoadFn, typename CheckFn>
void probe(const std::string& text, FuzzCounts& counts, LoadFn load,
           CheckFn check) {
  try {
    std::istringstream is(text);
    if (check(load(is))) {
      ++counts.loaded;
    } else {
      ++counts.wrongException;  // loaded, but with values the policy bans
      report(false, "loader admitted policy-violating values");
    }
  } catch (const InvalidArgumentError&) {
    ++counts.rejected;  // structured rejection: the expected outcome
  } catch (const std::exception& err) {
    ++counts.wrongException;
    report(false, std::string("unexpected exception type: ") + err.what());
  }
}

/// A valid binary instance-file image (the streaming lane's format),
/// random shape, packed through the fail-fast writer.
std::string randomInstanceImage(std::uint64_t master, std::uint64_t seed,
                                std::vector<double>* values = nullptr) {
  Pcg32 rng = makeStream(master, seed ^ 0xb117);
  const std::uint64_t dim = 1 + rng.nextBounded(16);
  const std::uint64_t count = 1 + rng.nextBounded(40);
  std::ostringstream out(std::ios::binary);
  core::InstanceFileWriter writer(out, dim);
  std::vector<double> row(dim);
  for (std::uint64_t i = 0; i < count; ++i) {
    for (double& v : row) {
      v = rng.uniform(-50.0, 50.0);
    }
    writer.append(row);
    if (values != nullptr) {
      values->insert(values->end(), row.begin(), row.end());
    }
  }
  writer.finish();
  return out.str();
}

/// The binary-format analogue of probe(): loadInstanceData over a byte
/// image, admitting only finite values.
void probeImage(const std::string& image, FuzzCounts& counts) {
  try {
    const util::Diagnostics diag("fuzz.rbi");
    const core::InstanceData data = core::loadInstanceData(image, diag);
    bool finite = true;
    for (double v : data.values) {
      finite = finite && std::isfinite(v);
    }
    if (finite) {
      ++counts.loaded;
    } else {
      ++counts.wrongException;
      report(false, "binary loader admitted non-finite values");
    }
  } catch (const InvalidArgumentError&) {
    ++counts.rejected;
  } catch (const std::exception& err) {
    ++counts.wrongException;
    report(false, std::string("unexpected exception type: ") + err.what());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  const auto etcCases = static_cast<std::uint64_t>(args.getInt("etc", 120));
  const auto scenarioCases =
      static_cast<std::uint64_t>(args.getInt("scenarios", 20));
  const int mutations = static_cast<int>(args.getInt("mutations", 500));
  const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 2003));

  // ------------------------------------------------ phase 1: round trips
  int etcRoundTrips = 0;
  for (std::uint64_t s = 0; s < etcCases; ++s) {
    const sched::EtcMatrix etc = randomEtc(seed, s);
    std::stringstream stream;
    sched::saveEtcCsv(etc, stream);
    try {
      const sched::EtcMatrix loaded = sched::loadEtcCsv(stream);
      report(etcEqual(etc, loaded),
             "ETC round trip not bit-identical at seed " + std::to_string(s));
      Pcg32 rng = makeStream(seed ^ 0xabcd, s);
      const auto mapping =
          sched::randomMapping(etc.apps(), etc.machines(), rng);
      const auto ra =
          sched::IndependentTaskSystem(etc, mapping, 1.2).compile().evaluate();
      const auto rb = sched::IndependentTaskSystem(loaded, mapping, 1.2)
                          .compile()
                          .evaluate();
      report(reportsIdentical(ra, rb),
             "ETC reports diverge after reload at seed " + std::to_string(s));
      ++etcRoundTrips;
    } catch (const std::exception& err) {
      report(false, std::string("ETC round trip threw: ") + err.what());
    }
  }

  int scenarioRoundTrips = 0;
  std::string scenarioText;
  for (std::uint64_t s = 0; s < scenarioCases; ++s) {
    const auto generated =
        hiperd::generateScenario(hiperd::ScenarioOptions{}, seed + s);
    std::stringstream stream;
    hiperd::saveScenario(generated.scenario, stream);
    scenarioText = stream.str();
    try {
      const hiperd::HiperdScenario loaded = hiperd::loadScenario(stream);
      std::stringstream again;
      hiperd::saveScenario(loaded, again);
      report(again.str() == scenarioText,
             "scenario reserialization not byte-identical at seed " +
                 std::to_string(seed + s));
      Pcg32 rng = makeStream(seed ^ 0x5ce9, s);
      const auto mapping = sched::randomMapping(
          loaded.graph.applicationCount(), loaded.machines, rng);
      report(reportsIdentical(
                 hiperd::HiperdSystem(generated.scenario, mapping).analyze(),
                 hiperd::HiperdSystem(loaded, mapping).analyze()),
             "scenario reports diverge after reload at seed " +
                 std::to_string(seed + s));
      ++scenarioRoundTrips;
    } catch (const std::exception& err) {
      report(false, std::string("scenario round trip threw: ") + err.what());
    }
  }

  int binaryRoundTrips = 0;
  for (std::uint64_t s = 0; s < etcCases; ++s) {
    std::vector<double> expected;
    const std::string image = randomInstanceImage(seed, s, &expected);
    try {
      const util::Diagnostics diag("roundtrip.rbi");
      const core::InstanceData data = core::loadInstanceData(image, diag);
      bool same = data.values.size() == expected.size();
      for (std::size_t i = 0; same && i < expected.size(); ++i) {
        same = data.values[i] == expected[i];  // bitwise: all finite
      }
      report(same, "binary instance round trip not bit-identical at seed " +
                       std::to_string(s));
      ++binaryRoundTrips;
    } catch (const std::exception& err) {
      report(false,
             std::string("binary instance round trip threw: ") + err.what());
    }
  }

  // ------------------------------------------------- phase 2: mutations
  std::stringstream etcStream;
  sched::saveEtcCsv(randomEtc(seed, 7), etcStream);
  const std::string etcText = etcStream.str();

  FuzzCounts etcCounts;
  Pcg32 etcRng = makeStream(seed, 0xe7c);
  for (int i = 0; i < mutations; ++i) {
    probe(util::mutateBytes(etcText, etcRng), etcCounts,
          [](std::istream& is) { return sched::loadEtcCsv(is, "fuzz.csv"); },
          [](const sched::EtcMatrix& m) {
            for (std::size_t r = 0; r < m.apps(); ++r) {
              for (std::size_t c = 0; c < m.machines(); ++c) {
                if (!std::isfinite(m(r, c)) || !(m(r, c) > 0.0)) {
                  return false;
                }
              }
            }
            return true;
          });
  }

  FuzzCounts scenarioCounts;
  Pcg32 scenRng = makeStream(seed, 0x5ce);
  for (int i = 0; i < mutations; ++i) {
    probe(util::mutateBytes(scenarioText, scenRng), scenarioCounts,
          [](std::istream& is) {
            return hiperd::loadScenario(is, "fuzz.scenario");
          },
          [](const hiperd::HiperdScenario& sc) {
            for (double v : sc.lambdaOrig) {
              if (!std::isfinite(v)) {
                return false;
              }
            }
            for (double v : sc.latencyLimits) {
              if (!std::isfinite(v) || !(v > 0.0)) {
                return false;
              }
            }
            for (const auto& row : sc.compute) {
              for (const auto& fn : row) {
                for (double c : fn.coeffs()) {
                  if (!std::isfinite(c)) {
                    return false;
                  }
                }
              }
            }
            return true;
          });
  }

  FuzzCounts binaryCounts;
  const std::string binaryImage = randomInstanceImage(seed, 7);
  Pcg32 binRng = makeStream(seed, 0xb17);
  for (int i = 0; i < mutations; ++i) {
    probeImage(util::mutateBytes(binaryImage, binRng), binaryCounts);
  }

  // ------------------------------------------------ phase 3: truncation
  FuzzCounts truncCounts;
  // Every strict prefix of a binary image must reject (the header pins the
  // exact payload size); a prefix that loads is itself a violation.
  {
    const int loadedBefore = truncCounts.loaded;
    for (std::size_t cut = 0; cut < binaryImage.size(); ++cut) {
      probeImage(binaryImage.substr(0, cut), truncCounts);
    }
    report(truncCounts.loaded == loadedBefore,
           "a strict binary prefix unexpectedly loaded");
  }
  for (std::size_t cut = 0; cut < etcText.size(); ++cut) {
    probe(etcText.substr(0, cut), truncCounts,
          [](std::istream& is) { return sched::loadEtcCsv(is); },
          [](const sched::EtcMatrix&) { return true; });
  }
  for (std::size_t cut = 0; cut < scenarioText.size(); ++cut) {
    probe(scenarioText.substr(0, cut), truncCounts,
          [](std::istream& is) { return hiperd::loadScenario(is); },
          [](const hiperd::HiperdScenario&) { return true; });
  }

  TablePrinter table({"phase", "cases", "loaded", "rejected", "bad"});
  table.addRow({"etc round trip", std::to_string(etcRoundTrips), "-", "-", "-"});
  table.addRow({"scenario round trip", std::to_string(scenarioRoundTrips), "-",
             "-", "-"});
  table.addRow({"etc mutation", std::to_string(mutations),
             std::to_string(etcCounts.loaded),
             std::to_string(etcCounts.rejected),
             std::to_string(etcCounts.wrongException)});
  table.addRow({"scenario mutation", std::to_string(mutations),
             std::to_string(scenarioCounts.loaded),
             std::to_string(scenarioCounts.rejected),
             std::to_string(scenarioCounts.wrongException)});
  table.addRow({"binary round trip", std::to_string(binaryRoundTrips), "-",
             "-", "-"});
  table.addRow({"binary mutation", std::to_string(mutations),
             std::to_string(binaryCounts.loaded),
             std::to_string(binaryCounts.rejected),
             std::to_string(binaryCounts.wrongException)});
  table.addRow({"truncation sweep",
             std::to_string(binaryImage.size() + etcText.size() +
                            scenarioText.size()),
             std::to_string(truncCounts.loaded),
             std::to_string(truncCounts.rejected),
             std::to_string(truncCounts.wrongException)});
  table.print(std::cout);

  if (failures > 0) {
    std::cerr << failures << " fuzz property violation(s)\n";
    return 1;
  }
  std::cout << "all fuzz properties held\n";
  return 0;
}
