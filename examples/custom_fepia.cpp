// Deriving a robustness metric for a NEW system with the four-step FePIA
// procedure — the workflow Section 2 of the paper prescribes for "an
// arbitrary system".
//
// System: a two-tier web service. Requests of two classes arrive at rates
// lambda = (l1, l2). The frontend's CPU time per request grows linearly;
// the database's time grows quadratically in total load (lock contention),
// so its boundary is a curve, not a hyperplane — exactly the convex case
// the paper's Section 3.2 closing paragraph discusses.
//
//   Step 1 (features + bounds): frontend time <= 40 ms, database time
//           <= 60 ms, end-to-end time <= 85 ms.
//   Step 2 (perturbation):      lambda, operating point (50, 30) req/s.
//   Step 3 (impact):            T_fe = 0.2 l1 + 0.3 l2
//                               T_db = 0.004 (l1 + l2)^2 + 0.1 l2
//                               T_e2e = T_fe + T_db
//   Step 4 (analysis):          robustness radii via the KKT-Newton convex
//                               solver, cross-checked by ray search and the
//                               Monte-Carlo oracle, then validated by
//                               sampling.
//
// Run: ./custom_fepia
#include <iostream>
#include <span>

#include "robust/core/fepia.hpp"
#include "robust/core/validation.hpp"
#include "robust/util/table.hpp"

int main() {
  using namespace robust;

  // Step 3: impact functions (with an analytic gradient for the database).
  auto dbTime = [](std::span<const double> l) {
    const double total = l[0] + l[1];
    return 0.004 * total * total + 0.1 * l[1];
  };
  auto dbGradient = [](std::span<const double> l) {
    const double total = l[0] + l[1];
    return num::Vec{0.008 * total, 0.008 * total + 0.1};
  };
  auto e2eTime = [dbTime](std::span<const double> l) {
    return 0.2 * l[0] + 0.3 * l[1] + dbTime(l);
  };

  auto build = [&](core::AnalyzerOptions options) {
    return core::FepiaBuilder(
               "per-tier and end-to-end response times stay within SLOs "
               "despite request-rate surges")
        .perturbation("lambda (request rates)", {50.0, 30.0},
                      /*discrete=*/false, "requests per second")
        .affineFeature("T_frontend", {0.2, 0.3}, 0.0,
                       core::ToleranceBounds::atMost(40.0))
        .feature("T_database",
                 core::ImpactFunction::callable(dbTime, dbGradient),
                 core::ToleranceBounds::atMost(60.0))
        .feature("T_end_to_end", core::ImpactFunction::callable(e2eTime),
                 core::ToleranceBounds::atMost(85.0))
        .options(options)
        .build();
  };

  // Step 4 with three independent solvers.
  TablePrinter table({"solver", "rho", "binding feature", "lambda*"});
  for (const auto solver :
       {core::SolverKind::Auto, core::SolverKind::RaySearch,
        core::SolverKind::MonteCarlo}) {
    core::AnalyzerOptions options;
    options.solver = solver;
    options.solverOptions.samples = 20000;  // tighten the MC oracle
    const auto analyzer = build(options);
    const auto report = analyzer.analyze();
    const auto& binding = report.radii[report.bindingFeature];
    std::string lambdaStar = "(";
    lambdaStar += formatDouble(binding.boundaryPoint[0]);
    lambdaStar += ", ";
    lambdaStar += formatDouble(binding.boundaryPoint[1]);
    lambdaStar += ")";
    const char* name = solver == core::SolverKind::Auto
                           ? "auto (analytic/KKT)"
                           : (solver == core::SolverKind::RaySearch
                                  ? "ray search"
                                  : "monte carlo (upper bound)");
    table.addRow({name, formatDouble(report.metric, 6), binding.feature,
                  lambdaStar});
  }
  table.print(std::cout);

  // Norm ablation: how far can the load move under different norms?
  std::cout << "\nnorm ablation (Monte Carlo for non-Euclidean norms):\n";
  TablePrinter norms({"norm", "rho"});
  for (const auto norm :
       {core::NormKind::L1, core::NormKind::L2, core::NormKind::LInf}) {
    core::AnalyzerOptions options;
    options.norm = norm;
    options.solver = norm == core::NormKind::L2 ? core::SolverKind::Auto
                                                : core::SolverKind::MonteCarlo;
    options.solverOptions.samples = 20000;
    const auto report = build(options).analyze();
    norms.addRow({core::toString(norm), formatDouble(report.metric, 6)});
  }
  norms.print(std::cout);

  // Empirical validation of the guarantee.
  core::AnalyzerOptions options;
  const auto analyzer = build(options);
  const auto report = analyzer.analyze();
  const auto validation = core::validateRadius(analyzer, report.metric);
  std::cout << "\nvalidation: " << validation.violationsInside << "/"
            << validation.samplesInside << " violations inside rho, "
            << validation.violationsAtBoundary << "/"
            << validation.samplesAtBoundary << " just beyond rho\n";

  // Operational what-if sweep via the compile-once engine: compile the
  // derivation once, then re-evaluate rho at shifted operating points from
  // one reusable workspace (bit-identical to rebuilding the analyzer at
  // each origin, without the rebuild).
  const auto compiled =
      core::FepiaBuilder("same derivation, compiled")
          .perturbation("lambda (request rates)", {50.0, 30.0},
                        /*discrete=*/false, "requests per second")
          .affineFeature("T_frontend", {0.2, 0.3}, 0.0,
                         core::ToleranceBounds::atMost(40.0))
          .feature("T_database",
                   core::ImpactFunction::callable(dbTime, dbGradient),
                   core::ToleranceBounds::atMost(60.0))
          .feature("T_end_to_end", core::ImpactFunction::callable(e2eTime),
                   core::ToleranceBounds::atMost(85.0))
          .compile();
  std::cout << "\nrho at shifted operating points (compiled engine):\n";
  TablePrinter sweep({"lambda_orig", "rho"});
  core::EvalWorkspace workspace;
  for (const double shift : {0.0, 10.0, 20.0, 30.0}) {
    const num::Vec origin = {50.0 + shift, 30.0 + shift};
    core::AnalysisInstance query;
    query.origin = origin;
    const auto& shifted = compiled.evaluate(query, workspace);
    std::string point = "(";
    point += formatDouble(origin[0]);
    point += ", ";
    point += formatDouble(origin[1]);
    point += ")";
    sweep.addRow({std::move(point), formatDouble(shifted.metric, 6)});
  }
  sweep.print(std::cout);
  return 0;
}
