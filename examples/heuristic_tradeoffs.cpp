// Mapping-heuristic comparison on the Section 3.1 system: do mappings that
// look equally good under makespan differ in robustness?
//
// Generates the paper's ETC instance family (Gamma, mean 10, heterogeneity
// 0.7/0.7), runs the classic constructive heuristics (OLB, MET, MCT,
// Min-Min, Max-Min, Sufferage, ...), then optimizes mappings directly for
// the robustness metric with local search / simulated annealing / a genetic
// algorithm — demonstrating robustness-aware resource allocation, the use
// case the paper's metric enables.
//
// Run: ./heuristic_tradeoffs [--seed N] [--apps N] [--machines N] [--tau X]
#include <iostream>

#include "robust/scheduling/heuristics.hpp"
#include "robust/scheduling/independent_system.hpp"
#include "robust/util/args.hpp"
#include "robust/util/table.hpp"

namespace {

void report(robust::TablePrinter& table, const std::string& name,
            const robust::sched::EtcMatrix& etc,
            const robust::sched::Mapping& mapping, double tau) {
  using namespace robust;
  const sched::IndependentTaskSystem system(etc, mapping, tau);
  const auto analysis = system.analyze();
  table.addRow({name, formatDouble(analysis.predictedMakespan),
                formatDouble(sched::loadBalanceIndex(etc, mapping)),
                formatDouble(analysis.robustness)});
}

}  // namespace

int main(int argc, char** argv) {
  using namespace robust;
  const ArgParser args(argc, argv);
  const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 42));
  const double tau = args.getDouble("tau", 1.2);

  sched::EtcOptions etcOptions;
  etcOptions.apps = static_cast<std::size_t>(args.getInt("apps", 20));
  etcOptions.machines = static_cast<std::size_t>(args.getInt("machines", 5));
  Pcg32 rng(seed);
  const sched::EtcMatrix etc = sched::generateEtc(etcOptions, rng);

  std::cout << "instance: " << etcOptions.apps << " applications, "
            << etcOptions.machines << " machines, tau = " << tau << "\n\n";

  TablePrinter table(
      {"heuristic", "makespan", "load balance", "robustness rho"});

  for (const auto& entry : sched::constructiveHeuristics()) {
    report(table, entry.name, etc, entry.build(etc), tau);
  }
  report(table, "greedy-robust", etc, sched::greedyRobustMapping(etc, tau),
         tau);

  // Iterative improvement: classic makespan minimization vs robustness
  // maximization under a 15% makespan cap (unconstrained robustness
  // maximization degenerates — see cappedRobustnessObjective's docs).
  // The EtcObjective forms route local search / annealing / the GA through
  // the incremental evaluation engine; results are bit-identical to the
  // generic-closure path, just cheaper per candidate.
  const auto makespanObj = sched::EtcObjective::makespan();
  const sched::Mapping seedMapping = sched::mctMapping(etc);
  const double cap =
      1.15 * sched::makespan(etc, sched::minMinMapping(etc));
  const auto robustObj = sched::EtcObjective::cappedRobustness(tau, cap);

  report(table, "local-search(makespan)", etc,
         sched::localSearch(etc, seedMapping, makespanObj), tau);
  report(table, "local-search(robust|cap)", etc,
         sched::localSearch(etc, seedMapping, robustObj), tau);

  sched::AnnealingOptions annealing;
  annealing.seed = seed;
  report(table, "annealing(makespan)", etc,
         sched::simulatedAnnealing(etc, seedMapping, makespanObj, annealing),
         tau);
  report(table, "annealing(robust|cap)", etc,
         sched::simulatedAnnealing(etc, seedMapping, robustObj, annealing),
         tau);

  report(table, "tabu(makespan)", etc,
         sched::tabuSearch(etc, seedMapping, makespanObj.generic(etc)), tau);
  report(table, "tabu(robust|cap)", etc,
         sched::tabuSearch(etc, seedMapping, robustObj.generic(etc)), tau);

  sched::GeneticOptions genetic;
  genetic.seed = seed;
  report(table, "genetic(makespan)", etc,
         sched::geneticAlgorithm(etc, seedMapping, makespanObj, genetic), tau);
  report(table, "genetic(robust|cap)", etc,
         sched::geneticAlgorithm(etc, seedMapping, robustObj, genetic), tau);

  table.print(std::cout);
  std::cout << "\nmakespan cap for the robust|cap rows: " << formatDouble(cap)
            << " (1.15x the min-min makespan).\nRobustness-aware search finds "
               "mappings meeting the cap with a larger robustness\nradius "
               "than any makespan-optimized mapping — the paper's point that "
               "makespan\nalone cannot distinguish robust mappings from "
               "fragile ones.\n";
  return 0;
}
