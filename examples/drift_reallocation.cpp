// Online drift with deterministic re-allocation: the curve::DriftTracker
// watching a live schedule (DESIGN.md section 4.15).
//
// A min-min mapping is compiled once; its robustness radius rho0 anchors a
// drift threshold at --threshold_frac * rho0. Actual execution times then
// drift as a seeded upward-biased multiplicative random walk — one
// component update at a time, streamed through DriftTracker::applyUpdate
// (O(machines) each, never a full re-analysis). The moment rho crosses
// below the threshold, the example re-triggers localSearch on the DRIFTED
// ETC (each application's row scaled by its observed slowdown), re-compiles
// the chosen mapping, re-anchors the tracker, and keeps streaming.
//
// Everything is seeded, so the crossing updates, the re-allocations, and
// the final summary are deterministic for a fixed --seed. The example
// exits 1 if no crossing fires, if a re-allocation fails to lift rho back
// over its threshold, or if the tracker's Lipschitz bracket
// rhoLowerBound() <= rho() <= rhoUpperBound() is ever violated.
//
// Run: ./drift_reallocation [--seed 7] [--apps 24] [--machines 6]
//                           [--tau 1.2] [--updates 100000]
//                           [--threshold_frac 0.5]
#include <cstdint>
#include <iostream>
#include <memory>
#include <vector>

#include "robust/core/compiled.hpp"
#include "robust/curve/curve.hpp"
#include "robust/curve/drift.hpp"
#include "robust/scheduling/heuristics.hpp"
#include "robust/scheduling/independent_system.hpp"
#include "robust/util/args.hpp"
#include "robust/util/rng.hpp"

namespace {

using namespace robust;

/// Substream family for the drift walk (disjoint from curve sampling).
constexpr std::uint64_t kDriftWalkFamily = 0x64726674;  // "drft"

struct Lane {
  sched::EtcMatrix etc;
  sched::Mapping mapping;
  std::unique_ptr<core::CompiledProblem> compiled;
  std::unique_ptr<curve::DriftTracker> tracker;
  std::vector<double> estimated;   ///< anchor C_orig per app
  std::vector<double> anchorSlow;  ///< per-app slowdown folded into `etc`
};

/// Compiles `mapping` over `etc` and anchors a fresh tracker at
/// threshold_frac * its rho.
Lane makeLane(sched::EtcMatrix etc, sched::Mapping mapping, double tau,
              double thresholdFrac, std::vector<double> anchorSlow) {
  sched::IndependentTaskSystem system(etc, mapping, tau);
  auto compiled =
      std::make_unique<core::CompiledProblem>(system.compile());
  const double rho0 = compiled->evaluateMetric().metric;
  auto tracker = std::make_unique<curve::DriftTracker>(
      *compiled, thresholdFrac * rho0);
  std::vector<double> estimated = system.estimatedTimes();
  return Lane{std::move(etc),      std::move(mapping),
              std::move(compiled), std::move(tracker),
              std::move(estimated), std::move(anchorSlow)};
}

}  // namespace

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 7));
  const auto updates =
      static_cast<std::uint64_t>(args.getInt("updates", 100000));
  const double tau = args.getDouble("tau", 1.2);
  const double thresholdFrac = args.getDouble("threshold_frac", 0.5);

  sched::EtcOptions etcOptions;
  etcOptions.apps = static_cast<std::size_t>(args.getInt("apps", 24));
  etcOptions.machines =
      static_cast<std::size_t>(args.getInt("machines", 6));
  Pcg32 etcRng(seed);
  sched::EtcMatrix etc = sched::generateEtc(etcOptions, etcRng);
  sched::Mapping mapping = sched::minMinMapping(etc);

  std::vector<Lane> lanes;  // every lane stays alive (tracker -> compiled)
  lanes.push_back(makeLane(std::move(etc), std::move(mapping), tau,
                           thresholdFrac,
                           std::vector<double>(etcOptions.apps, 1.0)));
  std::cout << "min-min on " << etcOptions.apps << "x" << etcOptions.machines
            << ": makespan "
            << sched::makespan(lanes.back().etc, lanes.back().mapping)
            << ", rho0 " << lanes.back().tracker->anchorRho()
            << ", threshold " << lanes.back().tracker->threshold() << '\n';

  // The reference degradation curve at the anchor: what the tracker's
  // running rho floors while the operating point drifts.
  {
    curve::CurveOptions curveOptions;
    curveOptions.samples = 20000;
    curveOptions.seed = seed;
    curveOptions.useCache = false;
    const curve::CurveResult ref =
        curve::computeCurve(*lanes.back().compiled, curveOptions);
    std::cout << "anchor curve: P(violation | rho) = "
              << ref.probabilityAt(ref.rho) << ", median critical radius "
              << ref.radiusAtProbability(0.5) << " (" << ref.samples
              << " samples)\n";
  }

  Pcg32 walk = makeStream(seed, kDriftWalkFamily, 0);
  // Regime shift: each application's true time random-walks toward its own
  // hidden target slowdown (mostly slower, some faster). Heterogeneous
  // targets change the RELATIVE structure of the ETC, so re-allocation has
  // real work to do; the mean-reverting walk keeps the system bounded, so
  // after a re-anchoring the stream settles instead of cascading.
  std::vector<double> slow(etcOptions.apps, 1.0);
  std::vector<double> targetSlow(etcOptions.apps);
  for (double& t : targetSlow) {
    t = walk.uniform(0.8, 2.4);
  }
  std::uint64_t crossings = 0;
  std::uint64_t streamed = 0;
  const std::uint64_t rebaseEvery = 50000;
  for (std::uint64_t step = 0; step < updates; ++step) {
    Lane& lane = lanes.back();
    const auto app = static_cast<std::size_t>(
        walk.nextBounded(static_cast<std::uint32_t>(etcOptions.apps)));
    slow[app] += 0.002 * (targetSlow[app] - slow[app]) *
                 walk.uniform(0.5, 1.5);
    const double actual =
        lane.estimated[app] * slow[app] / lane.anchorSlow[app];
    const curve::DriftStatus status = lane.tracker->applyUpdate(app, actual);
    ++streamed;
    if (streamed % rebaseEvery == 0) {
      lane.tracker->rebase();  // flush incremental rounding
    }
    if (lane.tracker->rhoLowerBound() > lane.tracker->rho() ||
        lane.tracker->rho() > lane.tracker->rhoUpperBound()) {
      std::cerr << "FAIL: Lipschitz bracket violated at update " << step
                << '\n';
      return 1;
    }
    if (!status.crossedBelow) {
      continue;
    }

    // ---- threshold crossing: re-trigger the mapping search ------------
    ++crossings;
    const double rhoAtCrossing = status.rho;
    // Fold the observed per-app slowdowns back into the ETC estimates.
    sched::EtcMatrix drifted(etcOptions.apps, etcOptions.machines);
    for (std::size_t i = 0; i < etcOptions.apps; ++i) {
      const double slowdown = slow[i] / lane.anchorSlow[i];
      for (std::size_t m = 0; m < etcOptions.machines; ++m) {
        drifted(i, m) = lane.etc(i, m) * slowdown;
      }
    }
    const double capBase = sched::makespan(drifted, lane.mapping);
    sched::Mapping searched = sched::localSearch(
        drifted, lane.mapping,
        sched::EtcObjective::cappedRobustness(tau, 1.05 * capBase));
    std::size_t moved = 0;
    for (std::size_t i = 0; i < etcOptions.apps; ++i) {
      moved += searched.machineOf(i) != lane.mapping.machineOf(i) ? 1u : 0u;
    }
    lanes.push_back(makeLane(std::move(drifted), std::move(searched), tau,
                             thresholdFrac, slow));
    const Lane& next = lanes.back();
    std::cout << "crossing " << crossings << " at update " << (step + 1)
              << ": rho " << rhoAtCrossing << " < threshold "
              << lanes[lanes.size() - 2].tracker->threshold()
              << " -> localSearch moved " << moved << " apps, makespan "
              << sched::makespan(next.etc, next.mapping) << ", rho re-anchored "
              << next.tracker->anchorRho() << '\n';
    if (next.tracker->rho() < next.tracker->threshold()) {
      std::cerr << "FAIL: re-allocation left rho below its own threshold\n";
      return 1;
    }
  }

  std::uint64_t trackedUpdates = 0;
  for (const Lane& lane : lanes) {
    trackedUpdates += lane.tracker->updates();
  }
  std::cout << "streamed " << streamed << " updates across " << lanes.size()
            << " allocation epochs (" << crossings
            << " crossings); drift distance in final epoch "
            << lanes.back().tracker->driftDistance() << '\n';
  if (crossings == 0) {
    std::cerr << "FAIL: the drift walk never crossed the threshold\n";
    return 1;
  }
  if (trackedUpdates != streamed) {
    std::cerr << "FAIL: trackers account for " << trackedUpdates << " of "
              << streamed << " updates\n";
    return 1;
  }
  std::cout << "OK\n";
  return 0;
}
