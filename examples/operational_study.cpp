// Operational robustness study: from geometric guarantee to realized
// schedules.
//
// Takes one mapping, computes its robustness radius, then (a) replays the
// adversarial worst-case perturbation at, below, and beyond the radius, and
// (b) Monte-Carlo executes the mapping under a stochastic error model,
// reporting how often reality violates the makespan requirement at each
// error magnitude. Demonstrates the sim:: substrate.
//
// Run: ./operational_study [--seed N] [--tau X] [--trials N]
#include <iostream>

#include "robust/scheduling/heuristics.hpp"
#include "robust/sim/study.hpp"
#include "robust/util/args.hpp"
#include "robust/util/table.hpp"

int main(int argc, char** argv) {
  using namespace robust;
  const ArgParser args(argc, argv);
  const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 7));
  const double tau = args.getDouble("tau", 1.2);

  sched::EtcOptions etcOptions;
  Pcg32 rng(seed);
  const auto etc = sched::generateEtc(etcOptions, rng);
  const auto mapping = sched::sufferageMapping(etc);
  const sched::IndependentTaskSystem system(etc, mapping, tau);
  const auto analysis = system.analyze();
  const double bound = tau * analysis.predictedMakespan;

  std::cout << "mapping: sufferage on a " << etcOptions.apps << "x"
            << etcOptions.machines << " instance\n";
  std::cout << "predicted makespan " << formatDouble(analysis.predictedMakespan)
            << ", requirement M <= " << formatDouble(bound)
            << ", rho = " << formatDouble(analysis.robustness) << "\n\n";

  // (a) Adversarial replay around the radius.
  std::cout << "adversarial worst-case replay (errors aimed at the binding "
               "machine):\n";
  TablePrinter adversarial({"||error||", "realized makespan", "violated?"});
  for (double scale : {0.5, 0.9, 1.0, 1.1, 2.0}) {
    sim::ExecutionInput input;
    input.actualTimes =
        sim::worstCasePerturbation(system, scale * analysis.robustness);
    const auto run = sim::execute(mapping, input);
    adversarial.addRow({formatDouble(scale * analysis.robustness, 5),
                        formatDouble(run.makespan, 6),
                        run.makespan > bound + 1e-12 ? "VIOLATED" : "ok"});
  }
  adversarial.print(std::cout);

  // (b) Stochastic study.
  sim::StudyOptions options;
  options.trials = static_cast<int>(args.getInt("trials", 2000));
  options.seed = seed;
  options.model = sim::ErrorModel::GaussianRelative;
  const auto points = sim::runMakespanStudy(system, options);
  std::cout << "\nstochastic study (" << sim::toString(options.model) << ", "
            << options.trials << " trials per magnitude):\n";
  TablePrinter stochastic({"rel. error", "mean ||err||/rho",
                           "violation rate", "p95 M/M_orig",
                           "covered violations"});
  for (const auto& p : points) {
    stochastic.addRow({formatDouble(p.magnitude),
                       formatDouble(p.meanErrorNorm, 3),
                       formatDouble(p.violationRate, 3),
                       formatDouble(p.p95MakespanRatio, 4),
                       std::to_string(p.coveredViolations)});
  }
  stochastic.print(std::cout);
  std::cout << "\nthe worst case trips the requirement exactly at rho; "
               "random errors of the same\nsize almost never do — the gap "
               "is what a worst-case metric buys: certainty.\n";
  return 0;
}
