// Command-line robustness analyzer: the adoption path for existing data.
//
// Modes:
//   (1) Independent-task analysis from an ETC CSV file:
//       ./robustness_cli --etc matrix.csv --mapping 0,1,2,0,1 --tau 1.2
//       (omit --mapping to analyze every constructive heuristic's mapping)
//   (2) HiPer-D analysis from a saved scenario file:
//       ./robustness_cli --scenario system.hsc [--mapping-seed N]
//   (3) No arguments: generates a demo ETC matrix, writes it to
//       demo_etc.csv, and analyzes it — a template for one's own data.
#include <fstream>
#include <iostream>
#include <sstream>

#include "robust/core/report_io.hpp"
#include "robust/core/sensitivity.hpp"
#include "robust/hiperd/scenario_io.hpp"
#include "robust/scheduling/etc_io.hpp"
#include "robust/scheduling/experiment.hpp"
#include "robust/scheduling/heuristics.hpp"
#include "robust/util/args.hpp"
#include "robust/util/error.hpp"
#include "robust/util/table.hpp"

namespace {

using namespace robust;

/// Parses "0,1,2,0" into an assignment vector.
std::vector<std::size_t> parseMapping(const std::string& text) {
  std::vector<std::size_t> assignment;
  std::stringstream stream(text);
  std::string cell;
  while (std::getline(stream, cell, ',')) {
    ROBUST_REQUIRE(!cell.empty(), "mapping: empty entry");
    char* end = nullptr;
    const long v = std::strtol(cell.c_str(), &end, 10);
    ROBUST_REQUIRE(end != cell.c_str() && *end == '\0' && v >= 0,
                   "mapping: entry '" + cell +
                       "' is not a non-negative integer");
    assignment.push_back(static_cast<std::size_t>(v));
  }
  ROBUST_REQUIRE(!assignment.empty(), "mapping: empty");
  return assignment;
}

void analyzeOne(const sched::EtcMatrix& etc, const sched::Mapping& mapping,
                double tau, const std::string& label) {
  const sched::IndependentTaskSystem system(etc, mapping, tau);
  const auto analysis = system.analyze();
  std::cout << label << ": makespan " << formatDouble(analysis.predictedMakespan)
            << ", load balance "
            << formatDouble(sched::loadBalanceIndex(etc, mapping))
            << ", robustness rho = " << formatDouble(analysis.robustness)
            << " (binding machine m" << analysis.bindingMachine << ")\n";
}

int runEtcMode(const ArgParser& args) {
  const std::string path = args.getString("etc", "");
  std::ifstream file(path);
  ROBUST_REQUIRE(file.good(), "cannot open ETC file '" + path + "'");
  const sched::EtcMatrix etc = sched::loadEtcCsv(file);
  const double tau = args.getDouble("tau", 1.2);
  std::cout << "ETC instance: " << etc.apps() << " applications x "
            << etc.machines() << " machines, tau = " << tau << "\n\n";

  const std::string mappingText = args.getString("mapping", "");
  if (!mappingText.empty()) {
    const sched::Mapping mapping(parseMapping(mappingText), etc.machines());
    ROBUST_REQUIRE(mapping.apps() == etc.apps(),
                   "mapping length does not match the application count");
    analyzeOne(etc, mapping, tau, "given mapping");
    const sched::IndependentTaskSystem system(etc, mapping, tau);
    const auto cStar = system.criticalPoint();
    std::cout << "critical execution times C* (the smallest-error violation "
                 "direction):\n  ";
    for (std::size_t i = 0; i < cStar.size(); ++i) {
      std::cout << formatDouble(cStar[i], 5)
                << (i + 1 < cStar.size() ? ", " : "\n");
    }
    return 0;
  }
  for (const auto& entry : sched::constructiveHeuristics()) {
    analyzeOne(etc, entry.build(etc), tau, entry.name);
  }
  analyzeOne(etc, sched::greedyRobustMapping(etc, tau), tau, "greedy-robust");
  return 0;
}

int runScenarioMode(const ArgParser& args) {
  const std::string path = args.getString("scenario", "");
  std::ifstream file(path);
  ROBUST_REQUIRE(file.good(), "cannot open scenario file '" + path + "'");
  const hiperd::HiperdScenario scenario = hiperd::loadScenario(file);
  std::cout << "scenario: " << scenario.graph.applicationCount()
            << " applications, " << scenario.graph.sensorCount()
            << " sensors, " << scenario.graph.paths().size() << " paths, "
            << scenario.machines << " machines\n";

  Pcg32 rng(static_cast<std::uint64_t>(args.getInt("mapping-seed", 1)));
  const auto mapping = sched::randomMapping(
      scenario.graph.applicationCount(), scenario.machines, rng);
  const hiperd::HiperdSystem system(scenario, mapping);
  const auto analyzer = system.toAnalyzer();
  const auto report = analyzer.analyze();
  std::cout << "random mapping (seed " << args.getInt("mapping-seed", 1)
            << "): slack " << formatDouble(system.slack()) << "\n\n";
  core::printReport(std::cout, report, analyzer.parameter());
  const auto sensitivity =
      core::bindingSensitivity(report, analyzer.parameter());
  std::cout << "most critical sensor: "
            << scenario.graph.sensorName(sensitivity.ranking[0])
            << " (critical direction "
            << formatDouble(sensitivity.direction[sensitivity.ranking[0]], 4)
            << ")\n";
  return 0;
}

int runDemoMode() {
  sched::EtcOptions options;
  Pcg32 rng(1);
  const sched::EtcMatrix etc = sched::generateEtc(options, rng);
  {
    std::ofstream out("demo_etc.csv");
    sched::saveEtcCsv(etc, out);
  }
  std::cout << "wrote demo_etc.csv (" << options.apps << "x"
            << options.machines << " CVB instance); analyzing it:\n\n";
  for (const auto& entry : sched::constructiveHeuristics()) {
    analyzeOne(etc, entry.build(etc), 1.2, entry.name);
  }
  std::cout << "\nre-run with --etc demo_etc.csv --mapping 0,1,... to "
               "analyze your own mapping.\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const ArgParser args(argc, argv);
    if (args.has("etc")) {
      return runEtcMode(args);
    }
    if (args.has("scenario")) {
      return runScenarioMode(args);
    }
    return runDemoMode();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
