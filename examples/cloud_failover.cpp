// Replicated cloud allocation under the generalized FePIA model: memory
// constraints reject an overcommitted greedy placement, and replication-aware
// local search trades a little makespan for machine-failure tolerance. Writes
// a robust::obs run report (counters + the failure-radius gauge) to stdout.
//
// Usage: cloud_failover [tasks machines replication seed]
#include <cstdlib>
#include <iostream>

#include "robust/core/report_io.hpp"
#include "robust/obs/metrics.hpp"
#include "robust/obs/report.hpp"
#include "robust/scheduling/cloud_system.hpp"
#include "robust/util/rng.hpp"

int main(int argc, char** argv) {
  using namespace robust;

  const std::size_t tasks = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 8;
  const std::size_t machines =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 5;
  const std::size_t replication =
      argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 2;
  const std::uint64_t seed =
      argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 42;

  obs::setEnabled(true);

  // Inconsistent-heterogeneity ETC, memory sized so the greedy placement
  // (which ignores memory entirely) overcommits the fastest machines.
  Pcg32 rng(seed, 1);
  sched::EtcMatrix etc(tasks, machines);
  for (std::size_t t = 0; t < tasks; ++t) {
    for (std::size_t j = 0; j < machines; ++j) {
      etc(t, j) = rng.uniform(5.0, 50.0);
    }
  }
  num::Vec memDemand(tasks);
  for (std::size_t t = 0; t < tasks; ++t) {
    memDemand[t] = rng.uniform(1.0, 4.0);
  }
  // Tight: total capacity only modestly exceeds total replicated demand.
  double totalDemand = 0.0;
  for (double d : memDemand) {
    totalDemand += d * static_cast<double>(replication);
  }
  num::Vec memCapacity(machines, 1.2 * totalDemand /
                                     static_cast<double>(machines));

  sched::CloudSystem cloud(sched::CloudScenario{
      std::move(etc), std::move(memDemand), std::move(memCapacity),
      replication, /*tau=*/1.3});

  const sched::Mapping greedy = cloud.greedyMapping();
  std::cout << "greedy (memory-oblivious): feasible="
            << (cloud.isFeasible(greedy) ? "yes" : "no")
            << " overcommit=" << cloud.memoryViolation(greedy)
            << " failure radius=" << cloud.failureRadius(greedy) << "\n";
  const core::RobustnessReport greedyReport = cloud.analyze(greedy);
  if (greedyReport.infeasibleOrigin) {
    std::cout << "greedy rejected: origin violates a memory constraint "
                 "(rho = 0)\n";
  }

  const sched::Mapping improved = cloud.improve(greedy);
  const core::RobustnessReport report = cloud.analyze(improved);
  std::cout << "\nafter replication-aware local search: feasible="
            << (cloud.isFeasible(improved) ? "yes" : "no")
            << " failure radius=" << cloud.failureRadius(improved)
            << " makespan=" << cloud.predictedMakespan(improved) << "\n";
  std::cout << "constrained robustness metric rho = " << report.metric
            << "\n\n";

  obs::RunReport run;
  run.tool = "cloud_failover";
  run.info.emplace_back("tasks", std::to_string(tasks));
  run.info.emplace_back("machines", std::to_string(machines));
  run.info.emplace_back("replication", std::to_string(replication));
  run.benchmarks.push_back(obs::BenchResult{
      "failure_radius", static_cast<double>(cloud.failureRadius(improved)),
      "machines"});
  run.benchmarks.push_back(
      obs::BenchResult{"rho_constrained", report.metric, "seconds"});
  obs::writeRunReport(std::cout, run);
  return 0;
}
