// Quickstart: the paper's Section 3.1 makespan example on a toy instance.
//
// Builds a 4-application / 2-machine system, computes every robustness
// radius with the Eq. 6 closed form, cross-checks against the generic FePIA
// analyzer, and empirically validates the metric's guarantee by sampling.
//
// Run: ./quickstart
#include <iostream>

#include "robust/core/validation.hpp"
#include "robust/scheduling/independent_system.hpp"
#include "robust/util/table.hpp"

int main() {
  using namespace robust;

  // ETC matrix: estimated time of each application on each machine.
  sched::EtcMatrix etc(/*apps=*/4, /*machines=*/2);
  etc(0, 0) = 4.0;  etc(0, 1) = 8.0;
  etc(1, 0) = 3.0;  etc(1, 1) = 5.0;
  etc(2, 0) = 6.0;  etc(2, 1) = 2.0;
  etc(3, 0) = 5.0;  etc(3, 1) = 4.0;

  // A mapping: applications 0 and 1 on machine 0, applications 2 and 3 on
  // machine 1. Finishing times: F_0 = 4 + 3 = 7, F_1 = 2 + 4 = 6, so the
  // predicted makespan M_orig = 7.
  sched::Mapping mapping({0, 0, 1, 1}, /*machines=*/2);

  // Robustness requirement: the actual makespan may exceed the predicted
  // one by at most 20% (tau = 1.2), whatever the ETC estimation errors.
  const double tau = 1.2;
  sched::IndependentTaskSystem system(etc, mapping, tau);

  const auto analysis = system.analyze();
  std::cout << "predicted makespan : " << analysis.predictedMakespan << "\n";
  std::cout << "tolerated makespan : " << tau * analysis.predictedMakespan
            << "\n\n";

  TablePrinter radiiTable({"machine", "finish time", "radius (Eq. 6)"});
  const auto finish = system.finishing();
  for (std::size_t j = 0; j < finish.size(); ++j) {
    radiiTable.addRow({std::to_string(j), formatDouble(finish[j]),
                       formatDouble(analysis.radii[j])});
  }
  radiiTable.print(std::cout);

  std::cout << "\nrobustness metric rho = " << analysis.robustness
            << " seconds (binding machine: m" << analysis.bindingMachine
            << ")\n";
  std::cout << "interpretation: any vector of ETC errors with Euclidean norm"
            << " <= " << formatDouble(analysis.robustness)
            << " keeps the makespan within " << 100.0 * tau
            << "% of its prediction.\n\n";

  // The same derivation through the generic FePIA analyzer.
  const auto analyzer = system.toAnalyzer();
  const auto report = analyzer.analyze();
  std::cout << "generic FePIA analyzer metric = " << report.metric
            << " (binding feature: "
            << report.radii[report.bindingFeature].feature << ")\n";

  // And through the compile-once engine (what repeated analysis should use;
  // reports are bit-identical to the analyzer's).
  const auto compiled = system.compile();
  std::cout << "compiled engine metric        = "
            << compiled.evaluate().metric << " (identical by construction)\n";

  // Empirical check of the guarantee: sample ETC error vectors inside the
  // radius (expect zero violations) and just beyond it (expect some).
  const auto validation = core::validateRadius(analyzer, report.metric);
  std::cout << "sampled " << validation.samplesInside
            << " error vectors inside the radius: "
            << validation.violationsInside << " violations\n";
  std::cout << "sampled " << validation.samplesAtBoundary
            << " error vectors 5% beyond the radius: "
            << validation.violationsAtBoundary << " violations\n";
  return 0;
}
