// HiPer-D robustness analysis (the paper's Section 3.2 derivation).
//
// Generates a Section 4.3-style scenario (20 applications, 5 machines,
// 3 sensors, 3 actuators, 19 paths), evaluates one mapping's QoS
// constraints, slack and robustness metric, reports the critical sensor
// loads lambda*, and writes the DAG in Graphviz dot format.
//
// Run: ./hiperd_analysis [--seed N] [--dot out.dot] [--save-scenario f.hsc]
#include <fstream>
#include <iostream>

#include "robust/core/validation.hpp"
#include "robust/hiperd/compiled_scenario.hpp"
#include "robust/hiperd/generator.hpp"
#include "robust/hiperd/pipeline_sim.hpp"
#include "robust/hiperd/scenario_io.hpp"
#include "robust/hiperd/slowdown.hpp"
#include "robust/util/args.hpp"
#include "robust/util/table.hpp"

int main(int argc, char** argv) {
  using namespace robust;
  const ArgParser args(argc, argv);
  const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 2003));

  hiperd::ScenarioOptions options;  // defaults = the paper's Section 4.3
  const auto generated = hiperd::generateScenario(options, seed);
  const hiperd::HiperdScenario& scenario = generated.scenario;

  std::cout << "scenario: " << scenario.graph.applicationCount()
            << " applications, " << scenario.graph.sensorCount()
            << " sensors, " << scenario.graph.actuatorCount()
            << " actuators, " << scenario.graph.paths().size() << " paths ("
            << (generated.exactPathCount ? "exact" : "closest") << " after "
            << generated.dagAttempts << " DAG draws)\n";
  std::cout << "initial sensor loads lambda_orig = (";
  for (std::size_t z = 0; z < scenario.lambdaOrig.size(); ++z) {
    std::cout << scenario.lambdaOrig[z]
              << (z + 1 < scenario.lambdaOrig.size() ? ", " : ")\n\n");
  }

  // Evaluate one mapping (a fixed random draw).
  Pcg32 rng(seed, /*stream=*/99);
  const sched::Mapping mapping = sched::randomMapping(
      scenario.graph.applicationCount(), scenario.machines, rng);
  const hiperd::HiperdSystem system(scenario, mapping);

  // QoS constraints at the operating point.
  TablePrinter table({"constraint", "value", "limit", "utilization"});
  int shown = 0;
  for (const auto& c : system.constraints()) {
    if (++shown > 12) {
      table.addRow({"...", "", "", ""});
      break;
    }
    table.addRow({c.name, formatDouble(c.value), formatDouble(c.limit),
                  formatDouble(c.fraction())});
  }
  table.print(std::cout);

  std::cout << "\nsystem-wide percentage slack = "
            << formatDouble(system.slack()) << "\n";

  const auto report = system.analyze();
  const auto& binding = report.radii[report.bindingFeature];
  std::cout << "robustness metric rho = " << report.metric
            << " objects per data set (floored: "
            << (report.floored ? "yes" : "no") << ")\n";
  std::cout << "binding constraint: " << binding.feature << " via "
            << binding.method << "\n";
  std::cout << "critical sensor loads lambda* = (";
  for (std::size_t z = 0; z < binding.boundaryPoint.size(); ++z) {
    std::cout << formatDouble(binding.boundaryPoint[z])
              << (z + 1 < binding.boundaryPoint.size() ? ", " : ")\n");
  }
  std::cout << "interpretation: any combination of sensor-load increases "
               "with Euclidean norm <= "
            << report.metric
            << " causes no latency or throughput violation.\n";

  // Screening many candidate mappings: compile the scenario once, then
  // analyze each mapping from a reusable workspace (bit-identical to the
  // per-mapping derivation above, ~5x faster — see DESIGN.md 4.7).
  const hiperd::CompiledScenario compiled = scenario.compile();
  std::vector<sched::Mapping> candidates;
  for (int c = 0; c < 8; ++c) {
    candidates.push_back(sched::randomMapping(
        scenario.graph.applicationCount(), scenario.machines, rng));
  }
  const auto screened = compiled.analyzeMappings(candidates);
  std::size_t bestCandidate = 0;
  for (std::size_t c = 1; c < screened.size(); ++c) {
    if (screened[c].metric > screened[bestCandidate].metric) {
      bestCandidate = c;
    }
  }
  std::cout << "\nscreened " << screened.size()
            << " random candidate mappings via the compiled scenario: best "
               "rho = "
            << formatDouble(screened[bestCandidate].metric)
            << " (candidate " << bestCandidate << "), this mapping's rho = "
            << formatDouble(report.metric) << "\n";

  // The multi-parameter extension: the same mapping analyzed against a
  // second perturbation parameter — per-machine slowdown factors — via the
  // machine-slowdown FePIA derivation (see robust/hiperd/slowdown.hpp).
  const auto slowdownReport = hiperd::slowdownAnalyzer(system).analyze();
  const auto& slowBinding = slowdownReport.radii[slowdownReport.bindingFeature];
  std::cout << "\nslowdown robustness (perturbation = machine slowdown "
               "factors, origin all-1):\n  rho = "
            << formatDouble(slowdownReport.metric, 4)
            << "x, binding constraint " << slowBinding.feature << "\n";
  std::cout << "  interpretation: any combination of machine slowdowns with "
               "Euclidean norm <= "
            << formatDouble(slowdownReport.metric, 4)
            << " (e.g. one machine running "
            << formatDouble(1.0 + slowdownReport.metric, 4)
            << "x slower) violates no QoS constraint.\n";

  // Empirical violation profile around the sensor-load metric.
  if (report.metric > 0.0) {
    const auto analyzer = system.toAnalyzer();
    const std::vector<double> radii = {0.5 * report.metric,
                                       1.0 * report.metric,
                                       1.5 * report.metric,
                                       2.5 * report.metric};
    core::ValidationOptions vopts;
    vopts.samples = 2000;
    const auto curve =
        core::violationProbabilityCurve(analyzer, radii, vopts);
    std::cout << "\nviolation probability vs perturbation norm "
                 "(sampled):\n";
    for (const auto& point : curve) {
      std::cout << "  ||delta|| = " << formatDouble(point.radius, 5)
                << "  ->  P(violation) = "
                << formatDouble(point.probability, 3) << "\n";
    }
  }

  // Pipeline simulation: observe the constraints empirically at the
  // operating point and at the critical loads lambda*.
  {
    const auto atOrigin = hiperd::simulatePaths(system, scenario.lambdaOrig);
    std::size_t stable = 0;
    std::size_t clean = 0;
    for (const auto& r : atOrigin) {
      stable += r.stable;
      clean += !r.latencyViolated && !r.throughputViolated;
    }
    std::cout << "\npipeline simulation at lambda_orig: " << stable << "/"
              << atOrigin.size() << " paths stable, " << clean << "/"
              << atOrigin.size() << " within QoS\n";
    if (report.metric > 0.0) {
      num::Vec beyond = binding.boundaryPoint;
      for (std::size_t z = 0; z < beyond.size(); ++z) {
        beyond[z] = scenario.lambdaOrig[z] +
                    1.02 * (beyond[z] - scenario.lambdaOrig[z]);
      }
      const auto past = hiperd::simulatePaths(system, beyond);
      std::size_t violated = 0;
      for (const auto& r : past) {
        violated += r.latencyViolated || r.throughputViolated;
      }
      std::cout << "pipeline simulation 2% beyond lambda*: " << violated
                << " path(s) violate QoS (the binding constraint becomes "
                   "observable)\n";
    }
  }

  const std::string scenarioPath = args.getString("save-scenario", "");
  if (!scenarioPath.empty()) {
    std::ofstream out(scenarioPath);
    hiperd::saveScenario(scenario, out);
    std::cout << "\nwrote scenario to " << scenarioPath
              << " (analyze later with robustness_cli --scenario)\n";
  }

  const std::string dotPath = args.getString("dot", "");
  if (!dotPath.empty()) {
    std::ofstream out(dotPath);
    scenario.graph.writeDot(out);
    std::cout << "\nwrote DAG to " << dotPath << " (render: dot -Tpng)\n";
  }
  return 0;
}
