file(REMOVE_RECURSE
  "CMakeFiles/test_hiperd_experiment.dir/test_hiperd_experiment.cpp.o"
  "CMakeFiles/test_hiperd_experiment.dir/test_hiperd_experiment.cpp.o.d"
  "test_hiperd_experiment"
  "test_hiperd_experiment.pdb"
  "test_hiperd_experiment[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hiperd_experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
