# Empty dependencies file for test_hiperd_pipeline.
# This may be replaced when dependencies are built.
