file(REMOVE_RECURSE
  "CMakeFiles/test_hiperd_pipeline.dir/test_hiperd_pipeline.cpp.o"
  "CMakeFiles/test_hiperd_pipeline.dir/test_hiperd_pipeline.cpp.o.d"
  "test_hiperd_pipeline"
  "test_hiperd_pipeline.pdb"
  "test_hiperd_pipeline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hiperd_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
