file(REMOVE_RECURSE
  "CMakeFiles/test_hiperd_io.dir/test_hiperd_io.cpp.o"
  "CMakeFiles/test_hiperd_io.dir/test_hiperd_io.cpp.o.d"
  "test_hiperd_io"
  "test_hiperd_io.pdb"
  "test_hiperd_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hiperd_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
