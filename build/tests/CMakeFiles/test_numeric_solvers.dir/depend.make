# Empty dependencies file for test_numeric_solvers.
# This may be replaced when dependencies are built.
