file(REMOVE_RECURSE
  "CMakeFiles/test_numeric_solvers.dir/test_numeric_solvers.cpp.o"
  "CMakeFiles/test_numeric_solvers.dir/test_numeric_solvers.cpp.o.d"
  "test_numeric_solvers"
  "test_numeric_solvers.pdb"
  "test_numeric_solvers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_numeric_solvers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
