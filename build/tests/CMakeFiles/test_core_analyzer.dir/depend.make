# Empty dependencies file for test_core_analyzer.
# This may be replaced when dependencies are built.
