file(REMOVE_RECURSE
  "CMakeFiles/test_core_analyzer.dir/test_core_analyzer.cpp.o"
  "CMakeFiles/test_core_analyzer.dir/test_core_analyzer.cpp.o.d"
  "test_core_analyzer"
  "test_core_analyzer.pdb"
  "test_core_analyzer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_analyzer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
