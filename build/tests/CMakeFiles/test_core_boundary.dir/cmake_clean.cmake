file(REMOVE_RECURSE
  "CMakeFiles/test_core_boundary.dir/test_core_boundary.cpp.o"
  "CMakeFiles/test_core_boundary.dir/test_core_boundary.cpp.o.d"
  "test_core_boundary"
  "test_core_boundary.pdb"
  "test_core_boundary[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_boundary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
