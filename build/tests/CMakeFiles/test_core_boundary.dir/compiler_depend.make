# Empty compiler generated dependencies file for test_core_boundary.
# This may be replaced when dependencies are built.
