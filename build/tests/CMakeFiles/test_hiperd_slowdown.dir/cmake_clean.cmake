file(REMOVE_RECURSE
  "CMakeFiles/test_hiperd_slowdown.dir/test_hiperd_slowdown.cpp.o"
  "CMakeFiles/test_hiperd_slowdown.dir/test_hiperd_slowdown.cpp.o.d"
  "test_hiperd_slowdown"
  "test_hiperd_slowdown.pdb"
  "test_hiperd_slowdown[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hiperd_slowdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
