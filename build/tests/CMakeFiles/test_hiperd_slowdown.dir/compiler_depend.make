# Empty compiler generated dependencies file for test_hiperd_slowdown.
# This may be replaced when dependencies are built.
