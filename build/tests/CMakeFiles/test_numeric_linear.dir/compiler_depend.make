# Empty compiler generated dependencies file for test_numeric_linear.
# This may be replaced when dependencies are built.
