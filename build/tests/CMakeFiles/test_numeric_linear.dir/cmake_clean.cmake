file(REMOVE_RECURSE
  "CMakeFiles/test_numeric_linear.dir/test_numeric_linear.cpp.o"
  "CMakeFiles/test_numeric_linear.dir/test_numeric_linear.cpp.o.d"
  "test_numeric_linear"
  "test_numeric_linear.pdb"
  "test_numeric_linear[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_numeric_linear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
