# Empty compiler generated dependencies file for test_sched_heuristics.
# This may be replaced when dependencies are built.
