file(REMOVE_RECURSE
  "CMakeFiles/test_sched_heuristics.dir/test_sched_heuristics.cpp.o"
  "CMakeFiles/test_sched_heuristics.dir/test_sched_heuristics.cpp.o.d"
  "test_sched_heuristics"
  "test_sched_heuristics.pdb"
  "test_sched_heuristics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sched_heuristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
