file(REMOVE_RECURSE
  "CMakeFiles/test_sched_etc.dir/test_sched_etc.cpp.o"
  "CMakeFiles/test_sched_etc.dir/test_sched_etc.cpp.o.d"
  "test_sched_etc"
  "test_sched_etc.pdb"
  "test_sched_etc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sched_etc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
