# Empty dependencies file for test_sched_etc.
# This may be replaced when dependencies are built.
