file(REMOVE_RECURSE
  "CMakeFiles/test_hiperd_system.dir/test_hiperd_system.cpp.o"
  "CMakeFiles/test_hiperd_system.dir/test_hiperd_system.cpp.o.d"
  "test_hiperd_system"
  "test_hiperd_system.pdb"
  "test_hiperd_system[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hiperd_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
