# Empty dependencies file for test_hiperd_system.
# This may be replaced when dependencies are built.
