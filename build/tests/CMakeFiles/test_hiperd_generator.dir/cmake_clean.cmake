file(REMOVE_RECURSE
  "CMakeFiles/test_hiperd_generator.dir/test_hiperd_generator.cpp.o"
  "CMakeFiles/test_hiperd_generator.dir/test_hiperd_generator.cpp.o.d"
  "test_hiperd_generator"
  "test_hiperd_generator.pdb"
  "test_hiperd_generator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hiperd_generator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
