# Empty dependencies file for test_hiperd_generator.
# This may be replaced when dependencies are built.
