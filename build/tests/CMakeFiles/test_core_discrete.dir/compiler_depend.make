# Empty compiler generated dependencies file for test_core_discrete.
# This may be replaced when dependencies are built.
