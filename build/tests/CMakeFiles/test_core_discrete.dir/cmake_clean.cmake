file(REMOVE_RECURSE
  "CMakeFiles/test_core_discrete.dir/test_core_discrete.cpp.o"
  "CMakeFiles/test_core_discrete.dir/test_core_discrete.cpp.o.d"
  "test_core_discrete"
  "test_core_discrete.pdb"
  "test_core_discrete[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_discrete.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
