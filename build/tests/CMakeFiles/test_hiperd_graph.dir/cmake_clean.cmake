file(REMOVE_RECURSE
  "CMakeFiles/test_hiperd_graph.dir/test_hiperd_graph.cpp.o"
  "CMakeFiles/test_hiperd_graph.dir/test_hiperd_graph.cpp.o.d"
  "test_hiperd_graph"
  "test_hiperd_graph.pdb"
  "test_hiperd_graph[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hiperd_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
