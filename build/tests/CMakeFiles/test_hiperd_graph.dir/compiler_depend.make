# Empty compiler generated dependencies file for test_hiperd_graph.
# This may be replaced when dependencies are built.
