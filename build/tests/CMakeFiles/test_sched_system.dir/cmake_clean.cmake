file(REMOVE_RECURSE
  "CMakeFiles/test_sched_system.dir/test_sched_system.cpp.o"
  "CMakeFiles/test_sched_system.dir/test_sched_system.cpp.o.d"
  "test_sched_system"
  "test_sched_system.pdb"
  "test_sched_system[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sched_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
