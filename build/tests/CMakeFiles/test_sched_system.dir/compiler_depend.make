# Empty compiler generated dependencies file for test_sched_system.
# This may be replaced when dependencies are built.
