# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_numeric_linear[1]_include.cmake")
include("/root/repo/build/tests/test_numeric_solvers[1]_include.cmake")
include("/root/repo/build/tests/test_core_framework[1]_include.cmake")
include("/root/repo/build/tests/test_core_analyzer[1]_include.cmake")
include("/root/repo/build/tests/test_core_discrete[1]_include.cmake")
include("/root/repo/build/tests/test_core_sensitivity[1]_include.cmake")
include("/root/repo/build/tests/test_core_properties[1]_include.cmake")
include("/root/repo/build/tests/test_core_boundary[1]_include.cmake")
include("/root/repo/build/tests/test_sched_etc[1]_include.cmake")
include("/root/repo/build/tests/test_sched_system[1]_include.cmake")
include("/root/repo/build/tests/test_sched_heuristics[1]_include.cmake")
include("/root/repo/build/tests/test_hiperd_graph[1]_include.cmake")
include("/root/repo/build/tests/test_hiperd_system[1]_include.cmake")
include("/root/repo/build/tests/test_hiperd_generator[1]_include.cmake")
include("/root/repo/build/tests/test_hiperd_slowdown[1]_include.cmake")
include("/root/repo/build/tests/test_hiperd_io[1]_include.cmake")
include("/root/repo/build/tests/test_hiperd_experiment[1]_include.cmake")
include("/root/repo/build/tests/test_hiperd_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
