file(REMOVE_RECURSE
  "CMakeFiles/hiperd_analysis.dir/hiperd_analysis.cpp.o"
  "CMakeFiles/hiperd_analysis.dir/hiperd_analysis.cpp.o.d"
  "hiperd_analysis"
  "hiperd_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hiperd_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
