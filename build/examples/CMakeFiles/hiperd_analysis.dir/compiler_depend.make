# Empty compiler generated dependencies file for hiperd_analysis.
# This may be replaced when dependencies are built.
