file(REMOVE_RECURSE
  "CMakeFiles/heuristic_tradeoffs.dir/heuristic_tradeoffs.cpp.o"
  "CMakeFiles/heuristic_tradeoffs.dir/heuristic_tradeoffs.cpp.o.d"
  "heuristic_tradeoffs"
  "heuristic_tradeoffs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heuristic_tradeoffs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
