# Empty compiler generated dependencies file for heuristic_tradeoffs.
# This may be replaced when dependencies are built.
