file(REMOVE_RECURSE
  "CMakeFiles/operational_study.dir/operational_study.cpp.o"
  "CMakeFiles/operational_study.dir/operational_study.cpp.o.d"
  "operational_study"
  "operational_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/operational_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
