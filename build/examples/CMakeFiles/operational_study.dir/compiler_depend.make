# Empty compiler generated dependencies file for operational_study.
# This may be replaced when dependencies are built.
