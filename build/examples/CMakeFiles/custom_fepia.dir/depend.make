# Empty dependencies file for custom_fepia.
# This may be replaced when dependencies are built.
