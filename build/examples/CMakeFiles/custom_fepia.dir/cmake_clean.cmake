file(REMOVE_RECURSE
  "CMakeFiles/custom_fepia.dir/custom_fepia.cpp.o"
  "CMakeFiles/custom_fepia.dir/custom_fepia.cpp.o.d"
  "custom_fepia"
  "custom_fepia.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_fepia.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
