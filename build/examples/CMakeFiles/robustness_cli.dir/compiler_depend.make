# Empty compiler generated dependencies file for robustness_cli.
# This may be replaced when dependencies are built.
