file(REMOVE_RECURSE
  "CMakeFiles/robustness_cli.dir/robustness_cli.cpp.o"
  "CMakeFiles/robustness_cli.dir/robustness_cli.cpp.o.d"
  "robustness_cli"
  "robustness_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robustness_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
