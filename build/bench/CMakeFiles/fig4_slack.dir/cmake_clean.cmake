file(REMOVE_RECURSE
  "CMakeFiles/fig4_slack.dir/fig4_slack.cpp.o"
  "CMakeFiles/fig4_slack.dir/fig4_slack.cpp.o.d"
  "fig4_slack"
  "fig4_slack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_slack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
