# Empty compiler generated dependencies file for fig4_slack.
# This may be replaced when dependencies are built.
