file(REMOVE_RECURSE
  "CMakeFiles/ablation_mapping_search.dir/ablation_mapping_search.cpp.o"
  "CMakeFiles/ablation_mapping_search.dir/ablation_mapping_search.cpp.o.d"
  "ablation_mapping_search"
  "ablation_mapping_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mapping_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
