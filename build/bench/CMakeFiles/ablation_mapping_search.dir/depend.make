# Empty dependencies file for ablation_mapping_search.
# This may be replaced when dependencies are built.
