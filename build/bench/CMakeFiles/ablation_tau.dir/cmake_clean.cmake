file(REMOVE_RECURSE
  "CMakeFiles/ablation_tau.dir/ablation_tau.cpp.o"
  "CMakeFiles/ablation_tau.dir/ablation_tau.cpp.o.d"
  "ablation_tau"
  "ablation_tau.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tau.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
