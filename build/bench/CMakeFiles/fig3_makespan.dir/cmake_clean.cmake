file(REMOVE_RECURSE
  "CMakeFiles/fig3_makespan.dir/fig3_makespan.cpp.o"
  "CMakeFiles/fig3_makespan.dir/fig3_makespan.cpp.o.d"
  "fig3_makespan"
  "fig3_makespan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_makespan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
