# Empty compiler generated dependencies file for fig3_makespan.
# This may be replaced when dependencies are built.
