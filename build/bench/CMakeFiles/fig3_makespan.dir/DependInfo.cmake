
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig3_makespan.cpp" "bench/CMakeFiles/fig3_makespan.dir/fig3_makespan.cpp.o" "gcc" "bench/CMakeFiles/fig3_makespan.dir/fig3_makespan.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hiperd/CMakeFiles/robust_hiperd.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/robust_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/scheduling/CMakeFiles/robust_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/robust_core.dir/DependInfo.cmake"
  "/root/repo/build/src/random/CMakeFiles/robust_random.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/robust_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/robust_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
