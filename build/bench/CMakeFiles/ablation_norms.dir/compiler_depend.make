# Empty compiler generated dependencies file for ablation_norms.
# This may be replaced when dependencies are built.
