file(REMOVE_RECURSE
  "CMakeFiles/ablation_norms.dir/ablation_norms.cpp.o"
  "CMakeFiles/ablation_norms.dir/ablation_norms.cpp.o.d"
  "ablation_norms"
  "ablation_norms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_norms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
