file(REMOVE_RECURSE
  "CMakeFiles/ablation_discrete.dir/ablation_discrete.cpp.o"
  "CMakeFiles/ablation_discrete.dir/ablation_discrete.cpp.o.d"
  "ablation_discrete"
  "ablation_discrete.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_discrete.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
