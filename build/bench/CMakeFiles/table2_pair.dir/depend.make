# Empty dependencies file for table2_pair.
# This may be replaced when dependencies are built.
