file(REMOVE_RECURSE
  "CMakeFiles/table2_pair.dir/table2_pair.cpp.o"
  "CMakeFiles/table2_pair.dir/table2_pair.cpp.o.d"
  "table2_pair"
  "table2_pair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_pair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
