file(REMOVE_RECURSE
  "CMakeFiles/fig2_dag.dir/fig2_dag.cpp.o"
  "CMakeFiles/fig2_dag.dir/fig2_dag.cpp.o.d"
  "fig2_dag"
  "fig2_dag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_dag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
