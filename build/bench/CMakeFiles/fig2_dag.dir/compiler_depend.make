# Empty compiler generated dependencies file for fig2_dag.
# This may be replaced when dependencies are built.
