file(REMOVE_RECURSE
  "CMakeFiles/baseline_heuristics.dir/baseline_heuristics.cpp.o"
  "CMakeFiles/baseline_heuristics.dir/baseline_heuristics.cpp.o.d"
  "baseline_heuristics"
  "baseline_heuristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_heuristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
