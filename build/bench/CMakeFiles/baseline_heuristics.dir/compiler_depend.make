# Empty compiler generated dependencies file for baseline_heuristics.
# This may be replaced when dependencies are built.
