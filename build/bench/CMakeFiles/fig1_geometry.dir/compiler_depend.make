# Empty compiler generated dependencies file for fig1_geometry.
# This may be replaced when dependencies are built.
