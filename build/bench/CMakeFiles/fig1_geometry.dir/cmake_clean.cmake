file(REMOVE_RECURSE
  "CMakeFiles/fig1_geometry.dir/fig1_geometry.cpp.o"
  "CMakeFiles/fig1_geometry.dir/fig1_geometry.cpp.o.d"
  "fig1_geometry"
  "fig1_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
