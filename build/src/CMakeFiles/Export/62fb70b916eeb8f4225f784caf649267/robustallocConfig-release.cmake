#----------------------------------------------------------------
# Generated CMake target import file for configuration "Release".
#----------------------------------------------------------------

# Commands may need to know the format version.
set(CMAKE_IMPORT_FILE_VERSION 1)

# Import target "robustalloc::robust_hiperd" for configuration "Release"
set_property(TARGET robustalloc::robust_hiperd APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(robustalloc::robust_hiperd PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/librobust_hiperd.a"
  )

list(APPEND _cmake_import_check_targets robustalloc::robust_hiperd )
list(APPEND _cmake_import_check_files_for_robustalloc::robust_hiperd "${_IMPORT_PREFIX}/lib/librobust_hiperd.a" )

# Import target "robustalloc::robust_sim" for configuration "Release"
set_property(TARGET robustalloc::robust_sim APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(robustalloc::robust_sim PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/librobust_sim.a"
  )

list(APPEND _cmake_import_check_targets robustalloc::robust_sim )
list(APPEND _cmake_import_check_files_for_robustalloc::robust_sim "${_IMPORT_PREFIX}/lib/librobust_sim.a" )

# Import target "robustalloc::robust_sched" for configuration "Release"
set_property(TARGET robustalloc::robust_sched APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(robustalloc::robust_sched PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/librobust_sched.a"
  )

list(APPEND _cmake_import_check_targets robustalloc::robust_sched )
list(APPEND _cmake_import_check_files_for_robustalloc::robust_sched "${_IMPORT_PREFIX}/lib/librobust_sched.a" )

# Import target "robustalloc::robust_core" for configuration "Release"
set_property(TARGET robustalloc::robust_core APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(robustalloc::robust_core PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/librobust_core.a"
  )

list(APPEND _cmake_import_check_targets robustalloc::robust_core )
list(APPEND _cmake_import_check_files_for_robustalloc::robust_core "${_IMPORT_PREFIX}/lib/librobust_core.a" )

# Import target "robustalloc::robust_random" for configuration "Release"
set_property(TARGET robustalloc::robust_random APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(robustalloc::robust_random PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/librobust_random.a"
  )

list(APPEND _cmake_import_check_targets robustalloc::robust_random )
list(APPEND _cmake_import_check_files_for_robustalloc::robust_random "${_IMPORT_PREFIX}/lib/librobust_random.a" )

# Import target "robustalloc::robust_numeric" for configuration "Release"
set_property(TARGET robustalloc::robust_numeric APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(robustalloc::robust_numeric PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/librobust_numeric.a"
  )

list(APPEND _cmake_import_check_targets robustalloc::robust_numeric )
list(APPEND _cmake_import_check_files_for_robustalloc::robust_numeric "${_IMPORT_PREFIX}/lib/librobust_numeric.a" )

# Import target "robustalloc::robust_util" for configuration "Release"
set_property(TARGET robustalloc::robust_util APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(robustalloc::robust_util PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/librobust_util.a"
  )

list(APPEND _cmake_import_check_targets robustalloc::robust_util )
list(APPEND _cmake_import_check_files_for_robustalloc::robust_util "${_IMPORT_PREFIX}/lib/librobust_util.a" )

# Commands beyond this point should not need to know the version.
set(CMAKE_IMPORT_FILE_VERSION)
