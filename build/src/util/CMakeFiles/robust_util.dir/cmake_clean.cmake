file(REMOVE_RECURSE
  "CMakeFiles/robust_util.dir/args.cpp.o"
  "CMakeFiles/robust_util.dir/args.cpp.o.d"
  "CMakeFiles/robust_util.dir/error.cpp.o"
  "CMakeFiles/robust_util.dir/error.cpp.o.d"
  "CMakeFiles/robust_util.dir/stats.cpp.o"
  "CMakeFiles/robust_util.dir/stats.cpp.o.d"
  "CMakeFiles/robust_util.dir/table.cpp.o"
  "CMakeFiles/robust_util.dir/table.cpp.o.d"
  "CMakeFiles/robust_util.dir/thread_pool.cpp.o"
  "CMakeFiles/robust_util.dir/thread_pool.cpp.o.d"
  "librobust_util.a"
  "librobust_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robust_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
