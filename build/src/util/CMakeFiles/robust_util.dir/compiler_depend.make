# Empty compiler generated dependencies file for robust_util.
# This may be replaced when dependencies are built.
