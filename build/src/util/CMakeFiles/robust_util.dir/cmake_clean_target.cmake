file(REMOVE_RECURSE
  "librobust_util.a"
)
