# Install script for directory: /root/repo/src

# Set the install prefix
if(NOT DEFINED CMAKE_INSTALL_PREFIX)
  set(CMAKE_INSTALL_PREFIX "/usr/local")
endif()
string(REGEX REPLACE "/$" "" CMAKE_INSTALL_PREFIX "${CMAKE_INSTALL_PREFIX}")

# Set the install configuration name.
if(NOT DEFINED CMAKE_INSTALL_CONFIG_NAME)
  if(BUILD_TYPE)
    string(REGEX REPLACE "^[^A-Za-z0-9_]+" ""
           CMAKE_INSTALL_CONFIG_NAME "${BUILD_TYPE}")
  else()
    set(CMAKE_INSTALL_CONFIG_NAME "Release")
  endif()
  message(STATUS "Install configuration: \"${CMAKE_INSTALL_CONFIG_NAME}\"")
endif()

# Set the component getting installed.
if(NOT CMAKE_INSTALL_COMPONENT)
  if(COMPONENT)
    message(STATUS "Install component: \"${COMPONENT}\"")
    set(CMAKE_INSTALL_COMPONENT "${COMPONENT}")
  else()
    set(CMAKE_INSTALL_COMPONENT)
  endif()
endif()

# Install shared libraries without execute permission?
if(NOT DEFINED CMAKE_INSTALL_SO_NO_EXE)
  set(CMAKE_INSTALL_SO_NO_EXE "1")
endif()

# Is this installation the result of a crosscompile?
if(NOT DEFINED CMAKE_CROSSCOMPILING)
  set(CMAKE_CROSSCOMPILING "FALSE")
endif()

# Set default install directory permissions.
if(NOT DEFINED CMAKE_OBJDUMP)
  set(CMAKE_OBJDUMP "/usr/bin/objdump")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/util/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/numeric/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/random/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/core/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/scheduling/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/sim/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/hiperd/cmake_install.cmake")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/hiperd/librobust_hiperd.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/sim/librobust_sim.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/scheduling/librobust_sched.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/core/librobust_core.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/random/librobust_random.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/numeric/librobust_numeric.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/util/librobust_util.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include" TYPE DIRECTORY FILES "/root/repo/include/robust")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  if(EXISTS "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/robustalloc/robustallocConfig.cmake")
    file(DIFFERENT _cmake_export_file_changed FILES
         "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/robustalloc/robustallocConfig.cmake"
         "/root/repo/build/src/CMakeFiles/Export/62fb70b916eeb8f4225f784caf649267/robustallocConfig.cmake")
    if(_cmake_export_file_changed)
      file(GLOB _cmake_old_config_files "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/robustalloc/robustallocConfig-*.cmake")
      if(_cmake_old_config_files)
        string(REPLACE ";" ", " _cmake_old_config_files_text "${_cmake_old_config_files}")
        message(STATUS "Old export file \"$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/robustalloc/robustallocConfig.cmake\" will be replaced.  Removing files [${_cmake_old_config_files_text}].")
        unset(_cmake_old_config_files_text)
        file(REMOVE ${_cmake_old_config_files})
      endif()
      unset(_cmake_old_config_files)
    endif()
    unset(_cmake_export_file_changed)
  endif()
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib/cmake/robustalloc" TYPE FILE FILES "/root/repo/build/src/CMakeFiles/Export/62fb70b916eeb8f4225f784caf649267/robustallocConfig.cmake")
  if(CMAKE_INSTALL_CONFIG_NAME MATCHES "^([Rr][Ee][Ll][Ee][Aa][Ss][Ee])$")
    file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib/cmake/robustalloc" TYPE FILE FILES "/root/repo/build/src/CMakeFiles/Export/62fb70b916eeb8f4225f784caf649267/robustallocConfig-release.cmake")
  endif()
endif()

