file(REMOVE_RECURSE
  "CMakeFiles/robust_sched.dir/etc.cpp.o"
  "CMakeFiles/robust_sched.dir/etc.cpp.o.d"
  "CMakeFiles/robust_sched.dir/etc_io.cpp.o"
  "CMakeFiles/robust_sched.dir/etc_io.cpp.o.d"
  "CMakeFiles/robust_sched.dir/experiment.cpp.o"
  "CMakeFiles/robust_sched.dir/experiment.cpp.o.d"
  "CMakeFiles/robust_sched.dir/heuristics.cpp.o"
  "CMakeFiles/robust_sched.dir/heuristics.cpp.o.d"
  "CMakeFiles/robust_sched.dir/independent_system.cpp.o"
  "CMakeFiles/robust_sched.dir/independent_system.cpp.o.d"
  "CMakeFiles/robust_sched.dir/mapping.cpp.o"
  "CMakeFiles/robust_sched.dir/mapping.cpp.o.d"
  "librobust_sched.a"
  "librobust_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robust_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
