
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scheduling/etc.cpp" "src/scheduling/CMakeFiles/robust_sched.dir/etc.cpp.o" "gcc" "src/scheduling/CMakeFiles/robust_sched.dir/etc.cpp.o.d"
  "/root/repo/src/scheduling/etc_io.cpp" "src/scheduling/CMakeFiles/robust_sched.dir/etc_io.cpp.o" "gcc" "src/scheduling/CMakeFiles/robust_sched.dir/etc_io.cpp.o.d"
  "/root/repo/src/scheduling/experiment.cpp" "src/scheduling/CMakeFiles/robust_sched.dir/experiment.cpp.o" "gcc" "src/scheduling/CMakeFiles/robust_sched.dir/experiment.cpp.o.d"
  "/root/repo/src/scheduling/heuristics.cpp" "src/scheduling/CMakeFiles/robust_sched.dir/heuristics.cpp.o" "gcc" "src/scheduling/CMakeFiles/robust_sched.dir/heuristics.cpp.o.d"
  "/root/repo/src/scheduling/independent_system.cpp" "src/scheduling/CMakeFiles/robust_sched.dir/independent_system.cpp.o" "gcc" "src/scheduling/CMakeFiles/robust_sched.dir/independent_system.cpp.o.d"
  "/root/repo/src/scheduling/mapping.cpp" "src/scheduling/CMakeFiles/robust_sched.dir/mapping.cpp.o" "gcc" "src/scheduling/CMakeFiles/robust_sched.dir/mapping.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/robust_core.dir/DependInfo.cmake"
  "/root/repo/build/src/random/CMakeFiles/robust_random.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/robust_util.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/robust_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
