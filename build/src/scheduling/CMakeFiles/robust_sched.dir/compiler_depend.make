# Empty compiler generated dependencies file for robust_sched.
# This may be replaced when dependencies are built.
