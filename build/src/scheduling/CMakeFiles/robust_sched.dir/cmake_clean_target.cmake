file(REMOVE_RECURSE
  "librobust_sched.a"
)
