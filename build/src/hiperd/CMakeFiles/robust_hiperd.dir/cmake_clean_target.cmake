file(REMOVE_RECURSE
  "librobust_hiperd.a"
)
