
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hiperd/experiment.cpp" "src/hiperd/CMakeFiles/robust_hiperd.dir/experiment.cpp.o" "gcc" "src/hiperd/CMakeFiles/robust_hiperd.dir/experiment.cpp.o.d"
  "/root/repo/src/hiperd/generator.cpp" "src/hiperd/CMakeFiles/robust_hiperd.dir/generator.cpp.o" "gcc" "src/hiperd/CMakeFiles/robust_hiperd.dir/generator.cpp.o.d"
  "/root/repo/src/hiperd/graph.cpp" "src/hiperd/CMakeFiles/robust_hiperd.dir/graph.cpp.o" "gcc" "src/hiperd/CMakeFiles/robust_hiperd.dir/graph.cpp.o.d"
  "/root/repo/src/hiperd/load_function.cpp" "src/hiperd/CMakeFiles/robust_hiperd.dir/load_function.cpp.o" "gcc" "src/hiperd/CMakeFiles/robust_hiperd.dir/load_function.cpp.o.d"
  "/root/repo/src/hiperd/pipeline_sim.cpp" "src/hiperd/CMakeFiles/robust_hiperd.dir/pipeline_sim.cpp.o" "gcc" "src/hiperd/CMakeFiles/robust_hiperd.dir/pipeline_sim.cpp.o.d"
  "/root/repo/src/hiperd/scenario_io.cpp" "src/hiperd/CMakeFiles/robust_hiperd.dir/scenario_io.cpp.o" "gcc" "src/hiperd/CMakeFiles/robust_hiperd.dir/scenario_io.cpp.o.d"
  "/root/repo/src/hiperd/slowdown.cpp" "src/hiperd/CMakeFiles/robust_hiperd.dir/slowdown.cpp.o" "gcc" "src/hiperd/CMakeFiles/robust_hiperd.dir/slowdown.cpp.o.d"
  "/root/repo/src/hiperd/system.cpp" "src/hiperd/CMakeFiles/robust_hiperd.dir/system.cpp.o" "gcc" "src/hiperd/CMakeFiles/robust_hiperd.dir/system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/robust_core.dir/DependInfo.cmake"
  "/root/repo/build/src/scheduling/CMakeFiles/robust_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/random/CMakeFiles/robust_random.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/robust_util.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/robust_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
