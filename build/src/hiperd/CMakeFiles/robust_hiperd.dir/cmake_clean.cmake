file(REMOVE_RECURSE
  "CMakeFiles/robust_hiperd.dir/experiment.cpp.o"
  "CMakeFiles/robust_hiperd.dir/experiment.cpp.o.d"
  "CMakeFiles/robust_hiperd.dir/generator.cpp.o"
  "CMakeFiles/robust_hiperd.dir/generator.cpp.o.d"
  "CMakeFiles/robust_hiperd.dir/graph.cpp.o"
  "CMakeFiles/robust_hiperd.dir/graph.cpp.o.d"
  "CMakeFiles/robust_hiperd.dir/load_function.cpp.o"
  "CMakeFiles/robust_hiperd.dir/load_function.cpp.o.d"
  "CMakeFiles/robust_hiperd.dir/pipeline_sim.cpp.o"
  "CMakeFiles/robust_hiperd.dir/pipeline_sim.cpp.o.d"
  "CMakeFiles/robust_hiperd.dir/scenario_io.cpp.o"
  "CMakeFiles/robust_hiperd.dir/scenario_io.cpp.o.d"
  "CMakeFiles/robust_hiperd.dir/slowdown.cpp.o"
  "CMakeFiles/robust_hiperd.dir/slowdown.cpp.o.d"
  "CMakeFiles/robust_hiperd.dir/system.cpp.o"
  "CMakeFiles/robust_hiperd.dir/system.cpp.o.d"
  "librobust_hiperd.a"
  "librobust_hiperd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robust_hiperd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
