# Empty compiler generated dependencies file for robust_hiperd.
# This may be replaced when dependencies are built.
