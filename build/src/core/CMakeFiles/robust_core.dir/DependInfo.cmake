
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analyzer.cpp" "src/core/CMakeFiles/robust_core.dir/analyzer.cpp.o" "gcc" "src/core/CMakeFiles/robust_core.dir/analyzer.cpp.o.d"
  "/root/repo/src/core/boundary_trace.cpp" "src/core/CMakeFiles/robust_core.dir/boundary_trace.cpp.o" "gcc" "src/core/CMakeFiles/robust_core.dir/boundary_trace.cpp.o.d"
  "/root/repo/src/core/discrete.cpp" "src/core/CMakeFiles/robust_core.dir/discrete.cpp.o" "gcc" "src/core/CMakeFiles/robust_core.dir/discrete.cpp.o.d"
  "/root/repo/src/core/feature.cpp" "src/core/CMakeFiles/robust_core.dir/feature.cpp.o" "gcc" "src/core/CMakeFiles/robust_core.dir/feature.cpp.o.d"
  "/root/repo/src/core/fepia.cpp" "src/core/CMakeFiles/robust_core.dir/fepia.cpp.o" "gcc" "src/core/CMakeFiles/robust_core.dir/fepia.cpp.o.d"
  "/root/repo/src/core/impact.cpp" "src/core/CMakeFiles/robust_core.dir/impact.cpp.o" "gcc" "src/core/CMakeFiles/robust_core.dir/impact.cpp.o.d"
  "/root/repo/src/core/report_io.cpp" "src/core/CMakeFiles/robust_core.dir/report_io.cpp.o" "gcc" "src/core/CMakeFiles/robust_core.dir/report_io.cpp.o.d"
  "/root/repo/src/core/sensitivity.cpp" "src/core/CMakeFiles/robust_core.dir/sensitivity.cpp.o" "gcc" "src/core/CMakeFiles/robust_core.dir/sensitivity.cpp.o.d"
  "/root/repo/src/core/validation.cpp" "src/core/CMakeFiles/robust_core.dir/validation.cpp.o" "gcc" "src/core/CMakeFiles/robust_core.dir/validation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/numeric/CMakeFiles/robust_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/random/CMakeFiles/robust_random.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/robust_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
