file(REMOVE_RECURSE
  "CMakeFiles/robust_core.dir/analyzer.cpp.o"
  "CMakeFiles/robust_core.dir/analyzer.cpp.o.d"
  "CMakeFiles/robust_core.dir/boundary_trace.cpp.o"
  "CMakeFiles/robust_core.dir/boundary_trace.cpp.o.d"
  "CMakeFiles/robust_core.dir/discrete.cpp.o"
  "CMakeFiles/robust_core.dir/discrete.cpp.o.d"
  "CMakeFiles/robust_core.dir/feature.cpp.o"
  "CMakeFiles/robust_core.dir/feature.cpp.o.d"
  "CMakeFiles/robust_core.dir/fepia.cpp.o"
  "CMakeFiles/robust_core.dir/fepia.cpp.o.d"
  "CMakeFiles/robust_core.dir/impact.cpp.o"
  "CMakeFiles/robust_core.dir/impact.cpp.o.d"
  "CMakeFiles/robust_core.dir/report_io.cpp.o"
  "CMakeFiles/robust_core.dir/report_io.cpp.o.d"
  "CMakeFiles/robust_core.dir/sensitivity.cpp.o"
  "CMakeFiles/robust_core.dir/sensitivity.cpp.o.d"
  "CMakeFiles/robust_core.dir/validation.cpp.o"
  "CMakeFiles/robust_core.dir/validation.cpp.o.d"
  "librobust_core.a"
  "librobust_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robust_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
