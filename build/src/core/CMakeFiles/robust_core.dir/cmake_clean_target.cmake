file(REMOVE_RECURSE
  "librobust_core.a"
)
