# Empty compiler generated dependencies file for robust_core.
# This may be replaced when dependencies are built.
