# Empty dependencies file for robust_sim.
# This may be replaced when dependencies are built.
