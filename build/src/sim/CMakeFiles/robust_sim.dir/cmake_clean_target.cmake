file(REMOVE_RECURSE
  "librobust_sim.a"
)
