file(REMOVE_RECURSE
  "CMakeFiles/robust_sim.dir/executor.cpp.o"
  "CMakeFiles/robust_sim.dir/executor.cpp.o.d"
  "CMakeFiles/robust_sim.dir/perturbation.cpp.o"
  "CMakeFiles/robust_sim.dir/perturbation.cpp.o.d"
  "CMakeFiles/robust_sim.dir/study.cpp.o"
  "CMakeFiles/robust_sim.dir/study.cpp.o.d"
  "librobust_sim.a"
  "librobust_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robust_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
