file(REMOVE_RECURSE
  "CMakeFiles/robust_numeric.dir/differentiation.cpp.o"
  "CMakeFiles/robust_numeric.dir/differentiation.cpp.o.d"
  "CMakeFiles/robust_numeric.dir/hyperplane.cpp.o"
  "CMakeFiles/robust_numeric.dir/hyperplane.cpp.o.d"
  "CMakeFiles/robust_numeric.dir/matrix.cpp.o"
  "CMakeFiles/robust_numeric.dir/matrix.cpp.o.d"
  "CMakeFiles/robust_numeric.dir/optimize.cpp.o"
  "CMakeFiles/robust_numeric.dir/optimize.cpp.o.d"
  "CMakeFiles/robust_numeric.dir/root_find.cpp.o"
  "CMakeFiles/robust_numeric.dir/root_find.cpp.o.d"
  "CMakeFiles/robust_numeric.dir/vector_ops.cpp.o"
  "CMakeFiles/robust_numeric.dir/vector_ops.cpp.o.d"
  "librobust_numeric.a"
  "librobust_numeric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robust_numeric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
