
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/numeric/differentiation.cpp" "src/numeric/CMakeFiles/robust_numeric.dir/differentiation.cpp.o" "gcc" "src/numeric/CMakeFiles/robust_numeric.dir/differentiation.cpp.o.d"
  "/root/repo/src/numeric/hyperplane.cpp" "src/numeric/CMakeFiles/robust_numeric.dir/hyperplane.cpp.o" "gcc" "src/numeric/CMakeFiles/robust_numeric.dir/hyperplane.cpp.o.d"
  "/root/repo/src/numeric/matrix.cpp" "src/numeric/CMakeFiles/robust_numeric.dir/matrix.cpp.o" "gcc" "src/numeric/CMakeFiles/robust_numeric.dir/matrix.cpp.o.d"
  "/root/repo/src/numeric/optimize.cpp" "src/numeric/CMakeFiles/robust_numeric.dir/optimize.cpp.o" "gcc" "src/numeric/CMakeFiles/robust_numeric.dir/optimize.cpp.o.d"
  "/root/repo/src/numeric/root_find.cpp" "src/numeric/CMakeFiles/robust_numeric.dir/root_find.cpp.o" "gcc" "src/numeric/CMakeFiles/robust_numeric.dir/root_find.cpp.o.d"
  "/root/repo/src/numeric/vector_ops.cpp" "src/numeric/CMakeFiles/robust_numeric.dir/vector_ops.cpp.o" "gcc" "src/numeric/CMakeFiles/robust_numeric.dir/vector_ops.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/robust_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
