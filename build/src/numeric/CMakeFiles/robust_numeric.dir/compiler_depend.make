# Empty compiler generated dependencies file for robust_numeric.
# This may be replaced when dependencies are built.
