file(REMOVE_RECURSE
  "librobust_numeric.a"
)
