# Empty dependencies file for robust_random.
# This may be replaced when dependencies are built.
