file(REMOVE_RECURSE
  "CMakeFiles/robust_random.dir/distributions.cpp.o"
  "CMakeFiles/robust_random.dir/distributions.cpp.o.d"
  "librobust_random.a"
  "librobust_random.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robust_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
