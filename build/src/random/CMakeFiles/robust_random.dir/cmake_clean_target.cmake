file(REMOVE_RECURSE
  "librobust_random.a"
)
