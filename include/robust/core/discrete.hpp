// Discrete perturbation parameters: beyond the floor rule.
//
// Section 3.2 of the paper treats the integer-valued sensor-load vector as
// continuous and floors the metric. That is safe but can be pessimistic:
// the nearest *integer* perturbation that actually violates a bound can be
// strictly farther than the continuous boundary (the boundary may pass
// between lattice points). The author's thesis (ref [1]) discusses
// bracketing the boundary with the closest discrete values; this module
// implements that idea as certified bounds on the exact lattice radius.
//
// Definitions, for an integer-valued parameter with origin pi_orig:
//   * lower bound  = the continuous metric rho (every perturbation — integer
//     or not — with norm <= rho is safe).
//   * upper bound  = the distance of the nearest VIOLATING lattice point
//     found; no integer perturbation with norm < upper has been proven safe
//     unless `exact` is set, in which case upper IS the minimum violating
//     lattice distance and every integer perturbation with norm < upper is
//     safe.
#pragma once

#include <cstddef>

#include "robust/core/analyzer.hpp"

namespace robust::core {

/// Certified bounds on the exact integer-lattice robustness.
struct DiscreteRadiusBounds {
  double lower = 0.0;        ///< continuous (unfloored) metric
  double upper = 0.0;        ///< nearest violating lattice distance found
                             ///< (+inf when none was found)
  num::Vec violatingPoint;   ///< the certificate attaining `upper`
  bool exact = false;        ///< upper is the true lattice minimum
};

/// Options for the lattice search.
struct DiscreteOptions {
  /// Half-width of the integer box explored around each feature's
  /// continuous boundary point (the cheap certificate search).
  int neighborhoodRadius = 2;
  /// When the continuous metric does not exceed this value, run the
  /// exhaustive shell enumeration and return an exact result. Cost grows
  /// like (2r)^dim — keep it small for high-dimensional parameters.
  double exhaustiveLimit = 12.0;
  /// Hard cap on lattice points examined by the exhaustive search.
  std::size_t maxPoints = 4000000;
};

/// Computes certified discrete-radius bounds for a compiled problem whose
/// perturbation parameter is integer-valued (parameter().discrete). The
/// origin must itself be a lattice point. Throws InvalidArgumentError on a
/// non-discrete parameter or non-integer origin.
[[nodiscard]] DiscreteRadiusBounds discreteRadiusBounds(
    const CompiledProblem& problem, const DiscreteOptions& options = {});

/// Legacy-adapter overload: forwards to the analyzer's compiled problem.
[[nodiscard]] DiscreteRadiusBounds discreteRadiusBounds(
    const RobustnessAnalyzer& analyzer, const DiscreteOptions& options = {});

}  // namespace robust::core
