// The discrete machine-failure perturbation model.
//
// The paper's Section 3.2 handles discrete perturbation parameters by
// flooring the continuous metric. Machine drop-outs are the canonical
// discrete perturbation of a cloud allocation (Beaumont et al., arXiv
// 1310.5255): the perturbation vector is the 0/1 failure indicator of every
// machine, the "distance" of a failure pattern is how many machines it
// kills (its L1 norm), and a mapping's robustness radius is the largest
// number of simultaneous failures it is guaranteed to survive.
//
// A task survives a failure pattern when at least one of its replica hosts
// is still up, so the radius of one task is (distinct replica hosts - 1)
// and the mapping's failure radius is the minimum over tasks — replication
// onto more distinct machines is exactly what raises it.
//
// failureSpec() states the same model as a FePIA derivation: per task a
// "live replica count" feature, affine in the failure indicators, bounded
// below by 1, over a discrete L1-normed perturbation subspace. Its floored
// metric equals failureRadius() — the subsumption of the Section 3.2 floor
// rule that tests/test_core_failure.cpp pins — so the general engine and
// the combinatorial shortcut are two views of one model.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "robust/core/compiled.hpp"

namespace robust::core {

/// A replication-aware placement against machine failures: for every task,
/// the machines hosting at least one of its replicas. Host lists may
/// contain duplicates (two replicas of one task on one machine); only
/// distinct hosts count toward survival.
struct FailureModel {
  std::size_t machines = 0;
  std::vector<std::vector<std::size_t>> replicaHosts;  ///< per task
};

/// Number of distinct machines in one task's host list.
[[nodiscard]] std::size_t distinctHostCount(
    std::span<const std::size_t> hosts);

/// True when every task keeps at least one live replica after the machines
/// in `failed` drop out.
[[nodiscard]] bool survivesFailures(const FailureModel& model,
                                    std::span<const std::size_t> failed);

/// The failure radius: the largest k such that the mapping survives EVERY
/// set of k machine failures, i.e. min over tasks of (distinct hosts - 1).
/// A model with no tasks survives everything (radius = machine count).
/// Every task must have at least one host. Records the result on the
/// `core.failure.radius` gauge when observability is enabled.
[[nodiscard]] std::size_t failureRadius(const FailureModel& model);

/// The equivalent FePIA derivation: one affine "live replicas of task t"
/// feature per task (bounded below by 1) over a discrete L1-normed failure
/// subspace with origin 0 (no machine failed). The compiled spec's floored
/// metric equals failureRadius(model).
[[nodiscard]] ProblemSpec failureSpec(const FailureModel& model);

}  // namespace robust::core
