// Impact functions: step 3 of the FePIA procedure.
//
// An impact function f_ij maps a perturbation parameter vector pi_j to a
// performance feature value phi_i. Both example systems in the paper have
// affine impacts (Eq. 4 and the linearized Section 3.2 experiments), which
// admit closed-form radii; the general case is an opaque callable handled by
// the iterative solvers.
#pragma once

#include <optional>
#include <span>

#include "robust/numeric/optimize.hpp"
#include "robust/numeric/vector_ops.hpp"

namespace robust::core {

/// A performance-feature impact function phi = f(pi).
///
/// Value-semantic; copyable. Affine instances carry their weights explicitly
/// so the analyzer can use the point-to-hyperplane closed form (Eq. 6 path);
/// general instances carry a callable (and optionally its gradient).
class ImpactFunction {
 public:
  /// Affine impact f(x) = weights . x + constant.
  [[nodiscard]] static ImpactFunction affine(num::Vec weights,
                                             double constant = 0.0);

  /// General impact from an opaque callable, with an optional analytic
  /// gradient (finite differences are used when absent).
  [[nodiscard]] static ImpactFunction callable(num::ScalarField f,
                                               num::GradientField gradient = {});

  /// Evaluates f at x.
  [[nodiscard]] double evaluate(std::span<const double> x) const;

  /// True when the impact is affine (closed-form radii available).
  [[nodiscard]] bool isAffine() const noexcept { return affine_.has_value(); }

  /// Affine weights; requires isAffine().
  [[nodiscard]] const num::Vec& weights() const;

  /// Affine constant term; requires isAffine().
  [[nodiscard]] double constant() const;

  /// The impact as a ScalarField (affine impacts wrap themselves).
  [[nodiscard]] num::ScalarField field() const;

  /// The gradient as a GradientField (affine impacts return their weights;
  /// may be empty for general impacts without a supplied gradient).
  [[nodiscard]] num::GradientField gradientField() const;

  /// Dimension of the perturbation vector this impact expects, when known
  /// (always known for affine impacts; nullopt for opaque callables).
  [[nodiscard]] std::optional<std::size_t> dimension() const;

 private:
  ImpactFunction() = default;

  struct Affine {
    num::Vec weights;
    double constant;
  };
  std::optional<Affine> affine_;
  num::ScalarField fn_;
  num::GradientField gradient_;
};

}  // namespace robust::core
