// Sensitivity analysis: which perturbation components endanger a feature.
//
// A radius report already carries the nearest boundary point pi*; the unit
// vector from pi_orig to pi* is the *critical direction* — the most
// dangerous way the parameter can move. Its components rank the parameter
// entries by blame: a designer hardening the system should attack the
// largest ones first (e.g. which sensor's load growth breaks QoS first, or
// which application's ETC error matters most).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "robust/core/analyzer.hpp"

namespace robust::core {

/// Sensitivity of one feature's radius to the perturbation components.
struct SensitivityReport {
  std::string feature;          ///< feature name (from the radius report)
  num::Vec direction;           ///< unit critical direction (pi* - pi_orig)
  std::vector<std::size_t> ranking;  ///< component indices, most critical
                                     ///< (largest |direction|) first
};

/// Derives the sensitivity of `radius` relative to `parameter`. Requires a
/// finite radius with a boundary point; a zero radius (violated at origin)
/// yields a zero direction and an index-order ranking.
[[nodiscard]] SensitivityReport sensitivityOf(
    const RadiusReport& radius, const PerturbationParameter& parameter);

/// Convenience: sensitivity of the analysis' binding feature — the single
/// most dangerous direction for the whole mapping.
[[nodiscard]] SensitivityReport bindingSensitivity(
    const RobustnessReport& report, const PerturbationParameter& parameter);

}  // namespace robust::core
