// Empirical validation of a computed robustness metric.
//
// The metric's operational claim (Sections 3.1/3.2): *any* perturbation whose
// norm does not exceed rho leaves every feature within bounds. This module
// checks that claim by sampling — used by the test suites as an oracle that
// is independent of every solver, and exposed publicly because downstream
// users will want the same sanity check on their own derivations.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "robust/core/analyzer.hpp"

namespace robust::core {

/// Outcome of a sampling validation run.
struct ValidationResult {
  int samplesInside = 0;       ///< perturbations drawn with ||delta|| <= r
  int violationsInside = 0;    ///< of those, how many violated a bound
                               ///< (must be 0 if r <= true radius)
  int samplesAtBoundary = 0;   ///< perturbations drawn at ||delta|| ~ r * margin
  int violationsAtBoundary = 0;///< violations just beyond the radius (> 0
                               ///< indicates the radius is tight, not slack)
};

/// Options for validateRadius.
struct ValidationOptions {
  int samples = 2000;          ///< draws per regime
  double boundaryMargin = 1.05;///< "just beyond" factor for tightness probes
  std::uint64_t seed = 99;     ///< sampling seed
  NormKind norm = NormKind::L2;
  num::Vec normWeights;        ///< for NormKind::Weighted (positive, one per
                               ///< perturbation component)
};

/// Samples perturbations of norm <= radius (uniform direction, norm scaled)
/// and counts bound violations; also probes just beyond the radius to detect
/// slack. A correct radius yields violationsInside == 0; a *tight* radius
/// usually yields violationsAtBoundary > 0 (not guaranteed for a margin this
/// small when the boundary is touched at a measure-zero set of directions).
[[nodiscard]] ValidationResult validateRadius(
    const RobustnessAnalyzer& analyzer, double radius,
    const ValidationOptions& options = {});

/// One point of the empirical violation profile.
struct ViolationCurvePoint {
  double radius = 0.0;       ///< sampled perturbation norm
  double probability = 0.0;  ///< fraction of sampled directions violating
};

/// Estimates P(violation | ||delta|| = r) for each requested radius by
/// sampling `options.samples` isotropic directions at exactly that norm.
/// By the metric's guarantee the probability is 0 for every r below the
/// (exact) robustness metric and grows beyond it — the curve shows how
/// sharply the guarantee degrades past the certified radius.
[[nodiscard]] std::vector<ViolationCurvePoint> violationProbabilityCurve(
    const RobustnessAnalyzer& analyzer, std::span<const double> radii,
    const ValidationOptions& options = {});

}  // namespace robust::core
