// The analysis step (step 4) of FePIA: robustness radii (Eq. 1) and the
// robustness metric (Eq. 2).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "robust/core/feature.hpp"
#include "robust/numeric/optimize.hpp"

namespace robust::core {

/// Which norm measures the perturbation displacement in Eq. 1. The paper
/// fixes L2 (Euclidean); L1 and LInf are provided for the norm ablation,
/// and Weighted is the scaled Euclidean norm sqrt(sum w_i d_i^2) — the
/// natural choice when the perturbation components have different scales
/// (e.g. sensor loads of 962 vs 240 objects per data set).
enum class NormKind { L1, L2, LInf, Weighted };

/// Human-readable norm name ("l1", "l2", "linf", "weighted").
[[nodiscard]] std::string toString(NormKind norm);

/// Strategy for computing a radius.
enum class SolverKind {
  Auto,        ///< analytic for affine impacts, KKT-Newton (with ray-search
               ///< fallback) otherwise
  Analytic,    ///< point-to-hyperplane closed form; affine impacts only
  KktNewton,   ///< damped Newton on the KKT system (L2 only)
  RaySearch,   ///< gradient-alignment ray iteration (L2 only)
  MonteCarlo,  ///< random-direction upper bound (any norm)
};

/// Options controlling the analysis.
struct AnalyzerOptions {
  NormKind norm = NormKind::L2;
  /// Per-component weights for NormKind::Weighted (must be positive and
  /// match the perturbation dimension). A common choice is
  /// w_i = 1 / pi_orig_i^2, which measures RELATIVE displacement.
  num::Vec normWeights;
  SolverKind solver = SolverKind::Auto;
  num::SolverOptions solverOptions;
};

/// Radius of one feature against the perturbation parameter: Eq. 1 plus the
/// diagnostics a practitioner wants (which bound bound it, where).
struct RadiusReport {
  std::string feature;       ///< feature name
  double radius = 0.0;       ///< r_mu(phi_i, pi_j)
  num::Vec boundaryPoint;    ///< pi_star(phi_i) of Fig. 1
  double boundaryLevel = 0.0;///< the beta value of the binding boundary
  bool boundReachable = true;///< false when no boundary crossing exists
                             ///< within the search limit (radius = +inf)
  std::string method;        ///< solver that produced the number
};

/// Full analysis: every radius plus the metric rho (Eq. 2).
struct RobustnessReport {
  std::vector<RadiusReport> radii;      ///< one per feature, input order
  double metric = 0.0;                  ///< rho_mu(Phi, pi_j)
  std::size_t bindingFeature = 0;       ///< argmin index into radii
  bool floored = false;                 ///< metric was floored (discrete pi)
};

/// Evaluates robustness radii and the robustness metric of a mapping whose
/// features and perturbation parameter have already been derived (steps 1-3).
///
/// Thread-compatible: analyze() is const and reentrant, so independent
/// analyzers may run on pool threads (the Fig. 3 / Fig. 4 drivers do).
class RobustnessAnalyzer {
 public:
  /// Takes ownership of the derived features and parameter. Affine impact
  /// dimensions must match the parameter dimension.
  RobustnessAnalyzer(std::vector<PerformanceFeature> features,
                     PerturbationParameter parameter,
                     AnalyzerOptions options = {});

  /// Number of features.
  [[nodiscard]] std::size_t featureCount() const noexcept {
    return features_.size();
  }

  /// The features, in construction order.
  [[nodiscard]] const std::vector<PerformanceFeature>& features() const noexcept {
    return features_;
  }

  /// The perturbation parameter.
  [[nodiscard]] const PerturbationParameter& parameter() const noexcept {
    return parameter_;
  }

  /// Robustness radius of feature `index` (Eq. 1). The radius is the minimum
  /// over the feature's present bounds; a feature already outside its bounds
  /// at pi_orig yields radius 0.
  [[nodiscard]] RadiusReport radiusOf(std::size_t index) const;

  /// Full analysis: all radii and rho = min radius (Eq. 2), floored when the
  /// parameter is discrete (Section 3.2's "objects per data set" rule).
  [[nodiscard]] RobustnessReport analyze() const;

 private:
  [[nodiscard]] RadiusReport radiusAgainstLevel(const PerformanceFeature& f,
                                                double level) const;

  std::vector<PerformanceFeature> features_;
  PerturbationParameter parameter_;
  AnalyzerOptions options_;
};

/// Multi-parameter extension (discussed in ref [1], the author's thesis):
/// with several independent perturbation parameters, the mapping's combined
/// robustness is limited by its weakest parameter. Reports must be expressed
/// in comparable units; the caller may normalize each metric first.
[[nodiscard]] double combinedRobustness(
    std::span<const RobustnessReport> reports);

}  // namespace robust::core
