// The analysis step (step 4) of FePIA: robustness radii (Eq. 1) and the
// robustness metric (Eq. 2).
//
// RobustnessAnalyzer is now a thin adapter over the compiled engine
// (robust/core/compiled.hpp): construction compiles the derivation once and
// every query delegates to the CompiledProblem, so legacy call sites keep
// their API while sharing one arithmetic path with the batch engine. New
// code that re-analyzes many states against one structure should hold a
// CompiledProblem directly (via compiled() or CompiledProblem::compile).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "robust/core/compiled.hpp"
#include "robust/core/feature.hpp"
#include "robust/core/report.hpp"
#include "robust/numeric/optimize.hpp"

namespace robust::core {

/// Evaluates robustness radii and the robustness metric of a mapping whose
/// features and perturbation parameter have already been derived (steps 1-3).
///
/// Thread-compatible: analyze() is const and reentrant, so independent
/// analyzers may run on pool threads (the Fig. 3 / Fig. 4 drivers do).
class RobustnessAnalyzer {
 public:
  /// Takes ownership of a complete derivation (the general entry point:
  /// legacy single-parameter specs, multi-subspace specs, and constrained
  /// specs all compile through the same engine).
  explicit RobustnessAnalyzer(ProblemSpec spec)
      : compiled_(CompiledProblem::compile(std::move(spec))) {}

  /// Takes ownership of the derived features and parameter. Affine impact
  /// dimensions must match the parameter dimension.
  RobustnessAnalyzer(std::vector<PerformanceFeature> features,
                     PerturbationParameter parameter,
                     AnalyzerOptions options = {})
      : RobustnessAnalyzer(ProblemSpec{.features = std::move(features),
                                       .parameter = std::move(parameter),
                                       .options = std::move(options),
                                       .subspaces = {},
                                       .constraints = {}}) {}

  /// Number of features.
  [[nodiscard]] std::size_t featureCount() const noexcept {
    return compiled_.featureCount();
  }

  /// The features, in construction order.
  [[nodiscard]] const std::vector<PerformanceFeature>& features()
      const noexcept {
    return compiled_.features();
  }

  /// The perturbation parameter.
  [[nodiscard]] const PerturbationParameter& parameter() const noexcept {
    return compiled_.parameter();
  }

  /// Robustness radius of feature `index` (Eq. 1). The radius is the minimum
  /// over the feature's present bounds; a feature already outside its bounds
  /// at pi_orig yields radius 0.
  [[nodiscard]] RadiusReport radiusOf(std::size_t index) const {
    return compiled_.radiusOf(index);
  }

  /// Full analysis: all radii and rho = min radius (Eq. 2), floored when the
  /// parameter is discrete (Section 3.2's "objects per data set" rule).
  [[nodiscard]] RobustnessReport analyze() const { return compiled_.evaluate(); }

  /// The underlying compiled problem, for repeated / batched evaluation.
  [[nodiscard]] const CompiledProblem& compiled() const noexcept {
    return compiled_;
  }

 private:
  CompiledProblem compiled_;
};

/// Multi-parameter extension (discussed in ref [1], the author's thesis):
/// with several independent perturbation parameters, the mapping's combined
/// robustness is limited by its weakest parameter. Reports must be expressed
/// in comparable units; the caller may normalize each metric first.
[[nodiscard]] double combinedRobustness(
    std::span<const RobustnessReport> reports);

}  // namespace robust::core
