// The versioned binary on-disk instance format for the streaming lane.
//
// A ".rbi" (robust binary instances) file is a 64-byte header followed by
// a packed payload of float64 perturbation origins, one instance after
// another (each instance's `dim` components contiguous — the batch is
// column-major with instances as columns):
//
//   offset  size  field
//   ------  ----  ------------------------------------------------------
//        0     8  magic "RBINST\r\n" (the CR/LF pair catches text-mode
//                 and newline-translating transports, PNG-style)
//        8     4  u32 format version (currently 1)
//       12     4  u32 flags (must be 0 in version 1)
//       16     8  u64 dim        — components per instance
//       24     8  u64 instances  — instance count
//       32    32  reserved, must be zero
//       64     -  payload: instances x dim float64, instance-contiguous
//
// All integers and doubles are stored in the host byte order of the
// writing machine; every supported target is little-endian, and a file
// from a byte-swapped writer cannot slip through validation (a swapped
// `dim` fails the size cross-check astronomically). The payload starts at
// byte 64, so every instance is 8-byte aligned and a mapped window can be
// reinterpreted as doubles directly.
//
// Validation is the PR 3 boundary discipline: every reject routes through
// util::Diagnostics with a category and a position (for payload values,
// line = 1-based instance, column = 1-based component), and the declared
// shape is cross-checked against the real file size before any
// allocation — a hostile header claiming 10^9-dimensional instances
// produces a diagnostic, not an allocation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "robust/core/input_policy.hpp"
#include "robust/util/diagnostics.hpp"
#include "robust/util/mmap_file.hpp"

namespace robust::core {

inline constexpr std::size_t kInstanceFileMagicBytes = 8;
inline constexpr char kInstanceFileMagic[kInstanceFileMagicBytes + 1] =
    "RBINST\r\n";
inline constexpr std::uint32_t kInstanceFileVersion = 1;
inline constexpr std::size_t kInstanceFileHeaderBytes = 64;

/// The declared shape of an instance file.
struct InstanceFileHeader {
  std::uint64_t dim = 0;
  std::uint64_t instances = 0;
};

/// Parses and validates the 64-byte header against `policy`, then
/// cross-checks the declared shape against `totalBytes` (the whole file's
/// size). Throws util::ParseError through `diag` on any violation.
[[nodiscard]] InstanceFileHeader parseInstanceFileHeader(
    std::span<const std::byte> header, std::uint64_t totalBytes,
    const util::Diagnostics& diag, const InputPolicy& policy = {});

/// Streaming writer: header first (instance count patched on finish()),
/// then one append per instance. The output stream must be binary and
/// seekable. Appended values are validated under `policy` fail-fast, so a
/// non-finite value never reaches the disk.
class InstanceFileWriter {
 public:
  InstanceFileWriter(std::ostream& out, std::uint64_t dim,
                     const InputPolicy& policy = {},
                     std::string source = "<instance stream>");

  /// Appends one instance (`values.size()` must equal dim).
  void append(std::span<const double> values);
  /// Appends `values.size() / dim` instances (must divide exactly).
  void appendBatch(std::span<const double> values);

  [[nodiscard]] std::uint64_t dim() const noexcept { return dim_; }
  [[nodiscard]] std::uint64_t instances() const noexcept {
    return instances_;
  }

  /// Seeks back and patches the instance count into the header, then
  /// flushes. Must be called exactly once, before the stream is closed.
  void finish();

 private:
  std::ostream& out_;
  util::Diagnostics diag_;
  InputPolicy policy_;
  std::uint64_t dim_ = 0;
  std::uint64_t instances_ = 0;
  bool finished_ = false;
};

/// A fully materialized instance file (tests, fuzzing, format
/// conversion). values holds header.instances x header.dim doubles,
/// instance-contiguous, validated under `policy`.
struct InstanceData {
  InstanceFileHeader header;
  std::vector<double> values;
};

/// Parses header + payload from an in-memory byte image.
[[nodiscard]] InstanceData loadInstanceData(std::span<const std::byte> bytes,
                                            const util::Diagnostics& diag,
                                            const InputPolicy& policy = {});

/// Convenience overload over a byte string (the fuzz harness's artifact
/// representation).
[[nodiscard]] InstanceData loadInstanceData(const std::string& bytes,
                                            const util::Diagnostics& diag,
                                            const InputPolicy& policy = {});

/// Random-access reader over an instance file: validates the header on
/// open, then materializes shards through reusable MmapFile windows.
/// Payload values are NOT validated here — the streaming engine fuses its
/// finiteness check into the first pass over each shard (and rejects with
/// exact instance/component provenance).
class InstanceFileReader {
 public:
  /// Opens and validates `path`. Throws std::runtime_error when the file
  /// cannot be opened, util::ParseError when the header is invalid.
  explicit InstanceFileReader(const std::string& path,
                              const InputPolicy& policy = {});

  [[nodiscard]] const InstanceFileHeader& header() const noexcept {
    return header_;
  }
  [[nodiscard]] std::uint64_t dim() const noexcept { return header_.dim; }
  [[nodiscard]] std::uint64_t instances() const noexcept {
    return header_.instances;
  }
  [[nodiscard]] const std::string& path() const noexcept {
    return file_.path();
  }

  /// Materializes instances [first, first + count) through `view` and
  /// returns them as a span of count x dim doubles (valid until the next
  /// call on the same view). Thread-safe across concurrent calls with
  /// distinct views.
  [[nodiscard]] std::span<const double> read(
      std::uint64_t first, std::uint64_t count,
      util::MmapFile::View& view) const;

 private:
  util::MmapFile file_;
  InstanceFileHeader header_;
};

}  // namespace robust::core
