// The value-domain policy enforced at every external-input boundary.
//
// The FePIA pipeline is only as trustworthy as the matrices, graphs and
// vectors fed into it: a single NaN cell admitted by a loader poisons every
// downstream radius (NaN breaks std::sort's strict weak ordering, converts
// to size_t with undefined behavior, and defeats every bracketing test in
// the 1-D solvers). The loaders therefore validate *values* at load time,
// under this policy, and the structural invariants (rectangular ETC, DAG
// acyclicity, sensor fan-out, count cross-checks) unconditionally — so
// nothing non-finite or structurally inconsistent ever reaches a
// CompiledProblem.
#pragma once

#include <cstddef>

namespace robust::core {

/// Which value-domain checks a loader applies. Structural invariants are
/// not policy-controlled: a ragged matrix or a cyclic scenario graph is
/// rejected regardless.
struct InputPolicy {
  /// Reject inf/nan numeric fields outright (cells, rates, loads, limits,
  /// coefficients). Disabling this re-admits non-finite values and with
  /// them the undefined behavior documented above — only do so to inspect
  /// a corrupt archive, never ahead of analysis.
  bool requireFinite = true;

  /// Enforce the domain signs: ETC cells, sensor rates and latency limits
  /// must be strictly positive (they are times/rates); sensor loads and
  /// load-function coefficients must be non-negative.
  bool requireDomainSigns = true;

  /// Upper bound on every declared count (sensors, applications, edges,
  /// machines, latency limits). A corrupt or hostile header claiming 10^9
  /// sensors must produce a diagnostic, not a 8 GB allocation.
  std::size_t maxDeclaredCount = 1u << 20;

  /// The default-constructed policy: everything on.
  [[nodiscard]] static constexpr InputPolicy strict() noexcept { return {}; }

  /// Value checks off (structural invariants still apply). For inspecting
  /// archives that predate the validation layer.
  [[nodiscard]] static constexpr InputPolicy permissive() noexcept {
    InputPolicy p;
    p.requireFinite = false;
    p.requireDomainSigns = false;
    return p;
  }
};

}  // namespace robust::core
