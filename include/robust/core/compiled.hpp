// The compiled FePIA analysis engine: compile the problem structure once,
// evaluate many per-query states against it.
//
// The paper's experiments (and any heuristic mapping search) evaluate the
// metric for thousands of mappings against ONE fixed scenario. The legacy
// RobustnessAnalyzer pays the full derivation cost per mapping: feature-name
// strings, optional-wrapped affine payloads and type-erased closures are
// re-allocated on every construction. The engine splits that work in two:
//
//   Phase 1 — CompiledProblem::compile(ProblemSpec): validate once and pack
//   the immutable structure. Affine feature rows land in one dense
//   row-major weight matrix, the dual norm of every row is precomputed for
//   each NormKind, bounds and constants become flat arrays, and the opaque
//   callable features are kept in a separate indexed lane for the iterative
//   solvers. The solver/norm configuration is baked in.
//
//   Phase 2 — CompiledProblem::evaluate(AnalysisInstance, EvalWorkspace):
//   per-query state only (perturbation origin, per-feature constants, an
//   optional per-feature weight scale such as HiPer-D's multitasking
//   factor). Results are written into a caller-owned reusable workspace; the
//   steady state performs no heap allocation on the affine fast path. The
//   produced RobustnessReport is bit-identical to what
//   RobustnessAnalyzer::analyze() returns for the equivalent derivation.
//
// analyzeBatch() fans a span of instances across util::thread_pool with a
// static block partition: results are bit-identical for every thread count.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "robust/core/feature.hpp"
#include "robust/core/report.hpp"

namespace robust::curve {
class CurveEngine;
class DriftTracker;
}  // namespace robust::curve

namespace robust::core {

/// Phase-1 input: the complete FePIA derivation (steps 1-3) plus the
/// analysis configuration. The parameter's origin doubles as the default
/// evaluation origin for instances that do not override it.
///
/// The perturbation space may be described two equivalent ways:
///
///   * legacy: `parameter` + `options.norm` — one unconstrained continuous
///     (or discrete) vector measured by one norm. `subspaces` stays empty;
///     compile() synthesizes the single equivalent subspace.
///   * general: `subspaces` — one or more named blocks, each with its own
///     origin, norm, and discreteness; the full perturbation vector is
///     their concatenation and a displacement's size is the MAXIMUM of the
///     per-block norms (a product of balls). With a single subspace this
///     reduces exactly — bit for bit — to the legacy form. When subspaces
///     are given they are authoritative: `parameter` and `options.norm` /
///     `options.normWeights` are derived from them.
///
/// `constraints` carve a hard feasibility region (capacity limits) out of
/// the perturbation space: the radius search only counts violating
/// perturbations that are feasible, and an infeasible operating point is
/// reported as RobustnessReport::infeasibleOrigin instead of a radius.
/// Constrained problems require affine features, an Auto/Analytic solver,
/// and L2/Weighted subspace norms (the projection solvers are Euclidean).
struct ProblemSpec {
  std::vector<PerformanceFeature> features;
  PerturbationParameter parameter;
  AnalyzerOptions options;
  std::vector<PerturbationSubspace> subspaces;
  std::vector<LinearConstraint> constraints;
};

/// Phase-2 input: the per-query state overlaying a CompiledProblem. All
/// spans may be empty, meaning "use the compiled defaults". Entries of
/// `constants` and `scales` are indexed by feature and apply to affine
/// features only (callable features carry their state inside the closure);
/// scales must be positive.
struct AnalysisInstance {
  std::span<const double> origin;     ///< perturbation origin (empty = spec's)
  std::span<const double> constants;  ///< affine constant override per feature
  std::span<const double> scales;     ///< affine weight scale per feature
};

/// Caller-owned scratch state for repeated evaluation. Reusing one
/// workspace across evaluations retains every buffer (report radii,
/// boundary points, name/method strings, the scaled-weights row), so the
/// affine fast path settles into a zero-allocation steady state.
class EvalWorkspace {
 public:
  EvalWorkspace() = default;

 private:
  friend class CompiledProblem;
  RobustnessReport report_;
  num::Vec scaledRow_;
};

/// The scalar outcome of the metric-only lane: rho and its argmin feature,
/// without per-row radii, boundary points, or method strings. The metric
/// and bindingFeature match what evaluate() reports (the lane is
/// differentially pinned at <= 1e-12 relative; the argmin is identical).
struct MetricResult {
  double metric = 0.0;
  std::size_t bindingFeature = 0;
  bool floored = false;
};

/// Caller-owned scratch for the metric-only lane: the per-row dot buffer
/// fed by the blocked kernels, the batch-mode tile buffer, and a full
/// workspace for the callable/iterative fallback rows.
class MetricWorkspace {
 public:
  MetricWorkspace() = default;

 private:
  friend class CompiledProblem;
  num::Vec dots_;       ///< per-row w.origin for one instance
  num::Vec batchDots_;  ///< instance-tile x rows, batch mode
  RadiusReport scratch_;
  EvalWorkspace full_;
};

/// One affine performance feature expressed as raw spans: the input to
/// evaluateAffineRadius() for derivation layers (e.g. HiPer-D's compiled
/// scenario) that materialize per-query weight rows into their own
/// workspaces. At least one bound must be present.
struct AffineFeatureView {
  std::span<const double> weights;
  double constant = 0.0;
  std::optional<double> boundMin;
  std::optional<double> boundMax;
};

/// The exact analytic-path arithmetic of the analyzer for one affine
/// feature: at-origin violation check, Eq. 6 dual-norm radius per present
/// bound, binding-bound selection, nearest boundary point. Writes into
/// `out`, reusing its buffers; `name` is copied into out.feature.
/// `dualNormHint`, when positive, must equal the dual norm of the weights
/// under options.norm (pass a precomputed value to skip recomputation).
/// `weightedDenomHint`, when positive, must equal sum(a_i^2 / w_i) for the
/// weighted norm (the un-squared-rooted dual norm); it skips the per-call
/// recomputation inside the boundary-point solve.
void evaluateAffineRadius(const AffineFeatureView& feature,
                          std::span<const double> origin,
                          const AnalyzerOptions& options,
                          std::string_view name, RadiusReport& out,
                          double dualNormHint = 0.0,
                          double weightedDenomHint = 0.0);

/// Phase 1 + phase 2 of the engine. Immutable once compiled; evaluate() is
/// const and reentrant, so one compiled problem may serve many threads as
/// long as each uses its own workspace.
class CompiledProblem {
 public:
  /// Validates the derivation (dimensions, bounds, norm weights) and packs
  /// it. Throws InvalidArgumentError exactly where the legacy analyzer
  /// constructor did.
  [[nodiscard]] static CompiledProblem compile(ProblemSpec spec);

  [[nodiscard]] std::size_t featureCount() const noexcept {
    return features_.size();
  }
  /// Perturbation dimension (size of every origin).
  [[nodiscard]] std::size_t dimension() const noexcept { return dim_; }
  [[nodiscard]] const std::vector<PerformanceFeature>& features()
      const noexcept {
    return features_;
  }
  [[nodiscard]] const PerturbationParameter& parameter() const noexcept {
    return parameter_;
  }
  [[nodiscard]] const AnalyzerOptions& options() const noexcept {
    return options_;
  }

  /// The perturbation subspaces, post-normalization: never empty (a legacy
  /// spec compiles to the single equivalent subspace). Block `s` covers
  /// components [subspaceOffset(s), subspaceOffset(s + 1)).
  [[nodiscard]] const std::vector<PerturbationSubspace>& subspaces()
      const noexcept {
    return subspaces_;
  }
  [[nodiscard]] std::size_t subspaceOffset(std::size_t s) const {
    return subOffsets_.at(s);
  }

  /// The hard feasibility constraints (empty for unconstrained problems).
  [[nodiscard]] const std::vector<LinearConstraint>& constraints()
      const noexcept {
    return constraints_;
  }

  /// True when `origin` satisfies every compiled constraint.
  [[nodiscard]] bool originFeasible(std::span<const double> origin) const;

  /// Precomputed dual norm of an affine feature's weight row under `norm`
  /// (NaN for callable features, and for NormKind::Weighted when the
  /// compiled options carry no norm weights).
  [[nodiscard]] double rowDualNorm(std::size_t feature, NormKind norm) const;

  /// Evaluates one instance into `workspace` and returns a reference to the
  /// workspace-owned report (valid until the next evaluation through the
  /// same workspace).
  const RobustnessReport& evaluate(const AnalysisInstance& instance,
                                   EvalWorkspace& workspace) const;

  /// Convenience: evaluates with a throwaway workspace.
  [[nodiscard]] RobustnessReport evaluate(
      const AnalysisInstance& instance) const;

  /// Convenience: evaluates the compiled defaults (the spec's origin and
  /// constants) — the exact equivalent of RobustnessAnalyzer::analyze().
  [[nodiscard]] RobustnessReport evaluate() const;

  /// Robustness radius of feature `index` at the compiled defaults (Eq. 1).
  [[nodiscard]] RadiusReport radiusOf(std::size_t index) const;

  /// Evaluates every instance into its own output slot. Work is divided
  /// into one contiguous block per worker (threads = 0 means
  /// defaultThreadCount()); each block reuses a dedicated workspace, and
  /// results are bit-identical for every thread count.
  void analyzeBatch(std::span<const AnalysisInstance> instances,
                    std::span<RobustnessReport> out,
                    std::size_t threads = 0) const;

  /// analyzeBatch into a freshly allocated result vector.
  [[nodiscard]] std::vector<RobustnessReport> analyzeBatch(
      std::span<const AnalysisInstance> instances,
      std::size_t threads = 0) const;

  /// True when the metric-only lane runs on the blocked kernels (the
  /// compiled solver resolves to Analytic for affine rows). Otherwise
  /// evaluateMetric falls back to the full evaluate() arithmetic.
  [[nodiscard]] bool metricKernelLane() const noexcept { return fastSolver_; }

  /// The metric-only lane: computes rho and its argmin feature without
  /// materializing per-row boundary points or report strings. Affine rows
  /// run on the blocked SIMD kernels (robust/numeric/simd.hpp), so the
  /// result is deterministic across runs, thread counts, and dispatch
  /// targets, and is within 1e-12 relative of evaluate() (same argmin).
  ///
  /// With `prune` (the default), once an incumbent min radius rho-hat is
  /// held, a row whose bound |f(origin) - nearest level| / dualNorm
  /// provably exceeds rho-hat (by a 1e-9 relative margin absorbing the
  /// comparison rounding) is skipped: pruning never changes the returned
  /// bits, only skips provable losers. `prune = false` exists to pin that
  /// equality in tests.
  MetricResult evaluateMetric(const AnalysisInstance& instance,
                              MetricWorkspace& workspace,
                              bool prune = true) const;

  /// Convenience: metric lane with a throwaway workspace.
  [[nodiscard]] MetricResult evaluateMetric(
      const AnalysisInstance& instance) const;

  /// Convenience: metric lane at the compiled defaults (cached per-row
  /// origin dots make this O(rows) with no kernel pass).
  [[nodiscard]] MetricResult evaluateMetric() const;

  /// Metric lane over a batch, cache-blocked over (instances x rows):
  /// instances are processed in small tiles and the weight matrix is
  /// streamed in row chunks across each tile, so a stripe of rows stays
  /// cached while every instance in the tile consumes it. Same static
  /// block partition as analyzeBatch: results are bit-identical for every
  /// thread count.
  void analyzeBatchMetric(std::span<const AnalysisInstance> instances,
                          std::span<MetricResult> out,
                          std::size_t threads = 0, bool prune = true) const;

  /// analyzeBatchMetric into a freshly allocated result vector.
  [[nodiscard]] std::vector<MetricResult> analyzeBatchMetric(
      std::span<const AnalysisInstance> instances, std::size_t threads = 0,
      bool prune = true) const;

 private:
  CompiledProblem() = default;

  // The streaming driver (src/core/stream.cpp) replicates the metric
  // lane's row arithmetic bit-for-bit against shards it pulls off disk,
  // and screens rows with the compiled default-origin dots; it needs the
  // packed internals, not a widened public surface.
  friend class StreamEngine;
  // The degradation-curve engine (src/curve/curve.cpp) derives per-sample
  // closed-form violation radii from the packed rows and the
  // compile-cached default-origin dots; the drift tracker
  // (src/curve/drift.cpp) maintains those dots incrementally under
  // perturbation-side deltas. Same rationale as StreamEngine: packed
  // internals, not a widened public surface.
  friend class robust::curve::CurveEngine;
  friend class robust::curve::DriftTracker;

  void radiusOfInto(std::size_t index, std::span<const double> origin,
                    double constant, double scale, RadiusReport& out,
                    EvalWorkspace& workspace) const;
  void radiusSlowPath(std::size_t index, std::span<const double> origin,
                      double constant, double scale,
                      std::span<const double> weights, SolverKind solver,
                      RadiusReport& out) const;

  /// Analytic radius of one affine feature under the multi-subspace
  /// combined norm (max of per-block norms): effective dual = sum of
  /// per-block duals, boundary point assembled block by block.
  void radiusOfMulti(std::size_t index, std::span<const double> origin,
                     double constant, double scale, RadiusReport& out,
                     EvalWorkspace& workspace) const;

  /// Feasibility clip: replaces `out` (the unconstrained analytic radius of
  /// feature `index` at `origin`) with the constrained radius when the
  /// unconstrained boundary point violates a compiled constraint. Single
  /// (weighted-)L2 subspace -> Dykstra projection; multiple subspaces ->
  /// bisection on the radius with a POCS membership oracle.
  void clipToFeasible(std::size_t index, std::span<const double> origin,
                      double constant, double scale, RadiusReport& out) const;

  /// Fills `report` for an operating point that violates a constraint:
  /// metric 0, infeasibleOrigin set, every radius zeroed.
  void reportInfeasibleOrigin(std::span<const double> origin,
                              RobustnessReport& report) const;

  /// Validates an instance's origin/constants/scales sizes and resolves the
  /// effective origin (shared by the full and metric lanes).
  [[nodiscard]] std::span<const double> resolveOrigin(
      const AnalysisInstance& instance) const;

  /// Number of packed affine rows.
  [[nodiscard]] std::size_t rowCount() const noexcept {
    return dim_ == 0 ? 0 : weights_.size() / dim_;
  }

  /// The metric-lane core: per-feature radii from precomputed row dots
  /// (dots[r] = row_r . origin), incumbent pruning, discrete floor, obs.
  MetricResult metricFromDots(const AnalysisInstance& instance,
                              std::span<const double> origin,
                              const double* dots, bool prune,
                              MetricWorkspace& workspace) const;

  /// One worker's serial slice of analyzeBatchMetric: the cache-blocked
  /// (instances x rows) tile walk over instances [lo, hi) into the same
  /// output slots, reusing a caller-owned workspace. The batch entry
  /// points and the streaming driver's shard scans share this so a shard
  /// is exactly one block — zero steady-state allocation with an arena
  /// workspace, and bit-identical results by construction.
  void metricBlock(std::span<const AnalysisInstance> instances,
                   std::span<MetricResult> out, std::size_t lo,
                   std::size_t hi, MetricWorkspace& workspace,
                   bool prune) const;

  [[nodiscard]] std::span<const double> rowOf(std::size_t feature) const {
    return {weights_.data() + rowIndex_[feature] * dim_, dim_};
  }

  std::vector<PerformanceFeature> features_;  ///< retained for introspection
  PerturbationParameter parameter_;
  AnalyzerOptions options_;

  std::size_t dim_ = 0;
  static constexpr std::size_t kNoRow = static_cast<std::size_t>(-1);
  std::vector<std::size_t> rowIndex_;  ///< affine row per feature, kNoRow
                                       ///< for the callable lane
  std::vector<double> weights_;        ///< row-major [affine rows x dim_]
  std::vector<double> constants_;      ///< per feature (0 for callables)
  /// Per affine row, the dual norm under each NormKind (indexed by the enum
  /// value; the Weighted entry is NaN without compiled norm weights).
  std::vector<double> dualNorms_[4];
  /// Per affine row, sum(a_i^2 / w_i) (the weighted dual norm before the
  /// sqrt) when norm weights are compiled in, NaN otherwise. Hoists the
  /// per-evaluate recomputation out of the weighted boundary-point solve.
  std::vector<double> weightedDenom_;
  /// Per affine row, row . defaultOrigin computed once with the blocked
  /// kernels: the metric lane at the compiled defaults needs no dot pass.
  std::vector<double> dotOrigin_;
  /// Per affine row, sum(|a_k * origin_k|) at the compiled default
  /// origin: the magnitude scale the streaming screen uses to bound the
  /// rounding of a kernel dot product when deciding that a row provably
  /// cannot bind.
  std::vector<double> absDotOrigin_;
  /// True when the compiled solver resolves to Analytic for affine rows
  /// AND no constraints clip the radius search, i.e. the metric lane may
  /// use the kernel fast path.
  bool fastSolver_ = false;
  std::vector<std::size_t> callables_;  ///< feature indices, input order

  /// Perturbation subspaces, normalized (never empty) and their component
  /// offsets (subOffsets_[s] .. subOffsets_[s + 1] is block s;
  /// subOffsets_.back() == dim_).
  std::vector<PerturbationSubspace> subspaces_;
  std::vector<std::size_t> subOffsets_;
  bool multi_ = false;  ///< more than one subspace
  /// Per affine row, the dual of the COMBINED norm: the sum over blocks of
  /// the block-restricted dual norm. With a single subspace this is the
  /// same dualNorm() call that fills dualNorms_, so the trivial case is
  /// bit-identical to the legacy engine.
  std::vector<double> effDual_;
  /// Per affine row x subspace, the block-restricted dual norm (row-major,
  /// rows x subspaces); sized only for multi-subspace problems.
  std::vector<double> blockDuals_;
  std::vector<LinearConstraint> constraints_;
};

}  // namespace robust::core
