// Human-readable rendering of robustness reports — shared by the examples,
// the CLI, and anyone embedding the library in tooling.
#pragma once

#include <iosfwd>

#include "robust/core/analyzer.hpp"

namespace robust::core {

/// Rendering options.
struct ReportPrintOptions {
  std::size_t maxRadii = 12;   ///< rows shown before eliding (0 = all)
  int precision = 5;           ///< significant digits
  bool showBoundaryPoints = false;  ///< include pi* per feature
};

/// Prints the full report: a per-feature radius table (elided beyond
/// maxRadii, binding feature always shown), the metric with its units, and
/// the binding feature's boundary point.
void printReport(std::ostream& os, const RobustnessReport& report,
                 const PerturbationParameter& parameter,
                 const ReportPrintOptions& options = {});

}  // namespace robust::core
