// A fluent builder that mirrors the four FePIA steps, so that a derivation
// for a new system reads like Section 2 of the paper:
//
//   auto analyzer = FepiaBuilder("makespan within 120% of predicted")
//       .perturbation("C", cOrig, /*discrete=*/false, "seconds")   // step 2
//       .feature("F_1", impactOfMachine1, ToleranceBounds::atMost(tauM))
//       .feature("F_2", impactOfMachine2, ToleranceBounds::atMost(tauM))
//       ...                                                        // steps 1+3
//       .build();                                                  // step 4
//   auto report = analyzer.analyze();
#pragma once

#include <string>
#include <vector>

#include "robust/core/analyzer.hpp"

namespace robust::core {

/// Accumulates the FePIA derivation for one system and produces a
/// RobustnessAnalyzer. Single-shot: build() may be called once.
class FepiaBuilder {
 public:
  /// `requirement` is the step-1 narrative (kept for reporting/diagnostics).
  explicit FepiaBuilder(std::string requirement);

  /// Step 2: declares the perturbation parameter.
  FepiaBuilder& perturbation(std::string name, num::Vec origin,
                             bool discrete = false, std::string units = {});

  /// Step 2, general form: appends one named perturbation subspace with its
  /// own origin and norm. May be called repeatedly; the full perturbation
  /// vector is the concatenation and a displacement's size is the maximum
  /// of the per-block norms. Mutually exclusive with perturbation().
  FepiaBuilder& subspace(PerturbationSubspace sub);

  /// Declares one hard feasibility constraint g . pi <= bound over the full
  /// concatenated perturbation vector (e.g. a memory capacity). Violating
  /// perturbations outside the region do not count toward any radius, and
  /// an infeasible operating point is reported as
  /// RobustnessReport::infeasibleOrigin.
  FepiaBuilder& constraint(LinearConstraint constraint);

  /// Steps 1+3: adds a performance feature with its impact function and
  /// tolerable-variation bounds.
  FepiaBuilder& feature(std::string name, ImpactFunction impact,
                        ToleranceBounds bounds);

  /// Convenience for affine impacts.
  FepiaBuilder& affineFeature(std::string name, num::Vec weights,
                              double constant, ToleranceBounds bounds);

  /// Optional: analysis configuration (norm, solver).
  FepiaBuilder& options(AnalyzerOptions options);

  /// The step-1 robustness requirement text.
  [[nodiscard]] const std::string& requirement() const noexcept {
    return requirement_;
  }

  /// Step 4: validates the accumulated derivation and constructs the
  /// analyzer. Throws InvalidArgumentError when steps are missing.
  [[nodiscard]] RobustnessAnalyzer build();

  /// Step 4, structure only: releases the accumulated derivation as a
  /// ProblemSpec (for CompiledProblem::compile or deferred analysis).
  /// Single-shot, shared with build()/compile().
  [[nodiscard]] ProblemSpec spec();

  /// Step 4, compiled: validates and compiles the derivation for repeated /
  /// batched evaluation. Single-shot, shared with build()/spec().
  [[nodiscard]] CompiledProblem compile();

 private:
  std::string requirement_;
  std::vector<PerformanceFeature> features_;
  PerturbationParameter parameter_;
  bool haveParameter_ = false;
  std::vector<PerturbationSubspace> subspaces_;
  std::vector<LinearConstraint> constraints_;
  AnalyzerOptions options_;
  bool built_ = false;
};

}  // namespace robust::core
