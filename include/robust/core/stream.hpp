// Out-of-core sharded evaluation of the robustness metric.
//
// analyzeStream() sweeps an on-disk perturbation batch (the binary format
// of robust/core/instance_file.hpp) against a CompiledProblem without ever
// materializing it: the file is carved into shards of
// StreamOptions::shardInstances, each shard is pulled through a reusable
// memory-mapped window into a per-worker arena, scanned with the metric
// lane's exact row arithmetic, and the per-shard (rho, argmin, binding)
// results are merged with a fixed-order pairwise reduction. The global
// answer — metric bits, argmin instance, binding feature, floored flag —
// is bit-identical to running analyzeBatchMetric over the whole batch in
// memory and folding the per-instance results with the first-strict-min
// rule, for every shard size, thread count, and SIMD dispatch target
// (DESIGN.md section 4.11 carries the argument).
//
// The throughput lever is incumbent screening: each worker holds the best
// metric seen so far (a process-wide monotone atomic minimum), and a
// conservatively-margined interval test proves most rows of most
// instances cannot bind without computing their dot products. Screening
// never changes the returned bits — a screened row's radius is provably
// strictly above the incumbent, and an instance rejected against the
// incumbent is provably not the global first-minimum — it only skips
// work, exactly like the in-memory lane's pruning. Problems outside the
// screen's premises (callable features, discrete parameters, non-analytic
// solvers) take the unscreened lane: shards run through the same
// cache-blocked batch scan the in-memory path uses.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

#include "robust/core/compiled.hpp"
#include "robust/core/input_policy.hpp"

namespace robust::core {

/// "No instance": the argmin when the stream holds no instance with a
/// finite metric (every radius infinite, or an empty file).
inline constexpr std::size_t kNoInstance = static_cast<std::size_t>(-1);

struct StreamOptions {
  /// Instances per shard: the unit of scheduling, mapping, and arena
  /// reuse. The result does not depend on it.
  std::size_t shardInstances = 4096;
  /// Worker threads; 0 means defaultThreadCount(). The result does not
  /// depend on it.
  std::size_t threads = 0;
  /// Incumbent screening (see the header comment). Bit-neutral; off
  /// exists to pin that equality in tests.
  bool screen = true;
  /// In-row incumbent pruning, forwarded to the metric lane. Bit-neutral.
  bool prune = true;
  /// Boundary policy for the file lane: header validation caps and the
  /// payload finiteness check (fused into the first pass over each
  /// shard). analyzeStreamValues() does not consult it — in-memory spans
  /// are the caller's trusted data, matching analyzeBatchMetric.
  InputPolicy policy{};
};

struct StreamResult {
  /// The global metric: min over instances of the per-instance rho.
  double metric = 0.0;
  /// First instance attaining it (kNoInstance when the metric is +inf).
  std::size_t argminInstance = kNoInstance;
  /// Binding feature of that instance (0 when argmin is kNoInstance).
  std::size_t bindingFeature = 0;
  /// Whether the winning instance's metric was discrete-floored.
  bool floored = false;

  std::uint64_t instances = 0;  ///< instances evaluated
  std::uint64_t shards = 0;     ///< shards scanned
  /// Instances whose exact metric was never materialized because the
  /// screen proved them strictly above the incumbent.
  std::uint64_t screenedInstances = 0;
};

/// Streams the instance file at `path`. Throws util::ParseError on a
/// malformed file (header or non-finite payload under options.policy),
/// InvalidArgumentError when the file's dimension does not match the
/// problem's, std::runtime_error on I/O failure.
[[nodiscard]] StreamResult analyzeStream(const CompiledProblem& problem,
                                         const std::string& path,
                                         const StreamOptions& options = {});

/// The same sharded scan over an in-memory batch (values.size() must be a
/// multiple of the problem dimension; instance i occupies
/// values[i*dim, (i+1)*dim)). Exists so tests can pin file/memory
/// equality and callers with materialized batches get the screened lane.
[[nodiscard]] StreamResult analyzeStreamValues(
    const CompiledProblem& problem, std::span<const double> values,
    const StreamOptions& options = {});

}  // namespace robust::core
