// Performance features (step 1) and perturbation parameters (step 2) of the
// FePIA procedure.
#pragma once

#include <optional>
#include <string>

#include "robust/core/impact.hpp"
#include "robust/numeric/vector_ops.hpp"

namespace robust::core {

/// The tuple <beta_min, beta_max> of the paper: bounds on the tolerable
/// variation of a performance feature. Either side may be absent (the
/// makespan example only bounds from above).
struct ToleranceBounds {
  std::optional<double> min;
  std::optional<double> max;

  /// Bound only from above: phi <= m.
  [[nodiscard]] static ToleranceBounds atMost(double m) {
    return ToleranceBounds{std::nullopt, m};
  }

  /// Bound only from below: phi >= m.
  [[nodiscard]] static ToleranceBounds atLeast(double m) {
    return ToleranceBounds{m, std::nullopt};
  }

  /// Two-sided bound: lo <= phi <= hi.
  [[nodiscard]] static ToleranceBounds between(double lo, double hi);

  /// True when `value` satisfies all present bounds.
  [[nodiscard]] bool contains(double value) const {
    return (!min || value >= *min) && (!max || value <= *max);
  }
};

/// A system performance feature phi_i together with its impact function
/// f_ij (step 3) and tolerable-variation bounds (step 1).
struct PerformanceFeature {
  std::string name;       ///< e.g. "F_3 (finish time of machine 3)"
  ImpactFunction impact;  ///< phi = f(pi)
  ToleranceBounds bounds; ///< <beta_min, beta_max>
};

/// A perturbation parameter pi_j (step 2): the uncertain vector quantity the
/// mapping must be robust against.
struct PerturbationParameter {
  std::string name;        ///< e.g. "C (actual execution times)"
  num::Vec origin;         ///< pi_orig, the assumed operating point
  bool discrete = false;   ///< integer-valued (Section 3.2's lambda): the
                           ///< metric is floored per the paper
  std::string units;       ///< e.g. "seconds", "objects per data set"
};

/// The norm measuring displacement inside one subspace. Mirrors the
/// analysis-wide NormKind of robust/core/report.hpp; redeclared here would
/// create a cycle, so the subspace stores the enum by value through the
/// AnalyzerOptions include chain (see compiled.hpp).
///
/// One named block of the perturbation vector. The full perturbation
/// parameter is the concatenation of its subspaces; a perturbation of
/// radius r may displace EVERY subspace by up to r in that subspace's own
/// norm (the combined displacement norm is the maximum over subspaces, so
/// a single subspace covering the whole vector reduces exactly to the
/// paper's single-parameter formulation — same norm, same radii, same
/// bits). Subspaces exist so heterogeneous quantities (ETC noise in
/// seconds, sensor loads in objects, memory demand in bytes) each keep
/// their natural norm and origin instead of being flattened into one
/// unit-confused vector.
struct PerturbationSubspace {
  std::string name;        ///< e.g. "C (execution times)"
  num::Vec origin;         ///< this block's slice of pi_orig
  /// Norm for displacements inside this block, as the integer value of
  /// core::NormKind (stored untyped to keep this header free of
  /// report.hpp; compiled.cpp validates the range). 1 == L2, the default.
  int norm = 1;
  num::Vec normWeights;    ///< per-component weights when norm is Weighted
  bool discrete = false;   ///< integer-valued block (Section 3.2 floor)
  std::string units;       ///< e.g. "seconds"
};

/// One hard linear feasibility constraint g . pi <= bound over the FULL
/// concatenated perturbation vector. Constraints carve the feasibility
/// region out of the perturbation space: the radius search only counts
/// violating perturbations that are feasible, and an origin outside the
/// region is reported as a first-class outcome
/// (RobustnessReport::infeasibleOrigin) rather than a radius.
struct LinearConstraint {
  std::string name;        ///< e.g. "memory capacity of m_2"
  num::Vec coeffs;         ///< g, one entry per perturbation component
  double bound = 0.0;      ///< g . pi <= bound
};

}  // namespace robust::core
