// Performance features (step 1) and perturbation parameters (step 2) of the
// FePIA procedure.
#pragma once

#include <optional>
#include <string>

#include "robust/core/impact.hpp"
#include "robust/numeric/vector_ops.hpp"

namespace robust::core {

/// The tuple <beta_min, beta_max> of the paper: bounds on the tolerable
/// variation of a performance feature. Either side may be absent (the
/// makespan example only bounds from above).
struct ToleranceBounds {
  std::optional<double> min;
  std::optional<double> max;

  /// Bound only from above: phi <= m.
  [[nodiscard]] static ToleranceBounds atMost(double m) {
    return ToleranceBounds{std::nullopt, m};
  }

  /// Bound only from below: phi >= m.
  [[nodiscard]] static ToleranceBounds atLeast(double m) {
    return ToleranceBounds{m, std::nullopt};
  }

  /// Two-sided bound: lo <= phi <= hi.
  [[nodiscard]] static ToleranceBounds between(double lo, double hi);

  /// True when `value` satisfies all present bounds.
  [[nodiscard]] bool contains(double value) const {
    return (!min || value >= *min) && (!max || value <= *max);
  }
};

/// A system performance feature phi_i together with its impact function
/// f_ij (step 3) and tolerable-variation bounds (step 1).
struct PerformanceFeature {
  std::string name;       ///< e.g. "F_3 (finish time of machine 3)"
  ImpactFunction impact;  ///< phi = f(pi)
  ToleranceBounds bounds; ///< <beta_min, beta_max>
};

/// A perturbation parameter pi_j (step 2): the uncertain vector quantity the
/// mapping must be robust against.
struct PerturbationParameter {
  std::string name;        ///< e.g. "C (actual execution times)"
  num::Vec origin;         ///< pi_orig, the assumed operating point
  bool discrete = false;   ///< integer-valued (Section 3.2's lambda): the
                           ///< metric is floored per the paper
  std::string units;       ///< e.g. "seconds", "objects per data set"
};

}  // namespace robust::core
