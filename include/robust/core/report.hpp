// Analysis configuration and result types of the FePIA analysis step
// (step 4): the norm and solver selection, one radius report per feature
// (Eq. 1), and the full robustness report (Eq. 2).
//
// These types are shared between the compiled analysis engine
// (robust/core/compiled.hpp) and the legacy RobustnessAnalyzer adapter
// (robust/core/analyzer.hpp); they carry no behaviour beyond naming.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "robust/numeric/optimize.hpp"
#include "robust/numeric/vector_ops.hpp"

namespace robust::core {

/// Which norm measures the perturbation displacement in Eq. 1. The paper
/// fixes L2 (Euclidean); L1 and LInf are provided for the norm ablation,
/// and Weighted is the scaled Euclidean norm sqrt(sum w_i d_i^2) — the
/// natural choice when the perturbation components have different scales
/// (e.g. sensor loads of 962 vs 240 objects per data set).
enum class NormKind { L1, L2, LInf, Weighted };

/// Human-readable norm name ("l1", "l2", "linf", "weighted").
[[nodiscard]] std::string toString(NormKind norm);

/// Strategy for computing a radius.
enum class SolverKind {
  Auto,        ///< analytic for affine impacts, KKT-Newton (with ray-search
               ///< fallback) otherwise
  Analytic,    ///< point-to-hyperplane closed form; affine impacts only
  KktNewton,   ///< damped Newton on the KKT system (L2 only)
  RaySearch,   ///< gradient-alignment ray iteration (L2 only)
  MonteCarlo,  ///< random-direction upper bound (any norm)
};

/// Options controlling the analysis.
struct AnalyzerOptions {
  NormKind norm = NormKind::L2;
  /// Per-component weights for NormKind::Weighted (must be positive and
  /// match the perturbation dimension). A common choice is
  /// w_i = 1 / pi_orig_i^2, which measures RELATIVE displacement.
  num::Vec normWeights;
  SolverKind solver = SolverKind::Auto;
  num::SolverOptions solverOptions;
};

/// Radius of one feature against the perturbation parameter: Eq. 1 plus the
/// diagnostics a practitioner wants (which bound bound it, where).
struct RadiusReport {
  std::string feature;       ///< feature name
  double radius = 0.0;       ///< r_mu(phi_i, pi_j)
  num::Vec boundaryPoint;    ///< pi_star(phi_i) of Fig. 1
  double boundaryLevel = 0.0;///< the beta value of the binding boundary
  bool boundReachable = true;///< false when no boundary crossing exists
                             ///< within the search limit (radius = +inf)
  std::string method;        ///< solver that produced the number
};

/// Full analysis: every radius plus the metric rho (Eq. 2).
struct RobustnessReport {
  std::vector<RadiusReport> radii;      ///< one per feature, input order
  double metric = 0.0;                  ///< rho_mu(Phi, pi_j)
  std::size_t bindingFeature = 0;       ///< argmin index into radii
  bool floored = false;                 ///< metric was floored (discrete pi)
  /// True when the operating point itself violates a hard feasibility
  /// constraint of the problem (a compiled LinearConstraint): the mapping
  /// is not merely fragile but inadmissible, so the metric is reported as
  /// 0 and no radius is meaningful. Always false for unconstrained
  /// problems.
  bool infeasibleOrigin = false;
};

}  // namespace robust::core
