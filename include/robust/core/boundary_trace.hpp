// Boundary tracing for two-dimensional perturbation parameters: the data
// behind Fig. 1 of the paper for ARBITRARY impact functions.
//
// For a feature phi with boundary {pi : f(pi) = beta}, the tracer sweeps
// directions around pi_orig and records the first crossing along each ray —
// producing the boundary curve, which together with pi_orig and pi* is
// exactly what Fig. 1 plots. Works for affine boundaries (straight lines)
// and curved ones (the convex complexity functions of Section 3.2).
#pragma once

#include <vector>

#include "robust/core/analyzer.hpp"

namespace robust::core {

/// One traced boundary sample.
struct BoundarySample {
  double angle = 0.0;   ///< ray direction, radians in [0, 2 pi)
  num::Vec point;       ///< boundary crossing pi on that ray
  double distance = 0.0;///< ||point - pi_orig||_2
};

/// Options for the tracer.
struct BoundaryTraceOptions {
  int rays = 128;             ///< directions swept (uniform in angle)
  double searchLimit = 1e9;   ///< max ray length when bracketing
};

/// Traces the boundary of feature `featureIndex`'s binding level (beta_max
/// when present, else beta_min) around the perturbation origin. Rays that
/// never cross within the search limit are omitted, so fewer than
/// options.rays samples may return (e.g. the half-plane behind an affine
/// boundary). Requires a 2-D perturbation parameter.
[[nodiscard]] std::vector<BoundarySample> traceBoundary2D(
    const RobustnessAnalyzer& analyzer, std::size_t featureIndex,
    const BoundaryTraceOptions& options = {});

}  // namespace robust::core
