// A replicated cloud allocation as a constrained, multi-subspace FePIA
// instance.
//
// CloudSystem is the first consumer of the generalized perturbation model:
// the paper's independent-task system (Section 4) extended with machine
// memory capacities, task replication, and a joint perturbation space. Each
// of T tasks runs R replicas (active replication: every replica executes),
// each replica occupying one SLOT of a slot-encoded sched::Mapping with
// apps() == T * R — slot t*R + r is replica r of task t. The perturbation
// vector concatenates two subspaces:
//
//   s — per-task size multipliers (dim T, origin 1, L2): the actual work of
//       task t is s_t times its estimate, scaling compute AND memory;
//   d — per-machine load offsets (dim M, origin 0, L2): background load
//       added to a machine's finishing time.
//
// Finishing-time features F_j = sum_{slots on j} etc(t, j) * s_t + d_j must
// stay within tau * (predicted makespan), and hard memory constraints
// sum_{slots on j} mem_t * s_t <= capacity_j clamp the radius search to the
// feasible region — a mapping that overcommits memory at the origin is
// reported infeasible (RobustnessReport::infeasibleOrigin), not merely
// fragile. Machine drop-outs are the discrete axis: failureRadius() is the
// number of simultaneous machine failures every task is guaranteed to
// survive (core/failure.hpp), which replication onto distinct hosts raises.
#pragma once

#include <cstddef>

#include "robust/core/analyzer.hpp"
#include "robust/core/failure.hpp"
#include "robust/scheduling/etc.hpp"
#include "robust/scheduling/heuristics.hpp"
#include "robust/scheduling/mapping.hpp"

namespace robust::sched {

/// A cloud allocation problem: tasks with memory demands, machines with
/// memory capacities, R-fold replication, and a makespan tolerance.
struct CloudScenario {
  EtcMatrix etc;             ///< estimated execution time, task x machine
  num::Vec memDemand;        ///< per-task memory demand (one replica's)
  num::Vec memCapacity;      ///< per-machine memory capacity
  std::size_t replication = 1;  ///< replicas per task (>= 1)
  double tau = 1.2;          ///< makespan tolerance (Eq. 6), >= 1
};

/// Options for the replication-aware robustness search objective.
/// Tiered weights for the search objective. The tiers are lexicographic by
/// construction: the failure radius dominates the distinct-host bonus,
/// which dominates the (capped) continuous metric.
struct CloudObjectiveOptions {
  /// Weight of the failure radius: one extra survivable machine failure
  /// outweighs any separation or rho improvement.
  double failureWeight = 1e6;
  /// Penalty floor for memory-infeasible mappings (their total overcommit
  /// is added on top so search can still descend toward feasibility).
  double infeasiblePenalty = 1e9;
  /// Reward per distinct replica host beyond the first, summed over tasks.
  /// The failure radius is a min over tasks, so separating one co-located
  /// pair at a time is invisible to it until the last pair; this tier makes
  /// each separating move strictly improving. rho is capped at half this
  /// weight so separation always wins over the metric.
  double distinctHostWeight = 1e2;
};

class CloudSystem {
 public:
  explicit CloudSystem(CloudScenario scenario);

  [[nodiscard]] const CloudScenario& scenario() const noexcept {
    return scenario_;
  }
  [[nodiscard]] std::size_t tasks() const noexcept {
    return scenario_.etc.apps();
  }
  [[nodiscard]] std::size_t machines() const noexcept {
    return scenario_.etc.machines();
  }
  /// Slots in a mapping for this scenario: tasks() * replication.
  [[nodiscard]] std::size_t slots() const noexcept {
    return tasks() * scenario_.replication;
  }
  /// Task owning a slot (slot t*R + r is replica r of task t).
  [[nodiscard]] std::size_t taskOfSlot(std::size_t slot) const;

  /// Memory-oblivious greedy placement: tasks in index order, each replica
  /// to the machine with the least accumulated finishing time among the
  /// machines not yet hosting this task (falling back to all machines when
  /// R > M). Deliberately ignores memory — on a memory-tight scenario it
  /// produces an origin-infeasible mapping that analyze() rejects.
  [[nodiscard]] Mapping greedyMapping() const;

  /// Total memory overcommit at the origin (s = 1): sum over machines of
  /// max(0, demand on machine - capacity). Zero iff the mapping is feasible.
  [[nodiscard]] double memoryViolation(const Mapping& mapping) const;

  /// True when no machine's memory capacity is exceeded at the origin.
  [[nodiscard]] bool isFeasible(const Mapping& mapping) const;

  /// Predicted makespan at the origin: max_j sum_{slots on j} etc(t, j).
  [[nodiscard]] double predictedMakespan(const Mapping& mapping) const;

  /// The discrete failure model of a mapping: per task, the machines
  /// hosting its replicas.
  [[nodiscard]] core::FailureModel failureModel(const Mapping& mapping) const;

  /// Machine failures every task is guaranteed to survive:
  /// min over tasks of (distinct replica hosts - 1).
  [[nodiscard]] std::size_t failureRadius(const Mapping& mapping) const;

  /// The constrained two-subspace FePIA derivation of a mapping (see the
  /// file comment for the feature/constraint algebra).
  [[nodiscard]] core::ProblemSpec toSpec(
      const Mapping& mapping, core::AnalyzerOptions options = {}) const;

  /// Compile + evaluate toSpec(). An origin-infeasible mapping yields
  /// metric 0 with RobustnessReport::infeasibleOrigin set.
  [[nodiscard]] core::RobustnessReport analyze(
      const Mapping& mapping, core::AnalyzerOptions options = {}) const;

  /// Replication-aware search objective (to MINIMIZE): infeasible mappings
  /// cost infeasiblePenalty + overcommit; feasible ones score
  /// -(failureWeight * failureRadius + distinctHostWeight * separation
  ///   + capped rho),
  /// so search first maximizes survivable failures, then replica
  /// separation, then the continuous constrained metric. Usable with the
  /// shape-generic localSearch / annealMapping / geneticAlgorithm over
  /// (slots(), machines()).
  [[nodiscard]] MappingObjective searchObjective(
      CloudObjectiveOptions objectiveOptions = {},
      core::AnalyzerOptions analyzerOptions = {}) const;

  /// Steepest-descent local search over single-slot reassignments on
  /// searchObjective(). The returned mapping is feasible whenever any
  /// feasible mapping is reachable from `start` by such moves.
  [[nodiscard]] Mapping improve(Mapping start, int maxRounds = 50) const;

 private:
  CloudScenario scenario_;
};

}  // namespace robust::sched
