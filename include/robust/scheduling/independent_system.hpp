// The Section 3.1 derivation: makespan robustness of an independent-task
// allocation against ETC estimation errors.
//
// Performance features: machine finishing times F_j (Eq. 3).
// Perturbation parameter: C, the vector of actual execution times of every
// application on its assigned machine (one component per application).
// Impact: F_j(C) = sum of C_i over applications on m_j (Eq. 4), affine in C,
// so every radius has the closed form of Eq. 6 and the metric is Eq. 7.
#pragma once

#include <cstddef>
#include <vector>

#include "robust/core/analyzer.hpp"
#include "robust/scheduling/etc.hpp"
#include "robust/scheduling/mapping.hpp"

namespace robust::sched {

/// Result of the makespan-robustness analysis of one mapping.
struct MakespanRobustness {
  double predictedMakespan = 0.0;  ///< M_orig
  double robustness = 0.0;         ///< rho_mu(Phi, C), Eq. 7 (seconds)
  std::size_t bindingMachine = 0;  ///< machine whose radius attains the min
  std::vector<double> radii;       ///< r_mu(F_j, C) per machine, Eq. 6;
                                   ///< +inf for machines with no application
};

/// Binds an ETC matrix, a mapping, and the tolerance tau (the actual makespan
/// may be at most tau * predicted makespan; Section 4.2 uses tau = 1.2).
class IndependentTaskSystem {
 public:
  /// `tau` must exceed 1 (a tolerance of exactly 1 admits no error at all —
  /// permitted, but then every radius is 0).
  IndependentTaskSystem(const EtcMatrix& etc, Mapping mapping, double tau);

  [[nodiscard]] const Mapping& mapping() const noexcept { return mapping_; }
  [[nodiscard]] double tau() const noexcept { return tau_; }

  /// C_orig: estimated execution time of each application on its assigned
  /// machine — the perturbation parameter's operating point.
  [[nodiscard]] std::vector<double> estimatedTimes() const;

  /// Finishing times F_j(C_orig) per machine.
  [[nodiscard]] std::vector<double> finishing() const;

  /// Predicted makespan M_orig.
  [[nodiscard]] double predictedMakespan() const;

  /// Robustness radius of machine `j` via Eq. 6:
  /// (tau * M_orig - F_j(C_orig)) / sqrt(n(m_j)); +inf when n(m_j) = 0
  /// (an empty machine's finishing time is identically 0 and can never
  /// violate the requirement).
  [[nodiscard]] double robustnessRadius(std::size_t machine) const;

  /// Full analysis: all radii, the metric (Eq. 7), the binding machine.
  [[nodiscard]] MakespanRobustness analyze() const;

  /// The critical perturbation C* attaining the metric. Per the paper's
  /// observations (1)-(2): it differs from C_orig only on applications mapped
  /// to the binding machine, all of which receive the *same* ETC error.
  [[nodiscard]] std::vector<double> criticalPoint() const;

  /// The equivalent generic FePIA derivation (one affine feature per
  /// non-empty machine), ready for CompiledProblem::compile or the legacy
  /// analyzer.
  [[nodiscard]] core::ProblemSpec toSpec(
      core::AnalyzerOptions options = {}) const;

  /// Compiles the derivation for repeated / batched evaluation.
  [[nodiscard]] core::CompiledProblem compile(
      core::AnalyzerOptions options = {}) const;

  /// Builds the equivalent generic FePIA analyzer (one affine feature per
  /// non-empty machine). Used to cross-validate Eq. 6 against the generic
  /// solvers, and as the worked example of deriving a system with the core
  /// API.
  [[nodiscard]] core::RobustnessAnalyzer toAnalyzer(
      core::AnalyzerOptions options = {}) const;

 private:
  const EtcMatrix& etc_;
  Mapping mapping_;
  double tau_;
};

}  // namespace robust::sched
