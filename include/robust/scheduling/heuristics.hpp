// Baseline mapping heuristics for the independent-task system.
//
// The paper evaluates 1000 uniformly random mappings; its reference [7]
// (Braun et al. 2001) compares a standard battery of static heuristics.
// These are implemented here both as baselines and as the inputs to
// robustness-aware mapping studies: every iterative heuristic accepts an
// arbitrary objective, so mappings can be optimized for makespan (classic)
// or directly for the robustness metric (Eq. 7).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "robust/scheduling/etc.hpp"
#include "robust/scheduling/mapping.hpp"
#include "robust/util/rng.hpp"

namespace robust::sched {

/// Objective to MINIMIZE over mappings.
using MappingObjective = std::function<double(const Mapping&)>;

/// Structured description of the standard ETC objectives. The iterative
/// optimizers recognize this form and score candidates with the incremental
/// evaluation engine (robust/scheduling/incremental.hpp) — O(apps/machines)
/// amortized per candidate instead of an O(apps + machines) system rebuild —
/// while producing results bit-identical to the generic MappingObjective
/// closures below (the engine replays the exact analyze() float operations).
/// Custom objectives keep using the MappingObjective overloads.
struct EtcObjective {
  enum class Kind {
    Makespan,           ///< minimize the makespan
    NegatedRobustness,  ///< maximize the Eq. 7 metric (see the factory docs)
    CappedRobustness,   ///< maximize the metric s.t. makespan <= makespanCap
  };
  Kind kind = Kind::Makespan;
  double tau = 1.2;          ///< tolerance; used by the robustness kinds
  double makespanCap = 0.0;  ///< used by CappedRobustness only

  [[nodiscard]] static EtcObjective makespan();
  [[nodiscard]] static EtcObjective negatedRobustness(double tau);
  [[nodiscard]] static EtcObjective cappedRobustness(double tau,
                                                     double makespanCap);

  /// The value to minimize, given a candidate's makespan and Eq. 7 metric.
  /// Identical arithmetic to the matching MappingObjective closure.
  [[nodiscard]] double score(double makespanValue, double robustness) const;

  /// The equivalent generic closure (for optimizers without a structured
  /// overload, and for cross-checking the incremental path in tests).
  [[nodiscard]] MappingObjective generic(const EtcMatrix& etc) const;
};

/// Classic objective: the makespan of the mapping.
[[nodiscard]] MappingObjective makespanObjective(const EtcMatrix& etc);

/// Robustness-aware objective: the negated Eq. 7 metric (so minimizing it
/// maximizes robustness) with tolerance `tau`. Beware: because Eq. 6 scales
/// with tau * M_orig, UNCONSTRAINED robustness maximization inflates the
/// makespan (a longer schedule tolerates absolutely larger ETC errors);
/// combine with a makespan cap for meaningful trade-off studies.
[[nodiscard]] MappingObjective negatedRobustnessObjective(const EtcMatrix& etc,
                                                          double tau);

/// Robustness maximization subject to makespan <= makespanCap: mappings
/// violating the cap are penalized by their excess, steering search back
/// into the feasible region. This is the practical "most robust mapping
/// that is still fast" formulation.
[[nodiscard]] MappingObjective cappedRobustnessObjective(const EtcMatrix& etc,
                                                         double tau,
                                                         double makespanCap);

/// Round-robin assignment: app i -> machine i mod |M|.
[[nodiscard]] Mapping roundRobinMapping(const EtcMatrix& etc);

/// OLB (opportunistic load balancing): each application, in index order, goes
/// to the machine that becomes available earliest, ignoring the app's ETC.
[[nodiscard]] Mapping olbMapping(const EtcMatrix& etc);

/// MET (minimum execution time): each application goes to the machine with
/// its smallest ETC, ignoring machine availability.
[[nodiscard]] Mapping metMapping(const EtcMatrix& etc);

/// MCT (minimum completion time): each application, in index order, goes to
/// the machine minimizing availability + ETC.
[[nodiscard]] Mapping mctMapping(const EtcMatrix& etc);

/// Min-min: repeatedly pick the unmapped application whose best completion
/// time is smallest and commit it to that machine.
[[nodiscard]] Mapping minMinMapping(const EtcMatrix& etc);

/// Max-min: repeatedly pick the unmapped application whose best completion
/// time is LARGEST and commit it to that machine.
[[nodiscard]] Mapping maxMinMapping(const EtcMatrix& etc);

/// Sufferage: repeatedly pick the unmapped application that would "suffer"
/// most (largest gap between its best and second-best completion times) and
/// commit it to its best machine.
[[nodiscard]] Mapping sufferageMapping(const EtcMatrix& etc);

/// Greedy robustness-aware list heuristic: applications are committed in
/// decreasing order of their minimum ETC, each to the machine that
/// maximizes the partial mapping's NORMALIZED robustness rho / M (Eq. 7
/// over the applications mapped so far, divided by the partial makespan —
/// the normalization removes the metric's makespan-inflation degeneracy).
/// Ties break toward the smaller completion time. A constructive
/// counterpart to optimizing cappedRobustnessObjective.
[[nodiscard]] Mapping greedyRobustMapping(const EtcMatrix& etc, double tau);

/// Duplex (Braun et al.): run both min-min and max-min and keep the mapping
/// with the smaller makespan.
[[nodiscard]] Mapping duplexMapping(const EtcMatrix& etc);

/// Options for tabu search.
struct TabuOptions {
  int iterations = 500;     ///< neighborhood evaluations
  int tenure = 40;          ///< how long a visited move stays tabu
  int patience = 120;       ///< stop after this many non-improving moves
};

/// Tabu search over single-application reassignments: each step moves to
/// the best non-tabu neighbor (even if worse — that is how it escapes local
/// optima), records the inverse move as tabu for `tenure` steps (aspiration:
/// a tabu move that beats the incumbent is allowed), and returns the best
/// mapping seen.
[[nodiscard]] Mapping tabuSearch(const EtcMatrix& etc, Mapping start,
                                 const MappingObjective& objective,
                                 const TabuOptions& options = {});

/// Steepest-descent local search over single-application reassignments for
/// an arbitrary assignment problem: only the mapping shape (apps x
/// machines) and the objective are needed. This is the entry point for
/// non-ETC systems (e.g. maximizing the HiPer-D robustness metric through
/// hiperd::robustnessObjective).
[[nodiscard]] Mapping localSearch(std::size_t apps, std::size_t machines,
                                  Mapping start,
                                  const MappingObjective& objective,
                                  int maxRounds = 1000);

/// Steepest-descent local search: repeatedly applies the single-application
/// reassignment that most improves `objective`, until no move improves
/// (ETC-shaped convenience wrapper around the shape-generic overload).
[[nodiscard]] Mapping localSearch(const EtcMatrix& etc, Mapping start,
                                  const MappingObjective& objective,
                                  int maxRounds = 1000);

/// Options for the incremental local search overload.
struct LocalSearchOptions {
  int maxRounds = 1000;
  /// Neighborhood-scan workers: 1 = serial, 0 = defaultThreadCount()
  /// (ROBUST_THREADS / hardware). The scan partitions applications into
  /// contiguous blocks and reduces block winners with the deterministic
  /// tie-break "lowest (app, machine) wins", so the chosen move — and hence
  /// the final mapping — is bit-identical for every thread count.
  std::size_t threads = 1;
};

/// Steepest-descent local search on a standard ETC objective, scored by the
/// incremental evaluation engine. Bit-identical to the generic overload with
/// `objective.generic(etc)`; optionally evaluates the neighborhood in
/// parallel (see LocalSearchOptions::threads).
[[nodiscard]] Mapping localSearch(const EtcMatrix& etc, Mapping start,
                                  const EtcObjective& objective,
                                  const LocalSearchOptions& options = {});

/// Options for simulated annealing.
struct AnnealingOptions {
  int iterations = 20000;
  double initialTemperature = 1.0;  ///< scaled by the start objective value
  double coolingRate = 0.999;
  std::uint64_t seed = 1;
};

/// Simulated annealing over single-application reassignments for an
/// arbitrary assignment problem: only the mapping shape (apps x machines)
/// and the objective are needed. This is the entry point for non-ETC
/// systems (e.g. maximizing the HiPer-D robustness metric over mappings).
[[nodiscard]] Mapping annealMapping(std::size_t apps, std::size_t machines,
                                    Mapping start,
                                    const MappingObjective& objective,
                                    const AnnealingOptions& options = {});

/// Simulated annealing over single-application reassignments (ETC-shaped
/// convenience wrapper around annealMapping).
[[nodiscard]] Mapping simulatedAnnealing(const EtcMatrix& etc, Mapping start,
                                         const MappingObjective& objective,
                                         const AnnealingOptions& options = {});

/// Simulated annealing on a standard ETC objective, scored incrementally
/// (one tryMove per proposal instead of a full system rebuild). Mirrors the
/// generic annealMapping loop RNG-draw for RNG-draw, so for the same seed it
/// returns exactly the mapping the generic path would.
[[nodiscard]] Mapping simulatedAnnealing(const EtcMatrix& etc, Mapping start,
                                         const EtcObjective& objective,
                                         const AnnealingOptions& options = {});

/// Options for the genetic algorithm.
struct GeneticOptions {
  int populationSize = 60;
  int generations = 200;
  double crossoverRate = 0.9;
  double mutationRate = 0.05;   ///< per-gene reassignment probability
  int tournamentSize = 3;
  int eliteCount = 2;
  std::uint64_t seed = 1;
};

/// Genetic algorithm over assignment vectors for an arbitrary assignment
/// problem (uniform crossover, per-gene mutation, tournament selection,
/// elitism); only the mapping shape and the objective are needed. Same RNG
/// stream as the ETC overloads, so equal objectives produce equal results.
[[nodiscard]] Mapping geneticAlgorithm(std::size_t apps, std::size_t machines,
                                       Mapping seedMapping,
                                       const MappingObjective& objective,
                                       const GeneticOptions& options = {});

/// Genetic algorithm over assignment vectors (uniform crossover, per-gene
/// mutation, tournament selection, elitism). Population is seeded with the
/// provided mapping plus random ones.
[[nodiscard]] Mapping geneticAlgorithm(const EtcMatrix& etc, Mapping seedMapping,
                                       const MappingObjective& objective,
                                       const GeneticOptions& options = {});

/// Genetic algorithm on a standard ETC objective. Individuals are scored
/// with the reusable-buffer ScratchEvaluator (no per-evaluation Mapping
/// construction or allocation); same RNG stream as the generic overload, so
/// results are bit-identical to it for the same seed.
[[nodiscard]] Mapping geneticAlgorithm(const EtcMatrix& etc, Mapping seedMapping,
                                       const EtcObjective& objective,
                                       const GeneticOptions& options = {});

/// Registry entry for the constructive heuristics, used by the comparison
/// example/bench to iterate over all of them.
struct HeuristicEntry {
  std::string name;
  Mapping (*build)(const EtcMatrix&);
};

/// All constructive (non-randomized) heuristics above.
[[nodiscard]] const std::vector<HeuristicEntry>& constructiveHeuristics();

}  // namespace robust::sched
