// CSV persistence for ETC matrices, so instances can be exchanged with
// external tools (and the exact matrices behind published experiments can
// be archived alongside the numbers they produced).
//
// Format: one header row "app,m0,m1,..." then one row per application:
// "a<i>,<C_i0>,<C_i1>,...". Values are written with enough digits to
// round-trip doubles exactly.
//
// Loading is a trust boundary: the loader tracks line/column provenance
// and rejects malformed input with a structured util::ParseError —
// "etc.csv:12:4: cell 'nan' is not a finite positive time" — enforcing
// rectangularity unconditionally and the value-domain checks of the given
// core::InputPolicy (finite, strictly positive cells by default).
#pragma once

#include <iosfwd>
#include <string_view>

#include "robust/core/input_policy.hpp"
#include "robust/scheduling/etc.hpp"

namespace robust::sched {

/// Writes `etc` to `os` in the CSV format above.
void saveEtcCsv(const EtcMatrix& etc, std::ostream& os);

/// Parses an ETC matrix from `is`. Throws util::ParseError (an
/// InvalidArgumentError) on malformed input — ragged rows, non-numeric or
/// policy-violating cells, empty matrix — with `source` naming the input
/// in the diagnostic and the column identifying the 1-based CSV field.
[[nodiscard]] EtcMatrix loadEtcCsv(std::istream& is,
                                   std::string_view source = "etc.csv",
                                   const core::InputPolicy& policy = {});

}  // namespace robust::sched
