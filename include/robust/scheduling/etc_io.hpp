// CSV persistence for ETC matrices, so instances can be exchanged with
// external tools (and the exact matrices behind published experiments can
// be archived alongside the numbers they produced).
//
// Format: one header row "app,m0,m1,..." then one row per application:
// "a<i>,<C_i0>,<C_i1>,...". Values are written with enough digits to
// round-trip doubles exactly.
#pragma once

#include <iosfwd>

#include "robust/scheduling/etc.hpp"

namespace robust::sched {

/// Writes `etc` to `os` in the CSV format above.
void saveEtcCsv(const EtcMatrix& etc, std::ostream& os);

/// Parses an ETC matrix from `is`. Throws InvalidArgumentError on malformed
/// input (ragged rows, non-numeric cells, empty matrix).
[[nodiscard]] EtcMatrix loadEtcCsv(std::istream& is);

}  // namespace robust::sched
