// The ETC (estimated time to compute) model of Section 3.1 and its random
// instance generator.
//
// C_ij is the estimated execution time of application a_i on machine m_j.
// Instances are generated with the coefficient-of-variation-based (CVB)
// method of Ali et al. 2000 (ref [3]): task heterogeneity V_task controls
// how much applications differ from each other; machine heterogeneity V_mach
// controls how much machines differ on one application.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "robust/util/rng.hpp"

namespace robust::sched {

/// Dense |A| x |M| matrix of estimated times to compute.
class EtcMatrix {
 public:
  /// Creates an apps x machines matrix, zero-initialized.
  EtcMatrix(std::size_t apps, std::size_t machines);

  [[nodiscard]] std::size_t apps() const noexcept { return apps_; }
  [[nodiscard]] std::size_t machines() const noexcept { return machines_; }

  /// ETC of application `app` on machine `machine`.
  [[nodiscard]] double& operator()(std::size_t app, std::size_t machine) noexcept {
    return data_[app * machines_ + machine];
  }
  [[nodiscard]] double operator()(std::size_t app,
                                  std::size_t machine) const noexcept {
    return data_[app * machines_ + machine];
  }

 private:
  std::size_t apps_;
  std::size_t machines_;
  std::vector<double> data_;
};

/// Row/column structure of the generated matrix (Braun et al. taxonomy).
enum class EtcConsistency {
  Inconsistent,      ///< raw CVB draws (the paper's Section 4.2 setting)
  Consistent,        ///< each row sorted: machine m_0 fastest for every task
  SemiConsistent,    ///< even-indexed columns made consistent, odd raw
};

/// Parameters of the CVB generator; defaults are the paper's Section 4.2
/// experiment (mean 10, task heterogeneity 0.7, machine heterogeneity 0.7).
struct EtcOptions {
  std::size_t apps = 20;
  std::size_t machines = 5;
  double meanTaskTime = 10.0;
  double taskHeterogeneity = 0.7;
  double machineHeterogeneity = 0.7;
  EtcConsistency consistency = EtcConsistency::Inconsistent;
};

/// Generates an ETC matrix with the CVB method: a per-task central value
/// q_i ~ Gamma(mean = meanTaskTime, cv = taskHeterogeneity), then
/// C_ij ~ Gamma(mean = q_i, cv = machineHeterogeneity).
[[nodiscard]] EtcMatrix generateEtc(const EtcOptions& options, Pcg32& rng);

}  // namespace robust::sched
