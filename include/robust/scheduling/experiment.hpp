// The Section 4.2 experiment driver: evaluate N random mappings of a CVB
// ETC instance for makespan, load balance index, and the robustness metric
// (the data behind Fig. 3).
#pragma once

#include <cstdint>
#include <vector>

#include "robust/scheduling/independent_system.hpp"

namespace robust::sched {

/// One evaluated mapping (one point of Fig. 3).
struct Fig3Row {
  double makespan = 0.0;
  double robustness = 0.0;       ///< rho (Eq. 7), seconds
  double loadBalance = 0.0;      ///< load balance index
  std::size_t makespanMachineCount = 0;  ///< n(m(C_orig)) of Section 4.2
  std::size_t maxMachineCount = 0;       ///< max_j n(m_j)
  /// True when the mapping belongs to the cluster set S_1(x): the machine
  /// that determines the makespan also has the (equal-)largest application
  /// count, which makes robustness EXACTLY (tau-1) * makespan / sqrt(x).
  bool inS1 = false;
};

/// Parameters of the experiment; defaults are the paper's (1000 mappings,
/// 20 applications, 5 machines, Gamma mean 10, heterogeneity 0.7/0.7,
/// tau = 1.2).
struct Fig3Options {
  std::size_t mappings = 1000;
  EtcOptions etc;
  double tau = 1.2;
  std::uint64_t seed = 2003;
  std::size_t threads = 0;  ///< 0 = hardware concurrency
};

/// Runs the experiment. Deterministic in (options, seed) regardless of the
/// thread count: each mapping draws from its own counter-derived substream.
[[nodiscard]] std::vector<Fig3Row> runFig3(const Fig3Options& options);

}  // namespace robust::sched
