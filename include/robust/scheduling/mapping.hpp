// Mappings (matchings of applications to machines) and their basic
// performance metrics: finishing times, makespan, and the load balance index
// used in Section 4.2.
#pragma once

#include <cstddef>
#include <vector>

#include "robust/scheduling/etc.hpp"
#include "robust/util/rng.hpp"

namespace robust::sched {

/// A mapping mu: application index -> machine index.
class Mapping {
 public:
  /// Wraps an assignment vector; every entry must be < machines.
  Mapping(std::vector<std::size_t> assignment, std::size_t machines);

  [[nodiscard]] std::size_t apps() const noexcept {
    return assignment_.size();
  }
  [[nodiscard]] std::size_t machines() const noexcept { return machines_; }

  /// Machine assigned to application `app`.
  [[nodiscard]] std::size_t machineOf(std::size_t app) const {
    return assignment_.at(app);
  }

  /// Reassigns application `app` to `machine` (bounds-checked).
  void assign(std::size_t app, std::size_t machine);

  /// The raw assignment vector.
  [[nodiscard]] const std::vector<std::size_t>& assignment() const noexcept {
    return assignment_;
  }

  /// Applications mapped to each machine, in application order:
  /// result[j] lists the app indices on machine j.
  [[nodiscard]] std::vector<std::vector<std::size_t>> appsPerMachine() const;

  /// Number of applications on each machine: n(m_j) of Section 4.2.
  [[nodiscard]] std::vector<std::size_t> countPerMachine() const;

 private:
  std::vector<std::size_t> assignment_;
  std::size_t machines_;
};

/// Uniformly random mapping (the Section 4 experiment draw: each application
/// assigned an independently, uniformly chosen machine).
[[nodiscard]] Mapping randomMapping(std::size_t apps, std::size_t machines,
                                    Pcg32& rng);

/// Finishing time F_j of every machine under `mapping` with estimated times
/// `etc` (Eq. 4 evaluated at C_orig): F_j = sum of C_ij over apps on m_j.
[[nodiscard]] std::vector<double> finishingTimes(const EtcMatrix& etc,
                                                 const Mapping& mapping);

/// Makespan: max finishing time (completion time of the entire set).
[[nodiscard]] double makespan(const EtcMatrix& etc, const Mapping& mapping);

/// Load balance index of Section 4.2: (earliest machine finish) / makespan,
/// in [0, 1], larger = more balanced. Machines with no applications have
/// finishing time 0, making the index 0 — matching the paper's definition.
[[nodiscard]] double loadBalanceIndex(const EtcMatrix& etc,
                                      const Mapping& mapping);

}  // namespace robust::sched
