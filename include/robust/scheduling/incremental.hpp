// Incremental evaluation of the Section 3.1 makespan/robustness pair for
// mapping search.
//
// The search heuristics (local search, annealing, GA, tabu) score thousands
// of candidate mappings that differ from the incumbent by one reassignment
// or one swap. Rebuilding an IndependentTaskSystem per candidate costs
// O(apps + machines) plus several allocations; the evaluators here answer
// the same query from cached state:
//
//   - `ScratchEvaluator`: from-scratch O(apps + machines) evaluation with
//     reused buffers and zero steady-state allocations (the population /
//     arbitrary-genome path).
//   - `IncrementalEvaluator`: stateful tryMove/trySwap/commit/revert around
//     one incumbent mapping. A candidate re-sums only the two touched
//     machines' finishing times (O(n(m_j)) average = apps/machines) and
//     re-minimizes the Eq. 6 radii in O(machines) for small machine counts
//     or O(distinct counts + log machines) via sorted load structures for
//     large ones.
//
// Exactness contract: every result is BIT-IDENTICAL to
// IndependentTaskSystem::analyze() on the corresponding mapping — same
// makespan, same Eq. 7 metric, same binding machine. This holds because the
// evaluators replay the exact float operations of the from-scratch path:
// per-machine finishing times are re-summed in ascending application-index
// order (the `finishingTimes` accumulation order; float addition is not
// associative, so incremental += / -= replay would drift), and the
// max/argmin reductions use the same strict comparisons as `analyze()`.
#pragma once

#include <cstddef>
#include <limits>
#include <map>
#include <set>
#include <span>
#include <vector>

#include "robust/scheduling/etc.hpp"
#include "robust/scheduling/independent_system.hpp"
#include "robust/scheduling/mapping.hpp"

namespace robust::sched {

/// The per-candidate quantities mapping search needs: the predicted makespan,
/// the Eq. 7 metric, and the machine whose Eq. 6 radius attains it.
struct EvalResult {
  double makespan = 0.0;
  double robustness = std::numeric_limits<double>::infinity();
  std::size_t bindingMachine = 0;
};

/// From-scratch evaluation with reusable buffers: O(apps + machines) per
/// call, no allocations after the first. Exactly matches
/// IndependentTaskSystem::analyze() on the same assignment.
class ScratchEvaluator {
 public:
  /// Binds the ETC matrix and tolerance (tau >= 1, as in
  /// IndependentTaskSystem).
  ScratchEvaluator(const EtcMatrix& etc, double tau);

  [[nodiscard]] double tau() const noexcept { return tau_; }

  /// Evaluates an assignment vector (one machine index per application;
  /// every entry must be < etc.machines()).
  [[nodiscard]] EvalResult evaluate(std::span<const std::size_t> assignment);

 private:
  const EtcMatrix* etc_;
  double tau_;
  std::vector<double> load_;
  std::vector<std::size_t> count_;
  std::vector<double> sqrtCount_;  ///< sqrt(c) for c = 0..apps (exact: IEEE
                                   ///< sqrt is correctly rounded)
};

/// Always-on work counters for one evaluator: how many candidates were
/// scored as cheap deltas (moves / swaps) vs. full O(apps + machines)
/// rebuilds. Plain non-atomic members incremented on the hot path — one
/// register add, far below the per-probe work, so they cost nothing
/// measurable even with observability disabled. publishStats() flushes them
/// to the obs registry (sched.inc_*) in one batch. Copies of an evaluator
/// carry their own counts.
struct IncrementalStats {
  std::uint64_t moves = 0;     ///< tryMove probes (delta evaluations)
  std::uint64_t swaps = 0;     ///< trySwap probes (delta evaluations)
  std::uint64_t commits = 0;   ///< staged candidates applied
  std::uint64_t rebuilds = 0;  ///< full from-scratch re-evaluations
};

/// Tuning knobs for IncrementalEvaluator.
struct IncrementalOptions {
  /// With at most this many machines the candidate max/min reductions scan
  /// the dense load/count arrays (contiguous, branch-light — faster than
  /// pointer-chasing for small fleets). Above it, sorted structures answer
  /// the same queries in O(distinct counts + log machines). Both paths are
  /// exact; tests force each explicitly.
  std::size_t denseMachineThreshold = 32;
};

/// Stateful incremental evaluator around one incumbent mapping.
///
/// Protocol: `tryMove` / `trySwap` score a candidate WITHOUT changing the
/// incumbent and stage it as pending; `commit()` applies the staged
/// candidate; `revert()` discards it. Staging is overwritten by the next
/// try, so reject-and-continue loops need no explicit revert.
///
/// Copyable (parallel neighborhood scans give each worker its own copy).
class IncrementalEvaluator {
 public:
  IncrementalEvaluator(const EtcMatrix& etc, Mapping start, double tau,
                       const IncrementalOptions& options = {});

  [[nodiscard]] const Mapping& mapping() const noexcept { return mapping_; }
  [[nodiscard]] double tau() const noexcept { return tau_; }

  /// The incumbent's analysis (cached; O(1)).
  [[nodiscard]] const EvalResult& current() const noexcept { return current_; }

  /// Scores reassigning `app` to `machine`. A no-op move (machine already
  /// assigned) returns `current()` and stages nothing.
  EvalResult tryMove(std::size_t app, std::size_t machine);

  /// Scores exchanging the machines of `appA` and `appB`. Apps sharing a
  /// machine are a no-op (returns `current()`, stages nothing).
  EvalResult trySwap(std::size_t appA, std::size_t appB);

  /// Applies the staged candidate. Returns false when nothing is staged.
  bool commit();

  /// Discards the staged candidate (the incumbent was never modified).
  void revert() noexcept { pending_.active = false; }

  /// Replaces the incumbent wholesale (O(apps + machines log machines)).
  void reset(Mapping mapping);

  /// Work performed by this evaluator since construction (or the last
  /// publishStats()).
  [[nodiscard]] const IncrementalStats& stats() const noexcept {
    return stats_;
  }

  /// Flushes stats() to the obs counters (sched.inc_moves / inc_swaps /
  /// inc_commits / inc_rebuilds) when recording is enabled, then zeroes
  /// them. Search drivers call this once per search, keeping the per-probe
  /// hot path free of any observability cost.
  void publishStats();

 private:
  // One staged candidate: up to two apps reassigned, exactly two machines
  // with re-summed loads and adjusted counts.
  struct Pending {
    bool active = false;
    std::size_t appA = 0, appB = 0;       ///< appB == appA for a move
    std::size_t machineA = 0, machineB = 0;  ///< new machine per app
    std::size_t touchedA = 0, touchedB = 0;  ///< the two changed machines
    double loadA = 0.0, loadB = 0.0;         ///< their new finishing times
    std::size_t countA = 0, countB = 0;      ///< their new app counts
    EvalResult result;
  };

  // Sorted-load entry ordering: load ascending, machine index DESCENDING,
  // so the greatest element is (max load, smallest index among that load) —
  // the candidate analyze() would report on ties.
  struct LoadOrder {
    bool operator()(const std::pair<double, std::size_t>& a,
                    const std::pair<double, std::size_t>& b) const noexcept {
      return a.first < b.first || (a.first == b.first && a.second > b.second);
    }
  };
  using LoadSet = std::set<std::pair<double, std::size_t>, LoadOrder>;

  [[nodiscard]] bool useDense() const noexcept {
    return etc_->machines() <= options_.denseMachineThreshold;
  }

  /// Finishing time of machine `j` with `skip` removed and `add` inserted
  /// (either may be kNone), summed in ascending application-index order.
  [[nodiscard]] double resum(std::size_t j, std::size_t skip,
                             std::size_t add) const;

  /// (makespan, metric, binding) with machines `ta`/`tb` overridden to the
  /// given loads/counts; all other machines read from committed state. The
  /// dense path temporarily writes the overrides into the committed arrays
  /// (and restores them), so these are non-const.
  [[nodiscard]] EvalResult evaluateTouched(std::size_t ta, double la,
                                           std::size_t ca, std::size_t tb,
                                           double lb, std::size_t cb);
  [[nodiscard]] EvalResult evaluateDense(std::size_t ta, double la,
                                         std::size_t ca, std::size_t tb,
                                         double lb, std::size_t cb);
  [[nodiscard]] EvalResult evaluateSorted(std::size_t ta, double la,
                                          std::size_t ca, std::size_t tb,
                                          double lb, std::size_t cb) const;

  void rebuild();
  void applyMachineUpdate(std::size_t machine, double newLoad,
                          std::size_t newCount);

  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  const EtcMatrix* etc_;
  double tau_;
  IncrementalOptions options_;
  Mapping mapping_;
  std::vector<double> load_;                       ///< F_j per machine
  std::vector<std::size_t> count_;                 ///< n(m_j) per machine
  std::vector<std::vector<std::size_t>> machineApps_;  ///< sorted app ids
  // Sorted-load structures (maintained only on the non-dense path).
  LoadSet allLoads_;                               ///< every machine
  std::map<std::size_t, LoadSet> byCount_;         ///< count -> machines
  std::vector<double> sqrtCount_;                  ///< sqrt(c), c = 0..apps
  EvalResult current_;
  Pending pending_;
  IncrementalStats stats_;
  // Neighborhood scans probe the same app against every machine; the
  // app-removal re-sum of its source machine is identical across those
  // probes, so tryMove caches it until the incumbent changes.
  std::size_t cachedRemovalApp_ = kNone;
  double cachedRemovalLoad_ = 0.0;
};

}  // namespace robust::sched
