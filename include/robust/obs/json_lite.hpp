// A minimal JSON reader for validating the artifacts this library writes:
// run reports (obs::writeRunReport) and Chrome trace-event files. It exists
// so tests and the report_check tool can verify schemas without an external
// dependency — it is not a general-purpose JSON library (\uXXXX escapes are
// decoded for the Basic Multilingual Plane only — no surrogate pairs, which
// our writers never emit — and numbers are parsed as double).
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace robust::obs::json {

/// One parsed JSON value. Object member order is preserved.
class Value {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;

  [[nodiscard]] bool isNull() const noexcept { return kind == Kind::Null; }
  [[nodiscard]] bool isBool() const noexcept { return kind == Kind::Bool; }
  [[nodiscard]] bool isNumber() const noexcept { return kind == Kind::Number; }
  [[nodiscard]] bool isString() const noexcept { return kind == Kind::String; }
  [[nodiscard]] bool isArray() const noexcept { return kind == Kind::Array; }
  [[nodiscard]] bool isObject() const noexcept { return kind == Kind::Object; }

  /// Member of an object by key, or nullptr (also nullptr on non-objects).
  [[nodiscard]] const Value* find(std::string_view key) const noexcept;
};

/// Parses one JSON document (the whole input must be consumed). Throws
/// std::runtime_error naming the byte offset on malformed input.
[[nodiscard]] Value parse(std::string_view text);

/// Reads and parses a JSON file. Throws std::runtime_error when the file
/// cannot be read or does not parse.
[[nodiscard]] Value parseFile(const std::string& path);

}  // namespace robust::obs::json
