// Zero-overhead-when-off metrics for the analysis engine.
//
// The experiment drivers compare mappings by how much work each analysis
// performs — radius evaluations, solver iterations, boundary probes — and
// the parallel paths (localSearch neighborhood scans, analyzeBatch,
// runMakespanStudy) must never contend on a shared metrics structure. The
// registry here is therefore *lock-sparse*:
//
//   * every thread owns a private shard of counter / histogram slots
//     (relaxed atomics, touched only by their owner on the hot path);
//   * the registry mutex guards only name registration, shard
//     registration / retirement, and snapshotting — never recording;
//   * gauges are single atomics (set / monotonic-max semantics), because
//     a high-water mark needs a global maximum anyway.
//
// Everything compiles down to one relaxed atomic load and a predictable
// branch when recording is off. Call sites follow the pattern
//
//   if (obs::enabled()) [[unlikely]] {
//     static const obs::MetricId kRows = obs::counterId("core.rows");
//     obs::addCounter(kRows, n);
//   }
//
// so a disabled build-up of instrumentation costs < 1% on the hottest
// paths (pinned by tests/test_obs.cpp). Recording is toggled by the
// ROBUST_OBS environment variable ("1" / "on" / "true") or setEnabled().
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace robust::obs {

namespace detail {
/// The single global toggle. Exposed so enabled() inlines to one relaxed
/// load; treat as private — flip it through setEnabled().
extern std::atomic<bool> gEnabled;
}  // namespace detail

/// True when metric / trace recording is on. One relaxed atomic load; safe
/// and meaningful to call from any thread at any time.
[[nodiscard]] inline bool enabled() noexcept {
  return detail::gEnabled.load(std::memory_order_relaxed);
}

/// Turns recording on or off process-wide. The initial value comes from the
/// ROBUST_OBS / ROBUST_TRACE environment variables (read once at startup).
void setEnabled(bool on) noexcept;

/// Index of a registered metric. Stable for the process lifetime; resolve
/// once (a function-local static at the call site) and reuse.
using MetricId = std::uint32_t;

/// Fixed histogram shape: bucket b counts latencies in [2^(b-1), 2^b)
/// nanoseconds (bucket 0 is < 1 ns), saturating at the last bucket.
inline constexpr std::size_t kHistogramBuckets = 28;

/// Registers (or looks up) a metric by name. Idempotent: the same name
/// always yields the same id. Throws std::runtime_error when the fixed
/// per-kind capacity is exhausted. Names are conventionally dotted paths
/// ("core.rows_evaluated").
[[nodiscard]] MetricId counterId(std::string_view name);
[[nodiscard]] MetricId gaugeId(std::string_view name);
[[nodiscard]] MetricId histogramId(std::string_view name);

// Labeled series. A labeled metric is an ordinary metric whose registered
// name is the canonical composition "name{key=value}" — it rides the same
// per-thread shards and the same retired-totals fold, so snapshot exactness
// (including threads that have exited) holds for labeled series too.
// Labels are for LOW-cardinality dimensions (tenant id, frame type): each
// distinct (name, key, value) consumes one slot of the fixed per-kind
// capacity. When a new value would not fit, the id of the per-series
// overflow bucket "name{key=_other_}" is returned instead — hostile
// cardinality degrades to aggregation, never to a thrown error on the
// recording path. (The overflow slot is reserved on the first labeled
// registration of a (name, key) pair; only THAT first call can throw on a
// full table, which is a static capacity misconfiguration.)

[[nodiscard]] MetricId counterId(std::string_view name, std::string_view labelKey,
                                 std::string_view labelValue);
[[nodiscard]] MetricId histogramId(std::string_view name,
                                   std::string_view labelKey,
                                   std::string_view labelValue);

/// The canonical registered name of a labeled series: "name{key=value}".
[[nodiscard]] std::string labeledMetricName(std::string_view name,
                                            std::string_view labelKey,
                                            std::string_view labelValue);

// Hot-path recording. Callers guard with enabled(); recording while
// disabled is harmless but wasted work. All are safe from any thread.

/// Adds `delta` to a counter (per-thread shard; merged on snapshot).
void addCounter(MetricId id, std::uint64_t delta = 1) noexcept;

/// Sets a gauge to `value` (last writer wins).
void setGauge(MetricId id, std::int64_t value) noexcept;

/// Raises a gauge to at least `value` (monotonic high-water mark).
void maxGauge(MetricId id, std::int64_t value) noexcept;

/// Records one latency observation, in nanoseconds, into a histogram.
void recordLatency(MetricId id, std::int64_t nanos) noexcept;

/// The log2 bucket a latency observation lands in: bucket 0 for <= 0 ns,
/// bucket b for [2^(b-1), 2^b) ns, saturating at kHistogramBuckets - 1.
/// Exposed so out-of-registry digests (the robustd per-tenant latency
/// digests) share the exact shape of registry histograms.
[[nodiscard]] std::size_t latencyBucketIndex(std::int64_t nanos) noexcept;

/// Upper bound, in nanoseconds, of the bucket holding the q-quantile
/// observation of a log2-bucketed histogram (q clamped to [0, 1]); 0 when
/// the histogram is empty. Exact to a factor of two — the intended
/// resolution of a p50/p95/p99 digest, not a percentile estimator.
[[nodiscard]] std::int64_t latencyQuantileUpperNanos(
    std::span<const std::uint64_t> buckets, std::uint64_t count,
    double q) noexcept;

/// One merged counter / gauge / histogram in a snapshot.
struct CounterValue {
  std::string name;
  std::uint64_t value = 0;
};
struct GaugeValue {
  std::string name;
  std::int64_t value = 0;
};
struct HistogramValue {
  std::string name;
  std::uint64_t count = 0;     ///< total observations
  std::uint64_t sumNanos = 0;  ///< sum of all observations
  std::vector<std::uint64_t> buckets;  ///< kHistogramBuckets entries

  /// latencyQuantileUpperNanos over this histogram's buckets.
  [[nodiscard]] std::int64_t quantileUpperNanos(double q) const noexcept {
    return latencyQuantileUpperNanos(buckets, count, q);
  }
};

/// A point-in-time merge of every thread's shard plus the retired totals of
/// threads that have exited. Metrics appear in registration order.
struct MetricsSnapshot {
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  /// Value of the named counter / gauge, or 0 when never registered.
  [[nodiscard]] std::uint64_t counter(std::string_view name) const noexcept;
  [[nodiscard]] std::int64_t gauge(std::string_view name) const noexcept;
  /// The named histogram, or nullptr when never registered.
  [[nodiscard]] const HistogramValue* histogram(
      std::string_view name) const noexcept;
};

/// Merges all live shards and retired totals. Concurrent recording is safe:
/// the snapshot observes each slot atomically (it may land between two
/// increments of a racing writer, never tear).
[[nodiscard]] MetricsSnapshot snapshotMetrics();

/// Zeroes every counter, gauge, and histogram (live shards and retired
/// totals). Registered names and ids survive. Primarily for tests and for
/// delimiting measurement windows in benches.
void resetMetrics() noexcept;

}  // namespace robust::obs
