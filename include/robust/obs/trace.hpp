// RAII trace spans and Chrome trace-event export.
//
// A Span marks one scoped unit of work ("core.analyzeBatch", one
// hiperd.analyze). When recording is enabled each span records (name,
// start, duration) into the owning thread's buffer; writeTrace() merges
// every buffer — including those of threads that have since exited — into
// a Chrome trace-event JSON file that loads directly in chrome://tracing
// (or ui.perfetto.dev). Span names must be string literals (or otherwise
// outlive the process): only the pointer is stored.
//
// When recording is disabled a Span is one relaxed atomic load, one store,
// and a predictable branch in the destructor — nothing is allocated and no
// clock is read. Setting ROBUST_TRACE=<path> in the environment enables
// recording at startup and writes the trace to <path> at process exit.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "robust/obs/metrics.hpp"

namespace robust::obs {

namespace detail {
/// Monotonic nanoseconds since an arbitrary epoch. Overridable in tests so
/// trace exports can be compared against a golden file bit for bit.
[[nodiscard]] std::int64_t nowNanos() noexcept;
void setClockForTesting(std::int64_t (*fn)() noexcept) noexcept;
/// Appends one completed span to the calling thread's buffer.
void recordSpan(const char* name, std::int64_t startNanos) noexcept;
}  // namespace detail

/// RAII scope marker. `name` must be a string literal.
class Span {
 public:
  explicit Span(const char* name) noexcept
      : name_(name), start_(enabled() ? detail::nowNanos() : kInactive) {}
  ~Span() {
    if (start_ != kInactive) {
      detail::recordSpan(name_, start_);
    }
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  static constexpr std::int64_t kInactive = INT64_MIN;
  const char* name_;
  std::int64_t start_;
};

/// Writes every recorded span as Chrome trace-event JSON. Thread ids are
/// remapped to dense 1-based ids ordered by each thread's first span start
/// (then by shard registration order), so exports are deterministic under a
/// test clock. Timestamps are microseconds with nanosecond precision.
void writeTrace(std::ostream& out);

/// writeTrace to a file; throws std::runtime_error when it cannot be
/// opened.
void writeTrace(const std::string& path);

/// Discards every recorded span (live buffers and retired threads').
void clearTrace() noexcept;

/// Spans dropped because a per-thread buffer hit its cap (traces stay
/// bounded even on pathological runs); merged across all threads.
[[nodiscard]] std::uint64_t droppedSpanCount() noexcept;

}  // namespace robust::obs
