// Structured, schema-versioned run reports.
//
// The bench and figure harnesses historically printed ad-hoc tables; a run
// report is the machine-readable companion: one JSON document per run
// carrying free-form info fields, benchmark results, and (by default) a
// full metrics snapshot — counters, gauges, and latency histograms. The
// schema is versioned so committed BENCH_*.json files stay diffable and CI
// can validate them (bench/report_check.cpp).
//
// Schema (version 1):
//   {
//     "schema": "robust.run_report",
//     "schema_version": 1,
//     "tool": "<producing binary>",
//     "info": { "<key>": "<value>", ... },
//     "benchmarks": [ { "name": "...", "value": 1.5, "unit": "ns" }, ... ],
//     "metrics": {
//       "counters":   { "<name>": 123, ... },
//       "gauges":     { "<name>": -4, ... },
//       "histograms": { "<name>": { "count": 9, "sum_nanos": 1024,
//                                   "buckets": [0, 3, 6] }, ... }
//     }
//   }
// Histogram buckets are the obs::kHistogramBuckets power-of-two nanosecond
// buckets with trailing zeroes trimmed.
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "robust/obs/metrics.hpp"

namespace robust::obs {

inline constexpr int kRunReportSchemaVersion = 1;
inline constexpr std::string_view kRunReportSchemaName = "robust.run_report";

/// One benchmark result row.
struct BenchResult {
  std::string name;
  double value = 0.0;
  std::string unit;
};

/// Everything one run wants to persist.
struct RunReport {
  std::string tool;  ///< producing binary, e.g. "perf_kernels"
  std::vector<std::pair<std::string, std::string>> info;  ///< free-form
  std::vector<BenchResult> benchmarks;
  /// Embed snapshotMetrics() at write time (set false to omit the section).
  bool includeMetrics = true;
  /// Extra top-level sections, emitted verbatim after "metrics" as
  /// `"key": <value>`. The value must be a complete, pre-rendered JSON
  /// value; the producer subsystem owns its schema (e.g. robust::curve
  /// renders its "curve" section without obs depending on it). Keys must
  /// not collide with the built-in sections — writeRunReport throws on
  /// "schema", "schema_version", "tool", "info", "benchmarks", "metrics",
  /// and on duplicate keys.
  std::vector<std::pair<std::string, std::string>> sections;
};

/// Writes `report` as schema-version-1 JSON.
void writeRunReport(std::ostream& out, const RunReport& report);

/// writeRunReport to a file; throws std::runtime_error when it cannot be
/// opened.
void writeRunReport(const std::string& path, const RunReport& report);

}  // namespace robust::obs
