// Always-on bounded flight recorder.
//
// The trace subsystem (trace.hpp) answers "what did this run do?" — it is
// opt-in, unbounded up to a large cap, and meant for whole-run profiles.
// The flight recorder answers the operator's question "what happened in the
// seconds BEFORE this fatal reject / session leak?": every thread keeps a
// small ring of its most recent span/event records, overwritten forever, so
// the cost of leaving it on is a clock read plus one ring slot per record —
// no growth, no allocation after warm-up. Records carry the wire-protocol
// requestId, so a client-observed slow reply is correlated with the
// compile-cache miss or queue wait that produced it.
//
// Rings live in the same per-thread shards as the metrics (registered and
// retired together); retired threads' rings are preserved (bounded) so a
// post-mortem dump still shows what exited workers were doing.
// writeFlightTrace() serializes every ring to the same deterministic Chrome
// trace-event JSON as writeTrace() — under the test clock the bytes are
// reproducible — with the requestId attached as an event arg.
//
// The ring capacity defaults to kDefaultFlightCapacity records per thread;
// ROBUST_FLIGHT=<n> overrides it at startup (0 disables recording).
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "robust/obs/trace.hpp"

namespace robust::obs {

/// Default per-thread ring capacity, in records.
inline constexpr std::size_t kDefaultFlightCapacity = 512;

/// Current per-thread ring capacity (records). 0 means recording is off.
[[nodiscard]] std::size_t flightCapacity() noexcept;

/// Sets the per-thread ring capacity. Existing rings shrink lazily (their
/// oldest records are overwritten first). 0 disables recording.
void setFlightCapacity(std::size_t perThreadRecords) noexcept;

[[nodiscard]] inline bool flightEnabled() noexcept {
  return flightCapacity() > 0;
}

/// Appends one completed record to the calling thread's ring, overwriting
/// the oldest when full. `name` must be a string literal (only the pointer
/// is stored). requestId 0 means "not tied to a wire request".
void recordFlight(const char* name, std::uint64_t requestId,
                  std::int64_t startNanos, std::int64_t durationNanos) noexcept;

/// RAII flight span: reads the clock on construction and records on
/// destruction. Unlike obs::Span this does NOT consult enabled() — the
/// flight recorder is always on unless its capacity is 0.
class FlightSpan {
 public:
  FlightSpan(const char* name, std::uint64_t requestId) noexcept
      : name_(name),
        requestId_(requestId),
        start_(flightEnabled() ? detail::nowNanos() : kInactive) {}
  ~FlightSpan() {
    if (start_ != kInactive) {
      recordFlight(name_, requestId_, start_, detail::nowNanos() - start_);
    }
  }

  FlightSpan(const FlightSpan&) = delete;
  FlightSpan& operator=(const FlightSpan&) = delete;

 private:
  static constexpr std::int64_t kInactive = INT64_MIN;
  const char* name_;
  std::uint64_t requestId_;
  std::int64_t start_;
};

/// Serializes every ring (live shards + retired threads) as Chrome
/// trace-event JSON: "cat":"flight", requestId in "args". Deterministic
/// under the test clock: records sort by (start, per-thread sequence),
/// threads by (first start, registration order) with dense 1-based tids.
void writeFlightTrace(std::ostream& out);

/// writeFlightTrace to a file; throws std::runtime_error when it cannot be
/// opened.
void writeFlightTrace(const std::string& path);

/// Discards every flight record (live rings and retired threads').
void clearFlight() noexcept;

/// Records currently held across all rings (live + retired). For tests and
/// the STATS snapshot.
[[nodiscard]] std::uint64_t flightRecordCount() noexcept;

}  // namespace robust::obs
