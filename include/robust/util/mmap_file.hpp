// Windowed memory-mapped file access for the out-of-core streaming lane.
//
// The streaming engine (core::analyzeStream) sweeps instance files far
// larger than RAM. It never maps the whole file: each shard asks for one
// window of a few megabytes, and the window is remapped in place as the
// shard pointer advances, so the resident address-space cost is
// O(window), not O(file) — the CI perf leg pins this by running under a
// `ulimit -v` smaller than the file.
//
// Portability: on POSIX the window is an mmap(PROT_READ) region; where
// mmap is unavailable — or disabled via MmapFile::setForceFallback(true)
// or the ROBUST_NO_MMAP environment variable — the window is a reusable
// heap buffer filled with positional reads. Both paths hand back the same
// bytes; the fallback exists so every test can run the exact streaming
// code with mmap taken out of the picture.
//
// Thread safety: one MmapFile may serve many threads concurrently as long
// as each uses its own View (the fd is only touched with positional
// reads, which do not share a file offset).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace robust::util {

/// Read-only random-access file with reusable mapped (or read-backed)
/// windows. Move-only; the destructor closes the file.
class MmapFile {
 public:
  /// One materialized window of the file. Reusing a View across view()
  /// calls remaps (or refills) in place: the steady state performs no
  /// heap allocation. data() stays 8-byte aligned whenever the requested
  /// offset is 8-byte aligned, so windows of packed doubles can be
  /// reinterpreted directly.
  class View {
   public:
    View() = default;
    ~View() { reset(); }
    View(View&& other) noexcept { *this = static_cast<View&&>(other); }
    View& operator=(View&& other) noexcept;
    View(const View&) = delete;
    View& operator=(const View&) = delete;

    [[nodiscard]] const std::byte* data() const noexcept { return data_; }
    [[nodiscard]] std::size_t size() const noexcept { return size_; }

    /// Unmaps the current window; the fallback buffer keeps its capacity.
    void reset() noexcept;

   private:
    friend class MmapFile;
    void* map_ = nullptr;  ///< mmap base (page aligned); null on fallback
    std::size_t mapLength_ = 0;
    const std::byte* data_ = nullptr;
    std::size_t size_ = 0;
    std::vector<double> buffer_;  ///< fallback storage (double-aligned)
  };

  MmapFile() = default;
  /// Opens `path` read-only; throws std::runtime_error when it cannot.
  explicit MmapFile(const std::string& path);
  ~MmapFile();
  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  [[nodiscard]] bool isOpen() const noexcept { return fd_ >= 0; }
  [[nodiscard]] std::uint64_t size() const noexcept { return size_; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  /// Materializes bytes [offset, offset + length) into `out`, replacing
  /// whatever window `out` held. Throws InvalidArgumentError when the
  /// range leaves the file, std::runtime_error on an I/O failure. When
  /// observability is on, tallies io.mmap.bytes_mapped (mapped windows)
  /// or io.mmap.bytes_read (fallback fills).
  void view(std::uint64_t offset, std::size_t length, View& out) const;

  /// Test hook: forces every subsequent view() onto the positional-read
  /// fallback (also enabled by the ROBUST_NO_MMAP environment variable,
  /// read once at first use).
  static void setForceFallback(bool on) noexcept;

 private:
  void close() noexcept;

  int fd_ = -1;
  std::uint64_t size_ = 0;
  std::string path_;
};

}  // namespace robust::util
