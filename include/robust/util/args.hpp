// Minimal command-line option parsing for the bench and example binaries.
//
// All harnesses accept overrides like `--seed 7 --mappings 2000 --csv` so the
// paper's parameter sweeps can be re-run without recompiling.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace robust {

/// Parses `--key value` and `--flag` style options. Unknown options throw,
/// so typos in experiment scripts fail loudly instead of silently running the
/// default configuration.
class ArgParser {
 public:
  /// Parses argv; later duplicates override earlier ones.
  ArgParser(int argc, const char* const* argv);

  /// Returns the string value for `key`, or `fallback` if absent.
  [[nodiscard]] std::string getString(const std::string& key,
                                      const std::string& fallback) const;

  /// Returns the value for `key` parsed as double, or `fallback` if absent.
  [[nodiscard]] double getDouble(const std::string& key,
                                 double fallback) const;

  /// Returns the value for `key` parsed as int64, or `fallback` if absent.
  [[nodiscard]] std::int64_t getInt(const std::string& key,
                                    std::int64_t fallback) const;

  /// True when `--key` appeared (with or without a value).
  [[nodiscard]] bool has(const std::string& key) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace robust
