// Structured diagnostics for the external-input boundary.
//
// Every loader (ETC CSV, HiPer-D scenario text) parses *untrusted* bytes:
// files written by other tools, hand-edited archives, network payloads.
// When such input is malformed, the error must name the exact place —
// "etc.csv:12:4: cell 'nan' is not a finite positive time" — instead of a
// context-free strtod failure, and downstream code must be able to consume
// the finding programmatically (source / line / column / message) rather
// than re-parse the what() string. This header provides that vocabulary:
//
//   * Diagnostic   — one structured finding with provenance,
//   * ParseError   — an InvalidArgumentError (so every existing catch site
//                    keeps working) that carries the Diagnostic,
//   * Diagnostics  — a per-source context the loaders thread through their
//                    parse; fail() throws, warn() records non-fatal notes.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "robust/util/error.hpp"

namespace robust::util {

/// One structured finding about an external input. Line and column are
/// 1-based; 0 means "not applicable" (column 0 = whole line, line 0 =
/// whole input). For CSV input the column is the 1-based field index; for
/// token-oriented input it is the 1-based character offset of the token.
struct Diagnostic {
  std::string source;      ///< logical input name, e.g. "etc.csv"
  std::size_t line = 0;
  std::size_t column = 0;
  std::string message;

  /// Canonical rendering: "source:line:column: message", omitting the
  /// position fields that are 0.
  [[nodiscard]] std::string format() const;
};

/// Thrown by the loaders on malformed input. IS-A InvalidArgumentError, so
/// callers that only care about "the load failed" are unaffected, while
/// callers that relay errors to users (CLIs, services) can access the
/// structured diagnostic.
class ParseError : public InvalidArgumentError {
 public:
  explicit ParseError(Diagnostic diagnostic);

  [[nodiscard]] const Diagnostic& diagnostic() const noexcept {
    return diagnostic_;
  }

 private:
  Diagnostic diagnostic_;
};

/// Diagnostic context bound to one named input source. Loaders create one
/// per load and route every rejection through fail(), which guarantees the
/// provenance fields are always populated.
class Diagnostics {
 public:
  explicit Diagnostics(std::string source) : source_(std::move(source)) {}

  [[nodiscard]] const std::string& source() const noexcept { return source_; }

  /// Throws ParseError pinned to (line, column).
  [[noreturn]] void fail(std::size_t line, std::size_t column,
                         std::string message) const;

  /// Throws ParseError pinned to a whole line.
  [[noreturn]] void failLine(std::size_t line, std::string message) const {
    fail(line, 0, std::move(message));
  }

  /// Throws ParseError about the input as a whole (e.g. truncation).
  [[noreturn]] void failInput(std::string message) const {
    fail(0, 0, std::move(message));
  }

  /// Records a non-fatal finding (kept for the caller to inspect).
  void warn(std::size_t line, std::size_t column, std::string message);

  [[nodiscard]] const std::vector<Diagnostic>& warnings() const noexcept {
    return warnings_;
  }

 private:
  std::string source_;
  std::vector<Diagnostic> warnings_;
};

/// Formats `v` with %.17g (the same rendering the savers use), so
/// diagnostics echo values exactly as they would round-trip.
[[nodiscard]] std::string formatValue(double v);

}  // namespace robust::util
