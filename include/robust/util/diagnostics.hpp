// Structured diagnostics for the external-input boundary.
//
// Every loader (ETC CSV, HiPer-D scenario text) parses *untrusted* bytes:
// files written by other tools, hand-edited archives, network payloads.
// When such input is malformed, the error must name the exact place —
// "etc.csv:12:4: cell 'nan' is not a finite positive time" — instead of a
// context-free strtod failure, and downstream code must be able to consume
// the finding programmatically (source / line / column / message) rather
// than re-parse the what() string. This header provides that vocabulary:
//
//   * Diagnostic   — one structured finding with provenance,
//   * ParseError   — an InvalidArgumentError (so every existing catch site
//                    keeps working) that carries the Diagnostic,
//   * Diagnostics  — a per-source context the loaders thread through their
//                    parse; fail() throws, warn() records non-fatal notes.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "robust/util/error.hpp"

namespace robust::util {

/// Why an input was rejected. Categories aggregate rejections for
/// monitoring (each increments a `Diagnostics` counter and, when
/// observability is on, an `io.reject.<category>` obs counter) without
/// forcing consumers to pattern-match message strings.
enum class RejectCategory : std::uint8_t {
  Format,     ///< a token/cell is not lexically what the grammar expects
  Domain,     ///< lexically valid but outside the value policy (sign,
              ///< finiteness, policy caps)
  Structure,  ///< pieces parse but do not fit together (ragged rows,
              ///< wrong keyword, index out of range)
  Truncated,  ///< input ended before the grammar was satisfied
  Other,      ///< anything uncategorised (legacy call sites)
};

inline constexpr std::size_t kRejectCategoryCount = 5;

/// Stable lower-case name ("format", "domain", ...), used for counter keys.
[[nodiscard]] const char* rejectCategoryName(RejectCategory category) noexcept;

/// Per-category rejection tally for one `Diagnostics` context.
struct RejectionCounts {
  std::array<std::uint64_t, kRejectCategoryCount> byCategory{};

  [[nodiscard]] std::uint64_t operator[](RejectCategory c) const noexcept {
    return byCategory[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] std::uint64_t total() const noexcept {
    std::uint64_t sum = 0;
    for (std::uint64_t v : byCategory) {
      sum += v;
    }
    return sum;
  }
};

/// One structured finding about an external input. Line and column are
/// 1-based; 0 means "not applicable" (column 0 = whole line, line 0 =
/// whole input). For CSV input the column is the 1-based field index; for
/// token-oriented input it is the 1-based character offset of the token.
struct Diagnostic {
  std::string source;      ///< logical input name, e.g. "etc.csv"
  std::size_t line = 0;
  std::size_t column = 0;
  std::string message;
  RejectCategory category = RejectCategory::Other;

  /// Canonical rendering: "source:line:column: message", omitting the
  /// position fields that are 0.
  [[nodiscard]] std::string format() const;
};

/// Thrown by the loaders on malformed input. IS-A InvalidArgumentError, so
/// callers that only care about "the load failed" are unaffected, while
/// callers that relay errors to users (CLIs, services) can access the
/// structured diagnostic.
class ParseError : public InvalidArgumentError {
 public:
  explicit ParseError(Diagnostic diagnostic);

  [[nodiscard]] const Diagnostic& diagnostic() const noexcept {
    return diagnostic_;
  }

 private:
  Diagnostic diagnostic_;
};

/// Diagnostic context bound to one named input source. Loaders create one
/// per load and route every rejection through fail(), which guarantees the
/// provenance fields are always populated.
class Diagnostics {
 public:
  explicit Diagnostics(std::string source) : source_(std::move(source)) {}

  [[nodiscard]] const std::string& source() const noexcept { return source_; }

  /// Throws ParseError pinned to (line, column), tallying `category` in
  /// counts() (and the io.reject.* obs counters) first.
  [[noreturn]] void fail(RejectCategory category, std::size_t line,
                         std::size_t column, std::string message) const;

  /// Throws ParseError pinned to (line, column) as RejectCategory::Other.
  [[noreturn]] void fail(std::size_t line, std::size_t column,
                         std::string message) const {
    fail(RejectCategory::Other, line, column, std::move(message));
  }

  /// Throws ParseError pinned to a whole line.
  [[noreturn]] void failLine(RejectCategory category, std::size_t line,
                             std::string message) const {
    fail(category, line, 0, std::move(message));
  }
  [[noreturn]] void failLine(std::size_t line, std::string message) const {
    fail(RejectCategory::Other, line, 0, std::move(message));
  }

  /// Throws ParseError about the input as a whole (e.g. truncation).
  [[noreturn]] void failInput(RejectCategory category,
                              std::string message) const {
    fail(category, 0, 0, std::move(message));
  }
  [[noreturn]] void failInput(std::string message) const {
    fail(RejectCategory::Other, 0, 0, std::move(message));
  }

  /// Records a non-fatal finding (kept for the caller to inspect).
  void warn(std::size_t line, std::size_t column, std::string message);

  [[nodiscard]] const std::vector<Diagnostic>& warnings() const noexcept {
    return warnings_;
  }

  /// Rejections recorded by this context, tallied by category. fail() is
  /// [[noreturn]], so the tally is written just before the throw; a context
  /// observed after a caught ParseError reports the rejection that raised
  /// it.
  [[nodiscard]] const RejectionCounts& counts() const noexcept {
    return counts_;
  }

 private:
  std::string source_;
  std::vector<Diagnostic> warnings_;
  // fail() is semantically const (it never mutates the parse state callers
  // see — it throws); the tally is bookkeeping, hence mutable.
  mutable RejectionCounts counts_;
};

/// Formats `v` with %.17g (the same rendering the savers use), so
/// diagnostics echo values exactly as they would round-trip.
[[nodiscard]] std::string formatValue(double v);

}  // namespace robust::util
