// Deterministic, hand-rolled pseudo-random number generators.
//
// The experiments in the paper (Figs. 3-4, Table 2) are defined by random
// instances. std::mt19937 + std::gamma_distribution would make the generated
// instances implementation-defined (libstdc++ vs libc++ disagree on the
// variate sequences), so the library hand-rolls both the bit source (PCG32)
// and every distribution on top of it (see robust/random/*). Results are
// therefore reproducible bit-for-bit across standard libraries.
#pragma once

#include <cstdint>
#include <limits>

namespace robust {

/// SplitMix64: tiny 64-bit generator, used to seed and to derive independent
/// substreams from a single user seed (one hop per stream id).
class SplitMix64 {
 public:
  /// Constructs a generator whose first outputs are determined by `seed`.
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Returns the next 64-bit value and advances the state.
  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// PCG32 (O'Neill, pcg-random.org): 64-bit state, 32-bit output, with an
/// explicit stream id so that independent experiment components (ETC rows,
/// mapping draws, coefficient tensors) never share a sequence.
class Pcg32 {
 public:
  using result_type = std::uint32_t;

  /// Default stream: seed 0, stream 0 (still a valid, full-period generator).
  constexpr Pcg32() noexcept { reseed(0x853c49e6748fea9bULL, 0xda3e39cb94b95bdbULL); }

  /// Seeds the generator; distinct `stream` values yield statistically
  /// independent sequences for the same `seed`.
  explicit constexpr Pcg32(std::uint64_t seed, std::uint64_t stream = 0) noexcept {
    reseed(seed, stream);
  }

  /// Re-initializes state exactly as the matching constructor would.
  constexpr void reseed(std::uint64_t seed, std::uint64_t stream = 0) noexcept {
    inc_ = (stream << 1u) | 1u;
    state_ = 0u;
    (void)next();
    state_ += seed;
    (void)next();
  }

  /// Returns the next 32-bit value.
  constexpr std::uint32_t next() noexcept {
    const std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    const auto xorshifted =
        static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    const auto rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  /// Uniform double in [0, 1) with 32 bits of resolution.
  constexpr double nextDouble() noexcept {
    return static_cast<double>(next()) * 0x1.0p-32;
  }

  /// Uniform double in (0, 1) — never exactly 0; safe as a log() argument.
  constexpr double nextDoubleOpen() noexcept {
    return (static_cast<double>(next()) + 0.5) * 0x1.0p-32;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * nextDouble();
  }

  /// Uniform integer in [0, bound) via Lemire's unbiased method.
  constexpr std::uint32_t nextBounded(std::uint32_t bound) noexcept {
    // Rejection step guarantees exact uniformity for every bound.
    std::uint64_t m = static_cast<std::uint64_t>(next()) * bound;
    auto lo = static_cast<std::uint32_t>(m);
    if (lo < bound) {
      const std::uint32_t threshold = (0u - bound) % bound;
      while (lo < threshold) {
        m = static_cast<std::uint64_t>(next()) * bound;
        lo = static_cast<std::uint32_t>(m);
      }
    }
    return static_cast<std::uint32_t>(m >> 32);
  }

  // UniformRandomBitGenerator interface (usable with <algorithm> shuffles).
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }
  constexpr result_type operator()() noexcept { return next(); }

 private:
  std::uint64_t state_ = 0;
  std::uint64_t inc_ = 1;
};

/// Derives a child generator for substream `id` from a master seed. Used so
/// that e.g. mapping #457 of an experiment sees the same randomness no matter
/// how many threads evaluated mappings #0..#456.
[[nodiscard]] constexpr Pcg32 makeStream(std::uint64_t seed,
                                         std::uint64_t id) noexcept {
  SplitMix64 mix(seed ^ (0x9e3779b97f4a7c15ULL * (id + 1)));
  const std::uint64_t s = mix.next();
  const std::uint64_t inc = mix.next();
  return Pcg32(s, inc);
}

}  // namespace robust
