// Deterministic, hand-rolled pseudo-random number generators.
//
// The experiments in the paper (Figs. 3-4, Table 2) are defined by random
// instances. std::mt19937 + std::gamma_distribution would make the generated
// instances implementation-defined (libstdc++ vs libc++ disagree on the
// variate sequences), so the library hand-rolls both the bit source (PCG32)
// and every distribution on top of it (see robust/random/*). Results are
// therefore reproducible bit-for-bit across standard libraries.
#pragma once

#include <cstdint>
#include <limits>

namespace robust {

/// SplitMix64: tiny 64-bit generator, used to seed and to derive independent
/// substreams from a single user seed (one hop per stream id).
class SplitMix64 {
 public:
  /// Constructs a generator whose first outputs are determined by `seed`.
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Returns the next 64-bit value and advances the state.
  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// PCG32 (O'Neill, pcg-random.org): 64-bit state, 32-bit output, with an
/// explicit stream id so that independent experiment components (ETC rows,
/// mapping draws, coefficient tensors) never share a sequence.
class Pcg32 {
 public:
  using result_type = std::uint32_t;

  /// Default stream: seed 0, stream 0 (still a valid, full-period generator).
  constexpr Pcg32() noexcept { reseed(0x853c49e6748fea9bULL, 0xda3e39cb94b95bdbULL); }

  /// Seeds the generator; distinct `stream` values yield statistically
  /// independent sequences for the same `seed`.
  explicit constexpr Pcg32(std::uint64_t seed, std::uint64_t stream = 0) noexcept {
    reseed(seed, stream);
  }

  /// Re-initializes state exactly as the matching constructor would.
  constexpr void reseed(std::uint64_t seed, std::uint64_t stream = 0) noexcept {
    inc_ = (stream << 1u) | 1u;
    state_ = 0u;
    (void)next();
    state_ += seed;
    (void)next();
  }

  /// Jump-ahead: advances the state by `delta` steps in O(log delta)
  /// multiply-accumulate doublings (Brown, "Random Number Generation with
  /// Arbitrary Strides", 1994 — the standard LCG trick). advance(k) leaves
  /// the generator in exactly the state k sequential next() calls would,
  /// so disjoint substreams can be carved out of one sequence without
  /// generating the values in between.
  constexpr void advance(std::uint64_t delta) noexcept {
    std::uint64_t accMult = 1;
    std::uint64_t accPlus = 0;
    std::uint64_t curMult = 6364136223846793005ULL;
    std::uint64_t curPlus = inc_;
    while (delta > 0) {
      if (delta & 1u) {
        accMult *= curMult;
        accPlus = accPlus * curMult + curPlus;
      }
      curPlus = (curMult + 1) * curPlus;
      curMult *= curMult;
      delta >>= 1;
    }
    state_ = accMult * state_ + accPlus;
  }

  /// Returns the next 32-bit value.
  constexpr std::uint32_t next() noexcept {
    const std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    const auto xorshifted =
        static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    const auto rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  /// Uniform double in [0, 1) with 32 bits of resolution.
  constexpr double nextDouble() noexcept {
    return static_cast<double>(next()) * 0x1.0p-32;
  }

  /// Uniform double in (0, 1) — never exactly 0; safe as a log() argument.
  constexpr double nextDoubleOpen() noexcept {
    return (static_cast<double>(next()) + 0.5) * 0x1.0p-32;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * nextDouble();
  }

  /// Uniform integer in [0, bound) via Lemire's unbiased method.
  constexpr std::uint32_t nextBounded(std::uint32_t bound) noexcept {
    // Rejection step guarantees exact uniformity for every bound.
    std::uint64_t m = static_cast<std::uint64_t>(next()) * bound;
    auto lo = static_cast<std::uint32_t>(m);
    if (lo < bound) {
      const std::uint32_t threshold = (0u - bound) % bound;
      while (lo < threshold) {
        m = static_cast<std::uint64_t>(next()) * bound;
        lo = static_cast<std::uint32_t>(m);
      }
    }
    return static_cast<std::uint32_t>(m >> 32);
  }

  // UniformRandomBitGenerator interface (usable with <algorithm> shuffles).
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }
  constexpr result_type operator()() noexcept { return next(); }

 private:
  std::uint64_t state_ = 0;
  std::uint64_t inc_ = 1;
};

/// Derives a child generator for substream `id` from a master seed. Used so
/// that e.g. mapping #457 of an experiment sees the same randomness no matter
/// how many threads evaluated mappings #0..#456.
///
/// This is the substream-derivation contract every parallel driver in the
/// repo relies on: the stream for (seed, id) is a pure function of its
/// arguments — independent of thread count, ThreadPool scheduling order,
/// and which worker happens to draw it. Both the PCG seed and the stream
/// increment come from SplitMix64 hops, so adjacent ids land on unrelated
/// (state, sequence) pairs rather than nearby points of one sequence.
[[nodiscard]] constexpr Pcg32 makeStream(std::uint64_t seed,
                                         std::uint64_t id) noexcept {
  SplitMix64 mix(seed ^ (0x9e3779b97f4a7c15ULL * (id + 1)));
  const std::uint64_t s = mix.next();
  const std::uint64_t inc = mix.next();
  return Pcg32(s, inc);
}

/// Family-scoped substream derivation: an explicit second derivation level
/// for components that need MANY per-item streams from one user seed
/// without colliding with another component's streams (e.g. the curve
/// engine's per-sample directions vs. a study's per-trial mappings, both
/// keyed by small integer ids). makeStream(seed, family, id) equals
/// makeStream(familySeed(seed, family), id); distinct families give
/// unrelated id-indexed stream tables for the same user seed.
[[nodiscard]] constexpr std::uint64_t familySeed(std::uint64_t seed,
                                                 std::uint64_t family) noexcept {
  SplitMix64 mix(seed ^ (0x94d049bb133111ebULL * (family + 1)));
  return mix.next();
}

[[nodiscard]] constexpr Pcg32 makeStream(std::uint64_t seed,
                                         std::uint64_t family,
                                         std::uint64_t id) noexcept {
  return makeStream(familySeed(seed, family), id);
}

}  // namespace robust
