// Descriptive statistics used by the experiment harnesses: summaries,
// Pearson correlation, least-squares lines (the Fig. 3 cluster analysis) and
// histograms (the Fig. 4 plateau analysis).
#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <string>
#include <vector>

namespace robust {

/// How the sample statistics treat non-finite (NaN / ±inf) samples. NaN in
/// particular is poison for the unguarded algorithms: it breaks std::sort's
/// strict weak ordering and its cast to a bin index is undefined behavior,
/// so the guard is mandatory — the policy only chooses between rejecting
/// the sample and dropping the offending values.
enum class NonFinitePolicy {
  Throw,  ///< reject the whole sample with a diagnostic (default)
  Skip,   ///< drop non-finite samples, compute over the finite rest
};

/// Five-number-ish summary of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1 denominator)
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;

  /// Coefficient of variation (stddev / mean); the paper's "heterogeneity".
  /// Undefined for a zero mean — reports NaN rather than masquerading as
  /// "perfectly homogeneous" 0.
  [[nodiscard]] double heterogeneity() const noexcept {
    return mean != 0.0 ? stddev / mean
                       : std::numeric_limits<double>::quiet_NaN();
  }
};

/// Computes a Summary of `xs`. Empty input yields a zeroed summary.
[[nodiscard]] Summary summarize(std::span<const double> xs);

/// Pearson correlation coefficient of paired samples (NaN if degenerate).
[[nodiscard]] double pearson(std::span<const double> xs,
                             std::span<const double> ys);

/// Least-squares line y = slope * x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;  ///< coefficient of determination of the fit
};

/// Fits a least-squares line through the paired samples.
[[nodiscard]] LinearFit fitLine(std::span<const double> xs,
                                std::span<const double> ys);

/// Equal-width histogram over [min, max] of the sample.
struct Histogram {
  double lo = 0.0;
  double hi = 0.0;
  std::vector<std::size_t> counts;

  [[nodiscard]] double binWidth() const noexcept {
    return counts.empty() ? 0.0
                          : (hi - lo) / static_cast<double>(counts.size());
  }
};

/// Builds a histogram with `bins` equal-width bins spanning the sample
/// range. Non-finite samples are rejected or dropped per `policy`; with
/// Skip, a sample with no finite values yields an empty-range histogram.
[[nodiscard]] Histogram makeHistogram(
    std::span<const double> xs, std::size_t bins,
    NonFinitePolicy policy = NonFinitePolicy::Throw);

/// Sample quantile (linear interpolation between order statistics), q in
/// [0,1]. Non-finite samples are rejected or dropped per `policy`; a sample
/// with no finite values is rejected under either policy.
[[nodiscard]] double quantile(std::span<const double> xs, double q,
                              NonFinitePolicy policy = NonFinitePolicy::Throw);

}  // namespace robust
