// Deterministic byte-level mutation for the differential I/O fuzz harness
// (tests/test_io_fuzz.cpp and bench/fuzz_roundtrip).
//
// The mutator takes a valid serialized artifact and damages it the way real
// inputs get damaged: truncation, deleted/flipped bytes, and spliced-in
// hostile tokens ("nan", "1e999", negative counts). Everything is driven by
// the repo's own Pcg32, so a failing case is reproducible from its seed
// alone. Header-only: the harnesses are the only consumers.
#pragma once

#include <algorithm>
#include <cstddef>
#include <string>

#include "robust/util/rng.hpp"

namespace robust::util {

/// Produces a deterministically mutated copy of `text`. The result is
/// usually malformed but occasionally still valid — callers must accept
/// both outcomes (load success with finite values, or a structured
/// diagnostic) and nothing else.
inline std::string mutateBytes(const std::string& text, Pcg32& rng) {
  // Tokens chosen to probe the numeric guards: non-finite spellings,
  // overflow to inf, sign flips, and separators that break token shape.
  static const char* const kSplices[] = {
      "nan", "-nan", "inf", "-inf", "1e999", "-1e999", "NaN",
      "-",   ",",    " ",   "0",    "-1",    "999999999999", "abc"};
  std::string out = text;
  const std::uint32_t op = rng.nextBounded(5);
  const auto pos = static_cast<std::size_t>(
      rng.nextBounded(static_cast<std::uint32_t>(out.size() + 1)));
  switch (op) {
    case 0:  // truncate
      out.resize(pos);
      break;
    case 1:  // delete one byte
      if (!out.empty()) {
        out.erase(std::min(pos, out.size() - 1), 1);
      }
      break;
    case 2:  // flip one byte to a random printable character
      if (!out.empty()) {
        out[std::min(pos, out.size() - 1)] =
            static_cast<char>(' ' + rng.nextBounded(95));
      }
      break;
    case 3: {  // splice a hostile token
      const char* token =
          kSplices[rng.nextBounded(sizeof(kSplices) / sizeof(kSplices[0]))];
      out.insert(pos, token);
      break;
    }
    default: {  // overwrite a whole whitespace-delimited token
      const char* token =
          kSplices[rng.nextBounded(sizeof(kSplices) / sizeof(kSplices[0]))];
      std::size_t start = std::min(pos, out.empty() ? 0 : out.size() - 1);
      while (start > 0 && out[start - 1] != ' ' && out[start - 1] != '\n' &&
             out[start - 1] != ',') {
        --start;
      }
      std::size_t end = start;
      while (end < out.size() && out[end] != ' ' && out[end] != '\n' &&
             out[end] != ',') {
        ++end;
      }
      out.replace(start, end - start, token);
      break;
    }
  }
  return out;
}

}  // namespace robust::util
