// Plain-text table and CSV emission for the figure/table harnesses.
//
// Every bench binary prints (a) a CSV block that regenerates the paper's
// figure series and (b) aligned human-readable tables for the paper's tables.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace robust {

/// Column-aligned plain-text table with a header row.
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends one row; must have exactly as many cells as there are headers.
  void addRow(std::vector<std::string> cells);

  /// Renders the table (header, rule, rows) to `os`.
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Minimal CSV writer; quotes cells containing separators.
class CsvWriter {
 public:
  /// Writes rows to `os`; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& os) : os_(os) {}

  /// Writes one row of cells.
  void writeRow(const std::vector<std::string>& cells);

 private:
  std::ostream& os_;
};

/// Formats a double with `precision` significant-looking decimal digits.
[[nodiscard]] std::string formatDouble(double value, int precision = 4);

}  // namespace robust
