// Error handling primitives shared by all robustalloc libraries.
//
// The library prefers exceptions for contract violations at the public API
// boundary (invalid dimensions, malformed systems) and numeric failure
// reporting (non-convergence), per the C++ Core Guidelines (E.2, E.3).
#pragma once

#include <stdexcept>
#include <string>

namespace robust {

/// Thrown when a caller violates a documented precondition of a public API
/// (e.g. mismatched vector dimensions, an application index out of range).
class InvalidArgumentError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when an object is used in a state that does not permit the
/// requested operation (e.g. querying paths before a graph is finalized).
class StateError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when an iterative numeric routine fails to converge within its
/// configured budget. Carries the best iterate's residual for diagnostics.
class ConvergenceError : public std::runtime_error {
 public:
  ConvergenceError(const std::string& what, double residual)
      : std::runtime_error(what), residual_(residual) {}

  /// Residual of the best iterate when the routine gave up.
  [[nodiscard]] double residual() const noexcept { return residual_; }

 private:
  double residual_;
};

namespace detail {
[[noreturn]] void throwInvalidArgument(const char* file, int line,
                                       const std::string& message);
}  // namespace detail

/// Precondition check used at public API boundaries. Unlike assert() it is
/// active in release builds: robustness analyses are frequently driven by
/// generated scenarios, and silent out-of-bounds indexing would invalidate
/// every downstream number.
#define ROBUST_REQUIRE(cond, message)                                        \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::robust::detail::throwInvalidArgument(__FILE__, __LINE__, (message)); \
    }                                                                        \
  } while (false)

}  // namespace robust
