// Wall-clock timing for the harnesses (solver-cost ablations).
#pragma once

#include <chrono>
#include <cstdint>

namespace robust {

/// Monotonic stopwatch; starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = clock::now(); }

  /// Elapsed whole nanoseconds since construction or the last reset().
  /// Integer ticks straight from the clock — no double rounding — so
  /// successive reads are non-decreasing and sub-microsecond intervals
  /// keep full resolution (micros() flattens anything below ~0.5 ulp of
  /// the elapsed seconds).
  [[nodiscard]] std::int64_t nanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                                start_)
        .count();
  }

  /// Elapsed seconds since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Elapsed microseconds since construction or the last reset().
  [[nodiscard]] double micros() const { return seconds() * 1e6; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace robust
