// Wall-clock timing for the harnesses (solver-cost ablations).
#pragma once

#include <chrono>

namespace robust {

/// Monotonic stopwatch; starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Elapsed microseconds since construction or the last reset().
  [[nodiscard]] double micros() const { return seconds() * 1e6; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace robust
