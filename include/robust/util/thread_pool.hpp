// A small fixed-size thread pool with a blocking parallel_for.
//
// Experiment drivers evaluate thousands of independent mappings; each
// evaluation is pure given its substream RNG, so a static block partition is
// both deterministic and contention-free (no shared mutable state beyond the
// output slots, which are disjoint).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace robust {

/// Fixed-size worker pool. Tasks are arbitrary void() callables; submission
/// is thread-safe; destruction joins all workers after draining the queue.
///
/// Exception safety: a throwing task never takes the pool (or the process)
/// down. The first exception a task escapes with is captured and rethrown
/// from the next wait(); later submissions still run normally, so a
/// long-lived service can keep using the pool after a poisoned task.
class ThreadPool {
 public:
  /// Spawns `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Signals shutdown and joins every worker; queued tasks still run. A
  /// captured task exception that was never collected by wait() is
  /// discarded (destructors cannot throw).
  ~ThreadPool();

  /// Enqueues one task for asynchronous execution.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing, then
  /// rethrows the first exception any task escaped with since the last
  /// wait() (clearing it, so the pool remains usable).
  void wait();

  /// Number of worker threads.
  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

 private:
  void workerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cvTask_;
  std::condition_variable cvDone_;
  std::size_t inFlight_ = 0;
  bool stop_ = false;
  std::exception_ptr failure_;  ///< first uncollected task exception
};

/// Parses a ROBUST_THREADS-style override: the thread count when `text` is
/// a plain decimal integer in [1, 1024], otherwise 0 ("ignore"). Hostile
/// values (negative, huge, trailing garbage, floats, empty, null) all map
/// to 0 so a bad environment can never oversubscribe or wedge the pool.
[[nodiscard]] std::size_t parseThreadCount(const char* text) noexcept;

/// Worker count used wherever callers pass `threads = 0`: the
/// ROBUST_THREADS environment variable when parseThreadCount accepts it,
/// otherwise hardware concurrency (minimum 1). Read once and cached.
[[nodiscard]] std::size_t defaultThreadCount() noexcept;

/// Runs body(i) for i in [begin, end) across the pool in contiguous blocks
/// and blocks until completion. With a single hardware thread this degrades
/// gracefully to a serial loop (no pool spun up). If body throws, the first
/// exception is rethrown here after every block has finished.
void parallelFor(std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)>& body,
                 std::size_t threads = 0);

}  // namespace robust
