// Hyperplanes and the point-to-plane distance formula.
//
// Both worked systems in the paper have affine impact functions, so their
// boundary relationships f(pi) = beta are hyperplanes and the robustness
// radius reduces to the classic point-to-plane distance (the step from
// Eq. 5 to Eq. 6).
#pragma once

#include <span>

#include "robust/numeric/vector_ops.hpp"

namespace robust::num {

/// The hyperplane { x : normal . x = offset }.
struct Hyperplane {
  Vec normal;      ///< must be non-zero
  double offset;   ///< right-hand side

  /// Signed distance from `point` (positive on the side the normal points to).
  [[nodiscard]] double signedDistance(std::span<const double> point) const;

  /// Unsigned (Euclidean) distance from `point` — Eq. 6's numerator/denominator.
  [[nodiscard]] double distance(std::span<const double> point) const;

  /// Orthogonal projection of `point` onto the plane: the boundary point
  /// pi_star of Fig. 1 when the boundary is affine.
  [[nodiscard]] Vec project(std::span<const double> point) const;

  /// Evaluates normal . x - offset (negative inside the robust region when
  /// the feature is below its beta_max bound).
  [[nodiscard]] double evaluate(std::span<const double> point) const;
};

/// Builds the boundary hyperplane for an affine impact function
/// f(x) = weights . x + constant and the bound f(x) = level.
[[nodiscard]] Hyperplane boundaryOfAffine(std::span<const double> weights,
                                          double constant, double level);

}  // namespace robust::num
