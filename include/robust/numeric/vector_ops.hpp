// Dense vector kernels used throughout the library.
//
// Perturbation parameters in the paper are modest-dimensional vectors
// (|A| <= hundreds, |sensors| ~ units), so `std::vector<double>` plus free
// functions is the right altitude — no expression templates, no BLAS.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace robust::num {

/// Vector of doubles; the representation of every perturbation parameter.
using Vec = std::vector<double>;

/// Inner product a . b (dimensions must match).
[[nodiscard]] double dot(std::span<const double> a, std::span<const double> b);

/// Euclidean (l2) norm — the norm in Eq. 1 of the paper.
[[nodiscard]] double norm2(std::span<const double> a);

/// l1 norm (ablation alternative to Eq. 1's l2).
[[nodiscard]] double norm1(std::span<const double> a);

/// l-infinity norm (ablation alternative to Eq. 1's l2).
[[nodiscard]] double normInf(std::span<const double> a);

/// Weighted l2 norm sqrt(sum w_i a_i^2); weights must be non-negative.
[[nodiscard]] double weightedNorm2(std::span<const double> a,
                                   std::span<const double> w);

/// Euclidean distance ||a - b||_2.
[[nodiscard]] double distance2(std::span<const double> a,
                               std::span<const double> b);

/// Returns a + b.
[[nodiscard]] Vec add(std::span<const double> a, std::span<const double> b);

/// Returns a - b.
[[nodiscard]] Vec sub(std::span<const double> a, std::span<const double> b);

/// Returns s * a.
[[nodiscard]] Vec scale(std::span<const double> a, double s);

/// In-place y += s * x (classic axpy).
void axpy(double s, std::span<const double> x, std::span<double> y);

/// Returns a / ||a||_2; throws if a is (numerically) zero.
[[nodiscard]] Vec normalized(std::span<const double> a);

/// True when ||a - b||_inf <= tol.
[[nodiscard]] bool approxEqual(std::span<const double> a,
                               std::span<const double> b, double tol);

}  // namespace robust::num
