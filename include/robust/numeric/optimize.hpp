// Constrained nearest-point solvers: the analysis step (step 4) of FePIA.
//
// The robustness radius (Eq. 1 of the paper) is the distance from the
// operating point pi_orig to the boundary set { pi : g(pi) = level }:
//
//     r = min  || pi - pi_orig ||_2   s.t.  g(pi) = level.
//
// Three solvers are provided, in decreasing order of assumptions:
//   * kktNewton      — damped Newton on the KKT system; exact for smooth g,
//                      one step for affine g. The paper's recommended convex
//                      program (Section 3.2) solved directly.
//   * raySearch      — gradient-alignment fixed-point iteration with random
//                      restarts; derivative-light, robust for convex g.
//   * monteCarloRadius — random-direction probing; an upper-bound estimator
//                      used as an independent oracle in tests and ablations.
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "robust/numeric/differentiation.hpp"
#include "robust/numeric/vector_ops.hpp"
#include "robust/util/rng.hpp"

namespace robust::num {

/// Gradient callback; when absent, solvers fall back to finite differences.
using GradientField = std::function<Vec(std::span<const double>)>;

/// min ||x - origin||_2 subject to g(x) = level.
struct NearestPointProblem {
  ScalarField g;                ///< impact function (step 3 of FePIA)
  GradientField gradient;       ///< optional analytic gradient of g
  double level = 0.0;           ///< boundary value (beta_min or beta_max)
  Vec origin;                   ///< pi_orig, the assumed operating point
};

/// Result of a nearest-point computation.
struct NearestPointResult {
  Vec point;             ///< boundary point pi_star (Fig. 1)
  double distance = 0.0; ///< the robustness radius candidate
  bool converged = false;
  int iterations = 0;
  std::string method;    ///< which solver produced the result
};

/// Options for the iterative solvers.
struct SolverOptions {
  double tolerance = 1e-9;      ///< KKT / fixed-point residual tolerance
  int maxIterations = 100;      ///< Newton or alignment iterations
  int restarts = 8;             ///< random restarts (raySearch)
  int samples = 4096;           ///< directions (monteCarloRadius)
  double searchLimit = 1e9;     ///< max ray length when bracketing crossings
  std::uint64_t seed = 0x5eedULL;  ///< randomized-solver seed
};

/// Distance from `origin` to the crossing of g(origin + t * direction) = level
/// for t > 0, or nullopt when the ray never crosses within options.searchLimit.
[[nodiscard]] std::optional<double> crossingAlongRay(
    const ScalarField& g, double level, std::span<const double> origin,
    std::span<const double> direction, double searchLimit);

/// Damped Newton iteration on the KKT conditions
///   x - origin + nu * grad g(x) = 0,   g(x) = level.
/// Globally convergent in practice for smooth convex g via backtracking on
/// the KKT residual; throws ConvergenceError when it cannot reach tolerance.
[[nodiscard]] NearestPointResult kktNewton(const NearestPointProblem& problem,
                                           const SolverOptions& options = {});

/// Gradient-alignment fixed point: repeatedly shoot a ray, land on the
/// boundary, and re-aim along the boundary-point gradient (the KKT
/// stationarity direction). Multi-started; returns the best crossing found.
[[nodiscard]] NearestPointResult raySearch(const NearestPointProblem& problem,
                                           const SolverOptions& options = {});

/// Upper-bound estimate: minimum crossing distance over `options.samples`
/// isotropically random directions. Converges to the radius from above as
/// samples grow; cheap, assumption-free, and an ideal independent oracle.
///
/// `measure`, when provided, maps a displacement vector to its length and
/// replaces the Euclidean norm as the minimized quantity (it must be
/// positively homogeneous, e.g. any norm); the returned distance is then in
/// `measure` units. Used for the l1 / linf / weighted-norm analyses.
[[nodiscard]] NearestPointResult monteCarloRadius(
    const NearestPointProblem& problem, const SolverOptions& options = {},
    const ScalarField& measure = {});

/// Production entry point: kktNewton, falling back to raySearch when Newton
/// fails to converge (non-smooth or awkwardly-conditioned g).
[[nodiscard]] NearestPointResult solveNearestPoint(
    const NearestPointProblem& problem, const SolverOptions& options = {});

}  // namespace robust::num
