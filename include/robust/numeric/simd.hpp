// Vectorizable radius micro-kernels with a portable scalar fallback.
//
// Every robustness number bottoms out in the same arithmetic: per-feature
// dot products w . pi against the dense affine rows of a compiled problem,
// a dual-norm division (the Eq. 1 point-to-hyperplane distance), and a min
// reduction to rho (Eq. 2). The kernels here are the throughput lane for
// that arithmetic: register-blocked multi-row fused dot products (4 rows of
// a row-major weight matrix against one instance vector — an A.x block) and
// blocked norm reductions, dispatched at runtime to AVX2 where the binary
// and the CPU both support it.
//
// Determinism contract: every kernel accumulates in a FIXED block-pairwise
// order — four lane accumulators fed in stride-4 element order, reduced as
// (l0 + l2) + (l1 + l3) — and never uses fused multiply-add (the kernel TU
// is built with -ffp-contract=off). The scalar fallback replays the exact
// same lane schedule, including the masked tail (absent lanes contribute a
// literal +0.0 product, exactly like the AVX2 masked load), so results are
// bit-identical across dispatch targets, runs, and thread counts. The
// blocked order intentionally differs from the legacy element-order loops
// in vector_ops.cpp: bit-anchored paths (CompiledProblem::evaluate and the
// PR 2/3 bit-identity suites) keep the legacy loops; the kernel lane is
// differentially tested against them at <= 1e-12 relative instead.
#pragma once

#include <cstddef>
#include <span>

namespace robust::num::simd {

/// A dispatch target. Scalar is always available; Avx2 requires both
/// compiler support (x86-64 gcc/clang function targets) and the running
/// CPU to advertise AVX2.
enum class Target { Scalar, Avx2 };

/// Human-readable target name ("scalar", "avx2").
[[nodiscard]] const char* toString(Target target) noexcept;

/// True when this binary carries the AVX2 kernels AND the CPU supports
/// them. Independent of the currently selected target.
[[nodiscard]] bool avx2Available() noexcept;

/// The currently selected target. Resolved once at first use: Avx2 when
/// available, unless the ROBUST_SIMD environment variable ("scalar" or
/// "avx2") overrides the choice. Forcing "avx2" on a machine without it
/// falls back to Scalar.
[[nodiscard]] Target activeTarget() noexcept;

/// Overrides the dispatch target for the whole process (tests and benches;
/// results are bit-identical either way, only throughput changes).
/// Selecting Avx2 when !avx2Available() selects Scalar instead.
void setTarget(Target target) noexcept;

/// Blocked dot product a . x (sizes must match).
[[nodiscard]] double dotBlocked(std::span<const double> a,
                                std::span<const double> x);

/// Register-blocked A . x: `rows` dot products of consecutive row-major
/// rows (leading dimension `dim` = x.size()) against one vector, written to
/// out[0..rows). Each out[r] is bit-identical to dotBlocked(row r, x).
void dotRowsBlocked(const double* rowMajor, std::size_t rows,
                    std::span<const double> x, double* out);

/// Blocked l1 norm (sum of absolute values).
[[nodiscard]] double norm1Blocked(std::span<const double> a);

/// Blocked l2 norm, sqrt of the block-pairwise sum of squares. Plain
/// accumulation: unlike num::norm2 it does not rescale, so it can overflow
/// for |a_i| near 1e154 — callers on the kernel lane accept that.
[[nodiscard]] double norm2Blocked(std::span<const double> a);

/// Blocked l-infinity norm. max is order-independent, so this is bit-equal
/// to num::normInf for every input without NaNs.
[[nodiscard]] double normInfBlocked(std::span<const double> a);

}  // namespace robust::num::simd
