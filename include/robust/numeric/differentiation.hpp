// Finite-difference derivatives for impact functions supplied as opaque
// callables (step 3 of FePIA allows arbitrary f_ij; the KKT-Newton solver
// needs gradients and Hessians even when the caller provides none).
#pragma once

#include <functional>
#include <span>

#include "robust/numeric/matrix.hpp"
#include "robust/numeric/vector_ops.hpp"

namespace robust::num {

/// A scalar field over R^n.
using ScalarField = std::function<double(std::span<const double>)>;

/// Central-difference gradient of `f` at `x`. Step is scaled per component:
/// h_i = baseStep * max(1, |x_i|) so large-magnitude loads (lambda ~ 1000)
/// and small ones are differentiated at comparable relative accuracy.
[[nodiscard]] Vec gradientFD(const ScalarField& f, std::span<const double> x,
                             double baseStep = 1e-6);

/// Central-difference Hessian of `f` at `x` (symmetric by construction).
[[nodiscard]] Matrix hessianFD(const ScalarField& f, std::span<const double> x,
                               double baseStep = 1e-4);

/// Directional derivative of `f` at `x` along (not necessarily unit) `d`.
[[nodiscard]] double directionalDerivativeFD(const ScalarField& f,
                                             std::span<const double> x,
                                             std::span<const double> d,
                                             double baseStep = 1e-6);

}  // namespace robust::num
