// Small dense matrix with hand-rolled factorizations.
//
// Used by the KKT-Newton radius solver, whose linear systems are
// (dim+1) x (dim+1) with dim = |perturbation vector| (tens, not thousands),
// so an O(n^3) partially-pivoted LU is the right tool.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "robust/numeric/vector_ops.hpp"

namespace robust::num {

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  /// Creates a rows x cols matrix, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols);

  /// Creates an n x n identity matrix.
  [[nodiscard]] static Matrix identity(std::size_t n);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  /// Element access (bounds-checked in debug only; hot path).
  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  /// Matrix-vector product A x.
  [[nodiscard]] Vec multiply(std::span<const double> x) const;

  /// Transposed matrix.
  [[nodiscard]] Matrix transposed() const;

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<double> data_;
};

/// LU factorization with partial pivoting of a square matrix.
/// Throws ConvergenceError when the matrix is numerically singular.
class LuDecomposition {
 public:
  /// Factorizes `a` (copied); O(n^3).
  explicit LuDecomposition(Matrix a);

  /// Solves A x = b for one right-hand side.
  [[nodiscard]] Vec solve(std::span<const double> b) const;

  /// Determinant of A (sign-corrected product of U's diagonal).
  [[nodiscard]] double determinant() const;

 private:
  Matrix lu_;
  std::vector<std::size_t> perm_;
  int permSign_ = 1;
};

/// Cholesky factorization A = L L^T of a symmetric positive-definite matrix.
/// Throws ConvergenceError when A is not (numerically) SPD.
class CholeskyDecomposition {
 public:
  /// Factorizes `a` (only the lower triangle is read); O(n^3 / 3).
  explicit CholeskyDecomposition(const Matrix& a);

  /// Solves A x = b.
  [[nodiscard]] Vec solve(std::span<const double> b) const;

 private:
  Matrix l_;
};

}  // namespace robust::num
