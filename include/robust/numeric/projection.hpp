// Euclidean projection solvers for convex feasibility and constrained
// nearest-point problems.
//
// The constrained radius lane of the compiled engine
// (robust/core/compiled.hpp) reduces every feasibility-clipped radius to
// plain-L2 geometry by rescaling coordinates with the norm weights, so this
// module only ever sees halfspaces and Euclidean balls:
//
//   * projectOntoIntersection — Dykstra's alternating projection: the exact
//     nearest point of an intersection of halfspaces (unlike plain POCS,
//     Dykstra's correction terms make the limit the *projection*, not just
//     some feasible point).
//   * feasiblePoint — POCS (projection onto convex sets): any point of an
//     intersection of halfspaces and block balls, used as the membership
//     oracle inside the bisection that handles multi-subspace radii.
//
// Both report convergence honestly: an empty intersection shows up as
// converged == false with the final residual, never as a fabricated point.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "robust/numeric/vector_ops.hpp"

namespace robust::num {

/// One closed halfspace. `geq` selects the sense:
///   geq == false:  normal . x <= offset
///   geq == true:   normal . x >= offset
struct Halfspace {
  Vec normal;
  double offset = 0.0;
  bool geq = false;
};

/// A Euclidean ball over one contiguous block [offset, offset + center.size())
/// of the ambient vector; coordinates outside the block are unconstrained.
struct BlockBall {
  std::size_t offset = 0;
  Vec center;
  double radius = 0.0;
};

struct ProjectionOptions {
  std::size_t maxIterations = 4000;
  /// Absolute residual (max constraint violation) below which the iterate
  /// counts as a member of the intersection.
  double tolerance = 1e-10;
};

struct ProjectionResult {
  Vec point;               ///< final iterate
  bool converged = false;  ///< residual <= tolerance within the budget
  double residual = 0.0;   ///< max violation of the final iterate
  std::size_t iterations = 0;
};

/// Violation of `x` against one halfspace: 0 when satisfied, the Euclidean
/// distance to the halfspace otherwise.
[[nodiscard]] double halfspaceViolation(const Halfspace& h,
                                        std::span<const double> x);

/// Largest violation of `x` over all halfspaces and balls (0 when `x` is
/// in the intersection).
[[nodiscard]] double maxViolation(std::span<const Halfspace> halfspaces,
                                  std::span<const BlockBall> balls,
                                  std::span<const double> x);

/// Dykstra's algorithm: the Euclidean projection of `x0` onto the
/// intersection of `halfspaces`. When the intersection is empty the result
/// reports converged == false and the caller must treat the point as
/// meaningless.
[[nodiscard]] ProjectionResult projectOntoIntersection(
    std::span<const Halfspace> halfspaces, std::span<const double> x0,
    const ProjectionOptions& options = {});

/// POCS: cyclic projections from `start` until every halfspace and ball is
/// satisfied to tolerance. Converges to *a* member of the intersection
/// whenever one exists (not the nearest); an empty intersection reports
/// converged == false.
[[nodiscard]] ProjectionResult feasiblePoint(
    std::span<const Halfspace> halfspaces, std::span<const BlockBall> balls,
    std::span<const double> start, const ProjectionOptions& options = {});

}  // namespace robust::num
