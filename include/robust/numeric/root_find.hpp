// One-dimensional root finding: bracket expansion, bisection, and Brent's
// method. Used to locate boundary crossings g(x0 + t d) = level along rays,
// which is how the ray-search and Monte-Carlo radius estimators work.
#pragma once

#include <functional>
#include <optional>

namespace robust::num {

/// A scalar function of one variable.
using ScalarFn1D = std::function<double(double)>;

/// Result of a root search.
struct RootResult {
  double x = 0.0;         ///< abscissa of the root
  double fx = 0.0;        ///< residual at the root
  int iterations = 0;     ///< iterations consumed
};

/// Options shared by the 1-D solvers.
struct RootOptions {
  double xTol = 1e-12;    ///< absolute tolerance on the abscissa
  double fTol = 1e-12;    ///< absolute tolerance on the residual
  int maxIterations = 200;
};

// All three routines fail fast (InvalidArgumentError naming the abscissa)
// when the objective returns a non-finite value: NaN defeats every sign
// test (all NaN comparisons are false), so tolerating it would silently
// burn maxIterations and return a garbage root.

/// Expands [lo, hi] geometrically until f changes sign or `limit` is hit.
/// Returns the bracketing interval, or nullopt if no sign change was found.
[[nodiscard]] std::optional<std::pair<double, double>> expandBracket(
    const ScalarFn1D& f, double lo, double hi, double limit,
    int maxDoublings = 64);

/// Bisection on a bracketing interval [lo, hi] with f(lo)*f(hi) <= 0.
/// Throws InvalidArgumentError when the interval does not bracket a root.
[[nodiscard]] RootResult bisect(const ScalarFn1D& f, double lo, double hi,
                                const RootOptions& options = {});

/// Brent's method (inverse quadratic + secant + bisection safeguards) on a
/// bracketing interval. Superlinear on smooth functions, never worse than
/// bisection. Throws InvalidArgumentError when the interval does not bracket.
[[nodiscard]] RootResult brent(const ScalarFn1D& f, double lo, double hi,
                               const RootOptions& options = {});

}  // namespace robust::num
