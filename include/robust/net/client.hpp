// Blocking robustd client: one connection, synchronous request/reply.
//
// The client exists for three consumers — the load generator, the soak
// test, and embedders that want remote analysis with offline semantics —
// so it exposes exactly the protocol surface plus two chaos hooks:
// sendRaw() writes arbitrary bytes (malformed-frame injection) and
// closeNow() drops the socket without BYE (disconnect injection).
//
// Replies are decoded with the same util::Diagnostics discipline the
// server applies to requests; a Reject frame surfaces as RejectedError so
// callers can distinguish "the server said no" (categorized, with the
// server's message) from transport failure (std::runtime_error).
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "robust/net/wire.hpp"

namespace robust::net {

/// The server answered with a REJECT frame. Carries the category the
/// server assigned and whether the server declared the rejection fatal
/// (connection closing).
class RejectedError : public std::runtime_error {
 public:
  explicit RejectedError(RejectInfo info)
      : std::runtime_error(info.message), info_(std::move(info)) {}

  [[nodiscard]] const RejectInfo& info() const noexcept { return info_; }

 private:
  RejectInfo info_;
};

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Connects to a robustd Unix socket. Throws std::runtime_error on
  /// failure.
  void connectUnix(const std::string& path);

  /// Connects to a robustd loopback TCP port.
  void connectTcp(std::uint16_t port);

  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

  /// HELLO handshake; returns the server-assigned session id.
  std::uint64_t hello(const std::string& tenant,
                      std::uint32_t declaredDemand);

  /// Registers a problem spec; returns the content key to ANALYZE against
  /// and whether the server already had a byte-identical spec cached.
  RegisterReply registerProblem(const core::ProblemSpec& spec);

  /// Same, from pre-encoded canonical spec bytes (lets callers hash/replay
  /// the exact payload).
  RegisterReply registerEncoded(std::span<const std::uint8_t> specBytes);

  /// Streams one perturbation batch and blocks for the results. `origins`
  /// holds instanceCount * dim doubles, instance-contiguous.
  std::vector<WireResult> analyze(std::uint64_t key,
                                  std::uint32_t instanceCount,
                                  std::span<const double> origins);

  /// STATS admin request: returns the server's robust.stats JSON snapshot
  /// (schema kStatsSchemaVersion). Works without a HELLO handshake.
  std::string stats();

  /// TRACE_DUMP admin request: drains the server's flight recorder and
  /// returns the Chrome trace-event JSON document. Works without HELLO.
  std::string traceDump();

  /// Graceful shutdown: BYE, wait for BYE_OK, close.
  void bye();

  /// Chaos hook: writes raw bytes straight to the socket, bypassing every
  /// encoder. The caller owns whatever the server thinks of them.
  void sendRaw(std::span<const std::uint8_t> bytes);

  /// Reads the next frame whatever it is (for chaos callers that expect a
  /// specific reject). Returns header + payload.
  std::pair<FrameHeader, std::vector<std::uint8_t>> readFrame();

  /// Chaos hook: drops the connection immediately — no BYE, no flush
  /// beyond what the kernel already took.
  void closeNow();

 private:
  void sendFrame(FrameType type, std::span<const std::uint8_t> payload);
  /// Reads until a non-Reject frame of `expect` arrives; throws
  /// RejectedError on Reject, std::runtime_error on transport failure or
  /// an unexpected frame type.
  std::vector<std::uint8_t> await(FrameType expect);
  void writeAll(const std::uint8_t* data, std::size_t n);
  void readAll(std::uint8_t* data, std::size_t n);

  int fd_ = -1;
  std::uint32_t nextRequestId_ = 1;
  WireLimits limits_;
};

}  // namespace robust::net
