// The robustd wire protocol: length-prefixed binary frames over a stream
// socket (Unix or TCP).
//
// Every frame is a fixed 16-byte little-endian header followed by
// `payloadBytes` of payload:
//
//   offset  size  field
//   0       4     magic "RBD1" (0x31444252 LE)
//   4       1     protocol version (kProtocolVersion)
//   5       1     frame type (FrameType)
//   6       2     reserved, must be 0
//   8       4     payloadBytes (<= WireLimits::maxFrameBytes)
//   12      4     requestId — echoed verbatim in the reply so clients can
//                 pipeline requests
//
// The payload grammar per type is documented on each encode/decode pair
// below. Everything crossing the socket is UNTRUSTED: decoding routes every
// malformed field through util::Diagnostics (PR 3 discipline), so a bad
// frame produces a categorized RejectCategory — never a crash, never an
// unbounded allocation (counts are cross-checked against the byte budget
// before any array is materialized). A malformed HEADER is fatal for the
// connection (framing is lost); a malformed PAYLOAD inside a well-framed
// frame is not (the session continues).
//
// The ProblemSpec codec carries the affine subset of core::ProblemSpec —
// features with explicit weight rows, tolerance bounds, one norm (with
// optional weights), a discrete flag, and hard linear constraints. Opaque
// callable features cannot cross a process boundary and are rejected at
// encode time. The encoding is canonical (no padding, fixed field order),
// so its FNV-1a hash is a content key: byte-identical specs map to the
// same CompiledProblem cache entry across tenants.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "robust/core/compiled.hpp"
#include "robust/util/diagnostics.hpp"

namespace robust::net {

inline constexpr std::uint32_t kMagic = 0x31444252u;  // "RBD1" little-endian
inline constexpr std::uint8_t kProtocolVersion = 1;
inline constexpr std::size_t kHeaderBytes = 16;

enum class FrameType : std::uint8_t {
  // client -> server
  Hello = 0x01,     ///< declare tenant name + demand; must be first
  Register = 0x02,  ///< ProblemSpec payload -> content-hash key
  Analyze = 0x03,   ///< perturbation batch against a registered key
  Bye = 0x04,       ///< graceful close
  // client -> server, admin introspection (no HELLO required; answered on
  // the IO thread without touching the compute pool)
  Stats = 0x05,      ///< request a robust.stats JSON snapshot
  TraceDump = 0x06,  ///< drain the flight recorder as Chrome-trace JSON
  // server -> client
  HelloOk = 0x81,
  RegisterOk = 0x82,
  Result = 0x83,
  ByeOk = 0x84,
  StatsOk = 0x85,      ///< payload: robust.stats JSON text
  TraceDumpOk = 0x86,  ///< payload: Chrome trace-event JSON text
  Reject = 0xbf,  ///< categorized rejection of the request it echoes
};

/// Schema identity of the STATS snapshot document. Bumped when the JSON
/// layout changes incompatibly; clients send the version they speak and
/// the server rejects (Structure, non-fatal) any other.
inline constexpr std::uint32_t kStatsSchemaVersion = 1;
inline constexpr std::string_view kStatsSchemaName = "robust.stats";

/// True for the frame types a client may send.
[[nodiscard]] bool isClientFrameType(std::uint8_t type) noexcept;

struct FrameHeader {
  std::uint8_t version = kProtocolVersion;
  FrameType type = FrameType::Hello;
  std::uint32_t payloadBytes = 0;
  std::uint32_t requestId = 0;
};

/// Hard caps on everything a frame can ask the server to materialize.
/// Every limit is checked before the corresponding allocation.
struct WireLimits {
  std::uint32_t maxFrameBytes = 64u << 20;  ///< payload bytes per frame
  std::uint32_t maxDim = 1u << 20;          ///< perturbation components
  std::uint32_t maxFeatures = 1u << 16;     ///< features per spec
  std::uint32_t maxConstraints = 1u << 12;  ///< constraints per spec
  std::uint32_t maxInstances = 1u << 20;    ///< instances per ANALYZE batch
  std::uint32_t maxNameBytes = 256;         ///< spec/tenant name length
  std::uint32_t maxDeclaredDemand = 1u << 16;  ///< HELLO demand cap
};

// --------------------------------------------------------------- header

/// Appends the 16 header bytes for `header` to `out`.
void encodeFrameHeader(const FrameHeader& header,
                       std::vector<std::uint8_t>& out);

/// Decodes and validates a header from exactly kHeaderBytes bytes. Throws
/// util::ParseError (Format: bad magic/type, Structure: bad version or
/// reserved bits, Domain: payload over limits.maxFrameBytes) — all fatal
/// for the connection, since framing cannot be trusted afterwards.
[[nodiscard]] FrameHeader decodeFrameHeader(
    std::span<const std::uint8_t> bytes, const WireLimits& limits,
    const util::Diagnostics& diag);

// ------------------------------------------------------------- payloads

/// HELLO payload: u32 declaredDemand in [1, maxDeclaredDemand]; u16
/// nameLen; nameLen bytes of printable-ASCII tenant name.
void encodeHello(std::uint32_t declaredDemand, const std::string& tenant,
                 std::vector<std::uint8_t>& out);
struct HelloRequest {
  std::uint32_t declaredDemand = 1;
  std::string tenant;
};
[[nodiscard]] HelloRequest decodeHello(std::span<const std::uint8_t> payload,
                                       const WireLimits& limits,
                                       const util::Diagnostics& diag);

/// HELLO_OK payload: u32 protocol version; u64 session id.
void encodeHelloOk(std::uint64_t sessionId, std::vector<std::uint8_t>& out);
struct HelloReply {
  std::uint32_t protocolVersion = 0;
  std::uint64_t sessionId = 0;
};
[[nodiscard]] HelloReply decodeHelloOk(std::span<const std::uint8_t> payload,
                                       const util::Diagnostics& diag);

/// REGISTER payload (the canonical ProblemSpec encoding):
///   u32 dim; u32 featureCount; u32 constraintCount;
///   u8 norm (NormKind); u8 discrete; u16 reserved = 0;
///   f64[dim] origin;
///   f64[dim] normWeights            — present only when norm == Weighted;
///   featureCount x { u16 nameLen; name; u8 boundsMask (1 = min, 2 = max);
///                    f64 boundMin?; f64 boundMax?; f64 constant;
///                    f64[dim] weights };
///   constraintCount x { u16 nameLen; name; f64 bound; f64[dim] coeffs }.
/// All floating-point fields must be finite (Domain); norm weights must be
/// positive; boundsMask must name at least one bound.
///
/// encodeProblemSpec throws InvalidArgumentError when the spec cannot
/// cross the wire (callable features, explicit subspaces, dimension
/// mismatches) — those are caller bugs, not hostile input.
[[nodiscard]] std::vector<std::uint8_t> encodeProblemSpec(
    const core::ProblemSpec& spec);
[[nodiscard]] core::ProblemSpec decodeProblemSpec(
    std::span<const std::uint8_t> payload, const WireLimits& limits,
    const util::Diagnostics& diag);

/// REGISTER_OK payload: u64 key; u8 fromCache.
void encodeRegisterOk(std::uint64_t key, bool fromCache,
                      std::vector<std::uint8_t>& out);
struct RegisterReply {
  std::uint64_t key = 0;
  bool fromCache = false;
};
[[nodiscard]] RegisterReply decodeRegisterOk(
    std::span<const std::uint8_t> payload, const util::Diagnostics& diag);

/// ANALYZE payload: u64 problemKey; u32 instanceCount; u32 reserved = 0;
/// f64[instanceCount * dim] origins (instance-contiguous). The dimension is
/// the registered problem's; decodeAnalyzeHead validates everything that
/// does not need the problem, the server cross-checks the payload size
/// against the key's dimension (Structure on mismatch).
void encodeAnalyze(std::uint64_t key, std::uint32_t instanceCount,
                   std::span<const double> origins,
                   std::vector<std::uint8_t>& out);
struct AnalyzeHead {
  std::uint64_t key = 0;
  std::uint32_t instanceCount = 0;
};
inline constexpr std::size_t kAnalyzeHeadBytes = 16;
[[nodiscard]] AnalyzeHead decodeAnalyzeHead(
    std::span<const std::uint8_t> payload, const WireLimits& limits,
    const util::Diagnostics& diag);

/// RESULT payload: u32 instanceCount; u32 reserved = 0; instanceCount x
/// { f64 rho; u32 bindingFeature; u8 flags }. Flag bit 0 = metric floored
/// (discrete parameter), bit 1 = infeasible origin (hard constraint
/// violated at the operating point; rho is 0).
struct WireResult {
  double rho = 0.0;
  std::uint32_t bindingFeature = 0;
  bool floored = false;
  bool infeasibleOrigin = false;
};
void encodeResult(std::span<const WireResult> results,
                  std::vector<std::uint8_t>& out);
[[nodiscard]] std::vector<WireResult> decodeResult(
    std::span<const std::uint8_t> payload, const WireLimits& limits,
    const util::Diagnostics& diag);

/// STATS / TRACE_DUMP request payload: u32 schemaVersion (must equal
/// kStatsSchemaVersion — Structure otherwise); u32 reserved = 0. The
/// replies carry UTF-8 JSON text as their whole payload: a schema-versioned
/// robust.stats document for STATS_OK, a Chrome trace-event document (the
/// drained flight recorder) for TRACE_DUMP_OK. Both replies respect
/// WireLimits::maxFrameBytes like every other frame.
void encodeAdminRequest(std::uint32_t schemaVersion,
                        std::vector<std::uint8_t>& out);
[[nodiscard]] std::uint32_t decodeAdminRequest(
    std::span<const std::uint8_t> payload, const util::Diagnostics& diag);

/// REJECT payload: u8 category (util::RejectCategory); u8 fatal; u16
/// reserved = 0; u32 messageBytes; message. `fatal` means the server is
/// about to close this connection (framing lost); non-fatal rejects answer
/// exactly one request and the session continues.
struct RejectInfo {
  util::RejectCategory category = util::RejectCategory::Other;
  bool fatal = false;
  std::string message;
};
void encodeReject(const RejectInfo& reject, std::vector<std::uint8_t>& out);
[[nodiscard]] RejectInfo decodeReject(std::span<const std::uint8_t> payload,
                                      const util::Diagnostics& diag);

// ---------------------------------------------------------------- hashing

/// FNV-1a 64-bit over `bytes`: the content key of a canonical spec
/// encoding. Stable across platforms and processes.
[[nodiscard]] std::uint64_t fnv1a(std::span<const std::uint8_t> bytes) noexcept;

/// Convenience: a complete frame (header + payload) ready to write.
[[nodiscard]] std::vector<std::uint8_t> buildFrame(
    FrameType type, std::uint32_t requestId,
    std::span<const std::uint8_t> payload);

}  // namespace robust::net
