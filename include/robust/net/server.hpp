// robustd: a long-lived, multi-tenant robustness-analysis service.
//
// One IO thread owns an epoll (or poll — ROBUST_NET_POLL / forcePoll) loop
// over a Unix or loopback-TCP listening socket and every live session; a
// fixed util::ThreadPool executes the compute. The two meet through a
// weighted-fair admission queue:
//
//   * each session declares a demand weight at HELLO time; admitted work
//     advances the session's virtual time by cost / weight (cost = the
//     instance count it asked the pool to evaluate, so a greedy tenant
//     misdeclaring a huge weight still pays for the work it actually
//     submits — the declared-vs-charged gap is visible in the session's
//     run report);
//   * the dispatcher always starts the runnable session with the LOWEST
//     virtual time, one in-flight request per session (per-session FIFO
//     replies), so no tenant can starve another no matter how fast it
//     writes.
//
// Backpressure is byte-denominated per connection: when queued request
// payloads plus unsent replies exceed ServerOptions::maxInflightBytes, the
// session's fd is dropped from the read set until the backlog halves —
// deferred reads push the pressure into the peer's socket buffer instead
// of the daemon's heap.
//
// Registered specs land in a shared content-addressed LRU: byte-identical
// REGISTER payloads (FNV-1a key, full byte compare on hit) map to ONE
// CompiledProblem shared across tenants; sessions pin their entries with
// shared_ptr, so eviction under churn never invalidates a registered key.
//
// Every answer the daemon produces is bit-identical to the offline batch
// lane: ANALYZE runs CompiledProblem::analyzeBatchMetric, whose results do
// not depend on thread count, plus the originFeasible() check that
// classifies infeasible operating points (the full lane's
// RobustnessReport::infeasibleOrigin).
//
// Failure containment: a malformed frame header poisons only ITS
// connection (categorized fatal reject, then close); a malformed payload
// answers with a categorized non-fatal reject; a client disconnect mid
// batch discards that session's queue. None of these disturb any other
// tenant's stream — the soak test injects all three while asserting other
// sessions' bits.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "robust/net/wire.hpp"
#include "robust/util/diagnostics.hpp"

namespace robust::net {

struct ServerOptions {
  /// Unix-domain listening socket path. Takes precedence over TCP when
  /// non-empty. The path is unlinked on bind and on shutdown.
  std::string unixPath;
  /// Loopback TCP port (127.0.0.1). 0 means "pick an ephemeral port";
  /// Server::port() reports the resolved value.
  std::uint16_t tcpPort = 0;
  /// When neither unixPath nor tcpPort is set, the server listens on an
  /// ephemeral loopback TCP port.
  /// Compute pool size; 0 = defaultThreadCount().
  std::size_t workers = 0;
  /// Shared CompiledProblem LRU capacity (entries).
  std::size_t cacheCapacity = 64;
  /// Wire caps applied to every frame.
  WireLimits limits;
  /// Per-connection in-flight byte bound (queued request payloads +
  /// pending reply bytes) before reads are deferred.
  std::size_t maxInflightBytes = 4u << 20;
  /// When non-empty, a robust.run_report JSON file is written here for
  /// every connection on close ("robustd_session_<id>.json").
  std::string reportDir;
  /// When non-empty, the flight recorder is dumped here automatically on
  /// every fatal reject ("robustd_flight_fatal_<n>.json") — the operator's
  /// look at what every thread was doing just before framing was lost.
  std::string flightDir;
  /// Force the poll(2) backend even where epoll is available (the
  /// ROBUST_NET_POLL environment variable does the same at runtime).
  bool forcePoll = false;
};

/// Monotonic counters describing everything the server has done. Snapshot
/// via Server::stats(); the soak test asserts leak-freedom with them.
struct ServerStats {
  std::uint64_t sessionsOpened = 0;
  std::uint64_t sessionsClosed = 0;   ///< fully reclaimed (fd closed, work drained)
  std::uint64_t sessionsActive = 0;   ///< opened - closed
  std::uint64_t framesHandled = 0;    ///< well-formed frames accepted
  std::uint64_t batches = 0;          ///< ANALYZE requests completed
  std::uint64_t instances = 0;        ///< perturbation instances evaluated
  std::uint64_t registers = 0;        ///< REGISTER requests completed
  std::uint64_t cacheHits = 0;
  std::uint64_t cacheMisses = 0;
  std::uint64_t cacheEvictions = 0;
  std::uint64_t backpressureStalls = 0;  ///< read-deferral transitions
  std::uint64_t backlogHighWaterBytes = 0;  ///< largest per-session backlog
  std::uint64_t disconnects = 0;      ///< peers that vanished uncleanly
  std::uint64_t statsRequests = 0;    ///< STATS admin frames answered
  std::uint64_t traceDumps = 0;       ///< TRACE_DUMP admin frames answered
  /// Rejected frames by RejectCategory (Format, Domain, Structure,
  /// Truncated, Other).
  std::array<std::uint64_t, util::kRejectCategoryCount> rejects{};

  [[nodiscard]] std::uint64_t rejectsTotal() const noexcept {
    std::uint64_t sum = 0;
    for (std::uint64_t v : rejects) {
      sum += v;
    }
    return sum;
  }
};

/// The daemon. Construct, start(), and stop() (or destroy — the destructor
/// stops). One Server owns one listening socket, one IO thread, and one
/// compute pool.
class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the IO thread. Throws std::runtime_error
  /// when the socket cannot be bound.
  void start();

  /// Graceful shutdown: stops accepting, fails over pending work, drains
  /// the pool, closes every session (writing their run reports), and joins
  /// the IO thread. Idempotent.
  void stop();

  /// Resolved TCP port (after start(); 0 for Unix-socket servers).
  [[nodiscard]] std::uint16_t port() const noexcept;

  /// The listening Unix path ("" for TCP servers).
  [[nodiscard]] const std::string& unixPath() const noexcept;

  /// Point-in-time counters. Safe from any thread.
  [[nodiscard]] ServerStats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace robust::net
