// Monte-Carlo robustness studies: run a mapping many times under a
// stochastic perturbation model and relate the realized outcomes to the
// metric's guarantee.
//
// The guarantee (Section 3.1): whenever the sampled error vector's norm is
// at most rho, the realized makespan is at most tau * M_orig. The study
// counts guarantee-covered trials (must never violate) separately from
// larger perturbations (may or may not violate — the metric is worst-case,
// so most larger perturbations still succeed).
#pragma once

#include <cstdint>
#include <vector>

#include "robust/sim/executor.hpp"
#include "robust/sim/perturbation.hpp"

namespace robust::sim {

/// Aggregated outcomes of one (model, magnitude) study point.
struct StudyPoint {
  double magnitude = 0.0;         ///< the model's relative error scale
  double meanErrorNorm = 0.0;     ///< mean ||actual - estimate||_2, in units
                                  ///< of rho (so 1.0 = at the radius)
  double violationRate = 0.0;     ///< fraction of trials beyond tau * M_orig
  double meanMakespanRatio = 0.0; ///< mean realized M / M_orig
  double p95MakespanRatio = 0.0;  ///< 95th percentile of realized M / M_orig
  int coveredTrials = 0;          ///< trials with ||error|| <= rho
  int coveredViolations = 0;      ///< of those, violations (MUST be 0)
};

/// Study configuration.
struct StudyOptions {
  ErrorModel model = ErrorModel::GaussianRelative;
  std::vector<double> magnitudes = {0.02, 0.05, 0.1, 0.2, 0.4};
  int trials = 2000;              ///< per magnitude
  std::uint64_t seed = 1;
  /// Trial-loop workers: 0 = defaultThreadCount() (ROBUST_THREADS /
  /// hardware), 1 = serial. Every trial draws from its own makeStream
  /// substream and writes a dedicated output slot, and the aggregation is a
  /// serial reduction in trial order — so the results are bit-identical for
  /// every worker count.
  std::size_t threads = 0;
};

/// Runs the study for one mapping. Deterministic in (options, seed),
/// independent of the worker count.
[[nodiscard]] std::vector<StudyPoint> runMakespanStudy(
    const sched::IndependentTaskSystem& system, const StudyOptions& options);

}  // namespace robust::sim
