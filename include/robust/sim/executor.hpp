// Deterministic executor for the independent-task system of Section 3.1.
//
// The robustness metric is a statement about what happens when the ACTUAL
// execution times differ from the ETC estimates. This module provides the
// "actual" side: it executes a mapping under a given vector of actual times
// (each machine runs its applications sequentially, in assignment order, as
// the paper's model prescribes) and reports the realized schedule. Release
// times and machine-ready offsets generalize the model enough to replay
// traces; the defaults reproduce Eq. 4 exactly.
#pragma once

#include <cstddef>
#include <vector>

#include "robust/scheduling/mapping.hpp"

namespace robust::sim {

/// One executed application in the realized schedule.
struct TaskTrace {
  std::size_t app = 0;
  std::size_t machine = 0;
  double start = 0.0;
  double finish = 0.0;
};

/// The realized schedule.
struct ExecutionResult {
  std::vector<TaskTrace> tasks;      ///< in application-index order
  std::vector<double> finishTimes;   ///< realized F_j per machine
  double makespan = 0.0;             ///< realized M
};

/// Inputs beyond the mapping: the actual execution time of each application
/// on its assigned machine, plus optional arrival/availability offsets.
struct ExecutionInput {
  std::vector<double> actualTimes;   ///< one per application (must be >= 0)
  std::vector<double> releaseTimes;  ///< optional; empty = all released at 0
  std::vector<double> machineReady;  ///< optional; empty = all ready at 0
};

/// Executes `mapping` under the given actual times. Applications on one
/// machine run sequentially in increasing application-index order (the
/// paper's "in the order in which the applications are assigned"); each
/// starts at max(its release time, the machine's previous finish).
/// With default offsets the finish times equal Eq. 4 evaluated at the
/// actual-time vector.
[[nodiscard]] ExecutionResult execute(const sched::Mapping& mapping,
                                      const ExecutionInput& input);

}  // namespace robust::sim
