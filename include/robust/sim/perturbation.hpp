// Perturbation models: how actual execution times deviate from estimates.
//
// The metric makes a worst-case statement over a norm ball; real systems
// perturb stochastically. These models generate actual-time vectors from
// estimates so the executor can measure realized behavior, and the
// worst-case generator produces the adversarial perturbation the metric is
// tight against (the critical direction of Section 3.1's observations).
#pragma once

#include <string>
#include <vector>

#include "robust/scheduling/independent_system.hpp"
#include "robust/util/rng.hpp"

namespace robust::sim {

/// Stochastic error model families.
enum class ErrorModel {
  GaussianRelative,    ///< actual = estimate * (1 + magnitude * N(0,1)), >= 0
  GammaMultiplicative, ///< actual = estimate * Gamma(mean 1, cv magnitude)
  UniformRelative,     ///< actual = estimate * U(1 - magnitude, 1 + magnitude)
};

/// Human-readable model name.
[[nodiscard]] std::string toString(ErrorModel model);

/// A stochastic perturbation: model family plus magnitude (the relative
/// error scale; interpretation per family above).
struct PerturbationModel {
  ErrorModel model = ErrorModel::GaussianRelative;
  double magnitude = 0.1;

  /// Samples an actual-time vector for the given estimates. Negative draws
  /// are clamped to zero (execution times cannot be negative).
  [[nodiscard]] std::vector<double> sample(
      std::span<const double> estimates, Pcg32& rng) const;
};

/// The adversarial perturbation of norm `radius`: actual times moved from
/// the estimates straight toward the binding machine's boundary (the
/// direction of the critical point C*, Section 3.1 observations 1-2).
/// For radius <= rho the resulting makespan stays within tau * M_orig with
/// equality at radius == rho; beyond it, the requirement breaks — the
/// fastest way any perturbation of that size can break it.
[[nodiscard]] std::vector<double> worstCasePerturbation(
    const sched::IndependentTaskSystem& system, double radius);

}  // namespace robust::sim
