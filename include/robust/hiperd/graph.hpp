// The HiPer-D application model of Section 3.2: a DAG of continuously
// executing, communicating applications fed by sensors and draining into
// actuators (Fig. 2 of the paper).
//
// A *path* is a chain of producer-consumer pairs that starts at a sensor
// (the driving sensor) and ends at an actuator (a "trigger path") or at a
// multiple-input application (an "update path"). When a walk reaches a
// multiple-input application through its designated trigger edge it
// continues through; through any other edge the path ends there (the
// multiple-input application *receives* the update but is not part of it).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace robust::hiperd {

/// Kind of graph node.
enum class NodeKind { Sensor, Application, Actuator };

/// Identifies a node: its kind plus an index within that kind's own space
/// (sensor 0..S-1, application 0..A-1, actuator 0..T-1).
struct NodeRef {
  NodeKind kind = NodeKind::Application;
  std::size_t index = 0;

  friend bool operator==(const NodeRef&, const NodeRef&) = default;
};

/// A directed edge. Sensor->app edges inject data; app->app edges are
/// inter-application transfers; app->actuator edges drive actuators.
struct Edge {
  NodeRef from;
  NodeRef to;
  bool trigger = true;  ///< into a multiple-input application: true when the
                        ///< walk continues through (the "trigger" input)
};

/// Path classification per the paper.
enum class PathKind { Trigger, Update };

/// One enumerated path: P_k of the paper.
struct Path {
  std::size_t drivingSensor = 0;       ///< sensor index the path starts at
  std::vector<std::size_t> apps;       ///< application indices, in chain order
  std::vector<std::size_t> edges;      ///< traversed edge ids, in chain order
                                       ///< (sensor edge, inter-app edges, and
                                       ///< the terminal edge)
  PathKind kind = PathKind::Trigger;
  NodeRef terminal;                    ///< actuator (trigger) or the fed
                                       ///< multiple-input app (update)
};

/// Builder + immutable view of the sensor/application/actuator DAG.
///
/// Usage: add nodes and edges, then finalize(); structural queries and path
/// enumeration are only available on a finalized graph.
class SystemGraph {
 public:
  /// Adds a sensor with the given maximum periodic output data rate
  /// (1/R is the throughput bound of every application it drives).
  std::size_t addSensor(std::string name, double rate);

  /// Adds an application node.
  std::size_t addApplication(std::string name);

  /// Adds an actuator node.
  std::size_t addActuator(std::string name);

  /// Adds a directed edge; see Edge for the `trigger` semantics. Valid
  /// shapes: sensor->app, app->app, app->actuator.
  std::size_t addEdge(NodeRef from, NodeRef to, bool trigger = true);

  /// Validates the structure (acyclic, every app reachable from a sensor and
  /// draining somewhere, exactly one trigger edge into each multi-input app)
  /// and enumerates all paths. Throws InvalidArgumentError on violations.
  void finalize();

  [[nodiscard]] bool finalized() const noexcept { return finalized_; }
  [[nodiscard]] std::size_t sensorCount() const noexcept {
    return sensors_.size();
  }
  [[nodiscard]] std::size_t applicationCount() const noexcept {
    return applications_.size();
  }
  [[nodiscard]] std::size_t actuatorCount() const noexcept {
    return actuators_.size();
  }
  [[nodiscard]] std::size_t edgeCount() const noexcept { return edges_.size(); }

  [[nodiscard]] const std::string& sensorName(std::size_t i) const;
  [[nodiscard]] const std::string& applicationName(std::size_t i) const;
  [[nodiscard]] const std::string& actuatorName(std::size_t i) const;

  /// Sensor output data rate.
  [[nodiscard]] double sensorRate(std::size_t i) const;

  /// The edge with the given id.
  [[nodiscard]] const Edge& edge(std::size_t id) const;

  /// Ids of edges leaving application `app` (to apps or actuators).
  [[nodiscard]] const std::vector<std::size_t>& outEdgesOfApp(
      std::size_t app) const;

  /// Ids of edges entering application `app` (from sensors or apps).
  [[nodiscard]] const std::vector<std::size_t>& inEdgesOfApp(
      std::size_t app) const;

  /// All enumerated paths (requires finalize()).
  [[nodiscard]] const std::vector<Path>& paths() const;

  /// True when sensor `sensor` can reach application `app` along edges
  /// (requires finalize()); governs which b_ijz coefficients may be non-zero.
  [[nodiscard]] bool sensorReachesApp(std::size_t sensor,
                                      std::size_t app) const;

  /// D(a_i): application successors of application `app`.
  [[nodiscard]] std::vector<std::size_t> appSuccessors(std::size_t app) const;

  /// Emits the DAG in Graphviz dot format (Fig. 2 regeneration).
  void writeDot(std::ostream& os) const;

 private:
  void requireFinalized() const;
  void checkAcyclic() const;
  void enumeratePaths();
  void computeReachability();

  struct Sensor {
    std::string name;
    double rate;
  };

  std::vector<Sensor> sensors_;
  std::vector<std::string> applications_;
  std::vector<std::string> actuators_;
  std::vector<Edge> edges_;
  std::vector<std::vector<std::size_t>> outOfApp_;
  std::vector<std::vector<std::size_t>> inOfApp_;
  std::vector<std::vector<std::size_t>> outOfSensor_;
  std::vector<Path> paths_;
  std::vector<std::vector<bool>> sensorReach_;  // [sensor][app]
  bool finalized_ = false;
};

}  // namespace robust::hiperd
